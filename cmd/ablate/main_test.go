package main

import "testing"

func TestRunRejectsUnknownSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes a dataset")
	}
	if err := run([]string{"-users", "3", "-sweep", "nonsense"}); err == nil {
		t.Error("no error for unknown sweep")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-users", "x"}); err == nil {
		t.Error("no error for malformed flag")
	}
}
