// Command ablate runs the design-choice ablation sweeps on one CERT
// scenario: the history window ω, the matrix span 𝒟, the TF-style feature
// weighting, and the window-pooling aggregator. It prints one table per
// sweep.
//
// Usage:
//
//	ablate -users 20 -scenario r6.1-s2 -sweep window,weighting
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"acobe/internal/experiment"
	"acobe/internal/plot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ContinueOnError)
	var (
		users    = fs.Int("users", 20, "users per department")
		seed     = fs.Uint64("seed", 42, "dataset seed")
		scenario = fs.String("scenario", "r6.1-s2", "scenario to sweep on")
		sweeps   = fs.String("sweep", "window,matrixdays,weighting,aggregation", "comma-separated sweeps to run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	preset := experiment.TinyPreset()
	preset.UsersPerDept = *users
	preset.Seed = *seed

	fmt.Printf("synthesizing dataset (%d users/dept)...\n", *users)
	data, err := experiment.BuildCERTData(preset)
	if err != nil {
		return err
	}
	sc := data.ScenarioByName(*scenario)
	if sc == nil {
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	printResults := func(title string, results []experiment.AblationResult) {
		tab := &plot.Table{Title: title, Columns: []string{"config", "AUC", "AP", "insider pos", "FPs before TP"}}
		for _, r := range results {
			tab.AddRow(r.Name,
				fmt.Sprintf("%.4f", r.AUC),
				fmt.Sprintf("%.4f", r.AP),
				fmt.Sprintf("%d", r.Insider),
				fmt.Sprintf("%v", r.FPs))
		}
		fmt.Println(tab.String())
	}

	for _, sweep := range strings.Split(*sweeps, ",") {
		start := time.Now()
		switch strings.TrimSpace(sweep) {
		case "window":
			results, err := experiment.SweepWindow(data, sc, []int{14, 30, 45})
			if err != nil {
				return err
			}
			printResults("history window ω", results)
		case "matrixdays":
			results, err := experiment.SweepMatrixDays(data, sc, []int{7, 14, 21})
			if err != nil {
				return err
			}
			printResults("matrix span 𝒟", results)
		case "weighting":
			results, err := experiment.SweepWeighting(data, sc)
			if err != nil {
				return err
			}
			printResults("TF-style feature weights", results)
		case "aggregation":
			run, err := experiment.RunScenario(data, experiment.ModelACOBE, sc)
			if err != nil {
				return err
			}
			results, err := experiment.SweepAggregation(data, run)
			if err != nil {
				return err
			}
			printResults("window-pooling aggregator", results)
		default:
			return fmt.Errorf("unknown sweep %q", sweep)
		}
		fmt.Printf("(swept in %v)\n\n", time.Since(start).Round(time.Second))
	}
	return nil
}
