package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/serve"
	"acobe/pkg/acobe"
)

// Selftest timeline: a 96-day organization with a short deviation window so
// the whole cycle (history → training → anomaly → ranking) fits in seconds.
const (
	stEndDay      = cert.Day(95)
	stWindow      = 7
	stMatrixDays  = 3
	stTrainFrom   = cert.Day(8) // first compound-matrix day: window-1 + matrixDays-1
	stTrainTo     = cert.Day(74)
	stRankFrom    = cert.Day(80)
	stAnomFrom    = cert.Day(82)
	stAnomTo      = cert.Day(90)
	stEventsPerIn = 9 // injected events per channel per anomalous day
)

// runSelftest exercises the daemon end to end over a real HTTP listener:
// synthesize a small organization, replay it day by day with anomalous
// exfiltration injected into one user during the test period, retrain at
// the end of the training span, and print the ranked investigation list as
// CSV. Everything is seeded, so the output is byte-deterministic — at any
// shard count: the Makefile smoke diffs sharded and unsharded runs against
// the same golden.
func runSelftest(stdout io.Writer, shards int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	gcfg := cert.SmallConfig(3)
	gcfg.Seed = 7
	gcfg.Start = 0
	gcfg.End = stEndDay
	gcfg.EnvChanges = nil
	gcfg.Scenarios = nil
	gen, err := cert.New(gcfg)
	if err != nil {
		return err
	}
	var (
		users      []string
		membership []int
	)
	deptIndex := make(map[string]int)
	for i, d := range gen.Departments() {
		deptIndex[d] = i
	}
	for _, u := range gen.Users() {
		users = append(users, u.ID)
		membership = append(membership, deptIndex[u.Department])
	}
	insider := users[5]

	srv, err := serve.New(serve.Config{
		Users:      users,
		Groups:     gen.Departments(),
		Membership: membership,
		Start:      0,
		Shards:     shards,
		Deviation: deviation.Config{
			Window: stWindow, MatrixDays: stMatrixDays,
			Delta: 3, Epsilon: 1, Weighted: true,
		},
		DetectorOptions: []acobe.Option{
			acobe.WithAspects(acobe.ACOBEAspects()...),
			acobe.WithSeed(7),
			acobe.WithVotes(2),
			acobe.WithTrainStride(2),
			acobe.WithModelConfig(func(dim int) acobe.ModelConfig {
				cfg := acobe.FastModelConfig(dim)
				cfg.Hidden = []int{16, 8}
				cfg.Epochs = 30
				return cfg
			}),
		},
	})
	if err != nil {
		return err
	}
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		_ = srv.Shutdown(sctx)
	}()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	err = gen.Stream(func(d cert.Day, events []cert.Event) error {
		if d >= stAnomFrom && d <= stAnomTo {
			events = append(events, anomalyEvents(insider, d)...)
		}
		if err := postEvents(ctx, client, base, events); err != nil {
			return err
		}
		if err := post(ctx, client, fmt.Sprintf("%s/v1/close?day=%d", base, d)); err != nil {
			return err
		}
		if d == stTrainTo {
			return post(ctx, client, fmt.Sprintf("%s/v1/retrain?from=%d&to=%d&wait=1", base, stTrainFrom, stTrainTo))
		}
		return nil
	})
	if err != nil {
		return err
	}

	resp, err := getJSON(ctx, client, fmt.Sprintf("%s/v1/rank?from=%d&to=%d", base, stRankFrom, stEndDay))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# acobed selftest: %d users, insider %s, ranked %s..%s\n",
		len(users), insider, stRankFrom, stEndDay)
	fmt.Fprintln(stdout, "rank,user,priority,aspect_ranks")
	for i, r := range resp.List {
		fmt.Fprintf(stdout, "%d,%s,%d,%s\n", i+1, r.User, r.Priority, joinInts(r.Ranks))
	}
	if len(resp.List) == 0 || resp.List[0].User != insider {
		return fmt.Errorf("selftest: insider %s not ranked first", insider)
	}

	// Audit leg: the same serving stack with the tamper-evident trail on,
	// against a throwaway directory — provable ingest, an HTTP inclusion
	// proof, and an offline chain walk of the shut-down directory.
	auditDir, err := os.MkdirTemp("", "acobed-selftest-audit-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(auditDir)
	if err := runAuditSmoke(stdout, auditDir); err != nil {
		return fmt.Errorf("selftest audit leg: %w", err)
	}
	return nil
}

// anomalyEvents injects an off-hours exfiltration pattern for one user:
// removable-device connections to never-seen hosts, local→removable file
// copies of fresh files, and executable uploads to an external domain —
// activity spanning all three ACOBE aspects.
func anomalyEvents(user string, d cert.Day) []cert.Event {
	at := func(min int) time.Time { return d.Date().Add(22*time.Hour + time.Duration(min)*time.Minute) }
	var evs []cert.Event
	for k := 0; k < stEventsPerIn; k++ {
		pc := fmt.Sprintf("PC-EXFIL-%d-%d", d, k)
		evs = append(evs,
			cert.Event{Type: cert.EventDevice, Time: at(3 * k), User: user, PC: pc, Activity: cert.ActConnect},
			cert.Event{Type: cert.EventDevice, Time: at(3*k + 2), User: user, PC: pc, Activity: cert.ActDisconnect},
			cert.Event{Type: cert.EventFile, Time: at(3*k + 1), User: user, PC: pc, Activity: cert.ActFileCopy,
				Direction: cert.DirLocalToRemote, FileID: fmt.Sprintf("F-EXFIL-%d-%d", d, k)},
			cert.Event{Type: cert.EventHTTP, Time: at(3*k + 2), User: user, PC: pc, Activity: cert.ActUpload,
				Domain: "exfil.invalid", FileType: "exe"},
		)
	}
	return evs
}

// postEvents ships one day's events as a JSONL ingest request.
func postEvents(ctx context.Context, client *http.Client, base string, events []cert.Event) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range events {
		if err := enc.Encode(serve.Event{Cert: &events[i]}); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/ingest", &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	return checkResp(client.Do(req))
}

func post(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	return checkResp(client.Do(req))
}

// rankResult mirrors the daemon's /v1/rank response shape.
type rankResult struct {
	Aspects []string       `json:"aspects"`
	List    []acobe.Ranked `json:"list"`
}

func getJSON(ctx context.Context, client *http.Client, url string) (*rankResult, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	var out rankResult
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func checkResp(resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", resp.Request.URL, resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

func joinInts(ns []int) string {
	var buf bytes.Buffer
	for i, n := range ns {
		if i > 0 {
			buf.WriteByte('|')
		}
		fmt.Fprintf(&buf, "%d", n)
	}
	return buf.String()
}
