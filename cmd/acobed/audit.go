package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/pkg/acobe/daemon"
)

// runAuditSmoke drives a tiny audited daemon end to end over real HTTP:
// provable ingest into dir (batch IDs acked per request), an inclusion
// proof fetched from GET /v1/proof and re-verified in process, a clean
// shutdown, and an offline chain walk of what is left on disk. It is both
// the selftest's audit leg (against a throwaway directory) and the
// positive half of the Makefile audit-smoke target, which afterwards
// tampers dir and expects `acobed -verify` to refuse it.
func runAuditSmoke(stdout io.Writer, dir string) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	users := []string{"u0", "u1", "u2", "u3"}
	srv, _, err := daemon.Start(daemon.Config{
		Users: users,
		Start: 0,
		Deviation: deviation.Config{
			Window: 4, MatrixDays: 2, Delta: 3, Epsilon: 1, Weighted: true,
		},
	},
		daemon.WithDataDir(dir),
		daemon.WithAudit(),
		daemon.WithSnapshotEvery(4),
		daemon.WithSegmentBytes(4096),
	)
	if err != nil {
		return err
	}
	shut := func() error {
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		return srv.Shutdown(sctx)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = shut()
		return err
	}
	hs := &http.Server{Handler: srv.Handler(daemon.WithAuditEndpoint(true))}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	// A week of tiny days; every ingest must come back with a batch ID.
	var batches []uint64
	for d := cert.Day(0); d <= 6; d++ {
		id, err := postProvable(ctx, client, base, smokeDayEvents(d, users))
		if err != nil {
			_ = shut()
			return fmt.Errorf("audited ingest day %d: %w", d, err)
		}
		if id == 0 {
			_ = shut()
			return fmt.Errorf("audited ingest day %d acked without a batch ID", d)
		}
		batches = append(batches, id)
		if err := post(ctx, client, fmt.Sprintf("%s/v1/close?day=%d", base, d)); err != nil {
			_ = shut()
			return err
		}
	}

	// The HTTP proof endpoint serves the newest batch; the same proof must
	// verify in process against its committed root.
	last := batches[len(batches)-1]
	if err := getProof(ctx, client, base, last); err != nil {
		_ = shut()
		return err
	}
	res, err := srv.Proof(last, 0)
	if err != nil {
		_ = shut()
		return fmt.Errorf("in-process proof of batch %d: %w", last, err)
	}
	if !res.Proof.Verify(res.Root) {
		_ = shut()
		return fmt.Errorf("batch %d: inclusion proof does not verify against its root", last)
	}
	fp := srv.AuditFingerprint()
	if err := shut(); err != nil {
		return err
	}

	// Offline: the whole chain must walk cleanly with just the public key.
	pub, err := daemon.LoadAuditPublicKey(filepath.Join(dir, daemon.AuditPubFileName))
	if err != nil {
		return err
	}
	if got := daemon.AuditKeyFingerprint(pub); got != fp {
		return fmt.Errorf("audit.pub fingerprint %s does not match the daemon's %s", got, fp)
	}
	rep, err := daemon.VerifyAudit(dir, pub)
	if err != nil {
		return fmt.Errorf("offline verify: %w", err)
	}
	if rep.Batches == 0 || rep.Seals == 0 || rep.Snapshots == 0 {
		return fmt.Errorf("offline verify covered too little: %+v", rep)
	}
	// Deterministic summary (no counts, no fingerprints): the selftest
	// golden pins this line.
	fmt.Fprintln(stdout, "# audit leg: provable ingest acked, inclusion proof verified over HTTP and in process, offline chain walk clean")
	return nil
}

// smokeDayEvents is a deterministic micro-day for the audit smoke.
func smokeDayEvents(d cert.Day, users []string) []cert.Event {
	at := func(h int) time.Time { return d.Date().Add(time.Duration(h) * time.Hour) }
	var evs []cert.Event
	for i, u := range users {
		evs = append(evs,
			cert.Event{Type: cert.EventLogon, Time: at(8 + i%2), User: u, Activity: cert.ActLogon},
			cert.Event{Type: cert.EventDevice, Time: at(10), User: u, PC: fmt.Sprintf("PC-%d", (int(d)+i)%3), Activity: cert.ActConnect},
		)
	}
	return evs
}

// postProvable ships one batch as JSONL and returns the acked batch ID.
func postProvable(ctx context.Context, client *http.Client, base string, events []cert.Event) (uint64, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range events {
		if err := enc.Encode(daemon.Event{Cert: &events[i]}); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/ingest", &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: %s: %s", req.URL, resp.Status, bytes.TrimSpace(body))
	}
	var ack struct {
		Accepted int    `json:"accepted"`
		BatchID  uint64 `json:"batch_id"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		return 0, err
	}
	if ack.Accepted != len(events) {
		return 0, fmt.Errorf("accepted %d of %d events", ack.Accepted, len(events))
	}
	return ack.BatchID, nil
}

// getProof fetches one inclusion proof over HTTP and sanity-checks the
// response carries the proof material (root, leaf, encoded form).
func getProof(ctx context.Context, client *http.Client, base string, batch uint64) error {
	url := fmt.Sprintf("%s/v1/proof?batch=%d&event=0", base, batch)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	var pr struct {
		BatchID uint64 `json:"batch_id"`
		Root    string `json:"root"`
		Leaf    string `json:"leaf"`
		Encoded string `json:"encoded"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		return err
	}
	if pr.BatchID != batch || pr.Root == "" || pr.Leaf == "" || pr.Encoded == "" {
		return fmt.Errorf("proof response incomplete: %s", bytes.TrimSpace(body))
	}
	return nil
}
