// Command acobed is the online ACOBE scoring daemon: it ingests audit-log
// events continuously over HTTP, advances each user's deviation windows
// incrementally as days close, retrains the autoencoder ensemble on demand
// without pausing ingest, and serves ranked investigation lists.
//
// The HTTP API (see internal/serve):
//
//	POST /v1/ingest          one JSON event per line
//	POST /v1/close?day=D     close every day through D and slide the windows
//	GET  /v1/rank?from=&to=&top=N
//	POST /v1/retrain?from=&to=&wait=1
//	GET  /v1/status
//	GET  /healthz
//	GET  /v1/proof?batch=&event=   (-audit) inclusion proof for an ingested event
//	POST /v1/receipt?from=&to=     (-audit) ranked list with a signed receipt
//
// Usage:
//
//	acobed -listen :8467 -users alice,bob,carol -groups eng -membership 0,0,0
//	acobed -data-dir /var/lib/acobe -audit -users ...
//	acobed -verify -data-dir /var/lib/acobe
//	acobed -selftest
//
// -audit (with -data-dir) seals every WAL frame into a per-segment SHA-256
// hash chain, commits per-batch Merkle roots, and signs snapshots and rank
// receipts with the directory's ed25519 audit key. -verify walks such a
// directory offline and exits non-zero with a segment/offset diagnostic if
// any sealed byte was modified after the fact.
//
// -selftest synthesizes a small organization, replays it day by day through
// a real HTTP listener (ingest → close → retrain → rank), and prints the
// resulting investigation list as CSV. The output is deterministic; the
// Makefile's serve-smoke target diffs it against a committed golden copy.
// The selftest ends with an audited leg: a second daemon with -audit on,
// proving and verifying an ingested batch end to end.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/enterprise"
	"acobe/pkg/acobe"
	"acobe/pkg/acobe/daemon"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acobed:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("acobed", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:8467", "HTTP listen address")
		mode       = fs.String("mode", "cert", "log family to extract: cert or enterprise")
		usersFlag  = fs.String("users", "", "comma-separated user IDs (required)")
		groupsFlag = fs.String("groups", "", "comma-separated peer-group names (empty: serve without group deviations)")
		memberFlag = fs.String("membership", "", "comma-separated group index per user, -1 excludes (required with -groups)")
		startFlag  = fs.String("start", "0", "first measured day (YYYY-MM-DD or day index)")
		window     = fs.Int("window", 30, "ω: sliding history length in days")
		matrixDays = fs.Int("matrix-days", 14, "𝒟: days per compound matrix")
		delta      = fs.Float64("delta", 3, "Δ: deviation clamp")
		epsilon    = fs.Float64("epsilon", 1, "ε: floor on the history std")
		weighted   = fs.Bool("weighted", true, "apply the paper's TF-style feature weights")
		seed       = fs.Uint64("seed", 7, "model-initialization seed")
		votes      = fs.Int("votes", 3, "critic vote count N")
		stride     = fs.Int("stride", 2, "training matrix day stride")
		queue      = fs.Int("queue", 64, "ingest queue bound in batches")
		shards     = fs.Int("shards", 1, "per-user state shards; each shard ingests, extracts, and logs on its own goroutine")
		dataDir    = fs.String("data-dir", "", "durability directory (WAL + snapshots); empty serves from memory only")
		fsyncFlag  = fs.String("fsync", "close", "WAL fsync policy with -data-dir: close, always, or never")
		snapEvery  = fs.Int("snapshot-interval", 30, "closed days between state snapshots with -data-dir")
		pprofFlag  = fs.String("pprof", "", "net/http/pprof: 'self' mounts /debug/pprof/ on the API listener, an address (e.g. localhost:6060) serves it separately, empty disables")
		auditFlag  = fs.Bool("audit", false, "with -data-dir: tamper-evident audit trail (hash-chained WAL, signed snapshots, /v1/proof + /v1/receipt)")
		verify     = fs.Bool("verify", false, "offline: verify an audited -data-dir's full chain and exit (non-zero on tampering)")
		pubFlag    = fs.String("pub", "", "audit public key for -verify (default <data-dir>/"+daemon.AuditPubFileName+")")
		selftest   = fs.Bool("selftest", false, "run the built-in end-to-end smoke over real HTTP and exit")
		smokeFlag  = fs.Bool("audit-smoke", false, "build a tiny audited -data-dir (provable ingest → proof → clean shutdown → offline verify) and exit; the Makefile audit-smoke target tampers it afterwards")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pprofSelf := *pprofFlag == "self"
	if *pprofFlag != "" && !pprofSelf {
		if err := startPprof(*pprofFlag, stdout); err != nil {
			return err
		}
	}
	if *verify {
		return runVerify(stdout, *dataDir, *pubFlag)
	}
	if *smokeFlag {
		if *dataDir == "" {
			return errors.New("-audit-smoke requires -data-dir")
		}
		return runAuditSmoke(stdout, *dataDir)
	}
	if *selftest {
		return runSelftest(stdout, *shards)
	}
	if *auditFlag && *dataDir == "" {
		return errors.New("-audit requires -data-dir (the chain lives in the WAL)")
	}

	users := splitList(*usersFlag)
	if len(users) == 0 {
		return errors.New("-users is required (comma-separated IDs)")
	}
	cfg := daemon.Config{
		Users: users,
		Deviation: deviation.Config{
			Window: *window, MatrixDays: *matrixDays,
			Delta: *delta, Epsilon: *epsilon, Weighted: *weighted,
		},
	}
	var err error
	if cfg.Start, err = parseDayArg(*startFlag); err != nil {
		return fmt.Errorf("-start: %w", err)
	}
	if groups := splitList(*groupsFlag); len(groups) > 0 {
		cfg.Groups = groups
		if cfg.Membership, err = parseInts(*memberFlag); err != nil {
			return fmt.Errorf("-membership: %w", err)
		}
	}
	opts := []daemon.Option{
		daemon.WithShards(*shards),
		daemon.WithQueueSize(*queue),
		// Instrumentation is always on: the hooks are allocation-free and
		// a daemon without /metrics is blind in production.
		daemon.WithObserver(daemon.NewObserver()),
	}
	var aspects []acobe.Aspect
	switch *mode {
	case "cert":
		aspects = acobe.ACOBEAspects()
	case "enterprise":
		aspects = enterprise.Aspects()
		// A factory rather than a prebuilt ingestor: each shard extracts
		// its own user subset (identical to one global extractor at -shards 1).
		opts = append(opts, daemon.WithIngestorFactory(func(users []string, start daemon.Day) (daemon.Ingestor, error) {
			return daemon.NewEnterpriseIngestor(users, start)
		}))
	default:
		return fmt.Errorf("-mode: unknown log family %q", *mode)
	}
	cfg.DetectorOptions = []acobe.Option{
		acobe.WithAspects(aspects...),
		acobe.WithSeed(*seed),
		acobe.WithVotes(*votes),
		acobe.WithTrainStride(*stride),
	}
	if *dataDir != "" {
		policy, err := daemon.ParseFsyncPolicy(*fsyncFlag)
		if err != nil {
			return fmt.Errorf("-fsync: %w", err)
		}
		opts = append(opts,
			daemon.WithDataDir(*dataDir),
			daemon.WithFsync(policy),
			daemon.WithSnapshotEvery(*snapEvery),
		)
		if *auditFlag {
			opts = append(opts, daemon.WithAudit())
		}
	}

	srv, info, err := daemon.Start(cfg, opts...)
	if err != nil {
		return err
	}
	if info != nil {
		fmt.Fprintf(stdout, "acobed: recovered %s: closed through %v, %d records replayed (snapshot=%v), %d torn bytes truncated\n",
			*dataDir, info.ClosedThrough, info.ReplayedRecords, info.SnapshotLoaded, info.TornBytes)
	}
	if *auditFlag {
		fmt.Fprintf(stdout, "acobed: audit trail on, key fingerprint %s (share %s for offline -verify)\n",
			srv.AuditFingerprint(), *dataDir+"/"+daemon.AuditPubFileName)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "acobed: serving %d users on http://%s\n", len(users), ln.Addr())
	return serveHTTP(srv, ln, stdout, pprofSelf, *auditFlag)
}

// runVerify is the offline chain verifier: load the audit public key,
// walk the directory, and report either the verified surface or the first
// divergence (the process exit code is the verdict).
func runVerify(stdout io.Writer, dir, pubPath string) error {
	if dir == "" {
		return errors.New("-verify requires -data-dir")
	}
	if pubPath == "" {
		pubPath = filepath.Join(dir, daemon.AuditPubFileName)
	}
	pub, err := daemon.LoadAuditPublicKey(pubPath)
	if err != nil {
		return fmt.Errorf("-verify: %w", err)
	}
	fmt.Fprintf(stdout, "acobed: verifying %s against key %s\n", dir, daemon.AuditKeyFingerprint(pub))
	rep, err := daemon.VerifyAudit(dir, pub)
	if err != nil {
		return fmt.Errorf("-verify: %w", err)
	}
	fmt.Fprintf(stdout, "acobed: chain intact: %d shard(s), %d segments, %d frames, %d batches (%d events), %d seals, %d receipts, %d snapshots, %d manifests\n",
		rep.Shards, rep.Segments, rep.Frames, rep.Batches, rep.Events, rep.Seals, rep.Receipts, rep.Snapshots, rep.Manifests)
	return nil
}

// startPprof serves the profiling handlers on their own listener, for
// deployments that keep /debug/pprof/ off the public API address (the
// in-mux alternative is -pprof self). Best-effort: it dies with the
// process rather than participating in graceful shutdown.
func startPprof(addr string, stdout io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-pprof: %w", err)
	}
	fmt.Fprintf(stdout, "acobed: pprof on http://%s/debug/pprof/\n", ln.Addr())
	go func() { _ = http.Serve(ln, daemon.PprofHandler()) }()
	return nil
}

// serveHTTP runs the HTTP front end until SIGINT/SIGTERM, then drains the
// daemon: stop accepting requests, cancel any in-flight retrain, finish
// queued day-closes, and exit.
func serveHTTP(srv *daemon.Server, ln net.Listener, stdout io.Writer, pprofSelf, auditOn bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	hs := &http.Server{Handler: srv.Handler(daemon.WithPprofEndpoint(pprofSelf), daemon.WithAuditEndpoint(auditOn))}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "acobed: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := hs.Shutdown(shutCtx)
	if serr := srv.Shutdown(shutCtx); err == nil {
		err = serr
	}
	return err
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	parts := splitList(s)
	out := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = n
	}
	return out, nil
}

func parseDayArg(s string) (cert.Day, error) {
	if n, err := strconv.Atoi(s); err == nil {
		return cert.Day(n), nil
	}
	return cert.ParseDay(s)
}
