package main

import (
	"bytes"
	"testing"

	"acobe/internal/testkit"
)

// TestSelftestGolden runs the full daemon smoke — synthesize, ingest over a
// real HTTP listener, close days, retrain, rank — and pins its CSV output.
// This is the end-to-end online/offline determinism gate for the serving
// stack; the Makefile serve-smoke target diffs the same output via the CLI.
// The sharded run must hit the identical golden bytes.
func TestSelftestGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an ensemble")
	}
	var buf bytes.Buffer
	if err := runSelftest(&buf, 1); err != nil {
		t.Fatalf("selftest: %v", err)
	}
	testkit.Golden(t, "selftest.csv", buf.Bytes())

	var sharded bytes.Buffer
	if err := runSelftest(&sharded, 4); err != nil {
		t.Fatalf("selftest -shards 4: %v", err)
	}
	if !bytes.Equal(sharded.Bytes(), buf.Bytes()) {
		t.Error("sharded selftest output differs from unsharded golden")
	}
}

func TestFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{}, &buf); err == nil {
		t.Fatal("missing -users accepted")
	}
	if err := run([]string{"-users", "a,b", "-mode", "nope"}, &buf); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run([]string{"-users", "a,b", "-start", "bogus"}, &buf); err == nil {
		t.Fatal("bad start accepted")
	}
	if err := run([]string{"-users", "a,b", "-groups", "g", "-membership", "x,y"}, &buf); err == nil {
		t.Fatal("bad membership accepted")
	}
}
