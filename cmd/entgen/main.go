// Command entgen simulates the enterprise case-study environment and
// reports what the log pipeline ingested: per-channel record counts and,
// optionally, an injected attack's footprint.
//
// Usage:
//
//	entgen -employees 50 -attack zeus
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"acobe/internal/attack"
	"acobe/internal/enterprise"
	"acobe/internal/logstore"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "entgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("entgen", flag.ContinueOnError)
	var (
		employees = fs.Int("employees", 50, "number of employees (paper scale is 246)")
		seed      = fs.Uint64("seed", 2021, "dataset seed")
		atk       = fs.String("attack", "", "attack to inject: zeus, ransomware or empty")
		out       = fs.String("out", "", "optional JSONL file to save the ingested logs to")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := enterprise.DefaultConfig()
	cfg.Employees = *employees
	cfg.Seed = *seed
	victim := fmt.Sprintf("emp%03d", *employees/2)
	switch *atk {
	case "zeus":
		cfg.Attacks = []enterprise.Attack{attack.NewZeus(victim, enterprise.DefaultAttackDay)}
	case "ransomware":
		cfg.Attacks = []enterprise.Attack{attack.NewRansomware(victim, enterprise.DefaultAttackDay)}
	case "":
	default:
		return fmt.Errorf("unknown attack %q", *atk)
	}

	gen, err := enterprise.New(cfg)
	if err != nil {
		return err
	}
	store := logstore.NewStore()
	fmt.Printf("simulating %d employees over %v..%v...\n", *employees, cfg.Start, cfg.End)
	start := time.Now()
	if err := gen.StreamTo(store, 4); err != nil {
		return err
	}
	fmt.Printf("ingested %d records in %v\n", store.Ingested(), time.Since(start).Round(time.Millisecond))

	byChannel := map[string]int{}
	for _, d := range store.Days() {
		for _, r := range store.DayRecords(d) {
			byChannel[r.Channel]++
		}
	}
	channels := make([]string, 0, len(byChannel))
	for c := range byChannel {
		channels = append(channels, c)
	}
	sort.Strings(channels)
	for _, c := range channels {
		fmt.Printf("  %-12s %10d records\n", c, byChannel[c])
	}
	if *atk != "" {
		n := store.Count(logstore.Filter{User: victim}.Span(enterprise.DefaultAttackDay, enterprise.DefaultAttackDay))
		fmt.Printf("attack %q on %v; victim %s logged %d records that day\n",
			*atk, enterprise.DefaultAttackDay, victim, n)
	}
	if *out != "" {
		n, err := store.SaveJSONL(*out)
		if err != nil {
			return err
		}
		fmt.Printf("saved %d records to %s\n", n, *out)
	}
	return nil
}
