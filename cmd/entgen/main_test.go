package main

import "testing"

func TestRunSimulates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates seven months")
	}
	if err := run([]string{"-employees", "3", "-attack", "zeus"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownAttack(t *testing.T) {
	if err := run([]string{"-employees", "3", "-attack", "wormnado"}); err == nil {
		t.Error("no error for unknown attack")
	}
}
