package main

import (
	"bytes"
	"path/filepath"
	"testing"

	"acobe/internal/benchreport"
)

// TestLoadSmoke drives the full harness end to end against an in-process
// daemon — closed-loop sweep, retrain + rank phase, BENCH merge — with a
// population small enough to finish in well under a second.
func TestLoadSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	var buf bytes.Buffer
	err := run([]string{
		"-self", "-users", "24", "-shards", "2",
		"-days", "2", "-concurrency", "1,2", "-batch", "100",
		"-out", out,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}

	sections, err := benchreport.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadReport
	if ok, err := benchreport.Get(sections, "acobeload", &rep); err != nil || !ok {
		t.Fatalf("acobeload section: ok=%v err=%v", ok, err)
	}
	if len(rep.Sweep) != 2 {
		t.Fatalf("sweep levels = %d, want 2", len(rep.Sweep))
	}
	for _, lvl := range rep.Sweep {
		if lvl.Events <= 0 || lvl.Batches <= 0 || lvl.EventsPerS <= 0 {
			t.Errorf("level c=%d: empty load: %+v", lvl.Concurrency, lvl)
		}
		if lvl.IngestP99US < lvl.IngestP50US {
			t.Errorf("level c=%d: p99 %dus < p50 %dus", lvl.Concurrency, lvl.IngestP99US, lvl.IngestP50US)
		}
	}
	// Four closed days with ω=3, 𝒟=2 leave exactly one compound day, so
	// the retrain phase must have run.
	if rep.Retrain == nil {
		t.Fatal("retrain phase did not run")
	}
	if rep.Retrain.RetrainS <= 0 {
		t.Errorf("retrain duration = %v", rep.Retrain.RetrainS)
	}
}

// TestOpenLoopSmoke exercises the scheduled-release discipline.
func TestOpenLoopSmoke(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-self", "-users", "24", "-shards", "1",
		"-days", "1", "-concurrency", "2", "-batch", "100",
		"-mode", "open", "-rate", "200", "-skip-retrain",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{},                            // neither -target nor -self
		{"-self", "-mode", "looped"},  // unknown discipline
		{"-self", "-concurrency", ""}, // empty sweep
		{"-self", "-users", "0"},      // empty population
	}
	for _, args := range cases {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}
