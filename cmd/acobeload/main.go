// Command acobeload is the load harness for the acobed serving daemon: it
// scales the cert synthesizer to 100k–1M users, replays their event stream
// over real HTTP against a live daemon, and reports ingest latency and
// throughput curves plus rank throughput while a retrain is in flight.
//
// Two driving disciplines:
//
//	closed loop (-mode closed): C workers each own a stripe of the user
//	    population and post the next batch as soon as the previous response
//	    lands. Measures the daemon's saturation throughput at a given
//	    concurrency; latency is per-request round-trip time.
//	open loop (-mode open): batches are released on a fixed schedule
//	    (-rate batches/s) regardless of completion, and latency is measured
//	    from the *scheduled* release time, so queueing delay from a daemon
//	    that cannot keep up counts against it (no coordinated omission).
//
// Each entry in -concurrency replays the next -days consecutive dataset
// days, so one process sweeps a concurrency curve over a continuously
// growing daemon. After the sweep, the harness fits the ensemble once
// (timed), then launches a second retrain and hammers /v1/rank while it
// runs, reporting ranks/s-during-retrain — the paper's "serve while
// retraining" property under load. Finally the rank-during-close probe
// ingests -probe-days more days and forces each close while an open-loop
// rank stream runs at -rank-rate, reporting rank stall percentiles
// (latency from scheduled time, so a close that blocks ranking counts in
// full) and per-close wall time.
//
// Results merge into the "acobeload" and "rank_during_close" sections of
// -out (BENCH_serve.json); other sections are preserved byte-for-byte.
// When -out already holds a previous run, the harness prints an
// old-vs-new comparison of the daemon's close_merge stage.
//
// Examples:
//
//	acobeload -self -users 100000 -concurrency 2,4 -days 2 -out BENCH_serve.json
//	acobeload -target http://127.0.0.1:8467 -users 1000 -concurrency 1,2,4
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"acobe/internal/benchreport"
	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/obs"
	"acobe/internal/serve"
	"acobe/pkg/acobe"
	"acobe/pkg/acobe/daemon"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "acobeload:", err)
		os.Exit(1)
	}
}

type options struct {
	target      string
	self        bool
	shards      int
	users       int
	start       int
	days        int
	concurrency []int
	batch       int
	mode        string
	rate        float64
	window      int
	matrixDays  int
	epochs      int
	seed        uint64
	rankWorkers int
	top         int
	skipRetrain bool
	probeDays   int
	rankRate    float64
	skipProbe   bool
	out         string
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("acobeload", flag.ContinueOnError)
	var (
		target    = fs.String("target", "", "base URL of a running acobed (e.g. http://127.0.0.1:8467); empty requires -self")
		self      = fs.Bool("self", false, "start an in-process daemon on a loopback port instead of targeting a running one")
		shards    = fs.Int("shards", 4, "shard count for -self")
		users     = fs.Int("users", 1000, "synthetic population size (rounded up to a department multiple)")
		start     = fs.Int("start", 2, "first replayed day index (default: first Monday of the r6 span)")
		days      = fs.Int("days", 2, "days ingested per concurrency level")
		concFlag  = fs.String("concurrency", "1,2,4", "comma-separated closed-loop worker counts; each level replays the next -days days")
		batch     = fs.Int("batch", 2000, "events per ingest request")
		mode      = fs.String("mode", "closed", "driving discipline: closed or open")
		rate      = fs.Float64("rate", 50, "open-loop batch release rate per second")
		window    = fs.Int("window", 3, "ω for -self; with -target it must match the daemon's geometry (used to place the retrain span)")
		mdays     = fs.Int("matrix-days", 2, "𝒟 for -self; with -target it must match the daemon's geometry")
		epochs    = fs.Int("epochs", 2, "training epochs for -self (kept tiny: the harness measures serving, not model quality)")
		seed      = fs.Uint64("seed", 7, "dataset + model seed")
		rworkers  = fs.Int("rank-workers", 2, "concurrent /v1/rank clients during the measured retrain")
		top       = fs.Int("top", 10, "rank list length requested during the retrain phase")
		skipRet   = fs.Bool("skip-retrain", false, "skip the retrain + rank-throughput phase")
		probeDays = fs.Int("probe-days", 2, "days driven by the rank-during-close probe (0 disables it)")
		rankRate  = fs.Float64("rank-rate", 20, "open-loop rank release rate per second during the probe")
		skipProbe = fs.Bool("skip-probe", false, "skip the rank-during-close probe")
		out       = fs.String("out", "", "merge results into this BENCH_serve.json (sections \"acobeload\" and \"rank_during_close\"); empty prints JSON only")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt := options{
		target: strings.TrimRight(*target, "/"), self: *self, shards: *shards,
		users: *users, start: *start, days: *days, batch: *batch,
		mode: *mode, rate: *rate, window: *window, matrixDays: *mdays,
		epochs: *epochs, seed: *seed, rankWorkers: *rworkers, top: *top,
		skipRetrain: *skipRet, probeDays: *probeDays, rankRate: *rankRate,
		skipProbe: *skipProbe, out: *out,
	}
	var err error
	if opt.concurrency, err = parseInts(*concFlag); err != nil {
		return fmt.Errorf("-concurrency: %w", err)
	}
	if len(opt.concurrency) == 0 {
		return errors.New("-concurrency must name at least one level")
	}
	if opt.mode != "closed" && opt.mode != "open" {
		return fmt.Errorf("-mode: unknown discipline %q", opt.mode)
	}
	if opt.days < 1 || opt.batch < 1 || opt.users < 1 {
		return errors.New("-users, -days, and -batch must be positive")
	}
	if opt.target == "" && !opt.self {
		return errors.New("either -target or -self is required")
	}
	return drive(opt, stdout)
}

func drive(opt options, stdout io.Writer) error {
	ctx := context.Background()

	perDept := (opt.users + len(cert.DefaultDepartments) - 1) / len(cert.DefaultDepartments)
	gcfg := cert.Config{
		Seed:         opt.seed,
		Departments:  append([]string(nil), cert.DefaultDepartments...),
		UsersPerDept: perDept,
		Start:        0,
		End:          cert.Day(opt.start + opt.days*len(opt.concurrency) + opt.probeDays + 1),
	}
	gen, err := cert.New(gcfg)
	if err != nil {
		return err
	}
	population := gen.Users()
	fmt.Fprintf(stdout, "acobeload: %d users (%d/department), mode=%s, days %d..%d\n",
		len(population), perDept, opt.mode, opt.start, opt.start+opt.days*len(opt.concurrency)-1)

	base := opt.target
	if opt.self {
		shutdown, addr, err := startSelf(gen, opt)
		if err != nil {
			return err
		}
		defer shutdown()
		base = "http://" + addr
		fmt.Fprintf(stdout, "acobeload: in-process daemon (shards=%d) on %s\n", opt.shards, base)
	}

	maxConc := opt.rankWorkers
	for _, c := range opt.concurrency {
		if c > maxConc {
			maxConc = c
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConc * 2,
		MaxIdleConnsPerHost: maxConc * 2,
	}}

	report := loadReport{
		Users: len(population), Mode: opt.mode, StartDay: opt.start,
		DaysPerLevel: opt.days, BatchEvents: opt.batch,
		GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if opt.self {
		report.Shards = opt.shards
	}
	day := opt.start
	for _, conc := range opt.concurrency {
		lvl, err := runLevel(ctx, client, base, gen, population, day, conc, opt)
		if err != nil {
			return fmt.Errorf("level concurrency=%d: %w", conc, err)
		}
		fmt.Fprintf(stdout, "acobeload: c=%-3d days %d..%d  %9d events  %8.0f events/s  p50 %s  p99 %s\n",
			conc, lvl.FromDay, lvl.ToDay, lvl.Events, lvl.EventsPerS,
			time.Duration(lvl.IngestP50US)*time.Microsecond,
			time.Duration(lvl.IngestP99US)*time.Microsecond)
		report.Sweep = append(report.Sweep, lvl)
		day += opt.days
	}

	if !opt.skipRetrain {
		ret, err := retrainPhase(ctx, client, base, day-1, opt)
		if err != nil {
			return fmt.Errorf("retrain phase: %w", err)
		}
		if ret != nil {
			fmt.Fprintf(stdout, "acobeload: fit %.2fs, retrain %.2fs with %d ranks in flight (%.2f ranks/s)\n",
				ret.InitialFitS, ret.RetrainS, ret.Ranks, ret.RanksPerS)
			report.Retrain = ret
		}
	}

	var probe *probeReport
	if !opt.skipProbe && opt.probeDays > 0 && report.Retrain != nil {
		probe, err = probePhase(ctx, client, base, gen, population, day, opt)
		if err != nil {
			return fmt.Errorf("rank-during-close probe: %w", err)
		}
		for _, c := range probe.Closes {
			fmt.Fprintf(stdout, "acobeload: probe day %d  close %.3fs  %d ranks in flight\n", c.Day, c.CloseS, c.Ranks)
		}
		fmt.Fprintf(stdout, "acobeload: rank-during-close stalls p50 %s  p90 %s  p99 %s  max %s (%d ranks)\n",
			time.Duration(probe.RankP50US)*time.Microsecond,
			time.Duration(probe.RankP90US)*time.Microsecond,
			time.Duration(probe.RankP99US)*time.Microsecond,
			time.Duration(probe.RankMaxUS)*time.Microsecond,
			probe.Ranks)
	}

	if stages, err := fetchServerStages(ctx, client, base); err == nil {
		report.ServerStages = stages
		if probe != nil {
			probe.ServerStages = stages
		}
	} else {
		fmt.Fprintf(stdout, "acobeload: server stage stats unavailable: %v\n", err)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if opt.out != "" {
		sections, err := benchreport.Load(opt.out)
		if err != nil {
			return err
		}
		printCloseMergeDelta(stdout, sections, report.ServerStages)
		if err := benchreport.Set(sections, "acobeload", report); err != nil {
			return err
		}
		wrote := `section "acobeload"`
		if probe != nil {
			if err := benchreport.Set(sections, "rank_during_close", probe); err != nil {
				return err
			}
			wrote = `sections "acobeload" and "rank_during_close"`
		}
		if err := benchreport.Save(opt.out, sections); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "acobeload: wrote %s of %s\n", wrote, opt.out)
	}
	return nil
}

// printCloseMergeDelta compares the close_merge stage the previous run
// recorded in -out against this run's scrape, so `make bench-serve`
// prints the before/after of the merge cost in one line.
func printCloseMergeDelta(stdout io.Writer, sections map[string]json.RawMessage, stages []obs.StageStats) {
	find := func(rows []obs.StageStats) *obs.StageStats {
		for i := range rows {
			if rows[i].Stage == obs.StageMerge && rows[i].Count > 0 {
				return &rows[i]
			}
		}
		return nil
	}
	cur := find(stages)
	if cur == nil {
		return
	}
	var prev struct {
		ServerStages []obs.StageStats `json:"server_stages"`
	}
	if ok, err := benchreport.Get(sections, "acobeload", &prev); err != nil || !ok {
		fmt.Fprintf(stdout, "acobeload: close_merge mean %.0fµs p99 %.0fµs (no prior run in -out to compare)\n", cur.MeanUS, cur.P99US)
		return
	}
	old := find(prev.ServerStages)
	if old == nil {
		fmt.Fprintf(stdout, "acobeload: close_merge mean %.0fµs p99 %.0fµs (prior run recorded no close_merge)\n", cur.MeanUS, cur.P99US)
		return
	}
	fmt.Fprintf(stdout, "acobeload: close_merge old mean %.0fµs p99 %.0fµs -> new mean %.0fµs p99 %.0fµs\n",
		old.MeanUS, old.P99US, cur.MeanUS, cur.P99US)
}

// probePhase is the rank-during-close probe: for each probe day it
// ingests the day, brings an open-loop rank stream to steady state, and
// then forces the day close while the ranks keep being released on
// schedule. Rank latency is measured from each rank's *scheduled* time
// (coordinated omission counts), so a close that blocks ranking for its
// whole merge shows up directly in the stall percentiles.
func probePhase(ctx context.Context, client *http.Client, base string, gen *cert.Generator, population []cert.User, from int, opt options) (*probeReport, error) {
	if opt.rankRate <= 0 {
		return nil, errors.New("-rank-rate must be positive")
	}
	first := opt.start + (opt.window - 1) + (opt.matrixDays - 1)
	rankURL := fmt.Sprintf("%s/v1/rank?from=%d&to=%d&top=%d", base, first, from-1, opt.top)
	res := &probeReport{
		Days: opt.probeDays, RankRatePerS: opt.rankRate, RankWorkers: opt.rankWorkers,
	}
	var (
		hist    obs.Histogram
		ranks   atomic.Int64
		scratch obs.Histogram // ingest latencies, not part of the probe's report
		events  atomic.Int64
		batches atomic.Int64
	)
	for d := from; d < from+opt.probeDays; d++ {
		if err := ingestDayClosed(ctx, client, base, gen, population, cert.Day(d), 2, opt.batch, &scratch, &events, &batches); err != nil {
			return nil, err
		}

		stop := make(chan struct{})
		errs := make(chan error, opt.rankWorkers+1)
		type slot struct{ scheduled time.Time }
		slots := make(chan slot, opt.rankWorkers*2)
		var wg sync.WaitGroup
		for w := 0; w < opt.rankWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range slots {
					if err := get(ctx, client, rankURL); err != nil {
						errs <- err
						return
					}
					hist.Observe(time.Since(s.scheduled))
					ranks.Add(1)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(slots)
			interval := time.Duration(float64(time.Second) / opt.rankRate)
			t0 := time.Now()
			for k := 0; ; k++ {
				sched := t0.Add(time.Duration(k) * interval)
				if wait := time.Until(sched); wait > 0 {
					select {
					case <-stop:
						return
					case <-time.After(wait):
					}
				}
				select {
				case <-stop:
					return
				case slots <- slot{scheduled: sched}:
				}
			}
		}()

		// Steady state before the close, a short tail after it so a
		// post-close backlog drains into the stall histogram too.
		time.Sleep(300 * time.Millisecond)
		before := ranks.Load()
		closeStart := time.Now()
		err := post(ctx, client, fmt.Sprintf("%s/v1/close?day=%d", base, d))
		closeDur := time.Since(closeStart)
		time.Sleep(200 * time.Millisecond)
		close(stop)
		wg.Wait()
		if err != nil {
			return nil, err
		}
		select {
		case err := <-errs:
			return nil, err
		default:
		}
		res.Closes = append(res.Closes, probeClose{Day: d, CloseS: closeDur.Seconds(), Ranks: ranks.Load() - before})
	}
	s := hist.Snapshot()
	res.Ranks = ranks.Load()
	res.RankP50US = s.Quantile(0.50).Microseconds()
	res.RankP90US = s.Quantile(0.90).Microseconds()
	res.RankP99US = s.Quantile(0.99).Microseconds()
	res.RankMaxUS = time.Duration(s.MaxNanos).Microseconds()
	return res, nil
}

// startSelf boots an in-process daemon on a loopback port, mirroring how
// cmd/acobed wires one up, with a deliberately tiny model configuration:
// the harness measures the serving machinery, not detection quality.
func startSelf(gen *cert.Generator, opt options) (func(), string, error) {
	deptIndex := make(map[string]int)
	for i, d := range gen.Departments() {
		deptIndex[d] = i
	}
	var (
		ids        []string
		membership []int
	)
	for _, u := range gen.Users() {
		ids = append(ids, u.ID)
		membership = append(membership, deptIndex[u.Department])
	}
	cfg := daemon.Config{
		Users:      ids,
		Groups:     gen.Departments(),
		Membership: membership,
		Start:      cert.Day(opt.start),
		Deviation: deviation.Config{
			Window: opt.window, MatrixDays: opt.matrixDays,
			Delta: 3, Epsilon: 1, Weighted: true,
		},
		DetectorOptions: []acobe.Option{
			acobe.WithAspects(acobe.ACOBEAspects()...),
			acobe.WithSeed(opt.seed),
			acobe.WithVotes(2),
			acobe.WithTrainStride(1),
			acobe.WithModelConfig(func(dim int) acobe.ModelConfig {
				mc := acobe.FastModelConfig(dim)
				mc.Hidden = []int{16, 8}
				mc.Epochs = opt.epochs
				return mc
			}),
		},
	}
	srv, _, err := daemon.Start(cfg,
		daemon.WithShards(opt.shards),
		daemon.WithObserver(daemon.NewObserver()),
	)
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		_ = srv.Shutdown(context.Background())
		return nil, "", err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	shutdown := func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx)
		_ = srv.Shutdown(sctx)
	}
	return shutdown, ln.Addr().String(), nil
}

// runLevel ingests [from, from+days) at the given concurrency and closes
// each day behind its ingest barrier, exactly like a production feeder.
func runLevel(ctx context.Context, client *http.Client, base string, gen *cert.Generator, population []cert.User, from, conc int, opt options) (levelResult, error) {
	var (
		hist    obs.Histogram
		events  atomic.Int64
		batches atomic.Int64
	)
	t0 := time.Now()
	for d := from; d < from+opt.days; d++ {
		var err error
		if opt.mode == "closed" {
			err = ingestDayClosed(ctx, client, base, gen, population, cert.Day(d), conc, opt.batch, &hist, &events, &batches)
		} else {
			err = ingestDayOpen(ctx, client, base, gen, population, cert.Day(d), conc, opt, &hist, &events, &batches)
		}
		if err != nil {
			return levelResult{}, err
		}
		if err := post(ctx, client, fmt.Sprintf("%s/v1/close?day=%d", base, d)); err != nil {
			return levelResult{}, err
		}
	}
	elapsed := time.Since(t0)
	s := hist.Snapshot()
	lvl := levelResult{
		Concurrency: conc, FromDay: from, ToDay: from + opt.days - 1,
		Events: events.Load(), Batches: batches.Load(),
		ElapsedS:    elapsed.Seconds(),
		IngestP50US: s.Quantile(0.50).Microseconds(),
		IngestP90US: s.Quantile(0.90).Microseconds(),
		IngestP99US: s.Quantile(0.99).Microseconds(),
		IngestMaxUS: (time.Duration(s.MaxNanos)).Microseconds(),
	}
	if elapsed > 0 {
		lvl.EventsPerS = float64(lvl.Events) / elapsed.Seconds()
	}
	if opt.mode == "open" {
		lvl.OpenTargetRate = opt.rate
	}
	return lvl, nil
}

// ingestDayClosed drives one day closed-loop: each worker owns a stripe of
// the population, generates its users' events, and posts batch after batch
// back-to-back.
func ingestDayClosed(ctx context.Context, client *http.Client, base string, gen *cert.Generator, population []cert.User, d cert.Day, conc, batchSize int, hist *obs.Histogram, events, batches *atomic.Int64) error {
	var wg sync.WaitGroup
	errs := make(chan error, conc)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var (
				buf bytes.Buffer
				n   int
			)
			enc := json.NewEncoder(&buf)
			flush := func() error {
				if n == 0 {
					return nil
				}
				start := time.Now()
				if err := postNDJSON(ctx, client, base, &buf); err != nil {
					return err
				}
				hist.Observe(time.Since(start))
				events.Add(int64(n))
				batches.Add(1)
				buf.Reset()
				n = 0
				return nil
			}
			for i := w; i < len(population); i += conc {
				for _, ev := range gen.UserDay(population[i], d) {
					ev := ev
					if err := enc.Encode(serve.Event{Cert: &ev}); err != nil {
						errs <- err
						return
					}
					if n++; n >= batchSize {
						if err := flush(); err != nil {
							errs <- err
							return
						}
					}
				}
			}
			if err := flush(); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// ingestDayOpen drives one day open-loop: a single dispatcher generates
// batches and releases them at -rate per second to a pool of conc senders.
// Latency is measured from each batch's scheduled release time, so when
// the daemon (or a saturated sender pool) falls behind, the backlog shows
// up as latency instead of silently stretching the schedule.
func ingestDayOpen(ctx context.Context, client *http.Client, base string, gen *cert.Generator, population []cert.User, d cert.Day, conc int, opt options, hist *obs.Histogram, events, batches *atomic.Int64) error {
	if opt.rate <= 0 {
		return errors.New("-rate must be positive in open mode")
	}
	type job struct {
		body      []byte
		count     int
		scheduled time.Time
	}
	jobs := make(chan job, conc*2)
	errs := make(chan error, conc+1)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := postNDJSON(ctx, client, base, bytes.NewReader(j.body)); err != nil {
					errs <- err
					return
				}
				hist.Observe(time.Since(j.scheduled))
				events.Add(int64(j.count))
				batches.Add(1)
			}
		}()
	}

	interval := time.Duration(float64(time.Second) / opt.rate)
	t0 := time.Now()
	k := 0
	var (
		buf bytes.Buffer
		n   int
	)
	enc := json.NewEncoder(&buf)
	dispatch := func() {
		if n == 0 {
			return
		}
		sched := t0.Add(time.Duration(k) * interval)
		k++
		if wait := time.Until(sched); wait > 0 {
			time.Sleep(wait)
		}
		body := make([]byte, buf.Len())
		copy(body, buf.Bytes())
		jobs <- job{body: body, count: n, scheduled: sched}
		buf.Reset()
		n = 0
	}
	var genErr error
	for _, u := range population {
		for _, ev := range gen.UserDay(u, d) {
			ev := ev
			if err := enc.Encode(serve.Event{Cert: &ev}); err != nil {
				genErr = err
				break
			}
			if n++; n >= opt.batch {
				dispatch()
			}
		}
		if genErr != nil {
			break
		}
	}
	if genErr == nil {
		dispatch()
	}
	close(jobs)
	wg.Wait()
	if genErr != nil {
		return genErr
	}
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// retrainPhase fits the ensemble once (timed), then launches a second
// retrain over the same span and hammers /v1/rank until it completes.
func retrainPhase(ctx context.Context, client *http.Client, base string, lastDay int, opt options) (*retrainResult, error) {
	first := opt.start + (opt.window - 1) + (opt.matrixDays - 1)
	if lastDay < first {
		return nil, nil // not enough closed days for a compound matrix
	}
	retrainURL := fmt.Sprintf("%s/v1/retrain?from=%d&to=%d&wait=1", base, first, lastDay)
	rankURL := fmt.Sprintf("%s/v1/rank?from=%d&to=%d&top=%d", base, first, lastDay, opt.top)

	fitStart := time.Now()
	if err := post(ctx, client, retrainURL); err != nil {
		return nil, err
	}
	fit := time.Since(fitStart)

	var (
		retrainDur time.Duration
		retrainErr error
		done       = make(chan struct{})
		ranks      atomic.Int64
		rankHist   obs.Histogram
	)
	go func() {
		defer close(done)
		t := time.Now()
		retrainErr = post(ctx, client, retrainURL)
		retrainDur = time.Since(t)
	}()
	var wg sync.WaitGroup
	rankErrs := make(chan error, opt.rankWorkers)
	for w := 0; w < opt.rankWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				t := time.Now()
				if err := get(ctx, client, rankURL); err != nil {
					rankErrs <- err
					return
				}
				rankHist.Observe(time.Since(t))
				ranks.Add(1)
			}
		}()
	}
	<-done
	wg.Wait()
	if retrainErr != nil {
		return nil, retrainErr
	}
	select {
	case err := <-rankErrs:
		return nil, err
	default:
	}
	s := rankHist.Snapshot()
	res := &retrainResult{
		InitialFitS: fit.Seconds(),
		RetrainS:    retrainDur.Seconds(),
		Ranks:       ranks.Load(),
		RankWorkers: opt.rankWorkers,
		RankP50US:   s.Quantile(0.50).Microseconds(),
		RankP99US:   s.Quantile(0.99).Microseconds(),
	}
	if retrainDur > 0 {
		res.RanksPerS = float64(res.Ranks) / retrainDur.Seconds()
	}
	return res, nil
}

// fetchServerStages pulls the daemon's own per-stage histograms from
// /v1/status and keeps the rows a load report should pin: the write path
// (apply), the close barrier and its global re-merge (the ROADMAP's
// "factory-based shard ingest re-merges" cost), and the read/train path.
func fetchServerStages(ctx context.Context, client *http.Client, base string) ([]obs.StageStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/status", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/status: %s", resp.Status)
	}
	var doc struct {
		Metrics *obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, err
	}
	if doc.Metrics == nil {
		return nil, errors.New("status carries no metrics snapshot (observer disabled?)")
	}
	keep := []string{obs.StageApply, obs.StageClose, obs.StageMerge, obs.StageMergePublish, obs.StageSnapshot, obs.StageRank, obs.StageRetrain}
	var out []obs.StageStats
	for _, name := range keep {
		for _, st := range doc.Metrics.Stages {
			if st.Stage == name && st.Count > 0 {
				out = append(out, st)
			}
		}
	}
	return out, nil
}

// loadReport is the "acobeload" section of BENCH_serve.json.
type loadReport struct {
	Users        int            `json:"users"`
	Shards       int            `json:"shards,omitempty"`
	Mode         string         `json:"mode"`
	StartDay     int            `json:"start_day"`
	DaysPerLevel int            `json:"days_per_level"`
	BatchEvents  int            `json:"batch_events"`
	GoVersion    string         `json:"go_version"`
	GOMAXPROCS   int            `json:"gomaxprocs"`
	Sweep        []levelResult  `json:"sweep"`
	Retrain      *retrainResult `json:"retrain,omitempty"`
	// ServerStages are the daemon's own per-stage histograms after the
	// run (from /v1/status), so the report pins server-side costs —
	// notably close_merge, the global re-merge behind every sharded
	// day close — next to the client-side latency curves.
	ServerStages []obs.StageStats `json:"server_stages,omitempty"`
}

type levelResult struct {
	Concurrency    int     `json:"concurrency"`
	FromDay        int     `json:"from_day"`
	ToDay          int     `json:"to_day"`
	Events         int64   `json:"events"`
	Batches        int64   `json:"batches"`
	ElapsedS       float64 `json:"elapsed_s"`
	EventsPerS     float64 `json:"events_per_s"`
	IngestP50US    int64   `json:"ingest_p50_us"`
	IngestP90US    int64   `json:"ingest_p90_us"`
	IngestP99US    int64   `json:"ingest_p99_us"`
	IngestMaxUS    int64   `json:"ingest_max_us"`
	OpenTargetRate float64 `json:"open_target_batches_per_s,omitempty"`
}

type retrainResult struct {
	InitialFitS float64 `json:"initial_fit_s"`
	RetrainS    float64 `json:"retrain_s"`
	Ranks       int64   `json:"ranks"`
	RanksPerS   float64 `json:"ranks_per_s_during_retrain"`
	RankWorkers int     `json:"rank_workers"`
	RankP50US   int64   `json:"rank_p50_us"`
	RankP99US   int64   `json:"rank_p99_us"`
}

// probeReport is the "rank_during_close" section of BENCH_serve.json:
// open-loop rank stall percentiles measured across forced day closes,
// plus the per-close wall time and the daemon's own stage histograms
// (close_merge now measures the off-lock shadow build; merge_publish is
// the pointer swap ranks actually wait on).
type probeReport struct {
	Days         int              `json:"days"`
	RankRatePerS float64          `json:"rank_rate_per_s"`
	RankWorkers  int              `json:"rank_workers"`
	Ranks        int64            `json:"ranks"`
	RankP50US    int64            `json:"rank_p50_us"`
	RankP90US    int64            `json:"rank_p90_us"`
	RankP99US    int64            `json:"rank_p99_us"`
	RankMaxUS    int64            `json:"rank_max_us"`
	Closes       []probeClose     `json:"closes"`
	ServerStages []obs.StageStats `json:"server_stages,omitempty"`
}

type probeClose struct {
	Day    int     `json:"day"`
	CloseS float64 `json:"close_s"`
	Ranks  int64   `json:"ranks_in_flight"`
}

func postNDJSON(ctx context.Context, client *http.Client, base string, body io.Reader) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/ingest", body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	return checkResp(client.Do(req))
}

func post(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return err
	}
	return checkResp(client.Do(req))
}

func get(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return checkResp(client.Do(req))
}

func checkResp(resp *http.Response, err error) error {
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", resp.Request.URL, resp.Status, bytes.TrimSpace(body))
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		n, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("count %d must be positive", n)
		}
		out = append(out, n)
	}
	return out, nil
}
