package main

import (
	"bytes"
	"testing"

	"acobe/internal/experiment"
	"acobe/internal/metrics"
	"acobe/internal/plot"
	"acobe/internal/testkit"
)

// syntheticRuns builds a pinned two-model, two-scenario evaluation whose
// pooled metrics exercise every branch of the Figure 6 serialization
// (ROC grid sampling, PR recall grid, summary table) without training
// anything. The priorities are chosen so the two models produce different
// curves and a tie inside one scenario exercises the worst-case ordering.
func syntheticRuns() map[experiment.ModelKind][]*experiment.ScenarioRun {
	mk := func(scenario, insider string, priorities map[string]int) *experiment.ScenarioRun {
		run := &experiment.ScenarioRun{Scenario: scenario, Insider: insider}
		for user, p := range priorities {
			run.Items = append(run.Items, metrics.Item{User: user, Priority: p, Positive: user == insider})
		}
		// Map iteration order must not leak into the figure: canonicalize.
		run.Items = metrics.OrderWorstCase(run.Items)
		return run
	}
	return map[experiment.ModelKind][]*experiment.ScenarioRun{
		experiment.ModelACOBE: {
			mk("s1", "ins1", map[string]int{"ins1": 1, "u1": 2, "u2": 3, "u3": 4}),
			mk("s2", "ins2", map[string]int{"ins2": 2, "u1": 2, "u2": 5, "u3": 6}),
		},
		experiment.ModelBaseline: {
			mk("s1", "ins1", map[string]int{"ins1": 3, "u1": 1, "u2": 2, "u3": 4}),
			mk("s2", "ins2", map[string]int{"ins2": 4, "u1": 1, "u2": 2, "u3": 3}),
		},
	}
}

func chartBytes(t *testing.T, c *plot.Chart) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatalf("serialize chart: %v", err)
	}
	return buf.Bytes()
}

// TestGoldenFig6CSVs pins the exact CSV bytes cmd/repro emits for the
// Figure 6 model comparison: the ROC grid, the PR recall grid, and the
// AUC / AP / FPs-before-TP summary table.
func TestGoldenFig6CSVs(t *testing.T) {
	res, err := experiment.BuildFig6(syntheticRuns())
	if err != nil {
		t.Fatalf("build fig6: %v", err)
	}
	testkit.GoldenCSV(t, "fig6a_roc.csv", chartBytes(t, res.ROC), 1e-9)
	testkit.GoldenCSV(t, "fig6b_pr.csv", chartBytes(t, res.PR), 1e-9)

	var buf bytes.Buffer
	if err := res.Summary.WriteCSV(&buf); err != nil {
		t.Fatalf("serialize summary: %v", err)
	}
	// The summary carries the rankings' integer FP counts — exact.
	testkit.Golden(t, "fig6_summary.csv", buf.Bytes())
}

// TestGoldenFig6NCSVs pins the Figure 6(c) critic-N sweep serialization.
func TestGoldenFig6NCSVs(t *testing.T) {
	runs := syntheticRuns()[experiment.ModelACOBE]
	res, err := experiment.BuildFig6N(map[int][]*experiment.ScenarioRun{1: runs, 3: runs})
	if err != nil {
		t.Fatalf("build fig6c: %v", err)
	}
	testkit.GoldenCSV(t, "fig6c_pr_n.csv", chartBytes(t, res.PR), 1e-9)

	var buf bytes.Buffer
	if err := res.Summary.WriteCSV(&buf); err != nil {
		t.Fatalf("serialize summary: %v", err)
	}
	testkit.Golden(t, "fig6c_summary.csv", buf.Bytes())
}
