// Command repro regenerates every figure of the paper's evaluation from
// the synthesized datasets: Figure 4 (deviation matrices), Figure 5
// (score-trend waveforms per model configuration), Figure 6 (ROC /
// precision-recall / critic-N comparisons), and Figure 7 (the enterprise
// case studies). Outputs are CSV files plus ASCII renderings.
//
// Usage:
//
//	repro -fig all -preset fast -out out/
//	repro -fig 6 -preset tiny
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"acobe/internal/experiment"
	"acobe/internal/plot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	var (
		fig           = fs.String("fig", "all", "figure to regenerate: 4, 5, 6, 7 or all")
		preset        = fs.String("preset", "fast", "scale preset: tiny, fast or paper")
		outDir        = fs.String("out", "out", "output directory for CSV files")
		quiet         = fs.Bool("quiet", false, "suppress ASCII chart rendering")
		benchNN       = fs.String("bench-nn", "", "run the nn micro-benchmarks and merge results into -bench-out under this label (e.g. \"after\"), then exit")
		benchOut      = fs.String("bench-out", "BENCH_nn.json", "output file for -bench-nn results")
		benchScore    = fs.String("bench-score", "", "run the batched-scoring benchmarks (ScoreBatch, ServeRank) and merge results into -bench-score-out under this label, then exit")
		benchScoreOut = fs.String("bench-score-out", "BENCH_score.json", "output file for -bench-score results")
		benchServe    = fs.String("bench-serve", "", "run the daemon ingest benchmarks (sharded vs unsharded day cycles) and merge results into -bench-serve-out under this label, then exit")
		benchServeOut = fs.String("bench-serve-out", "BENCH_serve.json", "output file for -bench-serve results")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *benchNN != "" {
		return runBenchNN(*benchOut, *benchNN)
	}
	if *benchScore != "" {
		return runBenchScore(*benchScoreOut, *benchScore)
	}
	if *benchServe != "" {
		return runBenchServe(*benchServeOut, *benchServe)
	}

	var p experiment.Preset
	switch *preset {
	case "tiny":
		p = experiment.TinyPreset()
	case "fast":
		p = experiment.FastPreset()
	case "paper":
		p = experiment.PaperPreset()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}

	r := &reproducer{preset: p, out: *outDir, quiet: *quiet}
	want := func(f string) bool { return *fig == "all" || *fig == f }

	if want("4") || want("5") || want("6") {
		fmt.Printf("building CERT dataset (%s preset, %d users/dept)...\n", p.Name, p.UsersPerDept)
		start := time.Now()
		data, err := experiment.BuildCERTData(p)
		if err != nil {
			return err
		}
		fmt.Printf("dataset ready in %v\n", time.Since(start).Round(time.Second))
		r.data = data
	}

	if want("4") {
		if err := r.fig4(); err != nil {
			return err
		}
	}
	if want("5") || want("6") {
		if err := r.fig56(want("5"), want("6")); err != nil {
			return err
		}
	}
	if want("7") {
		if err := r.fig7(); err != nil {
			return err
		}
	}
	fmt.Println("done; outputs in", *outDir)
	return nil
}

type reproducer struct {
	preset experiment.Preset
	out    string
	quiet  bool
	data   *experiment.CERTData
}

func (r *reproducer) emitChart(c *plot.Chart, path string) error {
	if err := c.SaveCSV(filepath.Join(r.out, path)); err != nil {
		return err
	}
	if !r.quiet {
		fmt.Println(c.ASCII(12, 72))
	}
	return nil
}

func (r *reproducer) fig4() error {
	fmt.Println("== Figure 4: compound behavioral deviation matrices ==")
	heatmaps, err := experiment.BuildFig4(r.data)
	if err != nil {
		return err
	}
	for i, h := range heatmaps {
		if err := h.SaveCSV(filepath.Join(r.out, fmt.Sprintf("fig4_%d.csv", i+1))); err != nil {
			return err
		}
		if !r.quiet {
			fmt.Println(h.ASCII())
		}
	}
	return nil
}

func (r *reproducer) fig56(want5, want6 bool) error {
	runsByModel := make(map[experiment.ModelKind][]*experiment.ScenarioRun)
	scenarios := r.data.Gen.Scenarios()

	for _, kind := range experiment.AllModelKinds() {
		for _, sc := range scenarios {
			fmt.Printf("running %v on %s...\n", kind, sc.Name())
			start := time.Now()
			run, err := experiment.RunScenario(r.data, kind, sc)
			if err != nil {
				return err
			}
			fmt.Printf("  done in %v\n", time.Since(start).Round(time.Second))
			runsByModel[kind] = append(runsByModel[kind], run)

			if want5 && sc.Name() == "r6.1-s2" {
				if err := r.fig5(kind, run); err != nil {
					return err
				}
			}
		}
	}

	if !want6 {
		return nil
	}
	fmt.Println("== Figure 6: model comparison ==")
	res, err := experiment.BuildFig6(runsByModel)
	if err != nil {
		return err
	}
	if err := r.emitChart(res.ROC, "fig6a_roc.csv"); err != nil {
		return err
	}
	if err := r.emitChart(res.PR, "fig6b_pr.csv"); err != nil {
		return err
	}
	if err := res.Summary.SaveCSV(filepath.Join(r.out, "fig6_summary.csv")); err != nil {
		return err
	}
	fmt.Println(res.Summary.String())

	// Figure 6(c): critic N sweep reuses the ACOBE score series; only the
	// critic re-ranks, so no retraining is needed.
	runsByN := make(map[int][]*experiment.ScenarioRun)
	for n := 1; n <= 3; n++ {
		runs, err := experiment.ReRankRuns(r.data, runsByModel[experiment.ModelACOBE], n)
		if err != nil {
			return err
		}
		runsByN[n] = runs
	}
	resN, err := experiment.BuildFig6N(runsByN)
	if err != nil {
		return err
	}
	if err := r.emitChart(resN.PR, "fig6c_pr_n.csv"); err != nil {
		return err
	}
	if err := resN.Summary.SaveCSV(filepath.Join(r.out, "fig6c_summary.csv")); err != nil {
		return err
	}
	fmt.Println(resN.Summary.String())
	return nil
}

func (r *reproducer) fig5(kind experiment.ModelKind, run *experiment.ScenarioRun) error {
	aspects := []string{experiment.Fig5AspectFor(kind)}
	if kind == experiment.ModelACOBE {
		aspects = []string{"device", "http"} // Figure 5(a) and 5(b)
	}
	for _, aspect := range aspects {
		w, err := experiment.BuildFig5Waveform(r.data, run, aspect)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig5_%s_%s.csv", strings.ToLower(kind.String()), aspect)
		name = strings.ReplaceAll(name, "/", "-")
		if err := w.Chart.SaveCSV(filepath.Join(r.out, name)); err != nil {
			return err
		}
		fmt.Printf("Fig5 %v/%s: mean=%.5f std=%.5f\n", kind, aspect, w.Mean, w.Std)
		if !r.quiet {
			fmt.Println(w.Chart.ASCII(10, 72))
		}
	}
	return nil
}

func (r *reproducer) fig7() error {
	fmt.Println("== Figure 7: enterprise case studies ==")
	p := experiment.EnterpriseDefaultPreset()
	if r.preset.Name == "tiny" {
		p = experiment.EnterpriseTinyPreset()
	}
	for _, kind := range []experiment.AttackKind{experiment.AttackRansomware, experiment.AttackZeus} {
		fmt.Printf("running %s case study (%d employees)...\n", kind, p.Employees)
		start := time.Now()
		run, err := experiment.RunEnterprise(p, kind)
		if err != nil {
			return err
		}
		fmt.Printf("  done in %v\n", time.Since(start).Round(time.Second))
		charts, rank, err := experiment.BuildFig7(run)
		if err != nil {
			return err
		}
		for _, c := range charts {
			name := fmt.Sprintf("fig7_%s_%s.csv", kind, strings.ToLower(strings.Split(c.Title, " ")[1]))
			if err := r.emitChart(c, name); err != nil {
				return err
			}
		}
		if err := r.emitChart(rank, fmt.Sprintf("fig7_%s_rank.csv", kind)); err != nil {
			return err
		}
		attackIdx := int(run.AttackDay - run.ScoreFrom)
		if attackIdx >= 0 && attackIdx < len(run.VictimDailyRank) {
			fmt.Printf("Fig7 %s: victim daily ranks from attack day: %v\n",
				kind, run.VictimDailyRank[attackIdx:minInt(attackIdx+16, len(run.VictimDailyRank))])
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
