package main

import "testing"

func TestRunRejectsBadPreset(t *testing.T) {
	if err := run([]string{"-preset", "nope"}); err == nil {
		t.Error("no error for unknown preset")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	if err := run([]string{"-fig"}); err == nil {
		t.Error("no error for malformed flags")
	}
}
