package main

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/deviation"
	"acobe/internal/experiment"
	"acobe/internal/features"
	"acobe/internal/nn"
	"acobe/internal/serve"
	"acobe/pkg/acobe"
)

// runBenchScore measures the scoring hot path end to end and merges the
// results into path under label (same JSON schema as BENCH_nn.json):
//
//	ScoreBatch — Detector.ScoreBatchInto over the full CERT r6.1-s1
//	             testing window (every user × every test day × all three
//	             aspects) on the bench-scale organization, after a one-off
//	             Fit, recycling the result series between calls.
//	ServeRank  — serve.Server.Rank on a selftest-scale online daemon that
//	             has ingested its whole timeline and retrained once.
//
// Both benchmarks pin GOMAXPROCS=1 and the nn worker budget to 1 so that
// before/after runs compare pure single-thread throughput of the scoring
// engine, not scheduling luck.
func runBenchScore(path, label string) error {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	defer nn.SetWorkerBudget(nn.WorkerBudget())
	nn.SetWorkerBudget(1)

	fmt.Println("bench-score: building CERT dataset and training the ensemble...")
	start := time.Now()
	det, scoreFrom, scoreTo, err := benchScoreDetector()
	if err != nil {
		return err
	}
	fmt.Printf("bench-score: detector ready in %v (scoring %v..%v)\n",
		time.Since(start).Round(time.Second), scoreFrom, scoreTo)

	fmt.Println("bench-score: booting the online daemon and retraining...")
	start = time.Now()
	srv, rankFrom, rankTo, err := benchScoreServer()
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	fmt.Printf("bench-score: daemon ready in %v\n", time.Since(start).Round(time.Second))

	run := map[string]func(b *testing.B){
		"ScoreBatch": func(b *testing.B) {
			ctx := context.Background()
			// One warm-up call allocates the result series and scorer
			// pools; the timed loop then runs in steady state.
			dst, err := det.ScoreBatchInto(ctx, nil, scoreFrom, scoreTo)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dst, err = det.ScoreBatchInto(ctx, dst, scoreFrom, scoreTo); err != nil {
					b.Fatal(err)
				}
			}
		},
		"ServeRank": func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srv.Rank(ctx, rankFrom, rankTo); err != nil {
					b.Fatal(err)
				}
			}
		},
	}
	return mergeBenchReport(path, label, run)
}

// benchScoreDetector trains one ACOBE ensemble on the bench-scale CERT
// organization's r6.1-s1 split and returns it with the testing window.
func benchScoreDetector() (*core.Detector, cert.Day, cert.Day, error) {
	p := experiment.TinyPreset()
	p.Name = "bench-score"
	p.UsersPerDept = 8
	p.TrainStride = 4
	data, err := experiment.BuildCERTData(p)
	if err != nil {
		return nil, 0, 0, err
	}
	sc := data.ScenarioByName("r6.1-s1")
	if sc == nil {
		return nil, 0, 0, fmt.Errorf("bench-score: scenario r6.1-s1 not found")
	}
	dsStart, dsEnd := data.Span()
	trainFrom, trainTo, testFrom, testTo, err := cert.SplitForScenario(sc, dsStart, dsEnd)
	if err != nil {
		return nil, 0, 0, err
	}
	cfg := core.Config{
		Deviation:    p.Deviation,
		Aspects:      features.ACOBEAspects(),
		IncludeGroup: true,
		AEConfig:     p.AEConfig,
		TrainStride:  p.TrainStride,
		N:            p.N,
		Seed:         p.Seed,
	}
	ind, group, err := data.Fields(cfg.Deviation)
	if err != nil {
		return nil, 0, 0, err
	}
	det, err := core.NewDetector(cfg, ind, group, data.UserGroup)
	if err != nil {
		return nil, 0, 0, err
	}
	if _, err := det.Fit(context.Background(), trainFrom, trainTo); err != nil {
		return nil, 0, 0, err
	}
	return det, testFrom, testTo, nil
}

// benchScoreServer boots a selftest-scale online daemon, replays its whole
// timeline (ingest + day closes), retrains once, and returns it ready to
// answer Rank queries.
func benchScoreServer() (*serve.Server, cert.Day, cert.Day, error) {
	const (
		endDay     = cert.Day(95)
		window     = 7
		matrixDays = 3
		trainFrom  = cert.Day(8)
		trainTo    = cert.Day(74)
		rankFrom   = cert.Day(80)
	)
	gcfg := cert.SmallConfig(3)
	gcfg.Seed = 7
	gcfg.Start = 0
	gcfg.End = endDay
	gcfg.EnvChanges = nil
	gcfg.Scenarios = nil
	gen, err := cert.New(gcfg)
	if err != nil {
		return nil, 0, 0, err
	}
	var (
		users      []string
		membership []int
	)
	deptIndex := make(map[string]int)
	for i, d := range gen.Departments() {
		deptIndex[d] = i
	}
	for _, u := range gen.Users() {
		users = append(users, u.ID)
		membership = append(membership, deptIndex[u.Department])
	}
	srv, err := serve.New(serve.Config{
		Users:      users,
		Groups:     gen.Departments(),
		Membership: membership,
		Start:      0,
		Deviation: deviation.Config{
			Window: window, MatrixDays: matrixDays,
			Delta: 3, Epsilon: 1, Weighted: true,
		},
		DetectorOptions: []acobe.Option{
			acobe.WithAspects(acobe.ACOBEAspects()...),
			acobe.WithSeed(7),
			acobe.WithVotes(2),
			acobe.WithTrainStride(2),
			acobe.WithModelConfig(func(dim int) acobe.ModelConfig {
				cfg := acobe.FastModelConfig(dim)
				cfg.Hidden = []int{16, 8}
				cfg.Epochs = 30
				return cfg
			}),
		},
	})
	if err != nil {
		return nil, 0, 0, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	err = gen.Stream(func(d cert.Day, events []cert.Event) error {
		evs := make([]serve.Event, len(events))
		for i := range events {
			evs[i] = serve.Event{Cert: &events[i]}
		}
		if err := srv.Submit(ctx, evs); err != nil {
			return err
		}
		return srv.CloseDay(ctx, d)
	})
	if err != nil {
		srv.Shutdown(ctx)
		return nil, 0, 0, err
	}
	if err := srv.Retrain(ctx, trainFrom, trainTo, true); err != nil {
		srv.Shutdown(ctx)
		return nil, 0, 0, err
	}
	return srv, rankFrom, endDay, nil
}
