package main

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/serve"
)

// runBenchServe measures the online daemon's write path and merges the
// results into path under label (same JSON schema as BENCH_nn.json):
//
//	ServeIngestShards1 — one-day cycles (Submit every user's events, then
//	                     CloseDay) through a single global extractor.
//	ServeIngestShards4 — the same workload partitioned across 4 consistent-
//	                     hashed shards, each extracting its user subset on
//	                     its own goroutine.
//
// Unlike -bench-score, GOMAXPROCS is left alone: shard scaling is the
// point, so the entry records whatever parallelism the host offers (the
// gomaxprocs field in the JSON says how many cores the numbers used — on
// a single core the two counts should be near parity, which is itself the
// regression signal for shard overhead).
func runBenchServe(path, label string) error {
	fmt.Printf("bench-serve: %d-core host (GOMAXPROCS=%d)\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	run := map[string]func(b *testing.B){
		"ServeIngestShards1": func(b *testing.B) { benchServeIngestDays(b, 1) },
		"ServeIngestShards4": func(b *testing.B) { benchServeIngestDays(b, 4) },
	}
	return mergeBenchReport(path, label, run)
}

// benchServeIngestDays mirrors BenchmarkServeIngest in the root package:
// each iteration is one full day cycle against a 48-user organization.
func benchServeIngestDays(b *testing.B, shards int) {
	users := make([]string, 48)
	membership := make([]int, len(users))
	for i := range users {
		users[i] = fmt.Sprintf("ING%04d", i)
		membership[i] = i % 3
	}
	srv, err := serve.New(serve.Config{
		Users:      users,
		Groups:     []string{"g0", "g1", "g2"},
		Membership: membership,
		Start:      0,
		Shards:     shards,
		Deviation: deviation.Config{
			Window: 7, MatrixDays: 3,
			Delta: 3, Epsilon: 1, Weighted: true,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cert.Day(i)
		if err := srv.Submit(ctx, benchIngestDay(users, d)); err != nil {
			b.Fatal(err)
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIngestDay synthesizes one day of CERT events for every user so a
// day cycle exercises the full extraction surface.
func benchIngestDay(users []string, d cert.Day) []serve.Event {
	at := func(h int) time.Time { return d.Date().Add(time.Duration(h) * time.Hour) }
	evs := make([]serve.Event, 0, 6*len(users))
	for i, u := range users {
		evs = append(evs,
			serve.Event{Cert: &cert.Event{Type: cert.EventLogon, Time: at(7 + i%4), User: u, Activity: cert.ActLogon}},
			serve.Event{Cert: &cert.Event{Type: cert.EventDevice, Time: at(9), User: u,
				PC: fmt.Sprintf("PC-%d", (int(d)+i)%7), Activity: cert.ActConnect}},
			serve.Event{Cert: &cert.Event{Type: cert.EventFile, Time: at(11), User: u,
				Activity: cert.ActFileOpen, Direction: cert.DirLocal, FileID: fmt.Sprintf("F%d", (int(d)+3*i)%11)}},
			serve.Event{Cert: &cert.Event{Type: cert.EventHTTP, Time: at(13), User: u,
				Activity: cert.ActVisit, Domain: fmt.Sprintf("d%d.com", (int(d)+i)%5)}},
			serve.Event{Cert: &cert.Event{Type: cert.EventDevice, Time: at(16), User: u,
				PC: fmt.Sprintf("PC-%d", (int(d)+i)%7), Activity: cert.ActDisconnect}},
			serve.Event{Cert: &cert.Event{Type: cert.EventLogon, Time: at(18), User: u, Activity: cert.ActLogoff}},
		)
	}
	return evs
}
