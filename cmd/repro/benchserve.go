package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"acobe/internal/audit"
	"acobe/internal/benchreport"
	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/obs"
	"acobe/internal/serve"
)

// observerOverhead is BENCH_serve.json's "observer_overhead" section: the
// measured cost of attaching per-stage instrumentation, pinned by running
// the identical day-cycle workload with and without an Observer. The
// acceptance bar is 0 allocs/op added and a throughput delta within noise
// (±5%): the hooks are one clock read plus a few atomic adds per batch,
// never per event.
type observerOverhead struct {
	Shards1OffNsPerOp int64   `json:"shards1_obs_off_ns_per_op"`
	Shards1OnNsPerOp  int64   `json:"shards1_obs_on_ns_per_op"`
	Shards1DeltaPct   float64 `json:"shards1_delta_pct"`
	Shards4OffNsPerOp int64   `json:"shards4_obs_off_ns_per_op"`
	Shards4OnNsPerOp  int64   `json:"shards4_obs_on_ns_per_op"`
	Shards4DeltaPct   float64 `json:"shards4_delta_pct"`
	AllocsPerOpDelta  int64   `json:"allocs_per_op_delta"`
	HookSetNsPerCycle int64   `json:"hook_set_ns_per_cycle"`
	HookSetPctShards1 float64 `json:"hook_set_pct_of_shards1_cycle"`
	HookSetAllocs     int64   `json:"hook_set_allocs_per_cycle"`
	Note              string  `json:"note"`
}

// auditOverhead is BENCH_serve.json's "audit_overhead" section: what the
// tamper-evident trail (PersistConfig.Audit) costs the durable write
// path. Two measurements, same philosophy as observer_overhead: a
// deterministic tight-loop bound on the per-append hashing (Merkle leaves
// + batch root + chain fold — the obs wal_hash stage), and paired
// fixed-work durable day-cycle runs with audit off vs on. The acceptance
// bar for the hot path is 0 allocs per append.
type auditOverhead struct {
	ChainAppendNsPerOp int64   `json:"chain_append_ns_per_op"`
	ChainAppendAllocs  int64   `json:"chain_append_allocs_per_op"`
	Shards1OffNsPerOp  int64   `json:"shards1_audit_off_ns_per_op"`
	Shards1OnNsPerOp   int64   `json:"shards1_audit_on_ns_per_op"`
	Shards1DeltaPct    float64 `json:"shards1_delta_pct"`
	Shards4OffNsPerOp  int64   `json:"shards4_audit_off_ns_per_op"`
	Shards4OnNsPerOp   int64   `json:"shards4_audit_on_ns_per_op"`
	Shards4DeltaPct    float64 `json:"shards4_delta_pct"`
	Note               string  `json:"note"`
}

// runBenchServe measures the online daemon's write path and merges the
// results into BENCH_serve.json:
//
//	section "benchmarks" (per label, e.g. "after"):
//	  ServeIngestShards1[Obs] — one-day cycles (Submit every user's
//	                            events, then CloseDay) through a single
//	                            global extractor, without/with an Observer.
//	  ServeIngestShards4[Obs] — the same workload across 4 consistent-
//	                            hashed shards.
//	section "observer_overhead": the obs-on/off comparison note.
//
// Other sections of the file (cmd/acobeload's "acobeload") are preserved
// byte-for-byte. A legacy file whose top level is the label map itself is
// migrated under "benchmarks".
//
// Unlike -bench-score, GOMAXPROCS is left alone: shard scaling is the
// point, so the entry records whatever parallelism the host offers (the
// gomaxprocs field in the JSON says how many cores the numbers used — on
// a single core the two counts should be near parity, which is itself the
// regression signal for shard overhead).
func runBenchServe(path, label string) error {
	fmt.Printf("bench-serve: %d-core host (GOMAXPROCS=%d)\n", runtime.NumCPU(), runtime.GOMAXPROCS(0))
	run := map[string]func(b *testing.B){
		"ServeIngestShards1":    func(b *testing.B) { benchServeIngestDays(b, 1, false) },
		"ServeIngestShards1Obs": func(b *testing.B) { benchServeIngestDays(b, 1, true) },
		"ServeIngestShards4":    func(b *testing.B) { benchServeIngestDays(b, 4, false) },
		"ServeIngestShards4Obs": func(b *testing.B) { benchServeIngestDays(b, 4, true) },
	}

	entry := &benchNNLabel{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Benchmarks: make(map[string]benchNNEntry),
	}
	names := make([]string, 0, len(run))
	for name := range run {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := testing.Benchmark(run[name])
		entry.Benchmarks[name] = benchNNEntry{
			NsPerOp:     res.NsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Iterations:  res.N,
		}
		fmt.Printf("bench %-22s %12d ns/op %10d B/op %6d allocs/op\n",
			name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	}

	// The overhead comparison needs *identical work* on both sides, which
	// auto-scaled testing.Benchmark runs do not give: each variant gets
	// its own iteration count, and a day cycle's cost depends on how many
	// days came before it (windows fill, state grows), so different N
	// weigh cheap early cycles differently and fake double-digit deltas.
	// Instead, time paired fixed-cycle runs (same warmup, same measured
	// cycle count), alternating off/on, and keep each side's minimum.
	deltaPct := func(off, on int64) float64 {
		if off == 0 {
			return 0
		}
		return float64(on-off) / float64(off) * 100
	}
	overhead := observerOverhead{
		AllocsPerOpDelta: entry.Benchmarks["ServeIngestShards1Obs"].AllocsPerOp -
			entry.Benchmarks["ServeIngestShards1"].AllocsPerOp,
		Note: "two independent measurements: (a) paired fixed-work runs — identical " +
			fmt.Sprintf("%d-cycle", measuredCycles) + " 48-user day-cycle windows after warmup+GC, min of " +
			fmt.Sprintf("%d", overheadReps) + " alternating off/on reps, because timing noise on a " +
			"virtualized single core is strictly additive so the minimum is the best " +
			"estimate of true cost; and (b) hook_set_ns_per_cycle — a tight-loop timing " +
			"of the full per-cycle hook set (five clock-pair stage observations plus a " +
			"queue-depth note), which bounds the true added cost deterministically; the " +
			"≤5% contract is met by (b) as a share of the off-side cycle and " +
			"cross-checked by (a); allocs delta comes from the auto-scaled benchmarks " +
			"above (allocation counts are iteration-stable even when timings are not)",
	}
	var err error
	if overhead.Shards1OffNsPerOp, overhead.Shards1OnNsPerOp, err = timeOverheadPair(1); err != nil {
		return err
	}
	if overhead.Shards4OffNsPerOp, overhead.Shards4OnNsPerOp, err = timeOverheadPair(4); err != nil {
		return err
	}
	overhead.Shards1DeltaPct = deltaPct(overhead.Shards1OffNsPerOp, overhead.Shards1OnNsPerOp)
	overhead.Shards4DeltaPct = deltaPct(overhead.Shards4OffNsPerOp, overhead.Shards4OnNsPerOp)
	overhead.HookSetNsPerCycle, overhead.HookSetAllocs = timeHookSet()
	if overhead.Shards1OffNsPerOp > 0 {
		overhead.HookSetPctShards1 = float64(overhead.HookSetNsPerCycle) / float64(overhead.Shards1OffNsPerOp) * 100
	}
	fmt.Printf("observer overhead: shards=1 %+.2f%% (%d → %d ns/cycle), shards=4 %+.2f%% (%d → %d ns/cycle)\n",
		overhead.Shards1DeltaPct, overhead.Shards1OffNsPerOp, overhead.Shards1OnNsPerOp,
		overhead.Shards4DeltaPct, overhead.Shards4OffNsPerOp, overhead.Shards4OnNsPerOp)
	fmt.Printf("observer hook set: %d ns/cycle (%d allocs), %.3f%% of a shards=1 cycle\n",
		overhead.HookSetNsPerCycle, overhead.HookSetAllocs, overhead.HookSetPctShards1)

	audOver := auditOverhead{
		Note: "chain_append is the tight-loop per-frame audit surface (Merkle leaves over " +
			"an 8-event batch, batch root, chain fold — the wal_hash obs stage) and must " +
			"stay 0 allocs/op; the paired numbers are identical durable " +
			fmt.Sprintf("%d-cycle", auditMeasuredCycles) + " 48-user day-cycle windows (WAL + fsync-on-close + " +
			"snapshots off) with PersistConfig.Audit off vs on, min of " +
			fmt.Sprintf("%d", auditOverheadReps) + " alternating reps",
	}
	audOver.ChainAppendNsPerOp, audOver.ChainAppendAllocs = timeChainAppend()
	if audOver.Shards1OffNsPerOp, audOver.Shards1OnNsPerOp, err = timeAuditPair(1); err != nil {
		return err
	}
	if audOver.Shards4OffNsPerOp, audOver.Shards4OnNsPerOp, err = timeAuditPair(4); err != nil {
		return err
	}
	audOver.Shards1DeltaPct = deltaPct(audOver.Shards1OffNsPerOp, audOver.Shards1OnNsPerOp)
	audOver.Shards4DeltaPct = deltaPct(audOver.Shards4OffNsPerOp, audOver.Shards4OnNsPerOp)
	fmt.Printf("audit chain append: %d ns/op (%d allocs)\n", audOver.ChainAppendNsPerOp, audOver.ChainAppendAllocs)
	fmt.Printf("audit overhead: shards=1 %+.2f%% (%d → %d ns/cycle), shards=4 %+.2f%% (%d → %d ns/cycle)\n",
		audOver.Shards1DeltaPct, audOver.Shards1OffNsPerOp, audOver.Shards1OnNsPerOp,
		audOver.Shards4DeltaPct, audOver.Shards4OffNsPerOp, audOver.Shards4OnNsPerOp)

	sections, err := benchreport.Load(path)
	if err != nil {
		return err
	}
	benchmarks := make(map[string]*benchNNLabel)
	if ok, err := benchreport.Get(sections, "benchmarks", &benchmarks); err != nil {
		return err
	} else if !ok && len(sections) > 0 {
		// Legacy layout: the whole file was the label map. Migrate it under
		// "benchmarks" (labels that don't parse as label entries are not a
		// label map — start fresh rather than guess).
		legacy := make(map[string]*benchNNLabel)
		raw, _ := json.Marshal(sections)
		if err := json.Unmarshal(raw, &legacy); err == nil {
			benchmarks = legacy
			for name := range sections {
				delete(sections, name)
			}
		}
	}
	benchmarks[label] = entry
	if err := benchreport.Set(sections, "benchmarks", benchmarks); err != nil {
		return err
	}
	if err := benchreport.Set(sections, "observer_overhead", overhead); err != nil {
		return err
	}
	if err := benchreport.Set(sections, "audit_overhead", audOver); err != nil {
		return err
	}
	if err := benchreport.Save(path, sections); err != nil {
		return err
	}
	fmt.Printf("wrote %s (label %q)\n", path, label)
	return nil
}

// Overhead-pair geometry: every timed run does exactly warmupCycles
// untimed day cycles (fills the deviation window so measured cycles are
// steady-state) then measuredCycles timed ones. The measured window must
// dwarf the GC period — a day cycle allocates ~250 KB, so a short window
// sees ±15% swings purely from how many collections land inside it;
// 512 cycles (~10 s of allocation at this rate) averages them out.
const (
	overheadReps   = 9
	warmupCycles   = 16
	measuredCycles = 512
)

// timeOverheadPair measures ns per steady-state day cycle without and
// with an Observer, interleaving the two variants overheadReps times and
// keeping each side's minimum (the standard way to strip scheduler and
// GC noise from a paired comparison).
func timeOverheadPair(shards int) (offNs, onNs int64, err error) {
	min := func(cur, v int64) int64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	for rep := 0; rep < overheadReps; rep++ {
		off, err := runFixedCycles(shards, false)
		if err != nil {
			return 0, 0, err
		}
		on, err := runFixedCycles(shards, true)
		if err != nil {
			return 0, 0, err
		}
		offNs = min(offNs, off)
		onNs = min(onNs, on)
	}
	return offNs, onNs, nil
}

// timeHookSet times the complete per-day-cycle hook sequence in a tight
// loop: the five stage observations the serve pipeline makes per cycle
// (submit, enqueue, apply, close, merge — each a clock read at entry and
// a histogram record at exit) plus the queue-depth high-water note. The
// paired wall-clock comparison above drowns a ~1 µs signal in the host's
// scheduler/GC noise; this measures the signal directly, so
// hook_set_ns_per_cycle / shards1_obs_off_ns_per_op is a deterministic
// upper bound on the fractional slowdown instrumentation can add.
func timeHookSet() (nsPerCycle, allocsPerCycle int64) {
	o := obs.NewObserver()
	st := o.ShardStats(0, 1)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t0 := o.Clock()
			o.ObserveSubmit(t0, 288)
			t1 := o.Clock()
			o.ObserveEnqueue(t1)
			st.NoteQueueDepth(1)
			t2 := o.Clock()
			st.ObserveApply(t2)
			t3 := o.Clock()
			o.ObserveClose(t3)
			t4 := o.Clock()
			o.ObserveMerge(t4)
		}
	})
	return res.NsPerOp(), res.AllocsPerOp()
}

// runFixedCycles builds a fresh server, runs the fixed warmup+measure day
// cycles of the overhead pair, and returns ns per measured cycle.
func runFixedCycles(shards int, instrumented bool) (int64, error) {
	users := make([]string, 48)
	membership := make([]int, len(users))
	for i := range users {
		users[i] = fmt.Sprintf("ING%04d", i)
		membership[i] = i % 3
	}
	var observer *obs.Observer
	if instrumented {
		observer = obs.NewObserver()
	}
	srv, err := serve.New(serve.Config{
		Users:      users,
		Groups:     []string{"g0", "g1", "g2"},
		Membership: membership,
		Start:      0,
		Shards:     shards,
		Observer:   observer,
		Deviation: deviation.Config{
			Window: 7, MatrixDays: 3,
			Delta: 3, Epsilon: 1, Weighted: true,
		},
	})
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	cycle := func(i int) error {
		d := cert.Day(i)
		if err := srv.Submit(ctx, benchIngestDay(users, d)); err != nil {
			return err
		}
		return srv.CloseDay(ctx, d)
	}
	for i := 0; i < warmupCycles; i++ {
		if err := cycle(i); err != nil {
			return 0, err
		}
	}
	runtime.GC() // both sides start the timed window from a collected heap
	start := time.Now()
	for i := warmupCycles; i < warmupCycles+measuredCycles; i++ {
		if err := cycle(i); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / measuredCycles, nil
}

// Audit-pair geometry: durable cycles fsync at every close, so the same
// measured window costs more wall clock than the in-memory observer pair;
// fewer reps keep the total run bounded while min-of-reps still strips
// the noise.
const (
	auditOverheadReps   = 5
	auditMeasuredCycles = 256
)

// timeChainAppend bounds the per-append audit hashing deterministically:
// the identical work internal/audit's BenchmarkChainFoldAppend measures
// (Merkle leaves over an 8-event batch, batch root, chain fold over a
// 1 KiB frame), timed in-process so the number lands in the JSON.
func timeChainAppend() (nsPerOp, allocsPerOp int64) {
	c := audit.NewChain(audit.Head{})
	tr := audit.NewTree()
	frame := make([]byte, 1024)
	for i := range frame {
		frame[i] = 0xAB
	}
	events := make([][]byte, 8)
	for i := range events {
		events[i] = []byte(fmt.Sprintf(`{"type":1,"user":"U%04d","activity":"logon"}`, i))
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Reset()
			for _, e := range events {
				tr.AddLeaf(e)
			}
			c.FoldWithRoot(frame, tr.Root())
		}
	})
	return res.NsPerOp(), res.AllocsPerOp()
}

// timeAuditPair measures ns per steady-state durable day cycle with
// PersistConfig.Audit off and on, interleaved like timeOverheadPair.
func timeAuditPair(shards int) (offNs, onNs int64, err error) {
	min := func(cur, v int64) int64 {
		if cur == 0 || v < cur {
			return v
		}
		return cur
	}
	for rep := 0; rep < auditOverheadReps; rep++ {
		off, err := runFixedCyclesDurable(shards, false)
		if err != nil {
			return 0, 0, err
		}
		on, err := runFixedCyclesDurable(shards, true)
		if err != nil {
			return 0, 0, err
		}
		offNs = min(offNs, off)
		onNs = min(onNs, on)
	}
	return offNs, onNs, nil
}

// runFixedCyclesDurable is runFixedCycles against a throwaway data
// directory: every cycle writes ahead to the WAL and fsyncs at the close
// barrier, with the audit chain off or on. Snapshots stay off so the pair
// isolates the append-path delta.
func runFixedCyclesDurable(shards int, auditOn bool) (int64, error) {
	dir, err := os.MkdirTemp("", "acobe-bench-audit-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	users := make([]string, 48)
	membership := make([]int, len(users))
	for i := range users {
		users[i] = fmt.Sprintf("ING%04d", i)
		membership[i] = i % 3
	}
	srv, _, err := serve.Open(serve.Config{
		Users:      users,
		Groups:     []string{"g0", "g1", "g2"},
		Membership: membership,
		Start:      0,
		Shards:     shards,
		Deviation: deviation.Config{
			Window: 7, MatrixDays: 3,
			Delta: 3, Epsilon: 1, Weighted: true,
		},
	}, serve.PersistConfig{Dir: dir, Audit: auditOn, SnapshotEvery: 1 << 20})
	if err != nil {
		return 0, err
	}
	ctx := context.Background()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	cycle := func(i int) error {
		d := cert.Day(i)
		if err := srv.Submit(ctx, benchIngestDay(users, d)); err != nil {
			return err
		}
		return srv.CloseDay(ctx, d)
	}
	for i := 0; i < warmupCycles; i++ {
		if err := cycle(i); err != nil {
			return 0, err
		}
	}
	runtime.GC()
	start := time.Now()
	for i := warmupCycles; i < warmupCycles+auditMeasuredCycles; i++ {
		if err := cycle(i); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Nanoseconds() / auditMeasuredCycles, nil
}

// benchServeIngestDays mirrors BenchmarkServeIngest in the root package:
// each iteration is one full day cycle against a 48-user organization,
// optionally instrumented.
func benchServeIngestDays(b *testing.B, shards int, instrumented bool) {
	users := make([]string, 48)
	membership := make([]int, len(users))
	for i := range users {
		users[i] = fmt.Sprintf("ING%04d", i)
		membership[i] = i % 3
	}
	var observer *obs.Observer
	if instrumented {
		observer = obs.NewObserver()
	}
	srv, err := serve.New(serve.Config{
		Users:      users,
		Groups:     []string{"g0", "g1", "g2"},
		Membership: membership,
		Start:      0,
		Shards:     shards,
		Observer:   observer,
		Deviation: deviation.Config{
			Window: 7, MatrixDays: 3,
			Delta: 3, Epsilon: 1, Weighted: true,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cert.Day(i)
		if err := srv.Submit(ctx, benchIngestDay(users, d)); err != nil {
			b.Fatal(err)
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			b.Fatal(err)
		}
	}
}

// benchIngestDay synthesizes one day of CERT events for every user so a
// day cycle exercises the full extraction surface.
func benchIngestDay(users []string, d cert.Day) []serve.Event {
	at := func(h int) time.Time { return d.Date().Add(time.Duration(h) * time.Hour) }
	evs := make([]serve.Event, 0, 6*len(users))
	for i, u := range users {
		evs = append(evs,
			serve.Event{Cert: &cert.Event{Type: cert.EventLogon, Time: at(7 + i%4), User: u, Activity: cert.ActLogon}},
			serve.Event{Cert: &cert.Event{Type: cert.EventDevice, Time: at(9), User: u,
				PC: fmt.Sprintf("PC-%d", (int(d)+i)%7), Activity: cert.ActConnect}},
			serve.Event{Cert: &cert.Event{Type: cert.EventFile, Time: at(11), User: u,
				Activity: cert.ActFileOpen, Direction: cert.DirLocal, FileID: fmt.Sprintf("F%d", (int(d)+3*i)%11)}},
			serve.Event{Cert: &cert.Event{Type: cert.EventHTTP, Time: at(13), User: u,
				Activity: cert.ActVisit, Domain: fmt.Sprintf("d%d.com", (int(d)+i)%5)}},
			serve.Event{Cert: &cert.Event{Type: cert.EventDevice, Time: at(16), User: u,
				PC: fmt.Sprintf("PC-%d", (int(d)+i)%7), Activity: cert.ActDisconnect}},
			serve.Event{Cert: &cert.Event{Type: cert.EventLogon, Time: at(18), User: u, Activity: cert.ActLogoff}},
		)
	}
	return evs
}
