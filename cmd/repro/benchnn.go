package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"acobe/internal/mathx"
	"acobe/internal/nn"
)

// benchNNEntry is one benchmark's result inside BENCH_nn.json /
// BENCH_score.json.
type benchNNEntry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Iterations  int   `json:"iterations"`
}

// benchNNLabel groups one labeled run (e.g. "before", "after") of the nn
// micro-benchmarks together with the environment it ran under.
type benchNNLabel struct {
	GOMAXPROCS int                     `json:"gomaxprocs"`
	GoVersion  string                  `json:"go_version"`
	Benchmarks map[string]benchNNEntry `json:"benchmarks"`
}

// mergeBenchReport runs each named benchmark function, then merges the
// results into the JSON report at path under label, preserving any other
// labels already in the file. Both bench runners (-bench-nn, -bench-score)
// share it so their reports stay schema-identical and diffable.
func mergeBenchReport(path, label string, run map[string]func(b *testing.B)) error {
	report := make(map[string]*benchNNLabel)
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &report); err != nil {
			return fmt.Errorf("bench: parse existing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("bench: %w", err)
	}

	entry := &benchNNLabel{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Benchmarks: make(map[string]benchNNEntry),
	}
	names := make([]string, 0, len(run))
	for name := range run {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		res := testing.Benchmark(run[name])
		entry.Benchmarks[name] = benchNNEntry{
			NsPerOp:     res.NsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			Iterations:  res.N,
		}
		fmt.Printf("bench %-12s %12d ns/op %10d B/op %6d allocs/op\n",
			name, res.NsPerOp(), res.AllocedBytesPerOp(), res.AllocsPerOp())
	}
	report[label] = entry

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	fmt.Printf("wrote %s (label %q)\n", path, label)
	return nil
}

// runBenchNN executes the nn micro-benchmarks (mirroring the Benchmark*
// targets in bench_test.go) through testing.Benchmark and merges the
// results into path under label. This gives `repro -bench-nn after` runs a
// durable, diffable record of the training-engine hot path.
func runBenchNN(path, label string) error {
	rand := func(rows, cols int, seed uint64) *nn.Matrix {
		rng := mathx.NewRNG(seed)
		m := nn.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		return m
	}

	run := map[string]func(b *testing.B){
		"MatMul": func(b *testing.B) {
			a := rand(64, 392, 1)
			w := rand(392, 128, 2)
			dst := nn.NewMatrix(64, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = nn.MatMulInto(dst, a, w)
			}
		},
		"MatMulATB": func(b *testing.B) {
			x := rand(64, 392, 1)
			g := rand(64, 128, 2)
			dst := nn.NewMatrix(392, 128)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = nn.MatMulATBInto(dst, x, g)
			}
		},
		"MatMulABT": func(b *testing.B) {
			g := rand(64, 128, 1)
			w := rand(392, 128, 2)
			dst := nn.NewMatrix(64, 392)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = nn.MatMulABTInto(dst, g, w)
			}
		},
		"TrainStep": func(b *testing.B) {
			rng := mathx.NewRNG(9)
			net := nn.NewNetwork(
				nn.NewDense(392, 128, rng),
				nn.NewBatchNorm(128),
				nn.NewActivation(nn.ActReLU),
				nn.NewDense(128, 392, rng),
				nn.NewActivation(nn.ActSigmoid),
			)
			ws := net.NewWorkspace()
			bx := rand(64, 392, 3)
			opt := nn.NewAdadelta()
			net.TrainStep(ws, bx, bx, opt)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = net.TrainStep(ws, bx, bx, opt)
			}
		},
	}

	return mergeBenchReport(path, label, run)
}
