// Command certgen synthesizes a CERT-Insider-Threat-style dataset and
// writes it as CSV files (logon.csv, device.csv, file.csv, http.csv,
// email.csv, ldap.csv, labels.csv) in the layout described in the cert
// package.
//
// Usage:
//
//	certgen -out data/cert -users 40 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"acobe/internal/cert"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "certgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("certgen", flag.ContinueOnError)
	var (
		out   = fs.String("out", "data/cert", "output directory")
		users = fs.Int("users", 40, "users per department (4 departments; paper scale is 233)")
		seed  = fs.Uint64("seed", 42, "dataset seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := cert.SmallConfig(*users)
	cfg.Seed = *seed
	gen, err := cert.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("synthesizing %d users over %v..%v with %d scenarios...\n",
		len(gen.Users()), cfg.Start, cfg.End, len(cfg.Scenarios))
	start := time.Now()
	n, err := cert.WriteCSV(gen, *out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d events to %s in %v\n", n, *out, time.Since(start).Round(time.Millisecond))
	for _, sc := range gen.Scenarios() {
		ws, we := sc.Window()
		fmt.Printf("  scenario %-8s insider=%-8s window=%v..%v\n", sc.Name(), sc.UserID(), ws, we)
	}
	return nil
}
