package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesDataset(t *testing.T) {
	if testing.Short() {
		t.Skip("writes a full-span dataset")
	}
	dir := filepath.Join(t.TempDir(), "cert")
	if err := run([]string{"-out", dir, "-users", "2", "-seed", "1"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"logon.csv", "device.csv", "file.csv", "http.csv", "email.csv", "ldap.csv", "labels.csv"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-users", "abc"}); err == nil {
		t.Error("no error for malformed flag")
	}
}
