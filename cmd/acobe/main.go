// Command acobe runs the full ACOBE pipeline end to end on a CERT-style
// dataset directory written by certgen (or synthesizes one in memory when
// -data is empty): extract measurements, derive compound behavioral
// deviation matrices, train the per-aspect autoencoder ensemble on the
// training period, and print the ordered investigation list for the
// testing period.
//
// Usage:
//
//	acobe -data data/cert -scenario r6.1-s2 -top 15
//	acobe -users 20 -scenario r6.1-s2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"acobe/internal/cert"
	"acobe/internal/experiment"
	"acobe/internal/features"
	"acobe/internal/metrics"
	"acobe/pkg/acobe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "acobe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("acobe", flag.ContinueOnError)
	var (
		dataDir  = fs.String("data", "", "dataset directory from certgen (empty: synthesize in memory)")
		users    = fs.Int("users", 20, "users per department when synthesizing")
		seed     = fs.Uint64("seed", 42, "seed when synthesizing")
		scenario = fs.String("scenario", "r6.1-s2", "scenario whose train/test split to use")
		top      = fs.Int("top", 15, "how many investigation-list entries to print")
		advanced = fs.Bool("advanced-critic", false, "also rank with the §VII-B waveform critic")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	preset := experiment.TinyPreset()
	preset.UsersPerDept = *users
	preset.Seed = *seed

	var (
		data *experiment.CERTData
		err  error
	)
	start := time.Now()
	if *dataDir != "" {
		data, err = loadFromDir(preset, *dataDir)
	} else {
		fmt.Printf("synthesizing dataset (%d users/dept, seed %d)...\n", *users, *seed)
		data, err = experiment.BuildCERTData(preset)
	}
	if err != nil {
		return err
	}
	fmt.Printf("dataset ready in %v (%d users)\n", time.Since(start).Round(time.Millisecond), len(data.UserIDs))

	var sc cert.Scenario
	for _, s := range data.Gen.Scenarios() {
		if s.Name() == *scenario {
			sc = s
		}
	}
	if sc == nil {
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	fmt.Printf("training ACOBE ensemble (%d aspects) and scoring...\n", len(features.ACOBEAspects()))
	start = time.Now()
	run, err := experiment.RunScenario(data, experiment.ModelACOBE, sc)
	if err != nil {
		return err
	}
	fmt.Printf("done in %v; training %v..%v, testing %v..%v\n",
		time.Since(start).Round(time.Second), run.TrainFrom, run.TrainTo, run.TestFrom, run.TestTo)

	fmt.Printf("\ninvestigation list (top %d of %d):\n", *top, len(run.List))
	for i, r := range run.List {
		if i >= *top {
			break
		}
		marker := " "
		if r.User == run.Insider {
			marker = "⚠ insider"
		}
		fmt.Printf("%3d. %-10s priority=%-4d ranks=%v %s\n", i+1, r.User, r.Priority, r.Ranks, marker)
	}
	curves, err := metrics.Evaluate(run.Items)
	if err != nil {
		return err
	}
	fmt.Printf("\nAUC=%.4f AP=%.4f FPs before TP=%v\n", curves.AUC, curves.AP, curves.FPsBeforeTP())

	if *advanced {
		fmt.Printf("\nadvanced (waveform) critic, top %d:\n", *top)
		adv := acobe.AdvancedCritic(data.UserIDs, run.Series, preset.N, acobe.DefaultWaveformConfig())
		for i, r := range adv {
			if i >= *top {
				break
			}
			marker := " "
			if r.User == run.Insider {
				marker = "⚠ insider"
			}
			fmt.Printf("%3d. %-10s priority=%-4d suspicion=%d/%d classes=%v %s\n",
				i+1, r.User, r.Priority, r.Suspicion, len(run.Series), r.Classes, marker)
		}
	}
	return nil
}

// loadFromDir replays a certgen-written dataset through the extraction
// pipeline. The generator config is rebuilt to recover scenario metadata
// (windows, insiders); labels come from the CSV.
func loadFromDir(preset experiment.Preset, dir string) (*experiment.CERTData, error) {
	fmt.Printf("loading dataset from %s...\n", dir)
	ds, err := cert.ReadCSV(dir)
	if err != nil {
		return nil, err
	}
	return experiment.BuildCERTDataFromStored(preset, ds)
}
