package main

import "testing"

func TestRunUnknownScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("synthesizes a dataset")
	}
	if err := run([]string{"-users", "3", "-scenario", "nope"}); err == nil {
		t.Error("no error for unknown scenario")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-users", "x"}); err == nil {
		t.Error("no error for malformed flag")
	}
}
