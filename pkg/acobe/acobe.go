// Package acobe is the public API of this repository's ACOBE
// implementation (anomaly detection of compound behavioral deviations via
// a per-aspect autoencoder ensemble). It is the only supported import
// path: everything under internal/ may change without notice, while this
// package keeps a stable, option-based surface.
//
// The shape of a typical batch use:
//
//	tbl, _ := acobe.NewTable(userIDs, acobe.TrackedFeatures(), acobe.NumTimeframes, start, end)
//	// ... fill tbl from audit logs (tbl.Add), or use an extractor ...
//	det, _ := acobe.NewDetector(tbl,
//		acobe.WithGroups(deptNames, membership),
//		acobe.WithSeed(42),
//	)
//	det.Fit(ctx, trainFrom, trainTo)
//	list, _ := det.Rank(ctx, testFrom, testTo)
//
// Fit, Score and Rank honor context cancellation: training checks the
// context between batches, scoring between users, and both return an
// error satisfying errors.Is(err, acobe.ErrCanceled) promptly after the
// context ends. For continuous (online) scoring, run the acobed daemon
// instead of embedding this package — see cmd/acobed.
package acobe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/deviation"
	"acobe/internal/features"
)

// Core vocabulary, aliased from the internal packages so that values flow
// freely between the facade and internal call sites. External importers
// see them as acobe.Day, acobe.Ranked, etc.
type (
	// Day is a calendar day counted from the dataset epoch.
	Day = cert.Day
	// Aspect names one behavioral aspect and the features it spans; the
	// ensemble trains one autoencoder per aspect.
	Aspect = features.Aspect
	// Table is the dense (user, feature, time-frame, day) measurement
	// store detectors are built from.
	Table = features.Table
	// Field is a precomputed deviation field (z-scores of measurements
	// against each user's sliding history).
	Field = deviation.Field
	// DeviationConfig carries the paper's ω, 𝒟, Δ, ε and weighting knobs.
	DeviationConfig = deviation.Config
	// ModelConfig sizes one aspect's autoencoder.
	ModelConfig = autoencoder.Config
	// ScoreSeries holds per-day anomaly scores for every user in one
	// aspect.
	ScoreSeries = core.ScoreSeries
	// Ranked is one row of the ordered investigation list.
	Ranked = core.Ranked
	// AdvancedRanked is a row of the §VII-B waveform critic's list.
	AdvancedRanked = core.AdvancedRanked
	// WaveformConfig parameterizes the waveform critic.
	WaveformConfig = core.WaveformConfig
)

// NumTimeframes is the number of per-day time frames the paper uses (work
// hours and off hours).
const NumTimeframes = cert.NumTimeframes

// Typed failures callers can test with errors.Is.
var (
	// ErrNotFitted is returned by Score and Rank before a successful Fit
	// (or LoadModels).
	ErrNotFitted = errors.New("acobe: detector not fitted")
	// ErrCanceled wraps context cancellation and deadline expiry from
	// Fit, Score and Rank.
	ErrCanceled = errors.New("acobe: operation canceled")
)

// ParseDay parses a YYYY-MM-DD day.
func ParseDay(s string) (Day, error) { return cert.ParseDay(s) }

// DayOf returns the day containing the instant t.
func DayOf(t time.Time) Day { return cert.DayOf(t) }

// NewTable allocates a zeroed measurement table over users × featureNames
// × frames for the inclusive day span. Grow it forward day by day with
// Table.EnsureDay when measurements arrive online.
func NewTable(users, featureNames []string, frames int, start, end Day) (*Table, error) {
	return features.NewTable(users, featureNames, frames, start, end)
}

// TrackedFeatures returns the full CERT feature list the built-in
// extractor fills (fine-grained ACOBE features plus coarse baselines).
func TrackedFeatures() []string { return features.TrackedFeatures() }

// ACOBEAspects returns the paper's three CERT aspects (device, file,
// HTTP).
func ACOBEAspects() []Aspect { return features.ACOBEAspects() }

// AllInOneAspect merges every ACOBE feature into a single aspect (the
// paper's All-in-1 ablation).
func AllInOneAspect() Aspect { return features.AllInOneAspect() }

// DefaultDeviationConfig returns the paper's CERT-evaluation deviation
// parameters (ω=30, 𝒟=14, Δ=3, ε=1, weighted).
func DefaultDeviationConfig() DeviationConfig { return deviation.DefaultConfig() }

// FastModelConfig sizes a compact autoencoder for an input width —
// suitable for tests and medium datasets.
func FastModelConfig(inputDim int) ModelConfig { return autoencoder.FastConfig(inputDim) }

// PaperModelConfig mirrors the paper's 512-256-128-64 encoder.
func PaperModelConfig(inputDim int) ModelConfig { return autoencoder.PaperConfig(inputDim) }

// ComputeDeviations derives the deviation field of a measurement table in
// one batch pass. Use it with NewDetectorFromFields when you manage group
// tables yourself; NewDetector does both steps for you.
func ComputeDeviations(tbl *Table, cfg DeviationConfig) (*Field, error) {
	return deviation.ComputeField(tbl, cfg)
}

// Critic implements the paper's Algorithm 1: per-aspect rank voting with
// the N-th best rank as priority. scoresByAspect[a][u] is user u's
// aggregated anomaly score in aspect a.
func Critic(users []string, scoresByAspect [][]float64, n int) []Ranked {
	return core.Critic(users, scoresByAspect, n)
}

// AggregateMax reduces a score series to each user's maximum daily score.
func AggregateMax(s *ScoreSeries) []float64 { return core.AggregateMax(s) }

// AggregateRelativeMax reduces a score series to each user's maximum
// score relative to the day's population median (robust to globally busy
// days).
func AggregateRelativeMax(s *ScoreSeries) []float64 { return core.AggregateRelativeMax(s) }

// AdvancedCritic ranks with the §VII-B waveform critic: recent-spike and
// waveform-shape analysis on top of the rank voting.
func AdvancedCritic(users []string, series []*ScoreSeries, n int, cfg WaveformConfig) []AdvancedRanked {
	return core.AdvancedCritic(users, series, n, cfg)
}

// DefaultWaveformConfig returns the waveform critic's default thresholds.
func DefaultWaveformConfig() WaveformConfig { return core.DefaultWaveformConfig() }

// options collects the functional-option state for NewDetector.
type options struct {
	cfg        core.Config
	groupNames []string
	membership []int
	errs       []error
}

// Option customizes a Detector. Options validate lazily: errors surface
// from NewDetector / NewDetectorFromFields.
type Option func(*options)

func defaultOptions() *options {
	return &options{cfg: core.DefaultConfig()}
}

// WithAspects replaces the behavioral aspects (default: the paper's three
// CERT aspects).
func WithAspects(aspects ...Aspect) Option {
	return func(o *options) {
		if len(aspects) == 0 {
			o.errs = append(o.errs, errors.New("WithAspects: no aspects"))
			return
		}
		o.cfg.Aspects = append([]Aspect(nil), aspects...)
	}
}

// WithGroupDeviations toggles embedding group-average deviations into each
// matrix (default true; false reproduces the No-Group ablation and lifts
// the WithGroups requirement).
func WithGroupDeviations(on bool) Option {
	return func(o *options) { o.cfg.IncludeGroup = on }
}

// WithGroups declares the peer groups: names lists the groups and
// membership[u] is the group index of user u (-1 excludes the user from
// group averaging). Required when group deviations are enabled and the
// detector is built from a table.
func WithGroups(names []string, membership []int) Option {
	return func(o *options) {
		o.groupNames = append([]string(nil), names...)
		o.membership = append([]int(nil), membership...)
	}
}

// WithSeed sets the model-initialization seed (default 7). Training is
// fully deterministic per seed.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.cfg.Seed = seed }
}

// WithVotes sets the critic's vote count N (default 3): a user's priority
// is their N-th best per-aspect rank.
func WithVotes(n int) Option {
	return func(o *options) {
		if n < 1 {
			o.errs = append(o.errs, fmt.Errorf("WithVotes: n must be ≥ 1, got %d", n))
			return
		}
		o.cfg.N = n
	}
}

// WithTrainStride samples every k-th day when building training matrices
// (default 2; adjacent matrices overlap in all but one column, so larger
// strides cut training cost with little effect).
func WithTrainStride(k int) Option {
	return func(o *options) {
		if k < 1 {
			o.errs = append(o.errs, fmt.Errorf("WithTrainStride: stride must be ≥ 1, got %d", k))
			return
		}
		o.cfg.TrainStride = k
	}
}

// WithDeviationConfig replaces the whole deviation configuration.
func WithDeviationConfig(cfg DeviationConfig) Option {
	return func(o *options) { o.cfg.Deviation = cfg }
}

// WithWindow sets ω, the sliding history length in days.
func WithWindow(days int) Option {
	return func(o *options) { o.cfg.Deviation.Window = days }
}

// WithMatrixDays sets 𝒟, how many consecutive days one compound matrix
// spans.
func WithMatrixDays(days int) Option {
	return func(o *options) { o.cfg.Deviation.MatrixDays = days }
}

// WithDelta sets Δ, the deviation clamp.
func WithDelta(delta float64) Option {
	return func(o *options) { o.cfg.Deviation.Delta = delta }
}

// WithEpsilon sets ε, the floor on the history's standard deviation.
func WithEpsilon(eps float64) Option {
	return func(o *options) { o.cfg.Deviation.Epsilon = eps }
}

// WithWeighting toggles the paper's TF-style feature weights.
func WithWeighting(on bool) Option {
	return func(o *options) { o.cfg.Deviation.Weighted = on }
}

// WithModelConfig supplies the autoencoder configuration per input width
// (default FastModelConfig).
func WithModelConfig(f func(inputDim int) ModelConfig) Option {
	return func(o *options) { o.cfg.AEConfig = f }
}

// WithAggregate replaces the reduction of a user's daily scores to one
// per-aspect anomaly score (default AggregateRelativeMax).
func WithAggregate(f func(*ScoreSeries) []float64) Option {
	return func(o *options) { o.cfg.Aggregate = f }
}

// WithSequentialFit trains the aspect ensemble one model at a time
// instead of concurrently. Results are bit-identical either way; the knob
// exists for debugging and timing comparisons.
func WithSequentialFit() Option {
	return func(o *options) { o.cfg.SequentialFit = true }
}

// Detector is a configured (and, after Fit, trained) ACOBE instance.
// Methods are safe for concurrent use once Fit has returned; Fit itself
// must not race with Score or Rank.
type Detector struct {
	det    *core.Detector
	fitted bool
}

// NewDetector derives deviation fields from the measurement table and
// wires up the per-aspect ensemble. When group deviations are enabled
// (the default) WithGroups must declare the peer groups; the group table
// of per-group average measurements is built internally.
func NewDetector(tbl *Table, opts ...Option) (*Detector, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	if err := errors.Join(o.errs...); err != nil {
		return nil, fmt.Errorf("acobe: %w", err)
	}
	var (
		group     *Field
		userGroup []int
	)
	if o.cfg.IncludeGroup {
		if len(o.groupNames) == 0 {
			return nil, errors.New("acobe: group deviations enabled but no groups declared — add WithGroups(names, membership) or WithGroupDeviations(false)")
		}
		gt, err := tbl.GroupTable(o.groupNames, o.membership)
		if err != nil {
			return nil, fmt.Errorf("acobe: group table: %w", err)
		}
		group, err = deviation.ComputeField(gt, o.cfg.Deviation)
		if err != nil {
			return nil, fmt.Errorf("acobe: group deviations: %w", err)
		}
		userGroup = o.membership
	}
	ind, err := deviation.ComputeField(tbl, o.cfg.Deviation)
	if err != nil {
		return nil, fmt.Errorf("acobe: deviations: %w", err)
	}
	return newFromFields(o, ind, group, userGroup)
}

// NewDetectorFromFields wires up the ensemble over precomputed deviation
// fields — the entry point for callers that maintain fields incrementally
// (e.g. the serving daemon) or share them across detectors. group may be
// nil only with WithGroupDeviations(false); userGroup[u] selects user u's
// row in the group field. The deviation configuration is taken from ind.
func NewDetectorFromFields(ind, group *Field, userGroup []int, opts ...Option) (*Detector, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(o)
	}
	if err := errors.Join(o.errs...); err != nil {
		return nil, fmt.Errorf("acobe: %w", err)
	}
	o.cfg.Deviation = ind.Config()
	return newFromFields(o, ind, group, userGroup)
}

func newFromFields(o *options, ind, group *Field, userGroup []int) (*Detector, error) {
	det, err := core.NewDetector(o.cfg, ind, group, userGroup)
	if err != nil {
		return nil, fmt.Errorf("acobe: %w", err)
	}
	return &Detector{det: det}, nil
}

// Rebind returns a detector that shares this detector's trained models
// but builds its compound matrices over the given deviation fields (which
// must match the originals' configuration and matrix width). No weights
// are copied or retrained: the rebound detector is fitted exactly when the
// receiver is, and both may score concurrently. Online servers use this to
// repoint a trained detector at a newer snapshot of the deviation state.
func (d *Detector) Rebind(ind, group *Field, userGroup []int) (*Detector, error) {
	det, err := d.det.Rebind(ind, group, userGroup)
	if err != nil {
		return nil, fmt.Errorf("acobe: %w", err)
	}
	return &Detector{det: det, fitted: d.fitted}, nil
}

// wrapErr maps context cancellation onto ErrCanceled so callers can test
// one sentinel regardless of which layer noticed the cancellation.
func wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// Users returns the user IDs the detector scores, in index order.
func (d *Detector) Users() []string { return d.det.Users() }

// AspectNames returns the configured aspect names in ensemble order.
func (d *Detector) AspectNames() []string { return d.det.Aspects() }

// FirstScoreableDay returns the earliest day a compound matrix (and hence
// a score) exists for: table start + ω-1 history days + 𝒟-1 matrix days.
func (d *Detector) FirstScoreableDay() Day { return d.det.FirstMatrixDay() }

// Fitted reports whether the detector holds trained models.
func (d *Detector) Fitted() bool { return d.fitted }

// Fit trains every aspect's autoencoder on all users' compound matrices
// over the training days [from, to], concurrently across aspects under
// the global worker budget. It returns per-aspect final losses keyed by
// aspect name. Cancelling ctx aborts training between batches and returns
// an error wrapping ErrCanceled.
func (d *Detector) Fit(ctx context.Context, from, to Day) (map[string]float64, error) {
	losses, err := d.det.Fit(ctx, from, to)
	if err != nil {
		return nil, wrapErr(err)
	}
	d.fitted = true
	return losses, nil
}

// Score computes per-day anomaly scores for every user and aspect over
// [from, to] (clamped to the scoreable range). It is ScoreBatch under its
// historical name.
func (d *Detector) Score(ctx context.Context, from, to Day) ([]*ScoreSeries, error) {
	return d.ScoreBatch(ctx, from, to)
}

// ScoreBatch computes per-day anomaly scores for every user and aspect
// over [from, to] (clamped to the scoreable range), stacking all users'
// flattened deviation matrices into one batch per aspect and scoring
// whole chunks of it in single forward passes. Scores are bit-identical
// to scoring users one at a time; only the throughput differs.
func (d *Detector) ScoreBatch(ctx context.Context, from, to Day) ([]*ScoreSeries, error) {
	if !d.fitted {
		return nil, ErrNotFitted
	}
	series, err := d.det.ScoreBatch(ctx, from, to)
	return series, wrapErr(err)
}

// ScoreBatchInto is ScoreBatch with caller-owned result storage: the
// series and score buffers already in dst are recycled (grown as needed)
// and the filled slice is returned. A caller that feeds each result back
// in — scoring the same window shape repeatedly — allocates nothing in
// steady state. dst may be nil, which makes it equivalent to ScoreBatch.
func (d *Detector) ScoreBatchInto(ctx context.Context, dst []*ScoreSeries, from, to Day) ([]*ScoreSeries, error) {
	if !d.fitted {
		return nil, ErrNotFitted
	}
	series, err := d.det.ScoreBatchInto(ctx, dst, from, to)
	return series, wrapErr(err)
}

// Rank scores [from, to], aggregates each user's daily scores per aspect,
// and runs the critic, returning the ordered investigation list (most
// suspicious first).
func (d *Detector) Rank(ctx context.Context, from, to Day) ([]Ranked, error) {
	if !d.fitted {
		return nil, ErrNotFitted
	}
	list, err := d.det.Investigate(ctx, from, to)
	return list, wrapErr(err)
}

// SaveModels writes the trained weights of every aspect model.
func (d *Detector) SaveModels(w io.Writer) error {
	if !d.fitted {
		return ErrNotFitted
	}
	return d.det.SaveModels(w)
}

// LoadModels restores trained weights written by SaveModels into a
// detector with the same configuration, marking it fitted.
func (d *Detector) LoadModels(r io.Reader) error {
	if err := d.det.LoadModels(r); err != nil {
		return err
	}
	d.fitted = true
	return nil
}
