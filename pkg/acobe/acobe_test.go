// Package acobe_test exercises the facade exactly as an external importer
// would: only through the public pkg/acobe surface, building tables and
// detectors from scratch without touching any internal package.
package acobe_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"acobe/pkg/acobe"
)

// lcg is a tiny deterministic generator so the test depends on nothing
// beyond the facade.
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(*g>>40) / float64(1<<24)
}

const (
	testUsers = 6
	lastDay   = acobe.Day(99)
	anomalous = "u5"
)

func buildTable(t *testing.T) (*acobe.Table, []string, []int) {
	t.Helper()
	users := []string{"u0", "u1", "u2", "u3", "u4", anomalous}
	feats := []string{"fa", "fb"}
	tbl, err := acobe.NewTable(users, feats, 2, 0, lastDay)
	if err != nil {
		t.Fatal(err)
	}
	g := lcg(3)
	for u := range users {
		for f := range feats {
			for frame := 0; frame < 2; frame++ {
				for d := acobe.Day(0); d <= lastDay; d++ {
					v := float64(int(6*g.next())) + 2
					// The last user changes behavior drastically in the
					// final stretch.
					if users[u] == anomalous && d >= 91 {
						v += 60
					}
					tbl.Add(u, f, frame, d, v)
				}
			}
		}
	}
	membership := make([]int, len(users))
	return tbl, users, membership // everyone in group 0
}

func newDetector(t *testing.T, tbl *acobe.Table, membership []int, extra ...acobe.Option) *acobe.Detector {
	t.Helper()
	opts := append([]acobe.Option{
		acobe.WithAspects(acobe.Aspect{Name: "a", Features: []string{"fa", "fb"}}),
		acobe.WithGroups([]string{"g0"}, membership),
		acobe.WithWindow(10),
		acobe.WithMatrixDays(4),
		acobe.WithSeed(5),
		acobe.WithVotes(1),
		acobe.WithWeighting(false),
		acobe.WithAggregate(acobe.AggregateMax),
		acobe.WithModelConfig(func(dim int) acobe.ModelConfig {
			cfg := acobe.FastModelConfig(dim)
			cfg.Hidden = []int{16, 8}
			cfg.Epochs = 30
			return cfg
		}),
	}, extra...)
	det, err := acobe.NewDetector(tbl, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

func TestFacadeEndToEnd(t *testing.T) {
	tbl, users, membership := buildTable(t)
	det := newDetector(t, tbl, membership)
	ctx := context.Background()

	if _, err := det.Score(ctx, 90, lastDay); !errors.Is(err, acobe.ErrNotFitted) {
		t.Fatalf("Score before Fit: %v, want ErrNotFitted", err)
	}
	if _, err := det.Rank(ctx, 90, lastDay); !errors.Is(err, acobe.ErrNotFitted) {
		t.Fatalf("Rank before Fit: %v, want ErrNotFitted", err)
	}
	if _, err := det.ScoreBatchInto(ctx, nil, 90, lastDay); !errors.Is(err, acobe.ErrNotFitted) {
		t.Fatalf("ScoreBatchInto before Fit: %v, want ErrNotFitted", err)
	}

	losses, err := det.Fit(ctx, 0, 85)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 1 || losses["a"] <= 0 {
		t.Fatalf("losses = %v", losses)
	}
	if !det.Fitted() {
		t.Fatal("Fitted() false after Fit")
	}

	// ScoreBatchInto with a recycled dst must reproduce Score exactly.
	series, err := det.Score(ctx, 91, lastDay)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := det.ScoreBatchInto(ctx, nil, 91, lastDay)
	if err != nil {
		t.Fatal(err)
	}
	if reused, err = det.ScoreBatchInto(ctx, reused, 91, lastDay); err != nil {
		t.Fatal(err)
	}
	for ai := range series {
		for u := range series[ai].Scores {
			for i, v := range series[ai].Scores[u] {
				if reused[ai].Scores[u][i] != v {
					t.Fatalf("ScoreBatchInto diverged at aspect %d user %d day %d", ai, u, i)
				}
			}
		}
	}

	list, err := det.Rank(ctx, 91, lastDay)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != len(users) {
		t.Fatalf("list has %d rows for %d users", len(list), len(users))
	}
	if list[0].User != anomalous {
		t.Errorf("top of list = %s (priority %d), want %s", list[0].User, list[0].Priority, anomalous)
	}

	// Persistence round-trips through the facade and marks the copy fitted.
	var buf bytes.Buffer
	if err := det.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	clone := newDetector(t, tbl, membership)
	if err := clone.LoadModels(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	list2, err := clone.Rank(ctx, 91, lastDay)
	if err != nil {
		t.Fatal(err)
	}
	for i := range list {
		if list[i].User != list2[i].User || list[i].Priority != list2[i].Priority {
			t.Fatalf("restored detector ranks differently at %d: %+v vs %+v", i, list[i], list2[i])
		}
	}
}

func TestFacadeCancellation(t *testing.T) {
	tbl, _, membership := buildTable(t)
	det := newDetector(t, tbl, membership)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := det.Fit(ctx, 0, 85); !errors.Is(err, acobe.ErrCanceled) {
		t.Fatalf("Fit with canceled ctx: %v, want ErrCanceled", err)
	}
	if _, err := det.Fit(context.Background(), 0, 85); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Score(ctx, 90, lastDay); !errors.Is(err, acobe.ErrCanceled) {
		t.Fatalf("Score with canceled ctx: %v, want ErrCanceled", err)
	}
}

func TestFacadeOptionValidation(t *testing.T) {
	tbl, _, membership := buildTable(t)
	if _, err := acobe.NewDetector(tbl, acobe.WithGroups([]string{"g0"}, membership), acobe.WithVotes(0)); err == nil {
		t.Error("WithVotes(0) accepted")
	}
	if _, err := acobe.NewDetector(tbl, acobe.WithGroups([]string{"g0"}, membership), acobe.WithTrainStride(0)); err == nil {
		t.Error("WithTrainStride(0) accepted")
	}
	if _, err := acobe.NewDetector(tbl); err == nil {
		t.Error("group deviations without WithGroups accepted")
	}
	if _, err := acobe.NewDetector(tbl,
		acobe.WithGroupDeviations(false),
		acobe.WithAspects(acobe.Aspect{Name: "a", Features: []string{"fa", "fb"}}),
		acobe.WithWindow(10), acobe.WithMatrixDays(4)); err != nil {
		t.Errorf("No-Group detector without groups rejected: %v", err)
	}
}

func TestFacadeFromFields(t *testing.T) {
	tbl, users, _ := buildTable(t)
	cfg := acobe.DefaultDeviationConfig()
	cfg.Window = 10
	cfg.MatrixDays = 4
	ind, err := acobe.ComputeDeviations(tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := acobe.NewDetectorFromFields(ind, nil, nil,
		acobe.WithGroupDeviations(false),
		acobe.WithAspects(acobe.Aspect{Name: "a", Features: []string{"fa", "fb"}}),
		acobe.WithModelConfig(func(dim int) acobe.ModelConfig {
			c := acobe.FastModelConfig(dim)
			c.Hidden = []int{16, 8}
			c.Epochs = 20
			return c
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := det.Users(); len(got) != len(users) {
		t.Fatalf("detector sees %d users, want %d", len(got), len(users))
	}
	if _, err := det.Fit(context.Background(), 0, 85); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Rank(context.Background(), 91, lastDay); err != nil {
		t.Fatal(err)
	}
}
