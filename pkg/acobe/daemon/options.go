package daemon

import (
	"errors"

	"acobe/internal/obs"
	"acobe/internal/serve"
)

// Observability types, re-exported so operators never import internal
// packages.
type (
	// Observer is the daemon's per-stage instrumentation root: attach one
	// with WithObserver (or Config.Observer) and the server records
	// latency histograms and counters allocation-free on the hot path,
	// served at GET /metrics and inside the status report.
	Observer = obs.Observer
	// Metrics is one point-in-time scrape of an Observer, as embedded in
	// Status.Metrics and returned by Server.MetricsSnapshot.
	Metrics = obs.Snapshot
)

// NewObserver returns an empty observer ready to hand to WithObserver.
func NewObserver() *Observer { return obs.NewObserver() }

// settings is what the Options assemble: the serving config plus an
// optional persistence block.
type settings struct {
	cfg     Config
	persist PersistConfig

	durable    bool
	persistOpt string // first persistence tuning option seen, for error text
}

// Option customizes a daemon started with Start. Options override the
// corresponding Config fields, so a caller can mix a struct-literal base
// config with option-driven overrides during migration.
type Option func(*settings)

// WithShards partitions per-user state across n consistent-hashed shards,
// each ingesting, extracting, and logging on its own goroutine. Ranked
// output is byte-identical at every shard count; 1 (the default) is the
// exact unsharded path and on-disk format.
func WithShards(n int) Option {
	return func(s *settings) { s.cfg.Shards = n }
}

// WithQueueSize bounds each ingest queue to n batches (backpressure).
func WithQueueSize(n int) Option {
	return func(s *settings) { s.cfg.QueueSize = n }
}

// WithObserver attaches per-stage instrumentation. One observer serves
// one daemon.
func WithObserver(o *Observer) Option {
	return func(s *settings) { s.cfg.Observer = o }
}

// WithIngestorFactory supplies the per-shard measurement extractor. The
// factory is called once per shard with that shard's user subset; at one
// shard it receives every user.
func WithIngestorFactory(f func(users []string, start Day) (Ingestor, error)) Option {
	return func(s *settings) { s.cfg.IngestorFactory = f }
}

// WithDataDir turns on crash-safe persistence rooted at dir: acknowledged
// batches write ahead to a CRC-framed WAL and window state snapshots at
// day-close barriers. Start then recovers whatever an earlier process
// left there and returns a non-nil RecoverInfo.
func WithDataDir(dir string) Option {
	return func(s *settings) {
		s.persist.Dir = dir
		s.durable = true
	}
}

// WithFsync says when the WAL is fsynced (default FsyncClose). Requires
// WithDataDir.
func WithFsync(p FsyncPolicy) Option {
	return func(s *settings) {
		s.persist.Fsync = p
		s.notePersist("WithFsync")
	}
}

// WithSnapshotEvery snapshots window state every n closed days (default
// 30). Requires WithDataDir.
func WithSnapshotEvery(days int) Option {
	return func(s *settings) {
		s.persist.SnapshotEvery = days
		s.notePersist("WithSnapshotEvery")
	}
}

// WithSegmentBytes rotates WAL segments at n bytes (default 8 MiB).
// Requires WithDataDir.
func WithSegmentBytes(n int64) Option {
	return func(s *settings) {
		s.persist.SegmentBytes = n
		s.notePersist("WithSegmentBytes")
	}
}

// WithAudit turns on the tamper-evident audit trail: a SHA-256 hash chain
// over every WAL frame (sealed into segments, chained into snapshots and
// manifests, ed25519-signed), per-batch Merkle roots for inclusion
// proofs (Server.Proof, GET /v1/proof), and signed rank receipts
// (Server.RankReceipt, POST /v1/receipt). Verify offline with
// daemon.VerifyAudit or `acobed -verify`. A directory must always be
// opened with the audit setting it was written under. Requires
// WithDataDir.
func WithAudit() Option {
	return func(s *settings) {
		s.persist.Audit = true
		s.notePersist("WithAudit")
	}
}

func (s *settings) notePersist(name string) {
	if s.persistOpt == "" {
		s.persistOpt = name
	}
}

// Start builds and starts a daemon from a base config plus options — the
// one constructor covering both the in-memory and the durable server.
// Without WithDataDir it is equivalent to New and the returned
// RecoverInfo is nil; with it, to Open, recovering whatever state the
// directory holds. A persistence tuning option without WithDataDir is a
// configuration error, reported rather than silently ignored.
func Start(cfg Config, opts ...Option) (*Server, *RecoverInfo, error) {
	s := settings{cfg: cfg}
	for _, opt := range opts {
		opt(&s)
	}
	if !s.durable {
		if s.persistOpt != "" {
			return nil, nil, errors.New("daemon: " + s.persistOpt + " requires WithDataDir")
		}
		srv, err := serve.New(s.cfg)
		return srv, nil, err
	}
	return serve.Open(s.cfg, s.persist)
}
