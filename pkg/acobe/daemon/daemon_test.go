package daemon_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"acobe/pkg/acobe"
	"acobe/pkg/acobe/daemon"
)

// TestDaemonDurableRoundTrip exercises the public durability contract end
// to end: open, ingest acknowledged batches, restart, and observe exactly
// the acknowledged state again.
func TestDaemonDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	cfg := daemon.Config{
		Users: []string{"u1", "u2"},
		Start: 0,
		Deviation: acobe.DeviationConfig{
			Window: 4, MatrixDays: 2, Delta: 3, Epsilon: 1,
		},
	}
	srv, info, err := daemon.Open(cfg, daemon.PersistConfig{Dir: dir, Fsync: daemon.FsyncClose})
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotLoaded || info.ReplayedRecords != 0 {
		t.Fatalf("fresh open reported recovery: %+v", info)
	}
	day := func(d daemon.Day, u string) daemon.Event {
		return daemon.Event{Cert: &daemon.CertEvent{
			Type: daemon.EventLogon, Activity: "Logon",
			Time: d.Date().Add(9 * time.Hour), User: u,
		}}
	}
	for d := daemon.Day(0); d <= 5; d++ {
		if err := srv.Submit(ctx, []daemon.Event{day(d, "u1"), day(d, "u2")}); err != nil {
			t.Fatal(err)
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	// One acknowledged batch left open: it must survive the restart.
	if err := srv.Submit(ctx, []daemon.Event{day(6, "u1")}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, info, err := daemon.Open(cfg, daemon.PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(ctx)
	if got := srv2.ClosedThrough(); got != 5 {
		t.Fatalf("recovered ClosedThrough = %v, want 5", got)
	}
	if info.BufferedEvents[6] != 1 {
		t.Fatalf("recovered buffered events = %v, want day 6 batch", info.BufferedEvents)
	}
	if st := srv2.Status(); st.Ingested != 13 {
		t.Fatalf("recovered ingested = %d, want 13", st.Ingested)
	}
	if _, err := srv2.Rank(ctx, 0, 5); !errors.Is(err, daemon.ErrNoModel) {
		t.Fatalf("rank without model = %v, want ErrNoModel", err)
	}
}
