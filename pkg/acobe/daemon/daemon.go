// Package daemon is the public face of the online ACOBE scoring daemon
// (internal/serve): continuous ingest over an in-process API, incremental
// day-close window advancement, background retraining, ranked
// investigation-list queries — and, when opened with a data directory,
// crash-safe persistence: every acknowledged batch is written ahead to a
// CRC-framed WAL, per-user window state is snapshotted at day-close
// barriers, and Open recovers by loading the newest valid snapshot and
// replaying the WAL tail.
//
// It lives beside pkg/acobe (rather than inside it) because the serving
// layer builds on the detector API; a facade in pkg/acobe itself would be
// an import cycle.
//
// Quick start:
//
//	srv, info, err := daemon.Open(daemon.Config{Users: users, Start: day0},
//		daemon.PersistConfig{Dir: "/var/lib/acobe"})
//	// info.ClosedThrough tells the client where to resume its stream;
//	// info.BufferedEvents says which open-day batches already survived.
//	err = srv.Submit(ctx, batch) // nil means: durable, survives a crash
//	err = srv.CloseDay(ctx, day)
//	list, err := srv.Rank(ctx, from, to)
package daemon

import (
	"crypto/ed25519"
	"net/http"

	"acobe/internal/audit"
	"acobe/internal/cert"
	"acobe/internal/logstore"
	"acobe/internal/serve"
)

// Day is a calendar day index (identical to acobe.Day).
type Day = cert.Day

// Event payload types, so callers can construct ingestable events without
// reaching into internal packages.
type (
	// CertEvent is a CERT-format audit event (Event.Cert).
	CertEvent = cert.Event
	// CertEventType enumerates the CERT log channels.
	CertEventType = cert.EventType
	// EnterpriseRecord is a normalized enterprise log record (Event.Record).
	EnterpriseRecord = logstore.Record
)

// CERT log channels for CertEvent.Type.
const (
	EventLogon  = cert.EventLogon
	EventDevice = cert.EventDevice
	EventFile   = cert.EventFile
	EventHTTP   = cert.EventHTTP
	EventEmail  = cert.EventEmail
)

// Core serving types, re-exported verbatim.
type (
	// Config shapes the daemon: users, groups, deviation windows, detector
	// options. Config.Shards partitions per-user state (extraction,
	// deviation windows, WAL streams) across consistent-hashed shards, each
	// on its own goroutine; ranked output is byte-identical at every shard
	// count, and 1 (the default) is the exact unsharded path and on-disk
	// format. Sharded configs take Config.IngestorFactory (each shard
	// extracts its own user subset) rather than a prebuilt Ingestor.
	// Sharded day closes never block queries: the merged view is built
	// off-lock into a shadow generation and published by pointer swap,
	// and Retrain fits from matrices stitched directly off the shard
	// tables, so ranking stays responsive through closes and retrains.
	Config = serve.Config
	// Server is the running daemon.
	Server = serve.Server
	// Event is one ingestable audit event (CERT or enterprise payload).
	Event = serve.Event
	// Status is a point-in-time snapshot of daemon state (schema_version
	// StatusSchemaVersion on the wire; additive fields never bump it).
	Status = serve.Status
	// ShardStatus is one shard's row in Status.ShardStatus.
	ShardStatus = serve.ShardStatus
	// PersistStatus is Status.Persistence, nil on an in-memory daemon.
	PersistStatus = serve.PersistStatus
	// HandlerOption composes Server.Handler's HTTP surface (see
	// WithMetricsEndpoint, WithPprofEndpoint, WithHealthzEndpoint).
	HandlerOption = serve.HandlerOption
	// Ingestor turns closed days of events into measurements.
	Ingestor = serve.Ingestor
	// StatefulIngestor additionally serializes its state; persistence
	// requires it (both built-in ingestors qualify).
	StatefulIngestor = serve.StatefulIngestor
)

// Persistence types.
type (
	// PersistConfig locates and tunes the durability layer.
	PersistConfig = serve.PersistConfig
	// RecoverInfo reports what recovery found and replayed.
	RecoverInfo = serve.RecoverInfo
	// FsyncPolicy says when the WAL is fsynced.
	FsyncPolicy = serve.FsyncPolicy
)

// Fsync policies, strictest last.
const (
	FsyncNever  = serve.FsyncNever
	FsyncClose  = serve.FsyncClose
	FsyncAlways = serve.FsyncAlways
)

// Audit types (WithAudit / PersistConfig.Audit).
type (
	// ProofResult is one event inclusion proof: the WAL frame holding the
	// event, the batch Merkle root the hash chain committed at append
	// time, and the path from the event's leaf to that root.
	ProofResult = serve.ProofResult
	// Receipt is a signed rank receipt binding a ranked list's hash to the
	// audit chain head at emission.
	Receipt = audit.Receipt
	// VerifyReport summarizes one offline VerifyAudit walk.
	VerifyReport = serve.VerifyReport
)

// Sentinel errors, matched with errors.Is.
var (
	ErrNoModel           = serve.ErrNoModel
	ErrRetrainInProgress = serve.ErrRetrainInProgress
	ErrShuttingDown      = serve.ErrShuttingDown
	// ErrPersistenceFailed wraps the first WAL/snapshot failure; once it is
	// returned the daemon fail-stops (refuses new work) rather than let
	// memory diverge from its log.
	ErrPersistenceFailed = serve.ErrPersistenceFailed
	// ErrAuditChainBroken reports verified tampering: sealed history no
	// longer matches the hash chain or a signature over it. Open fails
	// with it rather than serve state the log contradicts.
	ErrAuditChainBroken = serve.ErrAuditChainBroken
	// ErrAuditDisabled is returned by proof/receipt calls on a daemon
	// running without WithAudit.
	ErrAuditDisabled = serve.ErrAuditDisabled
	// ErrUnknownBatch / ErrUnknownEvent reject proof requests for batches
	// or event indexes the retained log does not hold.
	ErrUnknownBatch = serve.ErrUnknownBatch
	ErrUnknownEvent = serve.ErrUnknownEvent
)

// StatusSchemaVersion is the schema_version value stamped into every
// status report the current daemon produces.
const StatusSchemaVersion = serve.StatusSchemaVersion

// New starts an in-memory daemon: nothing survives a restart.
//
// Deprecated: prefer Start, which covers both the in-memory and durable
// cases through functional options. New keeps working; struct-literal
// Config fields remain the supported base for both constructors.
func New(cfg Config) (*Server, error) { return serve.New(cfg) }

// Open starts a durable daemon rooted at p.Dir, recovering whatever an
// earlier process left there (possibly nothing). A nil error guarantees
// the returned server's state equals the pre-crash state for every
// acknowledged Submit and CloseDay.
//
// Deprecated: prefer Start with WithDataDir (and WithFsync,
// WithSnapshotEvery, WithSegmentBytes as needed). Open keeps working and
// Start is a thin wrapper over it.
func Open(cfg Config, p PersistConfig) (*Server, *RecoverInfo, error) {
	return serve.Open(cfg, p)
}

// HTTP surface options for Server.Handler, re-exported under endpoint
// names so they read apart from the constructor Options above.
func WithMetricsEndpoint(enabled bool) HandlerOption { return serve.WithMetrics(enabled) }
func WithPprofEndpoint(enabled bool) HandlerOption   { return serve.WithPprof(enabled) }
func WithHealthzEndpoint(enabled bool) HandlerOption { return serve.WithHealthz(enabled) }
func WithAuditEndpoint(enabled bool) HandlerOption   { return serve.WithAudit(enabled) }

// VerifyAudit walks an audited data directory offline and verifies the
// full tamper-evidence chain — WAL frame CRCs, chain folds, recomputed
// batch Merkle roots, segment seals and cross-segment links, snapshot and
// manifest signatures and attested chain heads, receipt signatures and
// anchoring. It stops at the first divergence with a segment/offset
// diagnostic wrapping ErrAuditChainBroken. Run it against a cleanly
// shut-down directory; pub is the daemon's audit.pub key.
func VerifyAudit(dir string, pub ed25519.PublicKey) (*VerifyReport, error) {
	return serve.VerifyAudit(dir, pub)
}

// LoadAuditPublicKey reads an audit.pub file (hex-encoded ed25519 public
// key) for VerifyAudit.
func LoadAuditPublicKey(path string) (ed25519.PublicKey, error) {
	return audit.LoadPublicKey(path)
}

// AuditPubFileName is the name of the shareable public-key file an
// audited daemon writes next to its WAL (the default -pub for
// `acobed -verify`).
const AuditPubFileName = audit.PubFileName

// AuditKeyFingerprint renders a public key's pinned fingerprint, the same
// string an audited daemon reports at startup.
func AuditKeyFingerprint(pub ed25519.PublicKey) string { return audit.Fingerprint(pub) }

// PprofHandler returns a mux serving only /debug/pprof/*, for deployments
// that keep profiling on a separate non-public listener instead of
// mounting it in-mux with WithPprofEndpoint.
func PprofHandler() http.Handler { return serve.PprofHandler() }

// ParseFsyncPolicy parses "never", "close", or "always".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return serve.ParseFsyncPolicy(s) }

// NewCERTIngestor builds the CERT-format ingestor explicitly (Config
// defaults to it when Ingestor is nil).
func NewCERTIngestor(users []string, start cert.Day) (StatefulIngestor, error) {
	return serve.NewCERTIngestor(users, start)
}

// NewEnterpriseIngestor builds the enterprise JSONL-record ingestor.
func NewEnterpriseIngestor(users []string, start cert.Day) (StatefulIngestor, error) {
	return serve.NewEnterpriseIngestor(users, start)
}
