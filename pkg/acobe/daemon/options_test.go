package daemon_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"acobe/pkg/acobe"
	"acobe/pkg/acobe/daemon"
)

func optTestConfig() daemon.Config {
	return daemon.Config{
		Users: []string{"u1", "u2", "u3"},
		Start: 0,
		Deviation: acobe.DeviationConfig{
			Window: 4, MatrixDays: 2, Delta: 3, Epsilon: 1,
		},
	}
}

func optEvent(d daemon.Day, u string) daemon.Event {
	return daemon.Event{Cert: &daemon.CertEvent{
		Type: daemon.EventLogon, Activity: "Logon",
		Time: d.Date().Add(9 * time.Hour), User: u,
	}}
}

// TestStartInMemory proves the options constructor builds the same
// in-memory daemon New does, with shards and the observer wired through.
func TestStartInMemory(t *testing.T) {
	ctx := context.Background()
	o := daemon.NewObserver()
	srv, info, err := daemon.Start(optTestConfig(),
		daemon.WithShards(2),
		daemon.WithQueueSize(8),
		daemon.WithObserver(o),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(ctx)
	if info != nil {
		t.Fatalf("in-memory Start returned recovery info: %+v", info)
	}
	if err := srv.Submit(ctx, []daemon.Event{optEvent(0, "u1"), optEvent(0, "u3")}); err != nil {
		t.Fatal(err)
	}
	if err := srv.CloseDay(ctx, 0); err != nil {
		t.Fatal(err)
	}
	st := srv.Status()
	if st.Shards != 2 || st.SchemaVersion != daemon.StatusSchemaVersion {
		t.Fatalf("status = %+v", st)
	}
	if st.Metrics == nil || st.Metrics.Counter("events_submitted_total") != 2 {
		t.Fatalf("observer not wired: %+v", st.Metrics)
	}
	if srv.MetricsSnapshot() == nil {
		t.Fatal("MetricsSnapshot returned nil on an instrumented daemon")
	}
}

// TestStartDurable proves WithDataDir routes Start through recovery, and
// the persistence tuning options take effect.
func TestStartDurable(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	open := func() (*daemon.Server, *daemon.RecoverInfo) {
		t.Helper()
		srv, info, err := daemon.Start(optTestConfig(),
			daemon.WithDataDir(dir),
			daemon.WithFsync(daemon.FsyncClose),
			daemon.WithSnapshotEvery(2),
		)
		if err != nil {
			t.Fatal(err)
		}
		if info == nil {
			t.Fatal("durable Start returned nil recovery info")
		}
		return srv, info
	}

	srv, _ := open()
	for d := daemon.Day(0); d <= 3; d++ {
		if err := srv.Submit(ctx, []daemon.Event{optEvent(d, "u1"), optEvent(d, "u2")}); err != nil {
			t.Fatal(err)
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Status(); st.Persistence == nil || st.Persistence.Fsync != "close" || st.Persistence.SnapshotEvery != 2 {
		t.Fatalf("persistence status = %+v", st.Persistence)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	srv2, info := open()
	defer srv2.Shutdown(ctx)
	if srv2.ClosedThrough() != 3 {
		t.Fatalf("recovered ClosedThrough = %v, want 3", srv2.ClosedThrough())
	}
	if !info.SnapshotLoaded {
		t.Fatalf("SnapshotEvery=2 over 4 closed days wrote no snapshot: %+v", info)
	}
}

// TestStartRejectsOrphanPersistOptions pins the configuration error: a
// persistence tuning option without WithDataDir must fail loudly.
func TestStartRejectsOrphanPersistOptions(t *testing.T) {
	_, _, err := daemon.Start(optTestConfig(), daemon.WithFsync(daemon.FsyncAlways))
	if err == nil || !strings.Contains(err.Error(), "WithFsync requires WithDataDir") {
		t.Fatalf("err = %v, want WithFsync-requires-WithDataDir", err)
	}
}

// TestHandlerEndpointOptions exercises the re-exported HTTP surface
// options through the public package.
func TestHandlerEndpointOptions(t *testing.T) {
	srv, _, err := daemon.Start(optTestConfig(), daemon.WithObserver(daemon.NewObserver()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	defer srv.Shutdown(ctx)
	h := srv.Handler(daemon.WithPprofEndpoint(true), daemon.WithMetricsEndpoint(true), daemon.WithHealthzEndpoint(false))
	if h == nil {
		t.Fatal("nil handler")
	}
}
