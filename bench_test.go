// Package acobe's benchmark harness regenerates every figure of the
// paper's evaluation (the paper reports no numbered tables; Figures 4-7
// carry all results). Each BenchmarkFigN* target rebuilds its figure from
// a freshly trained model at a reduced "bench" scale so that
// `go test -bench=. -benchmem` terminates in minutes; `cmd/repro -preset
// fast` regenerates the same figures at the scale EXPERIMENTS.md reports.
//
// Micro-benchmarks at the bottom cover the substrates (neural network,
// deviation field, synthesizers, log pipeline, DGA).
package acobe

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/deviation"
	"acobe/internal/dga"
	"acobe/internal/experiment"
	"acobe/internal/features"
	"acobe/internal/logstore"
	"acobe/internal/mathx"
	"acobe/internal/metrics"
	"acobe/internal/nn"
	"acobe/internal/obs"
	"acobe/internal/serve"
	pubacobe "acobe/pkg/acobe"
)

// benchPreset is the reduced scale used by the figure benchmarks.
func benchPreset() experiment.Preset {
	p := experiment.TinyPreset()
	p.Name = "bench"
	p.UsersPerDept = 8
	p.AEConfig = func(dim int) autoencoder.Config {
		cfg := autoencoder.FastConfig(dim)
		cfg.Hidden = []int{48, 24}
		cfg.Epochs = 15
		cfg.EarlyStopDelta = 0.002
		cfg.Patience = 3
		return cfg
	}
	p.TrainStride = 4
	return p
}

var (
	benchDataOnce sync.Once
	benchDataVal  *experiment.CERTData
	benchDataErr  error
)

// benchData synthesizes the shared CERT dataset once per process.
func benchData(b *testing.B) *experiment.CERTData {
	b.Helper()
	benchDataOnce.Do(func() {
		benchDataVal, benchDataErr = experiment.BuildCERTData(benchPreset())
	})
	if benchDataErr != nil {
		b.Fatalf("build bench dataset: %v", benchDataErr)
	}
	return benchDataVal
}

// BenchmarkFig4DeviationMatrix regenerates Figure 4: the insider's
// compound behavioral deviation heatmaps (device + HTTP aspects × two
// time-frames).
func BenchmarkFig4DeviationMatrix(b *testing.B) {
	data := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heatmaps, err := experiment.BuildFig4(data)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, h := range heatmaps {
				peak := 0.0
				for _, row := range h.Values {
					if m := mathx.Max(row); m > peak {
						peak = m
					}
				}
				b.Logf("%s: %d features × %d days, peak σ=%.2f", h.Title, len(h.Rows), len(h.Cols), peak)
			}
		}
	}
}

// benchFig5 trains one model variant on the r6.1-s2 split and regenerates
// its Figure 5 score-trend waveform.
func benchFig5(b *testing.B, kind experiment.ModelKind) {
	data := benchData(b)
	sc := data.ScenarioByName("r6.1-s2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := experiment.RunScenario(data, kind, sc)
		if err != nil {
			b.Fatal(err)
		}
		w, err := experiment.BuildFig5Waveform(data, run, experiment.Fig5AspectFor(kind))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			pos := insiderPosition(run)
			b.Logf("Fig5 %v (%s aspect): score mean=%.5f std=%.5f; insider list position %d/%d",
				kind, w.Aspect, w.Mean, w.Std, pos, len(run.Items))
		}
	}
}

func insiderPosition(run *experiment.ScenarioRun) int {
	for i, it := range metrics.OrderWorstCase(run.Items) {
		if it.Positive {
			return i + 1
		}
	}
	return -1
}

// BenchmarkFig5ACOBE regenerates Figure 5(a)/(b): ACOBE's waveforms.
func BenchmarkFig5ACOBE(b *testing.B) { benchFig5(b, experiment.ModelACOBE) }

// BenchmarkFig5OneDay regenerates Figure 5(c): single-day reconstruction.
func BenchmarkFig5OneDay(b *testing.B) { benchFig5(b, experiment.ModelOneDay) }

// BenchmarkFig5NoGroup regenerates Figure 5(d): no group deviations.
func BenchmarkFig5NoGroup(b *testing.B) { benchFig5(b, experiment.ModelNoGroup) }

// BenchmarkFig5AllInOne regenerates Figure 5(e): one autoencoder for all
// features.
func BenchmarkFig5AllInOne(b *testing.B) { benchFig5(b, experiment.ModelAllInOne) }

// BenchmarkFig5Baseline regenerates Figure 5(f): the Liu et al. baseline.
func BenchmarkFig5Baseline(b *testing.B) { benchFig5(b, experiment.ModelBaseline) }

var (
	fig6Once sync.Once
	fig6Runs map[experiment.ModelKind][]*experiment.ScenarioRun
	fig6Err  error
)

// fig6AllRuns trains every model variant on all four scenarios (the heavy
// part of Figure 6) once per process; the ROC / PR / N-sweep benchmarks
// evaluate different views of the same runs, as the paper's sub-figures
// do.
func fig6AllRuns(b *testing.B) map[experiment.ModelKind][]*experiment.ScenarioRun {
	b.Helper()
	data := benchData(b)
	fig6Once.Do(func() {
		fig6Runs = make(map[experiment.ModelKind][]*experiment.ScenarioRun)
		for _, kind := range experiment.AllModelKinds() {
			for _, sc := range data.Scenarios {
				run, err := experiment.RunScenario(data, kind, sc)
				if err != nil {
					fig6Err = fmt.Errorf("%v on %s: %w", kind, sc.Name(), err)
					return
				}
				fig6Runs[kind] = append(fig6Runs[kind], run)
			}
		}
	})
	if fig6Err != nil {
		b.Fatal(fig6Err)
	}
	return fig6Runs
}

// BenchmarkFig6ROC regenerates Figure 6(a): pooled ROC curves and AUC for
// all six model variants. The first iteration includes model training.
func BenchmarkFig6ROC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs := fig6AllRuns(b)
		res, err := experiment.BuildFig6(runs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Fig6(a):\n%s", res.Summary.String())
		}
	}
}

// BenchmarkFig6PR regenerates Figure 6(b): the pooled precision-recall
// curves over the same runs.
func BenchmarkFig6PR(b *testing.B) {
	runs := fig6AllRuns(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.BuildFig6(runs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for name, c := range res.Curves {
				b.Logf("Fig6(b) %s: AP=%.4f", name, c.AP)
			}
		}
	}
}

// BenchmarkFig6NSweep regenerates Figure 6(c): ACOBE re-ranked with
// critic N = 1, 2, 3 (no retraining — only the critic changes).
func BenchmarkFig6NSweep(b *testing.B) {
	runs := fig6AllRuns(b)
	data := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runsByN := make(map[int][]*experiment.ScenarioRun)
		for n := 1; n <= 3; n++ {
			rr, err := experiment.ReRankRuns(data, runs[experiment.ModelACOBE], n)
			if err != nil {
				b.Fatal(err)
			}
			runsByN[n] = rr
		}
		res, err := experiment.BuildFig6N(runsByN)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Fig6(c):\n%s", res.Summary.String())
		}
	}
}

// benchFig7 runs one enterprise case study end to end (simulation, log
// pipeline, training, scoring, daily ranking).
func benchFig7(b *testing.B, kind experiment.AttackKind) {
	p := experiment.EnterpriseTinyPreset()
	for i := 0; i < b.N; i++ {
		run, err := experiment.RunEnterprise(p, kind)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			attackIdx := int(run.AttackDay - run.ScoreFrom)
			held := 0
			for _, r := range run.VictimDailyRank[attackIdx:] {
				if r != 1 {
					break
				}
				held++
			}
			b.Logf("Fig7 %s: victim=%s, rank-1 streak after attack = %d days, ranks=%v",
				kind, run.Victim, held, run.VictimDailyRank[attackIdx:])
		}
	}
}

// BenchmarkFig7Ransomware regenerates Figure 7(a).
func BenchmarkFig7Ransomware(b *testing.B) { benchFig7(b, experiment.AttackRansomware) }

// BenchmarkFig7Zeus regenerates Figure 7(b).
func BenchmarkFig7Zeus(b *testing.B) { benchFig7(b, experiment.AttackZeus) }

// ---------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------

// BenchmarkNNMatMul measures the dense matrix multiply at an
// autoencoder-typical shape (batch 64 × 392 by 392 × 128).
func BenchmarkNNMatMul(b *testing.B) {
	rng := mathx.NewRNG(1)
	a := nn.NewMatrix(64, 392)
	w := nn.NewMatrix(392, 128)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
	}
	for i := range w.Data {
		w.Data[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nn.MatMul(a, w)
	}
}

// benchRandMat returns a rows×cols matrix of uniform values.
func benchRandMat(rows, cols int, seed uint64) *nn.Matrix {
	rng := mathx.NewRNG(seed)
	m := nn.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// BenchmarkMatMulATB measures the transpose-product kernel (the dW =
// xᵀ·grad shape of a Dense backward pass) through the reusable-buffer
// path.
func BenchmarkMatMulATB(b *testing.B) {
	x := benchRandMat(64, 392, 1)
	g := benchRandMat(64, 128, 2)
	dst := nn.NewMatrix(392, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nn.MatMulATBInto(dst, x, g)
	}
}

// BenchmarkMatMulABT measures the product-with-transpose kernel (the dx =
// grad·Wᵀ shape of a Dense backward pass) through the reusable-buffer
// path.
func BenchmarkMatMulABT(b *testing.B) {
	g := benchRandMat(64, 128, 1)
	w := benchRandMat(392, 128, 2)
	dst := nn.NewMatrix(64, 392)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = nn.MatMulABTInto(dst, g, w)
	}
}

// BenchmarkTrainStep measures one 64-sample batch through the workspace
// trainer (forward, MSE, backward, Adadelta step) on a 392-128-392
// autoencoder-shaped network. The headline number is allocs/op: after the
// first warm-up step, a training step performs zero heap allocations.
func BenchmarkTrainStep(b *testing.B) {
	rng := mathx.NewRNG(9)
	net := nn.NewNetwork(
		nn.NewDense(392, 128, rng),
		nn.NewBatchNorm(128),
		nn.NewActivation(nn.ActReLU),
		nn.NewDense(128, 392, rng),
		nn.NewActivation(nn.ActSigmoid),
	)
	ws := net.NewWorkspace()
	bx := benchRandMat(64, 392, 3)
	opt := nn.NewAdadelta()
	net.TrainStep(ws, bx, bx, opt) // warm buffers and optimizer slots
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.TrainStep(ws, bx, bx, opt)
	}
}

// BenchmarkAutoencoderEpoch measures one training epoch of the fast
// architecture on 1024 samples of width 392.
func BenchmarkAutoencoderEpoch(b *testing.B) {
	rng := mathx.NewRNG(2)
	rows := make([][]float64, 1024)
	for i := range rows {
		rows[i] = make([]float64, 392)
		for j := range rows[i] {
			rows[i][j] = rng.Float64()
		}
	}
	samples := nn.FromRows(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := autoencoder.FastConfig(392)
		cfg.Epochs = 1
		ae, err := autoencoder.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ae.Fit(context.Background(), samples); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviationField measures the sliding-window deviation
// computation over a 40-user × 27-feature × 2-frame × 515-day table.
func BenchmarkDeviationField(b *testing.B) {
	data := benchData(b)
	cfg := deviation.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deviation.ComputeField(data.Table, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCERTGeneratorDay measures synthesizing one day of events for
// the bench organization (streamed; b.N caps the number of days).
func BenchmarkCERTGeneratorDay(b *testing.B) {
	cfg := cert.SmallConfig(8)
	gen, err := cert.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	days := 0
	b.ResetTimer()
	err = gen.Stream(func(_ cert.Day, events []cert.Event) error {
		days++
		if days >= b.N {
			return errStop
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		b.Fatal(err)
	}
}

var errStop = errors.New("bench: enough days")

// BenchmarkLogstoreIngest measures the concurrent log pipeline at the
// enterprise record shape.
func BenchmarkLogstoreIngest(b *testing.B) {
	rec := logstore.Record{
		Time: time.Date(2011, 2, 2, 10, 0, 0, 0, time.UTC), User: "emp001",
		Host: "WS-001", Channel: logstore.ChannelSysmon, EventID: 11,
		Action: "FileWrite", Object: `C:\f.docx`, Status: "success",
	}
	b.ReportAllocs()
	b.ResetTimer()
	store := logstore.NewStore()
	pipe := logstore.NewPipeline(store, 4, 256)
	for i := 0; i < b.N; i++ {
		if err := pipe.Submit(rec); err != nil {
			b.Fatal(err)
		}
	}
	pipe.Close()
	if got := store.Ingested(); got != int64(b.N) {
		b.Fatalf("ingested %d, want %d", got, b.N)
	}
}

// BenchmarkDGA measures daily domain-list generation.
func BenchmarkDGA(b *testing.B) {
	g := dga.New(0x60df)
	date := time.Date(2011, 2, 2, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.DomainsForDate(date, 100)
	}
}

// BenchmarkCritic measures Algorithm 1 at paper scale (929 users, 3
// aspects).
func BenchmarkCritic(b *testing.B) {
	rng := mathx.NewRNG(3)
	users := make([]string, 929)
	scores := make([][]float64, 3)
	for a := range scores {
		scores[a] = make([]float64, len(users))
	}
	for i := range users {
		users[i] = fmt.Sprintf("u%04d", i)
		for a := range scores {
			scores[a][i] = rng.Float64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		criticSink = core.Critic(users, scores, 3)
	}
}

// criticSink keeps the compiler from eliding the critic call.
var criticSink []core.Ranked

// ---------------------------------------------------------------------
// Ablation benchmarks: the design choices DESIGN.md calls out.
// ---------------------------------------------------------------------

// BenchmarkAblationWindow sweeps the history window ω on the r6.1-s2
// scenario (paper: ω=30).
func BenchmarkAblationWindow(b *testing.B) {
	data := benchData(b)
	sc := data.ScenarioByName("r6.1-s2")
	for i := 0; i < b.N; i++ {
		results, err := experiment.SweepWindow(data, sc, []int{14, 30})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				b.Logf("window %s: AUC=%.4f insider-pos=%d", r.Name, r.AUC, r.Insider)
			}
		}
	}
}

// BenchmarkAblationWeighting compares the TF-style feature weights
// against unweighted deviations.
func BenchmarkAblationWeighting(b *testing.B) {
	data := benchData(b)
	sc := data.ScenarioByName("r6.1-s2")
	for i := 0; i < b.N; i++ {
		results, err := experiment.SweepWeighting(data, sc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				b.Logf("%s: AUC=%.4f insider-pos=%d", r.Name, r.AUC, r.Insider)
			}
		}
	}
}

// BenchmarkAblationAggregation compares window-pooling aggregators on an
// already-trained ACOBE run (no retraining).
func BenchmarkAblationAggregation(b *testing.B) {
	runs := fig6AllRuns(b)
	data := benchData(b)
	run := runs[experiment.ModelACOBE][1] // r6.1-s2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := experiment.SweepAggregation(data, run)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				b.Logf("%s: AUC=%.4f insider-pos=%d", r.Name, r.AUC, r.Insider)
			}
		}
	}
}

// BenchmarkAdvancedCritic measures the §VII-B waveform critic over an
// ACOBE run's score series.
func BenchmarkAdvancedCritic(b *testing.B) {
	runs := fig6AllRuns(b)
	run := runs[experiment.ModelACOBE][1]
	data := benchData(b)
	cfg := core.DefaultWaveformConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		list := core.AdvancedCritic(data.UserIDs, run.Series, 3, cfg)
		if i == 0 {
			top := list[0]
			b.Logf("advanced critic top: %s (suspicion %d/%d, classes %v)",
				top.User, top.Suspicion, len(run.Series), top.Classes)
		}
	}
}

// ---------------------------------------------------------------------
// Scoring hot path (BENCH_score.json). `cmd/repro -bench-score` runs the
// same two workloads with GOMAXPROCS pinned to 1 and merges the numbers
// into BENCH_score.json; the copies here make them reachable from
// `make bench` / `go test -bench`.
// ---------------------------------------------------------------------

var (
	scoreBenchOnce sync.Once
	scoreBenchDet  *core.Detector
	scoreBenchFrom cert.Day
	scoreBenchTo   cert.Day
	scoreBenchErr  error
)

// scoreBenchDetector trains one ensemble on the bench-scale CERT
// organization's r6.1-s1 split, once per process (mirrors
// cmd/repro/benchscore.go so the two report comparable numbers).
func scoreBenchDetector(b *testing.B) (*core.Detector, cert.Day, cert.Day) {
	b.Helper()
	scoreBenchOnce.Do(func() {
		p := experiment.TinyPreset()
		p.Name = "bench-score"
		p.UsersPerDept = 8
		p.TrainStride = 4
		data, err := experiment.BuildCERTData(p)
		if err != nil {
			scoreBenchErr = err
			return
		}
		sc := data.ScenarioByName("r6.1-s1")
		if sc == nil {
			scoreBenchErr = errors.New("bench: scenario r6.1-s1 not found")
			return
		}
		dsStart, dsEnd := data.Span()
		trainFrom, trainTo, testFrom, testTo, err := cert.SplitForScenario(sc, dsStart, dsEnd)
		if err != nil {
			scoreBenchErr = err
			return
		}
		cfg := core.Config{
			Deviation:    p.Deviation,
			Aspects:      features.ACOBEAspects(),
			IncludeGroup: true,
			AEConfig:     p.AEConfig,
			TrainStride:  p.TrainStride,
			N:            p.N,
			Seed:         p.Seed,
		}
		ind, group, err := data.Fields(cfg.Deviation)
		if err != nil {
			scoreBenchErr = err
			return
		}
		det, err := core.NewDetector(cfg, ind, group, data.UserGroup)
		if err != nil {
			scoreBenchErr = err
			return
		}
		if _, err := det.Fit(context.Background(), trainFrom, trainTo); err != nil {
			scoreBenchErr = err
			return
		}
		scoreBenchDet, scoreBenchFrom, scoreBenchTo = det, testFrom, testTo
	})
	if scoreBenchErr != nil {
		b.Fatal(scoreBenchErr)
	}
	return scoreBenchDet, scoreBenchFrom, scoreBenchTo
}

// BenchmarkScoreBatch measures Detector.ScoreBatchInto over the full CERT
// r6.1-s1 testing window — every user × every test day × all three
// aspects flow through the batched ensemble inference path (one
// users×features GEMM chain per chunk instead of a forward pass per
// user-day), recycling the result series like a long-running daemon
// would, so steady state is 0 allocs/op. The nn worker budget is pinned
// to 1 so before/after runs compare single-thread throughput; combine
// with -cpu=1 to also pin the scheduler.
func BenchmarkScoreBatch(b *testing.B) {
	det, from, to := scoreBenchDetector(b)
	defer nn.SetWorkerBudget(nn.WorkerBudget())
	nn.SetWorkerBudget(1)
	ctx := context.Background()
	// One warm-up call allocates the result series and scorer pools; the
	// timed loop then runs in steady state.
	dst, err := det.ScoreBatchInto(ctx, nil, from, to)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = det.ScoreBatchInto(ctx, dst, from, to); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	rankBenchOnce sync.Once
	rankBenchSrv  *serve.Server
	rankBenchFrom cert.Day
	rankBenchTo   cert.Day
	rankBenchErr  error
)

// rankBenchServer boots a selftest-scale online daemon, replays its whole
// timeline, retrains once, and keeps it alive for the rest of the bench
// process (mirrors cmd/repro/benchscore.go).
func rankBenchServer(b *testing.B) (*serve.Server, cert.Day, cert.Day) {
	b.Helper()
	rankBenchOnce.Do(func() {
		const endDay = cert.Day(95)
		gcfg := cert.SmallConfig(3)
		gcfg.Seed = 7
		gcfg.Start = 0
		gcfg.End = endDay
		gcfg.EnvChanges = nil
		gcfg.Scenarios = nil
		gen, err := cert.New(gcfg)
		if err != nil {
			rankBenchErr = err
			return
		}
		var (
			users      []string
			membership []int
		)
		deptIndex := make(map[string]int)
		for i, d := range gen.Departments() {
			deptIndex[d] = i
		}
		for _, u := range gen.Users() {
			users = append(users, u.ID)
			membership = append(membership, deptIndex[u.Department])
		}
		srv, err := serve.New(serve.Config{
			Users:      users,
			Groups:     gen.Departments(),
			Membership: membership,
			Start:      0,
			Deviation: deviation.Config{
				Window: 7, MatrixDays: 3,
				Delta: 3, Epsilon: 1, Weighted: true,
			},
			DetectorOptions: []pubacobe.Option{
				pubacobe.WithAspects(pubacobe.ACOBEAspects()...),
				pubacobe.WithSeed(7),
				pubacobe.WithVotes(2),
				pubacobe.WithTrainStride(2),
				pubacobe.WithModelConfig(func(dim int) pubacobe.ModelConfig {
					cfg := pubacobe.FastModelConfig(dim)
					cfg.Hidden = []int{16, 8}
					cfg.Epochs = 30
					return cfg
				}),
			},
		})
		if err != nil {
			rankBenchErr = err
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		defer cancel()
		err = gen.Stream(func(d cert.Day, events []cert.Event) error {
			evs := make([]serve.Event, len(events))
			for i := range events {
				evs[i] = serve.Event{Cert: &events[i]}
			}
			if err := srv.Submit(ctx, evs); err != nil {
				return err
			}
			return srv.CloseDay(ctx, d)
		})
		if err == nil {
			err = srv.Retrain(ctx, 8, 74, true)
		}
		if err != nil {
			_ = srv.Shutdown(ctx)
			rankBenchErr = err
			return
		}
		rankBenchSrv, rankBenchFrom, rankBenchTo = srv, 80, endDay
	})
	if rankBenchErr != nil {
		b.Fatal(rankBenchErr)
	}
	return rankBenchSrv, rankBenchFrom, rankBenchTo
}

// ingestBenchUsers builds the fixed organization for the ingest
// benchmark: 48 users across three peer groups.
func ingestBenchUsers() (users []string, membership []int) {
	for i := 0; i < 48; i++ {
		users = append(users, fmt.Sprintf("ING%04d", i))
		membership = append(membership, i%3)
	}
	return users, membership
}

// ingestBenchDay synthesizes one day of CERT events for every user —
// logons, device sessions, file touches, and HTTP traffic — so a day
// cycle exercises the full extraction surface, not just the queues.
func ingestBenchDay(users []string, d cert.Day) []serve.Event {
	at := func(h int) time.Time { return d.Date().Add(time.Duration(h) * time.Hour) }
	evs := make([]serve.Event, 0, 6*len(users))
	for i, u := range users {
		evs = append(evs,
			serve.Event{Cert: &cert.Event{Type: cert.EventLogon, Time: at(7 + i%4), User: u, Activity: cert.ActLogon}},
			serve.Event{Cert: &cert.Event{Type: cert.EventDevice, Time: at(9), User: u,
				PC: fmt.Sprintf("PC-%d", (int(d)+i)%7), Activity: cert.ActConnect}},
			serve.Event{Cert: &cert.Event{Type: cert.EventFile, Time: at(11), User: u,
				Activity: cert.ActFileOpen, Direction: cert.DirLocal, FileID: fmt.Sprintf("F%d", (int(d)+3*i)%11)}},
			serve.Event{Cert: &cert.Event{Type: cert.EventHTTP, Time: at(13), User: u,
				Activity: cert.ActVisit, Domain: fmt.Sprintf("d%d.com", (int(d)+i)%5)}},
			serve.Event{Cert: &cert.Event{Type: cert.EventDevice, Time: at(16), User: u,
				PC: fmt.Sprintf("PC-%d", (int(d)+i)%7), Activity: cert.ActDisconnect}},
			serve.Event{Cert: &cert.Event{Type: cert.EventLogon, Time: at(18), User: u, Activity: cert.ActLogoff}},
		)
	}
	return evs
}

// benchServeIngest measures the daemon's write path at a given shard
// count: each iteration is one full day cycle — Submit all users' events,
// then CloseDay (extraction, window slide, cross-shard merge). With
// shards > 1 each shard extracts its user subset on its own goroutine, so
// on a multi-core host the events/sec metric shows the scaling the shard
// layer buys; ranked output stays byte-identical at any count.
func benchServeIngest(b *testing.B, shards int, instrumented bool) {
	users, membership := ingestBenchUsers()
	var observer *obs.Observer
	if instrumented {
		observer = obs.NewObserver()
	}
	srv, err := serve.New(serve.Config{
		Users:      users,
		Groups:     []string{"g0", "g1", "g2"},
		Membership: membership,
		Start:      0,
		Shards:     shards,
		Observer:   observer,
		Deviation: deviation.Config{
			Window: 7, MatrixDays: 3,
			Delta: 3, Epsilon: 1, Weighted: true,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()
	events := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := cert.Day(i)
		evs := ingestBenchDay(users, d)
		events += len(evs)
		if err := srv.Submit(ctx, evs); err != nil {
			b.Fatal(err)
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkServeIngest compares the sharded and unsharded write path,
// each with and without an attached Observer. The obs=on/off allocs/op
// must be identical (the hooks are a clock read plus a few atomic adds
// per batch, nothing per event). Compare timings across -count runs, not
// across the on/off variants of one run: a day cycle's cost depends on
// how many days preceded it, so the different iteration counts the
// harness picks per variant skew single-run deltas. The authoritative
// paired comparison (fixed cycle counts, min over alternating reps)
// is `cmd/repro -bench-serve`, recorded in BENCH_serve.json's
// observer_overhead section.
func BenchmarkServeIngest(b *testing.B) {
	for _, shards := range []int{1, 4} {
		for _, instrumented := range []bool{false, true} {
			label := "off"
			if instrumented {
				label = "on"
			}
			b.Run(fmt.Sprintf("shards=%d/obs=%s", shards, label), func(b *testing.B) {
				benchServeIngest(b, shards, instrumented)
			})
		}
	}
}

// BenchmarkServeRank measures serve.Server.Rank — the online daemon's
// query path, which batches all users' score matrices per aspect, runs
// the waveform critic, and assembles the ranked list.
func BenchmarkServeRank(b *testing.B) {
	srv, from, to := rankBenchServer(b)
	defer nn.SetWorkerBudget(nn.WorkerBudget())
	nn.SetWorkerBudget(1)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Rank(ctx, from, to); err != nil {
			b.Fatal(err)
		}
	}
}
