module acobe

go 1.22
