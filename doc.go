// Package acobe is a from-scratch Go reproduction of "Time-Window Based
// Group-Behavior Supported Method for Accurate Detection of Anomalous
// Users" (Yuan, Choo, Yu, Khalil, Zhu — DSN 2021): ACOBE, an anomaly
// detection method that builds compound behavioral deviation matrices
// (multi-day, multi-time-frame, individual + group deviations) and scores
// them with an ensemble of deep fully-connected autoencoders, producing an
// ordered investigation list of the most anomalous users.
//
// The implementation lives under internal/: see internal/core for the
// detector, internal/deviation for the behavioral representation,
// internal/experiment for the reproduction harness, and README.md for the
// full map. Runnable entry points are in cmd/ and examples/. The
// bench_test.go file in this directory regenerates every figure of the
// paper's evaluation via `go test -bench=.`.
package acobe
