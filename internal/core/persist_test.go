package core

import (
	"bytes"
	"context"
	"testing"
)

func TestSaveLoadModelsRoundTrip(t *testing.T) {
	ind, grp, ug := synthData(t)
	det, err := NewDetector(detectorConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Fit(context.Background(), 0, 90); err != nil {
		t.Fatal(err)
	}
	want, err := det.Score(context.Background(), 95, 119)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := det.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}

	// A freshly constructed (untrained) detector + LoadModels must score
	// identically to the trained one.
	fresh, err := NewDetector(detectorConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadModels(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Score(context.Background(), 95, 119)
	if err != nil {
		t.Fatal(err)
	}
	for a := range want {
		for u := range want[a].Scores {
			for d := range want[a].Scores[u] {
				if want[a].Scores[u][d] != got[a].Scores[u][d] {
					t.Fatalf("score differs after reload at aspect %d user %d day %d", a, u, d)
				}
			}
		}
	}
}

func TestLoadModelsMismatch(t *testing.T) {
	ind, grp, ug := synthData(t)
	det, err := NewDetector(detectorConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}

	// Different aspect set must be rejected.
	cfg := detectorConfig()
	cfg.Aspects[0].Name = "other"
	other, err := NewDetector(cfg, ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadModels(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("no error loading models into mismatched detector")
	}

	// Garbage must be rejected.
	if err := det.LoadModels(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("no error decoding garbage")
	}
}
