package core

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"acobe/internal/autoencoder"
	"acobe/internal/features"
	"acobe/internal/nn"
)

// twoAspectConfig splits the synthetic features into two single-feature
// aspects so Fit actually exercises the concurrent ensemble path.
func twoAspectConfig() Config {
	cfg := detectorConfig()
	cfg.Aspects = []features.Aspect{
		{Name: "fa-only", Features: []string{"fa"}},
		{Name: "fb-only", Features: []string{"fb"}},
	}
	cfg.AEConfig = func(dim int) autoencoder.Config {
		c := autoencoder.FastConfig(dim)
		c.Hidden = []int{16, 8}
		c.Epochs = 10
		return c
	}
	return cfg
}

// TestFitParallelMatchesSequential trains the two-aspect ensemble twice —
// once concurrently, once with SequentialFit — and requires bit-identical
// per-aspect losses and investigation rankings. Each aspect's model owns
// its seed and RNG, so scheduling must not influence the result. GOMAXPROCS
// is raised so the run exercises real interleaving (and, under -race, the
// concurrent scoring path) even on a single-core machine.
func TestFitParallelMatchesSequential(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	ind, grp, ug := synthData(t)

	train := func(sequential bool) (map[string]float64, []Ranked) {
		cfg := twoAspectConfig()
		cfg.SequentialFit = sequential
		det, err := NewDetector(cfg, ind, grp, ug)
		if err != nil {
			t.Fatal(err)
		}
		losses, err := det.Fit(context.Background(), 0, 90)
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := det.Investigate(context.Background(), 95, 119)
		if err != nil {
			t.Fatal(err)
		}
		return losses, ranked
	}

	seqLosses, seqRanked := train(true)
	parLosses, parRanked := train(false)

	if len(seqLosses) != 2 || len(parLosses) != 2 {
		t.Fatalf("expected 2 aspect losses, got %d sequential / %d parallel", len(seqLosses), len(parLosses))
	}
	for aspect, want := range seqLosses {
		if got := parLosses[aspect]; got != want {
			t.Errorf("aspect %s: parallel loss %v != sequential %v", aspect, got, want)
		}
	}
	for i := range seqRanked {
		if seqRanked[i].User != parRanked[i].User || seqRanked[i].Priority != parRanked[i].Priority {
			t.Errorf("rank %d: parallel %v/%d != sequential %v/%d", i,
				parRanked[i].User, parRanked[i].Priority, seqRanked[i].User, seqRanked[i].Priority)
		}
	}
}

// TestSetWorkerBudgetEdgeCases: the budget floors at 1 (0 and negative
// requests must not wedge AcquireWorker), accepts oversubscription beyond
// GOMAXPROCS, and — because the kernels are bit-deterministic regardless of
// sharding — training under any budget produces identical results.
func TestSetWorkerBudgetEdgeCases(t *testing.T) {
	old := nn.WorkerBudget()
	defer nn.SetWorkerBudget(old)

	for _, tc := range []struct{ set, want int }{
		{0, 1},
		{-8, 1},
		{1, 1},
		{runtime.GOMAXPROCS(0) * 4, runtime.GOMAXPROCS(0) * 4},
	} {
		nn.SetWorkerBudget(tc.set)
		if got := nn.WorkerBudget(); got != tc.want {
			t.Fatalf("SetWorkerBudget(%d): budget = %d, want %d", tc.set, got, tc.want)
		}
		// The floored budget must still grant slots.
		nn.AcquireWorker()
		nn.ReleaseWorker()
	}

	ind, grp, ug := synthData(t)
	train := func(budgetSlots int) ([]Ranked, map[string]float64) {
		nn.SetWorkerBudget(budgetSlots)
		det, err := NewDetector(twoAspectConfig(), ind, grp, ug)
		if err != nil {
			t.Fatal(err)
		}
		losses, err := det.Fit(context.Background(), 0, 90)
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := det.Investigate(context.Background(), 95, 119)
		if err != nil {
			t.Fatal(err)
		}
		return ranked, losses
	}
	starved, starvedLosses := train(1)
	oversub, oversubLosses := train(runtime.GOMAXPROCS(0) * 4)
	for aspect, want := range starvedLosses {
		if got := oversubLosses[aspect]; got != want {
			t.Errorf("aspect %s: loss %v under budget 1, %v oversubscribed", aspect, want, got)
		}
	}
	for i := range starved {
		if starved[i].User != oversub[i].User || starved[i].Priority != oversub[i].Priority {
			t.Errorf("rank %d: budget 1 gives %s/%d, oversubscribed gives %s/%d", i,
				starved[i].User, starved[i].Priority, oversub[i].User, oversub[i].Priority)
		}
	}
}

// TestConcurrentScoring races several Score calls over one trained
// detector. The forward pass is read-only after training and every scoring
// worker owns its Scorer buffers, so concurrent calls must be safe (this is
// what -race checks) and must all return identical scores.
func TestConcurrentScoring(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	ind, grp, ug := synthData(t)
	det, err := NewDetector(twoAspectConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Fit(context.Background(), 0, 90); err != nil {
		t.Fatal(err)
	}
	want, err := det.Score(context.Background(), 95, 119)
	if err != nil {
		t.Fatal(err)
	}

	const callers = 4
	results := make([][]*ScoreSeries, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c], errs[c] = det.Score(context.Background(), 95, 119)
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		if len(results[c]) != len(want) {
			t.Fatalf("caller %d: %d aspects, want %d", c, len(results[c]), len(want))
		}
		for a := range want {
			got := results[c][a]
			if got.Aspect != want[a].Aspect || got.From != want[a].From || got.To != want[a].To {
				t.Fatalf("caller %d aspect %d: series header mismatch", c, a)
			}
			for u := range want[a].Scores {
				for i := range want[a].Scores[u] {
					if got.Scores[u][i] != want[a].Scores[u][i] {
						t.Fatalf("caller %d aspect %s user %d day %d: %g != %g",
							c, got.Aspect, u, i, got.Scores[u][i], want[a].Scores[u][i])
					}
				}
			}
		}
	}
}
