package core

import (
	"runtime"
	"testing"

	"acobe/internal/autoencoder"
	"acobe/internal/features"
)

// twoAspectConfig splits the synthetic features into two single-feature
// aspects so Fit actually exercises the concurrent ensemble path.
func twoAspectConfig() Config {
	cfg := detectorConfig()
	cfg.Aspects = []features.Aspect{
		{Name: "fa-only", Features: []string{"fa"}},
		{Name: "fb-only", Features: []string{"fb"}},
	}
	cfg.AEConfig = func(dim int) autoencoder.Config {
		c := autoencoder.FastConfig(dim)
		c.Hidden = []int{16, 8}
		c.Epochs = 10
		return c
	}
	return cfg
}

// TestFitParallelMatchesSequential trains the two-aspect ensemble twice —
// once concurrently, once with SequentialFit — and requires bit-identical
// per-aspect losses and investigation rankings. Each aspect's model owns
// its seed and RNG, so scheduling must not influence the result. GOMAXPROCS
// is raised so the run exercises real interleaving (and, under -race, the
// concurrent scoring path) even on a single-core machine.
func TestFitParallelMatchesSequential(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	ind, grp, ug := synthData(t)

	train := func(sequential bool) (map[string]float64, []Ranked) {
		cfg := twoAspectConfig()
		cfg.SequentialFit = sequential
		det, err := NewDetector(cfg, ind, grp, ug)
		if err != nil {
			t.Fatal(err)
		}
		losses, err := det.Fit(0, 90)
		if err != nil {
			t.Fatal(err)
		}
		ranked, err := det.Investigate(95, 119)
		if err != nil {
			t.Fatal(err)
		}
		return losses, ranked
	}

	seqLosses, seqRanked := train(true)
	parLosses, parRanked := train(false)

	if len(seqLosses) != 2 || len(parLosses) != 2 {
		t.Fatalf("expected 2 aspect losses, got %d sequential / %d parallel", len(seqLosses), len(parLosses))
	}
	for aspect, want := range seqLosses {
		if got := parLosses[aspect]; got != want {
			t.Errorf("aspect %s: parallel loss %v != sequential %v", aspect, got, want)
		}
	}
	for i := range seqRanked {
		if seqRanked[i].User != parRanked[i].User || seqRanked[i].Priority != parRanked[i].Priority {
			t.Errorf("rank %d: parallel %v/%d != sequential %v/%d", i,
				parRanked[i].User, parRanked[i].Priority, seqRanked[i].User, seqRanked[i].Priority)
		}
	}
}
