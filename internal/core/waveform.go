package core

import (
	"math"

	"acobe/internal/mathx"
)

// This file implements the paper's §VII-B "more flexible detection
// critic" — listed there as future work. Beyond ranking by raw anomaly
// scores, the advanced critic examines (1) whether a user's anomaly score
// has a *recent spike*, and (2) whether the raise demonstrates a
// particular *waveform*: a developer starting a new project produces a
// bursting raise with a long-lasting smooth decrease, whereas a
// cyberattack tends not to decrease and shows chaotic signals.

// WaveformClass labels the shape of a user's recent anomaly-score series.
type WaveformClass int

// Waveform classes, ordered by increasing suspicion.
const (
	// WaveformFlat: no recent spike above the user's own baseline.
	WaveformFlat WaveformClass = iota
	// WaveformBenignBurst: a spike followed by a smooth, sustained
	// decrease — the signature of a legitimate behavioral change whose
	// deviations wash out as the history window adapts.
	WaveformBenignBurst
	// WaveformAttackLike: a spike that does not decay, or decays
	// chaotically — malicious behaviour is rarely consistent over time.
	WaveformAttackLike
)

// String implements fmt.Stringer.
func (c WaveformClass) String() string {
	switch c {
	case WaveformFlat:
		return "flat"
	case WaveformBenignBurst:
		return "benign-burst"
	case WaveformAttackLike:
		return "attack-like"
	default:
		return "unknown"
	}
}

// WaveformFeatures summarize one score series for the advanced critic.
type WaveformFeatures struct {
	// SpikeRatio is the recent window's peak relative to the baseline
	// median of the earlier part of the series.
	SpikeRatio float64
	// SpikeOffset is the peak's index within the analyzed series.
	SpikeOffset int
	// DecayFraction is the fraction of post-peak steps that are
	// non-increasing (within 5% jitter) — 1.0 is a smooth decay that
	// settles at a floor.
	DecayFraction float64
	// PostPeakLevel is the mean post-peak score relative to the peak;
	// high values mean the raise never came back down.
	PostPeakLevel float64
	// Chaos is the mean absolute day-over-day change after the peak,
	// normalized by the peak height; erratic series score high.
	Chaos float64
}

// WaveformConfig tunes the analysis thresholds. The zero value is not
// useful; start from DefaultWaveformConfig.
type WaveformConfig struct {
	// RecentWindow is how many trailing days count as "recent" when
	// looking for a spike.
	RecentWindow int
	// SpikeThreshold is the minimum SpikeRatio that counts as a spike.
	SpikeThreshold float64
	// DecayThreshold: post-peak series with at least this decay fraction
	// and a low settled level classify as benign bursts.
	DecayThreshold float64
	// ChaosThreshold: post-peak chaos above this marks attack-like.
	ChaosThreshold float64
}

// DefaultWaveformConfig returns thresholds that work well for
// reconstruction-error series produced by the detectors in this package.
func DefaultWaveformConfig() WaveformConfig {
	return WaveformConfig{
		RecentWindow:   14,
		SpikeThreshold: 2.5,
		DecayThreshold: 0.6,
		ChaosThreshold: 0.15,
	}
}

// AnalyzeWaveform computes shape features of one user's daily score
// series. The last cfg.RecentWindow days are searched for the spike; the
// earlier days form the baseline.
func AnalyzeWaveform(scores []float64, cfg WaveformConfig) WaveformFeatures {
	var f WaveformFeatures
	if len(scores) == 0 {
		return f
	}
	recent := cfg.RecentWindow
	if recent <= 0 || recent > len(scores) {
		recent = len(scores)
	}
	baseline := scores[:len(scores)-recent]
	window := scores[len(scores)-recent:]

	base := mathx.Percentile(baseline, 50)
	if len(baseline) == 0 {
		base = mathx.Percentile(scores, 50)
	}
	if base <= 0 {
		base = 1e-12
	}

	peakIdx := mathx.ArgMax(window)
	peak := window[peakIdx]
	f.SpikeRatio = peak / base
	f.SpikeOffset = len(scores) - recent + peakIdx

	post := window[peakIdx+1:]
	if len(post) == 0 {
		// Spike on the last day: nothing after it to judge decay, so it
		// cannot be dismissed as a benign burst.
		f.DecayFraction = 0
		f.PostPeakLevel = 1
		f.Chaos = 0
		return f
	}
	decreases := 0
	prev := peak
	var absDiffSum, levelSum float64
	for _, v := range post {
		if v <= prev*1.05 {
			decreases++
		}
		absDiffSum += math.Abs(v - prev)
		levelSum += v
		prev = v
	}
	f.DecayFraction = float64(decreases) / float64(len(post))
	if peak > 0 {
		f.PostPeakLevel = (levelSum / float64(len(post))) / peak
		f.Chaos = (absDiffSum / float64(len(post))) / peak
	}
	return f
}

// Classify maps features to a waveform class under the given thresholds.
func (f WaveformFeatures) Classify(cfg WaveformConfig) WaveformClass {
	if f.SpikeRatio < cfg.SpikeThreshold {
		return WaveformFlat
	}
	// A smooth, substantial decrease back toward baseline is the benign
	// "new project" signature.
	if f.DecayFraction >= cfg.DecayThreshold && f.PostPeakLevel < 0.5 && f.Chaos <= cfg.ChaosThreshold {
		return WaveformBenignBurst
	}
	return WaveformAttackLike
}

// AdvancedRanked extends Ranked with the waveform evidence behind the
// adjusted priority.
type AdvancedRanked struct {
	Ranked
	// Classes holds the per-aspect waveform classes.
	Classes []WaveformClass
	// Suspicion is the count of aspects classified attack-like.
	Suspicion int
}

// AdvancedCritic is the §VII-B critic: it ranks users like Critic but
// weighs each aspect's aggregated score by the waveform evidence — users
// whose scores show no recent spike, or whose raise looks like a benign
// burst that already decayed, are demoted relative to users with
// sustained or chaotic raises.
func AdvancedCritic(users []string, series []*ScoreSeries, n int, cfg WaveformConfig) []AdvancedRanked {
	if len(users) == 0 || len(series) == 0 {
		return nil
	}
	classes := make([][]WaveformClass, len(users)) // [user][aspect]
	scoresByAspect := make([][]float64, len(series))
	for a, s := range series {
		agg := AggregateRelativeMax(s)
		adjusted := make([]float64, len(users))
		for u := range users {
			f := AnalyzeWaveform(s.Scores[u], cfg)
			class := f.Classify(cfg)
			if classes[u] == nil {
				classes[u] = make([]WaveformClass, len(series))
			}
			classes[u][a] = class
			weight := 1.0
			switch class {
			case WaveformFlat:
				weight = 0.5 // no recent spike: keep the score but demote
			case WaveformBenignBurst:
				weight = 0.25 // spike already decayed smoothly: likely benign
			case WaveformAttackLike:
				weight = 1.0
			}
			adjusted[u] = agg[u] * weight
		}
		scoresByAspect[a] = adjusted
	}
	base := Critic(users, scoresByAspect, n)
	idx := make(map[string]int, len(users))
	for i, u := range users {
		idx[u] = i
	}
	out := make([]AdvancedRanked, len(base))
	for i, r := range base {
		u := idx[r.User]
		suspicion := 0
		for _, c := range classes[u] {
			if c == WaveformAttackLike {
				suspicion++
			}
		}
		out[i] = AdvancedRanked{Ranked: r, Classes: classes[u], Suspicion: suspicion}
	}
	return out
}
