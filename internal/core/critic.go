// Package core implements ACOBE itself: the per-aspect ensemble of deep
// autoencoders over compound behavioral deviation matrices, and the
// anomaly-detection critic that turns per-aspect anomaly scores into an
// ordered investigation list (Algorithm 1 in the paper).
package core

import (
	"sort"
)

// Ranked is one row of the investigation list: a user, its per-aspect
// ranks (1 = most anomalous in that aspect), and the resulting priority
// (the N-th best rank; smaller is more anomalous).
type Ranked struct {
	User     string
	Ranks    []int
	Priority int
}

// Critic implements the paper's Algorithm 1. scoresByAspect[a][u] is user
// u's anomaly score in aspect a; n is the number of "votes" required (the
// paper evaluates N=3 as the default, with N=1 and N=2 as alternatives;
// n is clamped to the number of aspects). The returned list is sorted by
// priority (ascending), with deterministic tie-breaking by the sum of
// ranks and then user order.
func Critic(users []string, scoresByAspect [][]float64, n int) []Ranked {
	if len(users) == 0 || len(scoresByAspect) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(scoresByAspect) {
		n = len(scoresByAspect)
	}

	ranks := make([][]int, len(users)) // ranks[u][a]
	for u := range users {
		ranks[u] = make([]int, len(scoresByAspect))
	}
	order := make([]int, len(users))
	for a, scores := range scoresByAspect {
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(i, j int) bool {
			return scores[order[i]] > scores[order[j]]
		})
		for pos, u := range order {
			ranks[u][a] = pos + 1
		}
	}

	out := make([]Ranked, len(users))
	for u, name := range users {
		sorted := append([]int(nil), ranks[u]...)
		sort.Ints(sorted)
		out[u] = Ranked{User: name, Ranks: ranks[u], Priority: sorted[n-1]}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		return sumInts(out[i].Ranks) < sumInts(out[j].Ranks)
	})
	return out
}

func sumInts(xs []int) int {
	var s int
	for _, x := range xs {
		s += x
	}
	return s
}
