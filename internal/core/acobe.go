package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/features"
	"acobe/internal/mathx"
	"acobe/internal/nn"
)

// Config parameterizes a Detector.
type Config struct {
	// Deviation holds the compound-matrix parameters (ω, 𝒟, Δ, ε,
	// weighting).
	Deviation deviation.Config
	// Aspects are the behavioral aspects; one autoencoder is trained per
	// aspect (the paper's ensemble).
	Aspects []features.Aspect
	// IncludeGroup embeds group (department-average) deviations into each
	// matrix; disabling it reproduces the "No-Group" ablation.
	IncludeGroup bool
	// AEConfig builds the autoencoder configuration for a given flattened
	// input width. Defaults to autoencoder.FastConfig.
	AEConfig func(inputDim int) autoencoder.Config
	// TrainStride samples every k-th day when building training matrices
	// (1 = every day). Larger strides cut training cost with little
	// effect, since adjacent matrices overlap in 𝒟-1 of 𝒟 columns.
	TrainStride int
	// N is the critic's vote count (paper default: 3).
	N int
	// Aggregate reduces a user's daily scores over a testing window to one
	// per-aspect anomaly score. Defaults to AggregateRelativeMax.
	Aggregate func(*ScoreSeries) []float64
	// Seed differentiates model initialization between aspects.
	Seed uint64
	// SequentialFit trains the aspect ensemble one model at a time instead
	// of concurrently. Training is deterministic per aspect either way
	// (each model owns its seed and RNG); the knob exists for debugging
	// and for parity checks against the parallel path.
	SequentialFit bool
}

// DefaultConfig returns the paper's CERT-evaluation configuration with
// fast-sized autoencoders.
func DefaultConfig() Config {
	return Config{
		Deviation:    deviation.DefaultConfig(),
		Aspects:      features.ACOBEAspects(),
		IncludeGroup: true,
		AEConfig:     autoencoder.FastConfig,
		TrainStride:  2,
		N:            3,
		Seed:         7,
	}
}

// aspectModel couples one aspect's matrix builder with its autoencoder.
type aspectModel struct {
	aspect  features.Aspect
	builder *deviation.Builder
	aeCfg   autoencoder.Config
	ae      *autoencoder.Autoencoder

	// scorers recycles (Scorer, batch matrix) pairs across Score calls so
	// steady-state scoring reuses the forward buffers instead of
	// reallocating them every call. Entries are bound to the model they
	// were created for; getScorer discards entries whose model pointer no
	// longer matches (LoadModels replaces ae in place).
	scorers sync.Pool
}

// pooledScorer is one reusable scoring context: a Scorer (forward
// buffers) plus the batch matrix rows are staged in, tagged with the
// model it is bound to.
type pooledScorer struct {
	ae     *autoencoder.Autoencoder
	scorer *autoencoder.Scorer
	batch  *nn.Matrix
}

// getScorer returns a scoring context for the current model, reusing a
// pooled one when its binding is still valid.
func (m *aspectModel) getScorer() *pooledScorer {
	if ps, ok := m.scorers.Get().(*pooledScorer); ok && ps.ae == m.ae {
		return ps
	}
	return &pooledScorer{ae: m.ae, scorer: m.ae.NewScorer(), batch: &nn.Matrix{}}
}

// Detector is a trained ACOBE instance for one group of users.
type Detector struct {
	cfg    Config
	users  []string
	models []*aspectModel
}

// NewDetector wires up matrix builders over the individual deviation field
// and (when cfg.IncludeGroup) the group field, whose "users" are groups
// (e.g. per-department averages); userGroup[u] selects user u's group row.
// The fields must be computed from tables sharing the same day span.
func NewDetector(cfg Config, ind, group *deviation.Field, userGroup []int) (*Detector, error) {
	if len(cfg.Aspects) == 0 {
		return nil, fmt.Errorf("core: no aspects configured")
	}
	if cfg.AEConfig == nil {
		cfg.AEConfig = autoencoder.FastConfig
	}
	if cfg.TrainStride < 1 {
		cfg.TrainStride = 1
	}
	if cfg.N < 1 {
		cfg.N = 1
	}
	if !cfg.IncludeGroup {
		group = nil
	} else if group == nil {
		return nil, fmt.Errorf("core: IncludeGroup set but no group field given")
	}
	det := &Detector{cfg: cfg, users: ind.Table().Users()}
	for i, aspect := range cfg.Aspects {
		b, err := deviation.NewBuilder(ind, group, userGroup, aspect)
		if err != nil {
			return nil, fmt.Errorf("core: aspect %s: %w", aspect.Name, err)
		}
		aeCfg := cfg.AEConfig(b.Dim())
		aeCfg.Seed = cfg.Seed + uint64(i)*0x9e37
		ae, err := autoencoder.New(aeCfg)
		if err != nil {
			return nil, fmt.Errorf("core: aspect %s: %w", aspect.Name, err)
		}
		det.models = append(det.models, &aspectModel{aspect: aspect, builder: b, aeCfg: aeCfg, ae: ae})
	}
	return det, nil
}

// Rebind returns a detector that shares this detector's trained
// autoencoders but builds its matrices over the given deviation fields.
// The fields must have the same configuration and user geometry as the
// originals (same flattened matrix width); training state is shared, not
// copied — the models are read-only during inference, so the original and
// the rebound detector may score concurrently. The serving layer uses this
// to repoint a trained detector at a freshly published view generation
// without serializing and reloading weights.
func (d *Detector) Rebind(ind, group *deviation.Field, userGroup []int) (*Detector, error) {
	cfg := d.cfg
	if !cfg.IncludeGroup {
		group = nil
	} else if group == nil {
		return nil, fmt.Errorf("core: IncludeGroup set but no group field given")
	}
	out := &Detector{cfg: cfg, users: ind.Table().Users()}
	for _, m := range d.models {
		b, err := deviation.NewBuilder(ind, group, userGroup, m.aspect)
		if err != nil {
			return nil, fmt.Errorf("core: rebind aspect %s: %w", m.aspect.Name, err)
		}
		if b.Dim() != m.builder.Dim() {
			return nil, fmt.Errorf("core: rebind aspect %s: matrix width %d, model expects %d",
				m.aspect.Name, b.Dim(), m.builder.Dim())
		}
		out.models = append(out.models, &aspectModel{aspect: m.aspect, builder: b, aeCfg: m.aeCfg, ae: m.ae})
	}
	return out, nil
}

// Users returns the user IDs the detector scores, in index order.
func (d *Detector) Users() []string { return d.users }

// Aspects returns the configured aspect names in model order.
func (d *Detector) Aspects() []string {
	out := make([]string, len(d.models))
	for i, m := range d.models {
		out[i] = m.aspect.Name
	}
	return out
}

// FirstMatrixDay returns the earliest scoreable day.
func (d *Detector) FirstMatrixDay() cert.Day { return d.models[0].builder.FirstMatrixDay() }

// Fit trains every aspect's autoencoder on all users' compound matrices
// over [from, to] (assumed to be the normal/training period). It returns
// the per-aspect final losses keyed by aspect name.
//
// Aspects train concurrently, each goroutine holding one slot of the
// nn worker budget so that ensemble-level and matmul-level parallelism
// together stay near GOMAXPROCS. Each aspect's training is fully
// deterministic (own seed, own RNG), so the losses are bit-identical to a
// sequential run (cfg.SequentialFit).
//
// Cancelling ctx aborts training mid-epoch: every aspect's trainer checks
// the context between batches, returns promptly, and Fit reports the
// context's error after all aspect goroutines have exited (no leaks).
func (d *Detector) Fit(ctx context.Context, from, to cert.Day) (map[string]float64, error) {
	losses := make(map[string]float64, len(d.models))
	if d.cfg.SequentialFit || len(d.models) == 1 {
		for _, m := range d.models {
			loss, err := d.fitAspect(ctx, m, from, to)
			if err != nil {
				return nil, err
			}
			losses[m.aspect.Name] = loss
		}
		return losses, nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, m := range d.models {
		wg.Add(1)
		go func(m *aspectModel) {
			defer wg.Done()
			nn.AcquireWorker()
			defer nn.ReleaseWorker()
			loss, err := d.fitAspect(ctx, m, from, to)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			losses[m.aspect.Name] = loss
		}(m)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return losses, nil
}

// fitAspect builds one aspect's training matrix — every user's compound
// matrices over the (clamped, strided) day range written directly into one
// preallocated nn.Matrix — and trains the aspect's autoencoder on it.
func (d *Detector) fitAspect(ctx context.Context, m *aspectModel, from, to cert.Day) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("core: fit aspect %s: %w", m.aspect.Name, err)
	}
	f, t, perUser := m.builder.ClampRange(from, to, d.cfg.TrainStride)
	if perUser == 0 || len(d.users) == 0 {
		return 0, fmt.Errorf("core: no training matrices for aspect %s in %v..%v", m.aspect.Name, from, to)
	}
	stride := cert.Day(d.cfg.TrainStride)
	if stride < 1 {
		stride = 1
	}
	samples := nn.NewMatrix(perUser*len(d.users), m.builder.Dim())
	row := 0
	for u := range d.users {
		for day := f; day <= t; day += stride {
			if err := m.builder.BuildInto(u, day, samples.Row(row)); err != nil {
				return 0, fmt.Errorf("core: build training matrices (%s): %w", m.aspect.Name, err)
			}
			row++
		}
	}
	loss, err := m.ae.Fit(ctx, samples)
	if err != nil {
		return 0, fmt.Errorf("core: fit aspect %s: %w", m.aspect.Name, err)
	}
	return loss, nil
}

// ScoreSeries holds per-day anomaly scores for every user in one aspect:
// Scores[u][i] is user u's reconstruction error on day From+i.
type ScoreSeries struct {
	Aspect string
	From   cert.Day
	To     cert.Day
	Scores [][]float64

	// flat is the backing array the per-user Scores rows are views of,
	// retained so ScoreBatchInto can recycle it.
	flat []float64
}

// DaysCovered returns the number of scored days.
func (s *ScoreSeries) DaysCovered() int { return int(s.To-s.From) + 1 }

// Score computes per-day anomaly scores for every user and aspect over
// [from, to] (clamped to the valid matrix range). It is ScoreBatch under
// its historical name.
func (d *Detector) Score(ctx context.Context, from, to cert.Day) ([]*ScoreSeries, error) {
	return d.ScoreBatch(ctx, from, to)
}

// ScoreBatch computes per-day anomaly scores for every user and aspect
// over [from, to] (clamped to the valid matrix range) by stacking all
// users' flattened deviation matrices into one rows×features batch per
// aspect and running whole chunks of it through the model at once — one
// GEMM per layer per chunk instead of a forward pass per user. Rows are
// scored independently by the network, so the scores are bit-identical to
// looping Score over single users. Cancelling ctx stops the scoring
// workers between chunks and returns the context's error.
func (d *Detector) ScoreBatch(ctx context.Context, from, to cert.Day) ([]*ScoreSeries, error) {
	return d.ScoreBatchInto(ctx, nil, from, to)
}

// ScoreBatchInto is ScoreBatch with caller-owned result storage: it
// recycles the series and score buffers already in dst (growing them as
// needed), fills dst[i] with aspect i's series, and returns the slice.
// dst may be nil or shorter than the aspect count. A steady-state caller
// that feeds each call's result back in — a daemon scoring the same
// window shape on every rank — allocates nothing.
func (d *Detector) ScoreBatchInto(ctx context.Context, dst []*ScoreSeries, from, to cert.Day) ([]*ScoreSeries, error) {
	if cap(dst) < len(d.models) {
		grown := make([]*ScoreSeries, len(d.models))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:len(d.models)]
	for i, m := range d.models {
		s, err := d.scoreAspect(ctx, m, from, to, dst[i])
		if err != nil {
			return nil, err
		}
		dst[i] = s
	}
	return dst, nil
}

// scoreAspect scores one aspect over the clamped window, reusing the
// buffers of a previous series when one is passed in.
func (d *Detector) scoreAspect(ctx context.Context, m *aspectModel, from, to cert.Day, reuse *ScoreSeries) (*ScoreSeries, error) {
	if from < m.builder.FirstMatrixDay() {
		from = m.builder.FirstMatrixDay()
	}
	if to > m.builder.LastMatrixDay() {
		to = m.builder.LastMatrixDay()
	}
	if to < from {
		return nil, fmt.Errorf("core: empty scoring range for aspect %s", m.aspect.Name)
	}
	series := reuse
	if series == nil {
		series = &ScoreSeries{}
	}
	series.Aspect = m.aspect.Name
	series.From, series.To = from, to
	days := int(to-from) + 1
	users := len(d.users)
	if cap(series.Scores) < users {
		series.Scores = make([][]float64, users)
	}
	series.Scores = series.Scores[:users]
	if users == 0 {
		return series, nil
	}

	// Batched scoring: flatten the (user, day) grid into one row space of
	// users×days rows — row r is user r/days on day from+r%days — and score
	// it in fixed-size stacked chunks, each one batch through the fused
	// forward pass. All scores land in one flat buffer; the per-user series
	// are subslice views of it. The model is read-only during inference and
	// every scoring context (batch matrix + forward buffers) is
	// worker-owned and pooled across calls, so steady-state scoring with a
	// recycled series allocates nothing at all: the single-worker chunk
	// loop below spawns no goroutines and builds no closures.
	total := users * days
	if cap(series.flat) < total {
		series.flat = make([]float64, total)
	}
	flat := series.flat[:total]
	numChunks := (total + scoreChunkRows - 1) / scoreChunkRows

	workers := nn.EffectiveWorkers()
	if workers > numChunks {
		workers = numChunks
	}
	var err error
	if workers <= 1 {
		err = d.scoreChunksSerial(ctx, m, from, days, flat)
	} else {
		err = d.scoreChunksParallel(ctx, m, from, days, flat, workers)
	}
	if err != nil {
		return nil, fmt.Errorf("core: score aspect %s: %w", m.aspect.Name, err)
	}
	for u := 0; u < users; u++ {
		series.Scores[u] = flat[u*days : (u+1)*days]
	}
	return series, nil
}

// scoreChunkRows is the stacked-batch height of one scoring chunk.
const scoreChunkRows = 512

// scoreChunksSerial runs the chunk loop on the calling goroutine with no
// closures or atomics, keeping single-worker steady-state scoring
// allocation-free.
func (d *Detector) scoreChunksSerial(ctx context.Context, m *aspectModel, from cert.Day, days int, flat []float64) error {
	ps := m.getScorer()
	defer m.scorers.Put(ps)
	dim := m.builder.Dim()
	total := len(flat)
	for lo := 0; lo < total; lo += scoreChunkRows {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + scoreChunkRows
		if hi > total {
			hi = total
		}
		ps.batch.Reshape(hi-lo, dim)
		for r := lo; r < hi; r++ {
			if err := m.builder.BuildInto(r/days, from+cert.Day(r%days), ps.batch.Row(r-lo)); err != nil {
				return err
			}
		}
		// The dst slice is zero-length with exactly hi-lo capacity, so
		// ScoreBatch appends the chunk's scores straight into flat[lo:hi]
		// without allocating.
		if _, err := ps.scorer.ScoreBatch(ps.batch, flat[lo:lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// scoreChunksParallel fans the chunk loop out over the nn worker budget.
// Chunks are claimed atomically: one worker runs inline, extra workers
// spawn only while the budget has free slots.
func (d *Detector) scoreChunksParallel(ctx context.Context, m *aspectModel, from cert.Day, days int, flat []float64, workers int) error {
	total := len(flat)
	numChunks := (total + scoreChunkRows - 1) / scoreChunkRows
	var (
		next     atomic.Int64
		firstErr atomic.Value
	)
	fail := func(err error) {
		firstErr.CompareAndSwap(nil, err)
	}
	process := func() {
		ps := m.getScorer()
		defer m.scorers.Put(ps)
		for {
			c := int(next.Add(1)) - 1
			if c >= numChunks || firstErr.Load() != nil {
				return
			}
			if err := ctx.Err(); err != nil {
				fail(err)
				return
			}
			lo := c * scoreChunkRows
			hi := lo + scoreChunkRows
			if hi > total {
				hi = total
			}
			ps.batch.Reshape(hi-lo, m.builder.Dim())
			for r := lo; r < hi; r++ {
				if err := m.builder.BuildInto(r/days, from+cert.Day(r%days), ps.batch.Row(r-lo)); err != nil {
					fail(err)
					return
				}
			}
			if _, err := ps.scorer.ScoreBatch(ps.batch, flat[lo:lo:hi]); err != nil {
				fail(err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for w := 1; w < workers && nn.TryAcquireWorker(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer nn.ReleaseWorker()
			process()
		}()
	}
	process()
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return err.(error)
	}
	return nil
}

// AggregateMax reduces each user's daily scores to their maximum — the
// simplest per-aspect anomaly score for ranking over a testing window.
func AggregateMax(s *ScoreSeries) []float64 {
	out := make([]float64, len(s.Scores))
	for u, days := range s.Scores {
		m := 0.0
		for _, v := range days {
			if v > m {
				m = v
			}
		}
		out[u] = m
	}
	return out
}

// AggregateRelativeMax reduces each user's daily scores to the maximum of
// score divided by that day's population median. This captures the paper's
// Figure-5 reading — "on some dates the anomaly score stands out on top of
// all users" — and is robust to days when the whole population scores high
// (busy days, environmental changes): standing out matters, absolute
// magnitude does not.
func AggregateRelativeMax(s *ScoreSeries) []float64 {
	days := s.DaysCovered()
	medians := make([]float64, days)
	col := make([]float64, len(s.Scores))
	for d := 0; d < days; d++ {
		for u := range s.Scores {
			col[u] = s.Scores[u][d]
		}
		medians[d] = mathx.Percentile(col, 50)
		if medians[d] <= 0 {
			medians[d] = 1e-12
		}
	}
	out := make([]float64, len(s.Scores))
	for u, series := range s.Scores {
		m := 0.0
		for d, v := range series {
			if r := v / medians[d]; r > m {
				m = r
			}
		}
		out[u] = m
	}
	return out
}

// Investigate runs the critic over the aggregated per-aspect scores of a
// testing window and returns the ordered investigation list.
func (d *Detector) Investigate(ctx context.Context, from, to cert.Day) ([]Ranked, error) {
	series, err := d.Score(ctx, from, to)
	if err != nil {
		return nil, err
	}
	agg := d.cfg.Aggregate
	if agg == nil {
		agg = AggregateRelativeMax
	}
	scoresByAspect := make([][]float64, len(series))
	for i, s := range series {
		scoresByAspect[i] = agg(s)
	}
	return Critic(d.users, scoresByAspect, d.cfg.N), nil
}
