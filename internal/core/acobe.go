package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/features"
	"acobe/internal/mathx"
	"acobe/internal/nn"
)

// Config parameterizes a Detector.
type Config struct {
	// Deviation holds the compound-matrix parameters (ω, 𝒟, Δ, ε,
	// weighting).
	Deviation deviation.Config
	// Aspects are the behavioral aspects; one autoencoder is trained per
	// aspect (the paper's ensemble).
	Aspects []features.Aspect
	// IncludeGroup embeds group (department-average) deviations into each
	// matrix; disabling it reproduces the "No-Group" ablation.
	IncludeGroup bool
	// AEConfig builds the autoencoder configuration for a given flattened
	// input width. Defaults to autoencoder.FastConfig.
	AEConfig func(inputDim int) autoencoder.Config
	// TrainStride samples every k-th day when building training matrices
	// (1 = every day). Larger strides cut training cost with little
	// effect, since adjacent matrices overlap in 𝒟-1 of 𝒟 columns.
	TrainStride int
	// N is the critic's vote count (paper default: 3).
	N int
	// Aggregate reduces a user's daily scores over a testing window to one
	// per-aspect anomaly score. Defaults to AggregateRelativeMax.
	Aggregate func(*ScoreSeries) []float64
	// Seed differentiates model initialization between aspects.
	Seed uint64
	// SequentialFit trains the aspect ensemble one model at a time instead
	// of concurrently. Training is deterministic per aspect either way
	// (each model owns its seed and RNG); the knob exists for debugging
	// and for parity checks against the parallel path.
	SequentialFit bool
}

// DefaultConfig returns the paper's CERT-evaluation configuration with
// fast-sized autoencoders.
func DefaultConfig() Config {
	return Config{
		Deviation:    deviation.DefaultConfig(),
		Aspects:      features.ACOBEAspects(),
		IncludeGroup: true,
		AEConfig:     autoencoder.FastConfig,
		TrainStride:  2,
		N:            3,
		Seed:         7,
	}
}

// aspectModel couples one aspect's matrix builder with its autoencoder.
type aspectModel struct {
	aspect  features.Aspect
	builder *deviation.Builder
	aeCfg   autoencoder.Config
	ae      *autoencoder.Autoencoder
}

// Detector is a trained ACOBE instance for one group of users.
type Detector struct {
	cfg    Config
	users  []string
	models []*aspectModel
}

// NewDetector wires up matrix builders over the individual deviation field
// and (when cfg.IncludeGroup) the group field, whose "users" are groups
// (e.g. per-department averages); userGroup[u] selects user u's group row.
// The fields must be computed from tables sharing the same day span.
func NewDetector(cfg Config, ind, group *deviation.Field, userGroup []int) (*Detector, error) {
	if len(cfg.Aspects) == 0 {
		return nil, fmt.Errorf("core: no aspects configured")
	}
	if cfg.AEConfig == nil {
		cfg.AEConfig = autoencoder.FastConfig
	}
	if cfg.TrainStride < 1 {
		cfg.TrainStride = 1
	}
	if cfg.N < 1 {
		cfg.N = 1
	}
	if !cfg.IncludeGroup {
		group = nil
	} else if group == nil {
		return nil, fmt.Errorf("core: IncludeGroup set but no group field given")
	}
	det := &Detector{cfg: cfg, users: ind.Table().Users()}
	for i, aspect := range cfg.Aspects {
		b, err := deviation.NewBuilder(ind, group, userGroup, aspect)
		if err != nil {
			return nil, fmt.Errorf("core: aspect %s: %w", aspect.Name, err)
		}
		aeCfg := cfg.AEConfig(b.Dim())
		aeCfg.Seed = cfg.Seed + uint64(i)*0x9e37
		ae, err := autoencoder.New(aeCfg)
		if err != nil {
			return nil, fmt.Errorf("core: aspect %s: %w", aspect.Name, err)
		}
		det.models = append(det.models, &aspectModel{aspect: aspect, builder: b, aeCfg: aeCfg, ae: ae})
	}
	return det, nil
}

// Users returns the user IDs the detector scores, in index order.
func (d *Detector) Users() []string { return d.users }

// Aspects returns the configured aspect names in model order.
func (d *Detector) Aspects() []string {
	out := make([]string, len(d.models))
	for i, m := range d.models {
		out[i] = m.aspect.Name
	}
	return out
}

// FirstMatrixDay returns the earliest scoreable day.
func (d *Detector) FirstMatrixDay() cert.Day { return d.models[0].builder.FirstMatrixDay() }

// Fit trains every aspect's autoencoder on all users' compound matrices
// over [from, to] (assumed to be the normal/training period). It returns
// the per-aspect final losses keyed by aspect name.
//
// Aspects train concurrently, each goroutine holding one slot of the
// nn worker budget so that ensemble-level and matmul-level parallelism
// together stay near GOMAXPROCS. Each aspect's training is fully
// deterministic (own seed, own RNG), so the losses are bit-identical to a
// sequential run (cfg.SequentialFit).
//
// Cancelling ctx aborts training mid-epoch: every aspect's trainer checks
// the context between batches, returns promptly, and Fit reports the
// context's error after all aspect goroutines have exited (no leaks).
func (d *Detector) Fit(ctx context.Context, from, to cert.Day) (map[string]float64, error) {
	losses := make(map[string]float64, len(d.models))
	if d.cfg.SequentialFit || len(d.models) == 1 {
		for _, m := range d.models {
			loss, err := d.fitAspect(ctx, m, from, to)
			if err != nil {
				return nil, err
			}
			losses[m.aspect.Name] = loss
		}
		return losses, nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, m := range d.models {
		wg.Add(1)
		go func(m *aspectModel) {
			defer wg.Done()
			nn.AcquireWorker()
			defer nn.ReleaseWorker()
			loss, err := d.fitAspect(ctx, m, from, to)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			losses[m.aspect.Name] = loss
		}(m)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return losses, nil
}

// fitAspect builds one aspect's training matrix — every user's compound
// matrices over the (clamped, strided) day range written directly into one
// preallocated nn.Matrix — and trains the aspect's autoencoder on it.
func (d *Detector) fitAspect(ctx context.Context, m *aspectModel, from, to cert.Day) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("core: fit aspect %s: %w", m.aspect.Name, err)
	}
	f, t, perUser := m.builder.ClampRange(from, to, d.cfg.TrainStride)
	if perUser == 0 || len(d.users) == 0 {
		return 0, fmt.Errorf("core: no training matrices for aspect %s in %v..%v", m.aspect.Name, from, to)
	}
	stride := cert.Day(d.cfg.TrainStride)
	if stride < 1 {
		stride = 1
	}
	samples := nn.NewMatrix(perUser*len(d.users), m.builder.Dim())
	row := 0
	for u := range d.users {
		for day := f; day <= t; day += stride {
			if err := m.builder.BuildInto(u, day, samples.Row(row)); err != nil {
				return 0, fmt.Errorf("core: build training matrices (%s): %w", m.aspect.Name, err)
			}
			row++
		}
	}
	loss, err := m.ae.Fit(ctx, samples)
	if err != nil {
		return 0, fmt.Errorf("core: fit aspect %s: %w", m.aspect.Name, err)
	}
	return loss, nil
}

// ScoreSeries holds per-day anomaly scores for every user in one aspect:
// Scores[u][i] is user u's reconstruction error on day From+i.
type ScoreSeries struct {
	Aspect string
	From   cert.Day
	To     cert.Day
	Scores [][]float64
}

// DaysCovered returns the number of scored days.
func (s *ScoreSeries) DaysCovered() int { return int(s.To-s.From) + 1 }

// Score computes per-day anomaly scores for every user and aspect over
// [from, to] (clamped to the valid matrix range). Cancelling ctx stops the
// scoring workers between users and returns the context's error.
func (d *Detector) Score(ctx context.Context, from, to cert.Day) ([]*ScoreSeries, error) {
	var out []*ScoreSeries
	for _, m := range d.models {
		s, err := d.scoreAspect(ctx, m, from, to)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (d *Detector) scoreAspect(ctx context.Context, m *aspectModel, from, to cert.Day) (*ScoreSeries, error) {
	if from < m.builder.FirstMatrixDay() {
		from = m.builder.FirstMatrixDay()
	}
	if to > m.builder.LastMatrixDay() {
		to = m.builder.LastMatrixDay()
	}
	if to < from {
		return nil, fmt.Errorf("core: empty scoring range for aspect %s", m.aspect.Name)
	}
	series := &ScoreSeries{Aspect: m.aspect.Name, From: from, To: to}
	days := int(to-from) + 1
	series.Scores = make([][]float64, len(d.users))

	// Users are scored independently; shard them across workers. The
	// autoencoder's forward pass is read-only after training, and each
	// worker owns one batch matrix and one Scorer (forward buffers), so a
	// user's scoring allocates only the retained per-user score slice.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(d.users) {
		workers = len(d.users)
	}
	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		firstErr atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := nn.NewMatrix(days, m.builder.Dim())
			scorer := m.ae.NewScorer()
			for {
				u := int(next.Add(1)) - 1
				if u >= len(d.users) || firstErr.Load() != nil {
					return
				}
				if err := ctx.Err(); err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("core: score aspect %s: %w", m.aspect.Name, err))
					return
				}
				for i := 0; i < days; i++ {
					if err := m.builder.BuildInto(u, from+cert.Day(i), batch.Row(i)); err != nil {
						firstErr.CompareAndSwap(nil, fmt.Errorf("core: score aspect %s: %w", m.aspect.Name, err))
						return
					}
				}
				scores, err := scorer.Scores(batch, make([]float64, 0, days))
				if err != nil {
					firstErr.CompareAndSwap(nil, fmt.Errorf("core: score aspect %s: %w", m.aspect.Name, err))
					return
				}
				series.Scores[u] = scores
			}
		}()
	}
	wg.Wait()
	if err := firstErr.Load(); err != nil {
		return nil, err.(error)
	}
	return series, nil
}

// AggregateMax reduces each user's daily scores to their maximum — the
// simplest per-aspect anomaly score for ranking over a testing window.
func AggregateMax(s *ScoreSeries) []float64 {
	out := make([]float64, len(s.Scores))
	for u, days := range s.Scores {
		m := 0.0
		for _, v := range days {
			if v > m {
				m = v
			}
		}
		out[u] = m
	}
	return out
}

// AggregateRelativeMax reduces each user's daily scores to the maximum of
// score divided by that day's population median. This captures the paper's
// Figure-5 reading — "on some dates the anomaly score stands out on top of
// all users" — and is robust to days when the whole population scores high
// (busy days, environmental changes): standing out matters, absolute
// magnitude does not.
func AggregateRelativeMax(s *ScoreSeries) []float64 {
	days := s.DaysCovered()
	medians := make([]float64, days)
	col := make([]float64, len(s.Scores))
	for d := 0; d < days; d++ {
		for u := range s.Scores {
			col[u] = s.Scores[u][d]
		}
		medians[d] = mathx.Percentile(col, 50)
		if medians[d] <= 0 {
			medians[d] = 1e-12
		}
	}
	out := make([]float64, len(s.Scores))
	for u, series := range s.Scores {
		m := 0.0
		for d, v := range series {
			if r := v / medians[d]; r > m {
				m = r
			}
		}
		out[u] = m
	}
	return out
}

// Investigate runs the critic over the aggregated per-aspect scores of a
// testing window and returns the ordered investigation list.
func (d *Detector) Investigate(ctx context.Context, from, to cert.Day) ([]Ranked, error) {
	series, err := d.Score(ctx, from, to)
	if err != nil {
		return nil, err
	}
	agg := d.cfg.Aggregate
	if agg == nil {
		agg = AggregateRelativeMax
	}
	scoresByAspect := make([][]float64, len(series))
	for i, s := range series {
		scoresByAspect[i] = agg(s)
	}
	return Critic(d.users, scoresByAspect, d.cfg.N), nil
}
