package core_test

import (
	"fmt"

	"acobe/internal/core"
)

// ExampleCritic reproduces the paper's worked example for Algorithm 1:
// with N=2, a user ranked 3rd, 5th and 4th across three behavioral
// aspects gets investigation priority 4 — its 2nd-best rank.
func ExampleCritic() {
	users := []string{"alice", "bob", "carol", "dave", "eve"}
	// Per-aspect anomaly scores; higher = more anomalous. They are
	// crafted so alice ranks 3rd, 5th and 4th.
	scoresByAspect := [][]float64{
		{0.3, 0.5, 0.4, 0.2, 0.1},
		{0.1, 0.5, 0.4, 0.3, 0.2},
		{0.2, 0.5, 0.4, 0.3, 0.1},
	}
	list := core.Critic(users, scoresByAspect, 2)
	for _, r := range list {
		if r.User == "alice" {
			fmt.Printf("alice: ranks=%v priority=%d\n", r.Ranks, r.Priority)
		}
	}
	fmt.Printf("top of list: %s\n", list[0].User)
	// Output:
	// alice: ranks=[3 5 4] priority=4
	// top of list: bob
}

// ExampleAnalyzeWaveform shows the §VII-B waveform analysis telling a
// benign burst (a developer starting a new project: spike then smooth
// decay) from an attack-like raise (sustained, chaotic).
func ExampleAnalyzeWaveform() {
	cfg := core.DefaultWaveformConfig()

	benign := make([]float64, 60)
	attack := make([]float64, 60)
	for i := range benign {
		benign[i], attack[i] = 0.01, 0.01
	}
	level := 0.2
	for i := 48; i < 60; i++ {
		benign[i] = level // burst that halves every day
		if level > 0.01 {
			level /= 2
		}
		attack[i] = 0.15 + 0.05*float64(i%3) // stays high, jitters
	}

	fmt.Println("benign :", core.AnalyzeWaveform(benign, cfg).Classify(cfg))
	fmt.Println("attack :", core.AnalyzeWaveform(attack, cfg).Classify(cfg))
	// Output:
	// benign : benign-burst
	// attack : attack-like
}
