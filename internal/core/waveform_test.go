package core

import (
	"testing"

	"acobe/internal/cert"
	"acobe/internal/mathx"
)

// mkSeries builds a 60-day score series of the given shape.
func flatSeries(level float64) []float64 {
	out := make([]float64, 60)
	for i := range out {
		out[i] = level
	}
	return out
}

// benignBurst: spike at day 48, then a smooth decay back to baseline.
func benignBurst() []float64 {
	out := flatSeries(0.01)
	out[48] = 0.2
	v := 0.2
	for i := 49; i < 60; i++ {
		v *= 0.6
		if v < 0.01 {
			v = 0.01
		}
		out[i] = v
	}
	return out
}

// attackSustained: spike at day 50 that stays high and jitters.
func attackSustained() []float64 {
	out := flatSeries(0.01)
	rng := mathx.NewRNG(3)
	for i := 50; i < 60; i++ {
		out[i] = 0.15 + 0.08*rng.Float64()
	}
	return out
}

func TestAnalyzeWaveformFlat(t *testing.T) {
	f := AnalyzeWaveform(flatSeries(0.01), DefaultWaveformConfig())
	if f.SpikeRatio > 1.5 {
		t.Errorf("flat series spike ratio %g", f.SpikeRatio)
	}
	if got := f.Classify(DefaultWaveformConfig()); got != WaveformFlat {
		t.Errorf("flat series classified %v", got)
	}
}

func TestAnalyzeWaveformBenignBurst(t *testing.T) {
	cfg := DefaultWaveformConfig()
	f := AnalyzeWaveform(benignBurst(), cfg)
	if f.SpikeRatio < cfg.SpikeThreshold {
		t.Fatalf("burst not detected as spike: ratio %g", f.SpikeRatio)
	}
	if f.DecayFraction < 0.9 {
		t.Errorf("smooth decay measured %g", f.DecayFraction)
	}
	if got := f.Classify(cfg); got != WaveformBenignBurst {
		t.Errorf("benign burst classified %v (features %+v)", got, f)
	}
}

func TestAnalyzeWaveformAttackLike(t *testing.T) {
	cfg := DefaultWaveformConfig()
	f := AnalyzeWaveform(attackSustained(), cfg)
	if got := f.Classify(cfg); got != WaveformAttackLike {
		t.Errorf("sustained chaotic raise classified %v (features %+v)", got, f)
	}
}

func TestAnalyzeWaveformSpikeOnLastDay(t *testing.T) {
	cfg := DefaultWaveformConfig()
	s := flatSeries(0.01)
	s[59] = 0.3
	f := AnalyzeWaveform(s, cfg)
	// Cannot be dismissed as benign: there is nothing after the spike.
	if got := f.Classify(cfg); got != WaveformAttackLike {
		t.Errorf("fresh spike classified %v", got)
	}
}

func TestAnalyzeWaveformEmpty(t *testing.T) {
	f := AnalyzeWaveform(nil, DefaultWaveformConfig())
	if f.SpikeRatio != 0 {
		t.Errorf("empty series features %+v", f)
	}
}

func TestWaveformClassStrings(t *testing.T) {
	for c, want := range map[WaveformClass]string{
		WaveformFlat:        "flat",
		WaveformBenignBurst: "benign-burst",
		WaveformAttackLike:  "attack-like",
	} {
		if c.String() != want {
			t.Errorf("%d → %q", int(c), c.String())
		}
	}
}

// TestAdvancedCriticDemotesBenignBurst is the §VII-B scenario: a normal
// user with an already-decayed burst (new project) competes against an
// attacker whose raise is sustained; the plain critic may rank them
// equally, the advanced critic must put the attacker first.
func TestAdvancedCriticDemotesBenignBurst(t *testing.T) {
	users := []string{"developer", "attacker", "quiet"}
	mkAspect := func(name string) *ScoreSeries {
		return &ScoreSeries{
			Aspect: name,
			From:   0,
			To:     cert.Day(59),
			Scores: [][]float64{
				benignBurst(),      // developer: burst then smooth decay
				attackSustained(),  // attacker: sustained chaotic raise
				flatSeries(0.0098), // quiet user
			},
		}
	}
	series := []*ScoreSeries{mkAspect("a1"), mkAspect("a2")}
	cfg := DefaultWaveformConfig()

	adv := AdvancedCritic(users, series, 2, cfg)
	if adv[0].User != "attacker" {
		t.Fatalf("advanced critic top = %s, want attacker (%+v)", adv[0].User, adv)
	}
	if adv[0].Suspicion != 2 {
		t.Errorf("attacker suspicion %d, want 2", adv[0].Suspicion)
	}
	// The developer must be demoted behind the attacker.
	for _, r := range adv {
		if r.User == "developer" && r.Priority <= adv[0].Priority && r.User == adv[0].User {
			t.Error("developer not demoted")
		}
	}
	// Classes recorded per aspect.
	if len(adv[0].Classes) != 2 {
		t.Errorf("classes %v", adv[0].Classes)
	}
}

func TestAdvancedCriticEmpty(t *testing.T) {
	if AdvancedCritic(nil, nil, 1, DefaultWaveformConfig()) != nil {
		t.Error("empty input should yield nil")
	}
}
