package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/nn"
)

// loopedScores replicates the pre-batching scoring path: one matrix per
// user holding that user's days, scored through a single reusable Scorer.
// ScoreBatch must reproduce it bit-for-bit — stacking users into one
// users×days batch only changes which rows share a GEMM, and every row's
// accumulation order is independent of its neighbors.
func loopedScores(t *testing.T, users int, m *aspectModel, from, to cert.Day) [][]float64 {
	t.Helper()
	days := int(to-from) + 1
	out := make([][]float64, users)
	batch := nn.NewMatrix(days, m.builder.Dim())
	scorer := m.ae.NewScorer()
	for u := 0; u < users; u++ {
		for i := 0; i < days; i++ {
			if err := m.builder.BuildInto(u, from+cert.Day(i), batch.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		scores, err := scorer.Scores(batch, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[u] = scores
	}
	return out
}

// TestScoreBatchMatchesLoopedScore pins the batched scoring path to the
// per-user loop bit-for-bit over every user, at awkward window lengths:
// a single day (batch rows == users), 7 days, and a 23-day prime span
// (so users×days is never a multiple of the kernels' internal blocking).
func TestScoreBatchMatchesLoopedScore(t *testing.T) {
	ind, grp, ug := synthData(t)
	det, err := NewDetector(detectorConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := det.Fit(ctx, 0, 90); err != nil {
		t.Fatal(err)
	}
	for _, span := range []struct{ from, to cert.Day }{
		{110, 110}, // 1 day
		{100, 106}, // 7 days
		{95, 117},  // 23 days (prime)
	} {
		series, err := det.ScoreBatch(ctx, span.from, span.to)
		if err != nil {
			t.Fatal(err)
		}
		for ai, m := range det.models {
			want := loopedScores(t, len(det.users), m, span.from, span.to)
			got := series[ai].Scores
			if len(got) != len(want) {
				t.Fatalf("span %v..%v aspect %s: %d users, want %d",
					span.from, span.to, m.aspect.Name, len(got), len(want))
			}
			for u := range want {
				for i := range want[u] {
					if math.Float64bits(got[u][i]) != math.Float64bits(want[u][i]) {
						t.Fatalf("span %v..%v aspect %s user %d day %d: batched %x, looped %x",
							span.from, span.to, m.aspect.Name, u, i,
							math.Float64bits(got[u][i]), math.Float64bits(want[u][i]))
					}
				}
			}
		}
	}
}

// TestScoreBatchIntoReuse checks the recycled-buffer path: feeding a
// previous result back into ScoreBatchInto must reproduce a fresh call
// exactly — including after a window change that shrinks the row count —
// and once the buffers fit, a single-worker call must not allocate.
func TestScoreBatchIntoReuse(t *testing.T) {
	ind, grp, ug := synthData(t)
	det, err := NewDetector(detectorConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := det.Fit(ctx, 0, 90); err != nil {
		t.Fatal(err)
	}
	// Warm dst on a wider window, then reuse it on a narrower one.
	dst, err := det.ScoreBatchInto(ctx, nil, 95, 119)
	if err != nil {
		t.Fatal(err)
	}
	for _, span := range []struct{ from, to cert.Day }{{100, 106}, {95, 119}} {
		want, err := det.ScoreBatch(ctx, span.from, span.to)
		if err != nil {
			t.Fatal(err)
		}
		if dst, err = det.ScoreBatchInto(ctx, dst, span.from, span.to); err != nil {
			t.Fatal(err)
		}
		for ai := range want {
			if dst[ai].Aspect != want[ai].Aspect || dst[ai].From != want[ai].From || dst[ai].To != want[ai].To {
				t.Fatalf("span %v..%v aspect %d: header %+v, want %+v",
					span.from, span.to, ai, dst[ai], want[ai])
			}
			for u := range want[ai].Scores {
				for i := range want[ai].Scores[u] {
					if math.Float64bits(dst[ai].Scores[u][i]) != math.Float64bits(want[ai].Scores[u][i]) {
						t.Fatalf("span %v..%v aspect %d user %d day %d: reused %x, fresh %x",
							span.from, span.to, ai, u, i,
							math.Float64bits(dst[ai].Scores[u][i]), math.Float64bits(want[ai].Scores[u][i]))
					}
				}
			}
		}
	}
	// Steady state: recycled series + pooled scorers + single worker means
	// no allocations at all.
	defer nn.SetWorkerBudget(nn.WorkerBudget())
	nn.SetWorkerBudget(1)
	allocs := testing.AllocsPerRun(5, func() {
		var err error
		if dst, err = det.ScoreBatchInto(ctx, dst, 95, 119); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ScoreBatchInto allocated %.0f objects/op, want 0", allocs)
	}
}

// TestScoreBatchConcurrent runs several full ScoreBatch calls in parallel
// on one detector: the pooled scorers must hand each goroutine its own
// forward workspace, and every call must produce identical bits.
func TestScoreBatchConcurrent(t *testing.T) {
	ind, grp, ug := synthData(t)
	det, err := NewDetector(detectorConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := det.Fit(ctx, 0, 90); err != nil {
		t.Fatal(err)
	}
	want, err := det.ScoreBatch(ctx, 95, 119)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 4
	errs := make(chan error, callers)
	for c := 0; c < callers; c++ {
		go func() {
			series, err := det.ScoreBatch(ctx, 95, 119)
			if err != nil {
				errs <- err
				return
			}
			for ai := range want {
				for u := range want[ai].Scores {
					for i := range want[ai].Scores[u] {
						if math.Float64bits(series[ai].Scores[u][i]) != math.Float64bits(want[ai].Scores[u][i]) {
							errs <- fmt.Errorf("concurrent ScoreBatch diverged at aspect %d user %d day %d", ai, u, i)
							return
						}
					}
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < callers; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
