package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"acobe/internal/autoencoder"
	"acobe/internal/features"
)

// slowDetector returns a detector whose single-aspect training is slow
// enough (many epochs, no early stop) that a mid-Fit cancellation must
// land between batches, not after training already finished.
func slowDetector(t *testing.T, aspects int) *Detector {
	t.Helper()
	ind, grp, ug := synthData(t)
	cfg := detectorConfig()
	cfg.AEConfig = func(dim int) autoencoder.Config {
		c := autoencoder.FastConfig(dim)
		c.Hidden = []int{32, 16}
		c.Epochs = 100000 // far longer than the test deadline
		c.EarlyStopDelta = 0
		return c
	}
	if aspects > 1 {
		cfg.Aspects = nil
		for i := 0; i < aspects; i++ {
			cfg.Aspects = append(cfg.Aspects, features.Aspect{
				Name: string(rune('a' + i)), Features: []string{"fa", "fb"},
			})
		}
	}
	det, err := NewDetector(cfg, ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// TestFitCancellation cancels a running Fit and asserts it returns
// promptly with the context error and leaks no goroutines — the parallel
// ensemble loop must drain every aspect trainer before returning.
func TestFitCancellation(t *testing.T) {
	det := slowDetector(t, 3) // exercise the concurrent ensemble path
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := det.Fit(ctx, 0, 90)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let training get going
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Fit returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Fit did not return within 2s of cancellation")
	}

	// All aspect trainers must have exited; poll briefly because exiting
	// goroutines need a moment to be reaped.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before Fit, %d after cancellation", before, g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFitPreCanceled: a context canceled before Fit starts must fail fast
// without training anything.
func TestFitPreCanceled(t *testing.T) {
	det := slowDetector(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := det.Fit(ctx, 0, 90); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fit returned %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("pre-canceled Fit took %v", d)
	}
}

// TestScoreCancellation: a canceled context stops the scoring worker pool.
func TestScoreCancellation(t *testing.T) {
	ind, grp, ug := synthData(t)
	cfg := detectorConfig()
	det, err := NewDetector(cfg, ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Fit(context.Background(), 0, 90); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := det.Score(ctx, 95, 119); !errors.Is(err, context.Canceled) {
		t.Fatalf("Score returned %v, want context.Canceled", err)
	}
}
