package core

import (
	"context"
	"testing"

	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/deviation"
	"acobe/internal/features"
	"acobe/internal/mathx"
)

// synthData builds a 6-user, 2-feature table where user 5 develops a
// sustained burst in feature 0 during the test period.
func synthData(t *testing.T) (*deviation.Field, *deviation.Field, []int) {
	t.Helper()
	users := []string{"u0", "u1", "u2", "u3", "u4", "target"}
	tab, err := features.NewTable(users, []string{"fa", "fb"}, 2, 0, 119)
	if err != nil {
		t.Fatal(err)
	}
	// Normal behaviour: a stable weekly rhythm with mild noise, so the
	// autoencoder can actually learn it from six users' matrices.
	rng := mathx.NewRNG(1)
	for u := range users {
		for f := 0; f < 2; f++ {
			for frame := 0; frame < 2; frame++ {
				for d := cert.Day(0); d <= 119; d++ {
					base := 6 + float64(int(d)%7)
					tab.Add(u, f, frame, d, base+rng.Normal(0, 0.5))
				}
			}
		}
	}
	// The target develops a sustained burst in feature 0 (work hours).
	for d := cert.Day(100); d <= 115; d++ {
		tab.Add(5, 0, 0, d, 30)
	}
	gtab, err := tab.GroupTable([]string{"g"}, []int{0, 0, 0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	cfg := deviation.Config{Window: 10, MatrixDays: 5, Delta: 3, Epsilon: 1, Weighted: true}
	ind, err := deviation.ComputeField(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := deviation.ComputeField(gtab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ind, grp, []int{0, 0, 0, 0, 0, 0}
}

func detectorConfig() Config {
	return Config{
		Deviation:    deviation.Config{Window: 10, MatrixDays: 5, Delta: 3, Epsilon: 1, Weighted: true},
		Aspects:      []features.Aspect{{Name: "a", Features: []string{"fa", "fb"}}},
		IncludeGroup: true,
		AEConfig: func(dim int) autoencoder.Config {
			cfg := autoencoder.FastConfig(dim)
			cfg.Hidden = []int{16, 8}
			cfg.Epochs = 30
			return cfg
		},
		TrainStride: 1,
		N:           1,
		Seed:        9,
	}
}

func TestDetectorEndToEnd(t *testing.T) {
	ind, grp, ug := synthData(t)
	det, err := NewDetector(detectorConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	if got := det.Aspects(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("aspects %v", got)
	}
	losses, err := det.Fit(context.Background(), 0, 90)
	if err != nil {
		t.Fatal(err)
	}
	if losses["a"] <= 0 {
		t.Errorf("loss %g", losses["a"])
	}
	list, err := det.Investigate(context.Background(), 95, 119)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 6 {
		t.Fatalf("%d entries", len(list))
	}
	if list[0].User != "target" {
		t.Errorf("top of list %s, want target (%+v)", list[0].User, list)
	}
}

func TestDetectorValidation(t *testing.T) {
	ind, grp, ug := synthData(t)
	cfg := detectorConfig()
	cfg.Aspects = nil
	if _, err := NewDetector(cfg, ind, grp, ug); err == nil {
		t.Error("no error for empty aspects")
	}
	cfg = detectorConfig()
	if _, err := NewDetector(cfg, ind, nil, nil); err == nil {
		t.Error("no error for missing group field with IncludeGroup")
	}
	cfg = detectorConfig()
	cfg.Aspects = []features.Aspect{{Name: "x", Features: []string{"missing"}}}
	if _, err := NewDetector(cfg, ind, grp, ug); err == nil {
		t.Error("no error for unknown feature")
	}
}

func TestDetectorNoGroup(t *testing.T) {
	ind, _, _ := synthData(t)
	cfg := detectorConfig()
	cfg.IncludeGroup = false
	det, err := NewDetector(cfg, ind, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Fit(context.Background(), 0, 90); err != nil {
		t.Fatal(err)
	}
	series, err := det.Score(context.Background(), 95, 119)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Scores) != 6 {
		t.Fatalf("series shape wrong")
	}
	if series[0].DaysCovered() != 25 {
		t.Errorf("covered %d days", series[0].DaysCovered())
	}
}

func TestScoreClampingToMatrixRange(t *testing.T) {
	ind, grp, ug := synthData(t)
	det, err := NewDetector(detectorConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Fit(context.Background(), 0, 90); err != nil {
		t.Fatal(err)
	}
	series, err := det.Score(context.Background(), -100, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if series[0].From != det.FirstMatrixDay() {
		t.Errorf("from %v, want %v", series[0].From, det.FirstMatrixDay())
	}
	if series[0].To != 119 {
		t.Errorf("to %v, want 119", series[0].To)
	}
}

func TestFitEmptyRange(t *testing.T) {
	ind, grp, ug := synthData(t)
	det, err := NewDetector(detectorConfig(), ind, grp, ug)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.Fit(context.Background(), 200, 210); err == nil {
		t.Error("no error for training range past the data")
	}
}
