package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"acobe/internal/autoencoder"
)

// modelsSnapshot is the on-disk form of a trained ensemble: one serialized
// autoencoder per aspect, keyed by aspect name so loads can verify the
// detector was built with the same configuration.
type modelsSnapshot struct {
	Version int
	Aspects []string
	Models  [][]byte
}

// SaveModels writes the trained ensemble (every aspect's autoencoder,
// including batch-norm statistics) to w. The detector's configuration is
// not persisted — reconstruct the Detector with NewDetector from the same
// Config and fields, then LoadModels instead of Fit.
func (d *Detector) SaveModels(w io.Writer) error {
	snap := modelsSnapshot{Version: 1}
	for _, m := range d.models {
		var buf bytes.Buffer
		if err := m.ae.Save(&buf); err != nil {
			return fmt.Errorf("core: save aspect %s: %w", m.aspect.Name, err)
		}
		snap.Aspects = append(snap.Aspects, m.aspect.Name)
		snap.Models = append(snap.Models, buf.Bytes())
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("core: encode models: %w", err)
	}
	return nil
}

// LoadModels replaces the detector's (possibly untrained) autoencoders
// with models previously written by SaveModels. The aspect names and
// input widths must match the detector's configuration.
func (d *Detector) LoadModels(r io.Reader) error {
	var snap modelsSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("core: decode models: %w", err)
	}
	if snap.Version != 1 {
		return fmt.Errorf("core: unsupported models version %d", snap.Version)
	}
	if len(snap.Aspects) != len(d.models) {
		return fmt.Errorf("core: snapshot has %d aspects, detector has %d", len(snap.Aspects), len(d.models))
	}
	for i, m := range d.models {
		if snap.Aspects[i] != m.aspect.Name {
			return fmt.Errorf("core: aspect %d is %q in snapshot, %q in detector", i, snap.Aspects[i], m.aspect.Name)
		}
		ae, err := autoencoder.Load(bytes.NewReader(snap.Models[i]), m.aeCfg)
		if err != nil {
			return fmt.Errorf("core: load aspect %s: %w", m.aspect.Name, err)
		}
		m.ae = ae
	}
	return nil
}
