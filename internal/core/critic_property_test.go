package core

import (
	"fmt"
	"testing"

	"acobe/internal/mathx"
	"acobe/internal/testkit"
)

// Property tests for Algorithm 1: the critic's output must be a function of
// the score *values*, not of user enumeration order, and Priority must
// behave as "the N-th best per-aspect rank".

// distinctScores generates per-aspect score columns with no ties, so that
// per-aspect ranks — and therefore the whole critic output — are uniquely
// determined by the values.
func distinctScores(rng *mathx.RNG, aspects, users int) [][]float64 {
	out := make([][]float64, aspects)
	for a := range out {
		col := make([]float64, users)
		for u := range col {
			// Strictly increasing jitter keeps every pair distinct.
			col[u] = rng.Float64() + float64(u)*1e-7
		}
		out[a] = col
	}
	return out
}

// TestCriticPermutationInvariance: reordering the users must not change any
// user's priority or per-aspect ranks, and must produce the same
// investigation order up to exact (priority, sum-of-ranks) ties — the critic
// breaks those by input order, which is the only part of Algorithm 1 that is
// allowed to see the enumeration.
func TestCriticPermutationInvariance(t *testing.T) {
	rng := mathx.NewRNG(7)
	for trial := 0; trial < 50; trial++ {
		const nUsers, nAspects = 17, 6
		users := make([]string, nUsers)
		for u := range users {
			users[u] = fmt.Sprintf("user%02d", u)
		}
		scores := distinctScores(rng, nAspects, nUsers)

		base := Critic(users, scores, 3)

		perm := testkit.Permutation(uint64(trial)+1, nUsers)
		pUsers := make([]string, nUsers)
		pScores := make([][]float64, nAspects)
		for a := range pScores {
			pScores[a] = make([]float64, nUsers)
		}
		for newIdx, oldIdx := range perm {
			pUsers[newIdx] = users[oldIdx]
			for a := range scores {
				pScores[a][newIdx] = scores[a][oldIdx]
			}
		}
		permuted := Critic(pUsers, pScores, 3)

		if len(base) != len(permuted) {
			t.Fatalf("trial %d: list length changed %d → %d", trial, len(base), len(permuted))
		}
		// Per-user output is exactly invariant.
		byUser := make(map[string]Ranked, len(permuted))
		for _, r := range permuted {
			byUser[r.User] = r
		}
		for _, want := range base {
			got, ok := byUser[want.User]
			if !ok {
				t.Fatalf("trial %d: %s missing from permuted list", trial, want.User)
			}
			if got.Priority != want.Priority {
				t.Fatalf("trial %d %s: priority changed %d → %d",
					trial, want.User, want.Priority, got.Priority)
			}
			for a := range want.Ranks {
				if got.Ranks[a] != want.Ranks[a] {
					t.Fatalf("trial %d %s aspect %d: rank changed %d → %d",
						trial, want.User, a, want.Ranks[a], got.Ranks[a])
				}
			}
		}
		// Order is invariant up to exact (priority, sum-of-ranks) ties:
		// positions must agree on the sort key, and any user displaced by
		// the permutation must be tied with the user it displaced.
		for i := range base {
			bk := [2]int{base[i].Priority, sumInts(base[i].Ranks)}
			pk := [2]int{permuted[i].Priority, sumInts(permuted[i].Ranks)}
			if bk != pk {
				t.Fatalf("trial %d pos %d: sort key changed %v → %v (users %s → %s)",
					trial, i, bk, pk, base[i].User, permuted[i].User)
			}
		}
	}
}

// TestCriticNMonotonicity: Priority is the N-th smallest of a user's
// per-aspect ranks, so for every user it must be non-decreasing in N, equal
// to the best rank at N=1, and equal to the worst rank at N=len(aspects).
func TestCriticNMonotonicity(t *testing.T) {
	rng := mathx.NewRNG(8)
	const nUsers, nAspects = 23, 6
	users := make([]string, nUsers)
	for u := range users {
		users[u] = fmt.Sprintf("user%02d", u)
	}
	scores := distinctScores(rng, nAspects, nUsers)

	prioByN := make([]map[string]int, nAspects+1)
	for n := 1; n <= nAspects; n++ {
		prioByN[n] = make(map[string]int, nUsers)
		for _, r := range Critic(users, scores, n) {
			prioByN[n][r.User] = r.Priority
		}
	}
	for _, u := range users {
		for n := 2; n <= nAspects; n++ {
			if prioByN[n][u] < prioByN[n-1][u] {
				t.Fatalf("%s: priority decreased from %d (N=%d) to %d (N=%d)",
					u, prioByN[n-1][u], n-1, prioByN[n][u], n)
			}
		}
	}
	// Cross-check the extremes against the raw ranks.
	for _, r := range Critic(users, scores, 1) {
		best := r.Ranks[0]
		worst := r.Ranks[0]
		for _, rk := range r.Ranks {
			if rk < best {
				best = rk
			}
			if rk > worst {
				worst = rk
			}
		}
		if r.Priority != best {
			t.Fatalf("%s: N=1 priority %d != best rank %d", r.User, r.Priority, best)
		}
		if prioByN[nAspects][r.User] != worst {
			t.Fatalf("%s: N=%d priority %d != worst rank %d",
				r.User, nAspects, prioByN[nAspects][r.User], worst)
		}
	}
}

// TestCriticNClamping: out-of-range N values clamp to [1, len(aspects)]
// rather than panicking or producing garbage.
func TestCriticNClamping(t *testing.T) {
	rng := mathx.NewRNG(9)
	const nUsers, nAspects = 11, 4
	users := make([]string, nUsers)
	for u := range users {
		users[u] = fmt.Sprintf("user%02d", u)
	}
	scores := distinctScores(rng, nAspects, nUsers)

	low := Critic(users, scores, 1)
	for i, r := range Critic(users, scores, 0) {
		if r.User != low[i].User || r.Priority != low[i].Priority {
			t.Fatalf("pos %d: N=0 (%s/%d) differs from N=1 (%s/%d)",
				i, r.User, r.Priority, low[i].User, low[i].Priority)
		}
	}
	if got := Critic(users, scores, -5); got[0].User != low[0].User {
		t.Fatalf("N=-5 top user %s differs from N=1 top user %s", got[0].User, low[0].User)
	}
	high := Critic(users, scores, nAspects)
	for i, r := range Critic(users, scores, nAspects+10) {
		if r.User != high[i].User || r.Priority != high[i].Priority {
			t.Fatalf("pos %d: N>aspects (%s/%d) differs from N=aspects (%s/%d)",
				i, r.User, r.Priority, high[i].User, high[i].Priority)
		}
	}
}

// TestCriticRanksAreValid: every aspect's ranks are a permutation of
// 1..len(users) and the returned list is sorted by priority.
func TestCriticRanksAreValid(t *testing.T) {
	rng := mathx.NewRNG(10)
	const nUsers, nAspects = 13, 5
	users := make([]string, nUsers)
	for u := range users {
		users[u] = fmt.Sprintf("user%02d", u)
	}
	scores := distinctScores(rng, nAspects, nUsers)

	list := Critic(users, scores, 3)
	if len(list) != nUsers {
		t.Fatalf("list has %d rows, want %d", len(list), nUsers)
	}
	prios := make([]int, len(list))
	for a := 0; a < nAspects; a++ {
		seen := make([]bool, nUsers+1)
		for i, r := range list {
			prios[i] = r.Priority
			rk := r.Ranks[a]
			if rk < 1 || rk > nUsers || seen[rk] {
				t.Fatalf("aspect %d: rank %d invalid or duplicated", a, rk)
			}
			seen[rk] = true
		}
	}
	if !testkit.NonDecreasingInts(prios) {
		t.Fatalf("investigation list not sorted by priority: %v", prios)
	}
}
