package core

import (
	"testing"
	"testing/quick"

	"acobe/internal/mathx"
)

func TestCriticPaperExample(t *testing.T) {
	// The paper's example: with N=2, a user ranked 3rd, 5th, 4th across
	// three aspects gets priority 4 (its 2nd-best rank).
	users := []string{"a", "b", "c", "d", "e"}
	// Craft scores so that user "a" ranks 3rd, 5th, 4th.
	scores := [][]float64{
		{0.3, 0.5, 0.4, 0.2, 0.1}, // aspect 1: a is 3rd
		{0.1, 0.5, 0.4, 0.3, 0.2}, // aspect 2: a is 5th
		{0.2, 0.5, 0.4, 0.3, 0.1}, // aspect 3: a is 4th
	}
	list := Critic(users, scores, 2)
	for _, r := range list {
		if r.User == "a" {
			if r.Priority != 4 {
				t.Errorf("priority = %d, want 4", r.Priority)
			}
			if r.Ranks[0] != 3 || r.Ranks[1] != 5 || r.Ranks[2] != 4 {
				t.Errorf("ranks = %v, want [3 5 4]", r.Ranks)
			}
			return
		}
	}
	t.Fatal("user a missing from list")
}

func TestCriticN1TakesBestRank(t *testing.T) {
	users := []string{"x", "y"}
	scores := [][]float64{
		{1.0, 0.5}, // x 1st
		{0.1, 0.9}, // y 1st
	}
	list := Critic(users, scores, 1)
	// Both users have a best rank of 1 → same priority; order must be
	// deterministic (tie broken by rank sum: x has 1+2, y has 2+1 — still
	// tied, then stable user order).
	if list[0].Priority != 1 || list[1].Priority != 1 {
		t.Errorf("priorities %d, %d", list[0].Priority, list[1].Priority)
	}
}

func TestCriticNClamped(t *testing.T) {
	users := []string{"a", "b"}
	scores := [][]float64{{1, 0}}
	// N beyond aspect count clamps; N below 1 clamps.
	for _, n := range []int{-1, 0, 5} {
		list := Critic(users, scores, n)
		if len(list) != 2 {
			t.Fatalf("N=%d produced %d entries", n, len(list))
		}
	}
}

func TestCriticEmpty(t *testing.T) {
	if Critic(nil, nil, 3) != nil {
		t.Error("empty input should give nil")
	}
	if Critic([]string{"a"}, nil, 1) != nil {
		t.Error("no aspects should give nil")
	}
}

func TestCriticTopScorerIsFirst(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 5 + rng.Intn(30)
		users := make([]string, n)
		scores := make([][]float64, 3)
		for a := range scores {
			scores[a] = make([]float64, n)
		}
		for i := range users {
			users[i] = string(rune('A'+i%26)) + string(rune('a'+(i/26)%26))
		}
		// Make user 0 the top scorer in every aspect.
		for a := range scores {
			for i := 1; i < n; i++ {
				scores[a][i] = rng.Float64() * 0.9
			}
			scores[a][0] = 1.0
		}
		list := Critic(users, scores, 3)
		return list[0].User == users[0] && list[0].Priority == 1
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCriticPrioritiesAreSorted(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 3 + rng.Intn(20)
		users := make([]string, n)
		scores := make([][]float64, 2)
		for a := range scores {
			scores[a] = make([]float64, n)
			for i := range scores[a] {
				scores[a][i] = rng.Float64()
			}
		}
		for i := range users {
			users[i] = string(rune('a' + i%26))
		}
		list := Critic(users, scores, 2)
		for i := 1; i < len(list); i++ {
			if list[i].Priority < list[i-1].Priority {
				return false
			}
		}
		return len(list) == n
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCriticDeterministic(t *testing.T) {
	users := []string{"a", "b", "c", "d"}
	scores := [][]float64{{0.5, 0.5, 0.5, 0.5}, {0.1, 0.1, 0.1, 0.1}}
	l1 := Critic(users, scores, 2)
	l2 := Critic(users, scores, 2)
	for i := range l1 {
		if l1[i].User != l2[i].User {
			t.Fatal("critic output not deterministic under ties")
		}
	}
}

func TestAggregateMax(t *testing.T) {
	s := &ScoreSeries{From: 0, To: 2, Scores: [][]float64{
		{0.1, 0.9, 0.3},
		{0.5, 0.2, 0.4},
	}}
	got := AggregateMax(s)
	if got[0] != 0.9 || got[1] != 0.5 {
		t.Errorf("AggregateMax = %v", got)
	}
}

func TestAggregateRelativeMax(t *testing.T) {
	// Day 1 is a "busy day": everyone scores high — relative aggregation
	// must not reward it.
	s := &ScoreSeries{From: 0, To: 1, Scores: [][]float64{
		{0.1, 1.0}, // user 0 follows the crowd on the busy day
		{0.1, 1.0},
		{0.1, 1.0},
		{0.4, 1.0}, // user 3 stands out on the quiet day
	}}
	got := AggregateRelativeMax(s)
	if got[3] <= got[0] {
		t.Errorf("stand-out user not ranked above crowd-followers: %v", got)
	}
}

func TestAggregateRelativeMaxZeroMedian(t *testing.T) {
	s := &ScoreSeries{From: 0, To: 0, Scores: [][]float64{{0}, {0}, {1}}}
	got := AggregateRelativeMax(s)
	for _, v := range got {
		if v < 0 {
			t.Errorf("negative relative score %g", v)
		}
	}
	if got[2] <= got[0] {
		t.Error("nonzero scorer not above zero scorers")
	}
}
