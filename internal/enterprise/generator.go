package enterprise

import (
	"fmt"
	"time"

	"acobe/internal/cert"
	"acobe/internal/logstore"
	"acobe/internal/mathx"
)

// Employee is one monitored account. Per the paper, service and privileged
// accounts are excluded; computer/email/domain accounts are integrated
// into the employee account.
type Employee struct {
	ID   string // e.g. "emp042"
	Host string // primary workstation
}

// Attack injects malicious activity into one employee's record stream.
// Implementations live in the attack package.
type Attack interface {
	// Name identifies the attack ("zeus", "ransomware").
	Name() string
	// Victim is the attacked employee ID.
	Victim() string
	// Day0 is the attack day (paper: Feb 2).
	Day0() cert.Day
	// Inject returns the attack's records for the employee on day d.
	Inject(victim Employee, d cert.Day, rng *mathx.RNG) []logstore.Record
}

// Config parameterizes the simulator.
type Config struct {
	Seed      uint64
	Employees int
	// Start..End span the dataset (paper: seven months, six training +
	// one testing).
	Start, End cert.Day
	// EnvChangeDay is the organization-wide change (rise in Command,
	// drop in HTTP for everyone) the paper observes on Jan 26.
	EnvChangeDay cert.Day
	// Attacks to inject (typically one victim, one attack per dataset).
	Attacks []Attack
}

// Span constants: seven months ending 2011-02-28, attack window in the
// final month.
var (
	DefaultStart        = cert.MustDay("2010-08-01")
	DefaultEnd          = cert.MustDay("2011-02-28")
	DefaultTrainEnd     = cert.MustDay("2011-01-31")
	DefaultEnvChangeDay = cert.MustDay("2011-01-26")
	DefaultAttackDay    = cert.MustDay("2011-02-02")
)

// DefaultConfig returns the paper's case-study environment: 246 employees
// over seven months with the Jan-26 environmental change.
func DefaultConfig() Config {
	return Config{
		Seed:         2021,
		Employees:    246,
		Start:        DefaultStart,
		End:          DefaultEnd,
		EnvChangeDay: DefaultEnvChangeDay,
	}
}

// profile is one employee's habitual rates and entity pools.
type profile struct {
	emp Employee

	fileRate   float64
	shareRate  float64
	cmdRate    float64 // most employees barely execute processes on servers
	psRate     float64
	cfgRate    float64
	acctRate   float64
	resRate    float64
	httpRate   float64
	failRate   float64
	uploadRate float64
	logonRate  float64
	remoteRate float64

	offFactor     float64
	weekendFactor float64
	workStart     int
	workEnd       int
	newEntityProb float64

	files     []string
	processes []string
	regKeys   []string
	domains   []string
	hosts     []string
}

var sharedDomains = []string{
	"intranet.corp.example", "mail.corp.example", "sso.corp.example",
	"updates.vendor.example", "cdn.provider.example", "search.web.example",
	"news.web.example", "docs.web.example",
}

func newProfile(emp Employee, rng *mathx.RNG) *profile {
	p := &profile{
		emp:           emp,
		fileRate:      10 + 25*rng.Float64(),
		shareRate:     1 + 4*rng.Float64(),
		cmdRate:       0.1 + 0.6*rng.Float64(),
		psRate:        0.02 + 0.2*rng.Float64(),
		cfgRate:       0.1 + 0.5*rng.Float64(),
		acctRate:      0.01 + 0.05*rng.Float64(),
		resRate:       0.05 + 0.3*rng.Float64(),
		httpRate:      30 + 60*rng.Float64(),
		failRate:      0.5 + 2*rng.Float64(),
		uploadRate:    0.2 + 1.0*rng.Float64(),
		logonRate:     2 + 3*rng.Float64(),
		remoteRate:    0.1 + 0.5*rng.Float64(),
		offFactor:     0.05 + 0.1*rng.Float64(),
		weekendFactor: 0.02 + 0.06*rng.Float64(),
		workStart:     7 + rng.Intn(3),
		newEntityProb: 0.01 + 0.015*rng.Float64(),
	}
	p.workEnd = p.workStart + 9
	if p.workEnd > 18 {
		p.workEnd = 18
	}
	nf := 60 + rng.Intn(80)
	for i := 0; i < nf; i++ {
		p.files = append(p.files, fmt.Sprintf(`\\fs01\%s\doc%04d.docx`, emp.ID, i))
	}
	for i := 0; i < 6+rng.Intn(8); i++ {
		p.processes = append(p.processes, fmt.Sprintf(`C:\Program Files\App%02d\app%02d.exe`, i, i))
	}
	for i := 0; i < 10+rng.Intn(10); i++ {
		p.regKeys = append(p.regKeys, fmt.Sprintf(`HKCU\Software\App%02d\Setting%d`, rng.Intn(12), i))
	}
	p.domains = append(p.domains, sharedDomains...)
	for i := 0; i < 10+rng.Intn(25); i++ {
		p.domains = append(p.domains, fmt.Sprintf("site%04d.web.example", rng.Intn(4000)))
	}
	p.hosts = []string{emp.Host, "TS01.corp.example"}
	return p
}

func (p *profile) dayFactor(d cert.Day) float64 {
	if d.IsWeekend() || cert.IsHoliday(d) {
		return p.weekendFactor
	}
	if cert.IsBusyday(d) {
		return 1.5
	}
	return 1
}

func (p *profile) pick(rng *mathx.RNG, pool *[]string, mint func(i int) string) string {
	if rng.Bool(p.newEntityProb) {
		s := mint(len(*pool))
		*pool = append(*pool, s)
		return s
	}
	return mathx.Pick(rng, *pool)
}

// Generator produces each day's records for every employee.
type Generator struct {
	cfg      Config
	emps     []Employee
	profiles map[string]*profile
	attacks  map[string][]Attack
}

// New builds the simulator.
func New(cfg Config) (*Generator, error) {
	if cfg.Employees < 1 {
		return nil, fmt.Errorf("enterprise: need at least one employee")
	}
	if cfg.End <= cfg.Start {
		return nil, fmt.Errorf("enterprise: empty span [%v, %v]", cfg.Start, cfg.End)
	}
	g := &Generator{
		cfg:      cfg,
		profiles: make(map[string]*profile, cfg.Employees),
		attacks:  make(map[string][]Attack),
	}
	root := mathx.NewRNG(cfg.Seed)
	for i := 0; i < cfg.Employees; i++ {
		emp := Employee{
			ID:   fmt.Sprintf("emp%03d", i+1),
			Host: fmt.Sprintf("WS-%03d.corp.example", i+1),
		}
		g.emps = append(g.emps, emp)
		g.profiles[emp.ID] = newProfile(emp, root.ForkNamed(emp.ID))
	}
	for _, a := range cfg.Attacks {
		if _, ok := g.profiles[a.Victim()]; !ok {
			return nil, fmt.Errorf("enterprise: attack %s targets unknown employee %s", a.Name(), a.Victim())
		}
		g.attacks[a.Victim()] = append(g.attacks[a.Victim()], a)
	}
	return g, nil
}

// Employees returns the monitored accounts in ID order.
func (g *Generator) Employees() []Employee { return append([]Employee(nil), g.emps...) }

// EmployeeIDs returns just the IDs in order.
func (g *Generator) EmployeeIDs() []string {
	out := make([]string, len(g.emps))
	for i, e := range g.emps {
		out[i] = e.ID
	}
	return out
}

// Span returns the configured day range.
func (g *Generator) Span() (cert.Day, cert.Day) { return g.cfg.Start, g.cfg.End }

// Stream generates records day by day in order, handing each batch to fn.
func (g *Generator) Stream(fn func(cert.Day, []logstore.Record) error) error {
	for d := g.cfg.Start; d <= g.cfg.End; d++ {
		var recs []logstore.Record
		for _, emp := range g.emps {
			recs = append(recs, g.employeeDay(emp, d)...)
		}
		if err := fn(d, recs); err != nil {
			return fmt.Errorf("enterprise: stream day %v: %w", d, err)
		}
	}
	return nil
}

// StreamTo pushes all records through a logstore pipeline into the store.
func (g *Generator) StreamTo(store *logstore.Store, workers int) error {
	pipe := logstore.NewPipeline(store, workers, 0)
	defer pipe.Close()
	return g.Stream(func(_ cert.Day, recs []logstore.Record) error {
		for _, r := range recs {
			if err := pipe.Submit(r); err != nil {
				return err
			}
		}
		return nil
	})
}

func (g *Generator) employeeDay(emp Employee, d cert.Day) []logstore.Record {
	p := g.profiles[emp.ID]
	rng := mathx.NewRNG(g.cfg.Seed ^ hashIDDay(emp.ID, d))
	recs := g.normalDay(p, d, rng)
	for _, a := range g.attacks[emp.ID] {
		recs = append(recs, a.Inject(emp, d, rng)...)
	}
	return recs
}

func hashIDDay(id string, d cert.Day) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	h ^= uint64(int64(d)) + 0x9e3779b97f4a7c15
	h *= 1099511628211
	return h
}

func (g *Generator) at(p *profile, d cert.Day, off bool, rng *mathx.RNG) time.Time {
	var hour int
	if off {
		hour = 18 + rng.Intn(12)
		if hour >= 24 {
			hour -= 24
		}
	} else {
		hour = p.workStart + rng.Intn(p.workEnd-p.workStart)
	}
	return d.Date().Add(time.Duration(hour)*time.Hour +
		time.Duration(rng.Intn(3600))*time.Second)
}

// normalDay emits the employee's habitual records, including the Jan-26
// environmental change: from EnvChangeDay on, everyone's Command activity
// rises (a newly deployed endpoint agent spawning processes) and HTTP
// success volume drops (a proxy migration logging less traffic).
func (g *Generator) normalDay(p *profile, d cert.Day, rng *mathx.RNG) []logstore.Record {
	factor := p.dayFactor(d)
	if factor == 0 {
		return nil
	}
	var recs []logstore.Record
	emp := p.emp

	envCmdBoost := 0.0
	httpScale := 1.0
	if g.cfg.EnvChangeDay > 0 && d >= g.cfg.EnvChangeDay {
		envCmdBoost = 6
		httpScale = 0.6
	}

	emit := func(rate float64, build func(t time.Time) logstore.Record) {
		for i := 0; i < rng.Poisson(rate*factor); i++ {
			recs = append(recs, build(g.at(p, d, false, rng)))
		}
		for i := 0; i < rng.Poisson(rate*factor*p.offFactor); i++ {
			recs = append(recs, build(g.at(p, d, true, rng)))
		}
	}

	// File aspect.
	emit(p.fileRate, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelSysmon,
			EventID: 11, Action: "FileWrite", Object: p.pick(rng, &p.files, func(i int) string {
				return fmt.Sprintf(`\\fs01\%s\doc%04d.docx`, emp.ID, i)
			}), Status: "success"}
	})
	emit(p.shareRate, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelSecurity,
			EventID: 5140, Action: "ShareAccess", Object: `\\fs01\public`, Status: "success"}
	})

	// Command aspect (rare for most employees; paper's victim "barely has
	// any activities in the Command aspect").
	emit(p.cmdRate+envCmdBoost, func(t time.Time) logstore.Record {
		obj := p.pick(rng, &p.processes, func(i int) string {
			return fmt.Sprintf(`C:\Program Files\App%02d\app%02d.exe`, i, i)
		})
		if envCmdBoost > 0 {
			obj = `C:\Program Files\EndpointAgent\agent.exe`
		}
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelSysmon,
			EventID: 1, Action: "ProcessCreate", Object: obj, Status: "success"}
	})
	emit(p.psRate, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelPowerShell,
			EventID: 4104, Action: "PowerShell", Object: "Get-Mailbox.ps1", Status: "success"}
	})

	// Config aspect.
	emit(p.cfgRate, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelSysmon,
			EventID: 13, Action: "RegistrySet", Object: p.pick(rng, &p.regKeys, func(i int) string {
				return fmt.Sprintf(`HKCU\Software\App%02d\Setting%d`, rng.Intn(12), i)
			}), Status: "success"}
	})
	emit(p.acctRate, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelSecurity,
			EventID: 4723, Action: "AccountMod", Object: emp.ID, Status: "success"}
	})

	// Resource aspect.
	emit(p.resRate, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelSecurity,
			EventID: 4698, Action: "ScheduledTask", Object: "BackupTask", Status: "success"}
	})

	// HTTP statistical aspect (proxy + DNS).
	emit(p.httpRate*httpScale, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelProxy,
			Action: "HTTPRequest", Object: p.pick(rng, &p.domains, func(i int) string {
				return fmt.Sprintf("site%04d.web.example", rng.Intn(100000))
			}), Status: "success"}
	})
	emit(p.failRate, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelProxy,
			Action: "HTTPRequest", Object: mathx.Pick(rng, p.domains), Status: "failure"}
	})
	emit(p.uploadRate, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: emp.Host, Channel: logstore.ChannelProxy,
			Action: "HTTPUpload", Object: mathx.Pick(rng, p.domains), Status: "success"}
	})

	// Logon statistical aspect.
	emit(p.logonRate, func(t time.Time) logstore.Record {
		status := "success"
		if rng.Bool(0.05) {
			status = "failure"
		}
		return logstore.Record{Time: t, User: emp.ID, Host: mathx.Pick(rng, p.hosts),
			Channel: logstore.ChannelSecurity, EventID: 4624, Action: "Logon", Object: emp.Host, Status: status}
	})
	emit(p.remoteRate, func(t time.Time) logstore.Record {
		return logstore.Record{Time: t, User: emp.ID, Host: "VPN01.corp.example",
			Channel: logstore.ChannelSecurity, EventID: 4624, Action: "RemoteLogon", Object: "VPN01", Status: "success"}
	})
	return recs
}
