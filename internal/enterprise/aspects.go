// Package enterprise simulates the paper's real-world case-study
// environment (Section VI): 246 employees whose Windows-server and
// web-proxy audit logs (Windows-Event, Sysmon, PowerShell, DNS, proxy) are
// gathered through a log pipeline, with 27 behavioral features across six
// aspects (File, Command, Config, Resource, HTTP, Logon), a January-26th
// organization-wide environmental change, and hooks for injecting the Zeus
// botnet and ransomware attacks of the paper's case study.
//
// The simulator reuses the cert package's calendar (both datasets fit in
// the same 2010-2011 day line); the paper's un-dated "Jan 26 / Feb 2"
// events map to 2011-01-26 and 2011-02-02.
package enterprise

import "acobe/internal/features"

// The 27 behavioral features: 16 from the four predictable aspects and 11
// from the two statistical aspects (Section VI-B).
const (
	// File aspect: file-handle operations, file shares, Sysmon
	// file-related events (IDs 2, 11, 4656, 4658-4663, 4670, 5140-5145).
	FeatFileEvents = "file:events"
	FeatFileUnique = "file:unique"
	FeatFileNew    = "file:new"
	FeatFileShares = "file:share-accesses"

	// Command aspect: process creation and PowerShell execution
	// (IDs 1, 4100-4104, 4688).
	FeatCmdProcesses  = "command:processes"
	FeatCmdPowerShell = "command:powershell"
	FeatCmdUnique     = "command:unique"
	FeatCmdNew        = "command:new"

	// Config aspect: registry and account modifications.
	FeatCfgRegistry    = "config:registry-mods"
	FeatCfgUnique      = "config:unique"
	FeatCfgNew         = "config:new"
	FeatCfgAccountMods = "config:account-mods"

	// Resource aspect: services, scheduled tasks, drivers.
	FeatResEvents   = "resource:events"
	FeatResUnique   = "resource:unique"
	FeatResNew      = "resource:new"
	FeatResServices = "resource:service-installs"

	// HTTP statistical aspect (proxy + DNS).
	FeatHTTPSuccess    = "http:success"
	FeatHTTPSuccessNew = "http:success-new-domain"
	FeatHTTPFail       = "http:fail"
	FeatHTTPFailNew    = "http:fail-new-domain"
	FeatHTTPUploads    = "http:uploads"
	FeatHTTPUniqueDom  = "http:unique-domains"

	// Logon statistical aspect.
	FeatLogonSuccess = "logon:success"
	FeatLogonFail    = "logon:failure"
	FeatLogonHosts   = "logon:unique-hosts"
	FeatLogonRemote  = "logon:remote"
	FeatLogonTotal   = "logon:sessions"
)

// FileAspect returns the File predictable aspect.
func FileAspect() features.Aspect {
	return features.Aspect{Name: "File", Features: []string{
		FeatFileEvents, FeatFileUnique, FeatFileNew, FeatFileShares,
	}}
}

// CommandAspect returns the Command predictable aspect.
func CommandAspect() features.Aspect {
	return features.Aspect{Name: "Command", Features: []string{
		FeatCmdProcesses, FeatCmdPowerShell, FeatCmdUnique, FeatCmdNew,
	}}
}

// ConfigAspect returns the Config predictable aspect.
func ConfigAspect() features.Aspect {
	return features.Aspect{Name: "Config", Features: []string{
		FeatCfgRegistry, FeatCfgUnique, FeatCfgNew, FeatCfgAccountMods,
	}}
}

// ResourceAspect returns the Resource predictable aspect.
func ResourceAspect() features.Aspect {
	return features.Aspect{Name: "Resource", Features: []string{
		FeatResEvents, FeatResUnique, FeatResNew, FeatResServices,
	}}
}

// HTTPAspect returns the HTTP statistical aspect.
func HTTPAspect() features.Aspect {
	return features.Aspect{Name: "HTTP", Features: []string{
		FeatHTTPSuccess, FeatHTTPSuccessNew, FeatHTTPFail,
		FeatHTTPFailNew, FeatHTTPUploads, FeatHTTPUniqueDom,
	}}
}

// LogonAspect returns the Logon statistical aspect.
func LogonAspect() features.Aspect {
	return features.Aspect{Name: "Logon", Features: []string{
		FeatLogonSuccess, FeatLogonFail, FeatLogonHosts,
		FeatLogonRemote, FeatLogonTotal,
	}}
}

// Aspects returns all six aspects in presentation order.
func Aspects() []features.Aspect {
	return []features.Aspect{
		FileAspect(), CommandAspect(), ConfigAspect(),
		ResourceAspect(), HTTPAspect(), LogonAspect(),
	}
}

// FeatureNames returns the flat list of all 27 features.
func FeatureNames() []string {
	return features.AllFeatureNames(Aspects())
}
