package enterprise

import (
	"fmt"

	"acobe/internal/cert"
	"acobe/internal/features"
	"acobe/internal/logstore"
)

// categoryOf maps a record to its predictable-aspect category, or "".
func categoryOf(r logstore.Record) string {
	switch r.Action {
	case "FileWrite", "FileRead", "FileDelete", "FileCreate", "ShareAccess":
		return "file"
	case "ProcessCreate", "PowerShell":
		return "command"
	case "RegistrySet", "RegistryDelete", "AccountMod":
		return "config"
	case "ScheduledTask", "ServiceInstall", "DriverLoad":
		return "resource"
	default:
		return ""
	}
}

// Extractor turns daily record batches into the 27-feature measurement
// table. Days must arrive in order (the "new" features track first-seen
// objects, exactly like the CERT extractor).
type Extractor struct {
	table   *features.Table
	lastDay cert.Day
	started bool

	// Per-user, per-category first-seen object sets.
	seen map[string]map[int]map[string]bool // category → user → objects

	idx map[string]int
}

// NewExtractor builds an extractor over employee IDs for the day span.
func NewExtractor(userIDs []string, start, end cert.Day) (*Extractor, error) {
	table, err := features.NewTable(userIDs, FeatureNames(), cert.NumTimeframes, start, end)
	if err != nil {
		return nil, fmt.Errorf("enterprise: new extractor: %w", err)
	}
	x := &Extractor{
		table: table,
		seen:  make(map[string]map[int]map[string]bool),
		idx:   make(map[string]int),
	}
	for _, cat := range []string{"file", "command", "config", "resource", "domain"} {
		x.seen[cat] = make(map[int]map[string]bool)
	}
	for _, f := range FeatureNames() {
		x.idx[f] = table.FeatureIndex(f)
	}
	return x, nil
}

// Table returns the measurement table.
func (x *Extractor) Table() *features.Table { return x.table }

// dayState accumulates per-day distinct-object sets that become "unique"
// counts and feed the first-seen trackers at day end.
type dayState struct {
	objects map[string]map[int]map[string]bool // category → user → today's objects
	hosts   map[int]map[string]bool            // logon hosts per user
	domains map[int]map[string]bool            // distinct domains per user
}

func newDayState() *dayState {
	s := &dayState{
		objects: make(map[string]map[int]map[string]bool),
		hosts:   make(map[int]map[string]bool),
		domains: make(map[int]map[string]bool),
	}
	for _, cat := range []string{"file", "command", "config", "resource", "domain"} {
		s.objects[cat] = make(map[int]map[string]bool)
	}
	return s
}

func markIn(m map[int]map[string]bool, u int, key string) bool {
	set, ok := m[u]
	if !ok {
		set = make(map[string]bool)
		m[u] = set
	}
	if set[key] {
		return false
	}
	set[key] = true
	return true
}

// Consume processes one day's records.
func (x *Extractor) Consume(d cert.Day, recs []logstore.Record) error {
	if x.started && d <= x.lastDay {
		return fmt.Errorf("enterprise: days must be consumed in order (got %v after %v)", d, x.lastDay)
	}
	x.started = true
	x.lastDay = d

	st := newDayState()
	for _, r := range recs {
		u := x.table.UserIndex(r.User)
		if u < 0 {
			continue
		}
		frame := int(cert.TimeframeOfHour(r.Time.Hour()))
		if cat := categoryOf(r); cat != "" {
			x.consumePredictable(cat, r, u, frame, d, st)
			continue
		}
		switch r.Action {
		case "HTTPRequest", "HTTPUpload", "DNSQuery":
			x.consumeHTTP(r, u, frame, d, st)
		case "Logon", "RemoteLogon":
			x.consumeLogon(r, u, frame, d, st)
		}
	}

	// Merge today's objects into the first-seen history.
	for cat, users := range st.objects {
		for u, set := range users {
			hist, ok := x.seen[cat][u]
			if !ok {
				hist = make(map[string]bool)
				x.seen[cat][u] = hist
			}
			for k := range set {
				hist[k] = true
			}
		}
	}
	return nil
}

// aspect feature tuples per category: count, unique, new, extra.
var catFeatures = map[string][4]string{
	"file":     {FeatFileEvents, FeatFileUnique, FeatFileNew, FeatFileShares},
	"command":  {FeatCmdProcesses, FeatCmdUnique, FeatCmdNew, FeatCmdPowerShell},
	"config":   {FeatCfgRegistry, FeatCfgUnique, FeatCfgNew, FeatCfgAccountMods},
	"resource": {FeatResEvents, FeatResUnique, FeatResNew, FeatResServices},
}

func (x *Extractor) consumePredictable(cat string, r logstore.Record, u, frame int, d cert.Day, st *dayState) {
	f := catFeatures[cat]
	count, unique, newf, extra := f[0], f[1], f[2], f[3]

	isExtra := false
	switch cat {
	case "file":
		isExtra = r.Action == "ShareAccess"
	case "command":
		isExtra = r.Action == "PowerShell"
	case "config":
		isExtra = r.Action == "AccountMod"
	case "resource":
		isExtra = r.Action == "ServiceInstall"
	}
	if isExtra {
		x.add(extra, u, frame, d, 1)
	}
	// "processes" counts process creations only; PowerShell has its own
	// counter. Everything else counts every event in the category.
	if cat != "command" || !isExtra {
		x.add(count, u, frame, d, 1)
	}
	if markIn(st.objects[cat], u, r.Object) {
		x.add(unique, u, frame, d, 1)
		if !x.seen[cat][u][r.Object] {
			x.add(newf, u, frame, d, 1)
		}
	}
}

func (x *Extractor) consumeHTTP(r logstore.Record, u, frame int, d cert.Day, st *dayState) {
	if r.Action == "HTTPUpload" {
		x.add(FeatHTTPUploads, u, frame, d, 1)
	}
	isNewDomain := false
	if markIn(st.domains, u, r.Object) {
		x.add(FeatHTTPUniqueDom, u, frame, d, 1)
	}
	if !x.seen["domain"][u][r.Object] {
		isNewDomain = true
		markIn(st.objects["domain"], u, r.Object)
	}
	if r.Status == "failure" {
		x.add(FeatHTTPFail, u, frame, d, 1)
		if isNewDomain {
			x.add(FeatHTTPFailNew, u, frame, d, 1)
		}
		return
	}
	x.add(FeatHTTPSuccess, u, frame, d, 1)
	if isNewDomain {
		x.add(FeatHTTPSuccessNew, u, frame, d, 1)
	}
}

func (x *Extractor) consumeLogon(r logstore.Record, u, frame int, d cert.Day, st *dayState) {
	x.add(FeatLogonTotal, u, frame, d, 1)
	if r.Status == "failure" {
		x.add(FeatLogonFail, u, frame, d, 1)
	} else {
		x.add(FeatLogonSuccess, u, frame, d, 1)
	}
	if r.Action == "RemoteLogon" {
		x.add(FeatLogonRemote, u, frame, d, 1)
	}
	if markIn(st.hosts, u, r.Host) {
		x.add(FeatLogonHosts, u, frame, d, 1)
	}
}

func (x *Extractor) add(feature string, u, frame int, d cert.Day, v float64) {
	if f, ok := x.idx[feature]; ok && f >= 0 {
		x.table.Add(u, f, frame, d, v)
	}
}
