package enterprise

import (
	"fmt"
	"io"
	"sort"

	"acobe/internal/cert"
	"acobe/internal/persist"
)

const (
	extractorStateMagic = "ACEX"
	extractorVersion    = 1
)

// seenCategories is the fixed category order used when serializing the
// first-seen trackers, so the encoding is deterministic.
var seenCategories = []string{"command", "config", "domain", "file", "resource"}

// SaveState writes the extractor's table and first-seen trackers so the
// serving daemon can snapshot mid-stream and resume after a restart with
// the "new"-object features unchanged. Map keys are written sorted: equal
// state always serializes to identical bytes.
func (x *Extractor) SaveState(w io.Writer) error {
	if err := x.table.SaveState(w); err != nil {
		return err
	}
	pw := persist.NewWriter(w)
	pw.Magic(extractorStateMagic, extractorVersion)
	pw.Bool(x.started)
	pw.I64(int64(x.lastDay))
	pw.U64(uint64(len(seenCategories)))
	for _, cat := range seenCategories {
		pw.String(cat)
		users := x.seen[cat]
		ids := make([]int, 0, len(users))
		for u := range users {
			ids = append(ids, u)
		}
		sort.Ints(ids)
		pw.U64(uint64(len(ids)))
		for _, u := range ids {
			pw.Int(u)
			keys := make([]string, 0, len(users[u]))
			for k := range users[u] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pw.Strings(keys)
		}
	}
	return pw.Err()
}

// LoadState restores state written by SaveState into a freshly constructed
// extractor over the same employees and start day.
func (x *Extractor) LoadState(r io.Reader) error {
	if err := x.table.LoadState(r); err != nil {
		return err
	}
	pr := persist.NewReader(r)
	if v := pr.Magic(extractorStateMagic); pr.Err() == nil && v != extractorVersion {
		return fmt.Errorf("enterprise: extractor state version %d unsupported", v)
	}
	x.started = pr.Bool()
	x.lastDay = cert.Day(pr.I64())
	ncat := pr.Len()
	if pr.Err() == nil && ncat != len(seenCategories) {
		return fmt.Errorf("enterprise: extractor state has %d categories, want %d", ncat, len(seenCategories))
	}
	users := len(x.table.Users())
	for c := 0; c < ncat && pr.Err() == nil; c++ {
		cat := pr.String()
		if _, ok := x.seen[cat]; !ok {
			return fmt.Errorf("enterprise: extractor state has unknown category %q", cat)
		}
		hist := make(map[int]map[string]bool)
		n := pr.Len()
		for i := 0; i < n && pr.Err() == nil; i++ {
			u := pr.Int()
			keys := pr.Strings()
			if u < 0 || u >= users {
				return fmt.Errorf("enterprise: extractor state user index %d out of range", u)
			}
			set := make(map[string]bool, len(keys))
			for _, k := range keys {
				set[k] = true
			}
			hist[u] = set
		}
		x.seen[cat] = hist
	}
	if err := pr.Err(); err != nil {
		return fmt.Errorf("enterprise: load extractor state: %w", err)
	}
	return nil
}
