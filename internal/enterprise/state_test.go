package enterprise

import (
	"bytes"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/logstore"
)

func encodeEntExtractor(t *testing.T, x *Extractor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := x.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEnterpriseExtractorStateRoundTrip(t *testing.T) {
	cfg := tinyEntConfig()
	cfg.End = cfg.Start + 14
	gen, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := gen.EmployeeIDs()
	start, end := gen.Span()

	newX := func() *Extractor {
		x, err := NewExtractor(ids, start, end)
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	full, mid := newX(), newX()
	var days []cert.Day
	byDay := map[cert.Day][]logstore.Record{}
	err = gen.Stream(func(d cert.Day, recs []logstore.Record) error {
		days = append(days, d)
		byDay[d] = recs
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	split := len(days) / 2
	for i, d := range days {
		if err := full.Consume(d, byDay[d]); err != nil {
			t.Fatal(err)
		}
		if i < split {
			if err := mid.Consume(d, byDay[d]); err != nil {
				t.Fatal(err)
			}
		}
	}

	state := encodeEntExtractor(t, mid)
	restored := newX()
	if err := restored.LoadState(bytes.NewReader(state)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, encodeEntExtractor(t, restored)) {
		t.Fatal("restored extractor re-encodes to different bytes")
	}
	for _, d := range days[split:] {
		if err := restored.Consume(d, byDay[d]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(encodeEntExtractor(t, full), encodeEntExtractor(t, restored)) {
		t.Error("resumed extractor state differs from uninterrupted run")
	}

	// Truncated state must error, never panic.
	for _, cut := range []int{0, 7, len(state) / 3, len(state) - 1} {
		fresh := newX()
		if err := fresh.LoadState(bytes.NewReader(state[:cut])); err == nil {
			t.Errorf("no error for state truncated at %d bytes", cut)
		}
	}
}
