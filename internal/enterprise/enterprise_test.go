package enterprise

import (
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/logstore"
	"acobe/internal/mathx"
)

func tinyEntConfig() Config {
	cfg := DefaultConfig()
	cfg.Employees = 6
	cfg.Start = cert.MustDay("2011-01-01")
	cfg.End = cert.MustDay("2011-02-28")
	return cfg
}

func TestNewValidation(t *testing.T) {
	cfg := tinyEntConfig()
	cfg.Employees = 0
	if _, err := New(cfg); err == nil {
		t.Error("no error for zero employees")
	}
	cfg = tinyEntConfig()
	cfg.End = cfg.Start
	if _, err := New(cfg); err == nil {
		t.Error("no error for empty span")
	}
	cfg = tinyEntConfig()
	cfg.Attacks = []Attack{&fakeAttack{victim: "ghost"}}
	if _, err := New(cfg); err == nil {
		t.Error("no error for unknown victim")
	}
}

type fakeAttack struct{ victim string }

func (f *fakeAttack) Name() string   { return "fake" }
func (f *fakeAttack) Victim() string { return f.victim }
func (f *fakeAttack) Day0() cert.Day { return 0 }
func (f *fakeAttack) Inject(Employee, cert.Day, *mathx.RNG) []logstore.Record {
	return nil
}

func TestAspects27Features(t *testing.T) {
	names := FeatureNames()
	if len(names) != 27 {
		t.Fatalf("%d features, want 27", len(names))
	}
	aspects := Aspects()
	if len(aspects) != 6 {
		t.Fatalf("%d aspects, want 6", len(aspects))
	}
	// 16 from the four predictable aspects, 11 from the statistical two.
	predictable := 0
	for _, a := range aspects[:4] {
		predictable += len(a.Features)
	}
	statistical := len(aspects[4].Features) + len(aspects[5].Features)
	if predictable != 16 || statistical != 11 {
		t.Errorf("predictable=%d statistical=%d, want 16/11", predictable, statistical)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	count := func() int64 {
		gen, err := New(tinyEntConfig())
		if err != nil {
			t.Fatal(err)
		}
		store := logstore.NewStore()
		if err := gen.StreamTo(store, 2); err != nil {
			t.Fatal(err)
		}
		return store.Ingested()
	}
	if a, b := count(), count(); a != b {
		t.Errorf("record counts differ across runs: %d vs %d", a, b)
	}
}

func TestEnvChangeShiftsCommandAndHTTP(t *testing.T) {
	gen, err := New(tinyEntConfig())
	if err != nil {
		t.Fatal(err)
	}
	var cmdBefore, cmdAfter, httpBefore, httpAfter float64
	var daysBefore, daysAfter float64
	err = gen.Stream(func(d cert.Day, recs []logstore.Record) error {
		if d.IsWeekend() || cert.IsHoliday(d) {
			return nil
		}
		before := d < DefaultEnvChangeDay
		if before {
			daysBefore++
		} else {
			daysAfter++
		}
		for _, r := range recs {
			switch {
			case r.Action == "ProcessCreate":
				if before {
					cmdBefore++
				} else {
					cmdAfter++
				}
			case r.Channel == logstore.ChannelProxy && r.Action == "HTTPRequest" && r.Status == "success":
				if before {
					httpBefore++
				} else {
					httpAfter++
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cmdRateBefore := cmdBefore / daysBefore
	cmdRateAfter := cmdAfter / daysAfter
	if cmdRateAfter < cmdRateBefore*3 {
		t.Errorf("Command rate %f → %f; expected a clear rise after the env change", cmdRateBefore, cmdRateAfter)
	}
	httpRateBefore := httpBefore / daysBefore
	httpRateAfter := httpAfter / daysAfter
	if httpRateAfter > httpRateBefore*0.85 {
		t.Errorf("HTTP rate %f → %f; expected a clear drop after the env change", httpRateBefore, httpRateAfter)
	}
}

func TestExtractorHTTPNewDomain(t *testing.T) {
	x, err := NewExtractor([]string{"e1"}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(d cert.Day, dom, status string) logstore.Record {
		return logstore.Record{
			Time: d.Date().Add(10 * time.Hour), User: "e1", Host: "h",
			Channel: logstore.ChannelProxy, Action: "HTTPRequest", Object: dom, Status: status,
		}
	}
	if err := x.Consume(0, []logstore.Record{mk(0, "a.com", "success"), mk(0, "a.com", "success")}); err != nil {
		t.Fatal(err)
	}
	if err := x.Consume(1, []logstore.Record{mk(1, "a.com", "success"), mk(1, "b.com", "failure")}); err != nil {
		t.Fatal(err)
	}
	tab := x.Table()
	w := int(cert.Work)
	if got := tab.At(0, tab.FeatureIndex(FeatHTTPSuccess), w, 0); got != 2 {
		t.Errorf("success day0 = %g", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatHTTPSuccessNew), w, 0); got != 2 {
		t.Errorf("success-new day0 = %g (first-seen pairs count all day)", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatHTTPSuccessNew), w, 1); got != 0 {
		t.Errorf("success-new day1 = %g, want 0", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatHTTPFailNew), w, 1); got != 1 {
		t.Errorf("fail-new day1 = %g, want 1", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatHTTPUniqueDom), w, 1); got != 2 {
		t.Errorf("unique domains day1 = %g, want 2", got)
	}
}

func TestExtractorPredictableCategories(t *testing.T) {
	x, err := NewExtractor([]string{"e1"}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	recs := []logstore.Record{
		{Time: cert.Day(0).Date().Add(9 * time.Hour), User: "e1", Channel: logstore.ChannelSysmon,
			EventID: 1, Action: "ProcessCreate", Object: `C:\a.exe`, Status: "success"},
		{Time: cert.Day(0).Date().Add(9 * time.Hour), User: "e1", Channel: logstore.ChannelSysmon,
			EventID: 1, Action: "ProcessCreate", Object: `C:\a.exe`, Status: "success"},
		{Time: cert.Day(0).Date().Add(9 * time.Hour), User: "e1", Channel: logstore.ChannelPowerShell,
			EventID: 4104, Action: "PowerShell", Object: "x.ps1", Status: "success"},
		{Time: cert.Day(0).Date().Add(9 * time.Hour), User: "e1", Channel: logstore.ChannelSysmon,
			EventID: 13, Action: "RegistrySet", Object: `HKCU\k`, Status: "success"},
	}
	if err := x.Consume(0, recs); err != nil {
		t.Fatal(err)
	}
	tab := x.Table()
	w := int(cert.Work)
	if got := tab.At(0, tab.FeatureIndex(FeatCmdProcesses), w, 0); got != 2 {
		t.Errorf("processes = %g, want 2", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatCmdPowerShell), w, 0); got != 1 {
		t.Errorf("powershell = %g, want 1", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatCmdUnique), w, 0); got != 2 {
		t.Errorf("command unique = %g, want 2 (a.exe + x.ps1)", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatCmdNew), w, 0); got != 2 {
		t.Errorf("command new = %g, want 2", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatCfgRegistry), w, 0); got != 1 {
		t.Errorf("registry = %g, want 1", got)
	}
}

func TestVictimHasModestCommandBaseline(t *testing.T) {
	// The paper notes its victim "barely has any activities in the
	// Command aspect"; verify typical employees execute few processes
	// before the env change.
	gen, err := New(tinyEntConfig())
	if err != nil {
		t.Fatal(err)
	}
	perUserCmd := map[string]int{}
	days := 0
	err = gen.Stream(func(d cert.Day, recs []logstore.Record) error {
		if d >= DefaultEnvChangeDay {
			return nil
		}
		if !d.IsWeekend() {
			days++
		}
		for _, r := range recs {
			if r.Action == "ProcessCreate" {
				perUserCmd[r.User]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for u, n := range perUserCmd {
		if rate := float64(n) / float64(days); rate > 2 {
			t.Errorf("employee %s runs %.1f processes/day; too chatty for the case study", u, rate)
		}
	}
}
