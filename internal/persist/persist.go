// Package persist provides the little-endian binary codec shared by every
// state serializer in the repository (measurement tables, extractor
// first-seen trackers, streaming deviation windows, serve-layer
// snapshots). It exists so that each package can write a compact,
// deterministic, bit-exact encoding of its state without inventing its own
// framing, and so that every decoder is defensive by construction: length
// prefixes are capped before allocation, reads never run past the input,
// and all failures surface as sticky errors instead of panics.
//
// Determinism matters beyond aesthetics: tests prove deep state equality
// by comparing encoded bytes, so two encodings of equal state must be
// byte-identical (callers sort map keys before writing them).
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrCorrupt is wrapped by every decoding failure caused by malformed
// input (bad magic, absurd length prefix, short read).
var ErrCorrupt = errors.New("persist: corrupt state")

// MaxSliceLen caps every decoded length prefix: no well-formed state in
// this repository comes close, and anything larger is corruption that must
// not translate into a huge allocation.
const MaxSliceLen = 1 << 28

// Writer serializes primitives with a sticky error, so call sites can
// write whole structures and check the error once.
type Writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// Magic writes a fixed 4-byte tag followed by a format version.
func (w *Writer) Magic(tag string, version uint32) {
	if len(tag) != 4 {
		w.fail(fmt.Errorf("persist: magic %q must be 4 bytes", tag))
		return
	}
	w.write([]byte(tag))
	w.U32(version)
}

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I64 writes a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes the IEEE-754 bits of v, preserving every representable value
// (including NaN payloads and signed zeros) exactly.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.U64(uint64(len(p)))
	w.write(p)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) { w.Bytes([]byte(s)) }

// Strings writes a length-prefixed list of strings.
func (w *Writer) Strings(ss []string) {
	w.U64(uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

// F64s writes a length-prefixed float64 slice (raw IEEE bits).
func (w *Writer) F64s(xs []float64) {
	w.U64(uint64(len(xs)))
	if w.err != nil {
		return
	}
	// Chunked conversion keeps the temporary buffer small for huge slices.
	var chunk [512 * 8]byte
	for len(xs) > 0 {
		n := len(xs)
		if n > 512 {
			n = 512
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[i*8:], math.Float64bits(xs[i]))
		}
		w.write(chunk[:n*8])
		xs = xs[n:]
	}
}

// Reader decodes primitives with a sticky error. Every length prefix is
// validated against MaxSliceLen (and the caller-provided cap, when given)
// before any allocation, so corrupt input fails cleanly.
type Reader struct {
	r   io.Reader
	err error
	buf [8]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first decoding error.
func (r *Reader) Err() error { return r.err }

// Fail records err as the reader's sticky error (first failure wins).
// Callers use it to surface semantic validation errors through the same
// channel as framing errors.
func (r *Reader) Fail(err error) { r.fail(err) }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) corrupt(format string, args ...any) {
	r.fail(fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...)))
}

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			r.corrupt("unexpected end of input")
		} else {
			r.fail(err)
		}
	}
}

// Magic validates a 4-byte tag and returns the format version.
func (r *Reader) Magic(tag string) uint32 {
	var got [4]byte
	r.read(got[:])
	if r.err == nil && string(got[:]) != tag {
		r.corrupt("bad magic %q, want %q", got[:], tag)
	}
	return r.U32()
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	r.read(r.buf[:1])
	if r.err != nil {
		return 0
	}
	return r.buf[0]
}

// Bool reads a byte written by Writer.Bool; any value other than 0/1 is
// corruption.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.corrupt("invalid bool byte")
		}
		return false
	}
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	r.read(r.buf[:4])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	r.read(r.buf[:8])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 written by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads IEEE-754 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a length prefix and validates it against MaxSliceLen.
func (r *Reader) Len() int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > MaxSliceLen {
		r.corrupt("length prefix %d exceeds cap %d", n, MaxSliceLen)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	p := make([]byte, n)
	r.read(p)
	if r.err != nil {
		return nil
	}
	return p
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Strings reads a length-prefixed string list.
func (r *Reader) Strings() []string {
	n := r.Len()
	if r.err != nil || n == 0 {
		return nil
	}
	ss := make([]string, 0, minInt(n, 4096))
	for i := 0; i < n; i++ {
		ss = append(ss, r.String())
		if r.err != nil {
			return nil
		}
	}
	return ss
}

// F64s reads a length-prefixed float64 slice. want < 0 accepts any length
// (still capped by MaxSliceLen); otherwise the length must equal want.
func (r *Reader) F64s(want int) []float64 {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	if want >= 0 && n != want {
		r.corrupt("float slice has %d entries, want %d", n, want)
		return nil
	}
	if n == 0 {
		return nil
	}
	xs := make([]float64, n)
	var chunk [512 * 8]byte
	for i := 0; i < n; {
		c := n - i
		if c > 512 {
			c = 512
		}
		r.read(chunk[:c*8])
		if r.err != nil {
			return nil
		}
		for j := 0; j < c; j++ {
			xs[i+j] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[j*8:]))
		}
		i += c
	}
	return xs
}

// ReadF64sInto reads a float64 slice whose length must equal len(dst),
// decoding directly into dst (no allocation).
func (r *Reader) ReadF64sInto(dst []float64) {
	n := r.Len()
	if r.err != nil {
		return
	}
	if n != len(dst) {
		r.corrupt("float slice has %d entries, want %d", n, len(dst))
		return
	}
	var chunk [512 * 8]byte
	for i := 0; i < n; {
		c := n - i
		if c > 512 {
			c = 512
		}
		r.read(chunk[:c*8])
		if r.err != nil {
			return
		}
		for j := 0; j < c; j++ {
			dst[i+j] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[j*8:]))
		}
		i += c
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
