// Package deviation implements the paper's compound behavioral deviation
// matrix (Section IV-A): per-feature z-score deviations against a sliding
// multi-day history, clamped to [-Δ, Δ], optionally scaled by TF-style
// weights, and assembled into matrices that stack an individual user's
// deviations with their group's deviations across multiple days and
// time-frames.
package deviation

import (
	"fmt"
	"math"

	"acobe/internal/cert"
	"acobe/internal/features"
)

// Config holds the deviation-matrix parameters.
type Config struct {
	// Window is ω, the sliding history length in days (paper: 30 for the
	// CERT evaluation, 14 for the enterprise case study). Deviations on
	// day d are measured against the ω-1 preceding days.
	Window int
	// MatrixDays is 𝒟, how many consecutive days one matrix spans.
	MatrixDays int
	// Delta is Δ, the deviation clamp (paper: 3).
	Delta float64
	// Epsilon is ε, the floor applied to the history's standard deviation
	// to avoid division by zero.
	Epsilon float64
	// Weighted applies the paper's TF-style feature weights
	// w = 1 / log2(max(std, 2)).
	Weighted bool
}

// DefaultConfig returns the paper's CERT-evaluation parameters. Epsilon
// is set to one count: since every feature is an activity count, flooring
// the history's standard deviation at a single event keeps one-off rare
// activities of normal users from saturating at ±Δ, while sustained
// multi-event changes still do.
func DefaultConfig() Config {
	return Config{Window: 30, MatrixDays: 14, Delta: 3, Epsilon: 1, Weighted: true}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Window < 2 {
		return fmt.Errorf("deviation: window must be ≥ 2, got %d", c.Window)
	}
	if c.MatrixDays < 1 {
		return fmt.Errorf("deviation: matrix days must be ≥ 1, got %d", c.MatrixDays)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("deviation: delta must be positive, got %g", c.Delta)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("deviation: epsilon must be positive, got %g", c.Epsilon)
	}
	return nil
}

// Sigma computes the paper's deviation σ_{f,t,d} for a single measurement m
// against its history h (the ω-1 preceding measurements), returning the
// clamped z-score and the history's floored standard deviation.
func Sigma(m float64, history []float64, cfg Config) (sigma, std float64) {
	mean, s := meanStd(history)
	if s < cfg.Epsilon {
		s = cfg.Epsilon
	}
	delta := (m - mean) / s
	if delta > cfg.Delta {
		delta = cfg.Delta
	} else if delta < -cfg.Delta {
		delta = -cfg.Delta
	}
	return delta, s
}

// Weight computes the paper's TF-style feature weight
// w = 1/log2(max(std, 2)) ∈ (0, 1]: chaotic features (large history std)
// are scaled down, consistent features keep full weight.
func Weight(std float64) float64 {
	base := std
	if base < 2 {
		base = 2
	}
	return 1 / math.Log2(base)
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// Field holds precomputed (optionally weighted) deviations σ·w for every
// (user, feature, frame, day) of a measurement table, for days where a full
// history window exists.
type Field struct {
	cfg      Config
	table    *features.Table
	firstDay cert.Day // first day with a defined deviation
	endDay   cert.Day
	nf       int
	frames   int
	days     int // number of deviation days
	// capDays is the allocated day capacity of each sigma series (≥ days);
	// StreamField grows it geometrically when appending days online.
	capDays int
	sigma   []float64
}

// ComputeField derives the deviation field of a measurement table. The
// first Window-1 days of the table have no deviations (they only provide
// history).
func ComputeField(t *features.Table, cfg Config) (*Field, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start, end := t.Span()
	firstDay := start + cert.Day(cfg.Window-1)
	if firstDay > end {
		return nil, fmt.Errorf("deviation: table span %v..%v shorter than window %d", start, end, cfg.Window)
	}
	f := &Field{
		cfg:      cfg,
		table:    t,
		firstDay: firstDay,
		endDay:   end,
		nf:       len(t.Features()),
		frames:   t.Frames(),
		days:     int(end-firstDay) + 1,
	}
	f.capDays = f.days
	users := len(t.Users())
	f.sigma = make([]float64, users*f.nf*f.frames*f.days)
	for u := 0; u < users; u++ {
		for feat := 0; feat < f.nf; feat++ {
			for frame := 0; frame < f.frames; frame++ {
				series := t.Series(u, feat, frame)
				f.computeSeries(u, feat, frame, series)
			}
		}
	}
	return f, nil
}

// computeSeries fills the deviation series for one (user, feature, frame)
// using running sums over the sliding window for O(days) total work.
func (f *Field) computeSeries(u, feat, frame int, series []float64) {
	w := f.cfg.Window
	out := f.seriesSlice(u, feat, frame)
	// history for day index i (relative to table start) is series[i-w+1 : i].
	var sum, sumSq float64
	for i := 0; i < w-1; i++ {
		sum += series[i]
		sumSq += series[i] * series[i]
	}
	hlen := float64(w - 1)
	for i := w - 1; i < len(series); i++ {
		mean := sum / hlen
		variance := sumSq/hlen - mean*mean
		if variance < 0 {
			variance = 0
		}
		std := math.Sqrt(variance)
		if std < f.cfg.Epsilon {
			std = f.cfg.Epsilon
		}
		delta := (series[i] - mean) / std
		if delta > f.cfg.Delta {
			delta = f.cfg.Delta
		} else if delta < -f.cfg.Delta {
			delta = -f.cfg.Delta
		}
		if f.cfg.Weighted {
			delta *= Weight(std)
		}
		out[i-(w-1)] = delta
		// Slide the window: drop series[i-w+1], add series[i].
		oldest := series[i-w+1]
		sum += series[i] - oldest
		sumSq += series[i]*series[i] - oldest*oldest
	}
}

func (f *Field) seriesSlice(u, feat, frame int) []float64 {
	o := ((u*f.nf+feat)*f.frames + frame) * f.capDays
	return f.sigma[o : o+f.days]
}

// appendDay extends every series by one (zeroed) day, reallocating with
// doubled capacity when full so online appends stay amortized O(1).
func (f *Field) appendDay() {
	if f.days+1 > f.capDays {
		newCap := f.capDays * 2
		if min := f.days + 1; newCap < min {
			newCap = min
		}
		if newCap < 8 {
			newCap = 8
		}
		series := len(f.table.Users()) * f.nf * f.frames
		grown := make([]float64, series*newCap)
		for s := 0; s < series; s++ {
			copy(grown[s*newCap:s*newCap+f.days], f.sigma[s*f.capDays:s*f.capDays+f.days])
		}
		f.capDays = newCap
		f.sigma = grown
	}
	f.days++
	f.endDay++
}

// NewEmptyField builds a field over table t holding zero deviation days,
// positioned exactly like a fresh StreamField: the first appended day will
// be t.Span() start + Window-1. A sharded server uses one as its merged
// view — per-shard stream fields compute deviations, and the coordinator
// copies each closed day in with AppendCopiedDay, so the view's values are
// bit-identical to a single unsharded field's.
func NewEmptyField(t *features.Table, cfg Config) (*Field, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start, _ := t.Span()
	firstDay := start + cert.Day(cfg.Window-1)
	return &Field{
		cfg:      cfg,
		table:    t,
		firstDay: firstDay,
		endDay:   firstDay - 1,
		nf:       len(t.Features()),
		frames:   t.Frames(),
	}, nil
}

// AppendCopiedDay extends the field by one day whose values are read from
// src(u, feat, frame) — pure copies, no arithmetic, so the merged view
// preserves the source fields' bits exactly.
func (f *Field) AppendCopiedDay(src func(u, feat, frame int) float64) {
	f.AppendDay().FillUsers(0, len(f.table.Users()), src)
}

// DayFiller writes values into the most recently appended day of a Field.
// Distinct user ranges touch disjoint memory, so callers may fill ranges
// from concurrent goroutines as long as no other method of the field runs
// until every range is filled.
type DayFiller struct {
	f  *Field
	at int
}

// AppendDay extends the field by one zeroed day and returns a filler for
// it. The new day's values are undefined (zero) until FillUsers covers the
// full user range.
func (f *Field) AppendDay() DayFiller {
	f.appendDay()
	return DayFiller{f: f, at: f.days - 1}
}

// FillUsers sets the appended day's value to src(u, feat, frame) for every
// user in [lo, hi) — pure copies, no arithmetic, bit-preserving.
func (df DayFiller) FillUsers(lo, hi int, src func(u, feat, frame int) float64) {
	f := df.f
	for u := lo; u < hi; u++ {
		for feat := 0; feat < f.nf; feat++ {
			for frame := 0; frame < f.frames; frame++ {
				f.seriesSlice(u, feat, frame)[df.at] = src(u, feat, frame)
			}
		}
	}
}

// Clone returns an independent deep copy of the field (including its
// source table), compacted to the logical day count. Retraining trains on
// such a frozen snapshot while a StreamField keeps appending to the live
// field.
func (f *Field) Clone() *Field {
	c := *f
	c.table = f.table.Clone()
	series := len(f.table.Users()) * f.nf * f.frames
	c.capDays = f.days
	c.sigma = make([]float64, series*f.days)
	for s := 0; s < series; s++ {
		copy(c.sigma[s*f.days:(s+1)*f.days], f.sigma[s*f.capDays:s*f.capDays+f.days])
	}
	return &c
}

// FirstDay returns the first day with a defined deviation.
func (f *Field) FirstDay() cert.Day { return f.firstDay }

// EndDay returns the last covered day.
func (f *Field) EndDay() cert.Day { return f.endDay }

// Config returns the field's parameters.
func (f *Field) Config() Config { return f.cfg }

// Table returns the source measurement table.
func (f *Field) Table() *features.Table { return f.table }

// Sigma returns the (weighted) deviation of (user u, feature feat, frame)
// on day d. Days before FirstDay return 0.
func (f *Field) Sigma(u, feat, frame int, d cert.Day) float64 {
	if d < f.firstDay || d > f.endDay {
		return 0
	}
	return f.seriesSlice(u, feat, frame)[int(d-f.firstDay)]
}

// SigmaSeries returns the deviation day-series of (u, feat, frame) from
// FirstDay to EndDay. The slice aliases the field; do not modify.
func (f *Field) SigmaSeries(u, feat, frame int) []float64 {
	return f.seriesSlice(u, feat, frame)
}
