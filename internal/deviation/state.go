package deviation

import (
	"fmt"
	"io"

	"acobe/internal/cert"
	"acobe/internal/persist"
)

const (
	streamFieldMagic   = "ACSF"
	streamFieldVersion = 1
)

// SaveState writes everything a StreamField needs to resume exactly where
// it stopped: per-cell sliding-window accumulators, the history rings, and
// the deviation series emitted so far. Restoring into a fresh StreamField
// over an identically restored table and then continuing with Advance is
// bit-identical to never having stopped — the accumulators carry the same
// running sums the uninterrupted run would hold.
func (s *StreamField) SaveState(w io.Writer) error {
	pw := persist.NewWriter(w)
	pw.Magic(streamFieldMagic, streamFieldVersion)
	cells := len(s.acc)
	w1 := s.field.cfg.Window - 1
	pw.Int(cells)
	pw.Int(w1)
	pw.I64(int64(s.next))
	pw.I64(int64(s.field.endDay))
	pw.Int(s.field.days)
	for i := range s.acc {
		pw.F64(s.acc[i].sum)
		pw.F64(s.acc[i].sumSq)
		pw.Int(s.acc[i].n)
	}
	pw.F64s(s.hist)
	for c := 0; c < cells; c++ {
		pw.F64s(s.field.sigma[c*s.field.capDays : c*s.field.capDays+s.field.days])
	}
	return pw.Err()
}

// LoadState restores state written by SaveState into a freshly constructed
// StreamField whose table has already been restored to the saved span. The
// cell count and window must match; the saved day bookkeeping must be
// internally consistent with the field's first deviation day.
func (s *StreamField) LoadState(r io.Reader) error {
	pr := persist.NewReader(r)
	if v := pr.Magic(streamFieldMagic); pr.Err() == nil && v != streamFieldVersion {
		return fmt.Errorf("deviation: stream field state version %d unsupported", v)
	}
	cells := pr.Int()
	w1 := pr.Int()
	next := cert.Day(pr.I64())
	endDay := cert.Day(pr.I64())
	days := pr.Int()
	if err := pr.Err(); err != nil {
		return fmt.Errorf("deviation: load stream field state: %w", err)
	}
	if cells != len(s.acc) || w1 != s.field.cfg.Window-1 {
		return fmt.Errorf("deviation: stream field state shape (%d cells, window %d) does not match (%d, %d)",
			cells, w1+1, len(s.acc), s.field.cfg.Window)
	}
	start, end := s.field.table.Span()
	if next < start || next > end+1 {
		return fmt.Errorf("deviation: stream field state next day %v outside table span %v..%v", next, start, end)
	}
	wantDays := 0
	if next > s.field.firstDay {
		wantDays = int(next - s.field.firstDay)
	}
	if days != wantDays || endDay != s.field.firstDay+cert.Day(days)-1 {
		return fmt.Errorf("deviation: stream field state day bookkeeping inconsistent (next %v, end %v, days %d)",
			next, endDay, days)
	}
	for d := 0; d < days; d++ {
		s.field.appendDay()
	}
	s.next = next
	for i := range s.acc {
		s.acc[i].sum = pr.F64()
		s.acc[i].sumSq = pr.F64()
		s.acc[i].n = pr.Int()
	}
	pr.ReadF64sInto(s.hist)
	for c := 0; c < cells; c++ {
		pr.ReadF64sInto(s.field.sigma[c*s.field.capDays : c*s.field.capDays+s.field.days])
	}
	if err := pr.Err(); err != nil {
		return fmt.Errorf("deviation: load stream field state: %w", err)
	}
	for i := range s.acc {
		if s.acc[i].n < 0 {
			return fmt.Errorf("deviation: stream field state has negative push count")
		}
	}
	return nil
}
