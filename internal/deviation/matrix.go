package deviation

import (
	"fmt"

	"acobe/internal/cert"
	"acobe/internal/features"
)

// Matrix is one flattened compound behavioral deviation matrix, ready for
// an autoencoder: values are deviations transformed from [-Δ, Δ] to [0, 1]
// (Section V: "we flatten the matrices into vectors, and transform the
// deviations from close-interval [-Δ,Δ] to [0,1]").
//
// Layout (day-fastest): for each component (individual, then group when
// present), for each feature of the aspect, for each time-frame, the
// MatrixDays consecutive days ending at Day.
type Matrix struct {
	User string
	Day  cert.Day
	Data []float64
}

// Builder assembles compound matrices for one aspect from an individual
// deviation field and an optional group field whose "users" are groups
// (e.g. the per-department averages). A nil group field reproduces the
// paper's "No-Group" ablation.
type Builder struct {
	ind       *Field
	group     *Field
	userGroup []int
	aspect    features.Aspect
	featIdx   []int
	gFeatIdx  []int
}

// NewBuilder resolves the aspect's features against the fields' tables.
// ind and group must share the same day span and configuration. group may
// be nil (No-Group ablation); otherwise userGroup[u] is the group-table
// row embedded into user u's matrices (nil defaults every user to row 0).
func NewBuilder(ind, group *Field, userGroup []int, aspect features.Aspect) (*Builder, error) {
	b := &Builder{ind: ind, group: group, aspect: aspect}
	for _, name := range aspect.Features {
		i := ind.Table().FeatureIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("deviation: aspect %s feature %q missing from individual table", aspect.Name, name)
		}
		b.featIdx = append(b.featIdx, i)
	}
	if group != nil {
		if group.FirstDay() != ind.FirstDay() || group.EndDay() != ind.EndDay() {
			return nil, fmt.Errorf("deviation: group field span %v..%v differs from individual %v..%v",
				group.FirstDay(), group.EndDay(), ind.FirstDay(), ind.EndDay())
		}
		for _, name := range aspect.Features {
			i := group.Table().FeatureIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("deviation: aspect %s feature %q missing from group table", aspect.Name, name)
			}
			b.gFeatIdx = append(b.gFeatIdx, i)
		}
		nUsers := len(ind.Table().Users())
		if userGroup == nil {
			userGroup = make([]int, nUsers)
		}
		if len(userGroup) != nUsers {
			return nil, fmt.Errorf("deviation: userGroup has %d entries for %d users", len(userGroup), nUsers)
		}
		nGroups := len(group.Table().Users())
		for u, g := range userGroup {
			if g < 0 || g >= nGroups {
				return nil, fmt.Errorf("deviation: user %d assigned to group %d, only %d groups", u, g, nGroups)
			}
		}
		b.userGroup = userGroup
	}
	return b, nil
}

// Dim returns the flattened matrix width.
func (b *Builder) Dim() int {
	components := 1
	if b.group != nil {
		components = 2
	}
	return components * len(b.featIdx) * b.ind.table.Frames() * b.ind.cfg.MatrixDays
}

// FirstMatrixDay returns the earliest day for which a full matrix exists
// (needs MatrixDays of deviations, which in turn need a history window).
func (b *Builder) FirstMatrixDay() cert.Day {
	return b.ind.FirstDay() + cert.Day(b.ind.cfg.MatrixDays-1)
}

// LastMatrixDay returns the latest day with a full matrix.
func (b *Builder) LastMatrixDay() cert.Day { return b.ind.EndDay() }

// Build assembles the compound matrix of user index u ending on day d.
func (b *Builder) Build(u int, d cert.Day) (Matrix, error) {
	data := make([]float64, b.Dim())
	if err := b.BuildInto(u, d, data); err != nil {
		return Matrix{}, err
	}
	return Matrix{User: b.ind.table.Users()[u], Day: d, Data: data}, nil
}

// BuildInto assembles the compound matrix of user index u ending on day d
// directly into dst, which must have length Dim(). It is the
// allocation-free path under Build: callers filling many rows (training
// sets, scoring batches) write straight into preallocated nn.Matrix rows.
func (b *Builder) BuildInto(u int, d cert.Day, dst []float64) error {
	if d < b.FirstMatrixDay() || d > b.LastMatrixDay() {
		return fmt.Errorf("deviation: day %v outside matrix range %v..%v",
			d, b.FirstMatrixDay(), b.LastMatrixDay())
	}
	if len(dst) != b.Dim() {
		return fmt.Errorf("deviation: BuildInto dst has %d elements, want %d", len(dst), b.Dim())
	}
	cfg := b.ind.cfg
	frames := b.ind.table.Frames()
	scale := 1 / (2 * cfg.Delta)

	pos := 0
	fillComponent := func(f *Field, userIdx int, featIdx []int) {
		dayOff := int(d - f.FirstDay())
		for _, feat := range featIdx {
			for frame := 0; frame < frames; frame++ {
				series := f.seriesSlice(userIdx, feat, frame)
				for i := cfg.MatrixDays - 1; i >= 0; i-- {
					dst[pos] = (series[dayOff-i] + cfg.Delta) * scale
					pos++
				}
			}
		}
	}
	fillComponent(b.ind, u, b.featIdx)
	if b.group != nil {
		fillComponent(b.group, b.userGroup[u], b.gFeatIdx)
	}
	return nil
}

// ClampRange clamps [from, to] to the valid matrix range and returns the
// clamped bounds together with the number of stride-spaced days they
// contain (0 when the clamped range is empty). stride values below 1 are
// treated as 1.
func (b *Builder) ClampRange(from, to cert.Day, stride int) (cert.Day, cert.Day, int) {
	if stride < 1 {
		stride = 1
	}
	if from < b.FirstMatrixDay() {
		from = b.FirstMatrixDay()
	}
	if to > b.LastMatrixDay() {
		to = b.LastMatrixDay()
	}
	if to < from {
		return from, to, 0
	}
	return from, to, (int(to-from) / stride) + 1
}

// BuildRange assembles matrices for user u on every day in [from, to],
// clamped to the valid matrix range. Days are stride apart (stride ≥ 1),
// supporting sampled training sets.
func (b *Builder) BuildRange(u int, from, to cert.Day, stride int) ([]Matrix, error) {
	if stride < 1 {
		stride = 1
	}
	from, to, count := b.ClampRange(from, to, stride)
	out := make([]Matrix, 0, count)
	for d := from; d <= to; d += cert.Day(stride) {
		m, err := b.Build(u, d)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
