package deviation_test

import (
	"fmt"

	"acobe/internal/deviation"
)

// ExampleSigma shows the paper's deviation measure: a user who suddenly
// connects a thumb drive nine times, against a history of almost none,
// saturates at the clamp Δ=3; a value inside the habitual range stays
// near zero.
func ExampleSigma() {
	cfg := deviation.DefaultConfig() // ω=30, Δ=3, ε=1 count
	history := []float64{0, 0, 1, 0, 0, 0, 2, 0, 0, 0}

	burst, _ := deviation.Sigma(9, history, cfg)
	usual, _ := deviation.Sigma(0, history, cfg)
	fmt.Printf("burst: σ=%.2f\n", burst)
	fmt.Printf("usual: σ=%.2f\n", usual)
	// Output:
	// burst: σ=3.00
	// usual: σ=-0.30
}

// ExampleWeight shows the TF-style feature weight: consistent features
// keep full weight, chaotic ones are scaled down.
func ExampleWeight() {
	fmt.Printf("std=1:  w=%.2f\n", deviation.Weight(1))
	fmt.Printf("std=4:  w=%.2f\n", deviation.Weight(4))
	fmt.Printf("std=16: w=%.2f\n", deviation.Weight(16))
	// Output:
	// std=1:  w=1.00
	// std=4:  w=0.50
	// std=16: w=0.25
}
