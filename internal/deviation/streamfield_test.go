package deviation

import (
	"testing"

	"acobe/internal/cert"
	"acobe/internal/features"
	"acobe/internal/mathx"
)

// fillDay writes pseudo-random measurements for one day into tab.
func fillDay(tab *features.Table, rng *mathx.RNG, d cert.Day) {
	for u := range tab.Users() {
		for f := range tab.Features() {
			for frame := 0; frame < tab.Frames(); frame++ {
				v := float64(int(rng.Normal(6, 3)))
				if v < 0 {
					v = 0
				}
				tab.Add(u, f, frame, d, v)
			}
		}
	}
}

// TestStreamFieldMatchesComputeField grows a table day by day (EnsureDay +
// Advance, the online ingest path) and checks that after every appended day
// the streaming field is bit-identical to a batch ComputeField over a
// fresh table with the same content — both the raw sigma series and the
// compound matrices built from them.
func TestStreamFieldMatchesComputeField(t *testing.T) {
	cfg := Config{Window: 8, MatrixDays: 3, Delta: 3, Epsilon: 1, Weighted: true}
	users := []string{"u0", "u1", "u2"}
	feats := []string{"fa", "fb"}
	const lastDay = cert.Day(59)

	// Reference table with the full span up front.
	ref, err := features.NewTable(users, feats, 2, 0, lastDay)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(23)
	for d := cert.Day(0); d <= lastDay; d++ {
		fillDay(ref, rng, d)
	}

	// Live table that starts with one day and grows online.
	live, err := features.NewTable(users, feats, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewStreamField(live, cfg)
	if err != nil {
		t.Fatal(err)
	}
	aspect := features.Aspect{Name: "a", Features: feats}
	builder, err := NewBuilder(sf.Field(), nil, nil, aspect)
	if err != nil {
		t.Fatal(err)
	}

	for d := cert.Day(0); d <= lastDay; d++ {
		if err := live.EnsureDay(d); err != nil {
			t.Fatal(err)
		}
		for u := range users {
			for f := range feats {
				for frame := 0; frame < 2; frame++ {
					live.Add(u, f, frame, d, ref.At(u, f, frame, d))
				}
			}
		}
		if err := sf.Advance(); err != nil {
			t.Fatal(err)
		}
		if d < cert.Day(cfg.Window-1) {
			continue
		}
		// Batch recompute over the prefix 0..d.
		prefix, err := features.NewTable(users, feats, 2, 0, d)
		if err != nil {
			t.Fatal(err)
		}
		for u := range users {
			for f := range feats {
				for frame := 0; frame < 2; frame++ {
					for dd := cert.Day(0); dd <= d; dd++ {
						prefix.Add(u, f, frame, dd, ref.At(u, f, frame, dd))
					}
				}
			}
		}
		batch, err := ComputeField(prefix, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sf.Field().FirstDay() != batch.FirstDay() || sf.Field().EndDay() != batch.EndDay() {
			t.Fatalf("day %v: stream span %v..%v, batch %v..%v", d,
				sf.Field().FirstDay(), sf.Field().EndDay(), batch.FirstDay(), batch.EndDay())
		}
		for u := range users {
			for f := range feats {
				for frame := 0; frame < 2; frame++ {
					got := sf.Field().SigmaSeries(u, f, frame)
					want := batch.SigmaSeries(u, f, frame)
					if len(got) != len(want) {
						t.Fatalf("day %v: series length %d != %d", d, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("day %v u=%d f=%d frame=%d idx=%d: stream %v != batch %v",
								d, u, f, frame, i, got[i], want[i])
						}
					}
				}
			}
		}
		// Matrices straight off the streaming field must match too.
		if d >= builder.FirstMatrixDay() {
			bb, err := NewBuilder(batch, nil, nil, aspect)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float64, builder.Dim())
			want := make([]float64, bb.Dim())
			for u := range users {
				if err := builder.BuildInto(u, d, got); err != nil {
					t.Fatal(err)
				}
				if err := bb.BuildInto(u, d, want); err != nil {
					t.Fatal(err)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("day %v u=%d matrix idx %d: stream %v != batch %v", d, u, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestStreamFieldEmpty: a field with no consumed deviation days reports an
// empty range and Advance on an unchanged table is a no-op.
func TestStreamFieldEmpty(t *testing.T) {
	cfg := Config{Window: 5, MatrixDays: 2, Delta: 3, Epsilon: 1}
	tab, err := features.NewTable([]string{"u"}, []string{"f"}, 1, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewStreamField(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sf.Advance(); err != nil {
		t.Fatal(err)
	}
	if sf.Field().EndDay() >= sf.Field().FirstDay() {
		t.Fatalf("field claims deviation days after %d table days", tab.Days())
	}
	if err := sf.Advance(); err != nil { // idempotent
		t.Fatal(err)
	}
	if got := sf.NextDay(); got != 12 {
		t.Fatalf("NextDay = %v, want 12", got)
	}
}
