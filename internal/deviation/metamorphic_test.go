package deviation

import (
	"math"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/features"
	"acobe/internal/mathx"
	"acobe/internal/testkit"
)

// The metamorphic tests pin the z-score semantics of Section IV-A: the
// deviation must respond to *relative* change against the sliding history,
// so transformations that preserve relative change must preserve sigma.

func randomHistory(rng *mathx.RNG, n int, scale float64) []float64 {
	h := make([]float64, n)
	for i := range h {
		h[i] = rng.Float64() * scale
	}
	return h
}

// TestSigmaShiftInvariance: adding a constant to the measurement and its
// whole history leaves the deviation unchanged — the z-score sees only the
// offset from the history mean.
func TestSigmaShiftInvariance(t *testing.T) {
	cfg := DefaultConfig()
	rng := mathx.NewRNG(11)
	for trial := 0; trial < 200; trial++ {
		h := randomHistory(rng, 29, 50)
		m := rng.Float64() * 100
		c := (rng.Float64() - 0.5) * 1000
		shifted := make([]float64, len(h))
		for i := range h {
			shifted[i] = h[i] + c
		}
		want, wantStd := Sigma(m, h, cfg)
		got, gotStd := Sigma(m+c, shifted, cfg)
		if !testkit.InEpsilon(want, got, 1e-6) {
			t.Fatalf("trial %d: shift by %g changed sigma %g → %g", trial, c, want, got)
		}
		if !testkit.InEpsilon(wantStd, gotStd, 1e-6) {
			t.Fatalf("trial %d: shift by %g changed std %g → %g", trial, c, wantStd, gotStd)
		}
	}
}

// TestSigmaScaleInvariance: scaling the measurement and history by k > 0
// scales both the offset and the std by k, leaving sigma unchanged as long
// as the epsilon floor stays inactive on both sides.
func TestSigmaScaleInvariance(t *testing.T) {
	cfg := DefaultConfig()
	rng := mathx.NewRNG(12)
	for trial := 0; trial < 200; trial++ {
		h := randomHistory(rng, 29, 40)
		m := rng.Float64() * 80
		k := 1 + rng.Float64()*9 // scale up so the ε floor stays inactive
		_, std := Sigma(m, h, cfg)
		if std <= cfg.Epsilon {
			continue // floored history: relative scale is not preserved
		}
		scaled := make([]float64, len(h))
		for i := range h {
			scaled[i] = h[i] * k
		}
		want, _ := Sigma(m, h, cfg)
		got, _ := Sigma(m*k, scaled, cfg)
		if !testkit.InEpsilon(want, got, 1e-6) {
			t.Fatalf("trial %d: scale by %g changed sigma %g → %g", trial, k, want, got)
		}
	}
}

// TestSigmaClampBoundsAndIdempotence: sigma always lands in [-Δ, Δ], an
// extreme measurement saturates exactly at ±Δ, and re-deriving the
// measurement from a clamped deviation reproduces the same deviation (the
// clamp is idempotent).
func TestSigmaClampBoundsAndIdempotence(t *testing.T) {
	cfg := DefaultConfig()
	rng := mathx.NewRNG(13)
	for trial := 0; trial < 200; trial++ {
		h := randomHistory(rng, 29, 30)
		m := (rng.Float64() - 0.5) * 1e6
		sigma, std := Sigma(m, h, cfg)
		if math.Abs(sigma) > cfg.Delta {
			t.Fatalf("trial %d: |sigma| = %g > Δ = %g", trial, math.Abs(sigma), cfg.Delta)
		}
		if std < cfg.Epsilon {
			t.Fatalf("trial %d: returned std %g below ε %g", trial, std, cfg.Epsilon)
		}
		// Idempotence: a measurement placed exactly at the clamped
		// deviation re-derives to the same deviation.
		mean := mathx.Mean(h)
		m2 := mean + sigma*std
		sigma2, _ := Sigma(m2, h, cfg)
		if !testkit.InEpsilon(sigma, sigma2, 1e-9) {
			t.Fatalf("trial %d: clamp not idempotent: %g → %g", trial, sigma, sigma2)
		}
	}
	// Saturation is exact, not approximate.
	h := []float64{1, 2, 3, 2, 1, 2, 3, 2, 1, 2}
	if s, _ := Sigma(1e12, h, cfg); s != cfg.Delta {
		t.Errorf("huge positive measurement: sigma %g, want exactly %g", s, cfg.Delta)
	}
	if s, _ := Sigma(-1e12, h, cfg); s != -cfg.Delta {
		t.Errorf("huge negative measurement: sigma %g, want exactly %g", s, -cfg.Delta)
	}
}

// TestWeightProperties: w = 1/log2(max(std, 2)) is in (0, 1] and
// non-increasing in std — chaotic features can only be scaled down.
func TestWeightProperties(t *testing.T) {
	prev := math.Inf(1)
	for std := 0.0; std <= 64; std += 0.25 {
		w := Weight(std)
		if w <= 0 || w > 1 {
			t.Fatalf("Weight(%g) = %g outside (0, 1]", std, w)
		}
		if w > prev {
			t.Fatalf("Weight(%g) = %g increased from %g", std, w, prev)
		}
		prev = w
	}
	if Weight(1.5) != 1 {
		t.Errorf("Weight below the floor should be exactly 1, got %g", Weight(1.5))
	}
}

// TestComputeFieldMatchesDirectSigma cross-validates the running-sum
// sliding-window implementation of ComputeField against the direct
// per-window Sigma computation — the optimization must be behaviorally
// invisible.
func TestComputeFieldMatchesDirectSigma(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		cfg := Config{Window: 7, MatrixDays: 3, Delta: 3, Epsilon: 1, Weighted: weighted}
		table, err := features.NewTable([]string{"u0", "u1"}, []string{"f0", "f1"}, 2, 0, 39)
		if err != nil {
			t.Fatal(err)
		}
		rng := mathx.NewRNG(99)
		for u := 0; u < 2; u++ {
			for f := 0; f < 2; f++ {
				for frame := 0; frame < 2; frame++ {
					for d := cert.Day(0); d <= 39; d++ {
						table.Add(u, f, frame, d, math.Floor(rng.Float64()*20))
					}
				}
			}
		}
		field, err := ComputeField(table, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 2; u++ {
			for f := 0; f < 2; f++ {
				for frame := 0; frame < 2; frame++ {
					series := table.Series(u, f, frame)
					for d := field.FirstDay(); d <= field.EndDay(); d++ {
						i := int(d)
						history := series[i-cfg.Window+1 : i]
						want, std := Sigma(series[i], history, cfg)
						if weighted {
							want *= Weight(std)
						}
						got := field.Sigma(u, f, frame, d)
						if !testkit.InEpsilon(want, got, 1e-9) {
							t.Fatalf("weighted=%v u=%d f=%d frame=%d day=%v: field %g, direct %g",
								weighted, u, f, frame, d, got, want)
						}
					}
				}
			}
		}
	}
}
