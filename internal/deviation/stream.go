package deviation

import "math"

// Accumulator is the streaming form of computeSeries: it advances one
// (user, feature, frame) cell's sliding deviation window by one day in
// O(1) using the same running sums the batch path uses. Feeding every day
// of a series through Push yields deviations bit-identical to
// ComputeField's — same operations in the same order, so online serving
// can extend a deviation field day by day without ever rebuilding it (the
// parity is asserted by TestAccumulatorMatchesComputeField).
//
// The caller owns the ring storage: hist must be the same len(Window-1)
// slice on every Push, which lets a serving layer pack millions of cells
// into one flat backing array instead of allocating a slice per cell. The
// Accumulator itself is three words and may live in a flat array too.
type Accumulator struct {
	sum   float64
	sumSq float64
	n     int
}

// Push consumes day-measurement m. The first Window-1 pushes only fill the
// history and report ok=false; every later push returns the (clamped,
// optionally weighted) deviation of m against the preceding Window-1 days
// and slides the window forward. hist must have length cfg.Window-1 and be
// dedicated to this accumulator.
func (a *Accumulator) Push(cfg Config, hist []float64, m float64) (sigma float64, ok bool) {
	if a.n < len(hist) {
		hist[a.n] = m
		a.sum += m
		a.sumSq += m * m
		a.n++
		return 0, false
	}
	hlen := float64(len(hist))
	mean := a.sum / hlen
	variance := a.sumSq/hlen - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	if std < cfg.Epsilon {
		std = cfg.Epsilon
	}
	delta := (m - mean) / std
	if delta > cfg.Delta {
		delta = cfg.Delta
	} else if delta < -cfg.Delta {
		delta = -cfg.Delta
	}
	if cfg.Weighted {
		delta *= Weight(std)
	}
	// Slide the window: drop the oldest retained day, add m. The ring slot
	// of the oldest day is n mod (Window-1), exactly the day that fell out
	// of the history.
	slot := a.n % len(hist)
	oldest := hist[slot]
	a.sum += m - oldest
	a.sumSq += m*m - oldest*oldest
	hist[slot] = m
	a.n++
	return delta, true
}

// Seen returns how many measurements have been pushed.
func (a *Accumulator) Seen() int { return a.n }

// Primed reports whether the history window is full, i.e. whether the next
// Push will produce a deviation.
func (a *Accumulator) Primed(cfg Config) bool { return a.n >= cfg.Window-1 }
