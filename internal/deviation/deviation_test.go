package deviation

import (
	"math"
	"testing"
	"testing/quick"

	"acobe/internal/cert"
	"acobe/internal/features"
	"acobe/internal/mathx"
)

func testCfg() Config {
	return Config{Window: 5, MatrixDays: 3, Delta: 3, Epsilon: 1, Weighted: false}
}

func TestConfigValidate(t *testing.T) {
	valid := testCfg()
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Window: 1, MatrixDays: 3, Delta: 3, Epsilon: 1},
		{Window: 5, MatrixDays: 0, Delta: 3, Epsilon: 1},
		{Window: 5, MatrixDays: 3, Delta: 0, Epsilon: 1},
		{Window: 5, MatrixDays: 3, Delta: 3, Epsilon: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated", i)
		}
	}
}

func TestSigmaKnownValues(t *testing.T) {
	cfg := Config{Window: 5, MatrixDays: 1, Delta: 3, Epsilon: 0.01, Weighted: false}
	// history mean 2, population std sqrt(2).
	history := []float64{0, 2, 2, 4}
	sigma, std := Sigma(4, history, cfg)
	wantStd := math.Sqrt(2)
	if math.Abs(std-wantStd) > 1e-12 {
		t.Errorf("std = %g, want %g", std, wantStd)
	}
	if math.Abs(sigma-(4-2)/wantStd) > 1e-12 {
		t.Errorf("sigma = %g", sigma)
	}
}

func TestSigmaClamping(t *testing.T) {
	cfg := Config{Window: 5, MatrixDays: 1, Delta: 3, Epsilon: 0.01}
	history := []float64{1, 1, 1, 1} // std 0 → epsilon floor
	sigma, _ := Sigma(100, history, cfg)
	if sigma != 3 {
		t.Errorf("positive clamp: sigma = %g, want 3", sigma)
	}
	sigma, _ = Sigma(-100, history, cfg)
	if sigma != -3 {
		t.Errorf("negative clamp: sigma = %g, want -3", sigma)
	}
}

func TestSigmaEpsilonFloor(t *testing.T) {
	cfg := Config{Window: 5, MatrixDays: 1, Delta: 100, Epsilon: 2}
	history := []float64{0, 0, 0, 0}
	sigma, std := Sigma(4, history, cfg)
	if std != 2 {
		t.Errorf("floored std = %g, want 2", std)
	}
	if sigma != 2 {
		t.Errorf("sigma = %g, want 2", sigma)
	}
}

func TestWeightFunction(t *testing.T) {
	// std ≤ 2 → weight 1 (log2(2) = 1).
	if w := Weight(0); w != 1 {
		t.Errorf("Weight(0) = %g", w)
	}
	if w := Weight(2); w != 1 {
		t.Errorf("Weight(2) = %g", w)
	}
	// std = 4 → 1/log2(4) = 0.5.
	if w := Weight(4); math.Abs(w-0.5) > 1e-12 {
		t.Errorf("Weight(4) = %g", w)
	}
	// Monotone non-increasing.
	prev := math.Inf(1)
	for s := 0.5; s < 100; s *= 1.7 {
		w := Weight(s)
		if w > prev+1e-12 {
			t.Errorf("weight increased at std %g", s)
		}
		if w <= 0 || w > 1 {
			t.Errorf("weight out of (0,1]: %g", w)
		}
		prev = w
	}
}

// buildTable fills a one-user table with a deterministic series.
func buildTable(t *testing.T, series []float64) *features.Table {
	t.Helper()
	tab, err := features.NewTable([]string{"u"}, []string{"f"}, 1, 0, cert.Day(len(series)-1))
	if err != nil {
		t.Fatal(err)
	}
	for d, v := range series {
		tab.Add(0, 0, 0, cert.Day(d), v)
	}
	return tab
}

func TestFieldMatchesDirectSigma(t *testing.T) {
	// The field's running-sum implementation must agree with the direct
	// per-day Sigma computation.
	if err := quick.Check(func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		series := make([]float64, 20)
		for i := range series {
			series[i] = float64(rng.Poisson(4))
		}
		cfg := testCfg()
		tab := buildTable(t, series)
		field, err := ComputeField(tab, cfg)
		if err != nil {
			return false
		}
		for d := cfg.Window - 1; d < len(series); d++ {
			history := series[d-cfg.Window+1 : d]
			want, _ := Sigma(series[d], history, cfg)
			got := field.Sigma(0, 0, 0, cert.Day(d))
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFieldWeighted(t *testing.T) {
	series := []float64{0, 8, 0, 8, 0, 8, 0, 8, 100}
	cfg := testCfg()
	cfg.Weighted = true
	tab := buildTable(t, series)
	field, err := ComputeField(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := cert.Day(len(series) - 1)
	history := series[len(series)-cfg.Window : len(series)-1]
	sigma, std := Sigma(series[len(series)-1], history, cfg)
	want := sigma * Weight(std)
	if got := field.Sigma(0, 0, 0, d); math.Abs(got-want) > 1e-9 {
		t.Errorf("weighted sigma = %g, want %g", got, want)
	}
}

func TestFieldSpanTooShort(t *testing.T) {
	tab := buildTable(t, []float64{1, 2, 3})
	if _, err := ComputeField(tab, testCfg()); err == nil {
		t.Error("no error for span shorter than window")
	}
}

func TestFieldOutOfRangeSigmaIsZero(t *testing.T) {
	tab := buildTable(t, make([]float64, 12))
	field, err := ComputeField(tab, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if field.Sigma(0, 0, 0, 0) != 0 {
		t.Error("pre-window sigma not zero")
	}
	if field.Sigma(0, 0, 0, 999) != 0 {
		t.Error("post-span sigma not zero")
	}
	if field.FirstDay() != cert.Day(testCfg().Window-1) {
		t.Errorf("FirstDay = %v", field.FirstDay())
	}
}

// TestSlidingWindowAdaptation verifies the paper's observation that a
// sustained shift stops looking anomalous once the history window has
// slid over it (the "white tails" in Figure 4).
func TestSlidingWindowAdaptation(t *testing.T) {
	series := make([]float64, 40)
	for i := 20; i < 40; i++ {
		series[i] = 10 // level shift at day 20
	}
	cfg := testCfg()
	tab := buildTable(t, series)
	field, err := ComputeField(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	onset := field.Sigma(0, 0, 0, 20)
	adapted := field.Sigma(0, 0, 0, 20+cert.Day(cfg.Window))
	if onset < 2.9 {
		t.Errorf("onset sigma %g, want ≈ 3 (clamped)", onset)
	}
	if math.Abs(adapted) > 0.5 {
		t.Errorf("adapted sigma %g, want ≈ 0 after window slid", adapted)
	}
}
