package deviation

import (
	"fmt"

	"acobe/internal/cert"
	"acobe/internal/features"
)

// StreamField maintains a deviation Field incrementally: it consumes the
// source measurement table one day at a time and appends that day's
// deviations in O(users·features·frames) — O(1) per cell — using one
// Accumulator per (user, feature, frame). After consuming days start..d it
// is bit-identical to ComputeField over a table spanning start..d (same
// running-sum operations in the same order; see
// TestStreamFieldMatchesComputeField), which is what lets the online
// serving layer answer ranked-list queries that match the batch pipeline
// byte for byte.
//
// Unlike ComputeField, which requires the table's span to already cover a
// full history window, a StreamField can be created over a table of any
// length and primes itself as days arrive. The table is expected to grow
// via features.Table.EnsureDay; call Advance after each appended day.
type StreamField struct {
	field *Field
	acc   []Accumulator
	hist  []float64 // per-cell rings, Window-1 slots each
	next  cert.Day  // first table day not yet consumed
}

// NewStreamField builds an empty streaming field over t. No table days are
// consumed yet; call Advance (or Advance after growing the table) to feed
// them in chronological order.
func NewStreamField(t *features.Table, cfg Config) (*StreamField, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start, _ := t.Span()
	first := start + cert.Day(cfg.Window-1)
	cells := len(t.Users()) * len(t.Features()) * t.Frames()
	return &StreamField{
		field: &Field{
			cfg:      cfg,
			table:    t,
			firstDay: first,
			endDay:   first - 1, // empty: no deviation days yet
			nf:       len(t.Features()),
			frames:   t.Frames(),
		},
		acc:  make([]Accumulator, cells),
		hist: make([]float64, cells*(cfg.Window-1)),
		next: start,
	}, nil
}

// Field returns the live deviation field. It grows as Advance consumes
// days; builders holding it observe the extended range on their next
// BuildInto.
func (s *StreamField) Field() *Field { return s.field }

// NextDay returns the first table day not yet consumed.
func (s *StreamField) NextDay() cert.Day { return s.next }

// Advance consumes every table day from the last consumed day up to the
// table's current end (which may have grown via EnsureDay since the last
// call). Days whose history window is not yet full only prime the
// accumulators; later days each append one deviation day to the field.
func (s *StreamField) Advance() error {
	t := s.field.table
	start, end := t.Span()
	if s.next < start {
		return fmt.Errorf("deviation: stream field behind table start (%v < %v)", s.next, start)
	}
	users := len(t.Users())
	w1 := s.field.cfg.Window - 1
	for ; s.next <= end; s.next++ {
		d := s.next
		emit := d >= s.field.firstDay
		if emit {
			s.field.appendDay()
		}
		at := s.field.days - 1
		cell := 0
		for u := 0; u < users; u++ {
			for feat := 0; feat < s.field.nf; feat++ {
				for frame := 0; frame < s.field.frames; frame++ {
					m := t.At(u, feat, frame, d)
					sigma, ok := s.acc[cell].Push(s.field.cfg, s.hist[cell*w1:(cell+1)*w1], m)
					if ok != emit {
						return fmt.Errorf("deviation: stream field out of phase on day %v (cell %d)", d, cell)
					}
					if ok {
						s.field.seriesSlice(u, feat, frame)[at] = sigma
					}
					cell++
				}
			}
		}
	}
	return nil
}
