package deviation

import (
	"bytes"
	"math"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/features"
)

func stateTestCfg() Config {
	return Config{Window: 4, MatrixDays: 2, Delta: 3, Epsilon: 0.5, Weighted: true}
}

// stateMeasure is a deterministic pseudo-measurement varied across every
// table coordinate.
func stateMeasure(u, f, frame int, d cert.Day) float64 {
	return math.Abs(math.Sin(float64(u+1)*1.3+float64(f+1)*0.7+float64(frame+1)*2.1+float64(d)*0.9)) * 10
}

func newStateTestTable(t *testing.T) *features.Table {
	t.Helper()
	tab, err := features.NewTable([]string{"u1", "u2"}, []string{"f1", "f2", "f3"}, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func fillStateDay(t *testing.T, tab *features.Table, d cert.Day) {
	t.Helper()
	if err := tab.EnsureDay(d); err != nil {
		t.Fatal(err)
	}
	for u := range tab.Users() {
		for f := range tab.Features() {
			for frame := 0; frame < tab.Frames(); frame++ {
				tab.Add(u, f, frame, d, stateMeasure(u, f, frame, d))
			}
		}
	}
}

func encodeStream(t *testing.T, s *StreamField) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestStreamFieldStateRoundTrip(t *testing.T) {
	cfg := stateTestCfg()
	const last, split = 12, 6

	run := func(upTo cert.Day) (*features.Table, *StreamField) {
		tab := newStateTestTable(t)
		sf, err := NewStreamField(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for d := cert.Day(0); d <= upTo; d++ {
			fillStateDay(t, tab, d)
			if err := sf.Advance(); err != nil {
				t.Fatal(err)
			}
		}
		return tab, sf
	}

	_, full := run(last)
	midTab, mid := run(split)

	var tabState bytes.Buffer
	if err := midTab.SaveState(&tabState); err != nil {
		t.Fatal(err)
	}
	state := encodeStream(t, mid)

	// Restore: table first, then the stream field over it.
	restoredTab := newStateTestTable(t)
	if err := restoredTab.LoadState(bytes.NewReader(tabState.Bytes())); err != nil {
		t.Fatal(err)
	}
	restored, err := NewStreamField(restoredTab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadState(bytes.NewReader(state)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(state, encodeStream(t, restored)) {
		t.Fatal("restored stream field re-encodes to different bytes")
	}
	if restored.NextDay() != split+1 {
		t.Fatalf("restored NextDay = %v, want %v", restored.NextDay(), split+1)
	}

	// Resume and compare against the uninterrupted run bit for bit.
	for d := cert.Day(split + 1); d <= last; d++ {
		fillStateDay(t, restoredTab, d)
		if err := restored.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(encodeStream(t, full), encodeStream(t, restored)) {
		t.Error("resumed stream field state differs from uninterrupted run")
	}
	ff, rf := full.Field(), restored.Field()
	if ff.FirstDay() != rf.FirstDay() || ff.EndDay() != rf.EndDay() {
		t.Fatalf("field spans differ: %v..%v vs %v..%v", ff.FirstDay(), ff.EndDay(), rf.FirstDay(), rf.EndDay())
	}
	for u := 0; u < 2; u++ {
		for f := 0; f < 3; f++ {
			for frame := 0; frame < 2; frame++ {
				a, b := ff.SigmaSeries(u, f, frame), rf.SigmaSeries(u, f, frame)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("sigma(%d,%d,%d)[%d] = %g, want %g", u, f, frame, i, b[i], a[i])
					}
				}
			}
		}
	}
}

func TestStreamFieldStateRejectsBadInput(t *testing.T) {
	cfg := stateTestCfg()
	tab := newStateTestTable(t)
	sf, err := NewStreamField(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for d := cert.Day(0); d <= 6; d++ {
		fillStateDay(t, tab, d)
		if err := sf.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	var tabState bytes.Buffer
	if err := tab.SaveState(&tabState); err != nil {
		t.Fatal(err)
	}
	state := encodeStream(t, sf)

	freshPair := func(streamCfg Config) (*features.Table, *StreamField) {
		rt := newStateTestTable(t)
		if err := rt.LoadState(bytes.NewReader(tabState.Bytes())); err != nil {
			t.Fatal(err)
		}
		rs, err := NewStreamField(rt, streamCfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt, rs
	}

	// Truncation must error, never panic.
	for _, cut := range []int{0, 5, 11, len(state) / 2, len(state) - 1} {
		_, rs := freshPair(cfg)
		if err := rs.LoadState(bytes.NewReader(state[:cut])); err == nil {
			t.Errorf("no error for state truncated at %d bytes", cut)
		}
	}

	// A different window is a shape mismatch.
	wide := cfg
	wide.Window = 6
	_, rs := freshPair(wide)
	if err := rs.LoadState(bytes.NewReader(state)); err == nil {
		t.Error("no error loading state into stream field with different window")
	}
}
