package deviation

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzSigma decodes the input as a measurement followed by a history series
// (8 bytes per float64) and checks the invariants every deviation must
// satisfy: clamped to [-Δ, Δ], finite, std floored at ε, and deterministic.
// Values are bounded to the count-like magnitudes the detector actually
// measures; unbounded float64 histories overflow the variance accumulation,
// which is outside the feature domain.
func FuzzSigma(f *testing.F) {
	enc := func(xs ...float64) []byte {
		out := make([]byte, 0, 8*len(xs))
		for _, x := range xs {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
		}
		return out
	}
	f.Add(enc(5, 1, 2, 3, 2, 1))
	f.Add(enc(1e9, 0, 0, 0, 0))
	f.Add(enc(0))          // measurement with empty history
	f.Add(enc(-3.5, 2, 2)) // constant history
	f.Add([]byte{1, 2, 3}) // trailing partial chunk
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			return
		}
		if len(data) > 8*1024 {
			data = data[:8*1024]
		}
		decode := func(b []byte) (float64, bool) {
			x := math.Float64frombits(binary.LittleEndian.Uint64(b))
			return x, !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) <= 1e12
		}
		m, ok := decode(data[:8])
		if !ok {
			return
		}
		var history []float64
		for b := data[8:]; len(b) >= 8; b = b[8:] {
			x, ok := decode(b[:8])
			if !ok {
				return
			}
			history = append(history, x)
		}
		cfg := DefaultConfig()
		sigma, std := Sigma(m, history, cfg)
		if math.IsNaN(sigma) || math.IsInf(sigma, 0) {
			t.Fatalf("Sigma(%g, %d-point history) = %g, want finite", m, len(history), sigma)
		}
		if math.Abs(sigma) > cfg.Delta {
			t.Fatalf("|sigma| = %g exceeds Δ = %g", math.Abs(sigma), cfg.Delta)
		}
		if std < cfg.Epsilon {
			t.Fatalf("std %g below floor ε = %g", std, cfg.Epsilon)
		}
		if s2, d2 := Sigma(m, history, cfg); s2 != sigma || d2 != std {
			t.Fatalf("Sigma not deterministic: (%g, %g) vs (%g, %g)", sigma, std, s2, d2)
		}
		w := Weight(std)
		if w <= 0 || w > 1 || math.IsNaN(w) {
			t.Fatalf("Weight(%g) = %g outside (0, 1]", std, w)
		}
	})
}
