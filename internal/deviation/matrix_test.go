package deviation

import (
	"math"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/features"
	"acobe/internal/mathx"
)

// buildFields creates small individual and group fields over two users,
// two features and one frame with deterministic Poisson-ish content.
func buildFields(t *testing.T, cfg Config) (ind, group *Field, tab *features.Table) {
	t.Helper()
	rng := mathx.NewRNG(1)
	var err error
	tab, err = features.NewTable([]string{"u1", "u2"}, []string{"fa", "fb"}, 2, 0, 29)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		for f := 0; f < 2; f++ {
			for frame := 0; frame < 2; frame++ {
				for d := cert.Day(0); d <= 29; d++ {
					tab.Add(u, f, frame, d, float64(rng.Poisson(3)))
				}
			}
		}
	}
	gtab, err := tab.GroupTable([]string{"g"}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	ind, err = ComputeField(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	group, err = ComputeField(gtab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ind, group, tab
}

func aspect() features.Aspect {
	return features.Aspect{Name: "test", Features: []string{"fa", "fb"}}
}

func TestBuilderDims(t *testing.T) {
	cfg := testCfg()
	ind, group, _ := buildFields(t, cfg)

	b, err := NewBuilder(ind, group, []int{0, 0}, aspect())
	if err != nil {
		t.Fatal(err)
	}
	// 2 components × 2 features × 2 frames × 3 matrix days = 24.
	if b.Dim() != 24 {
		t.Errorf("dim with group = %d, want 24", b.Dim())
	}

	nb, err := NewBuilder(ind, nil, nil, aspect())
	if err != nil {
		t.Fatal(err)
	}
	if nb.Dim() != 12 {
		t.Errorf("dim without group = %d, want 12", nb.Dim())
	}
}

func TestBuilderValidation(t *testing.T) {
	cfg := testCfg()
	ind, group, _ := buildFields(t, cfg)
	missing := features.Aspect{Name: "x", Features: []string{"nope"}}
	if _, err := NewBuilder(ind, nil, nil, missing); err == nil {
		t.Error("no error for missing feature")
	}
	if _, err := NewBuilder(ind, group, []int{0}, aspect()); err == nil {
		t.Error("no error for short userGroup")
	}
	if _, err := NewBuilder(ind, group, []int{0, 7}, aspect()); err == nil {
		t.Error("no error for out-of-range group index")
	}
}

func TestMatrixValuesTransformedToUnitInterval(t *testing.T) {
	cfg := testCfg()
	ind, group, _ := buildFields(t, cfg)
	b, err := NewBuilder(ind, group, []int{0, 0}, aspect())
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.Build(0, b.FirstMatrixDay())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data) != b.Dim() {
		t.Fatalf("matrix width %d, want %d", len(m.Data), b.Dim())
	}
	for i, v := range m.Data {
		if v < 0 || v > 1 {
			t.Fatalf("value %d = %g outside [0,1]", i, v)
		}
	}
}

func TestMatrixLayoutMatchesSigma(t *testing.T) {
	cfg := testCfg()
	ind, group, _ := buildFields(t, cfg)
	b, err := NewBuilder(ind, group, []int{0, 0}, aspect())
	if err != nil {
		t.Fatal(err)
	}
	day := b.FirstMatrixDay() + 2
	m, err := b.Build(1, day)
	if err != nil {
		t.Fatal(err)
	}
	// Element 0: individual, feature fa, frame 0, day day-(D-1).
	firstDay := day - cert.Day(cfg.MatrixDays-1)
	want := (ind.Sigma(1, 0, 0, firstDay) + cfg.Delta) / (2 * cfg.Delta)
	if math.Abs(m.Data[0]-want) > 1e-12 {
		t.Errorf("element 0 = %g, want %g", m.Data[0], want)
	}
	// Last element: group component, feature fb, frame 1, day `day`.
	wantLast := (group.Sigma(0, 1, 1, day) + cfg.Delta) / (2 * cfg.Delta)
	if got := m.Data[len(m.Data)-1]; math.Abs(got-wantLast) > 1e-12 {
		t.Errorf("last element = %g, want %g", got, wantLast)
	}
	if m.User != "u2" || m.Day != day {
		t.Errorf("metadata %s/%v", m.User, m.Day)
	}
}

func TestBuildRangeClampsAndStrides(t *testing.T) {
	cfg := testCfg()
	ind, _, _ := buildFields(t, cfg)
	b, err := NewBuilder(ind, nil, nil, aspect())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := b.BuildRange(0, -100, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matrices built")
	}
	if ms[0].Day != b.FirstMatrixDay() {
		t.Errorf("first day %v, want %v", ms[0].Day, b.FirstMatrixDay())
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Day-ms[i-1].Day != 2 {
			t.Errorf("stride violated: %v → %v", ms[i-1].Day, ms[i].Day)
		}
	}
	if last := ms[len(ms)-1].Day; last > b.LastMatrixDay() {
		t.Errorf("last day %v beyond %v", last, b.LastMatrixDay())
	}
}

// TestBuildIntoMatchesBuild checks the allocation-free path fills a
// caller-owned buffer with exactly the values Build returns, fully
// overwriting stale contents, and validates buffer length and day range.
func TestBuildIntoMatchesBuild(t *testing.T) {
	cfg := testCfg()
	ind, group, _ := buildFields(t, cfg)
	b, err := NewBuilder(ind, group, []int{0, 0}, aspect())
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, b.Dim())
	for u := 0; u < 2; u++ {
		for d := b.FirstMatrixDay(); d <= b.LastMatrixDay(); d++ {
			want, err := b.Build(u, d)
			if err != nil {
				t.Fatal(err)
			}
			for i := range dst {
				dst[i] = math.NaN() // stale contents must be overwritten
			}
			if err := b.BuildInto(u, d, dst); err != nil {
				t.Fatal(err)
			}
			for i := range dst {
				if dst[i] != want.Data[i] {
					t.Fatalf("user %d day %v element %d: %v != %v", u, d, i, dst[i], want.Data[i])
				}
			}
		}
	}
	if err := b.BuildInto(0, b.FirstMatrixDay(), make([]float64, b.Dim()-1)); err == nil {
		t.Error("no error for short dst buffer")
	}
	if err := b.BuildInto(0, b.FirstMatrixDay()-1, dst); err == nil {
		t.Error("no error before first matrix day")
	}
}

// TestClampRangeCounts checks the clamped-bounds/count helper against the
// materializing BuildRange.
func TestClampRangeCounts(t *testing.T) {
	cfg := testCfg()
	ind, _, _ := buildFields(t, cfg)
	b, err := NewBuilder(ind, nil, nil, aspect())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		from, to cert.Day
		stride   int
	}{
		{-100, 1000, 2},
		{b.FirstMatrixDay(), b.LastMatrixDay(), 1},
		{b.FirstMatrixDay() + 3, b.FirstMatrixDay() + 3, 7},
		{b.LastMatrixDay() + 1, b.LastMatrixDay() + 5, 1}, // empty after clamp
		{5, 20, 0},                                        // stride floored to 1
	} {
		from, to, count := b.ClampRange(tc.from, tc.to, tc.stride)
		ms, err := b.BuildRange(0, tc.from, tc.to, tc.stride)
		if err != nil {
			t.Fatal(err)
		}
		if count != len(ms) {
			t.Errorf("ClampRange(%v,%v,%d) count=%d, BuildRange built %d", tc.from, tc.to, tc.stride, count, len(ms))
		}
		if count > 0 && (ms[0].Day != from || ms[len(ms)-1].Day > to) {
			t.Errorf("ClampRange bounds %v..%v disagree with BuildRange days %v..%v", from, to, ms[0].Day, ms[len(ms)-1].Day)
		}
	}
}

func TestBuildOutOfRange(t *testing.T) {
	cfg := testCfg()
	ind, _, _ := buildFields(t, cfg)
	b, err := NewBuilder(ind, nil, nil, aspect())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(0, b.FirstMatrixDay()-1); err == nil {
		t.Error("no error before first matrix day")
	}
	if _, err := b.Build(0, b.LastMatrixDay()+1); err == nil {
		t.Error("no error after last matrix day")
	}
}

func TestGroupRowSelectsUserGroup(t *testing.T) {
	cfg := testCfg()
	rng := mathx.NewRNG(2)
	tab, err := features.NewTable([]string{"u1", "u2"}, []string{"fa"}, 1, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		for d := cert.Day(0); d <= 19; d++ {
			tab.Add(u, 0, 0, d, float64(rng.Poisson(float64(3+u*10))))
		}
	}
	// Each user is its own group, so the group component must equal the
	// user's own deviations.
	gtab, err := tab.GroupTable([]string{"g1", "g2"}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := ComputeField(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := ComputeField(gtab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBuilder(ind, grp, []int{0, 1}, features.Aspect{Name: "a", Features: []string{"fa"}})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		m, err := b.Build(u, b.FirstMatrixDay())
		if err != nil {
			t.Fatal(err)
		}
		half := len(m.Data) / 2
		for i := 0; i < half; i++ {
			if math.Abs(m.Data[i]-m.Data[half+i]) > 1e-12 {
				t.Fatalf("user %d: individual and singleton-group components differ at %d", u, i)
			}
		}
	}
}
