package deviation

import (
	"testing"

	"acobe/internal/cert"
	"acobe/internal/features"
	"acobe/internal/mathx"
)

// TestAccumulatorMatchesComputeField is the incremental-serving parity
// proof: pushing a measurement series day by day through an Accumulator
// must reproduce the batch field bit-for-bit (==, not epsilon), for every
// cell, under both weighted and unweighted configs. The online window
// advance in internal/serve relies on this equality for its golden parity
// with the batch pipeline.
func TestAccumulatorMatchesComputeField(t *testing.T) {
	for _, weighted := range []bool{true, false} {
		cfg := Config{Window: 9, MatrixDays: 3, Delta: 3, Epsilon: 1, Weighted: weighted}
		users := []string{"a", "b", "c"}
		feats := []string{"f0", "f1"}
		tab, err := features.NewTable(users, feats, 2, 0, 79)
		if err != nil {
			t.Fatal(err)
		}
		rng := mathx.NewRNG(11)
		for u := range users {
			for f := range feats {
				for frame := 0; frame < 2; frame++ {
					for d := cert.Day(0); d <= 79; d++ {
						// Mix of bursty integers and smooth noise, with a
						// constant stretch to hit the epsilon floor.
						v := float64(int(rng.Normal(8, 4)))
						if d > 20 && d < 30 {
							v = 5
						}
						tab.Add(u, f, frame, d, v)
					}
				}
			}
		}
		field, err := ComputeField(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for u := range users {
			for f := range feats {
				for frame := 0; frame < 2; frame++ {
					series := tab.Series(u, f, frame)
					want := field.SigmaSeries(u, f, frame)
					var acc Accumulator
					hist := make([]float64, cfg.Window-1)
					got := 0
					for i, m := range series {
						sigma, ok := acc.Push(cfg, hist, m)
						if !ok {
							if i >= cfg.Window-1 {
								t.Fatalf("weighted=%v u=%d f=%d frame=%d day %d: not primed", weighted, u, f, frame, i)
							}
							continue
						}
						if sigma != want[got] {
							t.Fatalf("weighted=%v u=%d f=%d frame=%d dev-day %d: stream %v != batch %v",
								weighted, u, f, frame, got, sigma, want[got])
						}
						got++
					}
					if got != len(want) {
						t.Fatalf("stream produced %d deviations, batch %d", got, len(want))
					}
				}
			}
		}
	}
}

// TestAccumulatorPrimed covers the fill-phase bookkeeping.
func TestAccumulatorPrimed(t *testing.T) {
	cfg := Config{Window: 4, MatrixDays: 1, Delta: 3, Epsilon: 1}
	var acc Accumulator
	hist := make([]float64, cfg.Window-1)
	for i := 0; i < 3; i++ {
		if acc.Primed(cfg) {
			t.Fatalf("primed after %d of 3 fill pushes", i)
		}
		if _, ok := acc.Push(cfg, hist, float64(i)); ok {
			t.Fatalf("push %d produced a deviation during fill", i)
		}
	}
	if !acc.Primed(cfg) {
		t.Fatal("not primed after window-1 pushes")
	}
	if _, ok := acc.Push(cfg, hist, 9); !ok {
		t.Fatal("primed accumulator produced no deviation")
	}
	if acc.Seen() != 4 {
		t.Fatalf("Seen() = %d, want 4", acc.Seen())
	}
}
