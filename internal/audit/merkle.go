package audit

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
)

// Merkle tree over batch event payloads. Domain-separated hashing:
//
//	leaf  = SHA256(0x00 || payload)
//	node  = SHA256(0x01 || left || right)
//	empty = SHA256(0x02)
//
// An odd trailing node at any level is promoted unchanged to the next
// level (no duplication), so a proof path records an explicit side bit
// per step and may be shorter than ceil(log2(n)) levels would suggest.
var (
	leafPrefix  = [1]byte{0x00}
	nodePrefix  = [1]byte{0x01}
	emptyPrefix = [1]byte{0x02}
)

// EmptyRoot is the Merkle root of a zero-event batch.
func EmptyRoot() Head {
	return sha256.Sum256(emptyPrefix[:])
}

// LeafHash hashes one event payload into its leaf.
func LeafHash(payload []byte) Head {
	h := sha256.New()
	h.Write(leafPrefix[:])
	h.Write(payload)
	var out Head
	h.Sum(out[:0])
	return out
}

// Tree accumulates leaves for one batch and computes the root with
// retained scratch buffers: after capacity warms up, a Reset / AddLeaf* /
// Root cycle performs zero allocations, keeping the WAL append path
// alloc-free.
//
// Not safe for concurrent use; each WAL stream owns one.
type Tree struct {
	leaves []Head
	level  []Head
	h      hash.Hash
	sum    [HeadSize]byte
	// nl/nr stage node children in fields: slicing a [32]byte parameter
	// for the interface Write call would make it escape (one heap
	// allocation per node), while struct fields are already on the heap.
	nl, nr [HeadSize]byte
}

// NewTree returns an empty tree.
func NewTree() *Tree { return &Tree{h: sha256.New()} }

// Reset clears the tree for the next batch, keeping capacity.
func (t *Tree) Reset() { t.leaves = t.leaves[:0] }

// Len returns the number of accumulated leaves.
func (t *Tree) Len() int { return len(t.leaves) }

// AddLeaf hashes one event payload and appends its leaf.
func (t *Tree) AddLeaf(payload []byte) {
	t.h.Reset()
	t.h.Write(leafPrefix[:])
	t.h.Write(payload)
	t.h.Sum(t.sum[:0])
	t.leaves = append(t.leaves, t.sum)
}

// Leaves returns the accumulated leaf hashes. The slice aliases the
// tree's scratch; callers that outlive the next Reset must copy it.
func (t *Tree) Leaves() []Head { return t.leaves }

func (t *Tree) node(l, r Head) Head {
	t.nl, t.nr = l, r
	t.h.Reset()
	t.h.Write(nodePrefix[:])
	t.h.Write(t.nl[:])
	t.h.Write(t.nr[:])
	t.h.Sum(t.sum[:0])
	return t.sum
}

// Root computes the Merkle root of the accumulated leaves. The leaves
// themselves are preserved (the reduction runs in a scratch level).
func (t *Tree) Root() Head {
	if len(t.leaves) == 0 {
		t.h.Reset()
		t.h.Write(emptyPrefix[:])
		t.h.Sum(t.sum[:0])
		return t.sum
	}
	t.level = append(t.level[:0], t.leaves...)
	lv := t.level
	for len(lv) > 1 {
		j := 0
		for i := 0; i+1 < len(lv); i += 2 {
			lv[j] = t.node(lv[i], lv[i+1])
			j++
		}
		if len(lv)%2 == 1 {
			lv[j] = lv[len(lv)-1]
			j++
		}
		lv = lv[:j]
	}
	return lv[0]
}

// MerkleRoot computes the root over a leaf slice (convenience for
// verification paths that already hold leaves).
func MerkleRoot(leaves []Head) Head {
	t := NewTree()
	t.leaves = append(t.leaves, leaves...)
	return t.Root()
}

// ProofStep is one level of an inclusion proof: the sibling hash and
// which side of the running hash it sits on.
type ProofStep struct {
	// Left reports that the sibling is the LEFT child at this level (the
	// running hash is the right child).
	Left bool
	Hash Head
}

// Proof shows that event Index of batch BatchID — whose payload hashes
// to Leaf — is under the batch's Merkle root, which the WAL chain
// committed at append time.
type Proof struct {
	BatchID uint64
	Index   uint32
	Leaf    Head
	Path    []ProofStep
}

// MaxProofSteps caps a decoded proof path; 64 levels covers 2^64 leaves,
// far past any real batch.
const MaxProofSteps = 64

// ErrProofInvalid is wrapped by proof construction/verification
// failures that are about the proof itself (bad index, oversize path),
// as opposed to codec-level corruption.
var ErrProofInvalid = errors.New("audit: invalid proof")

// Prove builds the inclusion proof for leaf index within leaves. The
// caller stamps BatchID. Cold path: allocates freely.
func Prove(leaves []Head, index int) (Proof, error) {
	if index < 0 || index >= len(leaves) {
		return Proof{}, fmt.Errorf("%w: index %d out of range (batch has %d events)", ErrProofInvalid, index, len(leaves))
	}
	p := Proof{Index: uint32(index), Leaf: leaves[index]}
	t := NewTree()
	lv := append([]Head(nil), leaves...)
	j := index
	for len(lv) > 1 {
		if j%2 == 0 {
			if j+1 < len(lv) {
				p.Path = append(p.Path, ProofStep{Left: false, Hash: lv[j+1]})
			}
			// else: promoted odd node, no step at this level
		} else {
			p.Path = append(p.Path, ProofStep{Left: true, Hash: lv[j-1]})
		}
		// Reduce one level in place.
		k := 0
		for i := 0; i+1 < len(lv); i += 2 {
			lv[k] = t.node(lv[i], lv[i+1])
			k++
		}
		if len(lv)%2 == 1 {
			lv[k] = lv[len(lv)-1]
			k++
		}
		lv = lv[:k]
		j /= 2
	}
	return p, nil
}

// Root recomputes the Merkle root this proof commits to. Verification is
// comparing the result against the root the chain sealed: a proof is
// valid iff p.Root() == committed root.
func (p *Proof) Root() Head {
	t := NewTree()
	h := p.Leaf
	for _, s := range p.Path {
		if s.Left {
			h = t.node(s.Hash, h)
		} else {
			h = t.node(h, s.Hash)
		}
	}
	return h
}

// Verify checks the proof against the committed batch root.
func (p *Proof) Verify(root Head) bool { return p.Root() == root }
