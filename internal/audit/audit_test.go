package audit

import (
	"bytes"
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestChainFoldDeterministicAndOrderSensitive(t *testing.T) {
	a := NewChain(Head{})
	b := NewChain(Head{})
	a.Fold([]byte("one"))
	a.Fold([]byte("two"))
	b.Fold([]byte("one"))
	b.Fold([]byte("two"))
	if a.Head() != b.Head() {
		t.Fatal("same folds must give the same head")
	}
	c := NewChain(Head{})
	c.Fold([]byte("two"))
	c.Fold([]byte("one"))
	if c.Head() == a.Head() {
		t.Fatal("fold order must matter")
	}
	d := NewChain(Head{})
	d.Fold([]byte("onetwo"))
	if d.Head() == a.Head() {
		t.Fatal("frame boundaries must matter")
	}
}

func TestChainFoldWithRootCommitsRoot(t *testing.T) {
	frame := []byte("frame-bytes")
	r1, r2 := LeafHash([]byte("x")), LeafHash([]byte("y"))
	a := NewChain(Head{})
	a.FoldWithRoot(frame, r1)
	b := NewChain(Head{})
	b.FoldWithRoot(frame, r2)
	if a.Head() == b.Head() {
		t.Fatal("different roots over the same frame must give different heads")
	}
	c := NewChain(Head{})
	c.Fold(frame)
	if c.Head() == a.Head() {
		t.Fatal("FoldWithRoot must differ from plain Fold")
	}
}

func TestChainFoldZeroAllocs(t *testing.T) {
	c := NewChain(Head{})
	frame := bytes.Repeat([]byte{0xAB}, 512)
	root := LeafHash(frame)
	if n := testing.AllocsPerRun(1000, func() { c.Fold(frame) }); n != 0 {
		t.Fatalf("Fold allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.FoldWithRoot(frame, root) }); n != 0 {
		t.Fatalf("FoldWithRoot allocates %v/op, want 0", n)
	}
}

func TestTreeSteadyStateZeroAllocs(t *testing.T) {
	tr := NewTree()
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("event-payload-%d", i))
	}
	// Warm the scratch capacity, then require the batch cycle to be free.
	for i := 0; i < 3; i++ {
		tr.Reset()
		for _, p := range payloads {
			tr.AddLeaf(p)
		}
		tr.Root()
	}
	n := testing.AllocsPerRun(100, func() {
		tr.Reset()
		for _, p := range payloads {
			tr.AddLeaf(p)
		}
		tr.Root()
	})
	if n != 0 {
		t.Fatalf("warm tree batch cycle allocates %v/op, want 0", n)
	}
}

func TestMerkleRootShapes(t *testing.T) {
	if EmptyRoot() != MerkleRoot(nil) {
		t.Fatal("empty root mismatch")
	}
	one := []Head{LeafHash([]byte("a"))}
	if MerkleRoot(one) != one[0] {
		t.Fatal("single-leaf root must be the leaf")
	}
	// Tree and MerkleRoot agree for many sizes, and roots are distinct
	// across sizes (promoted odd nodes must not collide with pairs).
	seen := map[Head]int{}
	tr := NewTree()
	for n := 0; n <= 33; n++ {
		tr.Reset()
		var leaves []Head
		for i := 0; i < n; i++ {
			p := []byte(fmt.Sprintf("n%d-i%d", n, i))
			tr.AddLeaf(p)
			leaves = append(leaves, LeafHash(p))
		}
		got := tr.Root()
		if got != MerkleRoot(leaves) {
			t.Fatalf("n=%d: Tree.Root != MerkleRoot", n)
		}
		if prev, dup := seen[got]; dup {
			t.Fatalf("root collision between n=%d and n=%d", prev, n)
		}
		seen[got] = n
	}
}

func TestProveVerifyAllIndices(t *testing.T) {
	for n := 1; n <= 17; n++ {
		var leaves []Head
		for i := 0; i < n; i++ {
			leaves = append(leaves, LeafHash([]byte(fmt.Sprintf("n%d-i%d", n, i))))
		}
		root := MerkleRoot(leaves)
		for i := 0; i < n; i++ {
			p, err := Prove(leaves, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !p.Verify(root) {
				t.Fatalf("n=%d i=%d: proof does not verify", n, i)
			}
		}
	}
	if _, err := Prove([]Head{LeafHash([]byte("x"))}, 1); err == nil {
		t.Fatal("out-of-range index must fail")
	}
	if _, err := Prove(nil, 0); err == nil {
		t.Fatal("empty batch must fail")
	}
}

func TestMutatedProofsFail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 13
	var leaves []Head
	for i := 0; i < n; i++ {
		leaves = append(leaves, LeafHash([]byte(fmt.Sprintf("leaf-%d", i))))
	}
	root := MerkleRoot(leaves)
	for i := 0; i < n; i++ {
		p, err := Prove(leaves, i)
		if err != nil {
			t.Fatal(err)
		}
		// Wrong leaf.
		bad := p
		bad.Leaf = LeafHash([]byte("impostor"))
		if bad.Verify(root) {
			t.Fatalf("i=%d: wrong-leaf proof verified", i)
		}
		// Truncated path.
		if len(p.Path) > 0 {
			bad = p
			bad.Path = p.Path[:len(p.Path)-1]
			if bad.Verify(root) {
				t.Fatalf("i=%d: truncated proof verified", i)
			}
			// Flipped side bit.
			bad = p
			bad.Path = append([]ProofStep(nil), p.Path...)
			k := rng.Intn(len(bad.Path))
			bad.Path[k].Left = !bad.Path[k].Left
			if bad.Verify(root) {
				t.Fatalf("i=%d: side-flipped proof verified", i)
			}
			// Corrupted sibling hash.
			bad.Path = append([]ProofStep(nil), p.Path...)
			bad.Path[k].Left = p.Path[k].Left
			bad.Path[k].Hash[0] ^= 0x01
			if bad.Verify(root) {
				t.Fatalf("i=%d: sibling-corrupted proof verified", i)
			}
		}
		// Sibling swap: two adjacent leaves exchange proofs.
		if i+1 < n {
			q, err := Prove(leaves, i+1)
			if err != nil {
				t.Fatal(err)
			}
			bad = p
			bad.Path = q.Path
			if bad.Verify(root) && p.Leaf != q.Leaf {
				t.Fatalf("i=%d: swapped-path proof verified", i)
			}
		}
	}
}

func TestSealCodecRoundTrip(t *testing.T) {
	s := Seal{Head: LeafHash([]byte("seg")), Seq: 42, Frames: 7}
	enc := s.Encode()
	got, err := DecodeSeal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip mismatch: %+v != %+v", got, s)
	}
	if _, err := DecodeSeal(append(enc, 0)); err == nil {
		t.Fatal("trailing byte must be rejected")
	}
	if _, err := DecodeSeal(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncation must be rejected")
	}
	if _, err := DecodeSeal(nil); err == nil {
		t.Fatal("empty input must be rejected")
	}
}

func TestProofCodecRoundTrip(t *testing.T) {
	var leaves []Head
	for i := 0; i < 9; i++ {
		leaves = append(leaves, LeafHash([]byte(fmt.Sprintf("l%d", i))))
	}
	p, err := Prove(leaves, 5)
	if err != nil {
		t.Fatal(err)
	}
	p.BatchID = 99
	enc := p.Encode()
	got, err := DecodeProof(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.BatchID != p.BatchID || got.Index != p.Index || got.Leaf != p.Leaf || len(got.Path) != len(p.Path) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, p)
	}
	for i := range p.Path {
		if got.Path[i] != p.Path[i] {
			t.Fatalf("path step %d mismatch", i)
		}
	}
	if got.Root() != p.Root() {
		t.Fatal("decoded proof computes a different root")
	}
	if _, err := DecodeProof(append(enc, 0)); err == nil {
		t.Fatal("trailing byte must be rejected")
	}
	if _, err := DecodeProof(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncation must be rejected")
	}
}

func TestReceiptCodecAndSignature(t *testing.T) {
	dir := t.TempDir()
	priv, err := LoadOrCreateKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	pub := priv.Public().(ed25519.PublicKey)
	rc := Receipt{From: 3, To: 60, ListHash: LeafHash([]byte("list")), Head: LeafHash([]byte("head"))}
	rc.Sign(priv)
	if !rc.VerifySig(pub) {
		t.Fatal("signed receipt must verify")
	}
	enc := rc.Encode()
	got, err := DecodeReceipt(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != rc {
		t.Fatal("receipt round trip mismatch")
	}
	if !got.VerifySig(pub) {
		t.Fatal("decoded receipt must verify")
	}
	for _, mutate := range []func(*Receipt){
		func(r *Receipt) { r.From++ },
		func(r *Receipt) { r.To-- },
		func(r *Receipt) { r.ListHash[0] ^= 1 },
		func(r *Receipt) { r.Head[31] ^= 1 },
		func(r *Receipt) { r.Sig[0] ^= 1 },
	} {
		bad := rc
		mutate(&bad)
		if bad.VerifySig(pub) {
			t.Fatal("mutated receipt must not verify")
		}
	}
	if _, err := DecodeReceipt(append(enc, 0)); err == nil {
		t.Fatal("trailing byte must be rejected")
	}
}

func TestKeyPersistenceAndFingerprint(t *testing.T) {
	dir := t.TempDir()
	k1, err := LoadOrCreateKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := LoadOrCreateKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Equal(k2) {
		t.Fatal("key must be stable across loads")
	}
	pub, err := LoadPublicKey(filepath.Join(dir, PubFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !pub.Equal(k1.Public().(ed25519.PublicKey)) {
		t.Fatal("published public key must match the private key")
	}
	if fp := Fingerprint(pub); len(fp) != 16 {
		t.Fatalf("fingerprint %q, want 16 hex digits", fp)
	}
	if err := os.WriteFile(filepath.Join(dir, KeyFileName), []byte("zz-not-hex"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOrCreateKey(dir); err == nil {
		t.Fatal("malformed key file must be rejected, not overwritten")
	}
}

func TestContextSeparation(t *testing.T) {
	dir := t.TempDir()
	priv, err := LoadOrCreateKey(dir)
	if err != nil {
		t.Fatal(err)
	}
	pub := priv.Public().(ed25519.PublicKey)
	body := []byte("attested bytes")
	sig := SignContext(priv, ContextSnapshot, body)
	if !VerifyContext(pub, sig, ContextSnapshot, body) {
		t.Fatal("snapshot signature must verify in its own context")
	}
	if VerifyContext(pub, sig, ContextManifest, body) {
		t.Fatal("snapshot signature must not verify as a manifest signature")
	}
	// Part framing: ("ab","c") and ("a","bc") must not collide.
	s1 := SignContext(priv, ContextSnapshot, []byte("ab"), []byte("c"))
	if VerifyContext(pub, s1, ContextSnapshot, []byte("a"), []byte("bc")) {
		t.Fatal("part boundaries must be framed into the digest")
	}
}

// BenchmarkChainFoldAppend is the tight-loop cost of sealing one WAL
// frame into the chain: Merkle leaves over a representative 8-event
// batch, the batch root, and the chain fold committing frame and root.
// This is the whole per-append audit surface on the serving hot path; the
// acceptance bar is 0 allocs/op (cmd/repro -bench-serve pins ns/append
// into BENCH_serve.json's audit_overhead section).
func BenchmarkChainFoldAppend(b *testing.B) {
	c := NewChain(Head{})
	tr := NewTree()
	frame := bytes.Repeat([]byte{0xAB}, 1024)
	events := make([][]byte, 8)
	for i := range events {
		events[i] = []byte(fmt.Sprintf(`{"type":1,"user":"U%04d","activity":"logon"}`, i))
	}
	// Warm the scratch capacity so the measured cycle is steady state.
	tr.Reset()
	for _, e := range events {
		tr.AddLeaf(e)
	}
	tr.Root()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Reset()
		for _, e := range events {
			tr.AddLeaf(e)
		}
		c.FoldWithRoot(frame, tr.Root())
	}
}

// BenchmarkChainFoldOnly isolates the fold itself (no Merkle work): the
// incremental cost per already-rooted frame, e.g. seals and receipts.
func BenchmarkChainFoldOnly(b *testing.B) {
	c := NewChain(Head{})
	frame := bytes.Repeat([]byte{0xAB}, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fold(frame)
	}
}
