package audit

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzProofDecode drives arbitrary bytes through the inclusion-proof
// decoder: it must never panic or over-allocate, and anything it accepts
// must re-encode byte-identically (decode is the inverse of encode on
// its accepted set).
func FuzzProofDecode(f *testing.F) {
	var leaves []Head
	for i := 0; i < 9; i++ {
		leaves = append(leaves, LeafHash([]byte(fmt.Sprintf("l%d", i))))
	}
	for _, i := range []int{0, 3, 8} {
		p, err := Prove(leaves, i)
		if err != nil {
			f.Fatal(err)
		}
		p.BatchID = uint64(i + 1)
		f.Add(p.Encode())
	}
	single, _ := Prove(leaves[:1], 0)
	f.Add(single.Encode())
	// Truncated, bit-rotted, and oversize-path variants.
	enc := single.Encode()
	f.Add(enc[:len(enc)/2])
	rot := append([]byte(nil), enc...)
	rot[9] ^= 0x40
	f.Add(rot)
	f.Add([]byte("ACPF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProof(data)
		if err != nil {
			return
		}
		if len(p.Path) > MaxProofSteps {
			t.Fatalf("accepted proof with %d steps, cap %d", len(p.Path), MaxProofSteps)
		}
		re := p.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted proof is not a fixpoint: %x != %x", re, data)
		}
		p.Root() // must not panic for any accepted proof
	})
}

// FuzzAuditTrailerDecode drives arbitrary bytes through the segment-seal
// ("audit trailer") decoder with the same contract: no panics, and every
// accepted seal is an encode fixpoint.
func FuzzAuditTrailerDecode(f *testing.F) {
	s := Seal{Head: LeafHash([]byte("seg")), Seq: 3, Frames: 17}
	f.Add(s.Encode())
	zero := Seal{}
	f.Add(zero.Encode())
	enc := s.Encode()
	f.Add(enc[:len(enc)-3])
	rot := append([]byte(nil), enc...)
	rot[12] ^= 0x01
	f.Add(rot)
	f.Add([]byte("ACSL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeSeal(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Encode(), data) {
			t.Fatalf("accepted seal is not a fixpoint")
		}
	})
}
