package audit

import (
	"bytes"
	"fmt"

	"acobe/internal/persist"
)

// Binary codecs for the three audit artifacts that cross a trust
// boundary: segment seals (the "audit trailer" embedded in the WAL),
// inclusion proofs (served over HTTP, pasted into evidence bundles), and
// rank receipts (signed records of an emitted ranking). All three use the
// shared persist framing so decoding is defensive by construction; both
// decoders are fuzz targets.
const (
	sealMagic    = "ACSL"
	sealVersion  = 1
	proofMagic   = "ACPF"
	proofVersion = 1
	rcptMagic    = "ACRR"
	rcptVersion  = 1
)

// SigSize is the byte width of an ed25519 signature.
const SigSize = 64

// Seal is a segment trailer: the chain head over every prior frame of
// the segment, written as the segment's final frame and folded into the
// chain itself (so the next segment's header link covers the seal too).
type Seal struct {
	// Head is the chain head after folding every frame of the segment
	// before this seal.
	Head Head
	// Seq is the segment's sequence number.
	Seq uint64
	// Frames counts the frames sealed (excluding the seal frame itself).
	Frames uint32
}

// Encode serializes the seal.
func (s *Seal) Encode() []byte {
	var buf bytes.Buffer
	pw := persist.NewWriter(&buf)
	pw.Magic(sealMagic, sealVersion)
	pw.Bytes(s.Head[:])
	pw.U64(s.Seq)
	pw.U32(s.Frames)
	return buf.Bytes()
}

// DecodeSeal parses a seal, rejecting trailing garbage.
func DecodeSeal(b []byte) (Seal, error) {
	r := bytes.NewReader(b)
	pr := persist.NewReader(r)
	var s Seal
	if v := pr.Magic(sealMagic); pr.Err() == nil && v != sealVersion {
		return Seal{}, fmt.Errorf("%w: seal version %d, want %d", persist.ErrCorrupt, v, sealVersion)
	}
	head := pr.Bytes()
	s.Seq = pr.U64()
	s.Frames = pr.U32()
	if err := pr.Err(); err != nil {
		return Seal{}, err
	}
	if len(head) != HeadSize {
		return Seal{}, fmt.Errorf("%w: seal head is %d bytes, want %d", persist.ErrCorrupt, len(head), HeadSize)
	}
	copy(s.Head[:], head)
	if r.Len() != 0 {
		return Seal{}, fmt.Errorf("%w: %d trailing bytes after seal", persist.ErrCorrupt, r.Len())
	}
	return s, nil
}

// Encode serializes the proof.
func (p *Proof) Encode() []byte {
	var buf bytes.Buffer
	pw := persist.NewWriter(&buf)
	pw.Magic(proofMagic, proofVersion)
	pw.U64(p.BatchID)
	pw.U32(p.Index)
	pw.Bytes(p.Leaf[:])
	pw.U32(uint32(len(p.Path)))
	for _, s := range p.Path {
		pw.Bool(s.Left)
		pw.Bytes(s.Hash[:])
	}
	return buf.Bytes()
}

// DecodeProof parses an inclusion proof, rejecting oversize paths and
// trailing garbage.
func DecodeProof(b []byte) (*Proof, error) {
	r := bytes.NewReader(b)
	pr := persist.NewReader(r)
	if v := pr.Magic(proofMagic); pr.Err() == nil && v != proofVersion {
		return nil, fmt.Errorf("%w: proof version %d, want %d", persist.ErrCorrupt, v, proofVersion)
	}
	var p Proof
	p.BatchID = pr.U64()
	p.Index = pr.U32()
	leaf := pr.Bytes()
	n := pr.U32()
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if len(leaf) != HeadSize {
		return nil, fmt.Errorf("%w: proof leaf is %d bytes, want %d", persist.ErrCorrupt, len(leaf), HeadSize)
	}
	copy(p.Leaf[:], leaf)
	if n > MaxProofSteps {
		return nil, fmt.Errorf("%w: proof path has %d steps, cap %d", persist.ErrCorrupt, n, MaxProofSteps)
	}
	for i := uint32(0); i < n; i++ {
		var s ProofStep
		s.Left = pr.Bool()
		h := pr.Bytes()
		if err := pr.Err(); err != nil {
			return nil, err
		}
		if len(h) != HeadSize {
			return nil, fmt.Errorf("%w: proof step %d hash is %d bytes, want %d", persist.ErrCorrupt, i, len(h), HeadSize)
		}
		copy(s.Hash[:], h)
		p.Path = append(p.Path, s)
	}
	if err := pr.Err(); err != nil {
		return nil, err
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after proof", persist.ErrCorrupt, r.Len())
	}
	return &p, nil
}

// Receipt is a signed record that a ranking over [From, To] was emitted
// while the WAL chain stood at Head: ListHash commits the exact ranked
// list, Head anchors it to the sealed log prefix, and Sig binds both
// under the daemon's audit key. Receipts are appended to the WAL as
// their own record type, so the chain in turn covers the receipt.
type Receipt struct {
	From     int64
	To       int64
	ListHash Head
	Head     Head
	Sig      [SigSize]byte
}

// Encode serializes the receipt.
func (rc *Receipt) Encode() []byte {
	var buf bytes.Buffer
	pw := persist.NewWriter(&buf)
	pw.Magic(rcptMagic, rcptVersion)
	pw.I64(rc.From)
	pw.I64(rc.To)
	pw.Bytes(rc.ListHash[:])
	pw.Bytes(rc.Head[:])
	pw.Bytes(rc.Sig[:])
	return buf.Bytes()
}

// DecodeReceipt parses a receipt, rejecting trailing garbage.
func DecodeReceipt(b []byte) (Receipt, error) {
	r := bytes.NewReader(b)
	pr := persist.NewReader(r)
	if v := pr.Magic(rcptMagic); pr.Err() == nil && v != rcptVersion {
		return Receipt{}, fmt.Errorf("%w: receipt version %d, want %d", persist.ErrCorrupt, v, rcptVersion)
	}
	var rc Receipt
	rc.From = pr.I64()
	rc.To = pr.I64()
	lh := pr.Bytes()
	hd := pr.Bytes()
	sig := pr.Bytes()
	if err := pr.Err(); err != nil {
		return Receipt{}, err
	}
	if len(lh) != HeadSize || len(hd) != HeadSize || len(sig) != SigSize {
		return Receipt{}, fmt.Errorf("%w: receipt field sizes %d/%d/%d, want %d/%d/%d",
			persist.ErrCorrupt, len(lh), len(hd), len(sig), HeadSize, HeadSize, SigSize)
	}
	copy(rc.ListHash[:], lh)
	copy(rc.Head[:], hd)
	copy(rc.Sig[:], sig)
	if r.Len() != 0 {
		return Receipt{}, fmt.Errorf("%w: %d trailing bytes after receipt", persist.ErrCorrupt, r.Len())
	}
	return rc, nil
}
