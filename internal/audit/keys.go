package audit

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Key files live beside the data they attest. The private seed never
// leaves the serving host; verifiers need only the public half, pinned
// out of band by fingerprint.
const (
	// KeyFileName holds the hex-encoded 32-byte ed25519 seed (mode 0600).
	KeyFileName = "audit.key"
	// PubFileName holds the hex-encoded 32-byte ed25519 public key.
	PubFileName = "audit.pub"
)

// Signing contexts give each signed artifact its own domain, so a
// signature over one kind of object can never be replayed as another.
const (
	ContextSnapshot = "acobe/audit/snapshot/v1"
	ContextManifest = "acobe/audit/manifest/v1"
	ContextReceipt  = "acobe/audit/receipt/v1"
)

// LoadOrCreateKey returns the data directory's audit key, generating and
// persisting a fresh one (plus its public half) on first use.
func LoadOrCreateKey(dir string) (ed25519.PrivateKey, error) {
	keyPath := filepath.Join(dir, KeyFileName)
	if b, err := os.ReadFile(keyPath); err == nil {
		seed, err := hex.DecodeString(strings.TrimSpace(string(b)))
		if err != nil || len(seed) != ed25519.SeedSize {
			return nil, fmt.Errorf("audit: malformed key file %s", keyPath)
		}
		return ed25519.NewKeyFromSeed(seed), nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	seed := make([]byte, ed25519.SeedSize)
	if _, err := rand.Read(seed); err != nil {
		return nil, err
	}
	priv := ed25519.NewKeyFromSeed(seed)
	if err := os.WriteFile(keyPath, []byte(hex.EncodeToString(seed)+"\n"), 0o600); err != nil {
		return nil, err
	}
	pub := priv.Public().(ed25519.PublicKey)
	if err := os.WriteFile(filepath.Join(dir, PubFileName), []byte(hex.EncodeToString(pub)+"\n"), 0o644); err != nil {
		return nil, err
	}
	return priv, nil
}

// LoadPublicKey reads a hex-encoded ed25519 public key file (the
// dir/audit.pub a daemon wrote, or an out-of-band pinned copy).
func LoadPublicKey(path string) (ed25519.PublicKey, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	pub, err := hex.DecodeString(strings.TrimSpace(string(b)))
	if err != nil || len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("audit: malformed public key file %s", path)
	}
	return ed25519.PublicKey(pub), nil
}

// Fingerprint is a short, human-checkable identity for a public key:
// the first 16 hex digits of SHA256(pub). Operators pin this out of
// band; acobed -verify prints it so a swapped key is visible.
func Fingerprint(pub ed25519.PublicKey) string {
	sum := sha256.Sum256(pub)
	return hex.EncodeToString(sum[:8])
}

// contextDigest hashes (context, parts...) with unambiguous framing:
// each part is length-prefixed, so no two distinct part lists collide.
func contextDigest(context string, parts ...[]byte) [32]byte {
	h := sha256.New()
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(context)))
	h.Write(n[:])
	h.Write([]byte(context))
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// SignContext signs the framed digest of (context, parts...).
func SignContext(priv ed25519.PrivateKey, context string, parts ...[]byte) [SigSize]byte {
	d := contextDigest(context, parts...)
	var sig [SigSize]byte
	copy(sig[:], ed25519.Sign(priv, d[:]))
	return sig
}

// VerifyContext checks a SignContext signature.
func VerifyContext(pub ed25519.PublicKey, sig [SigSize]byte, context string, parts ...[]byte) bool {
	d := contextDigest(context, parts...)
	return ed25519.Verify(pub, d[:], sig[:])
}

// Sign stamps rc.Sig over (From, To, ListHash, Head) under the receipt
// context.
func (rc *Receipt) Sign(priv ed25519.PrivateKey) {
	rc.Sig = SignContext(priv, ContextReceipt, i64le(rc.From), i64le(rc.To), rc.ListHash[:], rc.Head[:])
}

// VerifySig checks the receipt's signature.
func (rc *Receipt) VerifySig(pub ed25519.PublicKey) bool {
	return VerifyContext(pub, rc.Sig, ContextReceipt, i64le(rc.From), i64le(rc.To), rc.ListHash[:], rc.Head[:])
}

func i64le(v int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	return b[:]
}
