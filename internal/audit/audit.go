// Package audit is the cryptographic tamper-evidence layer under the
// serving daemon's persistence: a per-segment SHA-256 hash chain over WAL
// frames (sealed into segment trailers and chained through segment
// headers), per-batch Merkle roots over event payloads with inclusion
// proofs, and ed25519 signatures over snapshots, manifests, and emitted
// rank receipts.
//
// The CRC32 framing from the persistence layer defends against
// *accidents* — torn writes, bit rot. It defends against nothing else: a
// CRC is recomputable by anyone who can touch the disk. This package adds
// evidence against *adversaries who touch the log after the fact*: every
// appended frame folds into a running SHA-256 chain, so rewriting any
// sealed byte (even with the CRC fixed up) breaks either a seal, the next
// segment's header link, or a signed snapshot/manifest attestation.
//
// Threat model (see DESIGN.md §15): the chain detects post-hoc
// modification of sealed data by a party without the signing key. It does
// NOT defend against a live root on the serving host, who holds the key
// and can re-seal a rewritten history. Verifiers must therefore obtain
// the public key out of band and pin its fingerprint.
package audit

import (
	"crypto/sha256"
	"hash"
)

// HeadSize is the byte width of a chain head (SHA-256).
const HeadSize = 32

// Head is a hash-chain head: the SHA-256 fold of everything appended so
// far. The zero Head is the chain's genesis value (first segment, empty
// prefix).
type Head [HeadSize]byte

// Chain is the running fold over appended WAL frames:
//
//	head' = SHA256(head || frame)           for plain frames
//	head' = SHA256(head || frame || root)   for event frames, committing
//	                                        the batch Merkle root
//
// where frame is the full encoded frame (length, CRC, payload). The
// digest and output buffer are retained across folds, so the append-path
// cost is 0 allocs/op.
//
// A Chain is not safe for concurrent use; each WAL stream owns one.
type Chain struct {
	head Head
	h    hash.Hash
	sum  [HeadSize]byte
	// rt stages FoldWithRoot's root in a field: slicing the [32]byte
	// parameter for the interface Write call would make it escape (one
	// heap allocation per fold).
	rt [HeadSize]byte
}

// NewChain starts a chain at prev — the zero Head for a fresh log, or
// the previous segment's sealed head when continuing across a rotation.
func NewChain(prev Head) *Chain {
	return &Chain{head: prev, h: sha256.New()}
}

// Head returns the current chain head.
func (c *Chain) Head() Head { return c.head }

// Reset rewinds the chain to prev, reusing the digest.
func (c *Chain) Reset(prev Head) { c.head = prev }

// Fold absorbs one encoded frame.
func (c *Chain) Fold(frame []byte) {
	c.h.Reset()
	c.h.Write(c.head[:])
	c.h.Write(frame)
	c.h.Sum(c.sum[:0])
	c.head = c.sum
}

// FoldWithRoot absorbs one encoded event frame together with the Merkle
// root of its batch, committing the root into the chain at append time.
func (c *Chain) FoldWithRoot(frame []byte, root Head) {
	c.rt = root
	c.h.Reset()
	c.h.Write(c.head[:])
	c.h.Write(frame)
	c.h.Write(c.rt[:])
	c.h.Sum(c.sum[:0])
	c.head = c.sum
}
