// Package dga implements a date-seeded domain generation algorithm in the
// style of newGOZ (the Gameover Zeus / Peer-to-Peer Zeus family), which the
// paper's botnet case study uses to produce failing DNS lookups: each day
// the malware derives a deterministic list of candidate rendezvous domains
// from the date and queries them until one resolves. Because virtually
// none are registered, the infected host emits a burst of NXDOMAIN
// failures to never-before-seen domains — exactly the "failure requests to
// a new domain" signal ACOBE's HTTP aspect measures.
package dga

import (
	"fmt"
	"time"
)

// TLDs cycled through by the generator, mirroring the GOZ family's use of
// several gTLDs.
var TLDs = []string{"com", "net", "org", "biz", "info"}

// Generator derives daily domain lists. The zero value uses seed 0;
// construct with New to mimic a specific campaign.
type Generator struct {
	seed uint32
}

// New returns a generator for one campaign seed. Bots of the same campaign
// (same seed) generate identical lists, which is how the botmaster and the
// bots rendezvous.
func New(seed uint32) *Generator { return &Generator{seed: seed} }

// mix is the 32-bit mixing core: a multiply/xor-shift hash in the spirit
// of the newGOZ implementation's repeated integer hashing.
func mix(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return x
}

// DomainsForDate returns the first count candidate domains for the given
// date. Length and characters are fully determined by (seed, date, index).
func (g *Generator) DomainsForDate(date time.Time, count int) []string {
	if count <= 0 {
		return nil
	}
	y, m, d := date.UTC().Date()
	base := g.seed ^ uint32(y)<<16 ^ uint32(m)<<8 ^ uint32(d)
	out := make([]string, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, g.domain(base, uint32(i)))
	}
	return out
}

// Domain returns the idx-th candidate domain for the date.
func (g *Generator) Domain(date time.Time, idx int) string {
	y, m, d := date.UTC().Date()
	base := g.seed ^ uint32(y)<<16 ^ uint32(m)<<8 ^ uint32(d)
	return g.domain(base, uint32(idx))
}

func (g *Generator) domain(base, idx uint32) string {
	h := mix(base + idx*0x9e3779b9)
	// newGOZ generates second-level labels 12..23 characters long.
	length := 12 + int(h%12)
	label := make([]byte, 0, length)
	state := h
	for j := 0; j < length; j++ {
		state = mix(state + uint32(j))
		label = append(label, byte('a'+state%26))
	}
	tld := TLDs[mix(h+0x51ed)%uint32(len(TLDs))]
	return fmt.Sprintf("%s.%s", string(label), tld)
}
