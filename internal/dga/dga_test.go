package dga

import (
	"regexp"
	"testing"
	"testing/quick"
	"time"
)

var domainRe = regexp.MustCompile(`^[a-z]{12,23}\.(com|net|org|biz|info)$`)

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func TestDomainFormat(t *testing.T) {
	g := New(1)
	for _, dom := range g.DomainsForDate(date(2011, 2, 2), 200) {
		if !domainRe.MatchString(dom) {
			t.Errorf("malformed domain %q", dom)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(7).DomainsForDate(date(2011, 2, 2), 50)
	b := New(7).DomainsForDate(date(2011, 2, 2), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("domain %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestBotsRendezvous(t *testing.T) {
	// Two bots of the same campaign generate the same list — that is the
	// rendezvous property; different campaigns must not collide.
	same := New(42).Domain(date(2011, 2, 3), 0)
	if got := New(42).Domain(date(2011, 2, 3), 0); got != same {
		t.Error("same campaign diverged")
	}
	if got := New(43).Domain(date(2011, 2, 3), 0); got == same {
		t.Error("different campaigns collided on index 0")
	}
}

func TestDaysDiffer(t *testing.T) {
	g := New(1)
	d1 := g.DomainsForDate(date(2011, 2, 2), 30)
	d2 := g.DomainsForDate(date(2011, 2, 3), 30)
	same := 0
	for i := range d1 {
		if d1[i] == d2[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/30 domains identical across days", same)
	}
}

func TestDomainsWithinDayAreDistinct(t *testing.T) {
	g := New(9)
	seen := map[string]bool{}
	for _, dom := range g.DomainsForDate(date(2011, 2, 2), 500) {
		if seen[dom] {
			t.Fatalf("duplicate domain %s within one day", dom)
		}
		seen[dom] = true
	}
}

func TestCountHandling(t *testing.T) {
	g := New(1)
	if got := g.DomainsForDate(date(2011, 2, 2), 0); got != nil {
		t.Errorf("count 0 returned %v", got)
	}
	if got := g.DomainsForDate(date(2011, 2, 2), -3); got != nil {
		t.Errorf("negative count returned %v", got)
	}
	if got := len(g.DomainsForDate(date(2011, 2, 2), 7)); got != 7 {
		t.Errorf("asked 7, got %d", got)
	}
}

func TestDomainIndexMatchesList(t *testing.T) {
	if err := quick.Check(func(seed uint32, idx uint8) bool {
		g := New(seed)
		d := date(2011, 2, 2)
		list := g.DomainsForDate(d, int(idx)+1)
		return g.Domain(d, int(idx)) == list[idx]
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
