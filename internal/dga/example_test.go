package dga_test

import (
	"fmt"
	"time"

	"acobe/internal/dga"
)

// Example shows the rendezvous property the botnet case study relies on:
// every bot of a campaign derives the same candidate domains from the
// date, so the defender sees a burst of NXDOMAIN lookups to domains that
// never appeared before — and that change every day.
func Example() {
	campaign := dga.New(0x60df)
	day1 := time.Date(2011, 2, 2, 0, 0, 0, 0, time.UTC)
	day2 := day1.AddDate(0, 0, 1)

	a := campaign.Domain(day1, 0)
	b := dga.New(0x60df).Domain(day1, 0) // another bot, same campaign
	fmt.Println("bots agree:", a == b)
	fmt.Println("days differ:", campaign.Domain(day1, 0) != campaign.Domain(day2, 0))
	// Output:
	// bots agree: true
	// days differ: true
}
