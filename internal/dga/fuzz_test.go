package dga

import (
	"strings"
	"testing"
	"time"
)

// FuzzDomains checks the generator's contract for every (seed, date, count):
// the output is well-formed (12–23 char lowercase label plus a known TLD),
// sized as requested, deterministic, and consistent between DomainsForDate
// and the single-domain Domain accessor — the rendezvous property bots and
// botmaster rely on.
func FuzzDomains(f *testing.F) {
	f.Add(uint32(0), int64(1262476800), 10)   // campaign 0, 2010-01-03
	f.Add(uint32(0x1A2B), int64(0), 1)        // epoch
	f.Add(uint32(7), int64(-86400), 3)        // pre-epoch date
	f.Add(uint32(0xFFFFFFFF), int64(1), 1000) // max seed, large burst
	f.Add(uint32(42), int64(4102444800), 0)   // count 0 → nil
	f.Fuzz(func(t *testing.T, seed uint32, unixSec int64, count int) {
		if count > 4096 {
			count = 4096 // bound the work, not the property
		}
		g := New(seed)
		date := time.Unix(unixSec, 0)
		domains := g.DomainsForDate(date, count)
		if count <= 0 {
			if domains != nil {
				t.Fatalf("count %d: want nil, got %d domains", count, len(domains))
			}
			return
		}
		if len(domains) != count {
			t.Fatalf("want %d domains, got %d", count, len(domains))
		}
		for i, dom := range domains {
			label, tld, ok := strings.Cut(dom, ".")
			if !ok {
				t.Fatalf("domain %q has no TLD separator", dom)
			}
			if len(label) < 12 || len(label) > 23 {
				t.Fatalf("label %q has length %d, want 12..23", label, len(label))
			}
			for _, c := range label {
				if c < 'a' || c > 'z' {
					t.Fatalf("label %q contains non-lowercase char %q", label, c)
				}
			}
			valid := false
			for _, known := range TLDs {
				if tld == known {
					valid = true
					break
				}
			}
			if !valid {
				t.Fatalf("domain %q uses unknown TLD %q", dom, tld)
			}
			if single := g.Domain(date, i); single != dom {
				t.Fatalf("Domain(date, %d) = %q, DomainsForDate[%d] = %q", i, single, i, dom)
			}
		}
		again := g.DomainsForDate(date, count)
		for i := range domains {
			if domains[i] != again[i] {
				t.Fatalf("generator not deterministic at index %d: %q vs %q", i, domains[i], again[i])
			}
		}
	})
}
