package baseline

import (
	"testing"

	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/features"
	"acobe/internal/mathx"
)

// tinyTable builds a 4-user table with stable weekday patterns and one
// user whose pattern breaks during the last 10 days.
func tinyTable(t *testing.T) (*features.Table, *features.Table, []int) {
	t.Helper()
	users := []string{"u1", "u2", "u3", "anomalous"}
	tab, err := features.NewTable(users, features.TrackedFeatures(), 2, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(4)
	fVisit := tab.FeatureIndex(features.FeatCoarseHTTPVisit)
	fUpload := tab.FeatureIndex(features.FeatCoarseHTTPUpload)
	fLogon := tab.FeatureIndex(features.FeatCoarseLogon)
	for u := range users {
		for d := cert.Day(0); d <= 99; d++ {
			if d.IsWeekend() {
				continue
			}
			tab.Add(u, fVisit, 0, d, float64(rng.Poisson(20)))
			tab.Add(u, fLogon, 0, d, float64(rng.Poisson(2)))
			tab.Add(u, fUpload, 0, d, float64(rng.Poisson(0.3)))
		}
	}
	// Anomaly: the last user uploads heavily during the final 10 days.
	for d := cert.Day(90); d <= 99; d++ {
		tab.Add(3, fUpload, 0, d, 25)
	}
	group, err := tab.GroupTable([]string{"g"}, []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	return tab, group, []int{0, 0, 0, 0}
}

func fastAE(dim int) autoencoder.Config {
	cfg := autoencoder.FastConfig(dim)
	cfg.Hidden = []int{16, 8}
	cfg.Epochs = 20
	return cfg
}

func TestNewValidation(t *testing.T) {
	tab, group, ug := tinyTable(t)
	if _, err := New(Config{}, tab, group, ug); err == nil {
		t.Error("no error for empty aspects")
	}
	cfg := NewOneDayConfig()
	if _, err := New(cfg, tab, nil, nil); err == nil {
		t.Error("no error for missing group table")
	}
	cfg = NewBaselineConfig()
	cfg.Aspects = []features.Aspect{{Name: "x", Features: []string{"missing"}}}
	if _, err := New(cfg, tab, group, ug); err == nil {
		t.Error("no error for unknown feature")
	}
}

func TestScoreBeforeFit(t *testing.T) {
	tab, group, ug := tinyTable(t)
	cfg := NewBaselineConfig()
	cfg.AEConfig = fastAE
	m, err := New(cfg, tab, group, ug)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Score(0, 10); err == nil {
		t.Error("no error scoring before fit")
	}
}

func TestBaselineDetectsBlatantAnomaly(t *testing.T) {
	tab, group, ug := tinyTable(t)
	cfg := NewBaselineConfig()
	cfg.AEConfig = fastAE
	// Only the http aspect carries signal in this tiny fixture (device,
	// file and logon counts are all zero), so evaluate it alone — zero
	// aspects rank users arbitrarily and would just add noise.
	cfg.Aspects = []features.Aspect{features.BaselineAspects()[2]}
	cfg.N = 1
	m, err := New(cfg, tab, group, ug)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Fit(0, 79); err != nil {
		t.Fatal(err)
	}
	list, err := m.Investigate(80, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 4 {
		t.Fatalf("list has %d entries", len(list))
	}
	// The single-day baseline *can* catch a massive single-feature burst.
	if list[0].User != "anomalous" {
		t.Errorf("top of list is %s, want anomalous (list: %+v)", list[0].User, list)
	}
}

func TestOneDayIncludesGroupFeatures(t *testing.T) {
	tab, group, ug := tinyTable(t)
	base, err := New(NewBaseFFConfig(), tab, group, ug)
	if err != nil {
		t.Fatal(err)
	}
	withGroup, err := New(NewOneDayConfig(), tab, group, ug)
	if err != nil {
		t.Fatal(err)
	}
	// The group variant's vectors are twice as wide; exercised via the
	// internal vector builder after computing norms.
	base.computeNorms(0, 50)
	withGroup.computeNorms(0, 50)
	vBase := base.vector(base.models[0], 0, 10)
	vGroup := withGroup.vector(withGroup.models[0], 0, 10)
	if len(vGroup) != 2*len(vBase) {
		t.Errorf("group vector %d, base vector %d", len(vGroup), len(vBase))
	}
}

func TestNormalization(t *testing.T) {
	tab, group, ug := tinyTable(t)
	cfg := NewBaselineConfig()
	cfg.AEConfig = fastAE
	m, err := New(cfg, tab, group, ug)
	if err != nil {
		t.Fatal(err)
	}
	m.computeNorms(0, 79)
	// Normalized training-period values must lie in [0, 1].
	for _, am := range m.models {
		for u := range m.users {
			for d := cert.Day(0); d <= 79; d++ {
				for _, v := range m.vector(am, u, d) {
					if v < 0 || v > 1 {
						t.Fatalf("normalized value %g outside [0,1]", v)
					}
				}
			}
		}
	}
}

func TestAspectsExposed(t *testing.T) {
	tab, group, ug := tinyTable(t)
	m, err := New(NewBaselineConfig(), tab, group, ug)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Aspects()
	want := []string{"device", "file", "http", "logon"}
	if len(got) != len(want) {
		t.Fatalf("aspects %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("aspect %d = %s, want %s", i, got[i], want[i])
		}
	}
	if len(m.Users()) != 4 {
		t.Errorf("users %v", m.Users())
	}
}
