// Package baseline re-implements the comparison models of the paper's
// evaluation (Section V-C):
//
//   - Baseline — Liu et al. 2018: per-aspect autoencoders over
//     coarse-grained, unweighted, normalized single-day activity counts in
//     four aspects (device, file, http, logon), no group features.
//   - Base-FF — the Baseline model upgraded with ACOBE's fine-grained
//     features (new-ops and upload file types), still single-day.
//   - 1-Day — the paper's single-day ablation of ACOBE: same aspects and
//     group embedding, but features are normalized occurrences instead of
//     windowed deviations.
//
// The original Baseline splits each day into 24 hourly time-frames; the
// paper notes the number of time-frames "contributes negligible
// performance difference for this dataset", and this implementation uses
// the same two work/off frames as ACOBE so every model shares one
// measurement table.
//
// The remaining ablations (No-Group, All-in-1) need no code here: they are
// core.Config variants (IncludeGroup=false, features.AllInOneAspect).
package baseline

import (
	"context"
	"fmt"

	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/features"
	"acobe/internal/nn"
)

// Config parameterizes a single-day reconstruction model.
type Config struct {
	// Aspects are the behavioral aspects (one autoencoder each).
	Aspects []features.Aspect
	// IncludeGroup appends the group-average normalized features to each
	// vector (used by the 1-Day ACOBE ablation; off for Baseline/Base-FF).
	IncludeGroup bool
	// AEConfig builds the autoencoder configuration for an input width.
	// Defaults to autoencoder.FastConfig.
	AEConfig func(inputDim int) autoencoder.Config
	// N is the critic vote count used by Investigate.
	N int
	// Seed differentiates per-aspect model initialization.
	Seed uint64
}

// NewBaselineConfig returns the Liu et al. Baseline configuration.
func NewBaselineConfig() Config {
	return Config{Aspects: features.BaselineAspects(), N: 3, Seed: 11}
}

// NewBaseFFConfig returns Base-FF: the Baseline model with ACOBE's
// fine-grained features.
func NewBaseFFConfig() Config {
	return Config{Aspects: features.ACOBEAspects(), N: 3, Seed: 13}
}

// NewOneDayConfig returns the paper's 1-Day ablation of ACOBE: fine
// features and group embedding, single-day reconstruction.
func NewOneDayConfig() Config {
	return Config{Aspects: features.ACOBEAspects(), IncludeGroup: true, N: 3, Seed: 17}
}

// aspectModel is one aspect's feature slice and autoencoder.
type aspectModel struct {
	aspect  features.Aspect
	featIdx []int
	ae      *autoencoder.Autoencoder
}

// Model is a single-day reconstruction detector.
type Model struct {
	cfg       Config
	table     *features.Table
	group     *features.Table
	userGroup []int
	users     []string
	models    []*aspectModel

	// norms[u][f*frames+frame] is the user's training-period maximum used
	// to normalize counts into roughly [0, 1].
	norms  [][]float64
	gnorms [][]float64
	fitted bool
}

// New builds an untrained model over the measurement table. group is the
// per-group average table (one row per group, with userGroup[u] selecting
// user u's row) and may be nil unless cfg.IncludeGroup is set.
func New(cfg Config, table, group *features.Table, userGroup []int) (*Model, error) {
	if len(cfg.Aspects) == 0 {
		return nil, fmt.Errorf("baseline: no aspects configured")
	}
	if cfg.AEConfig == nil {
		cfg.AEConfig = autoencoder.FastConfig
	}
	if cfg.N < 1 {
		cfg.N = 1
	}
	if cfg.IncludeGroup && group == nil {
		return nil, fmt.Errorf("baseline: IncludeGroup set but no group table given")
	}
	if !cfg.IncludeGroup {
		group = nil
	}
	if group != nil && userGroup == nil {
		userGroup = make([]int, len(table.Users()))
	}
	if group != nil && len(userGroup) != len(table.Users()) {
		return nil, fmt.Errorf("baseline: userGroup has %d entries for %d users", len(userGroup), len(table.Users()))
	}
	m := &Model{cfg: cfg, table: table, group: group, userGroup: userGroup, users: table.Users()}
	for i, aspect := range cfg.Aspects {
		am := &aspectModel{aspect: aspect}
		for _, name := range aspect.Features {
			fi := table.FeatureIndex(name)
			if fi < 0 {
				return nil, fmt.Errorf("baseline: aspect %s feature %q missing from table", aspect.Name, name)
			}
			am.featIdx = append(am.featIdx, fi)
		}
		dim := len(am.featIdx) * table.Frames()
		if group != nil {
			dim *= 2
		}
		aeCfg := cfg.AEConfig(dim)
		aeCfg.Seed = cfg.Seed + uint64(i)*0x9e37
		ae, err := autoencoder.New(aeCfg)
		if err != nil {
			return nil, fmt.Errorf("baseline: aspect %s: %w", aspect.Name, err)
		}
		am.ae = ae
		m.models = append(m.models, am)
	}
	return m, nil
}

// Users returns the scored user IDs.
func (m *Model) Users() []string { return m.users }

// Aspects returns the aspect names in model order.
func (m *Model) Aspects() []string {
	out := make([]string, len(m.models))
	for i, am := range m.models {
		out[i] = am.aspect.Name
	}
	return out
}

// vector builds the normalized single-day feature vector of user u on day d
// for one aspect.
func (m *Model) vector(am *aspectModel, u int, d cert.Day) []float64 {
	frames := m.table.Frames()
	dim := len(am.featIdx) * frames
	if m.group != nil {
		dim *= 2
	}
	out := make([]float64, 0, dim)
	for _, f := range am.featIdx {
		for frame := 0; frame < frames; frame++ {
			out = append(out, m.table.At(u, f, frame, d)/m.norms[u][f*frames+frame])
		}
	}
	if m.group != nil {
		g := m.userGroup[u]
		for _, f := range am.featIdx {
			for frame := 0; frame < frames; frame++ {
				out = append(out, m.group.At(g, f, frame, d)/m.gnorms[g][f*frames+frame])
			}
		}
	}
	return out
}

// computeNorms scans the training period for per-user per-cell maxima.
func (m *Model) computeNorms(from, to cert.Day) {
	frames := m.table.Frames()
	nf := len(m.table.Features())
	m.norms = make([][]float64, len(m.users))
	for u := range m.users {
		m.norms[u] = make([]float64, nf*frames)
		for f := 0; f < nf; f++ {
			for frame := 0; frame < frames; frame++ {
				maxv := 1.0
				for d := from; d <= to; d++ {
					if v := m.table.At(u, f, frame, d); v > maxv {
						maxv = v
					}
				}
				m.norms[u][f*frames+frame] = maxv
			}
		}
	}
	if m.group != nil {
		m.gnorms = make([][]float64, len(m.group.Users()))
		for g := range m.gnorms {
			m.gnorms[g] = make([]float64, nf*frames)
			for f := 0; f < nf; f++ {
				for frame := 0; frame < frames; frame++ {
					maxv := 1.0
					for d := from; d <= to; d++ {
						if v := m.group.At(g, f, frame, d); v > maxv {
							maxv = v
						}
					}
					m.gnorms[g][f*frames+frame] = maxv
				}
			}
		}
	}
}

// Fit trains every aspect's autoencoder on all users' normalized vectors
// over the training days [from, to].
func (m *Model) Fit(from, to cert.Day) (map[string]float64, error) {
	start, end := m.table.Span()
	if from < start {
		from = start
	}
	if to > end {
		to = end
	}
	if to < from {
		return nil, fmt.Errorf("baseline: empty training range")
	}
	m.computeNorms(from, to)
	losses := make(map[string]float64, len(m.models))
	for _, am := range m.models {
		var rows [][]float64
		for u := range m.users {
			for d := from; d <= to; d++ {
				rows = append(rows, m.vector(am, u, d))
			}
		}
		loss, err := am.ae.Fit(context.Background(), nn.FromRows(rows))
		if err != nil {
			return nil, fmt.Errorf("baseline: fit aspect %s: %w", am.aspect.Name, err)
		}
		losses[am.aspect.Name] = loss
	}
	m.fitted = true
	return losses, nil
}

// Score computes per-day reconstruction errors for every user and aspect
// over [from, to], clamped to the table span.
func (m *Model) Score(from, to cert.Day) ([]*core.ScoreSeries, error) {
	if !m.fitted {
		return nil, fmt.Errorf("baseline: Score before Fit")
	}
	start, end := m.table.Span()
	if from < start {
		from = start
	}
	if to > end {
		to = end
	}
	if to < from {
		return nil, fmt.Errorf("baseline: empty scoring range")
	}
	var out []*core.ScoreSeries
	for _, am := range m.models {
		s := &core.ScoreSeries{Aspect: am.aspect.Name, From: from, To: to}
		for u := range m.users {
			var rows [][]float64
			for d := from; d <= to; d++ {
				rows = append(rows, m.vector(am, u, d))
			}
			scores, err := am.ae.Scores(nn.FromRows(rows))
			if err != nil {
				return nil, fmt.Errorf("baseline: score aspect %s: %w", am.aspect.Name, err)
			}
			s.Scores = append(s.Scores, scores)
		}
		out = append(out, s)
	}
	return out, nil
}

// Investigate aggregates per-aspect scores over the window and runs the
// same critic as ACOBE, so lists are directly comparable.
func (m *Model) Investigate(from, to cert.Day) ([]core.Ranked, error) {
	series, err := m.Score(from, to)
	if err != nil {
		return nil, err
	}
	scoresByAspect := make([][]float64, len(series))
	for i, s := range series {
		scoresByAspect[i] = core.AggregateRelativeMax(s)
	}
	return core.Critic(m.users, scoresByAspect, m.cfg.N), nil
}
