package experiment

import (
	"context"
	"math"
	"testing"

	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/features"
)

// TestScoreBatchChunkParityCERT pins the batched scoring path on real
// CERT data: over the tiny organization's r6.1-s1 split, every user's
// score for every test day must come out bit-identical whether the
// window is scored in one ScoreBatch call or re-scored in chunks of 1,
// 7, or 23 (prime) days. Batching stacks users×days rows into shared
// GEMMs, so any dependence of a score on its batch neighbors — padding,
// blocking, or accumulation-order leakage — would surface here as a
// bit flip on some chunk boundary.
func TestScoreBatchChunkParityCERT(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an ensemble")
	}
	data := tinyData(t)
	sc := data.ScenarioByName("r6.1-s1")
	if sc == nil {
		t.Fatal("scenario r6.1-s1 not found")
	}
	dsStart, dsEnd := data.Span()
	trainFrom, trainTo, testFrom, testTo, err := cert.SplitForScenario(sc, dsStart, dsEnd)
	if err != nil {
		t.Fatal(err)
	}

	p := data.Preset
	cfg := core.Config{
		Deviation:    p.Deviation,
		Aspects:      features.ACOBEAspects(),
		IncludeGroup: true,
		AEConfig: func(dim int) autoencoder.Config {
			c := autoencoder.FastConfig(dim)
			c.Hidden = []int{16, 8}
			c.Epochs = 4
			return c
		},
		TrainStride: 8,
		N:           p.N,
		Seed:        p.Seed,
	}
	ind, group, err := data.Fields(cfg.Deviation)
	if err != nil {
		t.Fatal(err)
	}
	det, err := core.NewDetector(cfg, ind, group, data.UserGroup)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := det.Fit(ctx, trainFrom, trainTo); err != nil {
		t.Fatal(err)
	}

	full, err := det.ScoreBatch(ctx, testFrom, testTo)
	if err != nil {
		t.Fatal(err)
	}
	// Clamping may shift the start; chunk against the span actually scored.
	from, to := full[0].From, full[0].To

	for _, chunk := range []cert.Day{1, 7, 23} {
		for start := from; start <= to; start += chunk {
			end := start + chunk - 1
			if end > to {
				end = to
			}
			part, err := det.ScoreBatch(ctx, start, end)
			if err != nil {
				t.Fatal(err)
			}
			for ai := range full {
				off := int(start - from)
				for u := range full[ai].Scores {
					for i := range part[ai].Scores[u] {
						got := part[ai].Scores[u][i]
						want := full[ai].Scores[u][off+i]
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("chunk=%d aspect %s user %s day %v: chunked %x, full %x",
								chunk, full[ai].Aspect, data.UserIDs[u], start+cert.Day(i),
								math.Float64bits(got), math.Float64bits(want))
						}
					}
				}
			}
		}
	}
}
