package experiment

import (
	"testing"

	"acobe/internal/cert"
)

func TestSweepAggregationNoRetraining(t *testing.T) {
	data := tinyData(t)
	run := syntheticRun(data, ModelACOBE, "r6.1-s2", 0.1)
	results, err := SweepAggregation(data, run)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if r.AUC < 0 || r.AUC > 1 {
			t.Errorf("%s AUC %g", r.Name, r.AUC)
		}
		if r.Insider < 1 {
			t.Errorf("%s insider position %d", r.Name, r.Insider)
		}
	}
	if results[0].Name != "relative-max" || results[1].Name != "absolute-max" {
		t.Errorf("names %s/%s", results[0].Name, results[1].Name)
	}
	// The synthetic boost is uniform, so both aggregators must find it.
	if results[0].AUC != 1 {
		t.Errorf("relative-max AUC %g on a blatant synthetic insider", results[0].AUC)
	}
}

func TestRunScenarioWithPresetRestoresPreset(t *testing.T) {
	data := tinyData(t)
	orig := data.Preset
	p := orig
	p.Deviation.Window = 7
	// An invalid training range forces an error path; the preset must be
	// restored regardless.
	bogus := cert.NewScenario1("bogus", data.UserIDs[0], 5, 10)
	if _, err := RunScenarioWithPreset(data, p, ModelACOBE, bogus); err == nil {
		t.Error("bogus scenario did not error")
	}
	if data.Preset.Deviation != orig.Deviation || data.Preset.Name != orig.Name {
		t.Error("preset not restored after RunScenarioWithPreset")
	}
}
