package experiment

import (
	"bytes"
	"testing"

	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/deviation"
	"acobe/internal/testkit"
)

// goldenPreset pins every scale knob of the golden CERT pipelines
// explicitly (it deliberately does not delegate to TinyPreset, so that
// retuning the test presets cannot silently shift the snapshots). The
// autoencoders are sized for speed, not detection quality: the goldens pin
// behavior, they do not re-prove the paper's claims.
func goldenPreset() Preset {
	return Preset{
		Name:         "golden",
		UsersPerDept: 10,
		Deviation:    deviation.Config{Window: 30, MatrixDays: 14, Delta: 3, Epsilon: 1, Weighted: true},
		AEConfig: func(dim int) autoencoder.Config {
			cfg := autoencoder.FastConfig(dim)
			cfg.Hidden = []int{24, 12}
			cfg.Epochs = 10
			cfg.EarlyStopDelta = 0.002
			cfg.Patience = 2
			return cfg
		},
		TrainStride: 6,
		N:           3,
		Seed:        42,
	}
}

// goldenEnterprisePreset pins the enterprise case-study golden knobs.
func goldenEnterprisePreset() EnterprisePreset {
	return EnterprisePreset{
		Name:      "golden-enterprise",
		Employees: 16,
		Deviation: deviation.Config{Window: 14, MatrixDays: 14, Delta: 3, Epsilon: 1, Weighted: true},
		AEConfig: func(dim int) autoencoder.Config {
			cfg := autoencoder.FastConfig(dim)
			cfg.Hidden = []int{24, 12}
			cfg.Epochs = 10
			cfg.EarlyStopDelta = 0.002
			cfg.Patience = 2
			return cfg
		},
		TrainStride: 6,
		N:           3,
		Seed:        2021,
	}
}

// Package-level caches: the golden tests share one dataset and one run per
// pipeline so the four snapshot tests plus the figure goldens stay cheap.
var (
	goldenCERT     *CERTData
	goldenCERTRuns = map[string]*ScenarioRun{}
	goldenEntRuns  = map[AttackKind]*EnterpriseRun{}
)

func goldenData(t *testing.T) *CERTData {
	t.Helper()
	if goldenCERT == nil {
		data, err := BuildCERTData(goldenPreset())
		if err != nil {
			t.Fatalf("build golden dataset: %v", err)
		}
		goldenCERT = data
	}
	return goldenCERT
}

func goldenRun(t *testing.T, scenario string) *ScenarioRun {
	t.Helper()
	if run, ok := goldenCERTRuns[scenario]; ok {
		return run
	}
	data := goldenData(t)
	sc := data.ScenarioByName(scenario)
	if sc == nil {
		t.Fatalf("scenario %s missing from golden dataset", scenario)
	}
	run, err := RunScenario(data, ModelACOBE, sc)
	if err != nil {
		t.Fatalf("run %s: %v", scenario, err)
	}
	goldenCERTRuns[scenario] = run
	return run
}

func goldenEnterprise(t *testing.T, kind AttackKind) *EnterpriseRun {
	t.Helper()
	if run, ok := goldenEntRuns[kind]; ok {
		return run
	}
	run, err := RunEnterprise(goldenEnterprisePreset(), kind)
	if err != nil {
		t.Fatalf("run enterprise %s: %v", kind, err)
	}
	goldenEntRuns[kind] = run
	return run
}

// serializeList renders a scenario run's investigation list — the output
// ACOBE exists to produce (Algorithm 1) — for exact golden comparison.
// Any change to the ranking, the priorities, or the per-aspect ranks fails
// the snapshot.
func serializeList(run *ScenarioRun) []byte {
	var c testkit.CSV
	c.Comment("model=%v scenario=%s insider=%s", run.Model, run.Scenario, run.Insider)
	c.Comment("train=%v..%v test=%v..%v", run.TrainFrom, run.TrainTo, run.TestFrom, run.TestTo)
	header := []any{"pos", "user", "priority"}
	for _, s := range run.Series {
		header = append(header, "rank:"+s.Aspect)
	}
	c.Row(header...)
	for i, r := range run.List {
		row := []any{i + 1, r.User, r.Priority}
		for _, rk := range r.Ranks {
			row = append(row, rk)
		}
		c.Row(row...)
	}
	return c.Bytes()
}

// serializeScores renders the per-aspect aggregated score vector of every
// user plus the insider's per-day score series, for epsilon golden
// comparison (float series may wiggle in the last bits under refactors
// that reorder arithmetic; orderings above may not).
func serializeScores(data *CERTData, run *ScenarioRun) []byte {
	var c testkit.CSV
	c.Comment("model=%v scenario=%s aggregated=relative-max", run.Model, run.Scenario)
	header := []any{"user"}
	for _, s := range run.Series {
		header = append(header, s.Aspect)
	}
	c.Row(header...)
	agg := make([][]float64, len(run.Series))
	for i, s := range run.Series {
		agg[i] = core.AggregateRelativeMax(s)
	}
	for u, id := range data.UserIDs {
		row := []any{id}
		for i := range agg {
			row = append(row, agg[i][u])
		}
		c.Row(row...)
	}
	uIns := data.Table.UserIndex(run.Insider)
	for _, s := range run.Series {
		c.Floats("insider-daily:"+s.Aspect, s.Scores[uIns])
	}
	return c.Bytes()
}

// serializeEnterpriseRanks renders the case study's ordering output — the
// victim's daily investigation rank — for exact comparison.
func serializeEnterpriseRanks(run *EnterpriseRun) []byte {
	var c testkit.CSV
	c.Comment("attack=%s victim=%s attack-day=%v", run.Attack, run.Victim, run.AttackDay)
	c.Comment("train=%v..%v score=%v..%v employees=%d", run.TrainFrom, run.TrainTo, run.ScoreFrom, run.ScoreTo, len(run.Users))
	c.Ints("victim-daily-rank", run.VictimDailyRank)
	return c.Bytes()
}

// serializeEnterpriseScores renders the victim's per-aspect daily score
// series (the Figure 7 waveforms) for epsilon comparison.
func serializeEnterpriseScores(run *EnterpriseRun) []byte {
	var c testkit.CSV
	c.Comment("attack=%s victim=%s", run.Attack, run.Victim)
	vIdx := -1
	for i, id := range run.Users {
		if id == run.Victim {
			vIdx = i
		}
	}
	for _, s := range run.Series {
		c.Floats("victim:"+s.Aspect, s.Scores[vIdx])
	}
	return c.Bytes()
}

// scoreEps tolerates refactor-induced floating-point wiggle in score
// series while still catching any behavioral change: anomaly scores are
// O(1)-magnitude reconstruction errors, so 1e-9 is ~9 significant digits.
const scoreEps = 1e-9

func TestGoldenCERTScenario1(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline trains the ensemble")
	}
	run := goldenRun(t, "r6.1-s1")
	testkit.Golden(t, "cert_s1_list.csv", serializeList(run))
	testkit.GoldenCSV(t, "cert_s1_scores.csv", serializeScores(goldenData(t), run), scoreEps)
}

func TestGoldenCERTScenario2(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline trains the ensemble")
	}
	run := goldenRun(t, "r6.1-s2")
	testkit.Golden(t, "cert_s2_list.csv", serializeList(run))
	testkit.GoldenCSV(t, "cert_s2_scores.csv", serializeScores(goldenData(t), run), scoreEps)
}

func TestGoldenEnterpriseZeus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline trains the ensemble")
	}
	run := goldenEnterprise(t, AttackZeus)
	testkit.Golden(t, "ent_zeus_ranks.csv", serializeEnterpriseRanks(run))
	testkit.GoldenCSV(t, "ent_zeus_scores.csv", serializeEnterpriseScores(run), scoreEps)
}

func TestGoldenEnterpriseRansomware(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline trains the ensemble")
	}
	run := goldenEnterprise(t, AttackRansomware)
	testkit.Golden(t, "ent_ransomware_ranks.csv", serializeEnterpriseRanks(run))
	testkit.GoldenCSV(t, "ent_ransomware_scores.csv", serializeEnterpriseScores(run), scoreEps)
}

// TestGoldenFig4CSV pins the Figure 4 deviation-matrix CSV without any
// training (it only needs the deviation fields), covering the
// measurement → deviation → figure-serialization chain end to end.
func TestGoldenFig4CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline builds the full dataset")
	}
	heatmaps, err := BuildFig4(goldenData(t))
	if err != nil {
		t.Fatalf("build fig4: %v", err)
	}
	if len(heatmaps) != 4 {
		t.Fatalf("%d heatmaps, want 4 (2 aspects × 2 frames)", len(heatmaps))
	}
	var buf bytes.Buffer
	if err := heatmaps[2].WriteCSV(&buf); err != nil {
		t.Fatalf("serialize heatmap: %v", err)
	}
	testkit.GoldenCSV(t, "fig4_http_work.csv", buf.Bytes(), scoreEps)
}

// TestGoldenFig5CSV pins the Figure 5 waveform CSV emitted by cmd/repro
// for the paper's running example (ACOBE, http aspect, r6.1-s2).
func TestGoldenFig5CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline trains the ensemble")
	}
	run := goldenRun(t, "r6.1-s2")
	w, err := BuildFig5Waveform(goldenData(t), run, "http")
	if err != nil {
		t.Fatalf("build fig5 waveform: %v", err)
	}
	var buf bytes.Buffer
	if err := w.Chart.WriteCSV(&buf); err != nil {
		t.Fatalf("serialize chart: %v", err)
	}
	testkit.GoldenCSV(t, "fig5_acobe_http.csv", buf.Bytes(), scoreEps)
}

// TestGoldenPipelineDeterministic mechanically proves the acceptance
// criterion that two consecutive -update runs produce byte-identical
// golden files: a from-scratch rebuild of the dataset, the detector, and
// the scenario run must serialize to exactly the bytes of the cached run
// (which the snapshot tests above compared against disk).
func TestGoldenPipelineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline trains the ensemble twice")
	}
	first := goldenRun(t, "r6.1-s1")
	wantList := serializeList(first)
	wantScores := serializeScores(goldenData(t), first)

	data2, err := BuildCERTData(goldenPreset())
	if err != nil {
		t.Fatalf("rebuild golden dataset: %v", err)
	}
	run2, err := RunScenario(data2, ModelACOBE, data2.ScenarioByName("r6.1-s1"))
	if err != nil {
		t.Fatalf("rerun scenario: %v", err)
	}
	if !bytes.Equal(serializeList(run2), wantList) {
		t.Error("investigation list serialization differs between two from-scratch runs")
	}
	if !bytes.Equal(serializeScores(data2, run2), wantScores) {
		t.Error("score serialization differs between two from-scratch runs")
	}
}

// TestGoldenRankingSensitivity guards the harness itself: a swapped pair
// in the investigation list must produce different golden bytes, so a
// future ranking regression cannot slip through the exact comparison.
func TestGoldenRankingSensitivity(t *testing.T) {
	run := &ScenarioRun{
		Model:    ModelACOBE,
		Scenario: "synthetic",
		Insider:  "u1",
		Series:   []*core.ScoreSeries{{Aspect: "a", From: cert.Day(0), To: cert.Day(0)}},
		List: []core.Ranked{
			{User: "u1", Ranks: []int{1}, Priority: 1},
			{User: "u2", Ranks: []int{2}, Priority: 2},
		},
	}
	base := append([]byte(nil), serializeList(run)...)
	run.List[0], run.List[1] = run.List[1], run.List[0]
	if bytes.Equal(base, serializeList(run)) {
		t.Fatal("swapping two ranked users did not change the golden serialization")
	}
}
