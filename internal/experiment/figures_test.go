package experiment

import (
	"strings"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/metrics"
)

// syntheticRun fabricates a ScenarioRun with controlled score series so
// the figure builders can be tested without training models.
func syntheticRun(data *CERTData, kind ModelKind, scenario string, insiderBoost float64) *ScenarioRun {
	sc := data.ScenarioByName(scenario)
	insider := sc.UserID()
	from := cert.MustDay("2010-12-01")
	to := from + 29
	days := int(to-from) + 1

	var series []*core.ScoreSeries
	for _, aspect := range []string{"device", "file", "http"} {
		s := &core.ScoreSeries{Aspect: aspect, From: from, To: to}
		for u, id := range data.UserIDs {
			row := make([]float64, days)
			for d := range row {
				row[d] = 0.01 + 0.001*float64((u+d)%7)
				if id == insider && d > days/2 {
					row[d] += insiderBoost
				}
			}
			s.Scores = append(s.Scores, row)
		}
		series = append(series, s)
	}
	scoresByAspect := make([][]float64, len(series))
	for i, s := range series {
		scoresByAspect[i] = core.AggregateRelativeMax(s)
	}
	list := core.Critic(data.UserIDs, scoresByAspect, 3)
	run := &ScenarioRun{
		Model:    kind,
		Scenario: scenario,
		Insider:  insider,
		TestFrom: from,
		TestTo:   to,
		Series:   series,
		List:     list,
	}
	run.Items = itemsFromList(data, list, insider)
	return run
}

func TestBuildFig4(t *testing.T) {
	data := tinyData(t)
	heatmaps, err := BuildFig4(data)
	if err != nil {
		t.Fatal(err)
	}
	// device × 2 frames + http × 2 frames.
	if len(heatmaps) != 4 {
		t.Fatalf("%d heatmaps", len(heatmaps))
	}
	if len(heatmaps[0].Rows) != 2 {
		t.Errorf("device heatmap has %d rows", len(heatmaps[0].Rows))
	}
	if len(heatmaps[2].Rows) != 7 {
		t.Errorf("http heatmap has %d rows", len(heatmaps[2].Rows))
	}
	// The insider's upload-doc row must saturate somewhere in the window
	// (the dark band of Figure 4).
	var sawSaturation bool
	for _, row := range heatmaps[2].Values {
		for _, v := range row {
			if v >= 2.9 {
				sawSaturation = true
			}
		}
	}
	if !sawSaturation {
		t.Error("no saturated deviations in the insider's http heatmap")
	}
}

func TestBuildFig5Waveform(t *testing.T) {
	data := tinyData(t)
	run := syntheticRun(data, ModelACOBE, "r6.1-s2", 0.05)
	w, err := BuildFig5Waveform(data, run, "http")
	if err != nil {
		t.Fatal(err)
	}
	if w.Mean <= 0 || w.Std < 0 {
		t.Errorf("stats mean=%g std=%g", w.Mean, w.Std)
	}
	if len(w.Chart.Series) != 4 {
		t.Fatalf("%d series", len(w.Chart.Series))
	}
	if !strings.HasPrefix(w.Chart.Series[0].Name, "abnormal:") {
		t.Errorf("first series %q", w.Chart.Series[0].Name)
	}
	// The insider's late-window scores must exceed the normal envelope.
	ins := w.Chart.Series[0].Y
	maxNorm := w.Chart.Series[3].Y
	if ins[len(ins)-1] <= maxNorm[len(maxNorm)-1] {
		t.Error("boosted insider does not exceed normal max in the waveform")
	}
	if _, err := BuildFig5Waveform(data, run, "nope"); err == nil {
		t.Error("no error for unknown aspect")
	}
}

func TestBuildFig6(t *testing.T) {
	data := tinyData(t)
	runsByModel := map[ModelKind][]*ScenarioRun{
		ModelACOBE:    {syntheticRun(data, ModelACOBE, "r6.1-s2", 0.1)},
		ModelBaseline: {syntheticRun(data, ModelBaseline, "r6.1-s2", 0.0)},
	}
	res, err := BuildFig6(runsByModel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ROC.Series) != 2 || len(res.PR.Series) != 2 {
		t.Fatalf("series counts %d/%d", len(res.ROC.Series), len(res.PR.Series))
	}
	acobe := res.Curves["ACOBE"]
	baseline := res.Curves["Baseline"]
	if acobe.AUC <= baseline.AUC {
		t.Errorf("boosted ACOBE AUC %.3f not above flat Baseline %.3f", acobe.AUC, baseline.AUC)
	}
	if acobe.AUC != 1 {
		t.Errorf("boosted insider should give AUC 1, got %.3f", acobe.AUC)
	}
	// ROC curves are step functions in [0,1] and end at TPR 1.
	for _, s := range res.ROC.Series {
		last := s.Y[len(s.Y)-1]
		if last != 1 {
			t.Errorf("%s ROC does not reach TPR 1 (%g)", s.Name, last)
		}
	}
	if got := len(res.Summary.RowsOut); got != 2 {
		t.Errorf("summary rows %d", got)
	}
}

func TestBuildFig6N(t *testing.T) {
	data := tinyData(t)
	base := syntheticRun(data, ModelACOBE, "r6.1-s2", 0.1)
	runsByN := make(map[int][]*ScenarioRun)
	for n := 1; n <= 3; n++ {
		rr, err := ReRankRuns(data, []*ScenarioRun{base}, n)
		if err != nil {
			t.Fatal(err)
		}
		runsByN[n] = rr
	}
	res, err := BuildFig6N(runsByN)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PR.Series) != 3 {
		t.Fatalf("%d series", len(res.PR.Series))
	}
	for name := range res.Curves {
		if !strings.HasPrefix(name, "ACOBE-N") {
			t.Errorf("unexpected curve %q", name)
		}
	}
}

func TestBuildFig7(t *testing.T) {
	users := []string{"e1", "e2", "e3"}
	days := 20
	mk := func(aspect string) *core.ScoreSeries {
		s := &core.ScoreSeries{Aspect: aspect, From: 0, To: cert.Day(days - 1)}
		for u := range users {
			row := make([]float64, days)
			for d := range row {
				row[d] = 0.01
				if u == 1 && d >= 10 {
					row[d] = 0.2 // victim spikes after "attack"
				}
			}
			s.Scores = append(s.Scores, row)
		}
		return s
	}
	run := &EnterpriseRun{
		Attack:          AttackZeus,
		Victim:          "e2",
		ScoreFrom:       0,
		ScoreTo:         cert.Day(days - 1),
		AttackDay:       10,
		Users:           users,
		Series:          []*core.ScoreSeries{mk("Command"), mk("HTTP")},
		VictimDailyRank: make([]int, days),
	}
	charts, rank, err := BuildFig7(run)
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != 2 {
		t.Fatalf("%d aspect charts", len(charts))
	}
	for _, c := range charts {
		if len(c.Series) != 3 {
			t.Errorf("chart %q has %d series", c.Title, len(c.Series))
		}
		victimY := c.Series[0].Y
		if victimY[15] <= c.Series[1].Y[15] {
			t.Errorf("victim does not exceed normal mean after attack in %q", c.Title)
		}
	}
	if len(rank.Series) != 1 || len(rank.Series[0].Y) != days {
		t.Error("rank chart malformed")
	}

	run.Victim = "ghost"
	if _, _, err := BuildFig7(run); err == nil {
		t.Error("no error for missing victim")
	}
}

func TestItemsFromListExcludesOtherInsiders(t *testing.T) {
	data := tinyData(t)
	run := syntheticRun(data, ModelACOBE, "r6.1-s2", 0.1)
	// r6.1-s2's items must not contain the other three insiders.
	for _, it := range run.Items {
		if it.User != run.Insider && data.IsScenarioUser(it.User) {
			t.Errorf("other insider %s leaked into items", it.User)
		}
	}
	found := false
	for _, it := range run.Items {
		if it.Positive {
			if it.User != run.Insider {
				t.Errorf("positive item is %s", it.User)
			}
			found = true
		}
	}
	if !found {
		t.Error("insider missing from items")
	}
	var c *metrics.Curves
	var err error
	if c, err = metrics.Evaluate(run.Items); err != nil {
		t.Fatal(err)
	}
	if c.Positives() != 1 {
		t.Errorf("%d positives", c.Positives())
	}
}
