package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/serve"
	"acobe/internal/testkit"
	"acobe/pkg/acobe"
)

// TestServeHTTPGoldenCERTS1 is the online/offline parity gate at the
// system boundary: it replays the golden CERT dataset day by day through
// the serving daemon's real HTTP API (ingest → close → retrain → rank) and
// requires the resulting investigation list to serialize to exactly the
// bytes of the committed batch-pipeline snapshot (cert_s1_list.csv). Any
// drift between the incremental sliding-window path and the batch
// deviation computation — in extraction, group averaging, window math,
// training, or ranking — fails this test. The whole flow runs at every
// shard count in the matrix: partitioning the per-user state must leave
// the ranked bytes untouched.
func TestServeHTTPGoldenCERTS1(t *testing.T) {
	if testing.Short() {
		t.Skip("golden pipeline trains the ensemble")
	}
	for _, shards := range []int{1, 3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			serveHTTPGoldenCERTS1(t, shards)
		})
	}
}

func serveHTTPGoldenCERTS1(t *testing.T, shards int) {
	preset := goldenPreset()
	gcfg := cert.SmallConfig(preset.UsersPerDept)
	gcfg.Seed = preset.Seed
	gen, err := cert.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	deptIdx := make(map[string]int, len(gcfg.Departments))
	for i, d := range gcfg.Departments {
		deptIdx[d] = i
	}
	var (
		users      []string
		membership []int
	)
	for _, u := range gen.Users() {
		users = append(users, u.ID)
		membership = append(membership, deptIdx[u.Department])
	}
	var sc cert.Scenario
	for _, s := range gen.Scenarios() {
		if s.Name() == "r6.1-s1" {
			sc = s
		}
	}
	if sc == nil {
		t.Fatal("scenario r6.1-s1 missing")
	}
	start, end := gen.Span()
	trainFrom, trainTo, testFrom, testTo, err := cert.SplitForScenario(sc, start, end)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := serve.New(serve.Config{
		Users:      users,
		Groups:     gcfg.Departments,
		Membership: membership,
		Start:      start,
		Deviation:  preset.Deviation,
		Shards:     shards,
		DetectorOptions: []acobe.Option{
			acobe.WithAspects(acobe.ACOBEAspects()...),
			acobe.WithModelConfig(preset.AEConfig),
			acobe.WithTrainStride(preset.TrainStride),
			acobe.WithVotes(preset.N),
			acobe.WithSeed(preset.Seed),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()

	post := func(url string, body *bytes.Buffer) {
		t.Helper()
		if body == nil {
			body = &bytes.Buffer{}
		}
		resp, err := client.Post(url, "application/x-ndjson", body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var msg bytes.Buffer
			_, _ = msg.ReadFrom(resp.Body)
			t.Fatalf("%s: %s: %s", url, resp.Status, msg.String())
		}
	}

	// Day-by-day replay over the wire, training once the train span closes.
	err = gen.Stream(func(d cert.Day, events []cert.Event) error {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := range events {
			if err := enc.Encode(serve.Event{Cert: &events[i]}); err != nil {
				return err
			}
		}
		post(fmt.Sprintf("%s/v1/ingest", ts.URL), &buf)
		post(fmt.Sprintf("%s/v1/close?day=%d", ts.URL, d), nil)
		if d == trainTo {
			post(fmt.Sprintf("%s/v1/retrain?from=%d&to=%d&wait=1", ts.URL, trainFrom, trainTo), nil)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := client.Get(fmt.Sprintf("%s/v1/rank?from=%d&to=%d", ts.URL, testFrom, testTo))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank: %s", resp.Status)
	}
	var ranked struct {
		Aspects []string       `json:"aspects"`
		List    []acobe.Ranked `json:"list"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ranked); err != nil {
		t.Fatal(err)
	}

	// Serialize the served list exactly as the batch pipeline serializes
	// its run, then compare against the batch pipeline's committed golden.
	run := &ScenarioRun{
		Model:     ModelACOBE,
		Scenario:  sc.Name(),
		Insider:   sc.UserID(),
		TrainFrom: trainFrom,
		TrainTo:   trainTo,
		TestFrom:  testFrom,
		TestTo:    testTo,
		List:      ranked.List,
	}
	for _, a := range ranked.Aspects {
		run.Series = append(run.Series, &core.ScoreSeries{Aspect: a})
	}
	testkit.Golden(t, "cert_s1_list.csv", serializeList(run))
}
