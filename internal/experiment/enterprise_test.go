package experiment

import (
	"testing"
)

func TestEnterprisePresets(t *testing.T) {
	def := EnterpriseDefaultPreset()
	if def.Employees != 246 {
		t.Errorf("default employees %d, want 246 (the paper's count)", def.Employees)
	}
	if def.Deviation.Window != 14 {
		t.Errorf("window %d, want 14 (two weeks per the paper)", def.Deviation.Window)
	}
	tiny := EnterpriseTinyPreset()
	if tiny.Employees >= def.Employees {
		t.Error("tiny preset not smaller than default")
	}
}

func TestRunEnterpriseUnknownAttack(t *testing.T) {
	if _, err := RunEnterprise(EnterpriseTinyPreset(), AttackKind("nope")); err == nil {
		t.Error("no error for unknown attack kind")
	}
}

// TestRunEnterpriseZeus is the case-study integration test: the victim
// must reach investigation rank 1 right after the attack day.
func TestRunEnterpriseZeus(t *testing.T) {
	if testing.Short() {
		t.Skip("trains six autoencoders")
	}
	p := EnterpriseTinyPreset()
	p.Employees = 20
	run, err := RunEnterprise(p, AttackZeus)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Series) != 6 {
		t.Fatalf("%d aspect series, want 6", len(run.Series))
	}
	attackIdx := int(run.AttackDay - run.ScoreFrom)
	if attackIdx < 0 || attackIdx >= len(run.VictimDailyRank) {
		t.Fatalf("attack day outside score window")
	}
	// Within three days of the attack the victim must hit rank 1.
	hit := false
	for i := attackIdx; i < attackIdx+4 && i < len(run.VictimDailyRank); i++ {
		if run.VictimDailyRank[i] == 1 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("victim never ranked 1 right after the attack: %v",
			run.VictimDailyRank[attackIdx:min(attackIdx+10, len(run.VictimDailyRank))])
	}
}
