package experiment

import (
	"testing"

	"acobe/internal/cert"
	"acobe/internal/metrics"
)

// sharedTinyData caches one tiny dataset across the package's tests.
var sharedTinyData *CERTData

func tinyData(t *testing.T) *CERTData {
	t.Helper()
	if sharedTinyData == nil {
		data, err := BuildCERTData(TinyPreset())
		if err != nil {
			t.Fatalf("build tiny dataset: %v", err)
		}
		sharedTinyData = data
	}
	return sharedTinyData
}

func TestBuildCERTDataShape(t *testing.T) {
	data := tinyData(t)
	if len(data.UserIDs) != 40 {
		t.Errorf("%d users", len(data.UserIDs))
	}
	if len(data.Scenarios) != 4 {
		t.Errorf("%d scenarios", len(data.Scenarios))
	}
	if len(data.ScenarioUser) != 4 {
		t.Errorf("%d scenario users", len(data.ScenarioUser))
	}
	if data.ScenarioUser["r6.1-s2"] != "JPH1910" {
		t.Errorf("r6.1-s2 insider %s", data.ScenarioUser["r6.1-s2"])
	}
	if got := len(data.Group.Users()); got != 4 {
		t.Errorf("%d group rows", got)
	}
	for _, g := range data.UserGroup {
		if g < 0 || g > 3 {
			t.Fatalf("group index %d", g)
		}
	}
	// Labels must exist for every insider.
	for _, insider := range data.ScenarioUser {
		if len(data.LabeledDays[insider]) == 0 {
			t.Errorf("no labels for insider %s", insider)
		}
	}
}

func TestFieldsAreCached(t *testing.T) {
	data := tinyData(t)
	a1, b1, err := data.Fields(data.Preset.Deviation)
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := data.Fields(data.Preset.Deviation)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 || b1 != b2 {
		t.Error("fields recomputed instead of cached")
	}
}

func TestScenarioByName(t *testing.T) {
	data := tinyData(t)
	if data.ScenarioByName("r6.1-s1") == nil {
		t.Error("known scenario missing")
	}
	if data.ScenarioByName("nope") != nil {
		t.Error("unknown scenario found")
	}
}

func TestModelKindStrings(t *testing.T) {
	want := map[ModelKind]string{
		ModelACOBE:    "ACOBE",
		ModelNoGroup:  "No-Group",
		ModelAllInOne: "All-in-1",
		ModelOneDay:   "1-Day",
		ModelBaseline: "Baseline",
		ModelBaseFF:   "Base-FF",
	}
	for kind, name := range want {
		if kind.String() != name {
			t.Errorf("%d → %q, want %q", int(kind), kind.String(), name)
		}
	}
	if len(AllModelKinds()) != 6 {
		t.Error("AllModelKinds incomplete")
	}
}

func TestPoolItemsPrefixesScenario(t *testing.T) {
	runs := []*ScenarioRun{
		{Scenario: "s1", Items: []metrics.Item{{User: "u1", Priority: 1, Positive: true}}},
		{Scenario: "s2", Items: []metrics.Item{{User: "u1", Priority: 2}}},
	}
	pooled := PoolItems(runs)
	if len(pooled) != 2 {
		t.Fatalf("%d pooled items", len(pooled))
	}
	if pooled[0].User != "s1/u1" || pooled[1].User != "s2/u1" {
		t.Errorf("pooled names %s, %s", pooled[0].User, pooled[1].User)
	}
}

func TestRunScenarioUnknownKind(t *testing.T) {
	data := tinyData(t)
	if _, err := RunScenario(data, ModelKind(99), data.Scenarios[0]); err == nil {
		t.Error("no error for unknown model kind")
	}
}

func TestBuildCERTDataFromStoredRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := cert.SmallConfig(5)
	cfg.End = cert.MustDay("2010-06-30") // keep CSV small; spans r6.1-s1? no — just structural check
	cfg.Scenarios = []cert.Scenario{
		cert.NewScenario1("s1", cert.SmallConfig(5).Scenarios[0].UserID(), cert.MustDay("2010-04-05"), cert.MustDay("2010-04-23")),
	}
	gen, err := cert.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cert.WriteCSV(gen, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := cert.ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := BuildCERTDataFromStored(TinyPreset(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.UserIDs) != 20 {
		t.Errorf("%d users from stored dataset", len(data.UserIDs))
	}
	if len(data.Scenarios) != 1 || data.Scenarios[0].Name() != "s1" {
		t.Errorf("scenarios %v", data.Scenarios)
	}
	ws, we := data.Scenarios[0].Window()
	if ws != cert.MustDay("2010-04-05") || we > cert.MustDay("2010-04-23") {
		t.Errorf("reconstructed window %v..%v", ws, we)
	}
	// The measurement table must match an in-memory extraction of the
	// same generator config.
	direct, err := BuildCERTDataFrom(TinyPreset(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := data.Table.UserIndex(data.Scenarios[0].UserID())
	du := direct.Table.UserIndex(data.Scenarios[0].UserID())
	f := data.Table.FeatureIndex("device:connection")
	for d := cert.MustDay("2010-04-05"); d <= cert.MustDay("2010-04-23"); d++ {
		if data.Table.At(u, f, 1, d) != direct.Table.At(du, f, 1, d) {
			t.Fatalf("stored vs direct measurements differ on %v", d)
		}
	}
}

func TestReRankRunsChangesOnlyCritic(t *testing.T) {
	data := tinyData(t)
	run, err := RunScenario(data, ModelBaseline, data.Scenarios[0])
	if err != nil {
		t.Fatal(err)
	}
	rr, err := ReRankRuns(data, []*ScenarioRun{run}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr) != 1 || len(rr[0].List) != len(run.List) {
		t.Fatal("re-rank changed list size")
	}
	if rr[0].Model != run.Model || rr[0].Scenario != run.Scenario {
		t.Error("re-rank lost metadata")
	}
	// N=1 priorities must be ≤ N=3 priorities for every user.
	p3 := map[string]int{}
	for _, r := range run.List {
		p3[r.User] = r.Priority
	}
	for _, r := range rr[0].List {
		if r.Priority > p3[r.User] {
			t.Errorf("user %s: N=1 priority %d > N=3 priority %d", r.User, r.Priority, p3[r.User])
		}
	}
}
