package experiment

import (
	"context"
	"fmt"

	"acobe/internal/attack"
	"acobe/internal/autoencoder"
	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/deviation"
	"acobe/internal/enterprise"
	"acobe/internal/logstore"
)

// AttackKind selects the case-study attack.
type AttackKind string

// The two case-study attacks (Figure 7).
const (
	AttackZeus       AttackKind = "zeus"
	AttackRansomware AttackKind = "ransomware"
)

// EnterprisePreset scales the case-study run.
type EnterprisePreset struct {
	Name      string
	Employees int
	Deviation deviation.Config
	AEConfig  func(inputDim int) autoencoder.Config
	// TrainStride samples training days.
	TrainStride int
	// N is the critic vote count over the six aspects.
	N    int
	Seed uint64
}

// EnterpriseDefaultPreset mirrors the paper: 246 employees, two-week
// window.
func EnterpriseDefaultPreset() EnterprisePreset {
	return EnterprisePreset{
		Name:      "enterprise",
		Employees: 246,
		Deviation: deviation.Config{Window: 14, MatrixDays: 14, Delta: 3, Epsilon: 1, Weighted: true},
		AEConfig: func(dim int) autoencoder.Config {
			cfg := autoencoder.FastConfig(dim)
			cfg.Hidden = []int{64, 32}
			cfg.Epochs = 40
			cfg.EarlyStopDelta = 0.002
			cfg.Patience = 3
			return cfg
		},
		TrainStride: 3,
		N:           3,
		Seed:        2021,
	}
}

// EnterpriseTinyPreset is for unit tests.
func EnterpriseTinyPreset() EnterprisePreset {
	p := EnterpriseDefaultPreset()
	p.Name = "enterprise-tiny"
	p.Employees = 30
	p.AEConfig = func(dim int) autoencoder.Config {
		cfg := autoencoder.FastConfig(dim)
		cfg.Hidden = []int{48, 24}
		cfg.Epochs = 25
		cfg.EarlyStopDelta = 0.002
		cfg.Patience = 3
		return cfg
	}
	p.TrainStride = 4
	return p
}

// EnterpriseRun is the outcome of one case-study evaluation.
type EnterpriseRun struct {
	Attack AttackKind
	Victim string

	TrainFrom, TrainTo cert.Day
	ScoreFrom, ScoreTo cert.Day
	AttackDay          cert.Day

	// Series holds per-aspect daily scores for every employee over
	// [ScoreFrom, ScoreTo] — the Figure 7 waveforms.
	Series []*core.ScoreSeries
	// Users lists employee IDs in score order.
	Users []string
	// VictimDailyRank[i] is the victim's overall investigation rank
	// (1 = top) when the critic runs on day ScoreFrom+i alone.
	VictimDailyRank []int
}

// RunEnterprise simulates the enterprise with the chosen attack injected
// into a fixed victim, trains ACOBE on the six aspects, and scores the
// display window (mid-January through February) so the Jan-26
// environmental change and the Feb-2 attack are both visible.
func RunEnterprise(p EnterprisePreset, kind AttackKind) (*EnterpriseRun, error) {
	cfg := enterprise.DefaultConfig()
	cfg.Employees = p.Employees
	cfg.Seed = p.Seed
	victim := fmt.Sprintf("emp%03d", p.Employees/2)
	switch kind {
	case AttackZeus:
		cfg.Attacks = []enterprise.Attack{attack.NewZeus(victim, enterprise.DefaultAttackDay)}
	case AttackRansomware:
		cfg.Attacks = []enterprise.Attack{attack.NewRansomware(victim, enterprise.DefaultAttackDay)}
	default:
		return nil, fmt.Errorf("experiment: unknown attack kind %q", kind)
	}

	gen, err := enterprise.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	ids := gen.EmployeeIDs()
	start, end := gen.Span()

	// Ingest through the log pipeline (the ELK stand-in), then extract.
	store := logstore.NewStore()
	if err := gen.StreamTo(store, 4); err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	x, err := enterprise.NewExtractor(ids, start, end)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	for _, d := range store.Days() {
		// Concurrent ingestion preserves no within-day order, and the
		// extractor attributes unique/new counts to the frame of a key's
		// first record — canonicalize so runs are reproducible.
		recs := store.DayRecords(d)
		logstore.SortRecords(recs)
		if err := x.Consume(d, recs); err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
	}

	table := x.Table()
	group, err := table.GroupTable([]string{"all"}, make([]int, len(ids)))
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	ind, err := deviation.ComputeField(table, p.Deviation)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	grp, err := deviation.ComputeField(group, p.Deviation)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	det, err := core.NewDetector(core.Config{
		Deviation:    p.Deviation,
		Aspects:      enterprise.Aspects(),
		IncludeGroup: true,
		AEConfig:     p.AEConfig,
		TrainStride:  p.TrainStride,
		N:            p.N,
		Seed:         p.Seed,
	}, ind, grp, nil)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}

	run := &EnterpriseRun{
		Attack:    kind,
		Victim:    victim,
		TrainFrom: start,
		TrainTo:   enterprise.DefaultTrainEnd,
		ScoreFrom: cert.MustDay("2011-01-10"),
		ScoreTo:   end,
		AttackDay: enterprise.DefaultAttackDay,
		Users:     ids,
	}
	if _, err := det.Fit(context.Background(), run.TrainFrom, run.TrainTo); err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	series, err := det.Score(context.Background(), run.ScoreFrom, run.ScoreTo)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	run.Series = series
	run.ScoreFrom = series[0].From // clamped by matrix availability
	run.ScoreTo = series[0].To

	// Daily critic: rank every employee each day from that day's
	// per-aspect scores; record the victim's position.
	vIdx := table.UserIndex(victim)
	days := series[0].DaysCovered()
	run.VictimDailyRank = make([]int, days)
	scoresByAspect := make([][]float64, len(series))
	for i := 0; i < days; i++ {
		for a, s := range series {
			col := make([]float64, len(ids))
			for u := range ids {
				col[u] = s.Scores[u][i]
			}
			scoresByAspect[a] = col
		}
		list := core.Critic(ids, scoresByAspect, p.N)
		for pos, r := range list {
			if r.User == ids[vIdx] {
				run.VictimDailyRank[i] = pos + 1
				break
			}
		}
	}
	return run, nil
}
