package experiment

import (
	"testing"

	"acobe/internal/metrics"
)

// TestSmokeACOBEDetectsInsider is the end-to-end sanity check: on a tiny
// synthesized organization, ACOBE must rank the r6.1-s2 insider near the
// top of the investigation list.
func TestSmokeACOBEDetectsInsider(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end smoke test")
	}
	data, err := BuildCERTData(TinyPreset())
	if err != nil {
		t.Fatalf("build data: %v", err)
	}
	var sc2 = data.Gen.Scenarios()[1] // r6.1-s2 (JPH1910)
	run, err := RunScenario(data, ModelACOBE, sc2)
	if err != nil {
		t.Fatalf("run scenario: %v", err)
	}
	curves, err := metrics.Evaluate(run.Items)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	t.Logf("insider=%s auc=%.4f fpsBeforeTP=%v", run.Insider, curves.AUC, curves.FPsBeforeTP())
	for i, r := range run.List[:5] {
		t.Logf("rank %d: %s priority=%d ranks=%v", i+1, r.User, r.Priority, r.Ranks)
	}
	if curves.AUC < 0.9 {
		t.Errorf("ACOBE AUC = %.4f, want ≥ 0.9", curves.AUC)
	}
}
