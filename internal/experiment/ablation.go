package experiment

import (
	"fmt"

	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/metrics"
)

// AblationResult is one configuration's detection quality on a scenario.
type AblationResult struct {
	Name    string
	AUC     float64
	AP      float64
	FPs     []int
	Insider int // insider's worst-case list position (1 = top)
}

// evalRun reduces one scenario run to an ablation row.
func evalRun(name string, run *ScenarioRun) (AblationResult, error) {
	curves, err := metrics.Evaluate(run.Items)
	if err != nil {
		return AblationResult{}, err
	}
	pos := -1
	for i, it := range metrics.OrderWorstCase(run.Items) {
		if it.Positive {
			pos = i + 1
			break
		}
	}
	return AblationResult{Name: name, AUC: curves.AUC, AP: curves.AP, FPs: curves.FPsBeforeTP(), Insider: pos}, nil
}

// RunScenarioWithPreset is RunScenario with the preset's deviation and
// training knobs overridden — the ablation sweeps' entry point. The
// dataset itself (users, events, measurements) is shared; only the
// derived fields and models change.
func RunScenarioWithPreset(data *CERTData, p Preset, kind ModelKind, sc cert.Scenario) (*ScenarioRun, error) {
	saved := data.Preset
	data.Preset = p
	defer func() { data.Preset = saved }()
	return RunScenario(data, kind, sc)
}

// SweepWindow evaluates ACOBE on one scenario with different history
// window sizes ω (the paper uses 30 for CERT, 14 for the enterprise).
func SweepWindow(data *CERTData, sc cert.Scenario, windows []int) ([]AblationResult, error) {
	var out []AblationResult
	for _, w := range windows {
		p := data.Preset
		p.Deviation.Window = w
		run, err := RunScenarioWithPreset(data, p, ModelACOBE, sc)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep ω=%d: %w", w, err)
		}
		res, err := evalRun(fmt.Sprintf("ω=%d", w), run)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// SweepMatrixDays evaluates ACOBE with different matrix spans 𝒟.
func SweepMatrixDays(data *CERTData, sc cert.Scenario, spans []int) ([]AblationResult, error) {
	var out []AblationResult
	for _, md := range spans {
		p := data.Preset
		p.Deviation.MatrixDays = md
		run, err := RunScenarioWithPreset(data, p, ModelACOBE, sc)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep 𝒟=%d: %w", md, err)
		}
		res, err := evalRun(fmt.Sprintf("D=%d", md), run)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// SweepWeighting evaluates ACOBE with and without the TF-style feature
// weights w = 1/log2(max(std, 2)).
func SweepWeighting(data *CERTData, sc cert.Scenario) ([]AblationResult, error) {
	var out []AblationResult
	for _, weighted := range []bool{true, false} {
		p := data.Preset
		p.Deviation.Weighted = weighted
		run, err := RunScenarioWithPreset(data, p, ModelACOBE, sc)
		if err != nil {
			return nil, fmt.Errorf("experiment: sweep weighted=%v: %w", weighted, err)
		}
		name := "weighted"
		if !weighted {
			name = "unweighted"
		}
		res, err := evalRun(name, run)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// SweepAggregation compares the two window-pooling aggregators (absolute
// max vs day-relative max) on an existing run's score series, re-ranking
// without retraining.
func SweepAggregation(data *CERTData, run *ScenarioRun) ([]AblationResult, error) {
	aggs := []struct {
		name string
		fn   func(*core.ScoreSeries) []float64
	}{
		{"relative-max", core.AggregateRelativeMax},
		{"absolute-max", core.AggregateMax},
	}
	var out []AblationResult
	for _, agg := range aggs {
		scoresByAspect := make([][]float64, len(run.Series))
		for i, s := range run.Series {
			scoresByAspect[i] = agg.fn(s)
		}
		list := core.Critic(data.UserIDs, scoresByAspect, data.Preset.N)
		clone := *run
		clone.List = list
		clone.Items = itemsFromList(data, list, run.Insider)
		res, err := evalRun(agg.name, &clone)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
