// Package experiment is the shared harness behind cmd/repro, the examples
// and the benchmarks: it synthesizes datasets, extracts measurement
// tables, trains every model variant of the paper's evaluation (ACOBE,
// No-Group, 1-Day, All-in-1, Baseline, Base-FF), and computes the series
// each figure reports.
package experiment

import (
	"context"
	"fmt"
	"sync"

	"acobe/internal/autoencoder"
	"acobe/internal/baseline"
	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/deviation"
	"acobe/internal/features"
	"acobe/internal/metrics"
)

// Preset bundles the scale knobs of one experiment run.
type Preset struct {
	Name string
	// UsersPerDept scales the organization (paper: 233 → ~929 users).
	UsersPerDept int
	// Deviation carries ω, 𝒟, Δ, ε and weighting.
	Deviation deviation.Config
	// AEConfig sizes the autoencoders.
	AEConfig func(inputDim int) autoencoder.Config
	// TrainStride samples every k-th training day.
	TrainStride int
	// N is the critic's vote count.
	N int
	// Seed drives dataset synthesis and model initialization.
	Seed uint64
}

// FastPreset is small enough for go test benchmarks: a few dozen users per
// department and compact autoencoders. The paper's qualitative shape
// (ACOBE ≻ Base-FF ≻ Baseline, ablation ordering) is preserved.
func FastPreset() Preset {
	return Preset{
		Name:         "fast",
		UsersPerDept: 40,
		Deviation:    deviation.DefaultConfig(),
		AEConfig: func(dim int) autoencoder.Config {
			cfg := autoencoder.FastConfig(dim)
			cfg.Hidden = []int{64, 32}
			cfg.Epochs = 50
			cfg.EarlyStopDelta = 0.002
			cfg.Patience = 3
			return cfg
		},
		TrainStride: 3,
		N:           3,
		Seed:        42,
	}
}

// PaperPreset mirrors the paper's scale: ~929 users, encoder
// 512-256-128-64, ω=30. Expect hours of CPU time.
func PaperPreset() Preset {
	return Preset{
		Name:         "paper",
		UsersPerDept: 233,
		Deviation:    deviation.DefaultConfig(),
		AEConfig:     autoencoder.PaperConfig,
		TrainStride:  2,
		N:            3,
		Seed:         42,
	}
}

// TinyPreset is for unit tests only: a handful of users, tiny models.
func TinyPreset() Preset {
	p := FastPreset()
	p.Name = "tiny"
	p.UsersPerDept = 10
	p.AEConfig = func(dim int) autoencoder.Config {
		cfg := autoencoder.FastConfig(dim)
		cfg.Hidden = []int{64, 32}
		cfg.Epochs = 40
		cfg.EarlyStopDelta = 0.002
		cfg.Patience = 3
		return cfg
	}
	p.TrainStride = 3
	return p
}

// CERTData is one synthesized CERT-style dataset with its extracted
// measurement tables, ready for any model variant.
type CERTData struct {
	Preset Preset
	// Gen is the generator that synthesized the dataset; nil when the
	// dataset was loaded from CSV instead.
	Gen       *cert.Generator
	Scenarios []cert.Scenario
	SpanStart cert.Day
	SpanEnd   cert.Day
	Users     []cert.User
	UserIDs   []string
	UserGroup []int // department index per user
	Table     *features.Table
	Group     *features.Table

	// ScenarioUser maps scenario name → insider user ID.
	ScenarioUser map[string]string
	// LabeledDays maps user ID → set of ground-truth abnormal days.
	LabeledDays map[string]map[cert.Day]bool

	mu     sync.Mutex
	fields map[deviation.Config]*fieldPair
}

type fieldPair struct {
	ind   *deviation.Field
	group *deviation.Field
}

// BuildCERTData synthesizes the dataset for the preset and extracts the
// full measurement table plus per-department group averages.
func BuildCERTData(p Preset) (*CERTData, error) {
	cfg := cert.SmallConfig(p.UsersPerDept)
	cfg.Seed = p.Seed
	return BuildCERTDataFrom(p, cfg)
}

// BuildCERTDataFrom is BuildCERTData with an explicit generator config.
func BuildCERTDataFrom(p Preset, cfg cert.Config) (*CERTData, error) {
	gen, err := cert.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	users := gen.Users()
	ids := make([]string, len(users))
	deptIdx := make(map[string]int, len(cfg.Departments))
	for i, d := range cfg.Departments {
		deptIdx[d] = i
	}
	membership := make([]int, len(users))
	for i, u := range users {
		ids[i] = u.ID
		membership[i] = deptIdx[u.Department]
	}
	start, end := gen.Span()
	x, err := features.NewExtractor(ids, start, end)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	if err := gen.Stream(x.Consume); err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	group, err := x.Table().GroupTable(cfg.Departments, membership)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	data := &CERTData{
		Preset:       p,
		Gen:          gen,
		Scenarios:    gen.Scenarios(),
		SpanStart:    start,
		SpanEnd:      end,
		Users:        users,
		UserIDs:      ids,
		UserGroup:    membership,
		Table:        x.Table(),
		Group:        group,
		ScenarioUser: make(map[string]string),
		LabeledDays:  make(map[string]map[cert.Day]bool),
		fields:       make(map[deviation.Config]*fieldPair),
	}
	for _, sc := range data.Scenarios {
		data.ScenarioUser[sc.Name()] = sc.UserID()
	}
	data.addLabels(gen.Labels())
	return data, nil
}

// addLabels indexes ground-truth labels by user.
func (d *CERTData) addLabels(labels []cert.Label) {
	for _, l := range labels {
		set, ok := d.LabeledDays[l.User]
		if !ok {
			set = make(map[cert.Day]bool)
			d.LabeledDays[l.User] = set
		}
		set[l.Day] = true
	}
}

// Span returns the dataset's inclusive day range.
func (d *CERTData) Span() (cert.Day, cert.Day) { return d.SpanStart, d.SpanEnd }

// ScenarioByName returns the scenario with the given name, or nil.
func (d *CERTData) ScenarioByName(name string) cert.Scenario {
	for _, sc := range d.Scenarios {
		if sc.Name() == name {
			return sc
		}
	}
	return nil
}

// BuildCERTDataFromStored replays a CSV-loaded dataset through the
// extraction pipeline. Scenario metadata (names, insiders, windows) is
// reconstructed from the stored ground-truth labels.
func BuildCERTDataFromStored(p Preset, ds *cert.StoredDataset) (*CERTData, error) {
	if len(ds.Users) == 0 {
		return nil, fmt.Errorf("experiment: stored dataset has no users")
	}
	days := ds.Days()
	if len(days) == 0 {
		return nil, fmt.Errorf("experiment: stored dataset has no events")
	}
	var depts []string
	deptIdx := make(map[string]int)
	ids := make([]string, len(ds.Users))
	membership := make([]int, len(ds.Users))
	for i, u := range ds.Users {
		ids[i] = u.ID
		di, ok := deptIdx[u.Department]
		if !ok {
			di = len(depts)
			deptIdx[u.Department] = di
			depts = append(depts, u.Department)
		}
		membership[i] = di
	}
	start, end := days[0], days[len(days)-1]
	x, err := features.NewExtractor(ids, start, end)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	if err := ds.Replay(x.Consume); err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	group, err := x.Table().GroupTable(depts, membership)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	data := &CERTData{
		Preset:       p,
		Scenarios:    cert.ScenariosFromLabels(ds.Labels),
		SpanStart:    start,
		SpanEnd:      end,
		Users:        ds.Users,
		UserIDs:      ids,
		UserGroup:    membership,
		Table:        x.Table(),
		Group:        group,
		ScenarioUser: make(map[string]string),
		LabeledDays:  make(map[string]map[cert.Day]bool),
		fields:       make(map[deviation.Config]*fieldPair),
	}
	for _, sc := range data.Scenarios {
		data.ScenarioUser[sc.Name()] = sc.UserID()
	}
	data.addLabels(ds.Labels)
	return data, nil
}

// Fields lazily computes (and caches) the individual and group deviation
// fields for a deviation configuration.
func (d *CERTData) Fields(cfg deviation.Config) (ind, group *deviation.Field, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if fp, ok := d.fields[cfg]; ok {
		return fp.ind, fp.group, nil
	}
	indF, err := deviation.ComputeField(d.Table, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: individual field: %w", err)
	}
	grpF, err := deviation.ComputeField(d.Group, cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: group field: %w", err)
	}
	d.fields[cfg] = &fieldPair{ind: indF, group: grpF}
	return indF, grpF, nil
}

// IsScenarioUser reports whether id is one of the injected insiders.
func (d *CERTData) IsScenarioUser(id string) bool {
	for _, u := range d.ScenarioUser {
		if u == id {
			return true
		}
	}
	return false
}

// ModelKind enumerates the evaluation's model variants.
type ModelKind int

// The six model variants compared in Figures 5 and 6.
const (
	ModelACOBE ModelKind = iota + 1
	ModelNoGroup
	ModelAllInOne
	ModelOneDay
	ModelBaseline
	ModelBaseFF
)

// String implements fmt.Stringer.
func (k ModelKind) String() string {
	switch k {
	case ModelACOBE:
		return "ACOBE"
	case ModelNoGroup:
		return "No-Group"
	case ModelAllInOne:
		return "All-in-1"
	case ModelOneDay:
		return "1-Day"
	case ModelBaseline:
		return "Baseline"
	case ModelBaseFF:
		return "Base-FF"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// AllModelKinds lists every variant in figure order.
func AllModelKinds() []ModelKind {
	return []ModelKind{ModelACOBE, ModelNoGroup, ModelAllInOne, ModelOneDay, ModelBaseline, ModelBaseFF}
}

// ScenarioRun is the outcome of one (model, scenario) evaluation.
type ScenarioRun struct {
	Model    ModelKind
	Scenario string
	Insider  string

	// Split days.
	TrainFrom, TrainTo cert.Day
	TestFrom, TestTo   cert.Day

	// Series holds per-aspect, per-user, per-day anomaly scores over the
	// testing window.
	Series []*core.ScoreSeries
	// List is the critic's ordered investigation list.
	List []core.Ranked
	// Items carries (priority, label) per user for metric pooling, with
	// other scenarios' insiders excluded.
	Items []metrics.Item
}

// RunScenario trains the model variant on the scenario's training period
// and evaluates it on the testing period.
func RunScenario(data *CERTData, kind ModelKind, sc cert.Scenario) (*ScenarioRun, error) {
	dsStart, dsEnd := data.Span()
	trainFrom, trainTo, testFrom, testTo, err := cert.SplitForScenario(sc, dsStart, dsEnd)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	run := &ScenarioRun{
		Model:     kind,
		Scenario:  sc.Name(),
		Insider:   sc.UserID(),
		TrainFrom: trainFrom,
		TrainTo:   trainTo,
		TestFrom:  testFrom,
		TestTo:    testTo,
	}

	var (
		series []*core.ScoreSeries
		list   []core.Ranked
	)
	switch kind {
	case ModelACOBE, ModelNoGroup, ModelAllInOne:
		series, list, err = runACOBEVariant(data, kind, trainFrom, trainTo, testFrom, testTo)
	case ModelOneDay, ModelBaseline, ModelBaseFF:
		series, list, err = runSingleDayVariant(data, kind, trainFrom, trainTo, testFrom, testTo)
	default:
		err = fmt.Errorf("experiment: unknown model kind %v", kind)
	}
	if err != nil {
		return nil, fmt.Errorf("experiment: run %v on %s: %w", kind, sc.Name(), err)
	}
	run.Series = series
	run.List = list
	run.Items = itemsFromList(data, list, sc.UserID())
	return run, nil
}

func runACOBEVariant(data *CERTData, kind ModelKind, trainFrom, trainTo, testFrom, testTo cert.Day) ([]*core.ScoreSeries, []core.Ranked, error) {
	p := data.Preset
	cfg := core.Config{
		Deviation:    p.Deviation,
		Aspects:      features.ACOBEAspects(),
		IncludeGroup: true,
		AEConfig:     p.AEConfig,
		TrainStride:  p.TrainStride,
		N:            p.N,
		Seed:         p.Seed,
	}
	switch kind {
	case ModelNoGroup:
		cfg.IncludeGroup = false
	case ModelAllInOne:
		cfg.Aspects = []features.Aspect{features.AllInOneAspect()}
	}
	ind, group, err := data.Fields(cfg.Deviation)
	if err != nil {
		return nil, nil, err
	}
	det, err := core.NewDetector(cfg, ind, group, data.UserGroup)
	if err != nil {
		return nil, nil, err
	}
	if _, err := det.Fit(context.Background(), trainFrom, trainTo); err != nil {
		return nil, nil, err
	}
	series, err := det.Score(context.Background(), testFrom, testTo)
	if err != nil {
		return nil, nil, err
	}
	scoresByAspect := make([][]float64, len(series))
	for i, s := range series {
		scoresByAspect[i] = core.AggregateRelativeMax(s)
	}
	list := core.Critic(det.Users(), scoresByAspect, cfg.N)
	return series, list, nil
}

func runSingleDayVariant(data *CERTData, kind ModelKind, trainFrom, trainTo, testFrom, testTo cert.Day) ([]*core.ScoreSeries, []core.Ranked, error) {
	p := data.Preset
	var cfg baseline.Config
	switch kind {
	case ModelOneDay:
		cfg = baseline.NewOneDayConfig()
	case ModelBaseline:
		cfg = baseline.NewBaselineConfig()
	case ModelBaseFF:
		cfg = baseline.NewBaseFFConfig()
	}
	cfg.AEConfig = p.AEConfig
	cfg.N = p.N
	mdl, err := baseline.New(cfg, data.Table, data.Group, data.UserGroup)
	if err != nil {
		return nil, nil, err
	}
	if _, err := mdl.Fit(trainFrom, trainTo); err != nil {
		return nil, nil, err
	}
	series, err := mdl.Score(testFrom, testTo)
	if err != nil {
		return nil, nil, err
	}
	scoresByAspect := make([][]float64, len(series))
	for i, s := range series {
		scoresByAspect[i] = core.AggregateRelativeMax(s)
	}
	list := core.Critic(mdl.Users(), scoresByAspect, cfg.N)
	return series, list, nil
}

// itemsFromList converts an investigation list into metric items for one
// scenario: the scenario's insider is the only positive, and the other
// scenarios' insiders (normal in this window, anomalous elsewhere) are
// excluded from pooling.
func itemsFromList(data *CERTData, list []core.Ranked, insider string) []metrics.Item {
	items := make([]metrics.Item, 0, len(list))
	for _, r := range list {
		if r.User != insider && data.IsScenarioUser(r.User) {
			continue
		}
		items = append(items, metrics.Item{
			User:     r.User,
			Priority: r.Priority,
			Positive: r.User == insider,
		})
	}
	return items
}

// ReRankRuns re-runs the critic with a different vote count N over runs'
// existing score series — Figure 6(c)'s N sweep needs no retraining.
func ReRankRuns(data *CERTData, runs []*ScenarioRun, n int) ([]*ScenarioRun, error) {
	out := make([]*ScenarioRun, 0, len(runs))
	for _, r := range runs {
		if len(r.Series) == 0 {
			return nil, fmt.Errorf("experiment: run %s/%v has no score series", r.Scenario, r.Model)
		}
		scoresByAspect := make([][]float64, len(r.Series))
		for i, s := range r.Series {
			scoresByAspect[i] = core.AggregateRelativeMax(s)
		}
		clone := *r
		clone.List = core.Critic(data.UserIDs, scoresByAspect, n)
		clone.Items = itemsFromList(data, clone.List, r.Insider)
		out = append(out, &clone)
	}
	return out, nil
}

// PoolItems concatenates the items of several runs (the paper pools the
// four scenarios' detections into one ROC / PR evaluation). User names are
// prefixed with the scenario to keep them distinct.
func PoolItems(runs []*ScenarioRun) []metrics.Item {
	var out []metrics.Item
	for _, r := range runs {
		for _, it := range r.Items {
			it.User = r.Scenario + "/" + it.User
			out = append(out, it)
		}
	}
	return out
}
