package experiment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/serve"
	"acobe/internal/testkit"
	"acobe/pkg/acobe"
)

// The crash matrix is the headline proof of the persistence layer: a
// serving daemon is driven into a fault at each distinct persistence step
// (torn WAL write, interrupted segment rotation, torn snapshot, crash
// between snapshot publish and WAL pruning), "crashes" (the injected fault
// plays dead-disk from then on), recovers from whatever files survived, and
// re-ingests the missing suffix. The recovered daemon's investigation list
// must serialize to exactly the bytes of the committed batch-pipeline
// golden (cert_s1_list.csv) — crash + recovery is indistinguishable from
// never having crashed.

// certS1Serve bundles the CERT r6.1-s1 serving setup shared by the crash
// matrix and the recovery golden. Generation is a single RNG sequence, so
// every replay pass builds a fresh generator from gcfg — re-streaming one
// generator instance would produce different events.
type certS1Serve struct {
	gcfg      cert.Config
	cfg       serve.Config
	sc        cert.Scenario
	trainFrom cert.Day
	trainTo   cert.Day
	testFrom  cert.Day
	testTo    cert.Day
}

func newCertS1Serve(t *testing.T, shards int) *certS1Serve {
	t.Helper()
	preset := goldenPreset()
	gcfg := cert.SmallConfig(preset.UsersPerDept)
	gcfg.Seed = preset.Seed
	gen, err := cert.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	deptIdx := make(map[string]int, len(gcfg.Departments))
	for i, d := range gcfg.Departments {
		deptIdx[d] = i
	}
	var (
		users      []string
		membership []int
	)
	for _, u := range gen.Users() {
		users = append(users, u.ID)
		membership = append(membership, deptIdx[u.Department])
	}
	var sc cert.Scenario
	for _, s := range gen.Scenarios() {
		if s.Name() == "r6.1-s1" {
			sc = s
		}
	}
	if sc == nil {
		t.Fatal("scenario r6.1-s1 missing")
	}
	start, end := gen.Span()
	trainFrom, trainTo, testFrom, testTo, err := cert.SplitForScenario(sc, start, end)
	if err != nil {
		t.Fatal(err)
	}
	return &certS1Serve{
		gcfg: gcfg,
		cfg: serve.Config{
			Users:      users,
			Groups:     gcfg.Departments,
			Membership: membership,
			Start:      start,
			Deviation:  preset.Deviation,
			Shards:     shards,
			DetectorOptions: []acobe.Option{
				acobe.WithAspects(acobe.ACOBEAspects()...),
				acobe.WithModelConfig(preset.AEConfig),
				acobe.WithTrainStride(preset.TrainStride),
				acobe.WithVotes(preset.N),
				acobe.WithSeed(preset.Seed),
			},
		},
		sc:        sc,
		trainFrom: trainFrom,
		trainTo:   trainTo,
		testFrom:  testFrom,
		testTo:    testTo,
	}
}

// stream replays the dataset day by day through the server, from the day
// after closed to the end of the span, retraining at the train-span
// barrier exactly as the golden pipeline does. A day whose batch already
// survived recovery as buffered events is closed without resubmitting —
// resubmitting would double-ingest a batch the WAL already holds. On the
// first submit/close failure it stops and reports the day it failed on.
func (s1 *certS1Serve) stream(t *testing.T, srv *serve.Server, closed cert.Day, buffered map[cert.Day]int) (cert.Day, error) {
	t.Helper()
	ctx := context.Background()
	gen, err := cert.New(s1.gcfg)
	if err != nil {
		t.Fatal(err)
	}
	var failedAt cert.Day
	var failure error
	err = gen.Stream(func(d cert.Day, events []cert.Event) error {
		if d <= closed {
			return nil
		}
		if n := buffered[d]; n != len(events) {
			if n != 0 {
				return errStreamStop // torn batch: impossible under single-frame appends
			}
			batch := make([]serve.Event, len(events))
			for i := range events {
				batch[i] = serve.Event{Cert: &events[i]}
			}
			if err := srv.Submit(ctx, batch); err != nil {
				failedAt, failure = d, err
				return errStreamStop
			}
		}
		if err := srv.CloseDay(ctx, d); err != nil {
			failedAt, failure = d, err
			return errStreamStop
		}
		if d == s1.trainTo {
			if err := srv.Retrain(ctx, s1.trainFrom, s1.trainTo, true); err != nil {
				failedAt, failure = d, err
				return errStreamStop
			}
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStreamStop) {
		t.Fatal(err)
	}
	if err != nil && failure == nil {
		t.Fatalf("day batch recovered torn despite all-or-nothing WAL frames")
	}
	return failedAt, failure
}

var errStreamStop = errors.New("stop streaming")

// rankedList serializes the ranked test window exactly as the batch
// pipeline serializes its golden run. The ensemble was trained at the
// train-span barrier during the stream.
func (s1 *certS1Serve) rankedList(t *testing.T, srv *serve.Server) []byte {
	t.Helper()
	ctx := context.Background()
	list, err := srv.Rank(ctx, s1.testFrom, s1.testTo)
	if err != nil {
		t.Fatal(err)
	}
	run := &ScenarioRun{
		Model:     ModelACOBE,
		Scenario:  s1.sc.Name(),
		Insider:   s1.sc.UserID(),
		TrainFrom: s1.trainFrom,
		TrainTo:   s1.trainTo,
		TestFrom:  s1.testFrom,
		TestTo:    s1.testTo,
		List:      list,
	}
	for _, a := range srv.Detector().AspectNames() {
		run.Series = append(run.Series, &core.ScoreSeries{Aspect: a})
	}
	return serializeList(run)
}

func shutdownServe(t *testing.T, srv *serve.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServeCrashMatrixCERTS1 runs the four-failpoint crash matrix at
// every shard count: each fault fires on whichever shard's stream crosses
// its budget first (at Shards>1 the torn write, interrupted rotation, torn
// snapshot, or vetoed prune hits ONE shard while its siblings stay
// healthy), and recovery must still land on the batch golden byte for
// byte. Per-shard segment size scales with the shard count so rotations —
// and with them the rotation/prune failpoints — happen at roughly the same
// point in the stream at every count.
func TestServeCrashMatrixCERTS1(t *testing.T) {
	if testing.Short() {
		t.Skip("streams the CERT dataset and trains the ensemble, several times")
	}
	want, err := os.ReadFile(testkit.Path("cert_s1_list.csv"))
	if err != nil {
		t.Fatal(err)
	}
	type crashCase struct {
		name string
		pc   serve.PersistConfig
		plan *testkit.FaultPlan
	}
	cases := func(shards int) []crashCase {
		segBytes := int64(1<<20) / int64(shards)
		return []crashCase{
			{
				// A WAL append is cut mid-frame: the torn record must be
				// truncated on recovery and its batch resubmitted (at
				// Shards>1, the whole cross-shard batch is dropped and
				// resubmitted — durability is all-or-nothing).
				name: "mid-record-write",
				pc:   serve.PersistConfig{SnapshotEvery: 10, SegmentBytes: segBytes},
				plan: &testkit.FaultPlan{Name: "wal-", Op: "write", After: 2_000_000},
			},
			{
				// The crash lands during segment rotation, after the old
				// segment closed but before the new one exists. The first
				// `shards` creates are the initial segments; two rotations
				// pass, the next dies.
				name: "mid-rotation",
				pc:   serve.PersistConfig{SnapshotEvery: 10, SegmentBytes: segBytes},
				plan: &testkit.FaultPlan{Name: "wal-", Op: "create", After: int64(shards) + 2},
			},
			{
				// A snapshot write is torn: recovery must ignore the partial
				// .tmp — and at Shards>1 the whole generation, whose manifest
				// never published — and rebuild from the WAL.
				name: "mid-snapshot",
				pc:   serve.PersistConfig{SnapshotEvery: 10, SegmentBytes: segBytes},
				plan: &testkit.FaultPlan{Name: "snapshot-", Op: "write", After: 20_000},
			},
			{
				// The crash lands after the snapshot published but before the
				// WAL segments behind it were pruned: recovery must prefer the
				// snapshot and tolerate the stale segments.
				name: "post-snapshot-pre-truncate",
				pc:   serve.PersistConfig{SnapshotEvery: 10, SegmentBytes: segBytes},
				plan: &testkit.FaultPlan{Name: "wal-", Op: "remove", After: 0},
			},
		}
	}
	for _, shards := range []int{1, 3, 8} {
		shards := shards
		for _, tc := range cases(shards) {
			tc := tc
			t.Run(fmt.Sprintf("shards=%d/%s", shards, tc.name), func(t *testing.T) {
				s1 := newCertS1Serve(t, shards)
				dir := t.TempDir()
				pc := tc.pc
				pc.Dir = dir
				pc.Hooks = serve.Hooks{
					WrapWriter: func(name string, f serve.WritableFile) serve.WritableFile {
						return tc.plan.WrapWriter(name, f)
					},
					BeforeOp: tc.plan.BeforeOp,
				}
				srv, _, err := serve.Open(s1.cfg, pc)
				if err != nil {
					t.Fatal(err)
				}
				failedAt, ferr := s1.stream(t, srv, s1.cfg.Start-1, nil)
				if ferr == nil {
					t.Fatal("fault never fired; the failpoint budget no longer matches the stream")
				}
				if !errors.Is(ferr, serve.ErrPersistenceFailed) || !errors.Is(ferr, testkit.ErrInjected) {
					t.Fatalf("failure = %v, want ErrPersistenceFailed wrapping ErrInjected", ferr)
				}
				if !tc.plan.Tripped() {
					t.Fatal("stream failed before the failpoint tripped")
				}
				t.Logf("crashed at day %v: %v", failedAt, ferr)
				// The dead disk already holds exactly the pre-crash bytes;
				// shutting down just reaps the goroutines.
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_ = srv.Shutdown(ctx)
				cancel()

				rec, info, err := serve.Open(s1.cfg, serve.PersistConfig{
					Dir: dir, SnapshotEvery: tc.pc.SnapshotEvery, SegmentBytes: tc.pc.SegmentBytes,
				})
				if err != nil {
					t.Fatalf("recovery after %s: %v", tc.name, err)
				}
				defer shutdownServe(t, rec)
				// Recovery may include the crash day itself: when the fault hit
				// post-close maintenance (snapshot publish, WAL prune), the close
				// record was already durably in the WAL before the error.
				if info.ClosedThrough > failedAt {
					t.Fatalf("recovered ClosedThrough %v past the crash day %v", info.ClosedThrough, failedAt)
				}
				t.Logf("recovered: snapshot=%v(day %v) replayed=%d records torn=%d bytes closed=%v",
					info.SnapshotLoaded, info.SnapshotDay, info.ReplayedRecords, info.TornBytes, info.ClosedThrough)
				if _, err := s1.stream(t, rec, info.ClosedThrough, info.BufferedEvents); err != nil {
					t.Fatalf("resume after %s: %v", tc.name, err)
				}
				if got := s1.rankedList(t, rec); !bytes.Equal(got, want) {
					t.Errorf("recovered ranking differs from the uninterrupted batch golden")
				}
			})
		}
	}
}

// TestServeRecoverGoldenCERTS1 pins restart-mid-stream behavior as a
// golden: the daemon is cleanly restarted halfway through the training
// span, resumes from its WAL + snapshots, and the final ranked list is
// snapshotted — and must stay byte-identical to the batch pipeline's
// cert_s1_list.csv, because recovery must not perturb ranking at all.
func TestServeRecoverGoldenCERTS1(t *testing.T) {
	if testing.Short() {
		t.Skip("streams the CERT dataset and trains the ensemble")
	}
	s1 := newCertS1Serve(t, 1)
	dir := t.TempDir()
	pc := serve.PersistConfig{Dir: dir, SnapshotEvery: 30, SegmentBytes: 1 << 22}
	srv, _, err := serve.Open(s1.cfg, pc)
	if err != nil {
		t.Fatal(err)
	}
	restartAt := s1.trainFrom + (s1.trainTo-s1.trainFrom)/2
	ctx := context.Background()
	gen, err := cert.New(s1.gcfg)
	if err != nil {
		t.Fatal(err)
	}
	err = gen.Stream(func(d cert.Day, events []cert.Event) error {
		if d > restartAt {
			return errStreamStop
		}
		batch := make([]serve.Event, len(events))
		for i := range events {
			batch[i] = serve.Event{Cert: &events[i]}
		}
		if err := srv.Submit(ctx, batch); err != nil {
			return err
		}
		return srv.CloseDay(ctx, d)
	})
	if err != nil && !errors.Is(err, errStreamStop) {
		t.Fatal(err)
	}
	shutdownServe(t, srv)

	rec, info, err := serve.Open(s1.cfg, pc)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServe(t, rec)
	if info.ClosedThrough != restartAt {
		t.Fatalf("recovered ClosedThrough = %v, want %v", info.ClosedThrough, restartAt)
	}
	if info.TornBytes != 0 {
		t.Fatalf("clean restart recovered %d torn bytes", info.TornBytes)
	}
	if _, err := s1.stream(t, rec, info.ClosedThrough, info.BufferedEvents); err != nil {
		t.Fatal(err)
	}
	got := s1.rankedList(t, rec)
	testkit.Golden(t, "serve_recover_cert_s1.csv", got)
	if want, err := os.ReadFile(testkit.Path("cert_s1_list.csv")); err == nil && !bytes.Equal(got, want) {
		t.Error("restart-mid-stream ranking differs from the uninterrupted batch golden")
	}
}
