package experiment

import (
	"fmt"
	"sort"

	"acobe/internal/cert"
	"acobe/internal/core"
	"acobe/internal/features"
	"acobe/internal/mathx"
	"acobe/internal/metrics"
	"acobe/internal/plot"
)

// BuildFig4 reproduces Figure 4: the r6.1-s2 insider's behavioral
// deviation matrices in the device and HTTP aspects, one heatmap per
// (aspect, time-frame), spanning the scenario's testing window. Dark bands
// on labeled days with white "tails" afterwards come out exactly as in the
// paper because the sliding history window adapts.
func BuildFig4(data *CERTData) ([]*plot.Heatmap, error) {
	ind, _, err := data.Fields(data.Preset.Deviation)
	if err != nil {
		return nil, err
	}
	insider := data.ScenarioUser["r6.1-s2"]
	u := data.Table.UserIndex(insider)
	if u < 0 {
		return nil, fmt.Errorf("experiment: fig4 insider %q not in table", insider)
	}
	sc := data.ScenarioByName("r6.1-s2")
	if sc == nil {
		return nil, fmt.Errorf("experiment: fig4 needs the r6.1-s2 scenario")
	}
	dsStart, dsEnd := data.Span()
	_, _, from, to, err := cert.SplitForScenario(sc, dsStart, dsEnd)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig4: %w", err)
	}
	if from < ind.FirstDay() {
		from = ind.FirstDay()
	}

	var out []*plot.Heatmap
	for _, aspect := range []features.Aspect{features.DeviceAspect(), features.HTTPAspect()} {
		for frame := 0; frame < cert.NumTimeframes; frame++ {
			h := &plot.Heatmap{
				Title: fmt.Sprintf("Fig4 %s deviations of %s (%s hours)", aspect.Name, insider, cert.Timeframe(frame)),
				Lo:    -data.Preset.Deviation.Delta,
				Hi:    data.Preset.Deviation.Delta,
			}
			for d := from; d <= to; d++ {
				h.Cols = append(h.Cols, d.String())
			}
			for _, name := range aspect.Features {
				f := data.Table.FeatureIndex(name)
				row := make([]float64, 0, int(to-from)+1)
				for d := from; d <= to; d++ {
					row = append(row, ind.Sigma(u, f, frame, d))
				}
				h.Rows = append(h.Rows, name)
				h.Values = append(h.Values, row)
			}
			out = append(out, h)
		}
	}
	return out, nil
}

// Fig5Waveform is one sub-figure of Figure 5: the daily anomaly-score
// trends of the insider's department under one model configuration.
type Fig5Waveform struct {
	Model  ModelKind
	Aspect string
	Chart  *plot.Chart
	// Mean and Std over all (user, day) points, as printed above each
	// sub-figure in the paper.
	Mean, Std float64
}

// BuildFig5Waveform extracts one aspect's score trends for the users of
// the insider's department. The CSV carries the insider's line plus the
// normal users' mean / p95 / max envelope (the paper plots every grey
// line; the envelope is what the figure communicates).
func BuildFig5Waveform(data *CERTData, run *ScenarioRun, aspect string) (*Fig5Waveform, error) {
	var series *core.ScoreSeries
	for _, s := range run.Series {
		if s.Aspect == aspect {
			series = s
		}
	}
	if series == nil {
		return nil, fmt.Errorf("experiment: run has no aspect %q", aspect)
	}
	insider := run.Insider
	uIns := data.Table.UserIndex(insider)
	if uIns < 0 {
		return nil, fmt.Errorf("experiment: insider %q not in table", insider)
	}
	dept := data.UserGroup[uIns]

	days := series.DaysCovered()
	chart := &plot.Chart{
		Title: fmt.Sprintf("Fig5 %v scores (%s aspect), dept of %s", run.Model, aspect, insider),
		XName: "day",
		YName: "anomaly score",
	}
	for i := 0; i < days; i++ {
		chart.XLabel = append(chart.XLabel, (series.From + cert.Day(i)).String())
	}

	insiderY := append([]float64(nil), series.Scores[uIns]...)
	meanY := make([]float64, days)
	p95Y := make([]float64, days)
	maxY := make([]float64, days)
	var all []float64
	col := make([]float64, 0, 256)
	for i := 0; i < days; i++ {
		col = col[:0]
		for u := range data.UserIDs {
			if data.UserGroup[u] != dept || u == uIns {
				continue
			}
			col = append(col, series.Scores[u][i])
		}
		meanY[i] = mathx.Mean(col)
		p95Y[i] = mathx.Percentile(col, 95)
		maxY[i] = mathx.Max(col)
		all = append(all, col...)
	}
	all = append(all, insiderY...)
	mean, std := mathx.MeanStd(all)

	chart.Series = []plot.Series{
		{Name: "abnormal:" + insider, Y: insiderY},
		{Name: "normal-mean", Y: meanY},
		{Name: "normal-p95", Y: p95Y},
		{Name: "normal-max", Y: maxY},
	}
	return &Fig5Waveform{Model: run.Model, Aspect: aspect, Chart: chart, Mean: mean, Std: std}, nil
}

// Fig5AspectFor returns the representative aspect charted for each model
// in Figure 5 (the paper shows device and HTTP for ACOBE, and one
// sub-figure per ablation).
func Fig5AspectFor(kind ModelKind) string {
	if kind == ModelAllInOne {
		return "all-in-1"
	}
	return "http"
}

// Fig6Result bundles the Figure 6 outputs.
type Fig6Result struct {
	ROC     *plot.Chart // ROC curves sampled on a shared FPR grid
	PR      *plot.Chart // precision at each recall step (4 positives)
	Summary *plot.Table // AUC / AP / FPs-before-TP per model
	Curves  map[string]*metrics.Curves
}

// BuildFig6 evaluates pooled scenario runs per model into ROC and PR
// curves plus the summary table (Figure 6(a) and 6(b)).
func BuildFig6(runsByModel map[ModelKind][]*ScenarioRun) (*Fig6Result, error) {
	curvesByName := make(map[string]*metrics.Curves)
	names := make([]string, 0, len(runsByModel))
	for kind, runs := range runsByModel {
		c, err := metrics.Evaluate(PoolItems(runs))
		if err != nil {
			return nil, fmt.Errorf("experiment: fig6 %v: %w", kind, err)
		}
		curvesByName[kind.String()] = c
		names = append(names, kind.String())
	}
	sort.Strings(names)
	return buildFig6Charts(names, curvesByName, "model")
}

// BuildFig6N evaluates ACOBE at different critic vote counts N (Figure
// 6(c)).
func BuildFig6N(runsByN map[int][]*ScenarioRun) (*Fig6Result, error) {
	curvesByName := make(map[string]*metrics.Curves)
	var names []string
	for n, runs := range runsByN {
		c, err := metrics.Evaluate(PoolItems(runs))
		if err != nil {
			return nil, fmt.Errorf("experiment: fig6c N=%d: %w", n, err)
		}
		name := fmt.Sprintf("ACOBE-N%d", n)
		curvesByName[name] = c
		names = append(names, name)
	}
	sort.Strings(names)
	return buildFig6Charts(names, curvesByName, "critic N")
}

func buildFig6Charts(names []string, curvesByName map[string]*metrics.Curves, what string) (*Fig6Result, error) {
	const gridN = 101
	roc := &plot.Chart{Title: "Fig6(a) ROC (" + what + ")", XName: "FPR", YName: "TPR"}
	for i := 0; i < gridN; i++ {
		roc.XLabel = append(roc.XLabel, fmt.Sprintf("%.2f", float64(i)/(gridN-1)))
	}
	pr := &plot.Chart{Title: "Fig6(b) Precision-Recall (" + what + ")", XName: "recall", YName: "precision"}
	summary := &plot.Table{
		Title:   "Fig6 summary (" + what + ")",
		Columns: []string{what, "AUC", "AP", "FPs before k-th TP"},
	}

	prGrid := map[float64]bool{}
	for _, name := range names {
		for _, p := range curvesByName[name].PR {
			prGrid[p.X] = true
		}
	}
	var recalls []float64
	for r := range prGrid {
		recalls = append(recalls, r)
	}
	sort.Float64s(recalls)
	for _, r := range recalls {
		pr.XLabel = append(pr.XLabel, fmt.Sprintf("%.3f", r))
	}

	for _, name := range names {
		c := curvesByName[name]
		// ROC sampled as a step function over the FPR grid.
		y := make([]float64, gridN)
		for i := 0; i < gridN; i++ {
			fpr := float64(i) / (gridN - 1)
			best := 0.0
			for _, p := range c.ROC {
				if p.X <= fpr+1e-12 && p.Y > best {
					best = p.Y
				}
			}
			y[i] = best
		}
		roc.Series = append(roc.Series, plot.Series{Name: name, Y: y})

		// PR evaluated at each recall step present in any curve.
		py := make([]float64, len(recalls))
		for i, r := range recalls {
			// precision at the smallest curve recall ≥ r
			val := 0.0
			for _, p := range c.PR {
				if p.X >= r-1e-12 {
					val = p.Y
					break
				}
			}
			py[i] = val
		}
		pr.Series = append(pr.Series, plot.Series{Name: name, Y: py})

		summary.AddRow(name,
			fmt.Sprintf("%.4f", c.AUC),
			fmt.Sprintf("%.4f", c.AP),
			fmt.Sprintf("%v", c.FPsBeforeTP()))
	}
	return &Fig6Result{ROC: roc, PR: pr, Summary: summary, Curves: curvesByName}, nil
}

// BuildFig7 turns an enterprise case-study run into per-aspect waveform
// charts (victim vs normal envelope) and the victim's daily-rank chart.
func BuildFig7(run *EnterpriseRun) (aspects []*plot.Chart, rank *plot.Chart, err error) {
	vIdx := -1
	for i, id := range run.Users {
		if id == run.Victim {
			vIdx = i
		}
	}
	if vIdx < 0 {
		return nil, nil, fmt.Errorf("experiment: fig7 victim %q missing", run.Victim)
	}
	days := run.Series[0].DaysCovered()
	xlabels := make([]string, days)
	for i := range xlabels {
		xlabels[i] = (run.Series[0].From + cert.Day(i)).String()
	}

	for _, s := range run.Series {
		chart := &plot.Chart{
			Title:  fmt.Sprintf("Fig7 %s aspect (%s attack)", s.Aspect, run.Attack),
			XName:  "day",
			YName:  "anomaly score",
			XLabel: xlabels,
		}
		victimY := append([]float64(nil), s.Scores[vIdx]...)
		meanY := make([]float64, days)
		p95Y := make([]float64, days)
		col := make([]float64, 0, len(run.Users))
		for i := 0; i < days; i++ {
			col = col[:0]
			for u := range run.Users {
				if u == vIdx {
					continue
				}
				col = append(col, s.Scores[u][i])
			}
			meanY[i] = mathx.Mean(col)
			p95Y[i] = mathx.Percentile(col, 95)
		}
		chart.Series = []plot.Series{
			{Name: "victim:" + run.Victim, Y: victimY},
			{Name: "normal-mean", Y: meanY},
			{Name: "normal-p95", Y: p95Y},
		}
		aspects = append(aspects, chart)
	}

	rank = &plot.Chart{
		Title:  fmt.Sprintf("Fig7 victim daily investigation rank (%s attack)", run.Attack),
		XName:  "day",
		YName:  "rank (1=top)",
		XLabel: xlabels,
	}
	y := make([]float64, len(run.VictimDailyRank))
	for i, r := range run.VictimDailyRank {
		y[i] = float64(r)
	}
	rank.Series = []plot.Series{{Name: "victim-rank", Y: y}}
	return aspects, rank, nil
}
