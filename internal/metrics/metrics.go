// Package metrics evaluates ordered investigation lists: ROC curves and
// AUC, precision-recall curves and average precision, F1 scores, and the
// paper's "false positives listed before the k-th true positive" counts.
// Following the paper, ties in priority are resolved pessimistically: a
// false positive sharing a priority with a true positive is listed first,
// illustrating the worst-case investigation order.
package metrics

import (
	"fmt"
	"sort"
)

// Item is one entry of an investigation list: a user with its priority
// (smaller = investigated earlier) and ground-truth label.
type Item struct {
	User     string
	Priority int
	Positive bool
}

// OrderWorstCase sorts items by priority ascending, placing false
// positives before true positives within equal priorities (the paper's
// worst-case tie-breaking), then by user for determinism.
func OrderWorstCase(items []Item) []Item {
	out := append([]Item(nil), items...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority < out[j].Priority
		}
		if out[i].Positive != out[j].Positive {
			return !out[i].Positive // negatives (FPs) first
		}
		return out[i].User < out[j].User
	})
	return out
}

// Point is one point of a ROC or PR curve.
type Point struct {
	X, Y float64
}

// Confusion holds counts at one investigation cutoff.
type Confusion struct {
	TP, FP, TN, FN int
}

// TPRate returns TP/(TP+FN), zero when undefined.
func (c Confusion) TPRate() float64 { return ratio(c.TP, c.TP+c.FN) }

// FPRate returns FP/(FP+TN), zero when undefined.
func (c Confusion) FPRate() float64 { return ratio(c.FP, c.FP+c.TN) }

// Precision returns TP/(TP+FP), zero when undefined.
func (c Confusion) Precision() float64 { return ratio(c.TP, c.TP+c.FP) }

// Recall returns TP/(TP+FN), zero when undefined.
func (c Confusion) Recall() float64 { return ratio(c.TP, c.TP+c.FN) }

// F1 returns the harmonic mean of precision and recall, zero when
// undefined.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Curves computes ROC and PR curves by walking the worst-case-ordered list
// from top to bottom, emitting one point per investigated user.
type Curves struct {
	Ordered []Item
	ROC     []Point // (FPR, TPR), starts at (0,0)
	PR      []Point // (recall, precision)
	AUC     float64 // area under ROC (trapezoid)
	AP      float64 // average precision (step-wise area under PR)

	positives int
	negatives int
}

// Evaluate builds the curves from an investigation list.
func Evaluate(items []Item) (*Curves, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("metrics: empty investigation list")
	}
	c := &Curves{Ordered: OrderWorstCase(items)}
	for _, it := range c.Ordered {
		if it.Positive {
			c.positives++
		} else {
			c.negatives++
		}
	}
	if c.positives == 0 {
		return nil, fmt.Errorf("metrics: no positive cases among %d items", len(items))
	}

	c.ROC = append(c.ROC, Point{0, 0})
	tp, fp := 0, 0
	prevRecall := 0.0
	for _, it := range c.Ordered {
		if it.Positive {
			tp++
		} else {
			fp++
		}
		tpr := float64(tp) / float64(c.positives)
		fpr := 0.0
		if c.negatives > 0 {
			fpr = float64(fp) / float64(c.negatives)
		}
		c.ROC = append(c.ROC, Point{fpr, tpr})
		if it.Positive {
			precision := float64(tp) / float64(tp+fp)
			recall := tpr
			c.PR = append(c.PR, Point{recall, precision})
			c.AP += (recall - prevRecall) * precision
			prevRecall = recall
		}
	}
	// AUC by trapezoid over the ROC points.
	for i := 1; i < len(c.ROC); i++ {
		dx := c.ROC[i].X - c.ROC[i-1].X
		c.AUC += dx * (c.ROC[i].Y + c.ROC[i-1].Y) / 2
	}
	return c, nil
}

// Positives returns the number of ground-truth positives.
func (c *Curves) Positives() int { return c.positives }

// Negatives returns the number of ground-truth negatives.
func (c *Curves) Negatives() int { return c.negatives }

// FPsBeforeTP returns, for each k in 1..positives, how many false
// positives appear before the k-th true positive in the worst-case order —
// the numbers the paper reports alongside Figure 6(a).
func (c *Curves) FPsBeforeTP() []int {
	var out []int
	fp := 0
	for _, it := range c.Ordered {
		if it.Positive {
			out = append(out, fp)
		} else {
			fp++
		}
	}
	return out
}

// ConfusionAtTopK returns the confusion counts when exactly the first k
// entries of the worst-case order are investigated (marked positive).
func (c *Curves) ConfusionAtTopK(k int) Confusion {
	if k < 0 {
		k = 0
	}
	if k > len(c.Ordered) {
		k = len(c.Ordered)
	}
	var conf Confusion
	for i, it := range c.Ordered {
		investigated := i < k
		switch {
		case investigated && it.Positive:
			conf.TP++
		case investigated && !it.Positive:
			conf.FP++
		case !investigated && it.Positive:
			conf.FN++
		default:
			conf.TN++
		}
	}
	return conf
}

// BestF1 sweeps every cutoff and returns the best F1 with its cutoff.
func (c *Curves) BestF1() (float64, int) {
	best, bestK := 0.0, 0
	for k := 1; k <= len(c.Ordered); k++ {
		if f1 := c.ConfusionAtTopK(k).F1(); f1 > best {
			best, bestK = f1, k
		}
	}
	return best, bestK
}
