package metrics

import (
	"fmt"
	"testing"

	"acobe/internal/mathx"
	"acobe/internal/testkit"
)

// randomItems builds a labeled investigation list with priorities drawn from
// a small range (so ties occur and exercise the worst-case ordering) and at
// least one positive.
func randomItems(rng *mathx.RNG, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			User:     fmt.Sprintf("u%03d", i),
			Priority: 1 + int(rng.Float64()*float64(n/2+1)),
			Positive: rng.Float64() < 0.3,
		}
	}
	items[int(rng.Float64()*float64(n))].Positive = true
	return items
}

// TestCurveInvariants checks the structural properties every evaluation must
// satisfy regardless of the list: curve points confined to the unit square
// and monotone along the investigation walk, bounded AUC/AP, and a
// FPsBeforeTP sequence that is non-decreasing with one entry per positive.
func TestCurveInvariants(t *testing.T) {
	rng := mathx.NewRNG(2021)
	for trial := 0; trial < 100; trial++ {
		items := randomItems(rng, 3+int(rng.Float64()*60))
		c, err := Evaluate(items)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		if len(c.ROC) != len(items)+1 {
			t.Fatalf("trial %d: %d ROC points for %d items", trial, len(c.ROC), len(items))
		}
		prev := Point{0, 0}
		for i, p := range c.ROC {
			if !testkit.WithinRange([]float64{p.X, p.Y}, 0, 1) {
				t.Fatalf("trial %d: ROC point %d = (%g, %g) outside unit square", trial, i, p.X, p.Y)
			}
			if p.X < prev.X || p.Y < prev.Y {
				t.Fatalf("trial %d: ROC walk not monotone at point %d: (%g,%g) after (%g,%g)",
					trial, i, p.X, p.Y, prev.X, prev.Y)
			}
			prev = p
		}
		last := c.ROC[len(c.ROC)-1]
		if last.Y != 1 {
			t.Fatalf("trial %d: ROC must end at TPR 1, got %g", trial, last.Y)
		}

		if len(c.PR) != c.Positives() {
			t.Fatalf("trial %d: %d PR points for %d positives", trial, len(c.PR), c.Positives())
		}
		prevRecall := 0.0
		for i, p := range c.PR {
			if !testkit.WithinRange([]float64{p.X, p.Y}, 0, 1) {
				t.Fatalf("trial %d: PR point %d = (%g, %g) outside unit square", trial, i, p.X, p.Y)
			}
			if p.X < prevRecall {
				t.Fatalf("trial %d: PR recall decreased at point %d", trial, i)
			}
			prevRecall = p.X
		}

		if !testkit.WithinRange([]float64{c.AUC}, 0, 1) {
			t.Fatalf("trial %d: AUC %g outside [0, 1]", trial, c.AUC)
		}
		if !testkit.WithinRange([]float64{c.AP}, 0, 1) || c.AP == 0 {
			t.Fatalf("trial %d: AP %g outside (0, 1]", trial, c.AP)
		}

		fps := c.FPsBeforeTP()
		if len(fps) != c.Positives() {
			t.Fatalf("trial %d: %d FP counts for %d positives", trial, len(fps), c.Positives())
		}
		if !testkit.NonDecreasingInts(fps) {
			t.Fatalf("trial %d: FPsBeforeTP not non-decreasing: %v", trial, fps)
		}
		if fps[len(fps)-1] > c.Negatives() {
			t.Fatalf("trial %d: %d FPs before last TP exceeds %d negatives",
				trial, fps[len(fps)-1], c.Negatives())
		}
	}
}

// TestConfusionAtTopKInvariants: at every cutoff the four cells partition
// the list, TP+FN equals the positives, and TP is non-decreasing in k.
func TestConfusionAtTopKInvariants(t *testing.T) {
	rng := mathx.NewRNG(2022)
	items := randomItems(rng, 40)
	c, err := Evaluate(items)
	if err != nil {
		t.Fatal(err)
	}
	prevTP := 0
	for k := -1; k <= len(items)+1; k++ {
		conf := c.ConfusionAtTopK(k)
		if conf.TP+conf.FP+conf.TN+conf.FN != len(items) {
			t.Fatalf("k=%d: cells sum to %d, want %d",
				k, conf.TP+conf.FP+conf.TN+conf.FN, len(items))
		}
		if conf.TP+conf.FN != c.Positives() {
			t.Fatalf("k=%d: TP+FN = %d, want %d positives", k, conf.TP+conf.FN, c.Positives())
		}
		if kk := clampK(k, len(items)); conf.TP+conf.FP != kk {
			t.Fatalf("k=%d: investigated %d users, want %d", k, conf.TP+conf.FP, kk)
		}
		if conf.TP < prevTP {
			t.Fatalf("k=%d: TP decreased %d → %d", k, prevTP, conf.TP)
		}
		prevTP = conf.TP
	}
}

func clampK(k, n int) int {
	if k < 0 {
		return 0
	}
	if k > n {
		return n
	}
	return k
}

// TestBestF1IsOptimal: the reported best F1 must be in [0, 1], achieved at
// the reported cutoff, and no other cutoff may beat it.
func TestBestF1IsOptimal(t *testing.T) {
	rng := mathx.NewRNG(2023)
	for trial := 0; trial < 20; trial++ {
		items := randomItems(rng, 5+int(rng.Float64()*30))
		c, err := Evaluate(items)
		if err != nil {
			t.Fatal(err)
		}
		best, bestK := c.BestF1()
		if !testkit.WithinRange([]float64{best}, 0, 1) {
			t.Fatalf("trial %d: best F1 %g outside [0, 1]", trial, best)
		}
		if got := c.ConfusionAtTopK(bestK).F1(); got != best {
			t.Fatalf("trial %d: F1 at reported cutoff %d is %g, reported %g", trial, bestK, got, best)
		}
		for k := 0; k <= len(items); k++ {
			if f1 := c.ConfusionAtTopK(k).F1(); f1 > best {
				t.Fatalf("trial %d: cutoff %d has F1 %g > reported best %g", trial, k, f1, best)
			}
		}
	}
}

// TestWorstCasePessimism pins the paper's tie handling: within one priority
// a false positive is always investigated before a true positive, so the
// perfect-tie list yields the most pessimistic FP count.
func TestWorstCasePessimism(t *testing.T) {
	items := []Item{
		{User: "tp", Priority: 1, Positive: true},
		{User: "fp1", Priority: 1},
		{User: "fp2", Priority: 1},
	}
	c, err := Evaluate(items)
	if err != nil {
		t.Fatal(err)
	}
	if fps := c.FPsBeforeTP(); len(fps) != 1 || fps[0] != 2 {
		t.Fatalf("FPsBeforeTP = %v, want [2] (all tied FPs listed first)", c.FPsBeforeTP())
	}
	perfect, err := Evaluate([]Item{
		{User: "tp", Priority: 1, Positive: true},
		{User: "fp1", Priority: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if perfect.AUC != 1 || perfect.AP != 1 {
		t.Fatalf("untied perfect list: AUC %g AP %g, want 1 and 1", perfect.AUC, perfect.AP)
	}
}

// TestEvaluateRejectsDegenerateInput: the evaluator must refuse lists it
// cannot score rather than emitting NaN curves.
func TestEvaluateRejectsDegenerateInput(t *testing.T) {
	if _, err := Evaluate(nil); err == nil {
		t.Error("empty list: want error")
	}
	if _, err := Evaluate([]Item{{User: "u", Priority: 1}}); err == nil {
		t.Error("no positives: want error")
	}
}
