package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"acobe/internal/mathx"
)

func TestOrderWorstCase(t *testing.T) {
	items := []Item{
		{User: "tp", Priority: 2, Positive: true},
		{User: "fp", Priority: 2, Positive: false},
		{User: "first", Priority: 1, Positive: false},
	}
	ordered := OrderWorstCase(items)
	if ordered[0].User != "first" {
		t.Errorf("priority 1 not first: %v", ordered)
	}
	// Within priority 2, the FP must precede the TP (worst case).
	if ordered[1].User != "fp" || ordered[2].User != "tp" {
		t.Errorf("tie not broken pessimistically: %v", ordered)
	}
}

func TestEvaluatePerfectRanking(t *testing.T) {
	items := []Item{
		{User: "bad", Priority: 1, Positive: true},
		{User: "n1", Priority: 2},
		{User: "n2", Priority: 3},
		{User: "n3", Priority: 4},
	}
	c, err := Evaluate(items)
	if err != nil {
		t.Fatal(err)
	}
	if c.AUC != 1 {
		t.Errorf("AUC = %g, want 1", c.AUC)
	}
	if c.AP != 1 {
		t.Errorf("AP = %g, want 1", c.AP)
	}
	if fps := c.FPsBeforeTP(); len(fps) != 1 || fps[0] != 0 {
		t.Errorf("FPsBeforeTP = %v", fps)
	}
}

func TestEvaluateWorstRanking(t *testing.T) {
	items := []Item{
		{User: "n1", Priority: 1},
		{User: "n2", Priority: 2},
		{User: "bad", Priority: 3, Positive: true},
	}
	c, err := Evaluate(items)
	if err != nil {
		t.Fatal(err)
	}
	if c.AUC != 0 {
		t.Errorf("AUC = %g, want 0", c.AUC)
	}
	if fps := c.FPsBeforeTP(); fps[0] != 2 {
		t.Errorf("FPsBeforeTP = %v", fps)
	}
}

func TestEvaluateHandComputedAUC(t *testing.T) {
	// Order: TP, FP, TP, FP → ROC points (0,.5) (0.5,.5) (0.5,1) (1,1);
	// area = 0.5*0.5 + 0.5*1 = 0.75.
	items := []Item{
		{User: "p1", Priority: 1, Positive: true},
		{User: "f1", Priority: 2},
		{User: "p2", Priority: 3, Positive: true},
		{User: "f2", Priority: 4},
	}
	c, err := Evaluate(items)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.AUC-0.75) > 1e-12 {
		t.Errorf("AUC = %g, want 0.75", c.AUC)
	}
	// AP = 0.5*1 (first TP at precision 1) + 0.5*(2/3).
	want := 0.5 + 0.5*2.0/3.0
	if math.Abs(c.AP-want) > 1e-12 {
		t.Errorf("AP = %g, want %g", c.AP, want)
	}
}

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate(nil); err == nil {
		t.Error("no error for empty list")
	}
	if _, err := Evaluate([]Item{{User: "n", Priority: 1}}); err == nil {
		t.Error("no error for zero positives")
	}
}

func TestConfusionAtTopK(t *testing.T) {
	items := []Item{
		{User: "p", Priority: 1, Positive: true},
		{User: "n1", Priority: 2},
		{User: "n2", Priority: 3},
	}
	c, err := Evaluate(items)
	if err != nil {
		t.Fatal(err)
	}
	conf := c.ConfusionAtTopK(1)
	if conf.TP != 1 || conf.FP != 0 || conf.TN != 2 || conf.FN != 0 {
		t.Errorf("confusion at k=1: %+v", conf)
	}
	if conf.Precision() != 1 || conf.Recall() != 1 || conf.F1() != 1 {
		t.Errorf("perfect cutoff metrics: p=%g r=%g f1=%g", conf.Precision(), conf.Recall(), conf.F1())
	}
	conf = c.ConfusionAtTopK(3)
	if conf.FP != 2 || conf.TN != 0 {
		t.Errorf("confusion at k=3: %+v", conf)
	}
	// Clamping.
	if c.ConfusionAtTopK(-1).TP != 0 {
		t.Error("negative k not clamped")
	}
	if c.ConfusionAtTopK(99).TP != 1 {
		t.Error("huge k not clamped")
	}
}

func TestConfusionZeroDenominators(t *testing.T) {
	var c Confusion
	if c.TPRate() != 0 || c.FPRate() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("zero confusion should yield zero metrics")
	}
}

func TestBestF1(t *testing.T) {
	items := []Item{
		{User: "p1", Priority: 1, Positive: true},
		{User: "p2", Priority: 2, Positive: true},
		{User: "n1", Priority: 3},
		{User: "n2", Priority: 4},
	}
	c, err := Evaluate(items)
	if err != nil {
		t.Fatal(err)
	}
	f1, k := c.BestF1()
	if f1 != 1 || k != 2 {
		t.Errorf("BestF1 = (%g, %d), want (1, 2)", f1, k)
	}
}

func TestROCEndpointsAndMonotonicity(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 4 + rng.Intn(40)
		items := make([]Item, n)
		pos := 0
		for i := range items {
			items[i] = Item{
				User:     string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Priority: rng.Intn(10),
				Positive: rng.Bool(0.3),
			}
			if items[i].Positive {
				pos++
			}
		}
		if pos == 0 {
			items[0].Positive = true
		}
		c, err := Evaluate(items)
		if err != nil {
			return false
		}
		if c.AUC < 0 || c.AUC > 1 || c.AP < 0 || c.AP > 1 {
			return false
		}
		first, last := c.ROC[0], c.ROC[len(c.ROC)-1]
		if first.X != 0 || first.Y != 0 {
			return false
		}
		if math.Abs(last.Y-1) > 1e-12 {
			return false
		}
		for i := 1; i < len(c.ROC); i++ {
			if c.ROC[i].X < c.ROC[i-1].X-1e-12 || c.ROC[i].Y < c.ROC[i-1].Y-1e-12 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPositivesNegativesCount(t *testing.T) {
	items := []Item{
		{User: "a", Priority: 1, Positive: true},
		{User: "b", Priority: 2},
		{User: "c", Priority: 3},
	}
	c, err := Evaluate(items)
	if err != nil {
		t.Fatal(err)
	}
	if c.Positives() != 1 || c.Negatives() != 2 {
		t.Errorf("counts %d/%d", c.Positives(), c.Negatives())
	}
}
