package metrics_test

import (
	"fmt"

	"acobe/internal/metrics"
)

// ExampleEvaluate walks an investigation list the way the paper's
// evaluation does: ties between a false positive and a true positive are
// resolved pessimistically (the FP is investigated first), and the curve
// metrics are computed from the resulting order.
func ExampleEvaluate() {
	items := []metrics.Item{
		{User: "insider", Priority: 2, Positive: true},
		{User: "normal-1", Priority: 2}, // same priority as the insider
		{User: "normal-2", Priority: 5},
		{User: "normal-3", Priority: 9},
	}
	c, err := metrics.Evaluate(items)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first investigated: %s\n", c.Ordered[0].User)
	fmt.Printf("AUC: %.3f\n", c.AUC)
	fmt.Printf("FPs before the insider: %v\n", c.FPsBeforeTP())
	// Output:
	// first investigated: normal-1
	// AUC: 0.667
	// FPs before the insider: [1]
}
