package testkit

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// update is registered once here and shared by every test binary that
// imports testkit; `go test ./... -update` therefore regenerates every
// golden file in the repo in one pass.
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden/ with current outputs")

// Update reports whether the test run was started with -update.
func Update() bool { return *update }

// Path resolves a golden name to its location under the current package's
// testdata/golden directory (go test runs with the package dir as cwd).
func Path(name string) string {
	return filepath.Join("testdata", "golden", filepath.FromSlash(name))
}

// Golden compares got byte-for-byte against testdata/golden/<name>,
// or rewrites the file when the test runs with -update. Use it for
// outputs that must match exactly: rankings, orderings, integer series,
// structural metadata.
func Golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := Path(name)
	if Update() {
		writeGolden(t, path, got)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s: %v (run `go test -update` to create it)", name, err)
	}
	if string(want) == string(got) {
		return
	}
	t.Errorf("golden %s: output differs from snapshot (run `go test -update` after verifying the change is intended)\n%s",
		name, diffLines(string(want), string(got)))
}

// GoldenCSV compares got against testdata/golden/<name> cell by cell:
// cells that parse as floats on both sides must agree within eps, all
// other cells must match exactly. Use it for float series (scores,
// figure CSVs) where the last digits may legitimately wiggle under
// refactors that reorder arithmetic. With -update the file is rewritten
// verbatim.
func GoldenCSV(t *testing.T, name string, got []byte, eps float64) {
	t.Helper()
	path := Path(name)
	if Update() {
		writeGolden(t, path, got)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s: %v (run `go test -update` to create it)", name, err)
	}
	if msg := compareCSV(string(want), string(got), eps); msg != "" {
		t.Errorf("golden %s: %s (run `go test -update` after verifying the change is intended)", name, msg)
	}
}

func writeGolden(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatalf("golden: create dir: %v", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("golden: write %s: %v", path, err)
	}
	t.Logf("golden: wrote %s (%d bytes)", path, len(data))
}

// compareCSV returns a description of the first mismatch between two
// CSV-ish documents (comma-separated, no quoting), or "" when they agree
// within eps. Line and cell counts must match exactly.
func compareCSV(want, got string, eps float64) string {
	wl := splitLines(want)
	gl := splitLines(got)
	if len(wl) != len(gl) {
		return fmt.Sprintf("line count %d, want %d", len(gl), len(wl))
	}
	for i := range wl {
		wc := strings.Split(wl[i], ",")
		gc := strings.Split(gl[i], ",")
		if len(wc) != len(gc) {
			return fmt.Sprintf("line %d: %d cells, want %d", i+1, len(gc), len(wc))
		}
		for j := range wc {
			if wc[j] == gc[j] {
				continue
			}
			wf, werr := strconv.ParseFloat(wc[j], 64)
			gf, gerr := strconv.ParseFloat(gc[j], 64)
			if werr == nil && gerr == nil && InEpsilon(wf, gf, eps) {
				continue
			}
			return fmt.Sprintf("line %d cell %d: %q, want %q (eps %g)", i+1, j+1, gc[j], wc[j], eps)
		}
	}
	return ""
}

func splitLines(s string) []string {
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// diffLines renders a compact first-divergence diff for exact-match
// golden failures.
func diffLines(want, got string) string {
	wl := splitLines(want)
	gl := splitLines(got)
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("first difference at line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d lines, got %d", len(wl), len(gl))
}
