package testkit

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Tamper is the post-hoc counterpart of FaultPlan: where a FaultPlan cuts
// a live operation stream short (a crash), a Tamper mutates bytes already
// on disk (an adversary, or silent corruption) after the process is gone.
// Tamper-detection matrices enumerate Tamper values over a pristine
// directory tree and assert the subject's verifier rejects every one.
//
// File selection follows FaultPlan.Name: a base-name substring.
type Tamper struct {
	// Name selects the target file by base-name substring. The tamper
	// applies to the first match found walking the directory tree in
	// lexical order; zero matches is an error (a matrix entry that
	// silently touched nothing would assert on pristine data).
	Name string
	// Off is the byte offset of the mutation. Negative offsets count back
	// from the end of the file (-1 is the last byte).
	Off int64
	// Mask is XORed into the byte at Off. Zero means "no bit flip" and is
	// only useful with Put.
	Mask byte
	// Put, when non-nil, overwrites the bytes starting at Off (after the
	// mask is applied at Off) — for tampers that must stay structurally
	// valid, e.g. re-stamping a checksum after a payload flip.
	Put []byte
}

// Apply mutates the first matching file under dir and returns its path.
func (t Tamper) Apply(dir string) (string, error) {
	path, err := t.find(dir)
	if err != nil {
		return "", err
	}
	return path, t.ApplyTo(path)
}

// ApplyTo mutates one specific file.
func (t Tamper) ApplyTo(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := t.Off
	if off < 0 {
		off += int64(len(data))
	}
	if off < 0 || off >= int64(len(data)) {
		return fmt.Errorf("testkit: tamper offset %d outside %s (%d bytes)", t.Off, filepath.Base(path), len(data))
	}
	data[off] ^= t.Mask
	if len(t.Put) > 0 {
		if off+int64(len(t.Put)) > int64(len(data)) {
			return fmt.Errorf("testkit: tamper put of %d bytes at %d overruns %s (%d bytes)", len(t.Put), off, filepath.Base(path), len(data))
		}
		copy(data[off:], t.Put)
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, info.Mode().Perm())
}

func (t Tamper) find(dir string) (string, error) {
	var match string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || match != "" {
			return err
		}
		if strings.Contains(filepath.Base(path), t.Name) {
			match = path
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	if match == "" {
		return "", fmt.Errorf("testkit: tamper target %q not found under %s", t.Name, dir)
	}
	return match, nil
}

// CopyTree duplicates a directory tree (regular files only) so a tamper
// matrix can mutate a throwaway copy of one pristine fixture per case.
func CopyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, info.Mode().Perm())
	})
}
