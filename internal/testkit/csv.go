package testkit

import (
	"fmt"
	"strings"
)

// CSV accumulates a deterministic comma-separated document for golden
// snapshots. Cells are rendered immediately with fixed formatting (Float
// for float64s), so serializing the same values always yields the same
// bytes — the property the -update workflow relies on.
type CSV struct {
	b strings.Builder
}

// Comment appends a "# ..." line; GoldenCSV compares comments exactly,
// which makes them the right place for structural metadata (windows,
// seeds, presets) that must never drift silently.
func (c *CSV) Comment(format string, args ...any) {
	fmt.Fprintf(&c.b, "# "+format+"\n", args...)
}

// Row appends one record. float64 cells use Float, everything else uses
// %v; values containing commas or newlines are rejected at test time via
// panic since golden serialization must stay unambiguous.
func (c *CSV) Row(cells ...any) {
	for i, cell := range cells {
		if i > 0 {
			c.b.WriteByte(',')
		}
		var s string
		switch v := cell.(type) {
		case float64:
			s = Float(v)
		case string:
			s = v
		default:
			s = fmt.Sprintf("%v", v)
		}
		if strings.ContainsAny(s, ",\n") {
			panic(fmt.Sprintf("testkit: CSV cell %q needs quoting; golden cells must be comma- and newline-free", s))
		}
		c.b.WriteString(s)
	}
	c.b.WriteByte('\n')
}

// Floats appends one record of a label followed by a float series.
func (c *CSV) Floats(label string, xs []float64) {
	cells := make([]any, 0, len(xs)+1)
	cells = append(cells, label)
	for _, x := range xs {
		cells = append(cells, x)
	}
	c.Row(cells...)
}

// Ints appends one record of a label followed by an int series.
func (c *CSV) Ints(label string, xs []int) {
	cells := make([]any, 0, len(xs)+1)
	cells = append(cells, label)
	for _, x := range xs {
		cells = append(cells, x)
	}
	c.Row(cells...)
}

// Bytes returns the document serialized so far.
func (c *CSV) Bytes() []byte { return []byte(c.b.String()) }
