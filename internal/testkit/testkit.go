// Package testkit is the repo-wide correctness harness shared by every
// package's tests: golden-file snapshots with tolerance-aware comparison
// (exact for rankings and orderings, epsilon for float series), a
// deterministic CSV serializer for pipeline outputs, and small invariant
// helpers used by the metamorphic/property tests.
//
// The golden workflow: tests serialize a pipeline's outputs with Codec
// helpers and hand the bytes to Golden (exact) or GoldenCSV (tolerant).
// Running the tests with -update rewrites the files under testdata/golden/
// instead of comparing; two consecutive -update runs must produce
// byte-identical files because every pipeline in this repo is seeded and
// bit-deterministic (see DESIGN.md §8).
//
// testkit deliberately imports nothing from the rest of the repo so that
// any package's tests — including internal white-box tests — can use it
// without import cycles.
package testkit

import (
	"math"
	"strconv"
)

// Float formats a float64 with enough significant digits (12) that golden
// regeneration is stable while epsilon comparisons at 1e-9 still pass for
// bit-identical recomputations. NaN and infinities format as Go spells
// them, so accidental non-finite outputs show up in the diff.
func Float(v float64) string {
	return strconv.FormatFloat(v, 'g', 12, 64)
}

// InEpsilon reports whether a and b differ by at most eps, treating NaN as
// unequal to everything and equal infinities as equal.
func InEpsilon(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= eps
}

// AllFinite reports whether every value is neither NaN nor infinite.
func AllFinite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// NonDecreasing reports whether xs is sorted in non-decreasing order.
func NonDecreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// NonDecreasingInts reports whether xs is sorted in non-decreasing order.
func NonDecreasingInts(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// WithinRange reports whether every value lies in [lo, hi].
func WithinRange(xs []float64, lo, hi float64) bool {
	for _, x := range xs {
		if x < lo || x > hi || math.IsNaN(x) {
			return false
		}
	}
	return true
}

// Permutation returns a deterministic pseudo-random permutation of
// 0..n-1 derived from seed (splitmix64-driven Fisher-Yates). Tests use it
// for permutation-invariance checks without pulling in a specific RNG.
func Permutation(seed uint64, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
