package testkit

import (
	"math"
	"strings"
	"testing"
)

func TestFloatFormattingIsStable(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		1.5:         "1.5",
		math.Pi:     "3.14159265359",
		math.NaN():  "NaN",
		math.Inf(1): "+Inf",
	}
	for v, want := range cases {
		if got := Float(v); got != want {
			t.Errorf("Float(%v) = %q, want %q", v, got, want)
		}
	}
	// Stability: formatting twice gives identical bytes.
	if Float(1.0/3.0) != Float(1.0/3.0) {
		t.Error("Float not deterministic")
	}
}

func TestInEpsilon(t *testing.T) {
	if !InEpsilon(1.0, 1.0+1e-12, 1e-9) {
		t.Error("tiny difference rejected")
	}
	if InEpsilon(1.0, 1.1, 1e-9) {
		t.Error("large difference accepted")
	}
	if InEpsilon(math.NaN(), math.NaN(), 1) {
		t.Error("NaN compared equal")
	}
	if !InEpsilon(math.Inf(1), math.Inf(1), 0) {
		t.Error("equal infinities rejected")
	}
	if InEpsilon(math.Inf(1), math.Inf(-1), math.Inf(1)) {
		t.Error("opposite infinities accepted")
	}
}

func TestInvariantHelpers(t *testing.T) {
	if !AllFinite([]float64{0, -1, 2}) || AllFinite([]float64{math.NaN()}) || AllFinite([]float64{math.Inf(-1)}) {
		t.Error("AllFinite wrong")
	}
	if !NonDecreasing([]float64{1, 1, 2}) || NonDecreasing([]float64{2, 1}) {
		t.Error("NonDecreasing wrong")
	}
	if !NonDecreasingInts([]int{1, 1, 2}) || NonDecreasingInts([]int{2, 1}) {
		t.Error("NonDecreasingInts wrong")
	}
	if !WithinRange([]float64{0, 1}, 0, 1) || WithinRange([]float64{-0.1}, 0, 1) || WithinRange([]float64{math.NaN()}, 0, 1) {
		t.Error("WithinRange wrong")
	}
}

func TestPermutationIsDeterministicAndComplete(t *testing.T) {
	p1 := Permutation(7, 100)
	p2 := Permutation(7, 100)
	seen := make([]bool, 100)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("permutation not deterministic at %d", i)
		}
		seen[p1[i]] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d missing from permutation", i)
		}
	}
	if p3 := Permutation(8, 100); equalInts(p1, p3) {
		t.Error("different seeds produced identical permutations")
	}
}

func equalInts(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return len(a) == len(b)
}

func TestCompareCSVTolerance(t *testing.T) {
	want := "# meta\nu1,1.0000000001,x\nu2,2,y\n"
	got := "# meta\nu1,1.0000000002,x\nu2,2,y\n"
	if msg := compareCSV(want, got, 1e-9); msg != "" {
		t.Errorf("within-eps difference rejected: %s", msg)
	}
	if msg := compareCSV(want, got, 1e-12); msg == "" {
		t.Error("out-of-eps difference accepted")
	}
	// Non-numeric cells compare exactly.
	if msg := compareCSV("a,b\n", "a,c\n", 1); msg == "" {
		t.Error("string cell mismatch accepted")
	}
	// Structural mismatches are always errors.
	if msg := compareCSV("a\nb\n", "a\n", 1); msg == "" {
		t.Error("line-count mismatch accepted")
	}
	if msg := compareCSV("a,b\n", "a\n", 1); msg == "" {
		t.Error("cell-count mismatch accepted")
	}
}

func TestCSVBuilder(t *testing.T) {
	var c CSV
	c.Comment("window %s..%s", "2010-01-02", "2010-01-30")
	c.Row("user", "score", 1.25, 3)
	c.Floats("s", []float64{0.5, 1.0})
	c.Ints("r", []int{1, 2, 3})
	got := string(c.Bytes())
	want := "# window 2010-01-02..2010-01-30\nuser,score,1.25,3\ns,0.5,1\nr,1,2,3\n"
	if got != want {
		t.Errorf("CSV builder output:\n%q\nwant:\n%q", got, want)
	}
}

func TestCSVBuilderRejectsAmbiguousCells(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("comma-bearing cell did not panic")
		}
	}()
	var c CSV
	c.Row("a,b")
}

func TestDiffLines(t *testing.T) {
	msg := diffLines("a\nb\nc\n", "a\nX\nc\n")
	if !strings.Contains(msg, "line 2") || !strings.Contains(msg, "X") {
		t.Errorf("diff message %q", msg)
	}
	msg = diffLines("a\n", "a\nb\n")
	if !strings.Contains(msg, "line counts differ") {
		t.Errorf("diff message %q", msg)
	}
}

// TestGoldenRoundTrip exercises the write/compare cycle against a
// committed golden snapshot of the serializer's own output — testkit eats
// its own dog food.
func TestGoldenRoundTrip(t *testing.T) {
	var c CSV
	c.Comment("testkit self-check")
	c.Row("pos", "user", "priority")
	c.Row(1, "alice", 2)
	c.Row(2, "bob", 4)
	c.Floats("scores", []float64{1.0 / 3.0, 2.0 / 3.0, 1})
	Golden(t, "selfcheck.csv", c.Bytes())
	GoldenCSV(t, "selfcheck.csv", c.Bytes(), 1e-9)
}
