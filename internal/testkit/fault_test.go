package testkit

import (
	"bytes"
	"errors"
	"testing"
)

// memFile is an in-memory SyncWriteCloser.
type memFile struct {
	buf    bytes.Buffer
	synced int
}

func (m *memFile) Write(b []byte) (int, error) { return m.buf.Write(b) }
func (m *memFile) Sync() error                 { m.synced++; return nil }
func (m *memFile) Close() error                { return nil }

func TestFaultPlanWriteBudget(t *testing.T) {
	plan := &FaultPlan{Name: "wal-", Op: "write", After: 10}
	mem := &memFile{}
	f := plan.WrapWriter("wal-00000001.log", mem)

	if n, err := f.Write(make([]byte, 6)); n != 6 || err != nil {
		t.Fatalf("first write = (%d, %v), want (6, nil)", n, err)
	}
	if plan.Tripped() {
		t.Fatal("tripped before budget exhausted")
	}
	// This write crosses the budget: 4 bytes land (torn), then the error.
	n, err := f.Write(make([]byte, 6))
	if n != 4 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write = (%d, %v), want (4, ErrInjected)", n, err)
	}
	if !plan.Tripped() {
		t.Fatal("not tripped after budget exhausted")
	}
	if mem.buf.Len() != 10 {
		t.Fatalf("file holds %d bytes, want 10 (torn write)", mem.buf.Len())
	}
	// Dead disk afterwards: writes and syncs fail, everywhere.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip write err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip sync err = %v", err)
	}
	other := plan.WrapWriter("snapshot-1.snap", &memFile{})
	if _, err := other.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip write to unrelated file err = %v", err)
	}
	if err := plan.BeforeOp("remove", "anything"); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip op err = %v", err)
	}
}

func TestFaultPlanWriteNameFilter(t *testing.T) {
	plan := &FaultPlan{Name: "wal-", Op: "write", After: 0}
	mem := &memFile{}
	f := plan.WrapWriter("snapshot-1.snap", mem)
	if _, err := f.Write(make([]byte, 100)); err != nil {
		t.Fatalf("unmatched file faulted: %v", err)
	}
	if plan.Tripped() {
		t.Fatal("unmatched writes consumed the budget")
	}
}

func TestFaultPlanOpOccurrence(t *testing.T) {
	plan := &FaultPlan{Name: "wal-", Op: "create", After: 2}
	for i := 0; i < 2; i++ {
		if err := plan.BeforeOp("create", "wal-00000001.log"); err != nil {
			t.Fatalf("allowed occurrence %d vetoed: %v", i, err)
		}
	}
	// Non-matching op and name do not draw down the budget.
	if err := plan.BeforeOp("remove", "wal-00000001.log"); err != nil {
		t.Fatalf("non-matching op vetoed: %v", err)
	}
	if err := plan.BeforeOp("create", "snapshot-1.snap.tmp"); err != nil {
		t.Fatalf("non-matching name vetoed: %v", err)
	}
	if err := plan.BeforeOp("create", "wal-00000002.log"); !errors.Is(err, ErrInjected) {
		t.Fatalf("third matching create = %v, want ErrInjected", err)
	}
	if !plan.Tripped() {
		t.Fatal("not tripped after veto")
	}
	if err := plan.BeforeOp("append", "whatever"); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip op err = %v", err)
	}
}
