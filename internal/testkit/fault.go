package testkit

import (
	"errors"
	"io"
	"strings"
	"sync"
)

// ErrInjected is the failure every tripped failpoint returns. Tests
// assert on it with errors.Is to distinguish injected faults from real
// ones.
var ErrInjected = errors.New("testkit: injected fault")

// SyncWriteCloser is the write surface of a file: sequential writes,
// durability barrier, close. It structurally matches any file-like
// interface a package under test defines for its own persistence layer,
// so testkit stays free of repository imports.
type SyncWriteCloser interface {
	io.Writer
	io.Closer
	Sync() error
}

// FaultPlan injects exactly one fault into a stream of filesystem
// operations, then plays dead: once tripped, every further write, sync,
// and metadata operation fails with ErrInjected. That models a crash —
// everything before the fault reached the disk, nothing after it does —
// without killing the test process, which is what lets a crash-matrix
// test drive a server to an arbitrary persistence step, "crash" it, and
// then recover from the surviving files.
//
// Two fault shapes:
//
//   - Op "write": files whose base name contains Name are wrapped (via
//     WrapWriter) in a budget counter. After N bytes have been written
//     across matching files, the write in flight is cut short (a torn,
//     partial write hits the file) and fails.
//   - Any other Op ("create", "append", "rename", "remove", "truncate",
//     "syncdir"): the first N matching operations pass (via BeforeOp), the
//     next is vetoed.
//
// A FaultPlan is safe for concurrent use.
type FaultPlan struct {
	// Name selects files by base-name substring ("" matches every file).
	Name string
	// Op is "write" for a data fault, or a metadata operation name.
	Op string
	// After is the budget: bytes written (Op "write") or matching
	// occurrences allowed (metadata ops) before the fault fires.
	After int64

	mu      sync.Mutex
	used    int64
	tripped bool
}

// Tripped reports whether the fault has fired.
func (p *FaultPlan) Tripped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tripped
}

func (p *FaultPlan) matches(name string) bool {
	return p.Name == "" || strings.Contains(name, p.Name)
}

// BeforeOp implements a metadata-operation hook. It vetoes the fault
// point and everything after the plan tripped.
func (p *FaultPlan) BeforeOp(op, name string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tripped {
		return ErrInjected
	}
	if p.Op == "write" || op != p.Op || !p.matches(name) {
		return nil
	}
	if p.used < p.After {
		p.used++
		return nil
	}
	p.tripped = true
	return ErrInjected
}

// WrapWriter implements a file-wrapping hook. Only write-fault plans
// intercept data; matching files draw down the shared byte budget, and
// the write that exhausts it is truncated (the allowed prefix reaches the
// file) before failing.
func (p *FaultPlan) WrapWriter(name string, f SyncWriteCloser) SyncWriteCloser {
	if p.Op != "write" || !p.matches(name) {
		return &deadDiskFile{plan: p, f: f}
	}
	return &faultFile{plan: p, f: f}
}

// faultFile enforces the byte budget on a matched file.
type faultFile struct {
	plan *FaultPlan
	f    SyncWriteCloser
}

func (w *faultFile) Write(b []byte) (int, error) {
	p := w.plan
	p.mu.Lock()
	if p.tripped {
		p.mu.Unlock()
		return 0, ErrInjected
	}
	allowed := p.After - p.used
	if allowed > int64(len(b)) {
		p.used += int64(len(b))
		p.mu.Unlock()
		return w.f.Write(b)
	}
	// The write in flight crosses the budget: land the allowed prefix (a
	// torn write), then trip.
	p.used = p.After
	p.tripped = true
	p.mu.Unlock()
	n := 0
	if allowed > 0 {
		n, _ = w.f.Write(b[:allowed])
	}
	return n, ErrInjected
}

func (w *faultFile) Sync() error {
	if w.plan.Tripped() {
		return ErrInjected
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error { return w.f.Close() }

// deadDiskFile passes writes through until the plan trips anywhere, then
// fails everything: after the simulated crash point no file makes
// progress.
type deadDiskFile struct {
	plan *FaultPlan
	f    SyncWriteCloser
}

func (w *deadDiskFile) Write(b []byte) (int, error) {
	if w.plan.Tripped() {
		return 0, ErrInjected
	}
	return w.f.Write(b)
}

func (w *deadDiskFile) Sync() error {
	if w.plan.Tripped() {
		return ErrInjected
	}
	return w.f.Sync()
}

func (w *deadDiskFile) Close() error { return w.f.Close() }
