package features

// Aspect is a named set of related behavioral features; ACOBE trains one
// autoencoder per aspect (Section IV-B of the paper).
type Aspect struct {
	Name     string
	Features []string
}

// Fine-grained ACOBE feature names for the CERT evaluation (Section V-A3).
const (
	// Device aspect (f1, f2).
	FeatDeviceConnection = "device:connection"
	FeatDeviceNewHost    = "device:new-host-connection"

	// File aspect (f1..f7).
	FeatFileOpenLocal   = "file:open-from-local"
	FeatFileOpenRemote  = "file:open-from-remote"
	FeatFileWriteLocal  = "file:write-to-local"
	FeatFileWriteRemote = "file:write-to-remote"
	FeatFileCopyL2R     = "file:copy-from-local-to-remote"
	FeatFileCopyR2L     = "file:copy-from-remote-to-local"
	FeatFileNewOp       = "file:new-op"

	// HTTP aspect (f1..f7); visit and download are excluded by the paper.
	FeatHTTPUploadDoc = "http:upload-doc"
	FeatHTTPUploadExe = "http:upload-exe"
	FeatHTTPUploadJpg = "http:upload-jpg"
	FeatHTTPUploadPdf = "http:upload-pdf"
	FeatHTTPUploadTxt = "http:upload-txt"
	FeatHTTPUploadZip = "http:upload-zip"
	FeatHTTPNewOp     = "http:new-op"
)

// Coarse baseline feature names (Liu et al.: raw activity counts).
const (
	FeatCoarseDeviceConnect    = "coarse:device-connect"
	FeatCoarseDeviceDisconnect = "coarse:device-disconnect"
	FeatCoarseFileOpen         = "coarse:file-open"
	FeatCoarseFileWrite        = "coarse:file-write"
	FeatCoarseFileCopy         = "coarse:file-copy"
	FeatCoarseHTTPVisit        = "coarse:http-visit"
	FeatCoarseHTTPDownload     = "coarse:http-download"
	FeatCoarseHTTPUpload       = "coarse:http-upload"
	FeatCoarseLogon            = "coarse:logon"
	FeatCoarseLogoff           = "coarse:logoff"
	FeatCoarseEmailSend        = "coarse:email-send"
)

// DeviceAspect returns the paper's device-access aspect.
func DeviceAspect() Aspect {
	return Aspect{Name: "device", Features: []string{
		FeatDeviceConnection, FeatDeviceNewHost,
	}}
}

// FileAspect returns the paper's file-access aspect.
func FileAspect() Aspect {
	return Aspect{Name: "file", Features: []string{
		FeatFileOpenLocal, FeatFileOpenRemote, FeatFileWriteLocal,
		FeatFileWriteRemote, FeatFileCopyL2R, FeatFileCopyR2L, FeatFileNewOp,
	}}
}

// HTTPAspect returns the paper's HTTP-access aspect.
func HTTPAspect() Aspect {
	return Aspect{Name: "http", Features: []string{
		FeatHTTPUploadDoc, FeatHTTPUploadExe, FeatHTTPUploadJpg,
		FeatHTTPUploadPdf, FeatHTTPUploadTxt, FeatHTTPUploadZip, FeatHTTPNewOp,
	}}
}

// ACOBEAspects returns the three aspects ACOBE's ensemble is built on in
// the CERT evaluation.
func ACOBEAspects() []Aspect {
	return []Aspect{DeviceAspect(), FileAspect(), HTTPAspect()}
}

// AllInOneAspect merges every ACOBE feature into a single aspect, used by
// the paper's "All-in-1" ablation (one autoencoder for everything).
func AllInOneAspect() Aspect {
	merged := Aspect{Name: "all-in-1"}
	for _, a := range ACOBEAspects() {
		merged.Features = append(merged.Features, a.Features...)
	}
	return merged
}

// BaselineAspects returns the Liu et al. baseline's four coarse aspects
// (device, file, http, logon).
func BaselineAspects() []Aspect {
	return []Aspect{
		{Name: "device", Features: []string{FeatCoarseDeviceConnect, FeatCoarseDeviceDisconnect}},
		{Name: "file", Features: []string{FeatCoarseFileOpen, FeatCoarseFileWrite, FeatCoarseFileCopy}},
		{Name: "http", Features: []string{FeatCoarseHTTPVisit, FeatCoarseHTTPDownload, FeatCoarseHTTPUpload}},
		{Name: "logon", Features: []string{FeatCoarseLogon, FeatCoarseLogoff}},
	}
}

// AllFeatureNames returns the union of the given aspects' features, in
// order, without duplicates.
func AllFeatureNames(aspects []Aspect) []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range aspects {
		for _, f := range a.Features {
			if !seen[f] {
				seen[f] = true
				out = append(out, f)
			}
		}
	}
	return out
}
