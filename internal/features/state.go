package features

import (
	"fmt"
	"io"
	"sort"

	"acobe/internal/cert"
	"acobe/internal/persist"
)

// State serialization for the measurement table and the CERT extractor.
// The serving daemon snapshots both at day-close barriers so that a
// restart can resume ingestion exactly where it stopped: the table carries
// every measurement, the extractor carries the first-seen trackers the
// "new-op" features depend on. Encodings are deterministic (map keys are
// sorted), so equal state always serializes to identical bytes — tests
// prove deep state equality by comparing encodings.

const (
	tableStateMagic     = "ACTB"
	tableStateVersion   = 1
	extractorStateMagic = "ACXT"
	extractorVersion    = 1
)

// SaveState writes the table's span and every measurement. The users,
// features, and frame count are written too, as an integrity check against
// restoring into a differently-shaped table.
func (t *Table) SaveState(w io.Writer) error {
	pw := persist.NewWriter(w)
	pw.Magic(tableStateMagic, tableStateVersion)
	pw.Strings(t.users)
	pw.Strings(t.features)
	pw.Int(t.frames)
	pw.I64(int64(t.start))
	pw.I64(int64(t.end))
	days := t.Days()
	series := len(t.users) * len(t.features) * t.frames
	pw.U64(uint64(series * days))
	for s := 0; s < series; s++ {
		pw.F64s(t.data[s*t.capDays : s*t.capDays+days])
	}
	return pw.Err()
}

// LoadState restores state written by SaveState into a table constructed
// over the same users, features, frames, and start day. The span is grown
// to the saved end day.
func (t *Table) LoadState(r io.Reader) error {
	pr := persist.NewReader(r)
	if v := pr.Magic(tableStateMagic); pr.Err() == nil && v != tableStateVersion {
		return fmt.Errorf("features: table state version %d unsupported", v)
	}
	users := pr.Strings()
	feats := pr.Strings()
	frames := pr.Int()
	start := cert.Day(pr.I64())
	end := cert.Day(pr.I64())
	total := pr.U64()
	if err := pr.Err(); err != nil {
		return fmt.Errorf("features: load table state: %w", err)
	}
	if !equalStrings(users, t.users) || !equalStrings(feats, t.features) {
		return fmt.Errorf("features: table state users/features do not match this table")
	}
	if frames != t.frames || start != t.start {
		return fmt.Errorf("features: table state shape (%d frames, start %v) does not match (%d, %v)",
			frames, start, t.frames, t.start)
	}
	if end < start || end < t.end {
		return fmt.Errorf("features: table state end %v behind live table end %v", end, t.end)
	}
	days := int(end-start) + 1
	series := len(t.users) * len(t.features) * t.frames
	if total != uint64(series*days) {
		return fmt.Errorf("features: table state has %d cells, want %d", total, series*days)
	}
	if err := t.EnsureDay(end); err != nil {
		return err
	}
	for s := 0; s < series; s++ {
		pr.ReadF64sInto(t.data[s*t.capDays : s*t.capDays+days])
	}
	if err := pr.Err(); err != nil {
		return fmt.Errorf("features: load table state: %w", err)
	}
	return nil
}

// SaveState writes the extractor's table and first-seen trackers.
func (x *Extractor) SaveState(w io.Writer) error {
	if err := x.table.SaveState(w); err != nil {
		return err
	}
	pw := persist.NewWriter(w)
	pw.Magic(extractorStateMagic, extractorVersion)
	pw.Bool(x.started)
	pw.I64(int64(x.lastDay))
	writeSeenSets(pw, x.seenHosts)
	writeSeenSets(pw, x.seenFileOps)
	writeSeenSets(pw, x.seenHTTPOps)
	return pw.Err()
}

// LoadState restores state written by SaveState into a freshly constructed
// extractor over the same users and start day.
func (x *Extractor) LoadState(r io.Reader) error {
	if err := x.table.LoadState(r); err != nil {
		return err
	}
	pr := persist.NewReader(r)
	if v := pr.Magic(extractorStateMagic); pr.Err() == nil && v != extractorVersion {
		return fmt.Errorf("features: extractor state version %d unsupported", v)
	}
	x.started = pr.Bool()
	x.lastDay = cert.Day(pr.I64())
	readSeenSets(pr, x.seenHosts)
	readSeenSets(pr, x.seenFileOps)
	readSeenSets(pr, x.seenHTTPOps)
	if err := pr.Err(); err != nil {
		return fmt.Errorf("features: load extractor state: %w", err)
	}
	return nil
}

// writeSeenSets encodes one per-user first-seen tracker with sorted keys.
func writeSeenSets(pw *persist.Writer, sets []map[string]bool) {
	pw.U64(uint64(len(sets)))
	for _, set := range sets {
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		pw.Strings(keys)
	}
}

// readSeenSets decodes into pre-sized per-user trackers, replacing their
// contents. A user-count mismatch means the state was written for a
// different extractor shape and fails the whole load.
func readSeenSets(pr *persist.Reader, sets []map[string]bool) {
	n := pr.Len()
	if pr.Err() != nil {
		return
	}
	if n != len(sets) {
		pr.Fail(fmt.Errorf("%w: first-seen tracker has %d users, want %d", persist.ErrCorrupt, n, len(sets)))
		return
	}
	for i := 0; i < n; i++ {
		keys := pr.Strings()
		if pr.Err() != nil {
			return
		}
		set := make(map[string]bool, len(keys))
		for _, k := range keys {
			set[k] = true
		}
		sets[i] = set
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
