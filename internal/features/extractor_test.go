package features

import (
	"testing"
	"time"

	"acobe/internal/cert"
)

func at(d cert.Day, hour int) time.Time {
	return d.Date().Add(time.Duration(hour) * time.Hour)
}

func newTestExtractor(t *testing.T) *Extractor {
	t.Helper()
	x, err := NewExtractor([]string{"alice", "bob"}, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestExtractorCountsByTimeframe(t *testing.T) {
	x := newTestExtractor(t)
	events := []cert.Event{
		{Type: cert.EventDevice, Time: at(0, 10), User: "alice", PC: "PC-1", Activity: cert.ActConnect},
		{Type: cert.EventDevice, Time: at(0, 22), User: "alice", PC: "PC-1", Activity: cert.ActConnect},
		{Type: cert.EventDevice, Time: at(0, 11), User: "bob", PC: "PC-2", Activity: cert.ActConnect},
	}
	if err := x.Consume(0, events); err != nil {
		t.Fatal(err)
	}
	tab := x.Table()
	f := tab.FeatureIndex(FeatDeviceConnection)
	if got := tab.At(0, f, int(cert.Work), 0); got != 1 {
		t.Errorf("alice work connects = %g", got)
	}
	if got := tab.At(0, f, int(cert.Off), 0); got != 1 {
		t.Errorf("alice off connects = %g", got)
	}
	if got := tab.At(1, f, int(cert.Work), 0); got != 1 {
		t.Errorf("bob work connects = %g", got)
	}
}

func TestExtractorNewHostSemantics(t *testing.T) {
	x := newTestExtractor(t)
	conn := func(d cert.Day, pc string) cert.Event {
		return cert.Event{Type: cert.EventDevice, Time: at(d, 10), User: "alice", PC: pc, Activity: cert.ActConnect}
	}
	// Day 0: two connects to the same new host — both count as new (pair
	// first seen on day d counts all day).
	if err := x.Consume(0, []cert.Event{conn(0, "PC-1"), conn(0, "PC-1")}); err != nil {
		t.Fatal(err)
	}
	// Day 1: same host no longer new; a different host is.
	if err := x.Consume(1, []cert.Event{conn(1, "PC-1"), conn(1, "PC-9")}); err != nil {
		t.Fatal(err)
	}
	tab := x.Table()
	f := tab.FeatureIndex(FeatDeviceNewHost)
	if got := tab.At(0, f, int(cert.Work), 0); got != 2 {
		t.Errorf("day-0 new-host = %g, want 2", got)
	}
	if got := tab.At(0, f, int(cert.Work), 1); got != 1 {
		t.Errorf("day-1 new-host = %g, want 1", got)
	}
}

func TestExtractorFileFeatures(t *testing.T) {
	x := newTestExtractor(t)
	ev := func(act, dir, file string) cert.Event {
		return cert.Event{Type: cert.EventFile, Time: at(0, 10), User: "alice", Activity: act, Direction: dir, FileID: file}
	}
	events := []cert.Event{
		ev(cert.ActFileOpen, cert.DirLocal, "F1"),
		ev(cert.ActFileOpen, cert.DirRemote, "F1"),
		ev(cert.ActFileWrite, cert.DirLocal, "F2"),
		ev(cert.ActFileWrite, cert.DirRemote, "F2"),
		ev(cert.ActFileCopy, cert.DirLocalToRemote, "F3"),
		ev(cert.ActFileCopy, cert.DirRemoteToLocal, "F3"),
	}
	if err := x.Consume(0, events); err != nil {
		t.Fatal(err)
	}
	tab := x.Table()
	for _, name := range []string{
		FeatFileOpenLocal, FeatFileOpenRemote, FeatFileWriteLocal,
		FeatFileWriteRemote, FeatFileCopyL2R, FeatFileCopyR2L,
	} {
		if got := tab.At(0, tab.FeatureIndex(name), int(cert.Work), 0); got != 1 {
			t.Errorf("%s = %g, want 1", name, got)
		}
	}
	// Six distinct (activity, direction, file) pairs ⇒ new-op 6.
	if got := tab.At(0, tab.FeatureIndex(FeatFileNewOp), int(cert.Work), 0); got != 6 {
		t.Errorf("file new-op = %g, want 6", got)
	}
	// Coarse counters aggregate directions.
	if got := tab.At(0, tab.FeatureIndex(FeatCoarseFileOpen), int(cert.Work), 0); got != 2 {
		t.Errorf("coarse open = %g, want 2", got)
	}
}

func TestExtractorHTTPFeatures(t *testing.T) {
	x := newTestExtractor(t)
	up := func(d cert.Day, ft, dom string) cert.Event {
		return cert.Event{Type: cert.EventHTTP, Time: at(d, 10), User: "alice", Activity: cert.ActUpload, FileType: ft, Domain: dom}
	}
	day0 := []cert.Event{
		up(0, "doc", "a.com"),
		up(0, "doc", "a.com"), // repeat same pair, same day: still new
		up(0, "zip", "a.com"),
		{Type: cert.EventHTTP, Time: at(0, 10), User: "alice", Activity: cert.ActVisit, Domain: "a.com"},
		{Type: cert.EventHTTP, Time: at(0, 10), User: "alice", Activity: cert.ActDownload, Domain: "a.com", FileType: "pdf"},
	}
	if err := x.Consume(0, day0); err != nil {
		t.Fatal(err)
	}
	day1 := []cert.Event{
		up(1, "doc", "a.com"), // seen
		up(1, "doc", "b.com"), // new pair
	}
	if err := x.Consume(1, day1); err != nil {
		t.Fatal(err)
	}
	tab := x.Table()
	w := int(cert.Work)
	if got := tab.At(0, tab.FeatureIndex(FeatHTTPUploadDoc), w, 0); got != 2 {
		t.Errorf("upload-doc day0 = %g, want 2", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatHTTPUploadZip), w, 0); got != 1 {
		t.Errorf("upload-zip day0 = %g, want 1", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatHTTPNewOp), w, 0); got != 3 {
		t.Errorf("http new-op day0 = %g, want 3 (doc,doc,zip all first-seen)", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatHTTPNewOp), w, 1); got != 1 {
		t.Errorf("http new-op day1 = %g, want 1", got)
	}
	// Visits and downloads feed only the coarse features.
	if got := tab.At(0, tab.FeatureIndex(FeatCoarseHTTPVisit), w, 0); got != 1 {
		t.Errorf("coarse visit = %g", got)
	}
	if got := tab.At(0, tab.FeatureIndex(FeatCoarseHTTPDownload), w, 0); got != 1 {
		t.Errorf("coarse download = %g", got)
	}
}

func TestExtractorLogonAndEmail(t *testing.T) {
	x := newTestExtractor(t)
	events := []cert.Event{
		{Type: cert.EventLogon, Time: at(0, 9), User: "bob", Activity: cert.ActLogon},
		{Type: cert.EventLogon, Time: at(0, 17), User: "bob", Activity: cert.ActLogoff},
		{Type: cert.EventEmail, Time: at(0, 11), User: "bob", Activity: cert.ActSend, Recipient: "x@y"},
	}
	if err := x.Consume(0, events); err != nil {
		t.Fatal(err)
	}
	tab := x.Table()
	w := int(cert.Work)
	if tab.At(1, tab.FeatureIndex(FeatCoarseLogon), w, 0) != 1 ||
		tab.At(1, tab.FeatureIndex(FeatCoarseLogoff), w, 0) != 1 ||
		tab.At(1, tab.FeatureIndex(FeatCoarseEmailSend), w, 0) != 1 {
		t.Error("logon/logoff/email coarse counts wrong")
	}
}

func TestExtractorUnknownUserIgnored(t *testing.T) {
	x := newTestExtractor(t)
	err := x.Consume(0, []cert.Event{
		{Type: cert.EventDevice, Time: at(0, 10), User: "mallory", Activity: cert.ActConnect},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := x.Table()
	f := tab.FeatureIndex(FeatDeviceConnection)
	if tab.At(0, f, 0, 0) != 0 || tab.At(1, f, 0, 0) != 0 {
		t.Error("unknown user's events leaked into the table")
	}
}

func TestExtractorRejectsOutOfOrderDays(t *testing.T) {
	x := newTestExtractor(t)
	if err := x.Consume(3, nil); err != nil {
		t.Fatal(err)
	}
	if err := x.Consume(3, nil); err == nil {
		t.Error("no error for repeated day")
	}
	if err := x.Consume(2, nil); err == nil {
		t.Error("no error for backwards day")
	}
}

func TestTrackedFeaturesCoverAspects(t *testing.T) {
	have := make(map[string]bool)
	for _, f := range TrackedFeatures() {
		have[f] = true
	}
	for _, a := range append(ACOBEAspects(), BaselineAspects()...) {
		for _, f := range a.Features {
			if !have[f] {
				t.Errorf("aspect feature %s not tracked", f)
			}
		}
	}
	if !have[FeatCoarseEmailSend] {
		t.Error("email feature not tracked")
	}
}

func TestExtractorUnknownUploadType(t *testing.T) {
	x := newTestExtractor(t)
	err := x.Consume(0, []cert.Event{
		{Type: cert.EventHTTP, Time: at(0, 10), User: "alice", Activity: cert.ActUpload, FileType: "bin", Domain: "a.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := x.Table()
	// No fine-grained upload feature matches "bin"…
	for _, name := range []string{FeatHTTPUploadDoc, FeatHTTPUploadExe, FeatHTTPUploadZip} {
		if tab.At(0, tab.FeatureIndex(name), 0, 0) != 0 {
			t.Errorf("%s counted an unknown file type", name)
		}
	}
	// …but the coarse upload count and the new-op pair still register.
	if tab.At(0, tab.FeatureIndex(FeatCoarseHTTPUpload), 0, 0) != 1 {
		t.Error("coarse upload not counted")
	}
	if tab.At(0, tab.FeatureIndex(FeatHTTPNewOp), 0, 0) != 1 {
		t.Error("new-op pair not counted for unknown type")
	}
}
