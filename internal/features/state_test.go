package features

import (
	"bytes"
	"fmt"
	"testing"

	"acobe/internal/cert"
)

// stateTestEvents returns a varied synthetic day of events exercising the
// device, file, and HTTP first-seen trackers.
func stateTestEvents(d cert.Day) []cert.Event {
	pc := fmt.Sprintf("PC-%d", d%3)
	file := fmt.Sprintf("F%d", d%4)
	return []cert.Event{
		{Type: cert.EventLogon, Time: at(d, 9), User: "alice", Activity: cert.ActLogon},
		{Type: cert.EventDevice, Time: at(d, 10), User: "alice", PC: pc, Activity: cert.ActConnect},
		{Type: cert.EventDevice, Time: at(d, 23), User: "bob", PC: pc, Activity: cert.ActConnect},
		{Type: cert.EventFile, Time: at(d, 11), User: "alice", Activity: cert.ActFileOpen, Direction: cert.DirLocal, FileID: file},
		{Type: cert.EventFile, Time: at(d, 12), User: "bob", Activity: cert.ActFileCopy, Direction: cert.DirLocalToRemote, FileID: file},
		{Type: cert.EventHTTP, Time: at(d, 13), User: "alice", Activity: cert.ActUpload, FileType: "doc", Domain: fmt.Sprintf("d%d.com", d%2)},
		{Type: cert.EventHTTP, Time: at(d, 14), User: "bob", Activity: cert.ActVisit, Domain: "news.com"},
	}
}

func encodeExtractor(t *testing.T, x *Extractor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := x.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestExtractorStateRoundTrip(t *testing.T) {
	users := []string{"alice", "bob"}
	full := newTestExtractor(t)
	mid := newTestExtractor(t)
	for d := cert.Day(0); d <= 9; d++ {
		if err := full.Consume(d, stateTestEvents(d)); err != nil {
			t.Fatal(err)
		}
		if d <= 5 {
			if err := mid.Consume(d, stateTestEvents(d)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Save at day 5, restore into a fresh extractor, then feed it the rest.
	state := encodeExtractor(t, mid)
	restored, err := NewExtractor(users, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadState(bytes.NewReader(state)); err != nil {
		t.Fatal(err)
	}
	// Determinism: re-encoding restored state yields identical bytes.
	if !bytes.Equal(state, encodeExtractor(t, restored)) {
		t.Fatal("restored extractor re-encodes to different bytes")
	}
	for d := cert.Day(6); d <= 9; d++ {
		if err := restored.Consume(d, stateTestEvents(d)); err != nil {
			t.Fatal(err)
		}
	}
	// Resuming from saved state must be indistinguishable from never
	// having stopped.
	if !bytes.Equal(encodeExtractor(t, full), encodeExtractor(t, restored)) {
		t.Error("resumed extractor state differs from uninterrupted run")
	}
}

func TestExtractorStateRejectsMismatch(t *testing.T) {
	x := newTestExtractor(t)
	if err := x.Consume(0, stateTestEvents(0)); err != nil {
		t.Fatal(err)
	}
	state := encodeExtractor(t, x)

	other, err := NewExtractor([]string{"alice", "bob", "carol"}, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadState(bytes.NewReader(state)); err == nil {
		t.Error("no error loading state into extractor with different users")
	}

	shifted, err := NewExtractor([]string{"alice", "bob"}, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := shifted.LoadState(bytes.NewReader(state)); err == nil {
		t.Error("no error loading state into extractor with different start day")
	}
}

func TestExtractorStateRejectsCorrupt(t *testing.T) {
	x := newTestExtractor(t)
	for d := cert.Day(0); d <= 3; d++ {
		if err := x.Consume(d, stateTestEvents(d)); err != nil {
			t.Fatal(err)
		}
	}
	state := encodeExtractor(t, x)
	// Truncation at a few offsets must error, never panic.
	for _, cut := range []int{0, 3, 8, len(state) / 2, len(state) - 1} {
		fresh := newTestExtractor(t)
		if err := fresh.LoadState(bytes.NewReader(state[:cut])); err == nil {
			t.Errorf("no error for state truncated at %d bytes", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), state...)
	bad[0] ^= 0xff
	fresh := newTestExtractor(t)
	if err := fresh.LoadState(bytes.NewReader(bad)); err == nil {
		t.Error("no error for corrupted magic")
	}
}
