// Package features turns raw audit-log event streams into the per-user,
// per-feature, per-time-frame, per-day numeric measurements m_{f,t,d} that
// ACOBE's compound behavioral deviation matrices are derived from. It
// implements both the paper's fine-grained CERT feature set (device f1-f2,
// file f1-f7, HTTP f1-f7, including the "new-op" first-seen features) and
// the coarse single-activity-count features of the Liu et al. baseline.
package features

import (
	"fmt"

	"acobe/internal/cert"
)

// Table is a dense store of measurements indexed by (user, feature,
// time-frame, day). Values default to zero; days outside [Start, End] are
// rejected.
type Table struct {
	users    []string
	features []string
	frames   int
	start    cert.Day
	end      cert.Day

	// capDays is the allocated day capacity of every series; it is ≥
	// Days() so that EnsureDay can extend the span without re-striding the
	// backing array on every appended day.
	capDays int

	userIdx    map[string]int
	featureIdx map[string]int

	// data is laid out [user][feature][frame][day] with day fastest, so a
	// (user, feature, frame) day-series is one contiguous slice (strided
	// by capDays).
	data []float64
}

// NewTable allocates a zeroed table over the given users, features, number
// of per-day time-frames, and inclusive day span.
func NewTable(users, features []string, frames int, start, end cert.Day) (*Table, error) {
	if len(users) == 0 || len(features) == 0 {
		return nil, fmt.Errorf("features: table needs users and features (%d, %d)", len(users), len(features))
	}
	if frames <= 0 {
		return nil, fmt.Errorf("features: frames must be positive, got %d", frames)
	}
	if end < start {
		return nil, fmt.Errorf("features: empty day span [%v, %v]", start, end)
	}
	t := &Table{
		users:      append([]string(nil), users...),
		features:   append([]string(nil), features...),
		frames:     frames,
		start:      start,
		end:        end,
		userIdx:    make(map[string]int, len(users)),
		featureIdx: make(map[string]int, len(features)),
	}
	for i, u := range t.users {
		if _, dup := t.userIdx[u]; dup {
			return nil, fmt.Errorf("features: duplicate user %q", u)
		}
		t.userIdx[u] = i
	}
	for i, f := range t.features {
		if _, dup := t.featureIdx[f]; dup {
			return nil, fmt.Errorf("features: duplicate feature %q", f)
		}
		t.featureIdx[f] = i
	}
	days := int(end-start) + 1
	t.capDays = days
	t.data = make([]float64, len(users)*len(features)*frames*days)
	return t, nil
}

// Days returns the number of days covered.
func (t *Table) Days() int { return int(t.end-t.start) + 1 }

// Span returns the inclusive day range.
func (t *Table) Span() (cert.Day, cert.Day) { return t.start, t.end }

// Users returns the user IDs in index order.
func (t *Table) Users() []string { return t.users }

// Features returns the feature names in index order.
func (t *Table) Features() []string { return t.features }

// Frames returns the number of per-day time-frames.
func (t *Table) Frames() int { return t.frames }

// UserIndex returns the index of user id, or -1.
func (t *Table) UserIndex(id string) int {
	if i, ok := t.userIdx[id]; ok {
		return i
	}
	return -1
}

// FeatureIndex returns the index of the feature, or -1.
func (t *Table) FeatureIndex(name string) int {
	if i, ok := t.featureIdx[name]; ok {
		return i
	}
	return -1
}

// offset computes the flat index of (u, f, frame, day-start).
func (t *Table) offset(u, f, frame int, d cert.Day) int {
	return ((u*len(t.features)+f)*t.frames+frame)*t.capDays + int(d-t.start)
}

// EnsureDay extends the table's span so that day d is in range, keeping
// existing measurements and zero-filling the new days. Growth doubles the
// allocated day capacity (amortized O(1) per appended day), which is what
// lets the online ingestion path extend one table day-by-day for months
// without quadratic copying. Days before the current start are rejected —
// the span only grows forward.
func (t *Table) EnsureDay(d cert.Day) error {
	if d < t.start {
		return fmt.Errorf("features: EnsureDay %v before table start %v", d, t.start)
	}
	if d <= t.end {
		return nil
	}
	need := int(d-t.start) + 1
	if need > t.capDays {
		newCap := t.capDays * 2
		if newCap < need {
			newCap = need
		}
		series := len(t.users) * len(t.features) * t.frames
		grown := make([]float64, series*newCap)
		old := t.Days()
		for s := 0; s < series; s++ {
			copy(grown[s*newCap:s*newCap+old], t.data[s*t.capDays:s*t.capDays+old])
		}
		t.capDays = newCap
		t.data = grown
	}
	t.end = d
	return nil
}

// Clone returns an independent deep copy of the table, compacted to the
// logical span (growth slack is not copied). The serving layer snapshots
// tables this way so that retraining can read a frozen copy while ingest
// keeps extending the live one.
func (t *Table) Clone() *Table {
	c := *t
	days := t.Days()
	series := len(t.users) * len(t.features) * t.frames
	c.capDays = days
	c.data = make([]float64, series*days)
	for s := 0; s < series; s++ {
		copy(c.data[s*days:(s+1)*days], t.data[s*t.capDays:s*t.capDays+days])
	}
	return &c
}

// CopyDayFrom bit-copies day d's column from src into t. Both tables must
// have identical series geometry (users × features × frames) and contain
// day d; the serving layer uses it to catch a shadow view generation up to
// the published one without re-deriving any value.
func (t *Table) CopyDayFrom(src *Table, d cert.Day) error {
	series := len(t.users) * len(t.features) * t.frames
	if s2 := len(src.users) * len(src.features) * src.frames; s2 != series {
		return fmt.Errorf("features: CopyDayFrom geometry mismatch (%d vs %d series)", series, s2)
	}
	if !t.InSpan(d) || !src.InSpan(d) {
		return fmt.Errorf("features: CopyDayFrom day %v outside span", d)
	}
	di, si := int(d-t.start), int(d-src.start)
	for s := 0; s < series; s++ {
		t.data[s*t.capDays+di] = src.data[s*src.capDays+si]
	}
	return nil
}

// InSpan reports whether day d lies inside the table.
func (t *Table) InSpan(d cert.Day) bool { return d >= t.start && d <= t.end }

// Add accumulates v into the cell. Out-of-span days are ignored so callers
// can stream full datasets into tables covering a sub-range.
func (t *Table) Add(u, f, frame int, d cert.Day, v float64) {
	if !t.InSpan(d) {
		return
	}
	t.data[t.offset(u, f, frame, d)] += v
}

// At returns the cell value.
func (t *Table) At(u, f, frame int, d cert.Day) float64 {
	if !t.InSpan(d) {
		return 0
	}
	return t.data[t.offset(u, f, frame, d)]
}

// Series returns the contiguous day-series of (u, f, frame) over the whole
// span. The returned slice aliases the table; callers must not modify it,
// and a later EnsureDay growth may move the backing array, so do not hold
// the slice across span extensions.
func (t *Table) Series(u, f, frame int) []float64 {
	o := t.offset(u, f, frame, t.start)
	return t.data[o : o+t.Days() : o+t.Days()]
}

// GroupTable builds a table whose "users" are groups: each cell is the
// mean of the corresponding cells across the group's members.
// membership[u] names the group of user u and must index into groupNames;
// -1 excludes a user from every group.
func (t *Table) GroupTable(groupNames []string, membership []int) (*Table, error) {
	if len(membership) != len(t.users) {
		return nil, fmt.Errorf("features: membership has %d entries for %d users", len(membership), len(t.users))
	}
	g, err := NewTable(groupNames, t.features, t.frames, t.start, t.end)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, len(groupNames))
	for u, grp := range membership {
		if grp < 0 {
			continue
		}
		if grp >= len(groupNames) {
			return nil, fmt.Errorf("features: user %d in group %d, only %d groups", u, grp, len(groupNames))
		}
		sizes[grp]++
		for f := range t.features {
			for frame := 0; frame < t.frames; frame++ {
				src := t.Series(u, f, frame)
				dst := g.Series(grp, f, frame)
				for i, v := range src {
					dst[i] += v
				}
			}
		}
	}
	for grp, size := range sizes {
		if size == 0 {
			return nil, fmt.Errorf("features: group %q has no members", groupNames[grp])
		}
		inv := 1 / float64(size)
		for f := range t.features {
			for frame := 0; frame < t.frames; frame++ {
				dst := g.Series(grp, f, frame)
				for i := range dst {
					dst[i] *= inv
				}
			}
		}
	}
	return g, nil
}
