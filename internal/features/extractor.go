package features

import (
	"fmt"

	"acobe/internal/cert"
)

// Extractor consumes daily event batches and fills a measurement Table
// with both the fine-grained ACOBE features and the coarse baseline
// features. Days must be consumed in chronological order because the
// "new-op" features depend on what the user had done before each day.
//
// The paper defines new-op features as "the number of operations in terms
// of (feature, file-ID) [resp. (feature, domain)] pairs that the user never
// had conducted before day d": a pair first seen on day d keeps counting as
// new for all of day d, and stops counting from day d+1 on.
type Extractor struct {
	table   *Table
	lastDay cert.Day
	started bool

	// First-seen trackers, keyed by user index.
	seenHosts   []map[string]bool // device: PCs the user connected drives to
	seenFileOps []map[string]bool // file: activity|direction|fileID
	seenHTTPOps []map[string]bool // http: filetype|domain (uploads)

	// Feature indices resolved once at construction; -1 when the table
	// does not carry that feature (callers may build reduced tables).
	idx map[string]int
}

// trackedFeatures is every feature the extractor knows how to fill: the
// fine ACOBE features, the coarse baseline features, and the extra coarse
// counters not claimed by any aspect (email).
var trackedFeatures = AllFeatureNames(append(
	append(ACOBEAspects(), BaselineAspects()...),
	Aspect{Name: "email", Features: []string{FeatCoarseEmailSend}},
))

// TrackedFeatures returns the full list of feature names the extractor can
// fill (fine ACOBE features plus coarse baseline features).
func TrackedFeatures() []string {
	return append([]string(nil), trackedFeatures...)
}

// NewExtractor builds an extractor over users for the inclusive day span,
// using the paper's two time-frames (work and off hours).
func NewExtractor(users []string, start, end cert.Day) (*Extractor, error) {
	table, err := NewTable(users, trackedFeatures, cert.NumTimeframes, start, end)
	if err != nil {
		return nil, fmt.Errorf("features: new extractor: %w", err)
	}
	x := &Extractor{
		table:       table,
		seenHosts:   make([]map[string]bool, len(users)),
		seenFileOps: make([]map[string]bool, len(users)),
		seenHTTPOps: make([]map[string]bool, len(users)),
		idx:         make(map[string]int, len(trackedFeatures)),
	}
	for i := range users {
		x.seenHosts[i] = make(map[string]bool)
		x.seenFileOps[i] = make(map[string]bool)
		x.seenHTTPOps[i] = make(map[string]bool)
	}
	for _, f := range trackedFeatures {
		x.idx[f] = table.FeatureIndex(f)
	}
	return x, nil
}

// Table returns the underlying measurement table.
func (x *Extractor) Table() *Table { return x.table }

// Consume processes one day's events. Days must arrive strictly
// increasing; the day's events may be in any order.
func (x *Extractor) Consume(d cert.Day, events []cert.Event) error {
	if x.started && d <= x.lastDay {
		return fmt.Errorf("features: days must be consumed in order (got %v after %v)", d, x.lastDay)
	}
	x.started = true
	x.lastDay = d

	// Pairs first seen today: counted as new all day, merged afterwards.
	newHosts := make(map[int]map[string]bool)
	newFileOps := make(map[int]map[string]bool)
	newHTTPOps := make(map[int]map[string]bool)

	for _, e := range events {
		u := x.table.UserIndex(e.User)
		if u < 0 {
			continue // user outside this extraction (e.g. filtered dept)
		}
		frame := int(e.Timeframe())
		switch e.Type {
		case cert.EventLogon:
			switch e.Activity {
			case cert.ActLogon:
				x.add(FeatCoarseLogon, u, frame, d, 1)
			case cert.ActLogoff:
				x.add(FeatCoarseLogoff, u, frame, d, 1)
			}
		case cert.EventDevice:
			switch e.Activity {
			case cert.ActConnect:
				x.add(FeatDeviceConnection, u, frame, d, 1)
				x.add(FeatCoarseDeviceConnect, u, frame, d, 1)
				if !x.seenHosts[u][e.PC] {
					x.add(FeatDeviceNewHost, u, frame, d, 1)
					setIn(newHosts, u, e.PC)
				}
			case cert.ActDisconnect:
				x.add(FeatCoarseDeviceDisconnect, u, frame, d, 1)
			}
		case cert.EventFile:
			x.consumeFile(e, u, frame, d, newFileOps)
		case cert.EventHTTP:
			x.consumeHTTP(e, u, frame, d, newHTTPOps)
		case cert.EventEmail:
			if e.Activity == cert.ActSend {
				x.add(FeatCoarseEmailSend, u, frame, d, 1)
			}
		}
	}

	// End of day: today's new pairs become history.
	for u, set := range newHosts {
		for k := range set {
			x.seenHosts[u][k] = true
		}
	}
	for u, set := range newFileOps {
		for k := range set {
			x.seenFileOps[u][k] = true
		}
	}
	for u, set := range newHTTPOps {
		for k := range set {
			x.seenHTTPOps[u][k] = true
		}
	}
	return nil
}

func (x *Extractor) consumeFile(e cert.Event, u, frame int, d cert.Day, newOps map[int]map[string]bool) {
	var feat string
	switch {
	case e.Activity == cert.ActFileOpen && e.Direction == cert.DirLocal:
		feat = FeatFileOpenLocal
	case e.Activity == cert.ActFileOpen && e.Direction == cert.DirRemote:
		feat = FeatFileOpenRemote
	case e.Activity == cert.ActFileWrite && e.Direction == cert.DirLocal:
		feat = FeatFileWriteLocal
	case e.Activity == cert.ActFileWrite && e.Direction == cert.DirRemote:
		feat = FeatFileWriteRemote
	case e.Activity == cert.ActFileCopy && e.Direction == cert.DirLocalToRemote:
		feat = FeatFileCopyL2R
	case e.Activity == cert.ActFileCopy && e.Direction == cert.DirRemoteToLocal:
		feat = FeatFileCopyR2L
	}
	if feat != "" {
		x.add(feat, u, frame, d, 1)
	}
	switch e.Activity {
	case cert.ActFileOpen:
		x.add(FeatCoarseFileOpen, u, frame, d, 1)
	case cert.ActFileWrite:
		x.add(FeatCoarseFileWrite, u, frame, d, 1)
	case cert.ActFileCopy:
		x.add(FeatCoarseFileCopy, u, frame, d, 1)
	}
	key := e.Activity + "|" + e.Direction + "|" + e.FileID
	if !x.seenFileOps[u][key] {
		x.add(FeatFileNewOp, u, frame, d, 1)
		setIn(newOps, u, key)
	}
}

func (x *Extractor) consumeHTTP(e cert.Event, u, frame int, d cert.Day, newOps map[int]map[string]bool) {
	switch e.Activity {
	case cert.ActVisit:
		x.add(FeatCoarseHTTPVisit, u, frame, d, 1)
	case cert.ActDownload:
		x.add(FeatCoarseHTTPDownload, u, frame, d, 1)
	case cert.ActUpload:
		x.add(FeatCoarseHTTPUpload, u, frame, d, 1)
		if feat, ok := uploadFeature(e.FileType); ok {
			x.add(feat, u, frame, d, 1)
		}
		key := e.FileType + "|" + e.Domain
		if !x.seenHTTPOps[u][key] {
			x.add(FeatHTTPNewOp, u, frame, d, 1)
			setIn(newOps, u, key)
		}
	}
}

// uploadFeature maps an uploaded file type to its fine-grained feature.
func uploadFeature(fileType string) (string, bool) {
	switch fileType {
	case "doc":
		return FeatHTTPUploadDoc, true
	case "exe":
		return FeatHTTPUploadExe, true
	case "jpg":
		return FeatHTTPUploadJpg, true
	case "pdf":
		return FeatHTTPUploadPdf, true
	case "txt":
		return FeatHTTPUploadTxt, true
	case "zip":
		return FeatHTTPUploadZip, true
	default:
		return "", false
	}
}

func (x *Extractor) add(feature string, u, frame int, d cert.Day, v float64) {
	if f, ok := x.idx[feature]; ok && f >= 0 {
		x.table.Add(u, f, frame, d, v)
	}
}

func setIn(m map[int]map[string]bool, u int, key string) {
	set, ok := m[u]
	if !ok {
		set = make(map[string]bool)
		m[u] = set
	}
	set[key] = true
}
