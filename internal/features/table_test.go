package features

import (
	"testing"
	"testing/quick"

	"acobe/internal/cert"
	"acobe/internal/mathx"
)

func newTestTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable([]string{"u1", "u2", "u3"}, []string{"f1", "f2"}, 2, 10, 19)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil, []string{"f"}, 2, 0, 1); err == nil {
		t.Error("no error for empty users")
	}
	if _, err := NewTable([]string{"u"}, nil, 2, 0, 1); err == nil {
		t.Error("no error for empty features")
	}
	if _, err := NewTable([]string{"u"}, []string{"f"}, 0, 0, 1); err == nil {
		t.Error("no error for zero frames")
	}
	if _, err := NewTable([]string{"u"}, []string{"f"}, 2, 5, 4); err == nil {
		t.Error("no error for inverted span")
	}
	if _, err := NewTable([]string{"u", "u"}, []string{"f"}, 2, 0, 1); err == nil {
		t.Error("no error for duplicate users")
	}
	if _, err := NewTable([]string{"u"}, []string{"f", "f"}, 2, 0, 1); err == nil {
		t.Error("no error for duplicate features")
	}
}

func TestAddAtSeries(t *testing.T) {
	tab := newTestTable(t)
	tab.Add(1, 0, 1, 12, 3)
	tab.Add(1, 0, 1, 12, 2)
	if got := tab.At(1, 0, 1, 12); got != 5 {
		t.Errorf("At = %g, want 5 (accumulated)", got)
	}
	series := tab.Series(1, 0, 1)
	if len(series) != 10 {
		t.Fatalf("series length %d", len(series))
	}
	if series[2] != 5 {
		t.Errorf("series[2] = %g", series[2])
	}
}

func TestOutOfSpanIgnored(t *testing.T) {
	tab := newTestTable(t)
	tab.Add(0, 0, 0, 9, 1)  // before span
	tab.Add(0, 0, 0, 20, 1) // after span
	if tab.At(0, 0, 0, 9) != 0 || tab.At(0, 0, 0, 20) != 0 {
		t.Error("out-of-span reads not zero")
	}
	for _, v := range tab.Series(0, 0, 0) {
		if v != 0 {
			t.Error("out-of-span add leaked into the table")
		}
	}
}

func TestIndexLookups(t *testing.T) {
	tab := newTestTable(t)
	if tab.UserIndex("u2") != 1 || tab.UserIndex("nope") != -1 {
		t.Error("user index lookup wrong")
	}
	if tab.FeatureIndex("f2") != 1 || tab.FeatureIndex("nope") != -1 {
		t.Error("feature index lookup wrong")
	}
	if tab.Days() != 10 || tab.Frames() != 2 {
		t.Error("dimension getters wrong")
	}
}

// TestCellIsolation verifies the flat layout never aliases distinct cells.
func TestCellIsolation(t *testing.T) {
	tab := newTestTable(t)
	type cell struct{ u, f, frame, day int }
	if err := quick.Check(func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := cell{r.Intn(3), r.Intn(2), r.Intn(2), 10 + r.Intn(10)}
		b := cell{r.Intn(3), r.Intn(2), r.Intn(2), 10 + r.Intn(10)}
		if a == b {
			return true
		}
		before := tab.At(b.u, b.f, b.frame, cert.Day(b.day))
		tab.Add(a.u, a.f, a.frame, cert.Day(a.day), 1)
		return tab.At(b.u, b.f, b.frame, cert.Day(b.day)) == before
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGroupTable(t *testing.T) {
	tab := newTestTable(t)
	tab.Add(0, 0, 0, 10, 2) // u1: 2
	tab.Add(1, 0, 0, 10, 4) // u2: 4
	tab.Add(2, 0, 0, 10, 9) // u3 in its own group

	g, err := tab.GroupTable([]string{"a", "b"}, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.At(0, 0, 0, 10); got != 3 {
		t.Errorf("group a mean = %g, want 3", got)
	}
	if got := g.At(1, 0, 0, 10); got != 9 {
		t.Errorf("group b mean = %g, want 9", got)
	}
}

func TestGroupTableErrors(t *testing.T) {
	tab := newTestTable(t)
	if _, err := tab.GroupTable([]string{"a"}, []int{0, 0}); err == nil {
		t.Error("no error for membership length mismatch")
	}
	if _, err := tab.GroupTable([]string{"a"}, []int{0, 0, 5}); err == nil {
		t.Error("no error for out-of-range group")
	}
	if _, err := tab.GroupTable([]string{"a", "b"}, []int{0, 0, 0}); err == nil {
		t.Error("no error for empty group")
	}
}

func TestGroupTableExcludesNegative(t *testing.T) {
	tab := newTestTable(t)
	tab.Add(0, 0, 0, 10, 2)
	tab.Add(1, 0, 0, 10, 100)
	g, err := tab.GroupTable([]string{"a"}, []int{0, -1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.At(0, 0, 0, 10); got != 1 {
		t.Errorf("mean with excluded member = %g, want 1", got)
	}
}

func TestAspects(t *testing.T) {
	aspects := ACOBEAspects()
	if len(aspects) != 3 {
		t.Fatalf("%d ACOBE aspects", len(aspects))
	}
	if len(aspects[0].Features) != 2 || len(aspects[1].Features) != 7 || len(aspects[2].Features) != 7 {
		t.Errorf("aspect sizes %d/%d/%d, want 2/7/7",
			len(aspects[0].Features), len(aspects[1].Features), len(aspects[2].Features))
	}
	merged := AllInOneAspect()
	if len(merged.Features) != 16 {
		t.Errorf("all-in-1 has %d features, want 16", len(merged.Features))
	}
	if len(BaselineAspects()) != 4 {
		t.Errorf("%d baseline aspects, want 4", len(BaselineAspects()))
	}
}

func TestAllFeatureNamesDedup(t *testing.T) {
	a := Aspect{Name: "x", Features: []string{"f1", "f2"}}
	b := Aspect{Name: "y", Features: []string{"f2", "f3"}}
	names := AllFeatureNames([]Aspect{a, b})
	if len(names) != 3 {
		t.Errorf("got %v", names)
	}
}

// TestEnsureDayGrowth: extending the span day by day must preserve every
// existing measurement across capacity-doubling reallocations and zero-fill
// the new days, so the online ingest path can grow a table for months.
func TestEnsureDayGrowth(t *testing.T) {
	tab := newTestTable(t) // 3 users × 2 features × 2 frames, days 10..19
	rng := mathx.NewRNG(7)
	fill := func(from, to cert.Day) {
		for u := 0; u < 3; u++ {
			for f := 0; f < 2; f++ {
				for fr := 0; fr < 2; fr++ {
					for d := from; d <= to; d++ {
						tab.Add(u, f, fr, d, float64(int(rng.Normal(5, 3))))
					}
				}
			}
		}
	}
	fill(10, 19)

	// Reference copy built on a table that never grows.
	ref, err := NewTable(tab.Users(), tab.Features(), tab.Frames(), 10, 60)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 3; u++ {
		for f := 0; f < 2; f++ {
			for fr := 0; fr < 2; fr++ {
				for d := cert.Day(10); d <= 19; d++ {
					ref.Add(u, f, fr, d, tab.At(u, f, fr, d))
				}
			}
		}
	}

	for d := cert.Day(20); d <= 60; d++ {
		if err := tab.EnsureDay(d); err != nil {
			t.Fatal(err)
		}
		if _, end := tab.Span(); end != d {
			t.Fatalf("end = %v after EnsureDay(%v)", end, d)
		}
	}
	// Idempotent for in-span days, rejects pre-start days.
	if err := tab.EnsureDay(15); err != nil {
		t.Fatalf("in-span EnsureDay: %v", err)
	}
	if err := tab.EnsureDay(5); err == nil {
		t.Fatal("EnsureDay before start did not error")
	}

	for u := 0; u < 3; u++ {
		for f := 0; f < 2; f++ {
			for fr := 0; fr < 2; fr++ {
				got := tab.Series(u, f, fr)
				want := ref.Series(u, f, fr)
				if len(got) != len(want) {
					t.Fatalf("series length %d, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("u=%d f=%d fr=%d day-idx %d: %v != %v", u, f, fr, i, got[i], want[i])
					}
				}
			}
		}
	}
}
