// Package autoencoder builds the deep fully-connected autoencoders the
// paper uses: a mirrored encoder/decoder stack of Dense+ReLU layers with
// BatchNorm between layers, trained by Adadelta against MSE loss. The
// anomaly score of a sample is its reconstruction error.
package autoencoder

import (
	"context"
	"errors"
	"fmt"
	"io"

	"acobe/internal/mathx"
	"acobe/internal/nn"
)

// Config describes an autoencoder architecture and training setup.
type Config struct {
	// InputDim is the flattened width of a compound behavioral deviation
	// matrix.
	InputDim int
	// Hidden lists encoder layer widths, outermost first. The paper uses
	// [512, 256, 128, 64]; the decoder mirrors it automatically.
	Hidden []int
	// BatchNorm inserts batch normalization between layers (paper: on).
	BatchNorm bool
	// Epochs, BatchSize drive training.
	Epochs    int
	BatchSize int
	// Seed makes weight initialization and shuffling deterministic.
	Seed uint64
	// Optimizer defaults to Adadelta when nil.
	Optimizer nn.Optimizer
	// FinalSigmoid appends a sigmoid output layer, matching inputs
	// transformed into [0,1] (the paper maps deviations from [-Δ,Δ] to
	// [0,1] before feeding the model).
	FinalSigmoid bool
	// EarlyStopDelta/Patience forward to the nn trainer. Zero disables.
	EarlyStopDelta float64
	Patience       int
	// Verbose receives per-epoch loss lines when non-nil.
	Verbose func(epoch int, loss float64)
}

// PaperConfig returns the architecture used in the paper's evaluation:
// encoder 512-256-128-64 with batch norm, Adadelta, sigmoid output.
func PaperConfig(inputDim int) Config {
	return Config{
		InputDim:     inputDim,
		Hidden:       []int{512, 256, 128, 64},
		BatchNorm:    true,
		Epochs:       30,
		BatchSize:    64,
		Seed:         1,
		FinalSigmoid: true,
	}
}

// FastConfig returns a reduced architecture that preserves the paper's
// shape (4 mirrored layers, batch norm, Adadelta) at a fraction of the
// cost; used by tests and benchmarks.
func FastConfig(inputDim int) Config {
	return Config{
		InputDim:     inputDim,
		Hidden:       []int{128, 64, 32, 16},
		BatchNorm:    true,
		Epochs:       15,
		BatchSize:    64,
		Seed:         1,
		FinalSigmoid: true,
	}
}

// Autoencoder is a trained (or trainable) reconstruction model.
type Autoencoder struct {
	cfg Config
	net *nn.Network
}

// New builds an untrained autoencoder from cfg.
func New(cfg Config) (*Autoencoder, error) {
	if cfg.InputDim <= 0 {
		return nil, fmt.Errorf("autoencoder: input dim must be positive, got %d", cfg.InputDim)
	}
	if len(cfg.Hidden) == 0 {
		return nil, errors.New("autoencoder: at least one hidden layer required")
	}
	rng := mathx.NewRNG(cfg.Seed)
	var layers []nn.Layer

	dims := append([]int{cfg.InputDim}, cfg.Hidden...)
	// Encoder.
	for i := 0; i < len(cfg.Hidden); i++ {
		layers = append(layers, nn.NewDense(dims[i], dims[i+1], rng))
		if cfg.BatchNorm {
			layers = append(layers, nn.NewBatchNorm(dims[i+1]))
		}
		layers = append(layers, nn.NewActivation(nn.ActReLU))
	}
	// Decoder mirrors the encoder.
	for i := len(cfg.Hidden) - 1; i >= 1; i-- {
		layers = append(layers, nn.NewDense(dims[i+1], dims[i], rng))
		if cfg.BatchNorm {
			layers = append(layers, nn.NewBatchNorm(dims[i]))
		}
		layers = append(layers, nn.NewActivation(nn.ActReLU))
	}
	// Output layer back to the input width.
	layers = append(layers, nn.NewDense(dims[1], cfg.InputDim, rng))
	if cfg.FinalSigmoid {
		layers = append(layers, nn.NewActivation(nn.ActSigmoid))
	}
	return &Autoencoder{cfg: cfg, net: nn.NewNetwork(layers...)}, nil
}

// Fit trains the autoencoder to reconstruct the given samples (rows).
// It returns the final epoch's mean MSE loss. Cancelling ctx aborts
// training between batches and returns the context's error.
func (a *Autoencoder) Fit(ctx context.Context, samples *nn.Matrix) (float64, error) {
	if samples.Cols != a.cfg.InputDim {
		return 0, fmt.Errorf("autoencoder: samples have %d features, model expects %d", samples.Cols, a.cfg.InputDim)
	}
	opt := a.cfg.Optimizer
	if opt == nil {
		opt = nn.NewAdadelta()
	}
	return a.net.Fit(samples, samples, nn.TrainConfig{
		Epochs:         a.cfg.Epochs,
		BatchSize:      a.cfg.BatchSize,
		Optimizer:      opt,
		Shuffle:        true,
		RNG:            mathx.NewRNG(a.cfg.Seed + 0x5eed),
		Verbose:        a.cfg.Verbose,
		EarlyStopDelta: a.cfg.EarlyStopDelta,
		Patience:       a.cfg.Patience,
		Ctx:            ctx,
	})
}

// Scores returns the per-sample reconstruction errors (anomaly scores).
// Callers scoring many batches should create a Scorer once and reuse it,
// which keeps one set of forward buffers alive instead of reallocating
// them per call.
func (a *Autoencoder) Scores(samples *nn.Matrix) ([]float64, error) {
	return a.NewScorer().Scores(samples, nil)
}

// Scorer scores batches against a trained autoencoder through one reusable
// workspace. A Scorer is not safe for concurrent use; concurrent scoring
// of one trained model is done by giving each goroutine its own Scorer
// (the model itself is read-only during inference).
type Scorer struct {
	ae *Autoencoder
	ws *nn.Workspace
}

// NewScorer returns a scorer bound to this model.
func (a *Autoencoder) NewScorer() *Scorer {
	return &Scorer{ae: a, ws: a.net.NewWorkspace()}
}

// ScoreBatch appends the per-sample reconstruction errors of a stacked
// batch — any number of users'/days' flattened deviation matrices, one per
// row — to dst (which may be nil) and returns the extended slice. The
// batch flows through the network's fused batched forward pass, one GEMM
// per layer per chunk instead of a forward pass per sample. Rows are
// scored independently, so stacking and chunking leave every score
// bit-identical to scoring each row on its own. When dst has sufficient
// capacity the call performs no steady-state allocations.
func (s *Scorer) ScoreBatch(samples *nn.Matrix, dst []float64) ([]float64, error) {
	if samples.Cols != s.ae.cfg.InputDim {
		return nil, fmt.Errorf("autoencoder: samples have %d features, model expects %d", samples.Cols, s.ae.cfg.InputDim)
	}
	return s.ae.net.ReconstructionErrorsWS(s.ws, samples, dst), nil
}

// Scores appends the per-sample reconstruction errors of samples to dst
// (which may be nil) and returns the extended slice. It is ScoreBatch
// under its historical name.
func (s *Scorer) Scores(samples *nn.Matrix, dst []float64) ([]float64, error) {
	return s.ScoreBatch(samples, dst)
}

// Score returns the reconstruction error of a single flattened sample.
func (a *Autoencoder) Score(sample []float64) (float64, error) {
	m := &nn.Matrix{Rows: 1, Cols: len(sample), Data: sample}
	scores, err := a.Scores(m)
	if err != nil {
		return 0, err
	}
	return scores[0], nil
}

// Reconstruct returns the model's reconstruction of the given samples.
func (a *Autoencoder) Reconstruct(samples *nn.Matrix) *nn.Matrix {
	return a.net.Predict(samples)
}

// InputDim returns the model's expected flattened input width.
func (a *Autoencoder) InputDim() int { return a.cfg.InputDim }

// Describe returns a one-line architecture summary.
func (a *Autoencoder) Describe() string { return a.net.Describe() }

// Save writes the trained model to w.
func (a *Autoencoder) Save(w io.Writer) error {
	if err := a.net.Save(w); err != nil {
		return fmt.Errorf("autoencoder: %w", err)
	}
	return nil
}

// Load reads a model previously written by Save. cfg must carry the same
// InputDim as the saved model.
func Load(r io.Reader, cfg Config) (*Autoencoder, error) {
	net, err := nn.Load(r)
	if err != nil {
		return nil, fmt.Errorf("autoencoder: %w", err)
	}
	return &Autoencoder{cfg: cfg, net: net}, nil
}
