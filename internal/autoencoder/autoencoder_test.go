package autoencoder

import (
	"bytes"
	"context"
	"testing"

	"acobe/internal/mathx"
	"acobe/internal/nn"
)

// manifoldSamples draws points from a 2-D manifold embedded in dim
// dimensions, scaled into [0, 1] to match the sigmoid output.
func manifoldSamples(rng *mathx.RNG, n, dim int) *nn.Matrix {
	rows := make([][]float64, n)
	for i := range rows {
		a, b := rng.Float64(), rng.Float64()
		row := make([]float64, dim)
		for j := range row {
			switch j % 3 {
			case 0:
				row[j] = a
			case 1:
				row[j] = b
			default:
				row[j] = (a + b) / 2
			}
		}
		rows[i] = row
	}
	return nn.FromRows(rows)
}

func testConfig(dim int) Config {
	cfg := FastConfig(dim)
	cfg.Hidden = []int{16, 8}
	cfg.Epochs = 30
	return cfg
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{InputDim: 0, Hidden: []int{4}}); err == nil {
		t.Error("no error for zero input dim")
	}
	if _, err := New(Config{InputDim: 4}); err == nil {
		t.Error("no error for missing hidden layers")
	}
}

func TestArchitectureMirrors(t *testing.T) {
	ae, err := New(Config{InputDim: 10, Hidden: []int{8, 4}, BatchNorm: true, FinalSigmoid: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := "Dense(10→8) → BatchNorm(8) → relu → Dense(8→4) → BatchNorm(4) → relu → " +
		"Dense(4→8) → BatchNorm(8) → relu → Dense(8→10) → sigmoid"
	if got := ae.Describe(); got != want {
		t.Errorf("architecture %q\nwant %q", got, want)
	}
	if ae.InputDim() != 10 {
		t.Errorf("InputDim = %d", ae.InputDim())
	}
}

func TestAnomalyScoresSeparate(t *testing.T) {
	rng := mathx.NewRNG(1)
	const dim = 12
	train := manifoldSamples(rng, 512, dim)

	ae, err := New(testConfig(dim))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ae.Fit(context.Background(), train); err != nil {
		t.Fatal(err)
	}

	normal := manifoldSamples(mathx.NewRNG(2), 64, dim)
	normalScores, err := ae.Scores(normal)
	if err != nil {
		t.Fatal(err)
	}

	// Anomalies: break the manifold constraint (random independent dims).
	anomRows := make([][]float64, 64)
	arng := mathx.NewRNG(3)
	for i := range anomRows {
		row := make([]float64, dim)
		for j := range row {
			row[j] = arng.Float64()
		}
		anomRows[i] = row
	}
	anomScores, err := ae.Scores(nn.FromRows(anomRows))
	if err != nil {
		t.Fatal(err)
	}

	normalP95 := mathx.Percentile(normalScores, 95)
	anomMedian := mathx.Percentile(anomScores, 50)
	if anomMedian <= normalP95 {
		t.Errorf("anomaly median %.5f not above normal p95 %.5f", anomMedian, normalP95)
	}
}

func TestScoresDimensionMismatch(t *testing.T) {
	ae, err := New(testConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ae.Scores(nn.NewMatrix(2, 5)); err == nil {
		t.Error("no error for wrong sample width")
	}
	if _, err := ae.Fit(context.Background(), nn.NewMatrix(2, 5)); err == nil {
		t.Error("no error for wrong training width")
	}
}

func TestScoreSingle(t *testing.T) {
	rng := mathx.NewRNG(4)
	ae, err := New(testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	train := manifoldSamples(rng, 128, 6)
	if _, err := ae.Fit(context.Background(), train); err != nil {
		t.Fatal(err)
	}
	s, err := ae.Score(train.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	if s < 0 {
		t.Errorf("negative score %g", s)
	}
}

func TestSaveLoadPreservesScores(t *testing.T) {
	rng := mathx.NewRNG(5)
	cfg := testConfig(8)
	ae, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := manifoldSamples(rng, 128, 8)
	if _, err := ae.Fit(context.Background(), train); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := ae.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := manifoldSamples(mathx.NewRNG(6), 16, 8)
	a, err := ae.Scores(probe)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Scores(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("score %d differs after reload: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	build := func() float64 {
		ae, err := New(testConfig(6))
		if err != nil {
			t.Fatal(err)
		}
		loss, err := ae.Fit(context.Background(), manifoldSamples(mathx.NewRNG(7), 128, 6))
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	if a, b := build(), build(); a != b {
		t.Errorf("training not deterministic: %g vs %g", a, b)
	}
}

func TestPaperConfigShape(t *testing.T) {
	cfg := PaperConfig(392)
	if len(cfg.Hidden) != 4 || cfg.Hidden[0] != 512 || cfg.Hidden[3] != 64 {
		t.Errorf("paper hidden sizes %v", cfg.Hidden)
	}
	if !cfg.BatchNorm || !cfg.FinalSigmoid {
		t.Error("paper config must enable batch norm and sigmoid output")
	}
}
