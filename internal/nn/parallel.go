package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package maintains one global compute-worker budget shared by every
// consumer of heavy parallelism: the matmul kernels shard rows across extra
// goroutines only while budget remains, and ensemble-level callers (e.g.
// core.Detector.Fit training one autoencoder per behavioral aspect) hold a
// slot per concurrent model via AcquireWorker/ReleaseWorker. Coordinating
// both levels through the same counter keeps the total number of busy
// goroutines ≈ GOMAXPROCS instead of multiplying aspect-level by
// matmul-level parallelism.
//
// The budget is a counter, not a pool: when no slot is free, work runs
// inline on the calling goroutine, so progress never blocks on the budget
// (only AcquireWorker blocks, by design).
var budget = newWorkerBudget(runtime.GOMAXPROCS(0))

type workerBudget struct {
	mu    sync.Mutex
	cond  *sync.Cond
	limit atomic.Int64
	inUse int
}

func newWorkerBudget(limit int) *workerBudget {
	if limit < 1 {
		limit = 1
	}
	b := &workerBudget{}
	b.limit.Store(int64(limit))
	b.cond = sync.NewCond(&b.mu)
	return b
}

// WorkerBudget returns the current compute budget (defaults to GOMAXPROCS
// at package initialization). The limit is kept in an atomic so the matmul
// dispatch can read it on every call without taking the budget mutex.
func WorkerBudget() int {
	return int(budget.limit.Load())
}

// SetWorkerBudget resizes the compute budget to n slots (floored at 1).
// Lowering the budget does not preempt running work; it only gates new
// acquisitions. Size it to the cores you want training to occupy — see
// DESIGN.md's "Performance architecture" section.
func SetWorkerBudget(n int) {
	if n < 1 {
		n = 1
	}
	// The store happens under the mutex so a waiter in AcquireWorker cannot
	// observe the old limit, start waiting, and miss this broadcast.
	budget.mu.Lock()
	budget.limit.Store(int64(n))
	budget.mu.Unlock()
	budget.cond.Broadcast()
}

// EffectiveWorkers bounds shard fan-out by both the configured budget and
// the scheduler's actual parallelism. The package budget defaults to
// GOMAXPROCS at process start, so a later GOMAXPROCS(1) — a -cpu=1
// benchmark run, or a container shrinking its quota — would otherwise
// leave the budget high and make shardRows pay goroutine overhead with no
// parallelism to gain. When this returns 1 every matmul takes the
// zero-goroutine direct path.
func EffectiveWorkers() int {
	w := int(budget.limit.Load())
	if p := runtime.GOMAXPROCS(0); p < w {
		w = p
	}
	if w < 1 {
		w = 1
	}
	return w
}

// AcquireWorker blocks until a compute slot is free and claims it. Callers
// that train or score whole models concurrently should hold a slot for the
// duration so that model-level and matmul-level parallelism share one
// budget. Pair with ReleaseWorker.
func AcquireWorker() {
	budget.mu.Lock()
	for budget.inUse >= int(budget.limit.Load()) {
		budget.cond.Wait()
	}
	budget.inUse++
	budget.mu.Unlock()
}

// ReleaseWorker returns a slot claimed by AcquireWorker.
func ReleaseWorker() {
	budget.mu.Lock()
	if budget.inUse > 0 {
		budget.inUse--
	}
	budget.mu.Unlock()
	budget.cond.Signal()
}

// TryAcquireWorker claims a compute slot only if one is immediately free,
// reporting whether it did. Callers that shard batch work (e.g. the online
// serving layer's day-close advance) spawn a goroutine per extra slot they
// win and run the remainder inline, so progress never blocks on a busy
// budget. Pair successful acquisitions with ReleaseWorker.
func TryAcquireWorker() bool { return tryAcquireWorker() }

// tryAcquireWorker claims a slot only if one is immediately free.
func tryAcquireWorker() bool {
	budget.mu.Lock()
	ok := budget.inUse < int(budget.limit.Load())
	if ok {
		budget.inUse++
	}
	budget.mu.Unlock()
	return ok
}

// matmulKernel computes rows [rs, re) of one matrix product into out.
// Kernels are passed as named top-level functions (not closures) so that
// the serial path below stays allocation-free.
type matmulKernel func(a, b, out *Matrix, rs, re int)

// shardRows splits [0, rows) into contiguous chunks and runs kernel over
// them, spawning a goroutine per chunk only while worker slots are free;
// chunks that get no slot run inline. Because chunks are row-disjoint and
// each kernel accumulates every output element in the same order as a
// serial sweep, results are bit-identical to kernel(a, b, dst, 0, rows).
//
// When the budget allows only one shard the kernel runs inline without
// touching spawnShards, whose WaitGroup and goroutine closures would
// otherwise heap-allocate even on a single-core run.
func shardRows(kernel matmulKernel, a, b, dst *Matrix, rows int) {
	workers := EffectiveWorkers()
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		kernel(a, b, dst, 0, rows)
		return
	}
	spawnShards(kernel, a, b, dst, rows, workers)
}

func spawnShards(kernel matmulKernel, a, b, dst *Matrix, rows, workers int) {
	chunk := (rows + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < rows; start += chunk {
		end := start + chunk
		if end > rows {
			end = rows
		}
		if end < rows && tryAcquireWorker() {
			wg.Add(1)
			go func(s, e int) {
				defer wg.Done()
				defer ReleaseWorker()
				kernel(a, b, dst, s, e)
			}(start, end)
		} else {
			kernel(a, b, dst, start, end)
		}
	}
	wg.Wait()
}
