package nn

// Vector (AVX) drivers for the blocked matmul kernels. These mirror
// matmulBlocked / matmulATBBlocked exactly — same k-tiling, same pair-row
// loop, same zero-skip rule, same ascending-k accumulation — but hand the
// 4-wide column sweep to the assembly micro-kernels and read B in place:
// with vector loads the four B rows of a quad no longer need the packed
// interleave, and the panelK tile already keeps the live B panel
// L1-resident, so packing would only add traffic. Column and k tails run
// in Go with the identical arithmetic expressions, so every output
// element is bit-for-bit the scalar kernel's result.

// matmulBlockedVec computes rows [rs, re) of out = a × b (out pre-zeroed).
func matmulBlockedVec(a, b, out *Matrix, rs, re int) {
	kTot, n := a.Cols, b.Cols
	if kTot == 0 || n == 0 {
		return
	}
	blocks := n >> 2
	nv := blocks << 2 // columns the vector kernels cover
	kc := panelK(n)
	for k0 := 0; k0 < kTot; k0 += kc {
		kEnd := k0 + kc
		if kEnd > kTot {
			kEnd = kTot
		}
		kq := k0 + (kEnd-k0)&^3 // first k the quads do not cover
		i := rs
		for ; i+1 < re; i += 2 {
			arow0 := a.Data[i*kTot : (i+1)*kTot]
			arow1 := a.Data[(i+1)*kTot : (i+2)*kTot]
			orow0 := out.Data[i*n : (i+1)*n]
			orow1 := out.Data[(i+1)*n : (i+2)*n]
			for k := k0; k < kq; k += 4 {
				av := [8]float64{
					arow0[k], arow0[k+1], arow0[k+2], arow0[k+3],
					arow1[k], arow1[k+1], arow1[k+2], arow1[k+3],
				}
				if av == [8]float64{} {
					continue // ±0 terms never change a finite sum
				}
				bq := b.Data[k*n : (k+4)*n]
				if blocks > 0 {
					axpyPair4AVX(&orow0[0], &orow1[0], &bq[0], blocks, n, &av)
				}
				for j := nv; j < n; j++ {
					b0, b1, b2, b3 := bq[j], bq[n+j], bq[2*n+j], bq[3*n+j]
					orow0[j] = orow0[j] + av[0]*b0 + av[1]*b1 + av[2]*b2 + av[3]*b3
					orow1[j] = orow1[j] + av[4]*b0 + av[5]*b1 + av[6]*b2 + av[7]*b3
				}
			}
			for k := kq; k < kEnd; k++ {
				brow := b.Data[k*n : (k+1)*n]
				if av := arow0[k]; av != 0 {
					axpy1Vec(orow0, brow, av, blocks, nv)
				}
				if av := arow1[k]; av != 0 {
					axpy1Vec(orow1, brow, av, blocks, nv)
				}
			}
		}
		if i < re {
			arow := a.Data[i*kTot : (i+1)*kTot]
			orow := out.Data[i*n : (i+1)*n]
			for k := k0; k < kq; k += 4 {
				av := [4]float64{arow[k], arow[k+1], arow[k+2], arow[k+3]}
				if av == [4]float64{} {
					continue
				}
				bq := b.Data[k*n : (k+4)*n]
				if blocks > 0 {
					axpySingle4AVX(&orow[0], &bq[0], blocks, n, &av)
				}
				for j := nv; j < n; j++ {
					orow[j] = orow[j] + av[0]*bq[j] + av[1]*bq[n+j] + av[2]*bq[2*n+j] + av[3]*bq[3*n+j]
				}
			}
			for k := kq; k < kEnd; k++ {
				if av := arow[k]; av != 0 {
					axpy1Vec(orow, b.Data[k*n:(k+1)*n], av, blocks, nv)
				}
			}
		}
	}
}

// matmulATBBlockedVec computes output rows [is, ie) of out = aᵀ × b (out
// pre-zeroed); only the A loads differ from matmulBlockedVec
// (column-strided instead of row-contiguous).
func matmulATBBlockedVec(a, b, out *Matrix, is, ie int) {
	kTot, n, ac := a.Rows, b.Cols, a.Cols
	if kTot == 0 || n == 0 {
		return
	}
	ad := a.Data
	blocks := n >> 2
	nv := blocks << 2
	kc := panelK(n)
	for k0 := 0; k0 < kTot; k0 += kc {
		kEnd := k0 + kc
		if kEnd > kTot {
			kEnd = kTot
		}
		kq := k0 + (kEnd-k0)&^3
		i := is
		for ; i+1 < ie; i += 2 {
			orow0 := out.Data[i*n : (i+1)*n]
			orow1 := out.Data[(i+1)*n : (i+2)*n]
			for k := k0; k < kq; k += 4 {
				base := k * ac
				av := [8]float64{
					ad[base+i], ad[base+ac+i], ad[base+2*ac+i], ad[base+3*ac+i],
					ad[base+i+1], ad[base+ac+i+1], ad[base+2*ac+i+1], ad[base+3*ac+i+1],
				}
				if av == [8]float64{} {
					continue
				}
				bq := b.Data[k*n : (k+4)*n]
				if blocks > 0 {
					axpyPair4AVX(&orow0[0], &orow1[0], &bq[0], blocks, n, &av)
				}
				for j := nv; j < n; j++ {
					b0, b1, b2, b3 := bq[j], bq[n+j], bq[2*n+j], bq[3*n+j]
					orow0[j] = orow0[j] + av[0]*b0 + av[1]*b1 + av[2]*b2 + av[3]*b3
					orow1[j] = orow1[j] + av[4]*b0 + av[5]*b1 + av[6]*b2 + av[7]*b3
				}
			}
			for k := kq; k < kEnd; k++ {
				brow := b.Data[k*n : (k+1)*n]
				if av := ad[k*ac+i]; av != 0 {
					axpy1Vec(orow0, brow, av, blocks, nv)
				}
				if av := ad[k*ac+i+1]; av != 0 {
					axpy1Vec(orow1, brow, av, blocks, nv)
				}
			}
		}
		if i < ie {
			orow := out.Data[i*n : (i+1)*n]
			for k := k0; k < kq; k += 4 {
				base := k * ac
				av := [4]float64{ad[base+i], ad[base+ac+i], ad[base+2*ac+i], ad[base+3*ac+i]}
				if av == [4]float64{} {
					continue
				}
				bq := b.Data[k*n : (k+4)*n]
				if blocks > 0 {
					axpySingle4AVX(&orow[0], &bq[0], blocks, n, &av)
				}
				for j := nv; j < n; j++ {
					orow[j] = orow[j] + av[0]*bq[j] + av[1]*bq[n+j] + av[2]*bq[2*n+j] + av[3]*bq[3*n+j]
				}
			}
			for k := kq; k < kEnd; k++ {
				if av := ad[k*ac+i]; av != 0 {
					axpy1Vec(orow, b.Data[k*n:(k+1)*n], av, blocks, nv)
				}
			}
		}
	}
}

// axpy1Vec is axpy1 with the vector body over the first blocks×4 columns
// and a scalar tail for the rest.
func axpy1Vec(orow, brow []float64, av float64, blocks, nv int) {
	if blocks > 0 {
		axpy1AVX(&orow[0], &brow[0], blocks, av)
	}
	brow = brow[:len(orow)]
	for j := nv; j < len(orow); j++ {
		orow[j] += av * brow[j]
	}
}
