//go:build !amd64

package nn

// Non-amd64 builds always take the scalar packed kernels; the stubs exist
// only to satisfy references from the shared driver code.

var useAVX = false

func axpyPair4AVX(out0, out1, b *float64, blocks, stride int, a *[8]float64) {
	panic("nn: axpyPair4AVX called without AVX support")
}

func axpySingle4AVX(out, b *float64, blocks, stride int, a *[4]float64) {
	panic("nn: axpySingle4AVX called without AVX support")
}

func axpy1AVX(out, b *float64, blocks int, a float64) {
	panic("nn: axpy1AVX called without AVX support")
}
