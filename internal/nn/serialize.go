package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// layerSnapshot is the on-disk representation of one layer.
type layerSnapshot struct {
	Kind string // "dense", "activation", "batchnorm"

	// Dense
	In, Out int
	W, B    []float64

	// Activation
	Activation Activation

	// BatchNorm
	Dim        int
	Momentum   float64
	Epsilon    float64
	Gamma      []float64
	Beta       []float64
	MovingMean []float64
	MovingVar  []float64
}

// networkSnapshot is the on-disk representation of a network.
type networkSnapshot struct {
	Version int
	Layers  []layerSnapshot
}

// Save writes the network (architecture and weights, including BatchNorm
// moving statistics) to w in gob format.
func (n *Network) Save(w io.Writer) error {
	snap := networkSnapshot{Version: 1}
	for _, l := range n.Layers {
		switch v := l.(type) {
		case *Dense:
			snap.Layers = append(snap.Layers, layerSnapshot{
				Kind: "dense",
				In:   v.In,
				Out:  v.Out,
				W:    append([]float64(nil), v.W.Value.Data...),
				B:    append([]float64(nil), v.B.Value.Data...),
			})
		case *ActivationLayer:
			snap.Layers = append(snap.Layers, layerSnapshot{
				Kind:       "activation",
				Activation: v.Kind,
			})
		case *BatchNorm:
			snap.Layers = append(snap.Layers, layerSnapshot{
				Kind:       "batchnorm",
				Dim:        v.Dim,
				Momentum:   v.Momentum,
				Epsilon:    v.Epsilon,
				Gamma:      append([]float64(nil), v.Gamma.Value.Data...),
				Beta:       append([]float64(nil), v.Beta.Value.Data...),
				MovingMean: append([]float64(nil), v.MovingMean.Data...),
				MovingVar:  append([]float64(nil), v.MovingVar.Data...),
			})
		default:
			return fmt.Errorf("nn: cannot serialize layer type %T", l)
		}
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("nn: encode network: %w", err)
	}
	return nil
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var snap networkSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("nn: decode network: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("nn: unsupported snapshot version %d", snap.Version)
	}
	net := &Network{}
	for i, ls := range snap.Layers {
		switch ls.Kind {
		case "dense":
			if len(ls.W) != ls.In*ls.Out || len(ls.B) != ls.Out {
				return nil, fmt.Errorf("nn: layer %d: dense weight shape mismatch", i)
			}
			d := &Dense{
				In:  ls.In,
				Out: ls.Out,
				W:   newParam(fmt.Sprintf("dense_%dx%d_w", ls.In, ls.Out), &Matrix{Rows: ls.In, Cols: ls.Out, Data: append([]float64(nil), ls.W...)}),
				B:   newParam(fmt.Sprintf("dense_%dx%d_b", ls.In, ls.Out), &Matrix{Rows: 1, Cols: ls.Out, Data: append([]float64(nil), ls.B...)}),
			}
			net.Layers = append(net.Layers, d)
		case "activation":
			net.Layers = append(net.Layers, NewActivation(ls.Activation))
		case "batchnorm":
			if len(ls.Gamma) != ls.Dim || len(ls.Beta) != ls.Dim {
				return nil, fmt.Errorf("nn: layer %d: batchnorm shape mismatch", i)
			}
			bn := NewBatchNorm(ls.Dim)
			bn.Momentum = ls.Momentum
			bn.Epsilon = ls.Epsilon
			copy(bn.Gamma.Value.Data, ls.Gamma)
			copy(bn.Beta.Value.Data, ls.Beta)
			copy(bn.MovingMean.Data, ls.MovingMean)
			copy(bn.MovingVar.Data, ls.MovingVar)
			net.Layers = append(net.Layers, bn)
		default:
			return nil, fmt.Errorf("nn: layer %d: unknown kind %q", i, ls.Kind)
		}
	}
	return net, nil
}
