package nn

import (
	"fmt"
	"math"
)

// fusedStep is one stage of a network's inference plan: a Dense layer with
// the BatchNorm and/or activation that directly follows it folded into a
// single row-major epilogue pass over the matmul output, or (generic) any
// layer sequence the folder does not recognize, run through its ordinary
// ForwardInto.
type fusedStep struct {
	dense   *Dense
	bn      *BatchNorm // nil when no BatchNorm is fused
	act     Activation // 0 when no activation is fused
	generic Layer      // non-nil for unfused layers; other fields unset
}

// buildInferPlan groups the network's layers into fused steps. The
// autoencoder stacks are [Dense, BatchNorm, ReLU]×enc + mirrored dec +
// Dense + Sigmoid, so every layer lands in a fused step; anything else
// falls back to a generic step with identical semantics.
func (n *Network) buildInferPlan(dst []fusedStep) []fusedStep {
	dst = dst[:0]
	for i := 0; i < len(n.Layers); {
		d, ok := n.Layers[i].(*Dense)
		if !ok {
			dst = append(dst, fusedStep{generic: n.Layers[i]})
			i++
			continue
		}
		st := fusedStep{dense: d}
		i++
		if i < len(n.Layers) {
			if bn, ok := n.Layers[i].(*BatchNorm); ok && bn.Dim == d.Out {
				st.bn = bn
				i++
			}
		}
		if i < len(n.Layers) {
			if a, ok := n.Layers[i].(*ActivationLayer); ok {
				st.act = a.Kind
				i++
			}
		}
		dst = append(dst, st)
	}
	return dst
}

// ForwardBatchInto runs a batch through the network in inference mode
// using ws buffers, returning the final output (owned by ws). After each
// Dense matmul the bias add, BatchNorm inference affine, and activation
// are applied in one fused row-major pass over the output buffer, instead
// of three column- or element-order sweeps through separate buffers.
//
// Every element still undergoes the exact expressions of the unfused
// layers in the same order — (v+bias), then γ·(v−μ)·invStd+β, then the
// activation — so the result is bit-identical to Forward(x, false). Like
// all inference paths it mutates no layer state: concurrent scoring of
// one trained network is race-free when each goroutine has its own
// Workspace (the plan and invStd scratch live in ws, not the layers).
func (n *Network) ForwardBatchInto(ws *Workspace, x *Matrix) *Matrix {
	if !ws.planBuilt {
		ws.plan = n.buildInferPlan(ws.plan)
		ws.planBuilt = true
	}
	for si := range ws.plan {
		st := &ws.plan[si]
		out := ws.acts[si]
		if st.generic != nil {
			out.Reshape(x.Rows, st.generic.OutDim(x.Cols))
			st.generic.ForwardInto(x, false, out)
		} else {
			if x.Cols != st.dense.In {
				panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", st.dense.In, x.Cols))
			}
			out.Reshape(x.Rows, st.dense.Out)
			MatMulInto(out, x, st.dense.W.Value)
			st.epilogue(out, ws)
		}
		x = out
	}
	return x
}

// epilogue applies the step's bias add, BatchNorm inference affine, and
// activation in place over the dense matmul output, one row-major pass.
// The per-feature invStd = 1/√(movingVar+ε) values are recomputed into
// workspace-owned scratch on every call rather than cached on the shared
// trained layer, keeping concurrent scorers race-free.
func (st *fusedStep) epilogue(out *Matrix, ws *Workspace) {
	bias := st.dense.B.Value.Data
	if st.bn != nil {
		bn := st.bn
		if cap(ws.invStd) < bn.Dim {
			ws.invStd = make([]float64, bn.Dim)
		}
		invStd := ws.invStd[:bn.Dim]
		for j := range invStd {
			invStd[j] = 1 / math.Sqrt(bn.MovingVar.Data[j]+bn.Epsilon)
		}
		gamma := bn.Gamma.Value.Data
		beta := bn.Beta.Value.Data
		mean := bn.MovingMean.Data
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j, v := range row {
				row[j] = gamma[j]*((v+bias[j])-mean[j])*invStd[j] + beta[j]
			}
		}
	} else {
		out.AddRowVec(bias)
	}
	applyActivation(st.act, out.Data)
}

// applyActivation applies the activation in place with the exact
// per-element expressions of ActivationLayer.ForwardInto. Kind 0 means no
// fused activation.
func applyActivation(kind Activation, data []float64) {
	switch kind {
	case 0, ActIdentity:
	case ActReLU:
		for i, v := range data {
			if v > 0 {
				data[i] = v
			} else {
				data[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range data {
			data[i] = 1 / (1 + math.Exp(-v))
		}
	case ActTanh:
		for i, v := range data {
			data[i] = math.Tanh(v)
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %v", kind))
	}
}
