package nn

// Workspace owns every per-batch buffer one network needs for training and
// scoring: the gathered batch inputs/targets, each layer's forward
// activation and backward gradient, and the loss gradient. Buffers are
// lazily grown (Matrix.Reshape) and reused, so once shapes stabilize a
// training step performs zero heap allocations.
//
// A Workspace is bound to the layer structure of the network that created
// it and is not safe for concurrent use; concurrent scoring of one trained
// network is done by giving each goroutine its own Workspace.
type Workspace struct {
	params   []*Param
	bx, bt   *Matrix   // gathered batch inputs / targets
	acts     []*Matrix // acts[i]: output of layer i
	grads    []*Matrix // grads[i]: gradient w.r.t. the input of layer i
	lossGrad *Matrix   // dLoss/dOutput
	inCols   []int     // input width seen by each layer on the last forward
	rows     int       // batch rows of the last forward

	// Fused-inference state (see infer.go). The plan groups layers into
	// Dense+BatchNorm+activation steps; invStd is per-feature 1/√(var+ε)
	// scratch. Both live here rather than on the shared layers so
	// concurrent scorers stay race-free.
	plan      []fusedStep
	planBuilt bool
	invStd    []float64

	// sub is the reusable chunk-view header for ReconstructionErrorsWS, so
	// steady-state scoring builds no per-chunk Matrix on the heap.
	sub Matrix
}

// NewWorkspace returns an empty workspace for this network. Buffers are
// allocated on first use and retained across batches.
func (n *Network) NewWorkspace() *Workspace {
	l := len(n.Layers)
	ws := &Workspace{
		params:   n.Params(),
		bx:       &Matrix{},
		bt:       &Matrix{},
		lossGrad: &Matrix{},
		acts:     make([]*Matrix, l),
		grads:    make([]*Matrix, l),
		inCols:   make([]int, l),
	}
	for i := 0; i < l; i++ {
		ws.acts[i] = &Matrix{}
		ws.grads[i] = &Matrix{}
	}
	return ws
}

// forwardWS runs x through the network writing each layer's output into
// the workspace activation buffers, returning the final output (owned by
// ws). Arithmetic is identical to the allocating Forward.
func (n *Network) forwardWS(ws *Workspace, x *Matrix, train bool) *Matrix {
	ws.rows = x.Rows
	for i, l := range n.Layers {
		ws.inCols[i] = x.Cols
		out := ws.acts[i].Reshape(x.Rows, l.OutDim(x.Cols))
		l.ForwardInto(x, train, out)
		x = out
	}
	return x
}

// backwardWS propagates ws.lossGrad back through all layers, accumulating
// parameter gradients into the network's Params.
func (n *Network) backwardWS(ws *Workspace) {
	grad := ws.lossGrad
	for i := len(n.Layers) - 1; i >= 0; i-- {
		dst := ws.grads[i].Reshape(ws.rows, ws.inCols[i])
		n.Layers[i].BackwardInto(grad, dst)
		grad = dst
	}
}

// TrainStep runs one forward/backward/optimizer update on a prepared batch
// (bx inputs, bt targets) through ws and returns the batch's MSE loss.
// Once buffer shapes have stabilized it performs no heap allocations.
func (n *Network) TrainStep(ws *Workspace, bx, bt *Matrix, opt Optimizer) float64 {
	for _, p := range ws.params {
		p.ZeroGrad()
	}
	pred := n.forwardWS(ws, bx, true)
	loss := MSEInto(pred, bt, ws.lossGrad.Reshape(pred.Rows, pred.Cols))
	n.backwardWS(ws)
	opt.Step(ws.params)
	return loss
}

// ReconstructionErrorsWS scores x in inference mode through ws, appending
// each row's mean-squared reconstruction error against itself to dst
// (which may be nil) and returning the extended slice. Rows are scored in
// chunks (through the fused batched forward, see infer.go) to bound peak
// buffer size on large inputs. Safe to call from multiple goroutines on
// one trained network as long as each goroutine uses its own Workspace.
func (n *Network) ReconstructionErrorsWS(ws *Workspace, x *Matrix, dst []float64) []float64 {
	const chunk = 512
	for start := 0; start < x.Rows; start += chunk {
		end := start + chunk
		if end > x.Rows {
			end = x.Rows
		}
		sub := &ws.sub
		*sub = Matrix{Rows: end - start, Cols: x.Cols, Data: x.Data[start*x.Cols : end*x.Cols]}
		pred := n.ForwardBatchInto(ws, sub)
		for i := 0; i < sub.Rows; i++ {
			var ss float64
			prow := pred.Row(i)
			trow := sub.Row(i)
			for j := range prow {
				d := prow[j] - trow[j]
				ss += d * d
			}
			dst = append(dst, ss/float64(pred.Cols))
		}
	}
	return dst
}
