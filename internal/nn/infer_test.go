package nn

import (
	"math"
	"testing"

	"acobe/internal/mathx"
)

// TestForwardBatchMatchesForward pins the fused inference path to the
// layer-by-layer path bit-for-bit, on a trained Dense+BatchNorm+ReLU
// stack (so the moving statistics are non-trivial) across batch sizes
// including 1, 7, a prime, and a multi-chunk size.
func TestForwardBatchMatchesForward(t *testing.T) {
	rng := mathx.NewRNG(11)
	net := NewNetwork(
		NewDense(20, 12, rng),
		NewBatchNorm(12),
		NewActivation(ActReLU),
		NewDense(12, 20, rng),
		NewActivation(ActSigmoid),
	)
	train := randomMatrix(rng, 64, 20)
	if _, err := net.Fit(train, train, TrainConfig{Epochs: 3, BatchSize: 16, RNG: mathx.NewRNG(12)}); err != nil {
		t.Fatal(err)
	}

	ws := net.NewWorkspace()
	for _, rows := range []int{1, 7, 31, 64, 513} {
		x := randomMatrix(rng, rows, 20)
		want := net.Forward(x, false)
		got := net.ForwardBatchInto(ws, x)
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("rows=%d: shape %dx%d, want %dx%d", rows, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("rows=%d: element %d = %x, want %x", rows, i,
					math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
			}
		}
	}
}

// TestForwardBatchGenericFallback checks that layer stacks the plan
// folder does not recognize (a leading BatchNorm, a bare activation pair)
// still run correctly through generic steps.
func TestForwardBatchGenericFallback(t *testing.T) {
	rng := mathx.NewRNG(21)
	net := NewNetwork(
		NewBatchNorm(10),
		NewActivation(ActTanh),
		NewDense(10, 6, rng),
	)
	x := randomMatrix(rng, 9, 10)
	want := net.Forward(x, false)
	got := net.ForwardBatchInto(net.NewWorkspace(), x)
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("element %d = %g, want %g", i, got.Data[i], want.Data[i])
		}
	}
}

// TestReconstructionErrorsBatchSizes checks ReconstructionErrorsWS (now
// routed through the fused batched forward) against per-row scoring at
// awkward batch sizes, bit-for-bit.
func TestReconstructionErrorsBatchSizes(t *testing.T) {
	rng := mathx.NewRNG(31)
	net := NewNetwork(
		NewDense(16, 8, rng),
		NewBatchNorm(8),
		NewActivation(ActReLU),
		NewDense(8, 16, rng),
		NewActivation(ActSigmoid),
	)
	train := randomMatrix(rng, 48, 16)
	if _, err := net.Fit(train, train, TrainConfig{Epochs: 2, BatchSize: 16, RNG: mathx.NewRNG(32)}); err != nil {
		t.Fatal(err)
	}
	ws := net.NewWorkspace()
	rowWS := net.NewWorkspace()
	for _, rows := range []int{1, 7, 13, 600} {
		x := randomMatrix(rng, rows, 16)
		batched := net.ReconstructionErrorsWS(ws, x, nil)
		for i := 0; i < rows; i++ {
			row := &Matrix{Rows: 1, Cols: 16, Data: x.Row(i)}
			single := net.ReconstructionErrorsWS(rowWS, row, nil)
			if math.Float64bits(batched[i]) != math.Float64bits(single[0]) {
				t.Fatalf("rows=%d: score %d = %x, want %x", rows, i,
					math.Float64bits(batched[i]), math.Float64bits(single[0]))
			}
		}
	}
}
