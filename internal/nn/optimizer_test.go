package nn

import (
	"math"
	"testing"
)

// quadParam builds a single scalar parameter with gradient = 2(x - c),
// minimizing (x-c)².
func quadParam(x0 float64) *Param {
	p := newParam("x", NewMatrix(1, 1))
	p.Value.Data[0] = x0
	return p
}

func stepQuadratic(opt Optimizer, p *Param, c float64, steps int) float64 {
	for i := 0; i < steps; i++ {
		p.ZeroGrad()
		p.Grad.Data[0] = 2 * (p.Value.Data[0] - c)
		opt.Step([]*Param{p})
	}
	return p.Value.Data[0]
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := quadParam(10)
	got := stepQuadratic(NewSGD(0.1), p, 3, 200)
	if math.Abs(got-3) > 1e-6 {
		t.Errorf("SGD converged to %g, want 3", got)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := quadParam(10)
	opt := &SGD{LR: 0.05, Momentum: 0.9}
	got := stepQuadratic(opt, p, -2, 500)
	if math.Abs(got+2) > 1e-4 {
		t.Errorf("SGD+momentum converged to %g, want -2", got)
	}
}

func TestSGDStepDirection(t *testing.T) {
	p := quadParam(5)
	p.Grad.Data[0] = 2 // positive gradient ⇒ value must decrease
	NewSGD(0.1).Step([]*Param{p})
	if p.Value.Data[0] >= 5 {
		t.Errorf("value %g did not decrease", p.Value.Data[0])
	}
	if math.Abs(p.Value.Data[0]-4.8) > 1e-12 {
		t.Errorf("value %g, want 4.8", p.Value.Data[0])
	}
}

func TestAdadeltaConvergesOnQuadratic(t *testing.T) {
	p := quadParam(10)
	got := stepQuadratic(NewAdadelta(), p, 3, 4000)
	if math.Abs(got-3) > 0.05 {
		t.Errorf("Adadelta converged to %g, want ≈ 3", got)
	}
}

func TestAdadeltaMovesWithoutLearningRateTuning(t *testing.T) {
	// The appeal of Adadelta: the very first step already moves the
	// parameter even though no learning rate was chosen.
	p := quadParam(10)
	NewAdadelta().Step([]*Param{p})
	// Gradient is zero here (never set) — value must not move.
	if p.Value.Data[0] != 10 {
		t.Errorf("moved with zero gradient: %g", p.Value.Data[0])
	}
	p.Grad.Data[0] = 1
	NewAdadelta().Step([]*Param{p})
	if p.Value.Data[0] >= 10 {
		t.Errorf("did not move against gradient: %g", p.Value.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := quadParam(-8)
	got := stepQuadratic(NewAdam(0.05), p, 2, 2000)
	if math.Abs(got-2) > 0.01 {
		t.Errorf("Adam converged to %g, want 2", got)
	}
}

func TestOptimizerDescribe(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1), NewAdadelta(), NewAdam(0.001)} {
		if opt.Describe() == "" {
			t.Errorf("%T has empty description", opt)
		}
	}
}

func TestOptimizerStateIsPerParameter(t *testing.T) {
	a := quadParam(1)
	b := quadParam(1)
	opt := NewAdadelta()
	a.Grad.Data[0] = 5
	b.Grad.Data[0] = 0
	opt.Step([]*Param{a, b})
	if a.Value.Data[0] == 1 {
		t.Error("param a did not move")
	}
	if b.Value.Data[0] != 1 {
		t.Error("param b moved despite zero gradient")
	}
}
