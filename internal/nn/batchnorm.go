package nn

import (
	"fmt"
	"math"
)

// BatchNorm implements batch normalization (Ioffe & Szegedy 2015) over the
// feature dimension, matching tf.keras.layers.BatchNormalization as used by
// the paper: during training it normalizes with batch statistics and
// maintains exponential moving averages; during inference it normalizes
// with the moving averages.
type BatchNorm struct {
	Dim      int
	Momentum float64 // moving-average momentum (keras default 0.99)
	Epsilon  float64 // numerical stability term (keras default 1e-3)

	Gamma *Param // 1×Dim scale, initialized to ones
	Beta  *Param // 1×Dim shift, initialized to zeros

	// Moving statistics used at inference time (not trained by gradient).
	MovingMean *Matrix // 1×Dim
	MovingVar  *Matrix // 1×Dim

	// Saved forward-pass intermediates for backprop.
	lastXHat    *Matrix
	lastInvStd  []float64
	lastCentred *Matrix
	lastBatch   int
	// lastUsedMoving marks that the most recent training-mode Forward fell
	// back to moving statistics (single-sample batch); Backward then
	// treats the layer as a fixed affine transform.
	lastUsedMoving bool
}

// NewBatchNorm returns a batch-normalization layer over dim features with
// keras-default momentum 0.99 and epsilon 1e-3.
func NewBatchNorm(dim int) *BatchNorm {
	gamma := NewMatrix(1, dim)
	for i := range gamma.Data {
		gamma.Data[i] = 1
	}
	movingVar := NewMatrix(1, dim)
	for i := range movingVar.Data {
		movingVar.Data[i] = 1
	}
	return &BatchNorm{
		Dim:        dim,
		Momentum:   0.99,
		Epsilon:    1e-3,
		Gamma:      newParam(fmt.Sprintf("bn_%d_gamma", dim), gamma),
		Beta:       newParam(fmt.Sprintf("bn_%d_beta", dim), NewMatrix(1, dim)),
		MovingMean: NewMatrix(1, dim),
		MovingVar:  movingVar,
	}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *Matrix, train bool) *Matrix {
	if x.Cols != b.Dim {
		panic(fmt.Sprintf("nn: batchnorm expects %d features, got %d", b.Dim, x.Cols))
	}
	n := float64(x.Rows)
	out := NewMatrix(x.Rows, x.Cols)
	if !train || x.Rows == 1 {
		// Inference path: use moving statistics. A single-sample batch
		// also uses moving statistics, since batch variance would be 0.
		b.lastUsedMoving = train
		for j := 0; j < b.Dim; j++ {
			invStd := 1 / math.Sqrt(b.MovingVar.Data[j]+b.Epsilon)
			g := b.Gamma.Value.Data[j]
			bt := b.Beta.Value.Data[j]
			mu := b.MovingMean.Data[j]
			for i := 0; i < x.Rows; i++ {
				out.Data[i*x.Cols+j] = g*(x.Data[i*x.Cols+j]-mu)*invStd + bt
			}
		}
		return out
	}

	mean := make([]float64, b.Dim)
	variance := make([]float64, b.Dim)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}

	b.lastUsedMoving = false
	b.lastInvStd = make([]float64, b.Dim)
	b.lastCentred = NewMatrix(x.Rows, x.Cols)
	b.lastXHat = NewMatrix(x.Rows, x.Cols)
	b.lastBatch = x.Rows
	for j := 0; j < b.Dim; j++ {
		b.lastInvStd[j] = 1 / math.Sqrt(variance[j]+b.Epsilon)
	}
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < b.Dim; j++ {
			idx := i*x.Cols + j
			c := x.Data[idx] - mean[j]
			b.lastCentred.Data[idx] = c
			xhat := c * b.lastInvStd[j]
			b.lastXHat.Data[idx] = xhat
			out.Data[idx] = b.Gamma.Value.Data[j]*xhat + b.Beta.Value.Data[j]
		}
	}

	// Update moving statistics.
	for j := 0; j < b.Dim; j++ {
		b.MovingMean.Data[j] = b.Momentum*b.MovingMean.Data[j] + (1-b.Momentum)*mean[j]
		b.MovingVar.Data[j] = b.Momentum*b.MovingVar.Data[j] + (1-b.Momentum)*variance[j]
	}
	return out
}

// Backward implements Layer. When the most recent Forward used moving
// statistics (single-sample training batch), the layer acts as a fixed
// affine transform: dx = dy · γ · invStd. γ/β gradients are skipped for
// such batches — a negligible approximation that only affects the rare
// one-row tail batch of an epoch.
func (b *BatchNorm) Backward(gradOut *Matrix) *Matrix {
	if b.lastUsedMoving {
		out := NewMatrix(gradOut.Rows, gradOut.Cols)
		for i := 0; i < gradOut.Rows; i++ {
			for j := 0; j < b.Dim; j++ {
				idx := i*gradOut.Cols + j
				invStd := 1 / math.Sqrt(b.MovingVar.Data[j]+b.Epsilon)
				out.Data[idx] = gradOut.Data[idx] * b.Gamma.Value.Data[j] * invStd
			}
		}
		return out
	}
	if b.lastXHat == nil {
		panic("nn: BatchNorm.Backward before training-mode Forward")
	}
	n := float64(b.lastBatch)
	out := NewMatrix(gradOut.Rows, gradOut.Cols)

	// Per-feature reductions.
	sumDy := make([]float64, b.Dim)
	sumDyXHat := make([]float64, b.Dim)
	for i := 0; i < gradOut.Rows; i++ {
		for j := 0; j < b.Dim; j++ {
			idx := i*gradOut.Cols + j
			sumDy[j] += gradOut.Data[idx]
			sumDyXHat[j] += gradOut.Data[idx] * b.lastXHat.Data[idx]
		}
	}
	for j := 0; j < b.Dim; j++ {
		b.Gamma.Grad.Data[j] += sumDyXHat[j]
		b.Beta.Grad.Data[j] += sumDy[j]
	}
	for i := 0; i < gradOut.Rows; i++ {
		for j := 0; j < b.Dim; j++ {
			idx := i*gradOut.Cols + j
			dxhat := gradOut.Data[idx] * b.Gamma.Value.Data[j]
			// Standard batch-norm input gradient:
			// dx = (1/n) * invStd * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
			out.Data[idx] = b.lastInvStd[j] / n *
				(n*dxhat - b.Gamma.Value.Data[j]*sumDy[j] - b.lastXHat.Data[idx]*b.Gamma.Value.Data[j]*sumDyXHat[j])
		}
	}
	return out
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// OutDim implements Layer.
func (b *BatchNorm) OutDim(inDim int) int { return inDim }

// Describe implements Layer.
func (b *BatchNorm) Describe() string { return fmt.Sprintf("BatchNorm(%d)", b.Dim) }
