package nn

import (
	"fmt"
	"math"
)

// BatchNorm implements batch normalization (Ioffe & Szegedy 2015) over the
// feature dimension, matching tf.keras.layers.BatchNormalization as used by
// the paper: during training it normalizes with batch statistics and
// maintains exponential moving averages; during inference it normalizes
// with the moving averages.
type BatchNorm struct {
	Dim      int
	Momentum float64 // moving-average momentum (keras default 0.99)
	Epsilon  float64 // numerical stability term (keras default 1e-3)

	Gamma *Param // 1×Dim scale, initialized to ones
	Beta  *Param // 1×Dim shift, initialized to zeros

	// Moving statistics used at inference time (not trained by gradient).
	MovingMean *Matrix // 1×Dim
	MovingVar  *Matrix // 1×Dim

	// Saved forward-pass intermediates for backprop. The matrices and
	// slices are reused across batches (Reshape), so steady-state training
	// does not allocate.
	lastXHat    *Matrix
	lastInvStd  []float64
	lastCentred *Matrix
	lastBatch   int
	// lastUsedMoving marks that the most recent training-mode Forward fell
	// back to moving statistics (single-sample batch); Backward then
	// treats the layer as a fixed affine transform.
	lastUsedMoving bool

	// Reduction scratch (length Dim), reused across batches.
	meanScratch  []float64
	varScratch   []float64
	sumDyScratch []float64
	sumDxhScr    []float64
}

// NewBatchNorm returns a batch-normalization layer over dim features with
// keras-default momentum 0.99 and epsilon 1e-3.
func NewBatchNorm(dim int) *BatchNorm {
	gamma := NewMatrix(1, dim)
	for i := range gamma.Data {
		gamma.Data[i] = 1
	}
	movingVar := NewMatrix(1, dim)
	for i := range movingVar.Data {
		movingVar.Data[i] = 1
	}
	return &BatchNorm{
		Dim:        dim,
		Momentum:   0.99,
		Epsilon:    1e-3,
		Gamma:      newParam(fmt.Sprintf("bn_%d_gamma", dim), gamma),
		Beta:       newParam(fmt.Sprintf("bn_%d_beta", dim), NewMatrix(1, dim)),
		MovingMean: NewMatrix(1, dim),
		MovingVar:  movingVar,
	}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *Matrix, train bool) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	b.ForwardInto(x, train, out)
	return out
}

// ForwardInto implements Layer.
func (b *BatchNorm) ForwardInto(x *Matrix, train bool, out *Matrix) {
	if x.Cols != b.Dim {
		panic(fmt.Sprintf("nn: batchnorm expects %d features, got %d", b.Dim, x.Cols))
	}
	n := float64(x.Rows)
	if !train || x.Rows == 1 {
		// Inference path: use moving statistics. A single-sample batch
		// also uses moving statistics, since batch variance would be 0.
		// Inference mutates no state, so trained layers score concurrently.
		if train {
			b.lastUsedMoving = true
		}
		for j := 0; j < b.Dim; j++ {
			invStd := 1 / math.Sqrt(b.MovingVar.Data[j]+b.Epsilon)
			g := b.Gamma.Value.Data[j]
			bt := b.Beta.Value.Data[j]
			mu := b.MovingMean.Data[j]
			for i := 0; i < x.Rows; i++ {
				out.Data[i*x.Cols+j] = g*(x.Data[i*x.Cols+j]-mu)*invStd + bt
			}
		}
		return
	}

	if b.meanScratch == nil {
		b.meanScratch = make([]float64, b.Dim)
		b.varScratch = make([]float64, b.Dim)
	}
	mean, variance := b.meanScratch, b.varScratch
	for j := range mean {
		mean[j], variance[j] = 0, 0
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= n
	}

	b.lastUsedMoving = false
	if b.lastInvStd == nil {
		b.lastInvStd = make([]float64, b.Dim)
	}
	if b.lastCentred == nil {
		b.lastCentred = &Matrix{}
		b.lastXHat = &Matrix{}
	}
	b.lastCentred.Reshape(x.Rows, x.Cols)
	b.lastXHat.Reshape(x.Rows, x.Cols)
	b.lastBatch = x.Rows
	for j := 0; j < b.Dim; j++ {
		b.lastInvStd[j] = 1 / math.Sqrt(variance[j]+b.Epsilon)
	}
	for i := 0; i < x.Rows; i++ {
		for j := 0; j < b.Dim; j++ {
			idx := i*x.Cols + j
			c := x.Data[idx] - mean[j]
			b.lastCentred.Data[idx] = c
			xhat := c * b.lastInvStd[j]
			b.lastXHat.Data[idx] = xhat
			out.Data[idx] = b.Gamma.Value.Data[j]*xhat + b.Beta.Value.Data[j]
		}
	}

	// Update moving statistics.
	for j := 0; j < b.Dim; j++ {
		b.MovingMean.Data[j] = b.Momentum*b.MovingMean.Data[j] + (1-b.Momentum)*mean[j]
		b.MovingVar.Data[j] = b.Momentum*b.MovingVar.Data[j] + (1-b.Momentum)*variance[j]
	}
}

// Backward implements Layer. When the most recent Forward used moving
// statistics (single-sample training batch), the layer acts as a fixed
// affine transform: dx = dy · γ · invStd. γ/β gradients are skipped for
// such batches — a negligible approximation that only affects the rare
// one-row tail batch of an epoch.
func (b *BatchNorm) Backward(gradOut *Matrix) *Matrix {
	out := NewMatrix(gradOut.Rows, gradOut.Cols)
	b.BackwardInto(gradOut, out)
	return out
}

// BackwardInto implements Layer.
func (b *BatchNorm) BackwardInto(gradOut, dst *Matrix) {
	if b.lastUsedMoving {
		for i := 0; i < gradOut.Rows; i++ {
			for j := 0; j < b.Dim; j++ {
				idx := i*gradOut.Cols + j
				invStd := 1 / math.Sqrt(b.MovingVar.Data[j]+b.Epsilon)
				dst.Data[idx] = gradOut.Data[idx] * b.Gamma.Value.Data[j] * invStd
			}
		}
		return
	}
	if b.lastXHat == nil {
		panic("nn: BatchNorm.Backward before training-mode Forward")
	}
	n := float64(b.lastBatch)

	// Per-feature reductions.
	if b.sumDyScratch == nil {
		b.sumDyScratch = make([]float64, b.Dim)
		b.sumDxhScr = make([]float64, b.Dim)
	}
	sumDy, sumDyXHat := b.sumDyScratch, b.sumDxhScr
	for j := range sumDy {
		sumDy[j], sumDyXHat[j] = 0, 0
	}
	for i := 0; i < gradOut.Rows; i++ {
		for j := 0; j < b.Dim; j++ {
			idx := i*gradOut.Cols + j
			sumDy[j] += gradOut.Data[idx]
			sumDyXHat[j] += gradOut.Data[idx] * b.lastXHat.Data[idx]
		}
	}
	for j := 0; j < b.Dim; j++ {
		b.Gamma.Grad.Data[j] += sumDyXHat[j]
		b.Beta.Grad.Data[j] += sumDy[j]
	}
	for i := 0; i < gradOut.Rows; i++ {
		for j := 0; j < b.Dim; j++ {
			idx := i*gradOut.Cols + j
			dxhat := gradOut.Data[idx] * b.Gamma.Value.Data[j]
			// Standard batch-norm input gradient:
			// dx = (1/n) * invStd * (n*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
			dst.Data[idx] = b.lastInvStd[j] / n *
				(n*dxhat - b.Gamma.Value.Data[j]*sumDy[j] - b.lastXHat.Data[idx]*b.Gamma.Value.Data[j]*sumDyXHat[j])
		}
	}
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// OutDim implements Layer.
func (b *BatchNorm) OutDim(inDim int) int { return inDim }

// Describe implements Layer.
func (b *BatchNorm) Describe() string { return fmt.Sprintf("BatchNorm(%d)", b.Dim) }
