package nn

import (
	"math"
	"runtime"
	"testing"

	"acobe/internal/mathx"
)

// sparseMatrix returns a rows×cols matrix with ~30% exact zeros, so the
// parity tests exercise the quad-skip and legacy zero-skip paths.
func sparseMatrix(r *mathx.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		if r.Float64() < 0.3 {
			continue
		}
		m.Data[i] = r.Normal(0, 1)
	}
	return m
}

// matricesIdentical requires bit-exact equality (math.Float64bits), the
// contract the blocked kernels must keep so golden snapshots never move.
func matricesIdentical(t *testing.T, label string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: element %d = %x, want %x", label, i,
				math.Float64bits(got.Data[i]), math.Float64bits(want.Data[i]))
		}
	}
}

// dispatchShapes covers every row of the dispatch size table in matrix.go
// plus the kernels' edge geometry: MACs below smallKernelCutoff (legacy
// sweep), between the cutoffs (blocked direct), and above
// parallelThreshold (blocked + sharded); odd row counts (pair-kernel
// tail), k not a multiple of 4 (quad tail), k crossing the panelFloats/n
// panel boundary, and single-row/single-column extremes.
var dispatchShapes = [][3]int{
	{1, 1, 1},      // 1 MAC: legacy
	{5, 7, 3},      // 105 MACs: legacy, odd everything
	{16, 32, 16},   // 8192 MACs == smallKernelCutoff: first blocked shape
	{33, 17, 9},    // odd rows + k tail
	{63, 100, 65},  // odd rows, k tail, odd cols
	{64, 64, 64},   // 256K MACs == parallelThreshold: first sharded shape
	{64, 392, 128}, // the training hot shape (sharded when workers allow)
	{3, 4099, 5},   // k crosses the packed-panel boundary mid-matrix
	{1, 513, 1023}, // single output row, wide panel (panelK floor)
	{2, 9000, 2},   // deep k, tiny n: many panels per product
}

// TestMatMulDispatchTable pins the blocked kernels to the legacy sweeps
// bit-for-bit on every size class of the dispatch table, for all three
// products, at worker budget 1 and at the default budget. On AVX machines
// this exercises the vector drivers; TestMatMulScalarKernelParity covers
// the packed scalar fallback.
func TestMatMulDispatchTable(t *testing.T) {
	runDispatchParity(t)
}

// TestMatMulScalarKernelParity forces the packed scalar kernels on
// machines whose default is the AVX path, so both kernel families stay
// pinned to the legacy sweeps regardless of the build host.
func TestMatMulScalarKernelParity(t *testing.T) {
	if !useAVX {
		t.Skip("scalar kernels are already the default on this machine")
	}
	useAVX = false
	defer func() { useAVX = true }()
	runDispatchParity(t)
}

func runDispatchParity(t *testing.T) {
	t.Helper()
	prev := WorkerBudget()
	defer SetWorkerBudget(prev)
	for _, budget := range []int{1, prev} {
		SetWorkerBudget(budget)
		r := mathx.NewRNG(99)
		for _, s := range dispatchShapes {
			rows, k, cols := s[0], s[1], s[2]

			a := sparseMatrix(r, rows, k)
			b := sparseMatrix(r, k, cols)
			want := NewMatrix(rows, cols)
			matmulRange(a, b, want, 0, rows)
			matricesIdentical(t, "MatMul", MatMul(a, b), want)

			at := sparseMatrix(r, k, rows)
			want = NewMatrix(rows, cols)
			matmulATBRange(at, b, want, 0, rows)
			matricesIdentical(t, "MatMulATB", MatMulATB(at, b), want)

			bt := sparseMatrix(r, cols, k)
			want = NewMatrix(rows, cols)
			matmulABTRange(a, bt, want, 0, rows)
			matricesIdentical(t, "MatMulABT", MatMulABT(a, bt), want)
		}
	}
}

// TestEffectiveWorkers pins the dispatch fix for the GOMAXPROCS=1
// regression: the effective worker count honors both the configured
// budget and the scheduler's live GOMAXPROCS, whichever is smaller.
func TestEffectiveWorkers(t *testing.T) {
	prev := WorkerBudget()
	defer SetWorkerBudget(prev)

	SetWorkerBudget(1)
	if got := EffectiveWorkers(); got != 1 {
		t.Errorf("EffectiveWorkers with budget 1 = %d, want 1", got)
	}
	SetWorkerBudget(64)
	if got, p := EffectiveWorkers(), runtime.GOMAXPROCS(0); got != min(64, p) {
		t.Errorf("EffectiveWorkers with budget 64 = %d, want min(64, GOMAXPROCS=%d)", got, p)
	}
}

// TestMatMulZeroDims checks the blocked kernels tolerate degenerate
// shapes (empty k or n) like the legacy ones do.
func TestMatMulZeroDims(t *testing.T) {
	for _, s := range [][3]int{{0, 3, 2}, {3, 0, 2}, {3, 2, 0}} {
		got := MatMul(NewMatrix(s[0], s[1]), NewMatrix(s[1], s[2]))
		if got.Rows != s[0] || got.Cols != s[2] {
			t.Errorf("MatMul zero-dim shape %v → %dx%d", s, got.Rows, got.Cols)
		}
	}
}

// BenchmarkMatMulDirectDispatch measures one shape from each row of the
// dispatch size table under a worker budget of 1 — the configuration
// PR 1's sharded kernels regressed. The 0 allocs/op reported for every
// size class is the proof of direct dispatch: spawning even one shard
// goroutine would allocate (goroutine closure + WaitGroup bookkeeping),
// so a zero-allocation steady state means the single-worker path never
// touches the goroutine machinery.
func BenchmarkMatMulDirectDispatch(b *testing.B) {
	prev := WorkerBudget()
	defer SetWorkerBudget(prev)
	SetWorkerBudget(1)
	for _, bc := range []struct {
		name string
		s    [3]int
	}{
		{"legacy_4Ki", [3]int{8, 16, 8}},      // < smallKernelCutoff
		{"blocked_64Ki", [3]int{32, 64, 32}},  // < parallelThreshold
		{"blocked_3Mi", [3]int{64, 392, 128}}, // ≥ parallelThreshold, 1 worker
	} {
		b.Run(bc.name, func(b *testing.B) {
			r := mathx.NewRNG(7)
			a := randomMatrix(r, bc.s[0], bc.s[1])
			w := randomMatrix(r, bc.s[1], bc.s[2])
			dst := NewMatrix(bc.s[0], bc.s[2])
			if allocs := testing.AllocsPerRun(3, func() { MatMulInto(dst, a, w) }); allocs != 0 {
				b.Fatalf("direct dispatch allocated %.0f objects/op, want 0 (goroutine-free)", allocs)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, w)
			}
		})
	}
}
