package nn

import (
	"bytes"
	"math"
	"testing"

	"acobe/internal/mathx"
)

func TestMSEKnown(t *testing.T) {
	pred := FromRows([][]float64{{1, 2}})
	target := FromRows([][]float64{{0, 4}})
	loss, grad := MSE(pred, target)
	if math.Abs(loss-2.5) > 1e-12 { // (1 + 4) / 2
		t.Errorf("loss = %g, want 2.5", loss)
	}
	// grad = 2(d)/n: [2*1/2, 2*(-2)/2] = [1, -2]
	if grad.Data[0] != 1 || grad.Data[1] != -2 {
		t.Errorf("grad = %v", grad.Data)
	}
}

func TestPerSampleMSE(t *testing.T) {
	pred := FromRows([][]float64{{1, 1}, {0, 0}})
	target := FromRows([][]float64{{1, 1}, {2, 0}})
	got := PerSampleMSE(pred, target)
	if got[0] != 0 || got[1] != 2 {
		t.Errorf("per-sample errors %v, want [0 2]", got)
	}
}

func TestFitLearnsIdentity(t *testing.T) {
	rng := mathx.NewRNG(1)
	net := NewNetwork(
		NewDense(4, 8, rng),
		NewActivation(ActTanh),
		NewDense(8, 4, rng),
	)
	// Inputs on a 1-D manifold: x = [t, 2t, -t, t²] for t ∈ [0, 1].
	rows := make([][]float64, 256)
	for i := range rows {
		tv := rng.Float64()
		rows[i] = []float64{tv, 2 * tv, -tv, tv * tv}
	}
	x := FromRows(rows)
	loss, err := net.Fit(x, x, TrainConfig{
		Epochs: 200, BatchSize: 32, Optimizer: NewAdam(0.01),
		Shuffle: true, RNG: mathx.NewRNG(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.001 {
		t.Errorf("final loss %g, want < 0.001", loss)
	}
}

func TestFitErrors(t *testing.T) {
	rng := mathx.NewRNG(3)
	net := NewNetwork(NewDense(2, 2, rng))
	if _, err := net.Fit(NewMatrix(0, 2), NewMatrix(0, 2), TrainConfig{}); err == nil {
		t.Error("no error for empty training set")
	}
	if _, err := net.Fit(NewMatrix(3, 2), NewMatrix(2, 2), TrainConfig{}); err == nil {
		t.Error("no error for sample-count mismatch")
	}
}

func TestEarlyStopping(t *testing.T) {
	rng := mathx.NewRNG(4)
	net := NewNetwork(NewDense(2, 2, rng))
	x := randomMatrix(rng, 32, 2)
	epochs := 0
	_, err := net.Fit(x, x, TrainConfig{
		Epochs:         500,
		BatchSize:      32,
		Optimizer:      NewAdam(0.05),
		EarlyStopDelta: 0.01,
		Patience:       2,
		Verbose:        func(int, float64) { epochs++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if epochs >= 500 {
		t.Errorf("early stopping never fired (%d epochs)", epochs)
	}
}

func TestReconstructionErrorsChunking(t *testing.T) {
	rng := mathx.NewRNG(5)
	net := NewNetwork(NewDense(3, 3, rng))
	// More rows than the internal chunk size to cover the chunk loop.
	x := randomMatrix(rng, 1100, 3)
	errsChunked := net.ReconstructionErrors(x)
	pred := net.Predict(x)
	direct := PerSampleMSE(pred, x)
	if len(errsChunked) != len(direct) {
		t.Fatalf("length mismatch %d vs %d", len(errsChunked), len(direct))
	}
	for i := range direct {
		if math.Abs(errsChunked[i]-direct[i]) > 1e-12 {
			t.Fatalf("row %d: chunked %g vs direct %g", i, errsChunked[i], direct[i])
		}
	}
}

func TestNetworkDescribe(t *testing.T) {
	rng := mathx.NewRNG(6)
	net := NewNetwork(NewDense(2, 3, rng), NewBatchNorm(3), NewActivation(ActReLU))
	want := "Dense(2→3) → BatchNorm(3) → relu"
	if got := net.Describe(); got != want {
		t.Errorf("Describe = %q, want %q", got, want)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := mathx.NewRNG(7)
	net := NewNetwork(
		NewDense(4, 6, rng),
		NewBatchNorm(6),
		NewActivation(ActReLU),
		NewDense(6, 4, rng),
		NewActivation(ActSigmoid),
	)
	// Train briefly so BatchNorm moving stats are non-trivial.
	x := randomMatrix(rng, 64, 4)
	if _, err := net.Fit(x, x, TrainConfig{Epochs: 3, BatchSize: 16}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	probe := randomMatrix(rng, 8, 4)
	want := net.Predict(probe)
	got := loaded.Predict(probe)
	if !matricesEqual(want, got, 1e-12) {
		t.Error("loaded network predicts differently")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("no error decoding garbage")
	}
}

func TestFitDeterminism(t *testing.T) {
	build := func() float64 {
		rng := mathx.NewRNG(10)
		net := NewNetwork(NewDense(3, 5, rng), NewActivation(ActTanh), NewDense(5, 3, rng))
		x := randomMatrix(mathx.NewRNG(11), 64, 3)
		loss, err := net.Fit(x, x, TrainConfig{Epochs: 5, BatchSize: 16, Shuffle: true, RNG: mathx.NewRNG(12)})
		if err != nil {
			t.Fatal(err)
		}
		return loss
	}
	if a, b := build(), build(); a != b {
		t.Errorf("training not deterministic: %g vs %g", a, b)
	}
}

func TestFitHandlesSingleSampleTailBatch(t *testing.T) {
	// 33 samples with batch size 32 leaves a final batch of one row;
	// BatchNorm must fall back to moving statistics instead of dividing
	// by a zero batch variance.
	rng := mathx.NewRNG(20)
	net := NewNetwork(
		NewDense(4, 6, rng),
		NewBatchNorm(6),
		NewActivation(ActReLU),
		NewDense(6, 4, rng),
	)
	x := randomMatrix(rng, 33, 4)
	loss, err := net.Fit(x, x, TrainConfig{Epochs: 3, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %g", loss)
	}
	for _, p := range net.Params() {
		for i, v := range p.Value.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("param %s[%d] = %g", p.Name, i, v)
			}
		}
	}
}
