package nn

// AVX support for the 4-wide micro-kernels in kernels_avx_amd64.s.
//
// The assembly uses VMULPD/VADDPD only — never FMA. An FMA would skip the
// intermediate rounding of each product and change low bits, breaking the
// bit-identity contract with the scalar kernels and the committed golden
// snapshots. With separate multiply and add, each vector lane performs
// exactly the scalar sequence (round the product, then one rounded add,
// ascending k), so vector and scalar results are identical to the bit.

// cpuid1ecx returns ECX of CPUID leaf 1.
func cpuid1ecx() uint32

// xgetbv0 returns the low word of XCR0; only valid once cpuid1ecx has
// confirmed OSXSAVE support.
func xgetbv0() uint32

// useAVX reports whether the CPU supports AVX and the OS saves the
// 256-bit register state. It is a variable, not a constant, so tests can
// force the scalar fallback path.
var useAVX = func() bool {
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	ecx := cpuid1ecx()
	if ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	return xgetbv0()&0x6 == 0x6
}()

// axpyPair4AVX accumulates one k-quad into two output rows over the first
// blocks×4 columns: for each column j,
//
//	out0[j] = (((out0[j] + a[0]·b[j]) + a[1]·b[stride+j]) + a[2]·b[2·stride+j]) + a[3]·b[3·stride+j]
//	out1[j] = same with a[4..7]
//
// blocks must be ≥ 1; the caller handles the n%4 column tail in Go.
//
//go:noescape
func axpyPair4AVX(out0, out1, b *float64, blocks, stride int, a *[8]float64)

// axpySingle4AVX is the single-output-row form of axpyPair4AVX with a[0..3].
//
//go:noescape
func axpySingle4AVX(out, b *float64, blocks, stride int, a *[4]float64)

// axpy1AVX accumulates a single k-term over the first blocks×4 columns:
// out[j] += a·b[j].
//
//go:noescape
func axpy1AVX(out, b *float64, blocks int, a float64)
