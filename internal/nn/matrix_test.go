package nn

import (
	"math"
	"testing"
	"testing/quick"

	"acobe/internal/mathx"
)

// naiveMatMul is the reference implementation the optimized kernels are
// checked against.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func randomMatrix(r *mathx.RNG, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 1)
	}
	return m
}

func matricesEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := mathx.NewRNG(1)
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 2}, {16, 16, 16}, {33, 17, 9}}
	for _, s := range shapes {
		a := randomMatrix(r, s[0], s[1])
		b := randomMatrix(r, s[1], s[2])
		if !matricesEqual(MatMul(a, b), naiveMatMul(a, b), 1e-10) {
			t.Errorf("MatMul mismatch at shape %v", s)
		}
	}
}

func TestMatMulParallelPath(t *testing.T) {
	// Big enough to exceed parallelThreshold and exercise the sharded
	// kernel.
	r := mathx.NewRNG(2)
	a := randomMatrix(r, 200, 80)
	b := randomMatrix(r, 80, 64)
	if !matricesEqual(MatMul(a, b), naiveMatMul(a, b), 1e-9) {
		t.Error("parallel MatMul differs from naive")
	}
}

func TestMatMulATB(t *testing.T) {
	r := mathx.NewRNG(3)
	a := randomMatrix(r, 6, 4)
	b := randomMatrix(r, 6, 5)
	at := NewMatrix(4, 6)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	if !matricesEqual(MatMulATB(a, b), naiveMatMul(at, b), 1e-10) {
		t.Error("MatMulATB mismatch")
	}
}

func TestMatMulABT(t *testing.T) {
	r := mathx.NewRNG(4)
	a := randomMatrix(r, 6, 4)
	b := randomMatrix(r, 5, 4)
	bt := NewMatrix(4, 5)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	if !matricesEqual(MatMulABT(a, b), naiveMatMul(a, bt), 1e-10) {
		t.Error("MatMulABT mismatch")
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on shape mismatch")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(4, 2))
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Errorf("FromRows produced %+v", m)
	}
	if FromRows(nil).Rows != 0 {
		t.Error("FromRows(nil) not empty")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestAddRowVecAndColSums(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.AddRowVec([]float64{10, 20})
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !matricesEqual(m, want, 0) {
		t.Errorf("AddRowVec got %v", m.Data)
	}
	sums := m.ColSums()
	if sums[0] != 24 || sums[1] != 46 {
		t.Errorf("ColSums got %v", sums)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Error("Clone aliases original")
	}
}

func TestSubHadamardScale(t *testing.T) {
	a := FromRows([][]float64{{4, 6}})
	b := FromRows([][]float64{{1, 2}})
	if got := Sub(a, b); got.Data[0] != 3 || got.Data[1] != 4 {
		t.Errorf("Sub got %v", got.Data)
	}
	if got := Hadamard(a, b); got.Data[0] != 4 || got.Data[1] != 12 {
		t.Errorf("Hadamard got %v", got.Data)
	}
	a.Scale(0.5)
	if a.Data[0] != 2 || a.Data[1] != 3 {
		t.Errorf("Scale got %v", a.Data)
	}
}

func TestRowIsView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	row := m.Row(1)
	row[0] = 42
	if m.At(1, 0) != 42 {
		t.Error("Row is not a view")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusNorm = %g, want 5", got)
	}
}

// TestMatMulAssociativityProperty spot-checks (A·B)·v == A·(B·v).
func TestMatMulAssociativityProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		a := randomMatrix(r, 4, 5)
		b := randomMatrix(r, 5, 3)
		v := randomMatrix(r, 3, 1)
		left := MatMul(MatMul(a, b), v)
		right := MatMul(a, MatMul(b, v))
		return matricesEqual(left, right, 1e-9)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
