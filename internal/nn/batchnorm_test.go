package nn

import (
	"math"
	"testing"

	"acobe/internal/mathx"
)

func TestBatchNormTrainingNormalizes(t *testing.T) {
	bn := NewBatchNorm(3)
	rng := mathx.NewRNG(1)
	x := NewMatrix(64, 3)
	for i := 0; i < x.Rows; i++ {
		x.Set(i, 0, rng.Normal(10, 2))
		x.Set(i, 1, rng.Normal(-5, 0.5))
		x.Set(i, 2, rng.Normal(0, 1))
	}
	y := bn.Forward(x, true)
	for j := 0; j < 3; j++ {
		col := make([]float64, y.Rows)
		for i := range col {
			col[i] = y.At(i, j)
		}
		mean, std := mathx.MeanStd(col)
		if math.Abs(mean) > 1e-9 {
			t.Errorf("feature %d mean %g after batchnorm", j, mean)
		}
		if math.Abs(std-1) > 0.01 {
			t.Errorf("feature %d std %g after batchnorm", j, std)
		}
	}
}

func TestBatchNormInferenceUsesMovingStats(t *testing.T) {
	bn := NewBatchNorm(1)
	rng := mathx.NewRNG(2)
	// Feed many batches so moving stats converge toward N(4, 3).
	for e := 0; e < 600; e++ {
		x := NewMatrix(32, 1)
		for i := range x.Data {
			x.Data[i] = rng.Normal(4, 3)
		}
		bn.Forward(x, true)
	}
	if math.Abs(bn.MovingMean.Data[0]-4) > 0.5 {
		t.Errorf("moving mean %g, want ≈ 4", bn.MovingMean.Data[0])
	}
	if math.Abs(bn.MovingVar.Data[0]-9) > 2 {
		t.Errorf("moving var %g, want ≈ 9", bn.MovingVar.Data[0])
	}
	// Inference on the distribution mean should land near zero.
	y := bn.Forward(FromRows([][]float64{{4}}), false)
	if math.Abs(y.Data[0]) > 0.2 {
		t.Errorf("inference output %g, want ≈ 0", y.Data[0])
	}
}

func TestBatchNormSingleSampleUsesMovingStats(t *testing.T) {
	bn := NewBatchNorm(1)
	// One-sample "training" batch must not divide by zero variance.
	y := bn.Forward(FromRows([][]float64{{5}}), true)
	if math.IsNaN(y.Data[0]) || math.IsInf(y.Data[0], 0) {
		t.Errorf("single-sample forward produced %g", y.Data[0])
	}
}

func TestBatchNormGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(3)
	net := NewNetwork(
		NewDense(3, 4, rng),
		NewBatchNorm(4),
		NewActivation(ActTanh),
		NewDense(4, 2, rng),
	)
	x := randomMatrix(rng, 6, 3)
	target := randomMatrix(rng, 6, 2)

	// Gradient checking with batch norm: the analytic gradient assumes
	// fixed batch statistics while finite differences perturb them, so a
	// looser tolerance is expected — but the direction must agree.
	net.ZeroGrads()
	pred := net.Forward(x, true)
	_, grad := MSE(pred, target)
	net.Backward(grad)

	const h = 1e-5
	checked, agree := 0, 0
	for _, p := range net.Params() {
		for i := range p.Value.Data {
			analytic := p.Grad.Data[i]
			if math.Abs(analytic) < 1e-8 {
				continue
			}
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lossPlus, _ := MSE(net.Forward(x, true), target)
			p.Value.Data[i] = orig - h
			lossMinus, _ := MSE(net.Forward(x, true), target)
			p.Value.Data[i] = orig
			numeric := (lossPlus - lossMinus) / (2 * h)
			checked++
			if math.Abs(numeric-analytic) < 1e-3*(1+math.Abs(numeric)) {
				agree++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
	if frac := float64(agree) / float64(checked); frac < 0.95 {
		t.Errorf("only %.0f%% of %d gradients match finite differences", frac*100, checked)
	}
}

func TestBatchNormBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on Backward before Forward")
		}
	}()
	NewBatchNorm(2).Backward(NewMatrix(1, 2))
}

func TestBatchNormShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on feature mismatch")
		}
	}()
	NewBatchNorm(2).Forward(NewMatrix(4, 3), true)
}
