package nn

import (
	"math"
	"testing"

	"acobe/internal/mathx"
)

func randTestMat(rows, cols int, seed uint64) *Matrix {
	rng := mathx.NewRNG(seed)
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Normal(0, 1)
	}
	return m
}

// naive reference products (naiveMatMul lives in matrix_test.go). Each
// output element accumulates over k in ascending order, exactly like the
// kernels, so comparisons are exact.
func naiveMatMulATB(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Cols, b.Cols)
	for i := 0; i < a.Cols; i++ {
		for j := 0; j < b.Cols; j++ {
			var sum float64
			for k := 0; k < a.Rows; k++ {
				sum += a.At(k, i) * b.At(k, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func naiveMatMulABT(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			var sum float64
			for k := 0; k < a.Cols; k++ {
				sum += a.At(i, k) * b.At(j, k)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func matsExactlyEqual(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (diff %g)", name, i, got.Data[i], want.Data[i], got.Data[i]-want.Data[i])
		}
	}
}

// withWorkerBudget runs fn under a temporary global compute budget.
func withWorkerBudget(t *testing.T, n int, fn func()) {
	t.Helper()
	old := WorkerBudget()
	SetWorkerBudget(n)
	defer SetWorkerBudget(old)
	fn()
}

// TestMatMulParallelSerialParity checks that all three matmul kernels are
// bit-identical to a naive serial reference both below and above
// parallelThreshold, and under different worker budgets (budget 1 forces a
// single inline sweep; larger budgets shard rows across goroutines).
func TestMatMulParallelSerialParity(t *testing.T) {
	// 80×64 × 64×64 is 327680 multiply-adds — above parallelThreshold
	// (262144) — while 20×16 × 16×8 stays far below it.
	shapes := []struct {
		m, k, n int
	}{
		{1, 7, 5},
		{20, 16, 8},
		{33, 11, 17}, // odd sizes exercise uneven chunking
		{80, 64, 64},
		{129, 64, 48},
	}
	for _, budgetSlots := range []int{1, 3, 8} {
		withWorkerBudget(t, budgetSlots, func() {
			for si, sh := range shapes {
				seed := uint64(si + 1)
				a := randTestMat(sh.m, sh.k, seed)
				b := randTestMat(sh.k, sh.n, seed+100)
				matsExactlyEqual(t, "MatMul", MatMul(a, b), naiveMatMul(a, b))

				at := randTestMat(sh.k, sh.m, seed+200) // aᵀ×b: shared dim is Rows
				bt := randTestMat(sh.k, sh.n, seed+300)
				matsExactlyEqual(t, "MatMulATB", MatMulATB(at, bt), naiveMatMulATB(at, bt))

				aa := randTestMat(sh.m, sh.k, seed+400) // a×bᵀ: shared dim is Cols
				bb := randTestMat(sh.n, sh.k, seed+500)
				matsExactlyEqual(t, "MatMulABT", MatMulABT(aa, bb), naiveMatMulABT(aa, bb))
			}
		})
	}
}

// TestMatMulIntoReusesBuffer checks the Into variants fully overwrite a
// dirty destination and match their allocating counterparts.
func TestMatMulIntoReusesBuffer(t *testing.T) {
	a := randTestMat(9, 13, 1)
	b := randTestMat(13, 6, 2)
	dirty := func(rows, cols int) *Matrix {
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = math.NaN()
		}
		return m
	}
	matsExactlyEqual(t, "MatMulInto", MatMulInto(dirty(9, 6), a, b), MatMul(a, b))

	x := randTestMat(13, 9, 3)
	matsExactlyEqual(t, "MatMulATBInto", MatMulATBInto(dirty(9, 6), x, b), MatMulATB(x, b))

	y := randTestMat(6, 13, 4)
	matsExactlyEqual(t, "MatMulABTInto", MatMulABTInto(dirty(9, 6), a, y), MatMulABT(a, y))
}

// newParityNet builds a small AE-shaped network (Dense→BatchNorm→ReLU→
// Dense→Sigmoid) deterministically from seed.
func newParityNet(seed uint64) *Network {
	rng := mathx.NewRNG(seed)
	return NewNetwork(
		NewDense(12, 8, rng),
		NewBatchNorm(8),
		NewActivation(ActReLU),
		NewDense(8, 12, rng),
		NewActivation(ActSigmoid),
	)
}

// TestWorkspaceForwardBackwardParity checks that the workspace-backed
// forward/backward produce bit-identical activations, input gradients and
// parameter gradients to the allocating Forward/Backward on an identically
// initialized network.
func TestWorkspaceForwardBackwardParity(t *testing.T) {
	withWorkerBudget(t, 4, func() {
		alloc := newParityNet(42)
		wsNet := newParityNet(42)
		ws := wsNet.NewWorkspace()
		x := randTestMat(16, 12, 7)
		target := randTestMat(16, 12, 8)

		for step := 0; step < 3; step++ { // repeat to exercise buffer reuse
			alloc.ZeroGrads()
			predA := alloc.Forward(x, true)
			lossA, gradA := MSE(predA, target)
			dxA := alloc.Backward(gradA)

			for _, p := range ws.params {
				p.ZeroGrad()
			}
			predW := wsNet.forwardWS(ws, x, true)
			lossW := MSEInto(predW, target, ws.lossGrad.Reshape(predW.Rows, predW.Cols))
			wsNet.backwardWS(ws)

			if lossA != lossW {
				t.Fatalf("step %d: loss %v vs %v", step, lossA, lossW)
			}
			matsExactlyEqual(t, "pred", predW, predA)
			matsExactlyEqual(t, "dx", ws.grads[0], dxA)
			pa, pw := alloc.Params(), wsNet.Params()
			for i := range pa {
				matsExactlyEqual(t, "grad "+pa[i].Name, pw[i].Grad, pa[i].Grad)
			}
		}
	})
}

// fitAllocatingReference replicates the pre-workspace trainer: fresh
// matrices for every batch of every epoch through the allocating
// Forward/Backward path. Kept as the parity oracle for Fit.
func fitAllocatingReference(n *Network, inputs, targets *Matrix, cfg TrainConfig) float64 {
	rng := cfg.RNG
	order := make([]int, inputs.Rows)
	for i := range order {
		order[i] = i
	}
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Shuffle {
			mathx.Shuffle(rng, order)
		}
		var epochLoss float64
		var batches int
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			gather := func(m *Matrix) *Matrix {
				out := NewMatrix(end-start, m.Cols)
				for i, r := range order[start:end] {
					copy(out.Row(i), m.Row(r))
				}
				return out
			}
			bx, bt := gather(inputs), gather(targets)
			n.ZeroGrads()
			pred := n.Forward(bx, true)
			loss, grad := MSE(pred, bt)
			n.Backward(grad)
			cfg.Optimizer.Step(n.Params())
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
	}
	return lastLoss
}

// TestFitWorkspaceMatchesAllocating trains two identically seeded networks
// — one through the workspace Fit, one through the replicated allocating
// trainer — and requires bit-identical losses and final weights.
func TestFitWorkspaceMatchesAllocating(t *testing.T) {
	withWorkerBudget(t, 4, func() {
		inputs := randTestMat(70, 12, 11) // odd tail batch at size 32
		ref := newParityNet(5)
		refLoss := fitAllocatingReference(ref, inputs, inputs, TrainConfig{
			Epochs: 4, BatchSize: 32, Optimizer: NewAdadelta(),
			Shuffle: true, RNG: mathx.NewRNG(99),
		})

		ws := newParityNet(5)
		wsLoss, err := ws.Fit(inputs, inputs, TrainConfig{
			Epochs: 4, BatchSize: 32, Optimizer: NewAdadelta(),
			Shuffle: true, RNG: mathx.NewRNG(99),
		})
		if err != nil {
			t.Fatal(err)
		}
		if refLoss != wsLoss {
			t.Fatalf("final loss %v (workspace) vs %v (allocating)", wsLoss, refLoss)
		}
		pr, pw := ref.Params(), ws.Params()
		for i := range pr {
			matsExactlyEqual(t, "param "+pr[i].Name, pw[i].Value, pr[i].Value)
		}

		// Inference parity on the trained models, workspace vs allocating.
		probe := randTestMat(600, 12, 13) // spans two 512-row chunks
		a := ref.ReconstructionErrors(probe)
		b := ws.ReconstructionErrorsWS(ws.NewWorkspace(), probe, nil)
		if len(a) != len(b) {
			t.Fatalf("score lengths %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("score %d: %v vs %v", i, a[i], b[i])
			}
		}
	})
}

// TestTrainStepSteadyStateAllocs verifies the headline property: after
// warm-up, a training step performs zero heap allocations.
func TestTrainStepSteadyStateAllocs(t *testing.T) {
	net := newParityNet(3)
	ws := net.NewWorkspace()
	bx := randTestMat(32, 12, 4)
	opt := NewAdadelta()
	net.TrainStep(ws, bx, bx, opt) // warm buffers and optimizer slots
	allocs := testing.AllocsPerRun(20, func() {
		net.TrainStep(ws, bx, bx, opt)
	})
	if allocs > 0 {
		t.Errorf("TrainStep allocates %.1f objects per run, want 0", allocs)
	}
}

// TestWorkerBudget sanity-checks the semaphore: acquire/release restores
// slots, try-acquire fails only at the limit, and a floor of 1 holds.
func TestWorkerBudget(t *testing.T) {
	old := WorkerBudget()
	defer SetWorkerBudget(old)

	SetWorkerBudget(2)
	if got := WorkerBudget(); got != 2 {
		t.Fatalf("budget %d, want 2", got)
	}
	AcquireWorker()
	if !tryAcquireWorker() {
		t.Fatal("second slot should be free")
	}
	if tryAcquireWorker() {
		t.Fatal("third acquire should fail at budget 2")
	}
	ReleaseWorker()
	ReleaseWorker()
	if !tryAcquireWorker() {
		t.Fatal("slot should be free after releases")
	}
	ReleaseWorker()

	SetWorkerBudget(0)
	if got := WorkerBudget(); got != 1 {
		t.Fatalf("budget floor %d, want 1", got)
	}
}
