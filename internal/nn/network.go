package nn

import (
	"context"
	"errors"
	"fmt"

	"acobe/internal/mathx"
)

// Network is a sequential stack of layers trained with mini-batch gradient
// descent against a mean-squared-error loss (the paper's loss function).
type Network struct {
	Layers []Layer
}

// NewNetwork returns a network over the given layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{Layers: layers}
}

// Forward runs a batch through the network. train toggles training-time
// behaviour in layers such as BatchNorm.
func (n *Network) Forward(x *Matrix, train bool) *Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates the gradient of the loss w.r.t. the network output
// back through all layers, accumulating parameter gradients.
func (n *Network) Backward(grad *Matrix) *Matrix {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns all trainable parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears every parameter gradient.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// Describe returns a one-line architecture summary.
func (n *Network) Describe() string {
	s := ""
	for i, l := range n.Layers {
		if i > 0 {
			s += " → "
		}
		s += l.Describe()
	}
	return s
}

// MSE returns the mean-squared error between prediction and target,
// averaged over all elements, and the gradient of that loss with respect to
// the prediction.
func MSE(pred, target *Matrix) (loss float64, grad *Matrix) {
	grad = NewMatrix(pred.Rows, pred.Cols)
	return MSEInto(pred, target, grad), grad
}

// MSEInto computes the mean-squared error between prediction and target,
// writing the loss gradient w.r.t. the prediction into grad (same shape,
// fully overwritten) and returning the loss.
func MSEInto(pred, target, grad *Matrix) (loss float64) {
	checkSameShape("MSE", pred, target)
	checkSameShape("MSE grad", pred, grad)
	total := float64(len(pred.Data))
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / total
	}
	return loss / total
}

// PerSampleMSE returns each row's mean-squared reconstruction error.
func PerSampleMSE(pred, target *Matrix) []float64 {
	checkSameShape("PerSampleMSE", pred, target)
	out := make([]float64, pred.Rows)
	for i := 0; i < pred.Rows; i++ {
		var ss float64
		prow := pred.Row(i)
		trow := target.Row(i)
		for j := range prow {
			d := prow[j] - trow[j]
			ss += d * d
		}
		out[i] = ss / float64(pred.Cols)
	}
	return out
}

// TrainConfig controls Fit.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// Shuffle reshuffles the sample order every epoch using RNG.
	Shuffle bool
	RNG     *mathx.RNG
	// Verbose, when non-nil, receives one line per epoch.
	Verbose func(epoch int, loss float64)
	// EarlyStopDelta stops training when the epoch loss improves by less
	// than this fraction for Patience consecutive epochs. Zero disables.
	EarlyStopDelta float64
	Patience       int
	// Ctx, when non-nil, is checked between batches: cancellation aborts
	// training promptly (mid-epoch) and Fit returns the context's error.
	Ctx context.Context
}

// Fit trains the network to map inputs to targets (for autoencoders,
// targets == inputs). It returns the final epoch's mean loss.
func (n *Network) Fit(inputs, targets *Matrix, cfg TrainConfig) (float64, error) {
	if inputs.Rows == 0 {
		return 0, errors.New("nn: Fit with no samples")
	}
	if inputs.Rows != targets.Rows {
		return 0, fmt.Errorf("nn: Fit sample mismatch: %d inputs vs %d targets", inputs.Rows, targets.Rows)
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdadelta()
	}
	rng := cfg.RNG
	if rng == nil {
		rng = mathx.NewRNG(1)
	}

	order := make([]int, inputs.Rows)
	for i := range order {
		order[i] = i
	}

	// All per-batch buffers live in the workspace; steady-state epochs
	// allocate nothing.
	ws := n.NewWorkspace()

	var lastLoss float64
	bad := 0
	prev := -1.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Shuffle {
			mathx.Shuffle(rng, order)
		}
		var epochLoss float64
		var batches int
		for start := 0; start < len(order); start += cfg.BatchSize {
			if cfg.Ctx != nil {
				if err := cfg.Ctx.Err(); err != nil {
					return lastLoss, fmt.Errorf("nn: training canceled at epoch %d: %w", epoch, err)
				}
			}
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			bx := gatherRowsInto(ws.bx, inputs, order[start:end])
			bt := gatherRowsInto(ws.bt, targets, order[start:end])

			epochLoss += n.TrainStep(ws, bx, bt, cfg.Optimizer)
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, lastLoss)
		}
		if cfg.EarlyStopDelta > 0 {
			if prev >= 0 && prev-lastLoss < cfg.EarlyStopDelta*prev {
				bad++
				if bad >= cfg.Patience {
					break
				}
			} else {
				bad = 0
			}
			prev = lastLoss
		}
	}
	return lastLoss, nil
}

// gatherRowsInto copies the given rows of m into dst, reshaping it to
// len(idx)×m.Cols, and returns dst.
func gatherRowsInto(dst, m *Matrix, idx []int) *Matrix {
	dst.Reshape(len(idx), m.Cols)
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
	return dst
}

// Predict runs the network in inference mode.
func (n *Network) Predict(x *Matrix) *Matrix {
	return n.Forward(x, false)
}

// ReconstructionErrors runs x through the network in inference mode and
// returns each row's mean-squared reconstruction error against itself.
// Rows are scored in chunks to bound peak memory on large inputs. Callers
// scoring many batches should hold a Workspace and use
// ReconstructionErrorsWS to reuse buffers across calls.
func (n *Network) ReconstructionErrors(x *Matrix) []float64 {
	return n.ReconstructionErrorsWS(n.NewWorkspace(), x, make([]float64, 0, x.Rows))
}
