package nn

import (
	"math"
	"testing"

	"acobe/internal/mathx"
)

func TestDenseForwardKnown(t *testing.T) {
	d := NewDense(2, 2, mathx.NewRNG(1))
	copy(d.W.Value.Data, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.B.Value.Data, []float64{10, 20})
	x := FromRows([][]float64{{1, 1}})
	y := d.Forward(x, true)
	// y = x·W + b = [1+3+10, 2+4+20]
	if y.Data[0] != 14 || y.Data[1] != 26 {
		t.Errorf("dense forward got %v", y.Data)
	}
}

func TestDenseInputMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on input width mismatch")
		}
	}()
	NewDense(3, 2, mathx.NewRNG(1)).Forward(NewMatrix(1, 4), true)
}

// numericGradCheck compares analytic parameter gradients against central
// finite differences for a small network and MSE loss.
func numericGradCheck(t *testing.T, net *Network, x, target *Matrix, tol float64) {
	t.Helper()
	net.ZeroGrads()
	pred := net.Forward(x, true)
	_, grad := MSE(pred, target)
	net.Backward(grad)

	const h = 1e-5
	for _, p := range net.Params() {
		for i := range p.Value.Data {
			orig := p.Value.Data[i]
			p.Value.Data[i] = orig + h
			lossPlus, _ := MSE(net.Forward(x, true), target)
			p.Value.Data[i] = orig - h
			lossMinus, _ := MSE(net.Forward(x, true), target)
			p.Value.Data[i] = orig
			numeric := (lossPlus - lossMinus) / (2 * h)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
				t.Errorf("param %s[%d]: analytic %.8f vs numeric %.8f", p.Name, i, analytic, numeric)
			}
		}
	}
}

func TestDenseGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(5)
	net := NewNetwork(
		NewDense(3, 4, rng),
		NewActivation(ActTanh),
		NewDense(4, 2, rng),
	)
	x := randomMatrix(rng, 5, 3)
	target := randomMatrix(rng, 5, 2)
	numericGradCheck(t, net, x, target, 1e-4)
}

func TestReLUGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(6)
	net := NewNetwork(
		NewDense(3, 5, rng),
		NewActivation(ActReLU),
		NewDense(5, 3, rng),
	)
	x := randomMatrix(rng, 4, 3)
	target := randomMatrix(rng, 4, 3)
	// ReLU is non-differentiable at 0; random inputs land there with
	// probability 0, so a normal tolerance works.
	numericGradCheck(t, net, x, target, 1e-4)
}

func TestSigmoidGradientCheck(t *testing.T) {
	rng := mathx.NewRNG(7)
	net := NewNetwork(
		NewDense(2, 3, rng),
		NewActivation(ActSigmoid),
	)
	x := randomMatrix(rng, 3, 2)
	target := randomMatrix(rng, 3, 3)
	numericGradCheck(t, net, x, target, 1e-4)
}

func TestActivationsPointwise(t *testing.T) {
	x := FromRows([][]float64{{-2, 0, 3}})
	tests := []struct {
		kind Activation
		want []float64
	}{
		{ActReLU, []float64{0, 0, 3}},
		{ActIdentity, []float64{-2, 0, 3}},
		{ActTanh, []float64{math.Tanh(-2), 0, math.Tanh(3)}},
		{ActSigmoid, []float64{1 / (1 + math.Exp(2)), 0.5, 1 / (1 + math.Exp(-3))}},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			y := NewActivation(tt.kind).Forward(x, true)
			for i, want := range tt.want {
				if math.Abs(y.Data[i]-want) > 1e-12 {
					t.Errorf("%v(%g) = %g, want %g", tt.kind, x.Data[i], y.Data[i], want)
				}
			}
		})
	}
}

func TestXavierInitScale(t *testing.T) {
	d := NewDense(100, 100, mathx.NewRNG(8))
	limit := math.Sqrt(6.0 / 200)
	var maxAbs float64
	for _, w := range d.W.Value.Data {
		if a := math.Abs(w); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > limit {
		t.Errorf("weight %g exceeds Xavier limit %g", maxAbs, limit)
	}
	for _, b := range d.B.Value.Data {
		if b != 0 {
			t.Error("bias not zero-initialized")
		}
	}
}

func TestParamSlots(t *testing.T) {
	p := newParam("w", NewMatrix(2, 2))
	s1 := p.Slot("acc")
	s1.Data[0] = 7
	if p.Slot("acc").Data[0] != 7 {
		t.Error("slot not persisted")
	}
	if p.Slot("other").Data[0] != 0 {
		t.Error("distinct slots share storage")
	}
}

func TestGradAccumulation(t *testing.T) {
	rng := mathx.NewRNG(9)
	d := NewDense(2, 2, rng)
	x := randomMatrix(rng, 3, 2)
	y := d.Forward(x, true)
	g := NewMatrix(y.Rows, y.Cols)
	for i := range g.Data {
		g.Data[i] = 1
	}
	d.Backward(g)
	first := append([]float64(nil), d.W.Grad.Data...)
	d.Forward(x, true)
	d.Backward(g)
	for i := range first {
		if math.Abs(d.W.Grad.Data[i]-2*first[i]) > 1e-12 {
			t.Fatal("gradients do not accumulate across Backward calls")
		}
	}
	d.W.ZeroGrad()
	for _, v := range d.W.Grad.Data {
		if v != 0 {
			t.Fatal("ZeroGrad left residue")
		}
	}
}
