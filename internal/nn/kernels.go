package nn

import "sync"

// Cache-blocked, register-unrolled matmul micro-kernels.
//
// The three products the network needs (A×B for forward, Aᵀ×B for weight
// gradients, A×Bᵀ for input gradients) share one design:
//
//   - The k-dimension is tiled so the working panel of B stays inside L1
//     (panelK, ≤ panelFloats floats ≈ 32 KiB).
//   - Per panel, four consecutive rows of B are packed quad-interleaved
//     (packPanel) so the micro-kernel reads its four B operands from one
//     contiguous 32-byte span instead of four distant rows.
//   - The micro-kernel (axpyQuad2) updates two output rows × four k-terms
//     at once: eight A scalars live in registers, each packed B load is
//     shared by both rows, and the two output rows are read and written
//     once per column — ~2.75 memory ops per multiply-add versus ~7 for
//     the plain ikj sweep.
//   - Slices are re-sliced to a common length before the inner loops so
//     the compiler can hoist the bounds checks.
//
// Bit-identity with the legacy sweeps (and therefore with the committed
// golden snapshots) is a hard requirement, maintained by two rules:
//
//  1. Every output element accumulates its k-terms in ascending-k order,
//     one addition per term, exactly like the serial sweep: the unrolled
//     update `o = o + t0 + t1 + t2 + t3` associates as
//     ((((o+t0)+t1)+t2)+t3).
//  2. Zero-skipping may differ from the legacy kernels only in ways that
//     cannot change bits: a running partial sum that starts at +0 can
//     never become -0 (x + (-x) rounds to +0, and +0 + ±0 = +0), so
//     adding — or skipping — a ±0 term leaves every finite accumulation
//     unchanged. The quad kernels skip a block only when all its A
//     scalars are zero; mixed blocks add the ±0 products.
var packPool = sync.Pool{New: func() any { return new([]float64) }}

// getPack returns a pooled pack buffer of length n. Steady-state matmuls
// reuse warmed buffers, keeping the kernels allocation-free.
func getPack(n int) *[]float64 {
	p := packPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return p
}

func putPack(p *[]float64) { packPool.Put(p) }

// panelFloats caps one packed B panel at 32 KiB — half a typical 64 KiB
// L1d, leaving room for the A rows and output rows streaming through.
const panelFloats = 4096

// panelK returns the k-tile depth for an n-wide B panel: the largest
// multiple of 4 whose packed panel fits panelFloats, floored at 4 (very
// wide panels spill past L1; the packed layout still wins on load count).
func panelK(n int) int {
	if n <= 0 {
		return 4
	}
	kc := (panelFloats / n) &^ 3
	if kc < 4 {
		kc = 4
	}
	return kc
}

// packLen is the buffer length matmulBlocked and matmulATBBlocked need to
// pack panels of an n-column B.
func packLen(n int) int { return panelK(n) * n }

// packPanel copies B rows [k0, k0+4·quads) into pack, quad-interleaved:
//
//	pack[(q·n+j)·4+t] == b[k0+4q+t][j]
//
// so the micro-kernel's four B operands for output column j sit in one
// contiguous 32-byte span.
func packPanel(pack []float64, b *Matrix, k0, quads int) {
	n := b.Cols
	for q := 0; q < quads; q++ {
		k := k0 + 4*q
		r0 := b.Data[k*n : (k+1)*n]
		r1 := b.Data[(k+1)*n : (k+2)*n]
		r2 := b.Data[(k+2)*n : (k+3)*n]
		r3 := b.Data[(k+3)*n : (k+4)*n]
		dst := pack[q*4*n : (q+1)*4*n]
		r1 = r1[:len(r0)]
		r2 = r2[:len(r0)]
		r3 = r3[:len(r0)]
		for j := range r0 {
			dst[3] = r3[j]
			dst[0] = r0[j]
			dst[1] = r1[j]
			dst[2] = r2[j]
			dst = dst[4:]
		}
	}
}

// axpyQuad2 accumulates four consecutive k-terms into two output rows:
//
//	orowR[j] += aR0·bp[4j] + aR1·bp[4j+1] + aR2·bp[4j+2] + aR3·bp[4j+3]
//
// with the products added left-to-right in ascending-k order, so every
// output element sees the exact addition sequence of the serial sweep.
func axpyQuad2(orow0, orow1, bp []float64, a00, a01, a02, a03, a10, a11, a12, a13 float64) {
	orow1 = orow1[:len(orow0)]
	for j := range orow0 {
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		bp = bp[4:]
		orow0[j] = orow0[j] + a00*b0 + a01*b1 + a02*b2 + a03*b3
		orow1[j] = orow1[j] + a10*b0 + a11*b1 + a12*b2 + a13*b3
	}
}

// axpyQuad1 is the single-output-row tail of axpyQuad2.
func axpyQuad1(orow, bp []float64, a0, a1, a2, a3 float64) {
	for j := range orow {
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		bp = bp[4:]
		orow[j] = orow[j] + a0*b0 + a1*b1 + a2*b2 + a3*b3
	}
}

// axpy1 accumulates a single k-term: orow += av·brow.
func axpy1(orow, brow []float64, av float64) {
	brow = brow[:len(orow)]
	for j := range orow {
		orow[j] += av * brow[j]
	}
}

// matmulBlocked computes rows [rs, re) of out = a × b (out pre-zeroed)
// with the packed pair-row × k-quad kernel. pack must hold packLen(b.Cols)
// floats.
func matmulBlocked(a, b, out *Matrix, rs, re int, pack []float64) {
	kTot, n := a.Cols, b.Cols
	if kTot == 0 || n == 0 {
		return
	}
	kc := panelK(n)
	for k0 := 0; k0 < kTot; k0 += kc {
		kEnd := k0 + kc
		if kEnd > kTot {
			kEnd = kTot
		}
		quads := (kEnd - k0) / 4
		packPanel(pack, b, k0, quads)
		kq := k0 + 4*quads // first k the packed quads do not cover
		i := rs
		for ; i+1 < re; i += 2 {
			arow0 := a.Data[i*kTot : (i+1)*kTot]
			arow1 := a.Data[(i+1)*kTot : (i+2)*kTot]
			orow0 := out.Data[i*n : (i+1)*n]
			orow1 := out.Data[(i+1)*n : (i+2)*n]
			for q := 0; q < quads; q++ {
				k := k0 + 4*q
				a00, a01, a02, a03 := arow0[k], arow0[k+1], arow0[k+2], arow0[k+3]
				a10, a11, a12, a13 := arow1[k], arow1[k+1], arow1[k+2], arow1[k+3]
				if a00 == 0 && a01 == 0 && a02 == 0 && a03 == 0 &&
					a10 == 0 && a11 == 0 && a12 == 0 && a13 == 0 {
					continue // ±0 terms never change a finite sum
				}
				axpyQuad2(orow0, orow1, pack[q*4*n:(q+1)*4*n], a00, a01, a02, a03, a10, a11, a12, a13)
			}
			for k := kq; k < kEnd; k++ {
				brow := b.Data[k*n : (k+1)*n]
				if av := arow0[k]; av != 0 {
					axpy1(orow0, brow, av)
				}
				if av := arow1[k]; av != 0 {
					axpy1(orow1, brow, av)
				}
			}
		}
		if i < re {
			arow := a.Data[i*kTot : (i+1)*kTot]
			orow := out.Data[i*n : (i+1)*n]
			for q := 0; q < quads; q++ {
				k := k0 + 4*q
				a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				axpyQuad1(orow, pack[q*4*n:(q+1)*4*n], a0, a1, a2, a3)
			}
			for k := kq; k < kEnd; k++ {
				if av := arow[k]; av != 0 {
					axpy1(orow, b.Data[k*n:(k+1)*n], av)
				}
			}
		}
	}
}

// matmulBlockedRange adapts the blocked kernels to the matmulKernel
// signature. On CPUs with OS-enabled AVX it takes the vector driver,
// which needs no pack buffer; otherwise each shard checks out its own
// pooled buffer, so the B panel is packed once per shard and shared by
// all its row pairs.
func matmulBlockedRange(a, b, out *Matrix, rs, re int) {
	if useAVX {
		matmulBlockedVec(a, b, out, rs, re)
		return
	}
	pk := getPack(packLen(b.Cols))
	matmulBlocked(a, b, out, rs, re, *pk)
	putPack(pk)
}

// matmulATBBlocked computes output rows [is, ie) of out = aᵀ × b (out
// pre-zeroed): output row i is column i of a. It reuses the same packed
// panel and pair×quad kernel as matmulBlocked; only the A loads differ
// (column-strided instead of row-contiguous).
func matmulATBBlocked(a, b, out *Matrix, is, ie int, pack []float64) {
	kTot, n, ac := a.Rows, b.Cols, a.Cols
	if kTot == 0 || n == 0 {
		return
	}
	ad := a.Data
	kc := panelK(n)
	for k0 := 0; k0 < kTot; k0 += kc {
		kEnd := k0 + kc
		if kEnd > kTot {
			kEnd = kTot
		}
		quads := (kEnd - k0) / 4
		packPanel(pack, b, k0, quads)
		kq := k0 + 4*quads
		i := is
		for ; i+1 < ie; i += 2 {
			orow0 := out.Data[i*n : (i+1)*n]
			orow1 := out.Data[(i+1)*n : (i+2)*n]
			for q := 0; q < quads; q++ {
				base := (k0 + 4*q) * ac
				a00, a10 := ad[base+i], ad[base+i+1]
				base += ac
				a01, a11 := ad[base+i], ad[base+i+1]
				base += ac
				a02, a12 := ad[base+i], ad[base+i+1]
				base += ac
				a03, a13 := ad[base+i], ad[base+i+1]
				if a00 == 0 && a01 == 0 && a02 == 0 && a03 == 0 &&
					a10 == 0 && a11 == 0 && a12 == 0 && a13 == 0 {
					continue
				}
				axpyQuad2(orow0, orow1, pack[q*4*n:(q+1)*4*n], a00, a01, a02, a03, a10, a11, a12, a13)
			}
			for k := kq; k < kEnd; k++ {
				brow := b.Data[k*n : (k+1)*n]
				if av := ad[k*ac+i]; av != 0 {
					axpy1(orow0, brow, av)
				}
				if av := ad[k*ac+i+1]; av != 0 {
					axpy1(orow1, brow, av)
				}
			}
		}
		if i < ie {
			orow := out.Data[i*n : (i+1)*n]
			for q := 0; q < quads; q++ {
				base := (k0 + 4*q) * ac
				a0 := ad[base+i]
				a1 := ad[base+ac+i]
				a2 := ad[base+2*ac+i]
				a3 := ad[base+3*ac+i]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				axpyQuad1(orow, pack[q*4*n:(q+1)*4*n], a0, a1, a2, a3)
			}
			for k := kq; k < kEnd; k++ {
				if av := ad[k*ac+i]; av != 0 {
					axpy1(orow, b.Data[k*n:(k+1)*n], av)
				}
			}
		}
	}
}

// matmulATBBlockedRange adapts the blocked Aᵀ×B kernels to the
// matmulKernel signature, with the same AVX/scalar split as
// matmulBlockedRange.
func matmulATBBlockedRange(a, b, out *Matrix, is, ie int) {
	if useAVX {
		matmulATBBlockedVec(a, b, out, is, ie)
		return
	}
	pk := getPack(packLen(b.Cols))
	matmulATBBlocked(a, b, out, is, ie, *pk)
	putPack(pk)
}

// matmulABTBlocked computes rows [rs, re) of out = a × bᵀ with a 2×4
// register-blocked dot kernel: two A rows against four B rows at a time,
// the eight scalar accumulators living in registers across one shared
// k sweep. No packing is needed — every operand row is already
// contiguous. Like the legacy kernel it overwrites out (no pre-zeroing)
// and skips no zero terms, and each accumulator adds its products in
// ascending-k order, so results are bit-identical.
func matmulABTBlocked(a, b, out *Matrix, rs, re int) {
	kTot, jn := a.Cols, b.Rows
	i := rs
	for ; i+1 < re; i += 2 {
		arow0 := a.Data[i*kTot : (i+1)*kTot]
		arow1 := a.Data[(i+1)*kTot : (i+2)*kTot]
		arow1 = arow1[:len(arow0)]
		orow0 := out.Data[i*jn : (i+1)*jn]
		orow1 := out.Data[(i+1)*jn : (i+2)*jn]
		j := 0
		for ; j+3 < jn; j += 4 {
			brow0 := b.Data[j*kTot : (j+1)*kTot]
			brow1 := b.Data[(j+1)*kTot : (j+2)*kTot]
			brow2 := b.Data[(j+2)*kTot : (j+3)*kTot]
			brow3 := b.Data[(j+3)*kTot : (j+4)*kTot]
			brow0 = brow0[:len(arow0)]
			brow1 = brow1[:len(arow0)]
			brow2 = brow2[:len(arow0)]
			brow3 = brow3[:len(arow0)]
			var s00, s01, s02, s03, s10, s11, s12, s13 float64
			for k, av0 := range arow0 {
				av1 := arow1[k]
				b0, b1, b2, b3 := brow0[k], brow1[k], brow2[k], brow3[k]
				s00 += av0 * b0
				s01 += av0 * b1
				s02 += av0 * b2
				s03 += av0 * b3
				s10 += av1 * b0
				s11 += av1 * b1
				s12 += av1 * b2
				s13 += av1 * b3
			}
			orow0[j], orow0[j+1], orow0[j+2], orow0[j+3] = s00, s01, s02, s03
			orow1[j], orow1[j+1], orow1[j+2], orow1[j+3] = s10, s11, s12, s13
		}
		for ; j < jn; j++ {
			brow := b.Data[j*kTot : (j+1)*kTot]
			brow = brow[:len(arow0)]
			var s0, s1 float64
			for k, av0 := range arow0 {
				s0 += av0 * brow[k]
				s1 += arow1[k] * brow[k]
			}
			orow0[j] = s0
			orow1[j] = s1
		}
	}
	if i < re {
		arow := a.Data[i*kTot : (i+1)*kTot]
		orow := out.Data[i*jn : (i+1)*jn]
		j := 0
		for ; j+3 < jn; j += 4 {
			brow0 := b.Data[j*kTot : (j+1)*kTot]
			brow1 := b.Data[(j+1)*kTot : (j+2)*kTot]
			brow2 := b.Data[(j+2)*kTot : (j+3)*kTot]
			brow3 := b.Data[(j+3)*kTot : (j+4)*kTot]
			brow0 = brow0[:len(arow)]
			brow1 = brow1[:len(arow)]
			brow2 = brow2[:len(arow)]
			brow3 = brow3[:len(arow)]
			var s0, s1, s2, s3 float64
			for k, av := range arow {
				s0 += av * brow0[k]
				s1 += av * brow1[k]
				s2 += av * brow2[k]
				s3 += av * brow3[k]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < jn; j++ {
			brow := b.Data[j*kTot : (j+1)*kTot]
			brow = brow[:len(arow)]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}
