package nn

import (
	"fmt"
	"math"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and leaves gradients
	// untouched (the trainer zeroes them).
	Step(params []*Param)
	// Describe returns a short human-readable summary.
	Describe() string
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
}

// NewSGD returns an SGD optimizer with the given learning rate and no
// momentum.
func NewSGD(lr float64) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum > 0 {
			vel := p.Slot("velocity")
			for i := range p.Value.Data {
				vel.Data[i] = s.Momentum*vel.Data[i] - s.LR*p.Grad.Data[i]
				p.Value.Data[i] += vel.Data[i]
			}
			continue
		}
		for i := range p.Value.Data {
			p.Value.Data[i] -= s.LR * p.Grad.Data[i]
		}
	}
}

// Describe implements Optimizer.
func (s *SGD) Describe() string {
	return fmt.Sprintf("SGD(lr=%g, momentum=%g)", s.LR, s.Momentum)
}

// Adadelta implements Zeiler's Adadelta, the optimizer the paper trains
// with. Defaults match tf.keras.optimizers.Adadelta: rho=0.95, eps=1e-7,
// lr=1 (the canonical Adadelta has no learning rate; keras multiplies the
// update by lr, defaulting to 0.001 in TF2 — we default to 1.0, which is
// the original algorithm and converges far faster on these small models).
type Adadelta struct {
	LR  float64
	Rho float64
	Eps float64
}

// NewAdadelta returns an Adadelta optimizer with canonical parameters.
func NewAdadelta() *Adadelta {
	return &Adadelta{LR: 1.0, Rho: 0.95, Eps: 1e-7}
}

// Step implements Optimizer.
func (a *Adadelta) Step(params []*Param) {
	for _, p := range params {
		value := p.Value.Data
		grad := p.Grad.Data[:len(value)]
		accGrad := p.Slot("acc_grad").Data[:len(value)]
		accUpd := p.Slot("acc_update").Data[:len(value)]
		for i := range value {
			g := grad[i]
			accGrad[i] = a.Rho*accGrad[i] + (1-a.Rho)*g*g
			update := math.Sqrt(accUpd[i]+a.Eps) / math.Sqrt(accGrad[i]+a.Eps) * g
			accUpd[i] = a.Rho*accUpd[i] + (1-a.Rho)*update*update
			value[i] -= a.LR * update
		}
	}
}

// Describe implements Optimizer.
func (a *Adadelta) Describe() string {
	return fmt.Sprintf("Adadelta(lr=%g, rho=%g, eps=%g)", a.LR, a.Rho, a.Eps)
}

// Adam implements Kingma & Ba's Adam optimizer. It is provided for
// ablations and faster experimentation; the paper itself uses Adadelta.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	t int
}

// NewAdam returns an Adam optimizer with the canonical defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		value := p.Value.Data
		grad := p.Grad.Data[:len(value)]
		m := p.Slot("adam_m").Data[:len(value)]
		v := p.Slot("adam_v").Data[:len(value)]
		for i := range value {
			g := grad[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mhat := m[i] / c1
			vhat := v[i] / c2
			value[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// Describe implements Optimizer.
func (a *Adam) Describe() string { return fmt.Sprintf("Adam(lr=%g)", a.LR) }
