package nn

import (
	"fmt"
	"math"

	"acobe/internal/mathx"
)

// Param is a trainable tensor together with its accumulated gradient and
// optimizer slots (allocated lazily by the optimizer).
type Param struct {
	Name  string
	Value *Matrix
	Grad  *Matrix

	// slots holds optimizer state keyed by slot name (e.g. Adadelta's
	// accumulated gradient and update squares).
	slots map[string]*Matrix
}

// newParam returns a parameter with a zeroed gradient of matching shape.
func newParam(name string, value *Matrix) *Param {
	return &Param{
		Name:  name,
		Value: value,
		Grad:  NewMatrix(value.Rows, value.Cols),
	}
}

// Slot returns the named optimizer state matrix, creating a zeroed one of
// the parameter's shape on first use.
func (p *Param) Slot(name string) *Matrix {
	if p.slots == nil {
		p.slots = make(map[string]*Matrix)
	}
	s, ok := p.slots[name]
	if !ok {
		s = NewMatrix(p.Value.Rows, p.Value.Cols)
		p.slots[name] = s
	}
	return s
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network. Forward consumes a batch
// (rows = samples) and Backward consumes the gradient of the loss with
// respect to the layer's output, returning the gradient with respect to its
// input while accumulating parameter gradients.
//
// The Into variants are the allocation-free hot path used by Workspace:
// the caller owns the output buffers and the layer fully overwrites them.
// Forward/Backward are thin allocating wrappers kept for compatibility.
type Layer interface {
	// Forward runs the layer. train toggles training-time behaviour
	// (batch statistics in BatchNorm).
	Forward(x *Matrix, train bool) *Matrix
	// ForwardInto runs the layer into out, which the caller has shaped to
	// x.Rows × OutDim(x.Cols); out's prior contents are fully overwritten.
	// When train is false the layer must not mutate receiver state, so
	// concurrent inference over one trained layer is race-free (each
	// goroutine bringing its own buffers).
	ForwardInto(x *Matrix, train bool, out *Matrix)
	// Backward back-propagates gradOut and returns the gradient w.r.t.
	// the input of the most recent Forward call.
	Backward(gradOut *Matrix) *Matrix
	// BackwardInto back-propagates gradOut into dst, which the caller has
	// shaped like the input of the most recent training-mode forward pass,
	// accumulating parameter gradients.
	BackwardInto(gradOut, dst *Matrix)
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// OutDim returns the layer's output width given its input width.
	OutDim(inDim int) int
	// Describe returns a short human-readable summary.
	Describe() string
}

// Dense is a fully-connected layer computing y = xW + b.
type Dense struct {
	In, Out int
	W       *Param // In×Out
	B       *Param // 1×Out

	lastInput *Matrix

	// Backward scratch, lazily allocated and reused across batches.
	dwScratch *Matrix
	bsScratch []float64
}

// NewDense returns a dense layer with Xavier/Glorot-uniform initialized
// weights and zero biases, drawn from rng.
func NewDense(in, out int, rng *mathx.RNG) *Dense {
	w := NewMatrix(in, out)
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range w.Data {
		w.Data[i] = (2*rng.Float64() - 1) * limit
	}
	return &Dense{
		In:  in,
		Out: out,
		W:   newParam(fmt.Sprintf("dense_%dx%d_w", in, out), w),
		B:   newParam(fmt.Sprintf("dense_%dx%d_b", in, out), NewMatrix(1, out)),
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *Matrix, train bool) *Matrix {
	out := NewMatrix(x.Rows, d.Out)
	d.ForwardInto(x, train, out)
	return out
}

// ForwardInto implements Layer.
func (d *Dense) ForwardInto(x *Matrix, train bool, out *Matrix) {
	if x.Cols != d.In {
		panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.In, x.Cols))
	}
	if train {
		d.lastInput = x
	}
	MatMulInto(out, x, d.W.Value)
	out.AddRowVec(d.B.Value.Data)
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *Matrix) *Matrix {
	dst := NewMatrix(gradOut.Rows, d.In)
	d.BackwardInto(gradOut, dst)
	return dst
}

// BackwardInto implements Layer.
func (d *Dense) BackwardInto(gradOut, dst *Matrix) {
	// dW += xᵀ · gradOut ; db += column sums ; dx = gradOut · Wᵀ
	if d.dwScratch == nil {
		d.dwScratch = NewMatrix(d.In, d.Out)
		d.bsScratch = make([]float64, d.Out)
	}
	dw := MatMulATBInto(d.dwScratch, d.lastInput, gradOut)
	for i := range d.W.Grad.Data {
		d.W.Grad.Data[i] += dw.Data[i]
	}
	bs := gradOut.ColSumsInto(d.bsScratch)
	for i := range d.B.Grad.Data {
		d.B.Grad.Data[i] += bs[i]
	}
	MatMulABTInto(dst, gradOut, d.W.Value)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// OutDim implements Layer.
func (d *Dense) OutDim(int) int { return d.Out }

// Describe implements Layer.
func (d *Dense) Describe() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }

// Activation kinds supported by ActivationLayer.
type Activation int

// Supported activation functions.
const (
	ActReLU Activation = iota + 1
	ActSigmoid
	ActTanh
	ActIdentity
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	case ActTanh:
		return "tanh"
	case ActIdentity:
		return "identity"
	default:
		return fmt.Sprintf("activation(%d)", int(a))
	}
}

// ActivationLayer applies a pointwise nonlinearity.
type ActivationLayer struct {
	Kind Activation

	lastOutput *Matrix
	lastInput  *Matrix
}

// NewActivation returns an activation layer of the given kind.
func NewActivation(kind Activation) *ActivationLayer {
	return &ActivationLayer{Kind: kind}
}

// Forward implements Layer.
func (a *ActivationLayer) Forward(x *Matrix, train bool) *Matrix {
	out := NewMatrix(x.Rows, x.Cols)
	a.ForwardInto(x, train, out)
	return out
}

// ForwardInto implements Layer.
func (a *ActivationLayer) ForwardInto(x *Matrix, train bool, out *Matrix) {
	switch a.Kind {
	case ActReLU:
		for i, v := range x.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
	case ActSigmoid:
		for i, v := range x.Data {
			out.Data[i] = 1 / (1 + math.Exp(-v))
		}
	case ActTanh:
		for i, v := range x.Data {
			out.Data[i] = math.Tanh(v)
		}
	case ActIdentity:
		copy(out.Data, x.Data)
	default:
		panic(fmt.Sprintf("nn: unknown activation %v", a.Kind))
	}
	if train {
		a.lastInput = x
		a.lastOutput = out
	}
}

// Backward implements Layer.
func (a *ActivationLayer) Backward(gradOut *Matrix) *Matrix {
	out := NewMatrix(gradOut.Rows, gradOut.Cols)
	a.BackwardInto(gradOut, out)
	return out
}

// BackwardInto implements Layer.
func (a *ActivationLayer) BackwardInto(gradOut, dst *Matrix) {
	switch a.Kind {
	case ActReLU:
		for i, g := range gradOut.Data {
			if a.lastInput.Data[i] > 0 {
				dst.Data[i] = g
			} else {
				dst.Data[i] = 0
			}
		}
	case ActSigmoid:
		for i, g := range gradOut.Data {
			y := a.lastOutput.Data[i]
			dst.Data[i] = g * y * (1 - y)
		}
	case ActTanh:
		for i, g := range gradOut.Data {
			y := a.lastOutput.Data[i]
			dst.Data[i] = g * (1 - y*y)
		}
	case ActIdentity:
		copy(dst.Data, gradOut.Data)
	default:
		panic(fmt.Sprintf("nn: unknown activation %v", a.Kind))
	}
}

// Params implements Layer.
func (a *ActivationLayer) Params() []*Param { return nil }

// OutDim implements Layer.
func (a *ActivationLayer) OutDim(inDim int) int { return inDim }

// Describe implements Layer.
func (a *ActivationLayer) Describe() string { return a.Kind.String() }
