// Package nn implements the neural-network substrate used by the ACOBE
// reproduction: dense layers, batch normalization, activations, losses and
// optimizers (notably Adadelta, which the paper uses), along with a
// mini-batch trainer. It is a from-scratch, stdlib-only replacement for
// the TensorFlow 2.0 stack the paper was implemented with.
package nn

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64. A Matrix with Rows == 1
// doubles as a row vector. The zero value is an empty matrix; use
// NewMatrix for a usable instance.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix whose rows are copies of the given slices. All
// rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("nn: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r)))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Matmul dispatch size table. The product size in scalar multiply-adds
// (MACs = rows × k × cols) picks the kernel; every kernel produces
// bit-identical output (see kernels.go), so the cutoffs affect only speed:
//
//	MACs < smallKernelCutoff            legacy ikj sweep — at this size the
//	                                    blocked kernel's panel pack costs a
//	                                    comparable number of memory ops to
//	                                    the whole product.
//	smallKernelCutoff ≤ MACs,           cache-blocked direct path on the
//	  below parallelThreshold or        calling goroutine: zero goroutines,
//	  EffectiveWorkers() == 1           zero scheduling overhead.
//	MACs ≥ parallelThreshold and        cache-blocked kernels, output rows
//	  EffectiveWorkers() > 1            sharded across the worker budget.
//
// TestMatMulDispatchTable pins this table; BenchmarkMatMulDirectDispatch
// asserts the single-worker path spawns no goroutines.
const (
	smallKernelCutoff = 1 << 13

	// parallelThreshold is the number of MACs above which the matmul
	// kernels shard work across goroutines.
	parallelThreshold = 1 << 18
)

// Reshape resizes m to rows×cols in place, reusing the backing array when
// its capacity allows. Element values are unspecified afterwards; callers
// must fully overwrite (or Zero) the matrix. It returns m for chaining.
func (m *Matrix) Reshape(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		m.Data = make([]float64, n)
	}
	m.Data = m.Data[:n]
	m.Rows, m.Cols = rows, cols
	return m
}

// MatMul returns a × b. Panics on shape mismatch.
func MatMul(a, b *Matrix) *Matrix {
	return MatMulInto(NewMatrix(a.Rows, b.Cols), a, b)
}

// MatMulInto computes a × b into dst (shaped a.Rows×b.Cols) and returns
// dst. Row ranges above parallelThreshold are sharded across goroutines
// within the package worker budget; results are bit-identical to the
// serial sweep either way.
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDstShape("MatMulInto", dst, a.Rows, b.Cols)
	dst.Zero()
	macs := a.Rows * a.Cols * b.Cols
	if macs < smallKernelCutoff {
		matmulRange(a, b, dst, 0, a.Rows)
		return dst
	}
	if macs < parallelThreshold {
		matmulBlockedRange(a, b, dst, 0, a.Rows)
		return dst
	}
	shardRows(matmulBlockedRange, a, b, dst, a.Rows)
	return dst
}

// matmulRange computes rows [rs, re) of out = a × b using an ikj loop
// order, which keeps the inner loop streaming over contiguous memory.
func matmulRange(a, b, out *Matrix, rs, re int) {
	for i := rs; i < re; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ × b without materializing the transpose.
func MatMulATB(a, b *Matrix) *Matrix {
	return MatMulATBInto(NewMatrix(a.Cols, b.Cols), a, b)
}

// MatMulATBInto computes aᵀ × b into dst (shaped a.Cols×b.Cols) and
// returns dst, sharding output-row ranges across goroutines above
// parallelThreshold. Each output element accumulates in the same k-order
// as the serial sweep, so results are bit-identical.
func MatMulATBInto(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: matmulATB shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDstShape("MatMulATBInto", dst, a.Cols, b.Cols)
	dst.Zero()
	macs := a.Rows * a.Cols * b.Cols
	if macs < smallKernelCutoff {
		matmulATBRange(a, b, dst, 0, a.Cols)
		return dst
	}
	if macs < parallelThreshold {
		matmulATBBlockedRange(a, b, dst, 0, a.Cols)
		return dst
	}
	shardRows(matmulATBBlockedRange, a, b, dst, a.Cols)
	return dst
}

// matmulATBRange computes output rows [is, ie) of out = aᵀ × b, i.e. the
// contributions of columns is..ie of a, streaming row-contiguously over a
// and b.
func matmulATBRange(a, b, out *Matrix, is, ie int) {
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols+is : k*a.Cols+ie]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[(is+i)*out.Cols : (is+i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulABT returns a × bᵀ without materializing the transpose.
func MatMulABT(a, b *Matrix) *Matrix {
	return MatMulABTInto(NewMatrix(a.Rows, b.Rows), a, b)
}

// MatMulABTInto computes a × bᵀ into dst (shaped a.Rows×b.Rows) and
// returns dst, sharding row ranges across goroutines above
// parallelThreshold with bit-identical results.
func MatMulABTInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulABT shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	checkDstShape("MatMulABTInto", dst, a.Rows, b.Rows)
	macs := a.Rows * a.Cols * b.Rows
	if macs < smallKernelCutoff {
		matmulABTRange(a, b, dst, 0, a.Rows)
		return dst
	}
	if macs < parallelThreshold {
		matmulABTBlocked(a, b, dst, 0, a.Rows)
		return dst
	}
	shardRows(matmulABTBlocked, a, b, dst, a.Rows)
	return dst
}

// matmulABTRange computes rows [rs, re) of out = a × bᵀ.
func matmulABTRange(a, b, out *Matrix, rs, re int) {
	for i := rs; i < re; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			orow[j] = sum
		}
	}
}

func checkDstShape(op string, dst *Matrix, rows, cols int) {
	if dst.Rows != rows || dst.Cols != cols {
		panic(fmt.Sprintf("nn: %s dst is %dx%d, want %dx%d", op, dst.Rows, dst.Cols, rows, cols))
	}
}

// AddRowVec adds the row vector v (1×cols) to every row of m, in place.
func (m *Matrix) AddRowVec(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("nn: AddRowVec length %d vs %d cols", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sums of m as a slice of length Cols.
func (m *Matrix) ColSums() []float64 {
	return m.ColSumsInto(make([]float64, m.Cols))
}

// ColSumsInto writes the per-column sums of m into dst (length Cols),
// overwriting its contents, and returns dst.
func (m *Matrix) ColSumsInto(dst []float64) []float64 {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("nn: ColSumsInto dst length %d vs %d cols", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v
		}
	}
	return dst
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns the elementwise product a ⊙ b.
func Hadamard(a, b *Matrix) *Matrix {
	checkSameShape("Hadamard", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	var ss float64
	for _, v := range m.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}
