// Package nn implements the neural-network substrate used by the ACOBE
// reproduction: dense layers, batch normalization, activations, losses and
// optimizers (notably Adadelta, which the paper uses), along with a
// mini-batch trainer. It is a from-scratch, stdlib-only replacement for
// the TensorFlow 2.0 stack the paper was implemented with.
package nn

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix of float64. A Matrix with Rows == 1
// doubles as a row vector. The zero value is an empty matrix; use
// NewMatrix for a usable instance.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix whose rows are copies of the given slices. All
// rows must have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("nn: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r)))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// parallelThreshold is the number of scalar multiply-adds above which
// MatMul shards work across goroutines.
const parallelThreshold = 1 << 18

// MatMul returns a × b. Panics on shape mismatch.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold || a.Rows == 1 {
		matmulRange(a, b, out, 0, a.Rows)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for start := 0; start < a.Rows; start += chunk {
		end := start + chunk
		if end > a.Rows {
			end = a.Rows
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			matmulRange(a, b, out, s, e)
		}(start, end)
	}
	wg.Wait()
	return out
}

// matmulRange computes rows [rs, re) of out = a × b using an ikj loop
// order, which keeps the inner loop streaming over contiguous memory.
func matmulRange(a, b, out *Matrix, rs, re int) {
	for i := rs; i < re; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulATB returns aᵀ × b without materializing the transpose.
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: matmulATB shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulABT returns a × bᵀ without materializing the transpose.
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulABT shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var sum float64
			for k, av := range arow {
				sum += av * brow[k]
			}
			orow[j] = sum
		}
	}
	return out
}

// AddRowVec adds the row vector v (1×cols) to every row of m, in place.
func (m *Matrix) AddRowVec(v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("nn: AddRowVec length %d vs %d cols", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sums of m as a slice of length Cols.
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Sub returns a - b elementwise.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape("Sub", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Hadamard returns the elementwise product a ⊙ b.
func Hadamard(a, b *Matrix) *Matrix {
	checkSameShape("Hadamard", a, b)
	out := NewMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// FrobeniusNorm returns sqrt(sum of squared elements).
func (m *Matrix) FrobeniusNorm() float64 {
	var ss float64
	for _, v := range m.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}
