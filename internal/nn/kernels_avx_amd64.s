// AVX micro-kernels for the blocked matmul path.
//
// Strictly VMULPD + VADDPD, never FMA: each product must round to float64
// before the add so every lane reproduces the scalar kernel's arithmetic
// bit for bit. Terms are applied in ascending-k order, matching the scalar
// accumulation ((((o+t0)+t1)+t2)+t3).
//
// Register notes: Y15/X15 is the Go ABI zero register and R14 holds g —
// both are left untouched. VZEROUPPER before every RET avoids SSE/AVX
// transition stalls in surrounding runtime code.

#include "textflag.h"

// func cpuid1ecx() uint32
TEXT ·cpuid1ecx(SB), NOSPLIT, $0-4
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, ret+0(FP)
	RET

// func xgetbv0() uint32
TEXT ·xgetbv0(SB), NOSPLIT, $0-4
	XORL CX, CX
	XGETBV
	MOVL AX, ret+0(FP)
	RET

// func axpyPair4AVX(out0, out1, b *float64, blocks, stride int, a *[8]float64)
//
// For bl = 0..blocks-1, columns j = 4bl..4bl+3:
//   out0[j] = (((out0[j] + a[0]*b[j]) + a[1]*b[s+j]) + a[2]*b[2s+j]) + a[3]*b[3s+j]
//   out1[j] = same with a[4..7]
// blocks >= 1 (caller-guaranteed).
TEXT ·axpyPair4AVX(SB), NOSPLIT, $0-48
	MOVQ out0+0(FP), DI
	MOVQ out1+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ blocks+24(FP), CX
	MOVQ stride+32(FP), R8
	SHLQ $3, R8              // stride in bytes
	LEAQ (R8)(R8*2), R9      // 3*stride in bytes
	MOVQ a+40(FP), DX
	VBROADCASTSD (DX), Y7    // a[0..3]: row-0 scalars for the k-quad
	VBROADCASTSD 8(DX), Y8
	VBROADCASTSD 16(DX), Y9
	VBROADCASTSD 24(DX), Y10
	VBROADCASTSD 32(DX), Y11 // a[4..7]: row-1 scalars
	VBROADCASTSD 40(DX), Y12
	VBROADCASTSD 48(DX), Y13
	VBROADCASTSD 56(DX), Y14

pairloop:
	VMOVUPD (BX), Y0         // B rows k..k+3 at this column block
	VMOVUPD (BX)(R8*1), Y1
	VMOVUPD (BX)(R8*2), Y2
	VMOVUPD (BX)(R9*1), Y3

	VMOVUPD (DI), Y4         // out0: +t0 +t1 +t2 +t3, ascending k
	VMULPD  Y0, Y7, Y5
	VADDPD  Y5, Y4, Y4
	VMULPD  Y1, Y8, Y5
	VADDPD  Y5, Y4, Y4
	VMULPD  Y2, Y9, Y5
	VADDPD  Y5, Y4, Y4
	VMULPD  Y3, Y10, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)

	VMOVUPD (SI), Y6         // out1, same B vectors
	VMULPD  Y0, Y11, Y5
	VADDPD  Y5, Y6, Y6
	VMULPD  Y1, Y12, Y5
	VADDPD  Y5, Y6, Y6
	VMULPD  Y2, Y13, Y5
	VADDPD  Y5, Y6, Y6
	VMULPD  Y3, Y14, Y5
	VADDPD  Y5, Y6, Y6
	VMOVUPD Y6, (SI)

	ADDQ $32, BX
	ADDQ $32, DI
	ADDQ $32, SI
	DECQ CX
	JNZ  pairloop

	VZEROUPPER
	RET

// func axpySingle4AVX(out, b *float64, blocks, stride int, a *[4]float64)
//
// Single-row form of axpyPair4AVX. blocks >= 1.
TEXT ·axpySingle4AVX(SB), NOSPLIT, $0-40
	MOVQ out+0(FP), DI
	MOVQ b+8(FP), BX
	MOVQ blocks+16(FP), CX
	MOVQ stride+24(FP), R8
	SHLQ $3, R8
	LEAQ (R8)(R8*2), R9
	MOVQ a+32(FP), DX
	VBROADCASTSD (DX), Y7
	VBROADCASTSD 8(DX), Y8
	VBROADCASTSD 16(DX), Y9
	VBROADCASTSD 24(DX), Y10

singleloop:
	VMOVUPD (BX), Y0
	VMOVUPD (BX)(R8*1), Y1
	VMOVUPD (BX)(R8*2), Y2
	VMOVUPD (BX)(R9*1), Y3

	VMOVUPD (DI), Y4
	VMULPD  Y0, Y7, Y5
	VADDPD  Y5, Y4, Y4
	VMULPD  Y1, Y8, Y5
	VADDPD  Y5, Y4, Y4
	VMULPD  Y2, Y9, Y5
	VADDPD  Y5, Y4, Y4
	VMULPD  Y3, Y10, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)

	ADDQ $32, BX
	ADDQ $32, DI
	DECQ CX
	JNZ  singleloop

	VZEROUPPER
	RET

// func axpy1AVX(out, b *float64, blocks int, a float64)
//
// Single k-term: out[j] += a*b[j] over blocks*4 columns. blocks >= 1.
TEXT ·axpy1AVX(SB), NOSPLIT, $0-32
	MOVQ out+0(FP), DI
	MOVQ b+8(FP), BX
	MOVQ blocks+16(FP), CX
	VBROADCASTSD a+24(FP), Y7

oneloop:
	VMOVUPD (BX), Y0
	VMOVUPD (DI), Y4
	VMULPD  Y0, Y7, Y5
	VADDPD  Y5, Y4, Y4
	VMOVUPD Y4, (DI)

	ADDQ $32, BX
	ADDQ $32, DI
	DECQ CX
	JNZ  oneloop

	VZEROUPPER
	RET
