package logstore

import (
	"math/rand"
	"testing"
	"time"
)

// TestSortRecordsCanonical: SortRecords must produce the same order from
// any input permutation (the property RunEnterprise relies on after
// concurrent ingestion) and be idempotent.
func TestSortRecordsCanonical(t *testing.T) {
	base := time.Date(2010, 1, 4, 9, 0, 0, 0, time.UTC)
	recs := []Record{
		{Time: base, User: "b", Channel: ChannelSysmon, EventID: 1, Action: "ProcessCreate", Object: "a.exe"},
		{Time: base, User: "a", Channel: ChannelSysmon, EventID: 1, Action: "ProcessCreate", Object: "a.exe"},
		{Time: base, User: "a", Channel: ChannelProxy, Action: "HTTPRequest", Object: "x.com"},
		{Time: base.Add(time.Second), User: "a", Channel: ChannelProxy, Action: "HTTPRequest", Object: "x.com"},
		{Time: base, User: "a", Channel: ChannelSysmon, EventID: 1, Action: "ProcessCreate", Object: "b.exe"},
		{Time: base, User: "a", Channel: ChannelSysmon, EventID: 11, Action: "FileWrite", Object: "b.exe"},
		{Time: base, User: "a", Channel: ChannelSysmon, EventID: 1, Action: "ProcessCreate", Object: "a.exe", Status: "success"},
	}
	want := append([]Record(nil), recs...)
	SortRecords(want)

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]Record(nil), recs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		SortRecords(shuffled)
		for i := range want {
			if shuffled[i] != want[i] {
				t.Fatalf("trial %d: position %d = %+v, want %+v", trial, i, shuffled[i], want[i])
			}
		}
		SortRecords(shuffled) // idempotent
		for i := range want {
			if shuffled[i] != want[i] {
				t.Fatalf("trial %d: re-sort moved position %d", trial, i)
			}
		}
	}

	// The order is total over the fields: every adjacent pair differs.
	for i := 1; i < len(want); i++ {
		if want[i] == want[i-1] {
			t.Fatalf("fixture records %d and %d identical; test needs distinct records", i-1, i)
		}
	}
}
