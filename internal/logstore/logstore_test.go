package logstore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"acobe/internal/cert"
)

func rec(day int, user, channel, action, status string) Record {
	return Record{
		Time:    cert.Day(day).Date().Add(10 * time.Hour),
		User:    user,
		Host:    "WS-1",
		Channel: channel,
		Action:  action,
		Status:  status,
	}
}

func TestStoreAppendAndDays(t *testing.T) {
	s := NewStore()
	s.Append(rec(3, "a", ChannelProxy, "HTTPRequest", "success"))
	s.Append(rec(1, "a", ChannelSysmon, "FileWrite", "success"))
	s.Append(rec(3, "b", ChannelProxy, "HTTPRequest", "failure"))
	days := s.Days()
	if len(days) != 2 || days[0] != 1 || days[1] != 3 {
		t.Errorf("Days = %v", days)
	}
	if got := len(s.DayRecords(3)); got != 2 {
		t.Errorf("day 3 has %d records", got)
	}
	if s.Ingested() != 3 {
		t.Errorf("Ingested = %d", s.Ingested())
	}
}

func TestDayRecordsIsCopy(t *testing.T) {
	s := NewStore()
	s.Append(rec(1, "a", ChannelProxy, "HTTPRequest", "success"))
	got := s.DayRecords(1)
	got[0].User = "tampered"
	if s.DayRecords(1)[0].User != "a" {
		t.Error("DayRecords aliases internal storage")
	}
}

func TestQueryFilters(t *testing.T) {
	s := NewStore()
	s.Append(
		rec(1, "alice", ChannelProxy, "HTTPRequest", "success"),
		rec(2, "alice", ChannelSysmon, "FileWrite", "success"),
		rec(3, "bob", ChannelProxy, "HTTPRequest", "failure"),
		rec(4, "alice", ChannelProxy, "HTTPRequest", "failure"),
	)
	if got := s.Count(Filter{User: "alice"}); got != 3 {
		t.Errorf("user filter count = %d", got)
	}
	if got := s.Count(Filter{Channel: ChannelProxy}); got != 3 {
		t.Errorf("channel filter count = %d", got)
	}
	if got := s.Count(Filter{Action: "FileWrite"}); got != 1 {
		t.Errorf("action filter count = %d", got)
	}
	if got := s.Count(Filter{User: "alice"}.Span(2, 4)); got != 2 {
		t.Errorf("span filter count = %d", got)
	}
	recs := s.Query(Filter{Channel: ChannelProxy}.Span(1, 3))
	if len(recs) != 2 {
		t.Fatalf("query returned %d records", len(recs))
	}
	if recs[0].Day() > recs[1].Day() {
		t.Error("query results out of day order")
	}
}

func TestFilterEventID(t *testing.T) {
	s := NewStore()
	r := rec(1, "a", ChannelSysmon, "ProcessCreate", "success")
	r.EventID = 1
	s.Append(r)
	if s.Count(Filter{EventID: 1}) != 1 || s.Count(Filter{EventID: 4688}) != 0 {
		t.Error("event-id filter wrong")
	}
}

func TestPipelineConcurrentIngestion(t *testing.T) {
	s := NewStore()
	p := NewPipeline(s, 4, 32)
	const (
		workers = 8
		each    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r := rec(i%30, fmt.Sprintf("user%d", w), ChannelProxy, "HTTPRequest", "success")
				if err := p.Submit(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	p.Close()
	if got := s.Ingested(); got != workers*each {
		t.Errorf("ingested %d, want %d", got, workers*each)
	}
}

func TestPipelineSubmitAfterClose(t *testing.T) {
	p := NewPipeline(NewStore(), 1, 8)
	p.Close()
	if err := p.Submit(rec(1, "a", ChannelProxy, "HTTPRequest", "success")); err == nil {
		t.Error("submit after close succeeded")
	}
	// Double close must be safe.
	p.Close()
}

func TestPipelineFlushesPartialBatch(t *testing.T) {
	s := NewStore()
	p := NewPipeline(s, 2, 1000) // batch bigger than submissions
	for i := 0; i < 5; i++ {
		if err := p.Submit(rec(i, "a", ChannelDNS, "DNSQuery", "failure")); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if s.Ingested() != 5 {
		t.Errorf("flushed %d records, want 5", s.Ingested())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := NewStore()
	r1 := rec(1, "alice", ChannelSysmon, "FileWrite", "success")
	r1.EventID = 11
	r1.Object = `C:\a.docx`
	r2 := rec(3, "bob", ChannelDNS, "DNSQuery", "failure")
	r2.Object = "xyz.biz"
	s.Append(r1, r2)

	path := t.TempDir() + "/logs.jsonl"
	n, err := s.SaveJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("wrote %d records", n)
	}
	loaded, err := LoadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ingested() != 2 {
		t.Fatalf("loaded %d records", loaded.Ingested())
	}
	got := loaded.DayRecords(1)[0]
	if got.User != "alice" || got.EventID != 11 || got.Object != `C:\a.docx` || got.Channel != ChannelSysmon {
		t.Errorf("round-tripped record %+v", got)
	}
	if !got.Time.Equal(r1.Time) {
		t.Errorf("time %v vs %v", got.Time, r1.Time)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("no error for malformed JSON")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"@timestamp":"bogus","user":"a"}`)); err == nil {
		t.Error("no error for malformed timestamp")
	}
	s, err := ReadJSONL(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if s.Ingested() != 0 {
		t.Error("empty stream not empty")
	}
}

func TestLoadJSONLMissing(t *testing.T) {
	if _, err := LoadJSONL(t.TempDir() + "/nope.jsonl"); err == nil {
		t.Error("no error for missing file")
	}
}
