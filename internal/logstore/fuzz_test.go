package logstore

import (
	"bytes"
	"testing"
)

// FuzzReadJSONL: the JSONL reader guards the boundary with shipped log
// files, so arbitrary bytes must never panic it. Accepted input must reach a
// canonical fixpoint: writing the store and reading it back must reproduce
// the written bytes exactly (WriteJSONL normalizes timestamps to UTC-second
// RFC3339, so the first write is the canonicalizer).
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte(`{"@timestamp":"2010-01-04T09:00:00Z","user":"emp001","host":"ws01","channel":"Sysmon","event_id":1,"action":"ProcessCreate","object":"cmd.exe","status":"success"}` + "\n"))
	f.Add([]byte(`{"@timestamp":"2010-01-04T23:30:00+05:00","user":"emp002","host":"ws02","channel":"Proxy","action":"HTTPRequest"}` + "\n"))
	f.Add([]byte(`{"@timestamp":"not a time","user":"u"}` + "\n"))
	f.Add([]byte(`{"@timestamp":"2010-01-04T09:00:00.123456Z","user":"frac"}` + "\n"))
	f.Add([]byte("{\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		store, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		// RFC3339 re-serialization only round-trips for in-range years
		// (converting an offset timestamp to UTC can leave [1, 9999]).
		for _, d := range store.Days() {
			for _, r := range store.DayRecords(d) {
				if y := r.Time.UTC().Year(); y < 1 || y > 9999 {
					return
				}
			}
		}
		var first bytes.Buffer
		n, err := store.WriteJSONL(&first)
		if err != nil {
			t.Fatalf("write accepted store: %v", err)
		}
		if int64(n) != store.Ingested() {
			t.Fatalf("wrote %d records, store ingested %d", n, store.Ingested())
		}
		store2, err := ReadJSONL(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if store2.Ingested() != store.Ingested() {
			t.Fatalf("round trip changed record count %d → %d", store.Ingested(), store2.Ingested())
		}
		var second bytes.Buffer
		if _, err := store2.WriteJSONL(&second); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("write → read → write is not a fixpoint")
		}
	})
}
