// Package logstore is a small, concurrent audit-log ingestion pipeline and
// in-memory indexed store — the stand-in for the ELK stack the paper's
// enterprise gathered its Windows-server and web-proxy logs through.
// Collectors submit records concurrently; the store indexes them by day
// for the feature-extraction stage.
package logstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"acobe/internal/cert"
)

// Channel names of the enterprise audit sources (Section VI-A).
const (
	ChannelSecurity   = "Security"   // Windows-Event auditing
	ChannelSysmon     = "Sysmon"     // Microsoft-Windows-Sysmon/Operational
	ChannelPowerShell = "PowerShell" // Microsoft-Windows-PowerShell/Operational
	ChannelDNS        = "DNS"        // DNS-query logs
	ChannelProxy      = "Proxy"      // web-proxy access logs
)

// Record is one enterprise audit-log entry, normalized across channels the
// way a log shipper would emit it.
type Record struct {
	Time    time.Time
	User    string
	Host    string
	Channel string
	// EventID is the Windows event ID (Sysmon 1, Security 4688, ...);
	// zero for proxy/DNS records.
	EventID int
	// Action is the normalized verb: ProcessCreate, FileWrite,
	// RegistrySet, DNSQuery, HTTPRequest, Logon, ...
	Action string
	// Object is the acted-on entity: file path, registry key, domain,
	// process image, share name.
	Object string
	// Status is "success" or "failure" where meaningful.
	Status string
}

// Day returns the record's calendar day.
func (r Record) Day() cert.Day { return cert.DayOf(r.Time) }

// Store is an in-memory day-indexed record store. It is safe for
// concurrent ingestion and concurrent reads, but reads concurrent with
// writes see a consistent snapshot only per call.
type Store struct {
	mu       sync.RWMutex
	byDay    map[cert.Day][]Record
	ingested atomic.Int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byDay: make(map[cert.Day][]Record)}
}

// Append adds records to the store.
func (s *Store) Append(recs ...Record) {
	if len(recs) == 0 {
		return
	}
	s.mu.Lock()
	for _, r := range recs {
		d := r.Day()
		s.byDay[d] = append(s.byDay[d], r)
	}
	s.mu.Unlock()
	s.ingested.Add(int64(len(recs)))
}

// Ingested returns the total number of records appended so far.
func (s *Store) Ingested() int64 { return s.ingested.Load() }

// Days returns the sorted days that have records.
func (s *Store) Days() []cert.Day {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]cert.Day, 0, len(s.byDay))
	for d := range s.byDay {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DayRecords returns a copy of the records of day d.
func (s *Store) DayRecords(d cert.Day) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Record(nil), s.byDay[d]...)
}

// SortRecords orders records by the canonical total order (time, user,
// channel, event ID, action, object, status). Concurrent ingestion through
// Append or Pipeline preserves no within-day order, so any consumer whose
// features depend on first-seen attribution (e.g. the enterprise
// extractor's unique/new counters) must canonicalize the order first or
// its output varies run to run with goroutine scheduling.
func SortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if !a.Time.Equal(b.Time) {
			return a.Time.Before(b.Time)
		}
		if a.User != b.User {
			return a.User < b.User
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		if a.EventID != b.EventID {
			return a.EventID < b.EventID
		}
		if a.Action != b.Action {
			return a.Action < b.Action
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Status < b.Status
	})
}

// Filter selects records; zero fields match everything.
type Filter struct {
	User    string
	Channel string
	Action  string
	EventID int
	From    cert.Day
	To      cert.Day // inclusive; zero means open-ended when From is zero too
	hasSpan bool
}

// Span restricts the filter to [from, to].
func (f Filter) Span(from, to cert.Day) Filter {
	f.From, f.To, f.hasSpan = from, to, true
	return f
}

func (f Filter) match(r Record) bool {
	if f.User != "" && r.User != f.User {
		return false
	}
	if f.Channel != "" && r.Channel != f.Channel {
		return false
	}
	if f.Action != "" && r.Action != f.Action {
		return false
	}
	if f.EventID != 0 && r.EventID != f.EventID {
		return false
	}
	if f.hasSpan {
		d := r.Day()
		if d < f.From || d > f.To {
			return false
		}
	}
	return true
}

// Query returns matching records in day order.
func (s *Store) Query(f Filter) []Record {
	var out []Record
	for _, d := range s.Days() {
		if f.hasSpan && (d < f.From || d > f.To) {
			continue
		}
		s.mu.RLock()
		for _, r := range s.byDay[d] {
			if f.match(r) {
				out = append(out, r)
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// Count returns the number of matching records.
func (s *Store) Count(f Filter) int {
	n := 0
	s.mu.RLock()
	defer s.mu.RUnlock()
	for d, recs := range s.byDay {
		if f.hasSpan && (d < f.From || d > f.To) {
			continue
		}
		for _, r := range recs {
			if f.match(r) {
				n++
			}
		}
	}
	return n
}

// Pipeline fans concurrent record submissions into a store through a
// buffered channel with batching — the shape of a log-shipper → indexer
// pipeline. Close it to flush and stop the workers.
type Pipeline struct {
	store   *Store
	ch      chan Record
	wg      sync.WaitGroup
	closed  atomic.Bool
	batchSz int
}

// NewPipeline starts workers draining into store. batchSize controls how
// many records a worker groups per Append (defaults to 256).
func NewPipeline(store *Store, workers, batchSize int) *Pipeline {
	if workers < 1 {
		workers = 1
	}
	if batchSize < 1 {
		batchSize = 256
	}
	p := &Pipeline{store: store, ch: make(chan Record, workers*batchSize), batchSz: batchSize}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	batch := make([]Record, 0, p.batchSz)
	for r := range p.ch {
		batch = append(batch, r)
		if len(batch) >= p.batchSz {
			p.store.Append(batch...)
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		p.store.Append(batch...)
	}
}

// Submit enqueues one record. It returns an error after Close.
func (p *Pipeline) Submit(r Record) error {
	if p.closed.Load() {
		return fmt.Errorf("logstore: submit on closed pipeline")
	}
	p.ch <- r
	return nil
}

// Close flushes outstanding records and stops the workers. It is safe to
// call once; further Submits fail.
func (p *Pipeline) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.ch)
		p.wg.Wait()
	}
}
