package logstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// jsonRecord is the wire form of a Record, shaped like what a log shipper
// would emit (flat JSON object per line, RFC3339 timestamp).
type jsonRecord struct {
	Timestamp string `json:"@timestamp"`
	User      string `json:"user"`
	Host      string `json:"host"`
	Channel   string `json:"channel"`
	EventID   int    `json:"event_id,omitempty"`
	Action    string `json:"action"`
	Object    string `json:"object,omitempty"`
	Status    string `json:"status,omitempty"`
}

// WriteJSONL streams every record of the store to w as one JSON object
// per line, in day order. It returns the number of records written.
func (s *Store) WriteJSONL(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	n := 0
	for _, d := range s.Days() {
		for _, r := range s.DayRecords(d) {
			jr := jsonRecord{
				Timestamp: r.Time.UTC().Format(time.RFC3339),
				User:      r.User,
				Host:      r.Host,
				Channel:   r.Channel,
				EventID:   r.EventID,
				Action:    r.Action,
				Object:    r.Object,
				Status:    r.Status,
			}
			if err := enc.Encode(&jr); err != nil {
				return n, fmt.Errorf("logstore: encode record: %w", err)
			}
			n++
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("logstore: flush: %w", err)
	}
	return n, nil
}

// SaveJSONL writes the store to a file.
func (s *Store) SaveJSONL(path string) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, fmt.Errorf("logstore: create %s: %w", path, err)
	}
	defer f.Close()
	return s.WriteJSONL(f)
}

// ReadJSONL loads records from a JSONL stream into a new store.
func ReadJSONL(r io.Reader) (*Store, error) {
	store := NewStore()
	dec := json.NewDecoder(bufio.NewReader(r))
	line := 0
	for {
		var jr jsonRecord
		if err := dec.Decode(&jr); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("logstore: decode record %d: %w", line, err)
		}
		line++
		t, err := time.Parse(time.RFC3339, jr.Timestamp)
		if err != nil {
			return nil, fmt.Errorf("logstore: record %d timestamp: %w", line, err)
		}
		store.Append(Record{
			Time:    t,
			User:    jr.User,
			Host:    jr.Host,
			Channel: jr.Channel,
			EventID: jr.EventID,
			Action:  jr.Action,
			Object:  jr.Object,
			Status:  jr.Status,
		})
	}
	return store, nil
}

// LoadJSONL reads a JSONL file into a new store.
func LoadJSONL(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("logstore: open %s: %w", path, err)
	}
	defer f.Close()
	return ReadJSONL(f)
}
