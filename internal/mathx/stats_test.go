package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStdKnown(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		mean, sd float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{4}, 4, 0},
		{"constant", []float64{2, 2, 2, 2}, 2, 0},
		{"simple", []float64{1, 2, 3, 4}, 2.5, math.Sqrt(1.25)},
		{"negatives", []float64{-1, 1}, 0, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, s := MeanStd(tt.xs)
			if !almost(m, tt.mean, 1e-12) || !almost(s, tt.sd, 1e-12) {
				t.Errorf("MeanStd = (%g, %g), want (%g, %g)", m, s, tt.mean, tt.sd)
			}
			if !almost(Mean(tt.xs), tt.mean, 1e-12) {
				t.Errorf("Mean = %g, want %g", Mean(tt.xs), tt.mean)
			}
			if !almost(Std(tt.xs), tt.sd, 1e-12) {
				t.Errorf("Std = %g, want %g", Std(tt.xs), tt.sd)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {110, 40},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almost(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(empty) != 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 1+r.Intn(40))
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -5, 7, 0}
	if Max(xs) != 7 {
		t.Errorf("Max = %g", Max(xs))
	}
	if Min(xs) != -5 {
		t.Errorf("Min = %g", Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty Max/Min != 0")
	}
}

func TestClamp(t *testing.T) {
	if err := quick.Check(func(x float64) bool {
		v := Clamp(x, -3, 3)
		return v >= -3 && v <= 3 && (x < -3 || x > 3 || v == x)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.Normal(3, 4)
			w.Add(xs[i])
		}
		mean, std := MeanStd(xs)
		return almost(w.Mean(), mean, 1e-9) && almost(w.Std(), std, 1e-9) && w.Count() == n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Std() != 0 || w.Count() != 0 {
		t.Error("zero Welford not zero")
	}
}

func TestArgMax(t *testing.T) {
	tests := []struct {
		xs   []float64
		want int
	}{
		{nil, -1},
		{[]float64{5}, 0},
		{[]float64{1, 9, 3}, 1},
		{[]float64{7, 7, 7}, 0}, // ties resolve low
	}
	for _, tt := range tests {
		if got := ArgMax(tt.xs); got != tt.want {
			t.Errorf("ArgMax(%v) = %d, want %d", tt.xs, got, tt.want)
		}
	}
}
