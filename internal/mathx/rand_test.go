package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 draws identical across different seeds", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for n := 1; n < 50; n++ {
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntBetween(t *testing.T) {
	r := NewRNG(9)
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		v := r.IntBetween(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("IntBetween(3,5) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 5; v++ {
		if !seen[v] {
			t.Errorf("value %d never drawn in 200 tries", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(5, 2)
	}
	mean, std := MeanStd(xs)
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %.4f, want ≈ 5", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Errorf("std = %.4f, want ≈ 2", std)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(13)
	for _, lambda := range []float64{0.3, 2, 8, 50} {
		const n = 30000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > lambda*0.05+0.05 {
			t.Errorf("Poisson(%g) mean = %.3f", lambda, mean)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for _, lambda := range []float64{-1, 0, 0.1, 40} {
			if r.Poisson(lambda) < 0 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestExponentialPositive(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 100; i++ {
		if v := r.Exponential(2); v < 0 {
			t.Fatalf("Exponential < 0: %g", v)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(21)
	a := parent.Fork()
	b := parent.Fork()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws across forks", same)
	}
}

func TestForkNamedStable(t *testing.T) {
	a := NewRNG(5).ForkNamed("alice")
	b := NewRNG(5).ForkNamed("alice")
	c := NewRNG(5).ForkNamed("bob")
	if a.Uint64() != b.Uint64() {
		t.Error("same name produced different streams")
	}
	if NewRNG(5).ForkNamed("alice").Uint64() == c.Uint64() {
		t.Error("different names produced same stream")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]int(nil), xs...)
	Shuffle(r, xs)
	counts := make(map[int]int)
	for _, v := range xs {
		counts[v]++
	}
	for _, v := range orig {
		if counts[v] != 1 {
			t.Fatalf("shuffle lost or duplicated %d: %v", v, xs)
		}
	}
}

func TestPick(t *testing.T) {
	r := NewRNG(29)
	items := []string{"a", "b", "c"}
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		seen[Pick(r, items)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick covered %d/3 items in 100 draws", len(seen))
	}
}

func TestWeightedIndex(t *testing.T) {
	r := NewRNG(31)
	weights := []float64{0, 10, 0, 1}
	counts := make([]int, len(weights))
	for i := 0; i < 10000; i++ {
		idx := r.WeightedIndex(weights)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Errorf("zero-weight indices drawn: %v", counts)
	}
	ratio := float64(counts[1]) / float64(counts[3])
	if ratio < 7 || ratio > 14 {
		t.Errorf("weight ratio %0.1f, want ≈ 10", ratio)
	}
}

func TestWeightedIndexAllZero(t *testing.T) {
	r := NewRNG(37)
	if idx := r.WeightedIndex([]float64{0, 0}); idx != 0 {
		t.Errorf("all-zero weights returned %d, want 0", idx)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(41)
	n, hits := 20000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.25) > 0.02 {
		t.Errorf("Bool(0.25) hit rate %.3f", p)
	}
}
