package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs, or 0 for slices of
// length < 1. The paper's deviation formula uses the population form
// (matching numpy.std, the default in the original implementation stack).
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MeanStd returns both the mean and population standard deviation in one
// pass over xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Welford accumulates mean and variance incrementally (Welford's online
// algorithm). The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates a new observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of observations seen so far.
func (w *Welford) Count() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Std returns the running population standard deviation.
func (w *Welford) Std() float64 {
	if w.n == 0 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// ArgMax returns the index of the maximum element, or -1 for an empty
// slice. Ties resolve to the lowest index.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
