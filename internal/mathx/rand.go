// Package mathx provides deterministic random number generation,
// statistical helpers, and probability distributions used throughout the
// ACOBE reproduction. Everything is seeded explicitly so that dataset
// synthesis, model initialization, and experiments are reproducible
// bit-for-bit across runs.
package mathx

import (
	"math"
)

// RNG is a deterministic pseudo-random number generator based on the
// SplitMix64 and xoshiro256** algorithms. It is intentionally independent
// of math/rand so that generated datasets remain stable across Go releases.
//
// The zero value is not useful; construct with NewRNG.
type RNG struct {
	s [4]uint64

	// cached spare Gaussian variate (Box-Muller generates pairs)
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded from the given seed. Distinct seeds
// yield independent-looking streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the xoshiro state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives a new, independent generator from this one. It is used to
// give each user / log source / worker its own stream so that adding a new
// consumer does not perturb the draws seen by the others.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// ForkNamed derives a child generator whose stream depends on both the
// parent state and the given name, so that the same entity always receives
// the same stream regardless of iteration order.
func (r *RNG) ForkNamed(name string) *RNG {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return NewRNG(h ^ r.s[0])
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntBetween returns a uniform value in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("mathx: IntBetween with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Normal returns a Gaussian variate with the given mean and standard
// deviation, using the Box-Muller transform.
func (r *RNG) Normal(mean, std float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + std*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return mean + std*u*m
}

// Poisson returns a Poisson variate with rate lambda. For small lambda it
// uses Knuth's multiplication method; for large lambda it falls back to a
// Gaussian approximation (clamped at zero), which is both fast and adequate
// for synthetic activity counts.
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	g := r.Normal(lambda, math.Sqrt(lambda))
	if g < 0 {
		return 0
	}
	return int(g + 0.5)
}

// Exponential returns an exponential variate with the given rate.
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("mathx: Exponential with non-positive rate")
	}
	return -math.Log(1-r.Float64()) / rate
}

// Pick returns a uniformly chosen element of items. It panics on an empty
// slice.
func Pick[T any](r *RNG, items []T) T {
	return items[r.Intn(len(items))]
}

// Shuffle permutes items in place (Fisher-Yates).
func Shuffle[T any](r *RNG, items []T) {
	for i := len(items) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		items[i], items[j] = items[j], items[i]
	}
}

// WeightedIndex returns an index in [0, len(weights)) chosen proportionally
// to the non-negative weights. If all weights are zero it returns 0.
func (r *RNG) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
