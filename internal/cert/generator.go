package cert

import (
	"fmt"
	"sort"
	"time"

	"acobe/internal/mathx"
)

// EnvChange is an organization- or department-wide environmental change
// (e.g. a new internal service) that causes correlated behavioral bursts
// across many users — the situations where group-correlation signals keep
// ACOBE from raising false positives.
type EnvChange struct {
	// Start and Duration bound the change window.
	Start    Day
	Duration int
	// Dept limits the change to one department; empty means org-wide.
	Dept string
	// Domain is the new service domain users suddenly interact with.
	Domain string
	// UploadsPerDay and VisitsPerDay are the per-user extra Poisson rates
	// during the window.
	UploadsPerDay float64
	VisitsPerDay  float64
}

// Active reports whether the change affects department dept on day d.
func (e EnvChange) Active(d Day, dept string) bool {
	if d < e.Start || d >= e.Start+Day(e.Duration) {
		return false
	}
	return e.Dept == "" || e.Dept == dept
}

// Config parameterizes the synthesizer. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	Seed         uint64
	Departments  []string
	UsersPerDept int
	Start, End   Day
	EnvChanges   []EnvChange
	// Scenarios lists the threat scenarios to inject. DefaultConfig
	// installs the paper's four instances (r6.1/r6.2 × S1/S2).
	Scenarios []Scenario
}

// DefaultDepartments are the four third-tier organizational units hosting
// the four scenario instances.
var DefaultDepartments = []string{"Research", "Engineering", "Finance", "Marketing"}

// DefaultConfig mirrors the paper's evaluation setup: ~929 users across 4
// departments (925 normal + 4 abnormal), full r6 date span, four scenario
// instances, plus periodic environmental changes.
func DefaultConfig() Config {
	cfg := Config{
		Seed:         42,
		Departments:  append([]string(nil), DefaultDepartments...),
		UsersPerDept: 233, // 932 total; 4 are scenario users ⇒ 928 normal
		Start:        0,
		End:          DayOf(DatasetEnd),
	}
	cfg.EnvChanges = DefaultEnvChanges()
	cfg.Scenarios = DefaultScenarios(cfg.Departments, cfg.UsersPerDept)
	return cfg
}

// SmallConfig returns a reduced organization for tests and examples.
func SmallConfig(usersPerDept int) Config {
	cfg := DefaultConfig()
	cfg.UsersPerDept = usersPerDept
	cfg.Scenarios = DefaultScenarios(cfg.Departments, usersPerDept)
	return cfg
}

// DefaultEnvChanges returns a set of environmental changes spread over the
// dataset span: portal migrations and new-service rollouts that hit whole
// departments at once, in both training and testing periods.
func DefaultEnvChanges() []EnvChange {
	return []EnvChange{
		{Start: MustDay("2010-03-15"), Duration: 5, Domain: "newportal.dtaa.com", UploadsPerDay: 3, VisitsPerDay: 12},
		{Start: MustDay("2010-06-07"), Duration: 4, Dept: "Engineering", Domain: "ci.dtaa.com", UploadsPerDay: 4, VisitsPerDay: 15},
		{Start: MustDay("2010-09-20"), Duration: 5, Domain: "benefits.dtaa.com", UploadsPerDay: 2, VisitsPerDay: 10},
		{Start: MustDay("2010-12-13"), Duration: 4, Domain: "review.dtaa.com", UploadsPerDay: 3, VisitsPerDay: 10},
		{Start: MustDay("2011-01-24"), Duration: 5, Dept: "Research", Domain: "lab.dtaa.com", UploadsPerDay: 3, VisitsPerDay: 12},
		{Start: MustDay("2011-02-14"), Duration: 4, Domain: "survey.dtaa.com", UploadsPerDay: 2, VisitsPerDay: 8},
		{Start: MustDay("2011-04-11"), Duration: 5, Domain: "training.dtaa.com", UploadsPerDay: 3, VisitsPerDay: 10},
	}
}

// Generator synthesizes the event stream. Days must be consumed in order
// via Stream, because user entity pools evolve as days pass (that evolution
// is what makes "new-op" features meaningful).
type Generator struct {
	cfg      Config
	users    []User
	profiles map[string]*profile
	byDept   map[string][]string
	scenByID map[string]Scenario
}

// New builds a generator. The same Config always yields the same dataset.
func New(cfg Config) (*Generator, error) {
	if len(cfg.Departments) == 0 {
		return nil, fmt.Errorf("cert: config needs at least one department")
	}
	if cfg.UsersPerDept <= 0 {
		return nil, fmt.Errorf("cert: UsersPerDept must be positive, got %d", cfg.UsersPerDept)
	}
	if cfg.End <= cfg.Start {
		return nil, fmt.Errorf("cert: empty day span [%v, %v]", cfg.Start, cfg.End)
	}
	g := &Generator{
		cfg:      cfg,
		profiles: make(map[string]*profile),
		byDept:   make(map[string][]string),
		scenByID: make(map[string]Scenario),
	}
	root := mathx.NewRNG(cfg.Seed)
	for di, dept := range cfg.Departments {
		for j := 0; j < cfg.UsersPerDept; j++ {
			u := makeUser(di, dept, j)
			g.users = append(g.users, u)
			g.byDept[dept] = append(g.byDept[dept], u.ID)
			g.profiles[u.ID] = newProfile(u, root.ForkNamed(u.ID))
		}
	}
	for _, sc := range cfg.Scenarios {
		uid := sc.UserID()
		p, ok := g.profiles[uid]
		if !ok {
			return nil, fmt.Errorf("cert: scenario %s targets unknown user %s", sc.Name(), uid)
		}
		sc.Prepare(p)
		g.scenByID[uid] = sc
	}
	return g, nil
}

// makeUser builds the deterministic directory entry for user j of dept di.
// The r6.1-Scenario-2 user carries the paper's example ID JPH1910.
func makeUser(di int, dept string, j int) User {
	id := fmt.Sprintf("%c%c%c%04d", 'A'+di, 'A'+(j/26)%26, 'A'+j%26, 1000+j)
	if dept == "Engineering" && j == 0 {
		id = "JPH1910"
	}
	return User{
		ID:         id,
		Name:       fmt.Sprintf("User %s", id),
		Email:      fmt.Sprintf("%s@dtaa.com", id),
		Role:       "Employee",
		Department: dept,
		PC:         fmt.Sprintf("PC-%d%04d", di, j),
	}
}

// Users returns the LDAP directory, ordered by department then ID.
func (g *Generator) Users() []User {
	out := append([]User(nil), g.users...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Department != out[j].Department {
			return out[i].Department < out[j].Department
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Departments returns the department names in config order.
func (g *Generator) Departments() []string { return g.cfg.Departments }

// UsersInDept returns the user IDs belonging to dept.
func (g *Generator) UsersInDept(dept string) []string {
	out := append([]string(nil), g.byDept[dept]...)
	sort.Strings(out)
	return out
}

// Labels returns the ground-truth abnormal (user, day) labels of every
// injected scenario.
func (g *Generator) Labels() []Label {
	var out []Label
	for _, sc := range g.cfg.Scenarios {
		out = append(out, sc.Labels()...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		return out[i].Day < out[j].Day
	})
	return out
}

// Scenarios returns the injected scenarios.
func (g *Generator) Scenarios() []Scenario { return g.cfg.Scenarios }

// Span returns the configured [start, end] day range.
func (g *Generator) Span() (Day, Day) { return g.cfg.Start, g.cfg.End }

// Stream generates events day by day over [from, to] (clamped to the
// configured span) and hands each day's batch to fn. Events within a day
// are in no particular order. Stream must be called with from equal to the
// configured start to keep entity pools consistent; use a fresh Generator
// for re-runs.
func (g *Generator) Stream(fn func(Day, []Event) error) error {
	for d := g.cfg.Start; d <= g.cfg.End; d++ {
		var events []Event
		for _, u := range g.users {
			events = append(events, g.userDay(u, d)...)
		}
		if err := fn(d, events); err != nil {
			return fmt.Errorf("cert: stream day %v: %w", d, err)
		}
	}
	return nil
}

// UserDay generates one user's events for one day — the per-user
// granularity behind Stream, exported so load generators can partition and
// pace generation without materializing a whole organization-day. The same
// ordering rule as Stream applies per user (days nondecreasing, because
// entity pools evolve), but distinct users are independent: each call
// mutates only that user's profile, so concurrent UserDay calls are safe
// as long as no two goroutines share a user.
func (g *Generator) UserDay(u User, d Day) []Event { return g.userDay(u, d) }

// userDay generates one user's events for one day.
func (g *Generator) userDay(u User, d Day) []Event {
	p := g.profiles[u.ID]
	rng := mathx.NewRNG(g.cfg.Seed ^ hashUserDay(u.ID, d))
	var events []Event

	sc := g.scenByID[u.ID]
	suppress := sc != nil && sc.Suppress(d)

	if !suppress {
		events = append(events, g.normalDay(p, d, rng)...)
		events = append(events, g.envChangeEvents(p, d, rng)...)
	}
	if sc != nil {
		events = append(events, sc.Inject(p, d, rng)...)
	}
	return events
}

// hashUserDay mixes a user ID and day into a stable seed.
func hashUserDay(user string, d Day) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(user); i++ {
		h ^= uint64(user[i])
		h *= 1099511628211
	}
	h ^= uint64(int64(d)) + 0x9e3779b97f4a7c15
	h *= 1099511628211
	return h
}

// eventTime builds a timestamp on day d at the given hour with random
// minutes/seconds.
func eventTime(d Day, hour int, rng *mathx.RNG) time.Time {
	return d.Date().Add(time.Duration(hour)*time.Hour +
		time.Duration(rng.Intn(60))*time.Minute +
		time.Duration(rng.Intn(60))*time.Second)
}

// normalDay emits the user's habitual activity for day d.
func (g *Generator) normalDay(p *profile, d Day, rng *mathx.RNG) []Event {
	factor := p.dayFactor(d)
	if factor == 0 {
		return nil
	}
	var events []Event
	u := p.user

	emit := func(count int, off bool, build func(t time.Time) Event) {
		for i := 0; i < count; i++ {
			var hour int
			if off {
				hour = p.offHour(rng)
			} else {
				hour = p.workHour(rng)
			}
			events = append(events, build(eventTime(d, hour, rng)))
		}
	}

	// Each channel emits working-hour activity at its base rate and
	// off-hour activity scaled by the user's habitual off factor.
	type channel struct {
		rate  float64
		build func(t time.Time) Event
	}
	channels := []channel{
		{p.logonRate, func(t time.Time) Event {
			act := ActLogon
			if rng.Bool(0.5) {
				act = ActLogoff
			}
			return Event{Type: EventLogon, Time: t, User: u.ID, PC: u.PC, Activity: act}
		}},
		{p.fileOpenRate, func(t time.Time) Event {
			return Event{Type: EventFile, Time: t, User: u.ID, PC: u.PC, Activity: ActFileOpen,
				FileID: p.pickFile(rng), Direction: pickDir(rng, 0.85)}
		}},
		{p.fileWriteRate, func(t time.Time) Event {
			return Event{Type: EventFile, Time: t, User: u.ID, PC: u.PC, Activity: ActFileWrite,
				FileID: p.pickFile(rng), Direction: pickDir(rng, 0.9)}
		}},
		{p.fileCopyRate, func(t time.Time) Event {
			dir := DirRemoteToLocal
			if rng.Bool(0.5) {
				dir = DirLocalToRemote
			}
			return Event{Type: EventFile, Time: t, User: u.ID, PC: u.PC, Activity: ActFileCopy,
				FileID: p.pickFile(rng), Direction: dir}
		}},
		{p.httpVisitRate, func(t time.Time) Event {
			return Event{Type: EventHTTP, Time: t, User: u.ID, PC: u.PC, Activity: ActVisit,
				Domain: p.pickDomain(rng)}
		}},
		{p.httpDownloadRate, func(t time.Time) Event {
			return Event{Type: EventHTTP, Time: t, User: u.ID, PC: u.PC, Activity: ActDownload,
				Domain: p.pickDomain(rng), FileType: p.pickUploadType(rng)}
		}},
		{p.httpUploadRate, func(t time.Time) Event {
			return Event{Type: EventHTTP, Time: t, User: u.ID, PC: u.PC, Activity: ActUpload,
				Domain: p.pickDomain(rng), FileType: p.pickUploadType(rng)}
		}},
		{p.emailRate, func(t time.Time) Event {
			return Event{Type: EventEmail, Time: t, User: u.ID, PC: u.PC, Activity: ActSend,
				Recipient: mathx.Pick(rng, p.recipients)}
		}},
	}
	for _, ch := range channels {
		emit(rng.Poisson(ch.rate*factor), false, ch.build)
		emit(rng.Poisson(ch.rate*factor*p.offFactor), true, ch.build)
	}

	// Removable-device usage for habitual device users: paired
	// connect/disconnect, mostly on the user's own PC.
	if p.deviceRate > 0 {
		n := rng.Poisson(p.deviceRate * factor)
		for i := 0; i < n; i++ {
			pc := u.PC
			if rng.Bool(0.02) {
				pc = fmt.Sprintf("PC-X%04d", rng.Intn(2000))
			}
			t := eventTime(d, p.workHour(rng), rng)
			events = append(events,
				Event{Type: EventDevice, Time: t, User: u.ID, PC: pc, Activity: ActConnect},
				Event{Type: EventDevice, Time: t.Add(time.Duration(5+rng.Intn(110)) * time.Minute), User: u.ID, PC: pc, Activity: ActDisconnect},
			)
		}
	}
	return events
}

// pickDir returns DirLocal with probability pLocal, else DirRemote.
func pickDir(rng *mathx.RNG, pLocal float64) string {
	if rng.Bool(pLocal) {
		return DirLocal
	}
	return DirRemote
}

// envChangeEvents emits the correlated extra traffic of any active
// environmental change.
func (g *Generator) envChangeEvents(p *profile, d Day, rng *mathx.RNG) []Event {
	if p.dayFactor(d) == 0 || d.IsWeekend() || IsHoliday(d) {
		return nil
	}
	var events []Event
	u := p.user
	for _, ec := range g.cfg.EnvChanges {
		if !ec.Active(d, u.Department) {
			continue
		}
		for i := 0; i < rng.Poisson(ec.VisitsPerDay); i++ {
			events = append(events, Event{Type: EventHTTP, Time: eventTime(d, p.workHour(rng), rng),
				User: u.ID, PC: u.PC, Activity: ActVisit, Domain: ec.Domain})
		}
		for i := 0; i < rng.Poisson(ec.UploadsPerDay); i++ {
			events = append(events, Event{Type: EventHTTP, Time: eventTime(d, p.workHour(rng), rng),
				User: u.ID, PC: u.PC, Activity: ActUpload, Domain: ec.Domain, FileType: "doc"})
		}
	}
	return events
}
