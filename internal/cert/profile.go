package cert

import (
	"fmt"

	"acobe/internal/mathx"
)

// profile holds one user's habitual behavioral parameters. All activity
// counts are Poisson-distributed around these rates, modulated by
// weekday/weekend, busy-day, and time-frame factors, so every user has a
// stable, learnable pattern with natural noise.
type profile struct {
	user User

	// Working-hour base rates (events per working day).
	logonRate        float64
	fileOpenRate     float64
	fileWriteRate    float64
	fileCopyRate     float64
	httpVisitRate    float64
	httpDownloadRate float64
	httpUploadRate   float64
	emailRate        float64

	// deviceRate is the working-hour thumb-drive connect rate; most users
	// never use removable media (rate 0), matching the paper's scenarios
	// where "did not previously use removable drives" is meaningful.
	deviceRate float64

	// offFactor scales rates during off hours (habitual late workers have
	// higher values).
	offFactor float64
	// weekendFactor scales rates on weekends.
	weekendFactor float64
	// workStart/workEnd bound the hours when working-hour activity peaks.
	workStart, workEnd int

	// uploadTypeWeights biases which file types the user uploads.
	uploadTypeWeights []float64

	// Personal entity pools. Drawing mostly from pools keeps "new-op"
	// features low for normal behaviour; occasional pool growth produces
	// the natural trickle of first-seen operations.
	filePool   []string
	domainPool []string
	recipients []string

	// newEntityProb is the chance that any one draw mints a brand-new
	// file/domain instead of reusing the pool.
	newEntityProb float64

	// vacationDays marks days with no activity at all.
	vacationDays map[Day]bool
}

// globalDomains are org-wide destinations shared by every user, so that
// group-level traffic has common structure.
var globalDomains = []string{
	"mail.dtaa.com", "portal.dtaa.com", "wiki.dtaa.com", "hr.dtaa.com",
	"search.example.com", "news.example.com", "weather.example.com",
	"docs.example.com", "cloud.example.com", "code.example.com",
}

// newProfile derives a deterministic habitual profile for the user.
func newProfile(u User, rng *mathx.RNG) *profile {
	p := &profile{
		user:             u,
		logonRate:        1.5 + rng.Float64(),
		fileOpenRate:     8 + 10*rng.Float64(),
		fileWriteRate:    3 + 5*rng.Float64(),
		fileCopyRate:     0.1 + 0.3*rng.Float64(),
		httpVisitRate:    15 + 25*rng.Float64(),
		httpDownloadRate: 0.5 + 2*rng.Float64(),
		httpUploadRate:   0.05 + 0.35*rng.Float64(),
		emailRate:        4 + 8*rng.Float64(),
		offFactor:        0.05 + 0.15*rng.Float64(),
		weekendFactor:    0.02 + 0.08*rng.Float64(),
		workStart:        7 + rng.Intn(3),
		newEntityProb:    0.01 + 0.02*rng.Float64(),
		vacationDays:     make(map[Day]bool),
	}
	p.workEnd = p.workStart + 8 + rng.Intn(3)
	if p.workEnd > 18 {
		p.workEnd = 18
	}

	// Roughly one user in five habitually uses removable media.
	if rng.Bool(0.2) {
		p.deviceRate = 0.2 + 0.8*rng.Float64()
	}

	// Upload type preference: weight a couple of types heavily.
	p.uploadTypeWeights = make([]float64, len(FileTypes))
	for i := range p.uploadTypeWeights {
		p.uploadTypeWeights[i] = 0.2 + rng.Float64()
	}
	p.uploadTypeWeights[rng.Intn(len(FileTypes))] += 2

	// Personal pools.
	nfiles := 80 + rng.Intn(120)
	p.filePool = make([]string, 0, nfiles)
	for i := 0; i < nfiles; i++ {
		p.filePool = append(p.filePool, fmt.Sprintf("%s-F%04d", u.ID, i))
	}
	ndomains := 15 + rng.Intn(30)
	p.domainPool = make([]string, 0, ndomains+len(globalDomains))
	p.domainPool = append(p.domainPool, globalDomains...)
	for i := 0; i < ndomains; i++ {
		p.domainPool = append(p.domainPool, fmt.Sprintf("site%03d-%s.example.org", rng.Intn(500), string(u.ID[0]+32)))
	}
	nrecip := 5 + rng.Intn(15)
	p.recipients = make([]string, 0, nrecip)
	for i := 0; i < nrecip; i++ {
		p.recipients = append(p.recipients, fmt.Sprintf("peer%03d@dtaa.com", rng.Intn(900)))
	}

	// A couple of one-week vacations per year.
	for v := 0; v < 2; v++ {
		start := Day(rng.Intn(480))
		for i := Day(0); i < 7; i++ {
			p.vacationDays[start+i] = true
		}
	}
	return p
}

// dayFactor returns the activity multiplier for day d: zero on vacation,
// reduced on weekends/holidays, boosted on post-holiday busy days.
func (p *profile) dayFactor(d Day) float64 {
	if p.vacationDays[d] {
		return 0
	}
	if d.IsWeekend() || IsHoliday(d) {
		return p.weekendFactor
	}
	if IsBusyday(d) {
		return 1.6
	}
	return 1
}

// pickFile returns a file ID, occasionally minting a new one into the pool.
func (p *profile) pickFile(rng *mathx.RNG) string {
	if rng.Bool(p.newEntityProb) {
		id := fmt.Sprintf("%s-F%04d", p.user.ID, len(p.filePool))
		p.filePool = append(p.filePool, id)
		return id
	}
	return mathx.Pick(rng, p.filePool)
}

// pickDomain returns a domain, occasionally minting a new one.
func (p *profile) pickDomain(rng *mathx.RNG) string {
	if rng.Bool(p.newEntityProb) {
		d := fmt.Sprintf("site%03d-%s.example.org", rng.Intn(100000), string(p.user.ID[0]+32))
		p.domainPool = append(p.domainPool, d)
		return d
	}
	return mathx.Pick(rng, p.domainPool)
}

// pickUploadType draws a file type according to the user's preferences.
func (p *profile) pickUploadType(rng *mathx.RNG) string {
	return FileTypes[rng.WeightedIndex(p.uploadTypeWeights)]
}

// workHour draws an hour inside the user's working window.
func (p *profile) workHour(rng *mathx.RNG) int {
	return p.workStart + rng.Intn(p.workEnd-p.workStart)
}

// offHour draws an hour outside 06-18.
func (p *profile) offHour(rng *mathx.RNG) int {
	h := 18 + rng.Intn(12) // 18..29
	if h >= 24 {
		h -= 24 // 0..5
	}
	return h
}
