package cert

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDayRoundTrip(t *testing.T) {
	if err := quick.Check(func(n uint16) bool {
		d := Day(n % 520)
		parsed, err := ParseDay(d.String())
		return err == nil && parsed == d
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestEpochIsDayZero(t *testing.T) {
	if DayOf(Epoch) != 0 {
		t.Errorf("epoch maps to day %d", DayOf(Epoch))
	}
	if Day(0).String() != "2010-01-02" {
		t.Errorf("day 0 = %s", Day(0))
	}
}

func TestDatasetEndInSpan(t *testing.T) {
	d := DayOf(DatasetEnd)
	if d.String() != "2011-05-31" {
		t.Errorf("dataset end = %s", d)
	}
}

func TestParseDayErrors(t *testing.T) {
	for _, s := range []string{"", "garbage", "2010-13-40", "01/02/2010"} {
		if _, err := ParseDay(s); err == nil {
			t.Errorf("ParseDay(%q) succeeded", s)
		}
	}
}

func TestMustDayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDay did not panic on bad input")
		}
	}()
	MustDay("nope")
}

func TestWeekendDetection(t *testing.T) {
	// 2010-01-02 is a Saturday.
	if !Day(0).IsWeekend() {
		t.Error("2010-01-02 should be a weekend")
	}
	if Day(0).Weekday() != time.Saturday {
		t.Errorf("weekday = %v", Day(0).Weekday())
	}
	if MustDay("2010-01-04").IsWeekend() {
		t.Error("2010-01-04 (Monday) flagged as weekend")
	}
}

func TestTimeframeOfHour(t *testing.T) {
	tests := []struct {
		hour int
		want Timeframe
	}{
		{0, Off}, {5, Off}, {6, Work}, {12, Work}, {17, Work}, {18, Off}, {23, Off},
	}
	for _, tt := range tests {
		if got := TimeframeOfHour(tt.hour); got != tt.want {
			t.Errorf("hour %d → %v, want %v", tt.hour, got, tt.want)
		}
	}
}

func TestTimeframeString(t *testing.T) {
	if Work.String() != "work" || Off.String() != "off" {
		t.Error("timeframe names wrong")
	}
}

func TestBusyday(t *testing.T) {
	// 2010-01-18 is MLK day (Monday holiday) → Tuesday the 19th is busy.
	if IsBusyday(MustDay("2010-01-18")) {
		t.Error("holiday itself flagged busy")
	}
	if !IsBusyday(MustDay("2010-01-19")) {
		t.Error("day after MLK Monday not busy")
	}
	// A Monday after a plain weekend is not a busy day under this model.
	if IsBusyday(MustDay("2010-01-11")) {
		t.Error("ordinary Monday flagged busy")
	}
	// Day after Thanksgiving Thu+Fri holidays: Monday 2010-11-29.
	if !IsBusyday(MustDay("2010-11-29")) {
		t.Error("Monday after Thanksgiving break not busy")
	}
}

func TestEventDayAndTimeframe(t *testing.T) {
	e := Event{Time: Epoch.Add(30*24*time.Hour + 7*time.Hour)}
	if e.Day() != 30 {
		t.Errorf("event day %d", e.Day())
	}
	if e.Timeframe() != Work {
		t.Errorf("event timeframe %v", e.Timeframe())
	}
}
