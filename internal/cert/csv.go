package cert

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// CSV file names written by WriteCSV, mirroring the CERT release layout.
const (
	FileLogon  = "logon.csv"
	FileDevice = "device.csv"
	FileFile   = "file.csv"
	FileHTTP   = "http.csv"
	FileEmail  = "email.csv"
	FileLDAP   = "ldap.csv"
	FileLabels = "labels.csv"
)

const csvTimeLayout = "01/02/2006 15:04:05"

// WriteCSV streams the generator's full span to CERT-style CSV files in
// dir, creating it if needed. It returns the number of events written.
func WriteCSV(g *Generator, dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("cert: create output dir: %w", err)
	}
	writers := make(map[EventType]*csv.Writer)
	files := make([]*os.File, 0, 5)
	// Close errors matter here: csv.Writer buffers through the file's page
	// cache, and a full disk often surfaces only at Close. closeAll is
	// idempotent so the deferred safety-net close on error paths cannot
	// double-close.
	closeAll := func() error {
		var errs error
		for _, f := range files {
			if cerr := f.Close(); cerr != nil {
				errs = errors.Join(errs, cerr)
			}
		}
		files = nil
		return errs
	}
	defer closeAll()
	open := func(t EventType, name string, header []string) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("cert: create %s: %w", name, err)
		}
		files = append(files, f)
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			return fmt.Errorf("cert: write %s header: %w", name, err)
		}
		writers[t] = w
		return nil
	}
	if err := open(EventLogon, FileLogon, []string{"id", "date", "user", "pc", "activity"}); err != nil {
		return 0, err
	}
	if err := open(EventDevice, FileDevice, []string{"id", "date", "user", "pc", "activity"}); err != nil {
		return 0, err
	}
	if err := open(EventFile, FileFile, []string{"id", "date", "user", "pc", "filename", "activity", "direction"}); err != nil {
		return 0, err
	}
	if err := open(EventHTTP, FileHTTP, []string{"id", "date", "user", "pc", "domain", "activity", "filetype"}); err != nil {
		return 0, err
	}
	if err := open(EventEmail, FileEmail, []string{"id", "date", "user", "pc", "to", "activity"}); err != nil {
		return 0, err
	}

	n, err := writeEvents(g, writers)
	if err != nil {
		return n, err
	}
	if err := closeAll(); err != nil {
		return n, fmt.Errorf("cert: close csv: %w", err)
	}

	if err := writeLDAP(g.Users(), filepath.Join(dir, FileLDAP)); err != nil {
		return n, err
	}
	if err := writeLabels(g.Labels(), filepath.Join(dir, FileLabels)); err != nil {
		return n, err
	}
	return n, nil
}

// writeEvents streams every event of g to the per-type CSV writers and
// flushes them, returning the number of events written. Split from WriteCSV
// so failing sinks are testable without touching the filesystem.
func writeEvents(g *Generator, writers map[EventType]*csv.Writer) (int, error) {
	var n int
	err := g.Stream(func(_ Day, events []Event) error {
		for _, e := range events {
			n++
			id := fmt.Sprintf("{E%09d}", n)
			date := e.Time.Format(csvTimeLayout)
			var rec []string
			switch e.Type {
			case EventLogon, EventDevice:
				rec = []string{id, date, e.User, e.PC, e.Activity}
			case EventFile:
				rec = []string{id, date, e.User, e.PC, e.FileID, e.Activity, e.Direction}
			case EventHTTP:
				rec = []string{id, date, e.User, e.PC, e.Domain, e.Activity, e.FileType}
			case EventEmail:
				rec = []string{id, date, e.User, e.PC, e.Recipient, e.Activity}
			default:
				return fmt.Errorf("unknown event type %v", e.Type)
			}
			if err := writers[e.Type].Write(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return n, err
	}
	for _, w := range writers {
		w.Flush()
		if err := w.Error(); err != nil {
			return n, fmt.Errorf("cert: flush csv: %w", err)
		}
	}
	return n, nil
}

func writeLDAP(users []User, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cert: create ldap csv: %w", err)
	}
	w := csv.NewWriter(f)
	err = w.Write([]string{"user_id", "name", "email", "role", "department", "pc"})
	for _, u := range users {
		if err != nil {
			break
		}
		err = w.Write([]string{u.ID, u.Name, u.Email, u.Role, u.Department, u.PC})
	}
	if err == nil {
		w.Flush()
		err = w.Error()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("cert: write ldap csv: %w", err)
	}
	return nil
}

func writeLabels(labels []Label, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cert: create labels csv: %w", err)
	}
	w := csv.NewWriter(f)
	err = w.Write([]string{"user", "day", "scenario"})
	for _, l := range labels {
		if err != nil {
			break
		}
		err = w.Write([]string{l.User, l.Day.String(), l.Scenario})
	}
	if err == nil {
		w.Flush()
		err = w.Error()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("cert: write labels csv: %w", err)
	}
	return nil
}

// StoredDataset holds a dataset read back from CSV, with events bucketed
// by day for sequential replay.
type StoredDataset struct {
	Users  []User
	Labels []Label
	byDay  map[Day][]Event
	days   []Day
}

// Days returns the sorted list of days with at least one event.
func (s *StoredDataset) Days() []Day { return s.days }

// EventsOn returns the events of day d.
func (s *StoredDataset) EventsOn(d Day) []Event { return s.byDay[d] }

// Replay hands each day's events to fn in chronological day order.
func (s *StoredDataset) Replay(fn func(Day, []Event) error) error {
	for _, d := range s.days {
		if err := fn(d, s.byDay[d]); err != nil {
			return fmt.Errorf("cert: replay day %v: %w", d, err)
		}
	}
	return nil
}

// ReadCSV loads a dataset previously written by WriteCSV.
func ReadCSV(dir string) (*StoredDataset, error) {
	ds := &StoredDataset{byDay: make(map[Day][]Event)}

	users, err := readLDAP(filepath.Join(dir, FileLDAP))
	if err != nil {
		return nil, err
	}
	ds.Users = users

	labels, err := readLabels(filepath.Join(dir, FileLabels))
	if err != nil {
		return nil, err
	}
	ds.Labels = labels

	for _, sp := range eventSpecs {
		if err := readEvents(filepath.Join(dir, sp.Name), sp, ds); err != nil {
			return nil, err
		}
	}

	ds.days = make([]Day, 0, len(ds.byDay))
	for d := range ds.byDay {
		ds.days = append(ds.days, d)
	}
	sort.Slice(ds.days, func(i, j int) bool { return ds.days[i] < ds.days[j] })
	return ds, nil
}

// EventSpec describes one per-channel event CSV: its file name, the minimum
// field count a data row must have, and how a row maps to an Event.
type EventSpec struct {
	Name      string
	Type      EventType
	MinFields int
	Parse     func([]string) Event
}

// eventSpecs drives both ReadCSV and the fuzz harness. MinFields must cover
// the highest index each Parse touches — readEventsFrom enforces it before
// calling Parse, so a truncated row is a parse error, not a panic.
var eventSpecs = []EventSpec{
	{FileLogon, EventLogon, 5, func(rec []string) Event {
		return Event{Type: EventLogon, User: rec[2], PC: rec[3], Activity: rec[4]}
	}},
	{FileDevice, EventDevice, 5, func(rec []string) Event {
		return Event{Type: EventDevice, User: rec[2], PC: rec[3], Activity: rec[4]}
	}},
	{FileFile, EventFile, 7, func(rec []string) Event {
		return Event{Type: EventFile, User: rec[2], PC: rec[3], FileID: rec[4], Activity: rec[5], Direction: rec[6]}
	}},
	{FileHTTP, EventHTTP, 7, func(rec []string) Event {
		return Event{Type: EventHTTP, User: rec[2], PC: rec[3], Domain: rec[4], Activity: rec[5], FileType: rec[6]}
	}},
	{FileEmail, EventEmail, 6, func(rec []string) Event {
		return Event{Type: EventEmail, User: rec[2], PC: rec[3], Recipient: rec[4], Activity: rec[5]}
	}},
}

func readEvents(path string, sp EventSpec, ds *StoredDataset) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("cert: open %s: %w", path, err)
	}
	defer f.Close()
	return readEventsFrom(f, path, sp, ds)
}

// readEventsFrom parses one event CSV stream into ds. It is the I/O-free
// core of readEvents so malformed inputs can be fuzzed directly.
func readEventsFrom(src io.Reader, name string, sp EventSpec, ds *StoredDataset) error {
	r := csv.NewReader(src)
	r.FieldsPerRecord = -1
	first := true
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("cert: read %s: %w", name, err)
		}
		if first {
			first = false
			continue // header
		}
		if len(rec) < sp.MinFields {
			return fmt.Errorf("cert: short record in %s: %q", name, rec)
		}
		t, err := time.Parse(csvTimeLayout, rec[1])
		if err != nil {
			return fmt.Errorf("cert: parse time in %s: %w", name, err)
		}
		if t.IsZero() {
			// "01/01/0001 0:00:00" parses to Go's zero time, which the rest
			// of the pipeline treats as "no timestamp" — reject it.
			return fmt.Errorf("cert: zero timestamp in %s: %q", name, rec[1])
		}
		e := sp.Parse(rec)
		e.Time = t
		d := e.Day()
		ds.byDay[d] = append(ds.byDay[d], e)
	}
}

func readLDAP(path string) ([]User, error) {
	rows, err := readAll(path)
	if err != nil {
		return nil, err
	}
	users := make([]User, 0, len(rows))
	for _, rec := range rows {
		if len(rec) != 6 {
			return nil, fmt.Errorf("cert: bad ldap record %q", rec)
		}
		users = append(users, User{ID: rec[0], Name: rec[1], Email: rec[2], Role: rec[3], Department: rec[4], PC: rec[5]})
	}
	return users, nil
}

func readLabels(path string) ([]Label, error) {
	rows, err := readAll(path)
	if err != nil {
		return nil, err
	}
	labels := make([]Label, 0, len(rows))
	for _, rec := range rows {
		if len(rec) != 3 {
			return nil, fmt.Errorf("cert: bad label record %q", rec)
		}
		d, err := ParseDay(rec[1])
		if err != nil {
			return nil, err
		}
		labels = append(labels, Label{User: rec[0], Day: d, Scenario: rec[2]})
	}
	return labels, nil
}

// readAll reads a headered CSV fully, returning the data rows.
func readAll(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cert: open %s: %w", path, err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("cert: read %s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, nil
	}
	return rows[1:], nil
}
