package cert

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.End = 40 // keep the file small
	cfg.Scenarios = nil
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := WriteCSV(g, dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events written")
	}
	for _, name := range []string{FileLogon, FileDevice, FileFile, FileHTTP, FileEmail, FileLDAP, FileLabels} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}

	ds, err := ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != len(g.Users()) {
		t.Errorf("read %d users, wrote %d", len(ds.Users), len(g.Users()))
	}

	var total int
	for _, d := range ds.Days() {
		total += len(ds.EventsOn(d))
	}
	if total != n {
		t.Errorf("read %d events, wrote %d", total, n)
	}

	// Regenerate and compare per-day counts with the replayed dataset.
	g2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[Day]int)
	g2.Stream(func(d Day, events []Event) error {
		want[d] = len(events)
		return nil
	})
	for _, d := range ds.Days() {
		if len(ds.EventsOn(d)) != want[d] {
			t.Errorf("day %v: replayed %d events, generated %d", d, len(ds.EventsOn(d)), want[d])
		}
	}
}

func TestCSVRoundTripLabels(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.End = 90
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCSV(g, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := g.Labels()
	if len(ds.Labels) != len(want) {
		t.Fatalf("read %d labels, wrote %d", len(ds.Labels), len(want))
	}
	for i := range want {
		if ds.Labels[i] != want[i] {
			t.Errorf("label %d: %+v vs %+v", i, ds.Labels[i], want[i])
		}
	}
}

func TestReadCSVMissingDir(t *testing.T) {
	if _, err := ReadCSV(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("no error for missing directory")
	}
}

func TestReplayOrder(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	cfg.End = 20
	cfg.Scenarios = nil
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteCSV(g, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := ReadCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := Day(-1)
	err = ds.Replay(func(d Day, _ []Event) error {
		if d <= last {
			t.Fatalf("replay out of order: %v after %v", d, last)
		}
		last = d
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
