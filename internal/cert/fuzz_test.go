package cert

import (
	"bytes"
	"testing"
)

// FuzzReadEventsCSV feeds arbitrary bytes through every per-channel event
// parser. The parsers sit on the trust boundary with on-disk datasets, so
// they must reject malformed input with an error — never a panic — and must
// be deterministic.
func FuzzReadEventsCSV(f *testing.F) {
	f.Add([]byte("id,date,user,pc,activity\n{E1},01/02/2010 08:30:00,u1,pc1,Logon\n"))
	f.Add([]byte("id,date,user,pc,filename,activity,direction\n{E1},01/02/2010 09:00:00,u1,pc1,doc.pdf,open,in\n"))
	f.Add([]byte("id,date,user,pc,activity\n{E1},99/99/9999 99:99:99,u1,pc1,Logon\n"))
	f.Add([]byte("id,date\nshort,row\n"))
	f.Add([]byte("\"unterminated,quote\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, sp := range eventSpecs {
			ds := &StoredDataset{byDay: make(map[Day][]Event)}
			err := readEventsFrom(bytes.NewReader(data), sp.Name, sp, ds)
			if err != nil {
				continue
			}
			n := 0
			for _, events := range ds.byDay {
				for _, e := range events {
					if e.Type != sp.Type {
						t.Fatalf("%s: parsed event has type %v, want %v", sp.Name, e.Type, sp.Type)
					}
					if e.Time.IsZero() {
						t.Fatalf("%s: accepted event with zero time", sp.Name)
					}
					n++
				}
			}
			// Accepted input must parse identically on a second pass.
			ds2 := &StoredDataset{byDay: make(map[Day][]Event)}
			if err := readEventsFrom(bytes.NewReader(data), sp.Name, sp, ds2); err != nil {
				t.Fatalf("%s: accepted once, rejected on replay: %v", sp.Name, err)
			}
			n2 := 0
			for _, events := range ds2.byDay {
				n2 += len(events)
			}
			if n != n2 {
				t.Fatalf("%s: parsed %d events, then %d on replay", sp.Name, n, n2)
			}
		}
	})
}

// FuzzParseDay: ParseDay must never panic, and any accepted day must
// round-trip through its canonical String form. DayOf uses integer day
// arithmetic, so the whole parseable range (years 0000–9999) is
// representable — no saturation guard is needed.
func FuzzParseDay(f *testing.F) {
	f.Add("2010-01-02")
	f.Add("2011-05-31")
	f.Add("2009-12-31")
	f.Add("2010-02-29")
	f.Add("0000-01-01")
	f.Add("not-a-date")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDay(s)
		if err != nil {
			return
		}
		if d != MustDay(s) {
			t.Fatalf("MustDay(%q) = %v, ParseDay = %v", s, MustDay(s), d)
		}
		back, err := ParseDay(d.String())
		if err != nil {
			t.Fatalf("ParseDay(%q) accepted but canonical form %q rejected: %v", s, d.String(), err)
		}
		if back != d {
			t.Fatalf("round trip %q → %v → %q → %v", s, d, d.String(), back)
		}
	})
}
