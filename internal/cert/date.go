// Package cert synthesizes a CERT-Insider-Threat-style organizational log
// dataset. The real CERT r6.1/r6.2 release is a multi-gigabyte synthetic
// corpus that cannot be redistributed here, so this package reproduces the
// statistical structure the detector consumes: per-user habitual activity
// across logon, removable-device, file, HTTP and email channels, with
// weekday/weekend and working-hour/off-hour modulation, organization-wide
// environmental changes, and the paper's two insider-threat scenarios
// injected into labeled users.
package cert

import (
	"fmt"
	"time"
)

// Day is a calendar day counted from the dataset epoch (2010-01-02, the
// first collection day of CERT r6.1/r6.2).
type Day int

// Epoch is the first collection day of the dataset.
var Epoch = time.Date(2010, 1, 2, 0, 0, 0, 0, time.UTC)

// DatasetEnd is the last collection day (2011-05-31), matching the CERT
// release span.
var DatasetEnd = time.Date(2011, 5, 31, 0, 0, 0, 0, time.UTC)

// DayOf converts a time to its Day index. It uses integer Unix-second
// arithmetic (floor division), so every representable time.Time maps to a
// well-defined calendar day: the previous time.Duration-based computation
// saturated ~292 years from the epoch.
func DayOf(t time.Time) Day {
	secs := t.Unix() - Epoch.Unix()
	d := secs / 86400
	if secs < 0 && secs%86400 != 0 {
		d-- // floor, not truncation: pre-epoch times belong to the earlier day
	}
	return Day(d)
}

// Date converts a Day index back to a UTC midnight time.
func (d Day) Date() time.Time {
	return Epoch.AddDate(0, 0, int(d))
}

// String formats the day as YYYY-MM-DD.
func (d Day) String() string { return d.Date().Format("2006-01-02") }

// Weekday returns the day of week.
func (d Day) Weekday() time.Weekday { return d.Date().Weekday() }

// IsWeekend reports whether the day falls on Saturday or Sunday.
func (d Day) IsWeekend() bool {
	wd := d.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// ParseDay parses a YYYY-MM-DD string into a Day.
func ParseDay(s string) (Day, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("cert: parse day %q: %w", s, err)
	}
	return DayOf(t), nil
}

// MustDay parses a YYYY-MM-DD string, panicking on error. For use with
// compile-time-known literals in configuration and tests.
func MustDay(s string) Day {
	d, err := ParseDay(s)
	if err != nil {
		panic(err)
	}
	return d
}

// Timeframe splits each day into the paper's two frames: working hours
// (06:00-18:00) and off hours (18:00-06:00).
type Timeframe int

// The two time-frames used by ACOBE.
const (
	Work Timeframe = iota
	Off
)

// NumTimeframes is the number of time-frames per day.
const NumTimeframes = 2

// String implements fmt.Stringer.
func (tf Timeframe) String() string {
	if tf == Work {
		return "work"
	}
	return "off"
}

// TimeframeOfHour maps an hour of day to its frame.
func TimeframeOfHour(hour int) Timeframe {
	if hour >= 6 && hour < 18 {
		return Work
	}
	return Off
}

// HolidayCalendar lists US-style office holidays inside the dataset span.
// Days after long weekends exhibit the paper's "busy Monday / make-up day"
// bursts.
var HolidayCalendar = map[Day]bool{
	MustDay("2010-01-18"): true, // MLK day
	MustDay("2010-02-15"): true, // Presidents day
	MustDay("2010-05-31"): true, // Memorial day
	MustDay("2010-07-05"): true, // Independence day (observed)
	MustDay("2010-09-06"): true, // Labor day
	MustDay("2010-11-25"): true, // Thanksgiving
	MustDay("2010-11-26"): true,
	MustDay("2010-12-24"): true, // Christmas (observed)
	MustDay("2010-12-31"): true, // New Year (observed)
	MustDay("2011-01-17"): true, // MLK day
	MustDay("2011-02-21"): true, // Presidents day
	MustDay("2011-05-30"): true, // Memorial day
}

// IsHoliday reports whether d is an office holiday.
func IsHoliday(d Day) bool { return HolidayCalendar[d] }

// IsBusyday reports whether d is a working day immediately following a
// holiday or a weekend-extended holiday, when activity bursts occur.
func IsBusyday(d Day) bool {
	if d.IsWeekend() || IsHoliday(d) {
		return false
	}
	// Look back over any contiguous run of weekend/holiday days.
	prev := d - 1
	run := 0
	for prev >= 0 && (prev.IsWeekend() || IsHoliday(prev)) {
		if IsHoliday(prev) {
			run++
		}
		prev--
	}
	return run > 0
}
