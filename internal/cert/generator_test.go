package cert

import (
	"testing"
)

// tinyConfig keeps generator tests fast: 2 departments, short span.
func tinyConfig() Config {
	cfg := Config{
		Seed:         7,
		Departments:  []string{"Research", "Engineering"},
		UsersPerDept: 5,
		Start:        0,
		End:          120,
		EnvChanges: []EnvChange{
			{Start: 40, Duration: 3, Domain: "newportal.dtaa.com", UploadsPerDay: 3, VisitsPerDay: 10},
		},
	}
	cfg.Scenarios = []Scenario{
		NewScenario1("s1", makeUser(0, "Research", 1).ID, 60, 75),
	}
	return cfg
}

func collectAll(t *testing.T, g *Generator) map[Day][]Event {
	t.Helper()
	out := make(map[Day][]Event)
	if err := g.Stream(func(d Day, events []Event) error {
		out[d] = events
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no error for empty config")
	}
	cfg := tinyConfig()
	cfg.UsersPerDept = 0
	if _, err := New(cfg); err == nil {
		t.Error("no error for zero users")
	}
	cfg = tinyConfig()
	cfg.End = cfg.Start
	if _, err := New(cfg); err == nil {
		t.Error("no error for empty span")
	}
	cfg = tinyConfig()
	cfg.Scenarios = []Scenario{NewScenario1("bad", "NOSUCH", 60, 70)}
	if _, err := New(cfg); err == nil {
		t.Error("no error for scenario targeting unknown user")
	}
}

func TestUsersAreStable(t *testing.T) {
	g1, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	u1, u2 := g1.Users(), g2.Users()
	if len(u1) != 10 {
		t.Fatalf("got %d users", len(u1))
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("user %d differs: %+v vs %+v", i, u1[i], u2[i])
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	g1, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	e1 := collectAll(t, g1)
	e2 := collectAll(t, g2)
	if len(e1) != len(e2) {
		t.Fatalf("day counts differ: %d vs %d", len(e1), len(e2))
	}
	for d, events := range e1 {
		if len(events) != len(e2[d]) {
			t.Fatalf("day %v: %d vs %d events", d, len(events), len(e2[d]))
		}
		for i := range events {
			if events[i] != e2[d][i] {
				t.Fatalf("day %v event %d differs", d, i)
			}
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	cfg := tinyConfig()
	g1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := tinyConfig()
	cfg2.Seed = 8
	g2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	n1, n2 := 0, 0
	g1.Stream(func(_ Day, e []Event) error { n1 += len(e); return nil })
	g2.Stream(func(_ Day, e []Event) error { n2 += len(e); return nil })
	if n1 == n2 {
		t.Errorf("different seeds produced identical event counts (%d); suspicious", n1)
	}
}

func TestScenario1UserQuietBeforeWindow(t *testing.T) {
	g, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	insider := g.Scenarios()[0].UserID()
	deviceBefore, deviceDuring, afterLeave := 0, 0, 0
	err = g.Stream(func(d Day, events []Event) error {
		for _, e := range events {
			if e.User != insider {
				continue
			}
			if e.Type == EventDevice {
				switch {
				case d < 60:
					deviceBefore++
				case d <= 75:
					deviceDuring++
				}
			}
			if d > 75+14 {
				afterLeave++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if deviceBefore != 0 {
		t.Errorf("scenario-1 insider had %d device events before the window", deviceBefore)
	}
	if deviceDuring == 0 {
		t.Error("scenario-1 insider had no device events during the window")
	}
	if afterLeave != 0 {
		t.Errorf("insider still active %d events after leaving the organization", afterLeave)
	}
}

func TestScenario1UploadsToWikileaks(t *testing.T) {
	g, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	insider := g.Scenarios()[0].UserID()
	uploads := 0
	g.Stream(func(d Day, events []Event) error {
		for _, e := range events {
			if e.User == insider && e.Type == EventHTTP && e.Activity == ActUpload && e.Domain == "wikileaks.org" {
				uploads++
			}
		}
		return nil
	})
	if uploads == 0 {
		t.Error("no wikileaks uploads from the scenario-1 insider")
	}
}

func TestEnvChangeHitsAllUsers(t *testing.T) {
	g, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	usersHit := make(map[string]bool)
	g.Stream(func(d Day, events []Event) error {
		if d < 40 || d >= 43 {
			return nil
		}
		for _, e := range events {
			if e.Type == EventHTTP && e.Domain == "newportal.dtaa.com" {
				usersHit[e.User] = true
			}
		}
		return nil
	})
	// Env change is org-wide; nearly everyone (modulo vacation) appears.
	if len(usersHit) < 8 {
		t.Errorf("env change reached only %d/10 users", len(usersHit))
	}
}

func TestWeekendsAreQuiet(t *testing.T) {
	g, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	weekday, weekend := 0, 0
	weekdayDays, weekendDays := 0, 0
	g.Stream(func(d Day, events []Event) error {
		if d.IsWeekend() {
			weekend += len(events)
			weekendDays++
		} else {
			weekday += len(events)
			weekdayDays++
		}
		return nil
	})
	perWeekday := float64(weekday) / float64(weekdayDays)
	perWeekend := float64(weekend) / float64(weekendDays)
	if perWeekend > perWeekday/3 {
		t.Errorf("weekends too busy: %.1f vs %.1f events/day", perWeekend, perWeekday)
	}
}

func TestUsersInDeptAndLabels(t *testing.T) {
	g, err := New(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.UsersInDept("Research")); got != 5 {
		t.Errorf("Research has %d users", got)
	}
	labels := g.Labels()
	if len(labels) == 0 {
		t.Fatal("no labels")
	}
	for _, l := range labels {
		if l.User != g.Scenarios()[0].UserID() {
			t.Errorf("label for unexpected user %s", l.User)
		}
		if l.Day.IsWeekend() {
			t.Errorf("weekend day %v labeled", l.Day)
		}
	}
}

func TestSplitForScenario(t *testing.T) {
	sc := NewScenario2("s2", "X", MustDay("2011-01-07"), MustDay("2011-03-07"))
	trainStart, trainEnd, testStart, testEnd, err := SplitForScenario(sc, 0, DayOf(DatasetEnd))
	if err != nil {
		t.Fatal(err)
	}
	if trainStart != 0 {
		t.Errorf("trainStart = %v", trainStart)
	}
	if trainEnd >= MustDay("2011-01-07") {
		t.Error("training overlaps the anomaly window")
	}
	if testStart != trainEnd+1 {
		t.Error("test does not start right after training")
	}
	if testEnd <= MustDay("2011-03-07") {
		t.Error("testing ends before the anomaly window does")
	}

	// A window too close to the dataset start leaves no training period.
	early := NewScenario1("early", "X", 5, 20)
	if _, _, _, _, err := SplitForScenario(early, 0, 100); err == nil {
		t.Error("no error for a window with no training period")
	}
}

func TestScenariosFromLabels(t *testing.T) {
	labels := []Label{
		{User: "A", Day: 10, Scenario: "s1"},
		{User: "A", Day: 20, Scenario: "s1"},
		{User: "B", Day: 5, Scenario: "s2"},
	}
	scs := ScenariosFromLabels(labels)
	if len(scs) != 2 {
		t.Fatalf("got %d scenarios", len(scs))
	}
	if scs[0].Name() != "s1" || scs[0].UserID() != "A" {
		t.Errorf("first scenario %s/%s", scs[0].Name(), scs[0].UserID())
	}
	ws, we := scs[0].Window()
	if ws != 10 || we != 20 {
		t.Errorf("window %v..%v", ws, we)
	}
}

func TestDefaultConfigShape(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.Departments) != 4 || cfg.UsersPerDept != 233 {
		t.Errorf("default config %d depts × %d users", len(cfg.Departments), cfg.UsersPerDept)
	}
	if len(cfg.Scenarios) != 4 {
		t.Errorf("default config has %d scenarios", len(cfg.Scenarios))
	}
	// JPH1910 must be the r6.1-s2 insider, as in the paper.
	if cfg.Scenarios[1].UserID() != "JPH1910" {
		t.Errorf("r6.1-s2 insider is %s", cfg.Scenarios[1].UserID())
	}
}
