package cert

import (
	"encoding/csv"
	"errors"
	"strings"
	"testing"
)

// failWriter fails every write after the first failAfter bytes, like a sink
// on a full disk.
type failWriter struct {
	written   int
	failAfter int
}

var errSinkFull = errors.New("sink full")

func (w *failWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.failAfter {
		return 0, errSinkFull
	}
	w.written += len(p)
	return len(p), nil
}

// TestWriteEventsFailingSink: a sink that starts failing mid-stream must
// surface the write error instead of silently dropping events — the failure
// mode the old deferred-Close-only cleanup used to swallow.
func TestWriteEventsFailingSink(t *testing.T) {
	cfg := tinyConfig()
	cfg.End = 20
	cfg.Scenarios = nil
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	writers := make(map[EventType]*csv.Writer)
	for _, et := range []EventType{EventLogon, EventDevice, EventFile, EventHTTP, EventEmail} {
		writers[et] = csv.NewWriter(&failWriter{failAfter: 512})
	}
	if _, err := writeEvents(g, writers); !errors.Is(err, errSinkFull) {
		t.Fatalf("writeEvents error = %v, want %v", err, errSinkFull)
	}
}

// TestWriteEventsHealthySink is the control: the same streaming into
// unbounded sinks succeeds and writes every event once.
func TestWriteEventsHealthySink(t *testing.T) {
	cfg := tinyConfig()
	cfg.End = 20
	cfg.Scenarios = nil
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sinks := make(map[EventType]*strings.Builder)
	writers := make(map[EventType]*csv.Writer)
	for _, et := range []EventType{EventLogon, EventDevice, EventFile, EventHTTP, EventEmail} {
		var b strings.Builder
		sinks[et] = &b
		writers[et] = csv.NewWriter(&b)
	}
	n, err := writeEvents(g, writers)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, b := range sinks {
		rows += strings.Count(b.String(), "\n")
	}
	if rows != n {
		t.Fatalf("sinks hold %d rows, writeEvents reported %d events", rows, n)
	}
}
