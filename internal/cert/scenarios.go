package cert

import (
	"fmt"
	"sort"
	"time"

	"acobe/internal/mathx"
)

// Scenario is one injected insider-threat instance. Prepare may adjust the
// victim's habitual profile before generation starts (e.g. scenario 1
// requires a user who never used removable drives); Inject adds the
// scenario's malicious events on each day; Suppress silences the user's
// normal activity (scenario 1's user leaves the organization).
type Scenario interface {
	// Name identifies the instance, e.g. "r6.1-s2".
	Name() string
	// UserID is the victim/insider account.
	UserID() string
	// Window returns the first and last labeled anomalous day.
	Window() (Day, Day)
	// Labels returns ground-truth abnormal (user, day) pairs.
	Labels() []Label
	// Prepare adjusts the user's habitual profile.
	Prepare(p *profile)
	// Inject returns the scenario's malicious events for day d.
	Inject(p *profile, d Day, rng *mathx.RNG) []Event
	// Suppress reports whether the user's normal activity should be
	// silenced on day d.
	Suppress(d Day) bool
}

// DefaultScenarios installs the paper's four instances: scenario 1 and
// scenario 2, once in each half of the (simulated) r6.1/r6.2 datasets, each
// in its own department. usersPerDept bounds the victim indices so small
// test organizations still host all four instances.
func DefaultScenarios(departments []string, usersPerDept int) []Scenario {
	if usersPerDept < 1 {
		usersPerDept = 1
	}
	var out []Scenario
	if len(departments) > 0 {
		out = append(out, NewScenario1("r6.1-s1", makeUser(0, departments[0], 7%usersPerDept).ID,
			MustDay("2010-08-16"), MustDay("2010-09-03")))
	}
	if len(departments) > 1 {
		// The paper's running example: JPH1910, anomalies
		// 2011-01-07 .. 2011-03-07.
		out = append(out, NewScenario2("r6.1-s2", makeUser(1, departments[1], 0).ID,
			MustDay("2011-01-07"), MustDay("2011-03-07")))
	}
	if len(departments) > 2 {
		out = append(out, NewScenario1("r6.2-s1", makeUser(2, departments[2], 11%usersPerDept).ID,
			MustDay("2010-10-11"), MustDay("2010-10-29")))
	}
	if len(departments) > 3 {
		out = append(out, NewScenario2("r6.2-s2", makeUser(3, departments[3], 4%usersPerDept).ID,
			MustDay("2010-07-06"), MustDay("2010-09-03")))
	}
	return out
}

// weekdayLabels returns one label per non-weekend day in [start, end].
func weekdayLabels(user, scenario string, start, end Day) []Label {
	var out []Label
	for d := start; d <= end; d++ {
		if d.IsWeekend() {
			continue
		}
		out = append(out, Label{User: user, Day: d, Scenario: scenario})
	}
	return out
}

// Scenario1 models the CERT dataset's first threat: a user who never used
// removable drives or worked off hours begins logging in after hours,
// using a thumb drive, and uploading data to wikileaks.org, then leaves
// the organization shortly thereafter.
type Scenario1 struct {
	name       string
	user       string
	start, end Day
}

// NewScenario1 builds a scenario-1 instance over [start, end].
func NewScenario1(name, user string, start, end Day) *Scenario1 {
	return &Scenario1{name: name, user: user, start: start, end: end}
}

// Name implements Scenario.
func (s *Scenario1) Name() string { return s.name }

// UserID implements Scenario.
func (s *Scenario1) UserID() string { return s.user }

// Window implements Scenario.
func (s *Scenario1) Window() (Day, Day) { return s.start, s.end }

// Labels implements Scenario.
func (s *Scenario1) Labels() []Label { return weekdayLabels(s.user, s.name, s.start, s.end) }

// Prepare implements Scenario: the user never used removable media and
// rarely worked off hours before the scenario.
func (s *Scenario1) Prepare(p *profile) {
	p.deviceRate = 0
	p.offFactor = 0.02
}

// Suppress implements Scenario: the user leaves the organization two weeks
// after the scenario ends.
func (s *Scenario1) Suppress(d Day) bool { return d > s.end+14 }

// Inject implements Scenario. The malicious footprint is deliberately
// low-signal per day but persistent: a handful of off-hour logons, thumb
// drive connections, staged file copies, and uploads to wikileaks.org.
func (s *Scenario1) Inject(p *profile, d Day, rng *mathx.RNG) []Event {
	if d < s.start || d > s.end || d.IsWeekend() {
		return nil
	}
	u := p.user
	var events []Event
	offEvent := func(build func(t time.Time) Event) {
		events = append(events, build(eventTime(d, p.offHour(rng), rng)))
	}
	// Off-hours session.
	for i := 0; i < 1+rng.Poisson(1); i++ {
		offEvent(func(t time.Time) Event {
			return Event{Type: EventLogon, Time: t, User: u.ID, PC: u.PC, Activity: ActLogon}
		})
	}
	// Thumb-drive usage by a user with no device history.
	for i := 0; i < 1+rng.Poisson(1.5); i++ {
		offEvent(func(t time.Time) Event {
			return Event{Type: EventDevice, Time: t, User: u.ID, PC: u.PC, Activity: ActConnect}
		})
		offEvent(func(t time.Time) Event {
			return Event{Type: EventDevice, Time: t, User: u.ID, PC: u.PC, Activity: ActDisconnect}
		})
	}
	// Staging: copy sensitive files to the removable drive.
	for i := 0; i < rng.Poisson(4); i++ {
		offEvent(func(t time.Time) Event {
			return Event{Type: EventFile, Time: t, User: u.ID, PC: u.PC, Activity: ActFileCopy,
				FileID: p.pickFile(rng), Direction: DirLocalToRemote}
		})
	}
	// Exfiltration: uploads to wikileaks.org.
	for i := 0; i < 1+rng.Poisson(2); i++ {
		ft := "doc"
		if rng.Bool(0.4) {
			ft = "zip"
		}
		offEvent(func(t time.Time) Event {
			return Event{Type: EventHTTP, Time: t, User: u.ID, PC: u.PC, Activity: ActUpload,
				Domain: "wikileaks.org", FileType: ft}
		})
	}
	return events
}

// Scenario2 models the CERT dataset's second threat: a user surfs job
// websites and solicits employment from a competitor, then uses a thumb
// drive at markedly higher rates than their previous activity to steal
// data before leaving.
type Scenario2 struct {
	name       string
	user       string
	start, end Day
}

// NewScenario2 builds a scenario-2 instance over [start, end].
func NewScenario2(name, user string, start, end Day) *Scenario2 {
	return &Scenario2{name: name, user: user, start: start, end: end}
}

// jobDomains are the competitor / job-hunting sites the scenario-2 user
// uploads a resume to. Several distinct domains produce the paper's
// "upload-doc + http-new-op" deviation pattern (Figure 4).
var jobDomains = []string{
	"careers.competitor.com", "jobs.searchsite.com", "apply.bigcorp.com",
	"linkedup.example.com", "hire.startups.io", "recruiting.rival.net",
	"talent.agency.org", "openings.techfirm.com",
}

// Name implements Scenario.
func (s *Scenario2) Name() string { return s.name }

// UserID implements Scenario.
func (s *Scenario2) UserID() string { return s.user }

// Window implements Scenario.
func (s *Scenario2) Window() (Day, Day) { return s.start, s.end }

// Labels implements Scenario.
func (s *Scenario2) Labels() []Label { return weekdayLabels(s.user, s.name, s.start, s.end) }

// Prepare implements Scenario: the user has modest prior thumb-drive usage
// so the late-phase rate increase is "markedly higher" but not unprecedented.
func (s *Scenario2) Prepare(p *profile) {
	if p.deviceRate == 0 || p.deviceRate > 0.3 {
		p.deviceRate = 0.15
	}
}

// Suppress implements Scenario: scenario 2's user stays through the window.
func (s *Scenario2) Suppress(Day) bool { return false }

// theftPhaseDays is how many final days of the window carry the
// thumb-drive data-theft phase.
const theftPhaseDays = 21

// Inject implements Scenario.
func (s *Scenario2) Inject(p *profile, d Day, rng *mathx.RNG) []Event {
	if d < s.start || d > s.end || d.IsWeekend() {
		return nil
	}
	u := p.user
	var events []Event
	workEvent := func(build func(t time.Time) Event) {
		events = append(events, build(eventTime(d, p.workHour(rng), rng)))
	}

	// Phase A (whole window): job hunting. Visits plus resume uploads to
	// several job domains the user never touched before.
	for i := 0; i < 2+rng.Poisson(4); i++ {
		workEvent(func(t time.Time) Event {
			return Event{Type: EventHTTP, Time: t, User: u.ID, PC: u.PC, Activity: ActVisit,
				Domain: mathx.Pick(rng, jobDomains)}
		})
	}
	for i := 0; i < 1+rng.Poisson(1.5); i++ {
		workEvent(func(t time.Time) Event {
			return Event{Type: EventHTTP, Time: t, User: u.ID, PC: u.PC, Activity: ActUpload,
				Domain: mathx.Pick(rng, jobDomains), FileType: "doc"}
		})
	}

	// Phase B (final weeks): thumb-drive usage at markedly higher rates
	// plus staged copies of data to the removable drive.
	if d > s.end-theftPhaseDays {
		for i := 0; i < 2+rng.Poisson(2); i++ {
			workEvent(func(t time.Time) Event {
				return Event{Type: EventDevice, Time: t, User: u.ID, PC: u.PC, Activity: ActConnect}
			})
			workEvent(func(t time.Time) Event {
				return Event{Type: EventDevice, Time: t, User: u.ID, PC: u.PC, Activity: ActDisconnect}
			})
		}
		for i := 0; i < rng.Poisson(6); i++ {
			workEvent(func(t time.Time) Event {
				return Event{Type: EventFile, Time: t, User: u.ID, PC: u.PC, Activity: ActFileCopy,
					FileID: p.pickFile(rng), Direction: DirLocalToRemote}
			})
		}
	}
	return events
}

// SplitForScenario derives the paper's train/test day ranges around a
// scenario window: training runs from the dataset start until ~5 weeks
// before the first labeled day, and testing from there until ~3 weeks
// after the last labeled day (clamped to the dataset span).
func SplitForScenario(sc Scenario, datasetStart, datasetEnd Day) (trainStart, trainEnd, testStart, testEnd Day, err error) {
	ws, we := sc.Window()
	trainStart = datasetStart
	trainEnd = ws - 38
	testStart = trainEnd + 1
	testEnd = we + 23
	if testEnd > datasetEnd {
		testEnd = datasetEnd
	}
	if trainEnd <= trainStart {
		return 0, 0, 0, 0, fmt.Errorf("cert: scenario %s window %v starts too early for a training period", sc.Name(), ws)
	}
	return trainStart, trainEnd, testStart, testEnd, nil
}

// StaticScenario is a scenario reconstructed from stored ground-truth
// labels: it carries the insider, name and window but injects nothing
// (the events already exist in the stored dataset).
type StaticScenario struct {
	ScenarioName string
	User         string
	Start, End   Day
}

// Name implements Scenario.
func (s *StaticScenario) Name() string { return s.ScenarioName }

// UserID implements Scenario.
func (s *StaticScenario) UserID() string { return s.User }

// Window implements Scenario.
func (s *StaticScenario) Window() (Day, Day) { return s.Start, s.End }

// Labels implements Scenario.
func (s *StaticScenario) Labels() []Label {
	return weekdayLabels(s.User, s.ScenarioName, s.Start, s.End)
}

// Prepare implements Scenario as a no-op.
func (s *StaticScenario) Prepare(*profile) {}

// Inject implements Scenario: a static scenario injects nothing.
func (s *StaticScenario) Inject(*profile, Day, *mathx.RNG) []Event { return nil }

// Suppress implements Scenario: never.
func (s *StaticScenario) Suppress(Day) bool { return false }

// ScenariosFromLabels reconstructs static scenarios from stored labels by
// grouping on scenario name and taking each group's insider and day span.
func ScenariosFromLabels(labels []Label) []Scenario {
	type agg struct {
		user       string
		start, end Day
	}
	byName := make(map[string]*agg)
	var order []string
	for _, l := range labels {
		a, ok := byName[l.Scenario]
		if !ok {
			a = &agg{user: l.User, start: l.Day, end: l.Day}
			byName[l.Scenario] = a
			order = append(order, l.Scenario)
			continue
		}
		if l.Day < a.start {
			a.start = l.Day
		}
		if l.Day > a.end {
			a.end = l.Day
		}
	}
	sort.Strings(order)
	out := make([]Scenario, 0, len(order))
	for _, name := range order {
		a := byName[name]
		out = append(out, &StaticScenario{ScenarioName: name, User: a.user, Start: a.start, End: a.end})
	}
	return out
}
