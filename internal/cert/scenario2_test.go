package cert

import (
	"strings"
	"testing"
)

// s2Config injects a scenario-2 instance into the tiny organization.
func s2Config() Config {
	cfg := tinyConfig()
	cfg.Scenarios = []Scenario{
		NewScenario2("s2", makeUser(1, "Engineering", 2).ID, 50, 110),
	}
	return cfg
}

func TestScenario2JobHuntingPhase(t *testing.T) {
	g, err := New(s2Config())
	if err != nil {
		t.Fatal(err)
	}
	insider := g.Scenarios()[0].UserID()
	jobUploads, jobVisits := 0, 0
	earlyDevice, lateDevice := 0, 0
	err = g.Stream(func(d Day, events []Event) error {
		for _, e := range events {
			if e.User != insider {
				continue
			}
			inWindow := d >= 50 && d <= 110
			if e.Type == EventHTTP && inWindow {
				if strings.Contains(e.Domain, "competitor") || strings.Contains(e.Domain, "recruit") ||
					strings.Contains(e.Domain, "jobs") || strings.Contains(e.Domain, "hire") ||
					strings.Contains(e.Domain, "apply") || strings.Contains(e.Domain, "talent") ||
					strings.Contains(e.Domain, "openings") || strings.Contains(e.Domain, "linkedup") {
					if e.Activity == ActUpload {
						jobUploads++
					} else if e.Activity == ActVisit {
						jobVisits++
					}
				}
			}
			if e.Type == EventDevice && e.Activity == ActConnect {
				switch {
				case d >= 50 && d <= 110-theftPhaseDays:
					earlyDevice++
				case d > 110-theftPhaseDays && d <= 110:
					lateDevice++
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if jobUploads == 0 {
		t.Error("no resume uploads to job domains")
	}
	if jobVisits == 0 {
		t.Error("no job-site visits")
	}
	// "Thumb drive at markedly higher rates": the final weeks must carry
	// far more connects per day than the job-hunting phase.
	earlyDays := float64(110 - theftPhaseDays - 50 + 1)
	lateDays := float64(theftPhaseDays)
	if float64(lateDevice)/lateDays < 4*(float64(earlyDevice)/earlyDays+0.01) {
		t.Errorf("late device rate not markedly higher: early %d/%.0fd late %d/%.0fd",
			earlyDevice, earlyDays, lateDevice, lateDays)
	}
}

func TestScenario2StaysEmployed(t *testing.T) {
	g, err := New(s2Config())
	if err != nil {
		t.Fatal(err)
	}
	insider := g.Scenarios()[0].UserID()
	after := 0
	g.Stream(func(d Day, events []Event) error {
		if d <= 112 {
			return nil
		}
		for _, e := range events {
			if e.User == insider {
				after++
			}
		}
		return nil
	})
	if after == 0 {
		t.Error("scenario-2 user vanished after the window (only scenario 1 leaves)")
	}
}

func TestScenarioInterfaceMetadata(t *testing.T) {
	s2 := NewScenario2("x", "U", 10, 20)
	if s2.Name() != "x" || s2.UserID() != "U" {
		t.Error("metadata wrong")
	}
	ws, we := s2.Window()
	if ws != 10 || we != 20 {
		t.Error("window wrong")
	}
	if s2.Suppress(25) {
		t.Error("scenario 2 must never suppress")
	}
	s1 := NewScenario1("y", "U", 10, 20)
	if !s1.Suppress(20 + 15) {
		t.Error("scenario 1 user should leave after the window")
	}
	if s1.Suppress(20 + 14) {
		t.Error("scenario 1 user leaves only after two weeks")
	}
}
