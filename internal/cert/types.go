package cert

import (
	"time"
)

// EventType enumerates the CERT log channels.
type EventType int

// The five event channels present in the CERT release (LDAP is static
// directory data, not an event stream).
const (
	EventLogon EventType = iota + 1
	EventDevice
	EventFile
	EventHTTP
	EventEmail
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventLogon:
		return "logon"
	case EventDevice:
		return "device"
	case EventFile:
		return "file"
	case EventHTTP:
		return "http"
	case EventEmail:
		return "email"
	default:
		return "unknown"
	}
}

// Activity names used across channels. They mirror the CERT schema values.
const (
	// Logon channel.
	ActLogon  = "Logon"
	ActLogoff = "Logoff"

	// Device channel.
	ActConnect    = "Connect"
	ActDisconnect = "Disconnect"

	// File channel. Direction is carried separately.
	ActFileOpen  = "Open"
	ActFileWrite = "Write"
	ActFileCopy  = "Copy"

	// HTTP channel.
	ActVisit    = "Visit"
	ActDownload = "Download"
	ActUpload   = "Upload"

	// Email channel.
	ActSend = "Send"
	ActView = "View"
)

// Dataflow directions for file events.
const (
	DirLocal         = "local"           // operate on a local file
	DirRemote        = "remote"          // operate on a remote/removable file
	DirLocalToRemote = "local-to-remote" // copy local → removable
	DirRemoteToLocal = "remote-to-local" // copy removable → local
)

// Upload/download file types seen in the HTTP channel.
var FileTypes = []string{"doc", "exe", "jpg", "pdf", "txt", "zip"}

// Event is one log entry in any channel. Unused fields are left zero.
type Event struct {
	Type EventType
	Time time.Time
	User string
	PC   string

	// Activity is the channel-specific action (see Act* constants).
	Activity string

	// FileID identifies the file for file events.
	FileID string
	// Direction is the dataflow direction for file events (Dir*).
	Direction string

	// Domain is the target host for HTTP events.
	Domain string
	// FileType is the uploaded/downloaded extension for HTTP events.
	FileType string

	// Recipient is the destination for email events.
	Recipient string
}

// Day returns the calendar day of the event.
func (e Event) Day() Day { return DayOf(e.Time) }

// Timeframe returns the work/off frame of the event.
func (e Event) Timeframe() Timeframe { return TimeframeOfHour(e.Time.Hour()) }

// User is one LDAP directory entry. Groups are the third-tier
// organizational unit ("department"), which the paper uses to define
// behavioral groups.
type User struct {
	ID         string // e.g. "JPH1910"
	Name       string
	Email      string
	Role       string
	Department string // third-tier OU = ACOBE group
	PC         string // primary workstation
}

// Label marks one (user, day) pair as a known-abnormal ground-truth label
// from an injected threat scenario.
type Label struct {
	User     string
	Day      Day
	Scenario string
}
