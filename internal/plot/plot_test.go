package plot

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testChart() *Chart {
	return &Chart{
		Title:  "t",
		XName:  "day",
		YName:  "score",
		XLabel: []string{"d1", "d2", "d3"},
		Series: []Series{
			{Name: "a", Y: []float64{1, 2, 3}},
			{Name: "b", Y: []float64{3, 2, 1}},
		},
	}
}

func TestChartCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := testChart().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "day,a,b" {
		t.Errorf("header %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[1] != "d1,1,3" {
		t.Errorf("row %q", lines[1])
	}
}

func TestChartCSVShortSeries(t *testing.T) {
	c := testChart()
	c.Series[1].Y = c.Series[1].Y[:1] // shorter than x axis
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.HasSuffix(lines[2], ",") {
		t.Errorf("missing value not blank: %q", lines[2])
	}
}

func TestChartSaveCSVCreatesDirs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "c.csv")
	if err := testChart().SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestChartASCII(t *testing.T) {
	out := testChart().ASCII(6, 24)
	if !strings.Contains(out, "t  [score vs day]") {
		t.Errorf("missing title: %s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "d1 … d3") {
		t.Errorf("missing x labels:\n%s", out)
	}
}

func TestChartASCIIEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if out := c.ASCII(5, 20); !strings.Contains(out, "no data") {
		t.Errorf("empty chart rendered %q", out)
	}
}

func TestChartASCIIConstantSeries(t *testing.T) {
	c := &Chart{Title: "flat", Series: []Series{{Name: "x", Y: []float64{2, 2, 2}}}}
	out := c.ASCII(5, 20)
	if strings.Contains(out, "NaN") {
		t.Errorf("constant series produced NaN:\n%s", out)
	}
}

func TestHeatmapCSVAndASCII(t *testing.T) {
	h := &Heatmap{
		Title:  "hm",
		Rows:   []string{"r1", "r2"},
		Cols:   []string{"c1", "c2", "c3"},
		Values: [][]float64{{-3, 0, 3}, {0, 3, -3}},
		Lo:     -3, Hi: 3,
	}
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // header + 6 cells
		t.Fatalf("%d lines", len(lines))
	}
	if lines[1] != "r1,c1,-3" {
		t.Errorf("cell row %q", lines[1])
	}

	out := h.ASCII()
	if !strings.Contains(out, "r1 │") {
		t.Errorf("missing row label:\n%s", out)
	}
	// -3 maps to the lightest shade (space), +3 to the darkest (@).
	if !strings.Contains(out, "@") {
		t.Errorf("missing dark shade:\n%s", out)
	}
}

func TestHeatmapAutoScale(t *testing.T) {
	h := &Heatmap{
		Title:  "auto",
		Rows:   []string{"r"},
		Cols:   []string{"c"},
		Values: [][]float64{{5}},
	}
	if out := h.ASCII(); !strings.Contains(out, "@") {
		// Single value auto-scales to the top of the ramp... actually with
		// hi == lo the range widens; just require no panic and some output.
		if len(out) == 0 {
			t.Error("empty rendering")
		}
	}
}

func TestTableStringAndCSV(t *testing.T) {
	tab := &Table{Title: "results", Columns: []string{"model", "auc"}}
	tab.AddRow("ACOBE", "0.99")
	tab.AddRow("Baseline", "0.95")
	s := tab.String()
	if !strings.Contains(s, "results") || !strings.Contains(s, "ACOBE") {
		t.Errorf("table string:\n%s", s)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "model,auc\nACOBE,0.99\n") {
		t.Errorf("table csv %q", buf.String())
	}
}

func TestSortSeriesByName(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "z"}, {Name: "a"}, {Name: "m"}}}
	SortSeriesByName(c)
	if c.Series[0].Name != "a" || c.Series[2].Name != "z" {
		t.Errorf("sorted order %v", c.Series)
	}
}

func TestHeatmapSaveCSV(t *testing.T) {
	h := &Heatmap{Title: "x", Rows: []string{"r"}, Cols: []string{"c"}, Values: [][]float64{{1}}}
	path := filepath.Join(t.TempDir(), "deep", "h.csv")
	if err := h.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestTableSaveCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow("1")
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := tab.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\n1\n" {
		t.Errorf("table csv %q", data)
	}
}

func TestChartASCIISinglePoint(t *testing.T) {
	c := &Chart{Title: "one", XLabel: []string{"d"}, Series: []Series{{Name: "s", Y: []float64{5}}}}
	out := c.ASCII(4, 16)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not rendered:\n%s", out)
	}
}

func TestHeatmapEmpty(t *testing.T) {
	h := &Heatmap{Title: "void"}
	if out := h.ASCII(); !strings.Contains(out, "no data") {
		t.Errorf("empty heatmap rendered %q", out)
	}
}

func TestChartASCIIMinimumDimensions(t *testing.T) {
	c := testChart()
	out := c.ASCII(1, 5) // clamped up internally
	if len(out) == 0 {
		t.Error("no output at minimum dimensions")
	}
}
