// Package plot emits the reproduction's figures as CSV data files (for
// external plotting) and quick ASCII renderings (for terminal inspection).
// Every figure of the paper maps to one or more Series or Heatmap values.
package plot

import (
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Series is one named line of (x, y) points sharing a common x grid.
type Series struct {
	Name string
	Y    []float64
}

// Chart is a set of series over a shared x axis.
type Chart struct {
	Title  string
	XName  string
	YName  string
	XLabel []string // one label per x position
	Series []Series
}

// WriteCSV writes the chart as a headered CSV: x label column followed by
// one column per series.
func (c *Chart) WriteCSV(w io.Writer) error {
	cols := make([]string, 0, len(c.Series)+1)
	cols = append(cols, c.XName)
	for _, s := range c.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, x := range c.XLabel {
		row := make([]string, 0, len(c.Series)+1)
		row = append(row, x)
		for _, s := range c.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.6g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SaveCSV writes the chart to path, creating parent directories.
func (c *Chart) SaveCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	defer f.Close()
	if err := c.WriteCSV(f); err != nil {
		return fmt.Errorf("plot: write %s: %w", path, err)
	}
	return nil
}

// ASCII renders the chart as a rows×width ASCII plot. Each series gets a
// distinct glyph; later series draw over earlier ones.
func (c *Chart) ASCII(rows, width int) string {
	if rows < 4 {
		rows = 4
	}
	if width < 16 {
		width = 16
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range c.Series {
		for _, v := range s.Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
	}
	if maxLen == 0 || math.IsInf(lo, 1) {
		return c.Title + " (no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		g := glyphs[si%len(glyphs)]
		for i, v := range s.Y {
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			yRel := (v - lo) / (hi - lo)
			r := rows - 1 - int(yRel*float64(rows-1)+0.5)
			grid[r][x] = g
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%s vs %s]\n", c.Title, c.YName, c.XName)
	fmt.Fprintf(&b, "%10.4g ┐\n", hi)
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.4g ┘", lo)
	if len(c.XLabel) > 0 {
		fmt.Fprintf(&b, "  %s … %s", c.XLabel[0], c.XLabel[len(c.XLabel)-1])
	}
	b.WriteByte('\n')
	legend := make([]string, 0, len(c.Series))
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	fmt.Fprintf(&b, "%10s  %s\n", "", strings.Join(legend, "  "))
	return b.String()
}

// Heatmap is a dense matrix rendering (Figure 4's deviation matrices).
type Heatmap struct {
	Title  string
	Rows   []string // row labels (features)
	Cols   []string // column labels (days)
	Values [][]float64
	// Lo, Hi bound the color scale; zero values auto-scale.
	Lo, Hi float64
}

// WriteCSV emits the heatmap as rows of feature,day,value triples.
func (h *Heatmap) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "row,col,value"); err != nil {
		return err
	}
	for i, r := range h.Rows {
		for j, c := range h.Cols {
			if _, err := fmt.Fprintf(w, "%s,%s,%.6g\n", r, c, h.Values[i][j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// SaveCSV writes the heatmap to path, creating parent directories.
func (h *Heatmap) SaveCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	defer f.Close()
	if err := h.WriteCSV(f); err != nil {
		return fmt.Errorf("plot: write %s: %w", path, err)
	}
	return nil
}

// shades maps intensity to ASCII ink, light to dark.
var shades = []byte(" .:-=+*#%@")

// ASCII renders the heatmap with one character per cell.
func (h *Heatmap) ASCII() string {
	lo, hi := h.Lo, h.Hi
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, row := range h.Values {
			for _, v := range row {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
		if math.IsInf(lo, 1) {
			return h.Title + " (no data)\n"
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	labelW := 0
	for _, r := range h.Rows {
		if len(r) > labelW {
			labelW = len(r)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (%.3g=light … %.3g=dark)\n", h.Title, lo, hi)
	for i, r := range h.Rows {
		fmt.Fprintf(&b, "%*s │", labelW, r)
		for _, v := range h.Values[i] {
			rel := (v - lo) / (hi - lo)
			if rel < 0 {
				rel = 0
			}
			if rel > 1 {
				rel = 1
			}
			b.WriteByte(shades[int(rel*float64(len(shades)-1)+0.5)])
		}
		b.WriteByte('\n')
	}
	if len(h.Cols) > 0 {
		fmt.Fprintf(&b, "%*s  %s … %s\n", labelW, "", h.Cols[0], h.Cols[len(h.Cols)-1])
	}
	return b.String()
}

// Table renders a simple two-dimensional result table (model × metric) for
// terminal output and CSV export.
type Table struct {
	Title   string
	Columns []string
	RowsOut [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) {
	t.RowsOut = append(t.RowsOut, cells)
}

// WriteCSV emits the table.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, r := range t.RowsOut {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// SaveCSV writes the table to path, creating parent directories.
func (t *Table) SaveCSV(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("plot: %w", err)
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return fmt.Errorf("plot: write %s: %w", path, err)
	}
	return nil
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.RowsOut {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.RowsOut {
		writeRow(r)
	}
	return b.String()
}

// SortSeriesByName orders a chart's series alphabetically for stable
// output.
func SortSeriesByName(c *Chart) {
	sort.SliceStable(c.Series, func(i, j int) bool { return c.Series[i].Name < c.Series[j].Name })
}
