package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"acobe/internal/cert"
)

// ErrPersistenceFailed wraps every persistence failure. Once any WAL
// append, snapshot, or prune operation fails the server fail-stops:
// memory is never allowed to run ahead of the log, so all later Submit
// and CloseDay calls return an error wrapping this sentinel instead of
// accepting events that would be lost on restart.
var ErrPersistenceFailed = errors.New("serve: persistence failed")

// PersistConfig enables the crash-safe persistence layer.
type PersistConfig struct {
	// Dir is the data directory. Snapshots live at its top level, WAL
	// segments under Dir/wal. Created if missing.
	Dir string
	// Fsync says when the WAL syncs (default FsyncClose).
	Fsync FsyncPolicy
	// SnapshotEvery is the snapshot cadence in closed days (default 30).
	SnapshotEvery int
	// SegmentBytes rotates WAL segments at this size (default 8 MiB).
	SegmentBytes int64
	// Hooks intercept filesystem operations; tests inject faults here.
	Hooks Hooks
}

func (p *PersistConfig) withDefaults() PersistConfig {
	out := *p
	if out.SnapshotEvery <= 0 {
		out.SnapshotEvery = 30
	}
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 8 << 20
	}
	return out
}

// RecoverInfo reports what Open reconstructed, so operators (and the
// crash-matrix tests) can see exactly how a restart resumed.
type RecoverInfo struct {
	// SnapshotLoaded is false on a fresh start or full-WAL replay.
	SnapshotLoaded bool
	// SnapshotDay is the closed-through day of the loaded snapshot.
	SnapshotDay cert.Day
	// ReplayedRecords and ReplayedEvents count the WAL tail behind the
	// snapshot. Bounded-recovery tests assert on ReplayedRecords.
	ReplayedRecords int
	ReplayedEvents  int
	// RejectedEvents counts replayed events whose payload type the
	// configured ingestor cannot consume (a log written before payload
	// vetting, or under a different ingestor). They are dropped, exactly
	// as the live path rejects them before the WAL.
	RejectedEvents int
	// TornBytes is how much of a torn tail was truncated from the last
	// segment (0 after a clean shutdown).
	TornBytes int64
	// ClosedThrough is the last closed day after recovery.
	ClosedThrough cert.Day
	// BufferedEvents counts the recovered not-yet-closed events per day.
	// A client resuming a stream uses it to know which submissions were
	// durable (batches are logged all-or-nothing).
	BufferedEvents map[cert.Day]int
}

// Open builds a Server with persistence: it recovers any prior state from
// p.Dir (newest valid snapshot + WAL tail replay, truncating a torn tail
// at the last valid frame), attaches the WAL appender, and only then
// starts accepting work. An empty directory is a fresh start. The
// configuration must match the one the directory was written with (users,
// groups, start day, window) — snapshots refuse to load into a reshaped
// server.
func Open(cfg Config, p PersistConfig) (*Server, *RecoverInfo, error) {
	p = p.withDefaults()
	if p.Dir == "" {
		return nil, nil, errors.New("serve: persistence requires a data directory")
	}
	walDir := filepath.Join(p.Dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, nil, err
	}
	s, err := newCore(cfg)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := s.ing.(StatefulIngestor); !ok {
		return nil, nil, fmt.Errorf("serve: ingestor %T does not support persistence (no SaveState/LoadState)", s.ing)
	}
	s.pcfg = &p
	s.fs = persistFS{hooks: p.Hooks}

	info, err := s.recover(walDir)
	if err != nil {
		return nil, nil, err
	}
	s.recovery = info
	s.start()
	return s, info, nil
}

// recover restores state from the data directory and leaves the WAL
// appender positioned at the end of the last valid frame.
func (s *Server) recover(walDir string) (*RecoverInfo, error) {
	info := &RecoverInfo{}

	// 1. Newest valid snapshot wins; a corrupt one falls back a
	// generation (state is rebuilt from scratch per attempt so a
	// half-loaded corrupt snapshot can't leak into the next try).
	snaps, err := listSnapshots(s.pcfg.Dir)
	if err != nil {
		return nil, err
	}
	var pos walPos
	loadErrs := make([]error, 0, len(snaps))
	for i, e := range snaps {
		if i > 0 {
			if s.cfg.Ingestor != nil {
				// A caller-provided ingestor may have been half-mutated
				// by the failed load and cannot be rebuilt here.
				break
			}
			fresh, err := newCore(s.cfg)
			if err != nil {
				return nil, err
			}
			s.adoptCore(fresh)
		}
		day, p, err := s.loadSnapshot(e.path)
		if err != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %w", filepath.Base(e.path), err))
			continue
		}
		info.SnapshotLoaded = true
		info.SnapshotDay = day
		pos = p
		break
	}
	if len(snaps) > 0 && !info.SnapshotLoaded {
		// Snapshots exist but none load, and the WAL behind them is
		// pruned: recovering from the WAL alone would silently rebuild
		// wrong state. Fail loudly instead.
		return nil, fmt.Errorf("serve: no usable snapshot in %s: %w", s.pcfg.Dir, errors.Join(loadErrs...))
	}
	if !info.SnapshotLoaded && len(loadErrs) > 0 {
		fresh, err := newCore(s.cfg)
		if err != nil {
			return nil, err
		}
		s.adoptCore(fresh)
	}

	// 2. Replay the WAL tail behind the snapshot position.
	segs, err := listSegments(walDir)
	if err != nil {
		return nil, err
	}
	if !info.SnapshotLoaded && len(segs) > 0 && segs[0] != 1 {
		return nil, fmt.Errorf("serve: WAL starts at segment %d with no snapshot — history gap", segs[0])
	}
	if info.SnapshotLoaded {
		// The loaded snapshot's position must land in an existing segment:
		// pruning never removes a retained snapshot's segment, so a
		// missing one means manual deletion or over-pruning, and replaying
		// around it would silently rebuild wrong state.
		found := false
		for _, seq := range segs {
			if seq == pos.seg {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("serve: snapshot WAL position (segment %d) is missing from the log — history gap", pos.seg)
		}
	}
	// The replayed segments must be strictly consecutive: a missing middle
	// segment would otherwise be skipped silently and later segments would
	// replay on top of a hole.
	prevSeq := uint64(0)
	for _, seq := range segs {
		if info.SnapshotLoaded && seq < pos.seg {
			continue // behind the snapshot; only an older snapshot needs it
		}
		if prevSeq != 0 && seq != prevSeq+1 {
			return nil, fmt.Errorf("serve: WAL segment %d follows %d — history gap", seq, prevSeq)
		}
		prevSeq = seq
	}
	lastSeq, lastEnd := uint64(0), int64(0)
	attached := false
	for i, seq := range segs {
		path := walSegPath(walDir, seq)
		if info.SnapshotLoaded && seq < pos.seg {
			continue // behind the snapshot; kept only for the older snapshot
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		gotSeq, frames, goodLen, hdrOK := parseSegment(data)
		last := i == len(segs)-1
		if !hdrOK || gotSeq != seq {
			if last && hdrOK == false {
				// Crash during rotation: the new segment's header never
				// finished. Nothing in it was acknowledged; drop it.
				if err := s.fs.remove(path); err != nil {
					return nil, err
				}
				info.TornBytes += int64(len(data))
				break
			}
			return nil, fmt.Errorf("serve: WAL segment %s is corrupt (not the last segment — unrecoverable)", filepath.Base(path))
		}
		from := int64(walHeaderSize)
		if info.SnapshotLoaded && seq == pos.seg {
			from = pos.off
			if from > int64(goodLen) || !frameBoundary(frames, goodLen, from) {
				return nil, fmt.Errorf("serve: snapshot WAL position %d not on a frame boundary of %s", from, filepath.Base(path))
			}
		}
		for _, fr := range frames {
			if int64(fr.off) < from {
				continue
			}
			rec, err := decodeRecord(fr.payload)
			if err != nil {
				if !last {
					return nil, fmt.Errorf("serve: %s: %w", filepath.Base(path), err)
				}
				// Semantically invalid record at the tail: treat the log
				// as ending at the previous frame.
				goodLen = fr.off
				break
			}
			if err := s.applyRecord(rec, info); err != nil {
				return nil, err
			}
			info.ReplayedRecords++
		}
		if torn := int64(len(data)) - int64(goodLen); torn > 0 {
			if !last {
				return nil, fmt.Errorf("serve: WAL segment %s has a torn tail but is not the last segment", filepath.Base(path))
			}
			if err := s.fs.truncate(path, int64(goodLen)); err != nil {
				return nil, err
			}
			info.TornBytes += torn
		}
		lastSeq, lastEnd = seq, int64(goodLen)
		attached = last
	}

	// 3. Attach the appender: continue the last surviving segment, or
	// start a new one past everything seen.
	s.wal = &wal{dir: walDir, fs: s.fs, segBytes: s.pcfg.SegmentBytes, policy: s.pcfg.Fsync}
	if attached {
		if err := s.wal.resumeSegment(lastSeq, lastEnd); err != nil {
			return nil, err
		}
	} else {
		next := uint64(1)
		if len(segs) > 0 && segs[len(segs)-1] >= next {
			next = segs[len(segs)-1] + 1
		}
		if pos.seg >= next {
			next = pos.seg + 1
		}
		if err := s.wal.openSegment(next); err != nil {
			return nil, err
		}
	}

	// 4. Snapshot cadence resumes from what is already covered.
	base := s.cfg.Start - 1
	if info.SnapshotLoaded {
		base = info.SnapshotDay
	}
	s.daysSinceSnap = int(s.closedThrough - base)

	info.ClosedThrough = s.closedThrough
	info.BufferedEvents = make(map[cert.Day]int, len(s.buffered))
	for d, evs := range s.buffered {
		info.BufferedEvents[d] = len(evs)
	}
	return info, nil
}

// frameBoundary reports whether off is a frame start or the end of the
// valid prefix.
func frameBoundary(frames []walFrame, goodLen int, off int64) bool {
	if off == walHeaderSize || off == int64(goodLen) {
		return true
	}
	for _, fr := range frames {
		if int64(fr.off) == off {
			return true
		}
	}
	return false
}

// applyRecord re-applies one WAL record through the same code paths the
// live drain loop uses — minus the re-append. Replay is deterministic:
// events were logged post-late-filter, and close barriers advance
// closedThrough in the same order, so the rebuilt state matches the
// pre-crash state bit for bit.
func (s *Server) applyRecord(rec walRecord, info *RecoverInfo) error {
	switch rec.typ {
	case recEvents:
		for _, e := range rec.events {
			if s.checkEvent(e) != nil {
				// The ingestor cannot consume this payload type (logged
				// before payload vetting existed, or a foreign log). Drop
				// it exactly as the live path now rejects it pre-WAL —
				// failing recovery would make the directory permanently
				// unrecoverable over one bad batch.
				info.RejectedEvents++
				continue
			}
			d := e.Day()
			if d <= s.closedThrough {
				// Cannot happen for a log the server wrote (events are
				// filtered before logging); tolerate it the same way.
				s.late.Add(1)
				continue
			}
			s.buffered[d] = append(s.buffered[d], e)
			s.ingested.Add(1)
			info.ReplayedEvents++
		}
		return nil
	case recClose:
		return s.closeDays(rec.day)
	default:
		return fmt.Errorf("serve: unknown WAL record type %d", rec.typ)
	}
}

// LastRecovery returns what Open reconstructed, or nil when the server
// was built without persistence.
func (s *Server) LastRecovery() *RecoverInfo { return s.recovery }
