package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"acobe/internal/audit"
	"acobe/internal/cert"
	"acobe/internal/obs"
)

// ErrPersistenceFailed wraps every persistence failure. Once any WAL
// append, snapshot, or prune operation fails the server fail-stops:
// memory is never allowed to run ahead of the log, so all later Submit
// and CloseDay calls return an error wrapping this sentinel instead of
// accepting events that would be lost on restart.
var ErrPersistenceFailed = errors.New("serve: persistence failed")

// PersistConfig enables the crash-safe persistence layer.
type PersistConfig struct {
	// Dir is the data directory. Snapshots (and, when sharded, manifests)
	// live at its top level, WAL segments under Dir/wal. Created if
	// missing.
	Dir string
	// Fsync says when the WAL syncs (default FsyncClose).
	Fsync FsyncPolicy
	// SnapshotEvery is the snapshot cadence in closed days (default 30).
	SnapshotEvery int
	// SegmentBytes rotates WAL segments at this size (default 8 MiB).
	SegmentBytes int64
	// Audit enables the tamper-evident audit trail: version-2 WAL segments
	// carrying a SHA-256 hash chain over every frame (sealed at rotation
	// and clean shutdown, linked across segments and into signed snapshots
	// and manifests), per-batch Merkle roots committed at append time, and
	// the Proof/RankReceipt/VerifyAudit APIs. The ed25519 signing key lives
	// at Dir/audit.key (created on first open; public half in Dir/audit.pub).
	// A directory must be opened with the same Audit setting it was written
	// with — the segment format version is checked, so a mismatch fails
	// loudly instead of silently dropping (or inventing) the chain.
	Audit bool
	// Hooks intercept filesystem operations; tests inject faults here.
	Hooks Hooks
}

func (p *PersistConfig) withDefaults() PersistConfig {
	out := *p
	if out.SnapshotEvery <= 0 {
		out.SnapshotEvery = 30
	}
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 8 << 20
	}
	return out
}

// RecoverInfo reports what Open reconstructed, so operators (and the
// crash-matrix tests) can see exactly how a restart resumed.
type RecoverInfo struct {
	// SnapshotLoaded is false on a fresh start or full-WAL replay. For a
	// sharded server it means a full manifest generation (every shard's
	// snapshot) loaded.
	SnapshotLoaded bool
	// SnapshotDay is the closed-through day of the loaded snapshot (cut).
	SnapshotDay cert.Day
	// ReplayedRecords and ReplayedEvents count the WAL tail behind the
	// snapshot, summed over shards. Bounded-recovery tests assert on
	// ReplayedRecords.
	ReplayedRecords int
	ReplayedEvents  int
	// RejectedEvents counts replayed events whose payload type the
	// configured ingestor cannot consume (a log written before payload
	// vetting, or under a different ingestor). They are dropped, exactly
	// as the live path rejects them before the WAL.
	RejectedEvents int
	// DroppedPartialBatches counts cross-shard batches discarded because
	// not every declared part reached its shard's log before the crash.
	// Such batches were never acknowledged to the submitter, so dropping
	// them whole restores the all-or-nothing Submit contract.
	DroppedPartialBatches int
	// TornBytes is how much of a torn tail was truncated from the last
	// segment(s) (0 after a clean shutdown), summed over shards.
	TornBytes int64
	// ClosedThrough is the last closed day after recovery. For a sharded
	// server this is the consistent cut: the maximum barrier any shard
	// durably logged, with lagging shards rolled forward (a logged
	// barrier was acknowledged only after every shard logged it, so a
	// laggard's missing suffix is always re-derivable from its own log).
	ClosedThrough cert.Day
	// BufferedEvents counts the recovered not-yet-closed events per day,
	// summed over shards. A client resuming a stream uses it to know
	// which submissions were durable (batches are logged all-or-nothing).
	BufferedEvents map[cert.Day]int
}

// Open builds a Server with persistence: it recovers any prior state from
// p.Dir (newest valid snapshot cut + WAL tail replay, truncating torn
// tails at the last valid frame), attaches the WAL appenders, and only
// then starts accepting work. An empty directory is a fresh start. The
// configuration must match the one the directory was written with (users,
// groups, start day, window, shard count) — snapshots refuse to load into
// a reshaped server, and the directory layout itself is checked against
// the shard count so an unsharded directory is never misread as sharded
// (or vice versa).
func Open(cfg Config, p PersistConfig) (*Server, *RecoverInfo, error) {
	p = p.withDefaults()
	if p.Dir == "" {
		return nil, nil, errors.New("serve: persistence requires a data directory")
	}
	walDir := filepath.Join(p.Dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		return nil, nil, err
	}
	s, err := newCore(cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, sh := range s.shards {
		if sh.ing == nil {
			continue
		}
		if _, ok := sh.ing.(StatefulIngestor); !ok {
			return nil, nil, fmt.Errorf("serve: ingestor %T does not support persistence (no SaveState/LoadState)", sh.ing)
		}
	}
	s.pcfg = &p
	s.fs = persistFS{hooks: p.Hooks}
	if p.Audit {
		priv, err := audit.LoadOrCreateKey(p.Dir)
		if err != nil {
			return nil, nil, err
		}
		s.auditPriv = priv
		s.auditIdx = make(map[uint64][]partAudit)
	}

	if err := checkLayout(p.Dir, walDir, len(s.shards)); err != nil {
		return nil, nil, err
	}
	var info *RecoverInfo
	if len(s.shards) == 1 {
		info, err = s.recover(walDir)
	} else {
		info, err = s.recoverSharded(walDir)
	}
	if err != nil {
		return nil, nil, err
	}
	s.recovery = info
	s.start()
	return s, info, nil
}

// checkLayout verifies the data directory's shard layout matches the
// configured shard count. A directory written with a different count must
// fail loudly: silently ignoring another layout's snapshots or WAL
// segments would serve a partial (or empty) state as if it were complete.
func checkLayout(dir, walDir string, nshards int) error {
	shardIdx := func(name, base string) (int, bool) {
		// base<k>-rest, e.g. "wal-shard3-00000001.log" against "wal-shard".
		rest := strings.TrimPrefix(name, base)
		if rest == name {
			return 0, false
		}
		dash := strings.IndexByte(rest, '-')
		if dash <= 0 {
			return 0, false
		}
		k := 0
		for _, c := range rest[:dash] {
			if c < '0' || c > '9' {
				return 0, false
			}
			k = k*10 + int(c-'0')
		}
		return k, true
	}
	check := func(d, base, legacyPrefix, suffix string) error {
		des, err := os.ReadDir(d)
		if err != nil {
			return err
		}
		for _, de := range des {
			name := de.Name()
			if de.IsDir() || !strings.HasSuffix(name, suffix) {
				continue
			}
			if k, ok := shardIdx(name, base); ok {
				if nshards == 1 {
					return fmt.Errorf("serve: %s belongs to a sharded data directory; configure the matching shard count", name)
				}
				if k >= nshards {
					return fmt.Errorf("serve: %s belongs to shard %d but only %d shards are configured", name, k, nshards)
				}
				continue
			}
			if nshards > 1 && strings.HasPrefix(name, legacyPrefix) {
				// Purely numeric middle = unsharded artifact.
				num := strings.TrimSuffix(strings.TrimPrefix(name, legacyPrefix), suffix)
				numeric := len(num) > 0
				for _, c := range num {
					if c < '0' || c > '9' {
						numeric = false
						break
					}
				}
				if numeric {
					return fmt.Errorf("serve: %s belongs to an unsharded data directory; configure Shards=1 (or migrate the directory)", name)
				}
			}
		}
		return nil
	}
	if nshards == 1 {
		mans, err := listManifests(dir)
		if err != nil {
			return err
		}
		if len(mans) > 0 {
			return fmt.Errorf("serve: %s is a sharded data directory (manifests present); configure the matching shard count", dir)
		}
	}
	if err := check(dir, "snapshot-shard", snapPrefix, snapSuffix); err != nil {
		return err
	}
	return check(walDir, "wal-shard", walPrefix, ".log")
}

// walScan is the outcome of scanning one WAL stream: the decoded records
// in log order, how much torn tail was truncated, and where the appender
// should attach.
type walScan struct {
	recs    []walRecord
	torn    int64
	hasSegs bool
	// attached says the last surviving segment can be resumed at
	// (lastSeq, lastEnd); otherwise a fresh segment must be opened past
	// maxSeq (and past the snapshot position).
	attached bool
	lastSeq  uint64
	lastEnd  int64
	maxSeq   uint64
}

// scanWAL reads one WAL stream (one name prefix) from walDir, enforcing
// the layout invariants — consecutive segments, snapshot position on a
// frame boundary inside an existing segment, corruption only tolerated at
// the tail — and truncating any torn tail on disk. It returns the decoded
// records past pos in log order; the caller applies them (the split lets
// a sharded recovery check cross-shard batch completeness before applying
// anything).
func (s *Server) scanWAL(walDir, prefix string, pos walPos, snapLoaded bool) (*walScan, error) {
	sc := &walScan{}
	segs, err := listSegments(walDir, prefix)
	if err != nil {
		return nil, err
	}
	sc.hasSegs = len(segs) > 0
	if len(segs) > 0 {
		sc.maxSeq = segs[len(segs)-1]
	}
	if !snapLoaded && len(segs) > 0 && segs[0] != 1 {
		return nil, fmt.Errorf("serve: WAL starts at segment %d with no snapshot — history gap", segs[0])
	}
	if snapLoaded {
		// The loaded snapshot's position must land in an existing segment:
		// pruning never removes a retained snapshot's segment, so a
		// missing one means manual deletion or over-pruning, and replaying
		// around it would silently rebuild wrong state.
		found := false
		for _, seq := range segs {
			if seq == pos.seg {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("serve: snapshot WAL position (segment %s%d) is missing from the log — history gap", prefix, pos.seg)
		}
	}
	// The replayed segments must be strictly consecutive: a missing middle
	// segment would otherwise be skipped silently and later segments would
	// replay on top of a hole.
	prevSeq := uint64(0)
	for _, seq := range segs {
		if snapLoaded && seq < pos.seg {
			continue // behind the snapshot; only an older snapshot needs it
		}
		if prevSeq != 0 && seq != prevSeq+1 {
			return nil, fmt.Errorf("serve: WAL segment %d follows %d — history gap", seq, prevSeq)
		}
		prevSeq = seq
	}
	for i, seq := range segs {
		path := walSegPath(walDir, prefix, seq)
		if snapLoaded && seq < pos.seg {
			continue // behind the snapshot; kept only for the older snapshot
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		gotSeq, frames, goodLen, hdrOK := parseSegment(data)
		last := i == len(segs)-1
		if !hdrOK || gotSeq != seq {
			if last && !hdrOK {
				// Crash during rotation: the new segment's header never
				// finished. Nothing in it was acknowledged; drop it — and
				// reuse its sequence number for the fresh segment, so an
				// audit stream's verify walk never sees a sequence gap.
				if err := s.fs.remove(path); err != nil {
					return nil, err
				}
				sc.torn += int64(len(data))
				sc.maxSeq = seq - 1
				break
			}
			return nil, fmt.Errorf("serve: WAL segment %s is corrupt (not the last segment — unrecoverable)", filepath.Base(path))
		}
		// The stream's format version must match the configured audit mode:
		// replaying an audited stream without its chain (or a plain stream
		// as if chained) would silently change the durability story.
		_, ver, _, hdrLen, _ := parseSegHeader(data)
		want := uint32(walVersion)
		if s.auditOn() {
			want = walAuditVersion
		}
		if ver != want {
			return nil, fmt.Errorf("serve: WAL segment %s has format version %d but the server is configured with audit %s — open the directory with the audit setting it was written under",
				filepath.Base(path), ver, map[bool]string{true: "on (version 2)", false: "off (version 1)"}[s.auditOn()])
		}
		from := int64(hdrLen)
		if snapLoaded && seq == pos.seg {
			from = pos.off
			if from > int64(goodLen) || !frameBoundary(frames, goodLen, from, hdrLen) {
				return nil, fmt.Errorf("serve: snapshot WAL position %d not on a frame boundary of %s", from, filepath.Base(path))
			}
		}
		for _, fr := range frames {
			if int64(fr.off) < from {
				continue
			}
			rec, err := decodeRecord(fr.payload)
			if err != nil {
				if !last {
					return nil, fmt.Errorf("serve: %s: %w", filepath.Base(path), err)
				}
				// Semantically invalid record at the tail: treat the log
				// as ending at the previous frame.
				goodLen = fr.off
				break
			}
			sc.recs = append(sc.recs, rec)
		}
		if torn := int64(len(data)) - int64(goodLen); torn > 0 {
			if !last {
				return nil, fmt.Errorf("serve: WAL segment %s has a torn tail but is not the last segment", filepath.Base(path))
			}
			if err := s.fs.truncate(path, int64(goodLen)); err != nil {
				return nil, err
			}
			sc.torn += torn
		}
		sc.lastSeq, sc.lastEnd = seq, int64(goodLen)
		sc.attached = last
	}
	return sc, nil
}

// restoreAudit re-walks one shard's surviving audit stream after scanWAL
// truncated any torn tail, verifying the whole chain (folds, seals,
// recomputed batch roots, cross-segment links, the loaded snapshot's
// attested head) and rebuilding the proof index as it goes. A divergence
// wraps ErrAuditChainBroken and fails the open: torn tails are a crash's
// honest damage and were already truncated, so whatever the tolerant walk
// still rejects — a seal that no longer matches its frames, a CRC fixed
// up over altered bytes, a forged header link — is history the chain
// contradicts. Returns the appender's audit state (chain head and frame
// count at the resume point) and the highest batch ID seen.
func (s *Server) restoreAudit(walDir, prefix string, shardIdx int, pos walPos, head audit.Head, snapLoaded bool, sc *walScan) (*walAudit, uint64, error) {
	var checks []headCheck
	if snapLoaded {
		checks = append(checks, headCheck{pos: pos, head: head, what: "the loaded snapshot"})
	}
	maxBatch := uint64(0)
	end, err := walkAuditStream(walDir, prefix, false, checks, func(rec walRecord, p walPos, pre audit.Head, root audit.Head, leaves []audit.Head) error {
		if rec.typ == recEventsPart {
			s.auditIdx[rec.batchID] = append(s.auditIdx[rec.batchID], partAudit{
				shard: shardIdx, pos: p, root: root, leaves: leaves,
			})
			if rec.batchID > maxBatch {
				maxBatch = rec.batchID
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	if sc.attached {
		if end.seq != sc.lastSeq || end.goodLen != sc.lastEnd {
			return nil, 0, fmt.Errorf("%w: audit walk of %s ends at segment %d offset %d, but recovery attached at segment %d offset %d",
				ErrAuditChainBroken, prefix, end.seq, end.goodLen, sc.lastSeq, sc.lastEnd)
		}
		return &walAudit{chain: audit.NewChain(end.head), tree: audit.NewTree(), frames: end.frames}, maxBatch, nil
	}
	// A fresh segment opens next (none survived, or a torn-header segment
	// was dropped): the chain continues from the walked end (zero on a
	// fresh stream) and the new segment's header links to it.
	return newWALAudit(end.head), maxBatch, nil
}

// attachWAL positions one appender at the end of its scanned stream:
// continue the last surviving segment, or start a new one past everything
// seen. aud is the stream's restored audit state (nil when audit is off).
func (s *Server) attachWAL(walDir, prefix string, sc *walScan, pos walPos, stats *obs.ShardStats, aud *walAudit) (*wal, error) {
	w := &wal{dir: walDir, prefix: prefix, fs: s.fs, segBytes: s.pcfg.SegmentBytes, policy: s.pcfg.Fsync, stats: stats, aud: aud}
	if sc.attached {
		if err := w.resumeSegment(sc.lastSeq, sc.lastEnd); err != nil {
			return nil, err
		}
		return w, nil
	}
	next := uint64(1)
	if sc.maxSeq >= next {
		next = sc.maxSeq + 1
	}
	if pos.seg >= next {
		next = pos.seg + 1
	}
	if err := w.openSegment(next); err != nil {
		return nil, err
	}
	return w, nil
}

// recover restores an unsharded (Shards=1) server from the data directory
// and leaves the WAL appender positioned at the end of the last valid
// frame.
func (s *Server) recover(walDir string) (*RecoverInfo, error) {
	info := &RecoverInfo{}

	// 1. Newest valid snapshot wins; a corrupt one falls back a
	// generation (state is rebuilt from scratch per attempt so a
	// half-loaded corrupt snapshot can't leak into the next try).
	snaps, err := listSnapshots(s.pcfg.Dir, snapPrefix)
	if err != nil {
		return nil, err
	}
	var pos walPos
	var baseHead audit.Head
	loadErrs := make([]error, 0, len(snaps))
	for i, e := range snaps {
		if i > 0 {
			if s.cfg.Ingestor != nil {
				// A caller-provided ingestor may have been half-mutated
				// by the failed load and cannot be rebuilt here.
				break
			}
			fresh, err := newCore(s.cfg)
			if err != nil {
				return nil, err
			}
			s.adoptCore(fresh)
		}
		day, p, head, err := s.loadSnapshot(e.path, s.shards[0], s.grp != nil)
		if err != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %w", filepath.Base(e.path), err))
			continue
		}
		info.SnapshotLoaded = true
		info.SnapshotDay = day
		s.closedThrough = day
		pos = p
		baseHead = head
		break
	}
	if len(snaps) > 0 && !info.SnapshotLoaded {
		// Snapshots exist but none load, and the WAL behind them is
		// pruned: recovering from the WAL alone would silently rebuild
		// wrong state. Fail loudly instead.
		return nil, fmt.Errorf("serve: no usable snapshot in %s: %w", s.pcfg.Dir, errors.Join(loadErrs...))
	}
	if !info.SnapshotLoaded && len(loadErrs) > 0 {
		fresh, err := newCore(s.cfg)
		if err != nil {
			return nil, err
		}
		s.adoptCore(fresh)
	}

	// 2. Replay the WAL tail behind the snapshot position.
	sc, err := s.scanWAL(walDir, walPrefix, pos, info.SnapshotLoaded)
	if err != nil {
		return nil, err
	}
	info.TornBytes = sc.torn
	maxBatch := uint64(0)
	for _, rec := range sc.recs {
		if rec.typ == recSeal || rec.typ == recReceipt {
			continue // audit bookkeeping, not state
		}
		if rec.typ == recEventsPart && rec.batchID > maxBatch {
			maxBatch = rec.batchID
		}
		if err := s.applyRecord(rec, info); err != nil {
			return nil, err
		}
		info.ReplayedRecords++
	}

	// 3. Verify the audit chain over everything that survived and attach
	// the appender. The chain walk runs after scanWAL truncated any torn
	// tail: what it still rejects is tampering, not crash damage, and the
	// open fails with ErrAuditChainBroken.
	var aud *walAudit
	if s.auditOn() {
		var walked uint64
		aud, walked, err = s.restoreAudit(walDir, walPrefix, 0, pos, baseHead, info.SnapshotLoaded, sc)
		if err != nil {
			return nil, err
		}
		// The walk covers retained segments behind the snapshot too, so it
		// sees every batch ID that could still collide with a fresh one.
		if walked > maxBatch {
			maxBatch = walked
		}
		s.nextBatch.Store(maxBatch)
	}
	s.shards[0].wal, err = s.attachWAL(walDir, walPrefix, sc, pos, s.shards[0].stats, aud)
	if err != nil {
		return nil, err
	}

	// 4. Snapshot cadence resumes from what is already covered.
	base := s.cfg.Start - 1
	if info.SnapshotLoaded {
		base = info.SnapshotDay
	}
	s.daysSinceSnap = int(s.closedThrough - base)

	info.ClosedThrough = s.closedThrough
	info.BufferedEvents = make(map[cert.Day]int, len(s.shards[0].buffered))
	for d, evs := range s.shards[0].buffered {
		info.BufferedEvents[d] = len(evs)
	}
	return info, nil
}

// recoverSharded restores a sharded server: newest manifest whose every
// shard snapshot loads, per-shard WAL tail scans, a cross-shard batch
// completeness check, per-shard replay, a roll-forward of lagging shards
// to the consistent cut, and a rebuild of the merged view and group state.
func (s *Server) recoverSharded(walDir string) (*RecoverInfo, error) {
	info := &RecoverInfo{}

	// 1. Newest manifest whose full generation loads wins. The shard
	// snapshots of one generation load all-or-nothing: mixing generations
	// would mix cuts.
	mans, err := listManifests(s.pcfg.Dir)
	if err != nil {
		return nil, err
	}
	base := s.cfg.Start - 1
	basePos := make([]walPos, len(s.shards))
	baseHead := make([]audit.Head, len(s.shards))
	baseHWM := uint64(0)
	loadErrs := make([]error, 0, len(mans))
	for i, m := range mans {
		if i > 0 {
			fresh, err := newCore(s.cfg)
			if err != nil {
				return nil, err
			}
			s.adoptCore(fresh)
		}
		mi, err := loadManifestInfo(m.path)
		if err != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %w", filepath.Base(m.path), err))
			continue
		}
		if mi.shards != len(s.shards) {
			// A config/layout mismatch, not corruption: falling back would
			// silently recover an older cut of a differently-sharded
			// directory.
			return nil, fmt.Errorf("serve: manifest %s pins %d shards, %d configured", filepath.Base(m.path), mi.shards, len(s.shards))
		}
		wantVer := uint32(manifestVersion)
		if s.auditOn() {
			wantVer = manifestAuditVersion
		}
		if mi.version != wantVer {
			// Same class of mismatch as the WAL format version: the
			// directory was written under a different audit setting.
			return nil, fmt.Errorf("serve: manifest %s has format version %d but the server is configured with audit %v — open the directory with the audit setting it was written under",
				filepath.Base(m.path), mi.version, s.auditOn())
		}
		if s.auditOn() && !mi.verifySig(s.auditPub()) {
			// The CRC passed but the signature does not: the manifest body
			// was altered and re-checksummed (or signed by another key).
			// Not a fallback case — attested history is contradicted.
			return nil, fmt.Errorf("%w: manifest %s signature invalid (key %s)", ErrAuditChainBroken, filepath.Base(m.path), audit.Fingerprint(s.auditPub()))
		}
		if mi.day != m.day {
			loadErrs = append(loadErrs, fmt.Errorf("%s: pinned day %d does not match its name", filepath.Base(m.path), int64(mi.day)))
			continue
		}
		day := mi.day
		ok := true
		for k, sh := range s.shards {
			path := snapPath(s.pcfg.Dir, snapShardPrefix(k), day)
			d, p, head, err := s.loadSnapshot(path, sh, k == 0 && s.hasGroups)
			if err != nil {
				loadErrs = append(loadErrs, fmt.Errorf("%s: %w", filepath.Base(path), err))
				ok = false
				break
			}
			if d != day {
				loadErrs = append(loadErrs, fmt.Errorf("%s: snapshot day %d does not match manifest day %d", filepath.Base(path), int64(d), int64(day)))
				ok = false
				break
			}
			if s.auditOn() && head != mi.heads[k] {
				// Both artifacts verified their own signatures yet disagree
				// about the chain head at the cut: one of them is a re-signed
				// forgery or a mixed-generation splice.
				return nil, fmt.Errorf("%w: %s attests a chain head that does not match manifest %s", ErrAuditChainBroken, filepath.Base(path), filepath.Base(m.path))
			}
			basePos[k] = p
			baseHead[k] = head
		}
		if !ok {
			continue
		}
		info.SnapshotLoaded = true
		info.SnapshotDay = day
		base = day
		baseHWM = mi.batchHWM
		s.closedThrough = day
		break
	}
	if len(mans) > 0 && !info.SnapshotLoaded {
		return nil, fmt.Errorf("serve: no usable snapshot cut in %s: %w", s.pcfg.Dir, errors.Join(loadErrs...))
	}
	if !info.SnapshotLoaded && len(loadErrs) > 0 {
		fresh, err := newCore(s.cfg)
		if err != nil {
			return nil, err
		}
		s.adoptCore(fresh)
	}

	// 2. Scan every shard's WAL tail. A shard whose entire stream is
	// missing while a sibling has history is a loud failure: replaying
	// around it would silently serve a partial state.
	scans := make([]*walScan, len(s.shards))
	anySegs := false
	for k := range s.shards {
		pos := walPos{}
		if info.SnapshotLoaded {
			pos = basePos[k]
		}
		sc, err := s.scanWAL(walDir, walShardPrefix(k), pos, info.SnapshotLoaded)
		if err != nil {
			return nil, err
		}
		scans[k] = sc
		anySegs = anySegs || sc.hasSegs
		info.TornBytes += sc.torn
	}
	if !info.SnapshotLoaded && anySegs {
		for k, sc := range scans {
			if !sc.hasSegs {
				return nil, fmt.Errorf("serve: shard %d WAL is missing while other shards have history — history gap", k)
			}
		}
	}

	// 3. Cross-shard batch completeness: a batch is durable only when all
	// of its declared parts are on disk. Incomplete batches (a crash
	// mid-fan-out) were never acknowledged; drop every surviving part.
	type batchCount struct {
		parts uint32
		seen  uint32
	}
	counts := make(map[uint64]*batchCount)
	maxBatch := uint64(0)
	for k, sc := range scans {
		for _, rec := range sc.recs {
			switch rec.typ {
			case recEvents:
				return nil, fmt.Errorf("serve: shard %d WAL holds an unsharded event record — layout mismatch", k)
			case recEventsPart:
				c := counts[rec.batchID]
				if c == nil {
					c = &batchCount{parts: rec.parts}
					counts[rec.batchID] = c
				} else if c.parts != rec.parts {
					return nil, fmt.Errorf("serve: batch %d declares conflicting part counts (%d vs %d)", rec.batchID, c.parts, rec.parts)
				}
				c.seen++
				if c.seen > c.parts {
					return nil, fmt.Errorf("serve: batch %d has more parts than its declared %d", rec.batchID, c.parts)
				}
				if rec.batchID > maxBatch {
					maxBatch = rec.batchID
				}
			}
		}
	}
	dropped := make(map[uint64]bool)
	for id, c := range counts {
		if c.seen != c.parts {
			dropped[id] = true
		}
	}
	info.DroppedPartialBatches = len(dropped)
	// Seed batch numbering past everything ever issued. The tails' max
	// alone is not enough: after a clean shutdown right behind a snapshot
	// the tails are empty, and restarting IDs at 1 would collide with IDs
	// baked behind the snapshot positions — a later recovery forced to
	// fall back a manifest generation would scan frames from both boots
	// under one ID and die on the part-count conflict, making an otherwise
	// recoverable directory unrecoverable. The manifest's high-water mark
	// covers every ID behind the cut.
	if baseHWM > maxBatch {
		maxBatch = baseHWM
	}
	s.nextBatch.Store(maxBatch)

	// 4. Apply each shard's records in its own log order.
	for k, sh := range s.shards {
		for _, rec := range scans[k].recs {
			switch rec.typ {
			case recEventsPart:
				if dropped[rec.batchID] {
					continue
				}
				s.shardApplyEvents(sh, rec.events, info)
			case recClose:
				if err := s.shardCloseDays(sh, rec.day); err != nil {
					return nil, err
				}
			case recSeal, recReceipt:
				continue // audit bookkeeping, not state
			default:
				return nil, fmt.Errorf("serve: unknown WAL record type %d", rec.typ)
			}
			info.ReplayedRecords++
		}
	}

	// 5. The consistent cut is the maximum barrier any shard logged: a
	// close is acknowledged only after every shard durably logged it, so
	// a lagging shard's missing barrier was either unacknowledged (safe
	// to apply — its events for those days are all on its own log) or
	// lost with an acknowledged barrier's sync, which the fsync-at-
	// barrier policy rules out. Rolling laggards forward is idempotent:
	// a later recovery replays the same records to the same cut.
	cut := s.cfg.Start - 1
	for _, sh := range s.shards {
		if sh.closedThrough > cut {
			cut = sh.closedThrough
		}
	}
	for _, sh := range s.shards {
		if err := s.shardCloseDays(sh, cut); err != nil {
			return nil, err
		}
	}

	// 6. Rebuild the published generation: group state from the
	// snapshot's base day forward (the exact per-day operation order of
	// the live merge), then the merged view (pure bit-copies of the shard
	// deviations). The shadow generation stays empty — the first live
	// merge catches it up from the published one by bit-copy.
	pub := s.gen.Load()
	for d := base + 1; d <= cut; d++ {
		if pub.grpTbl != nil {
			if err := pub.grpTbl.EnsureDay(d); err != nil {
				return nil, err
			}
			s.fillGroupDayInto(pub.grpTbl, d)
		}
		if pub.grp != nil {
			if err := pub.grp.Advance(); err != nil {
				return nil, err
			}
		}
	}
	for d := pub.view.FirstDay(); d <= cut; d++ {
		day := d
		s.appendViewDay(pub.view, func(u, feat, frame int) float64 {
			return s.shards[s.userShard[u]].sigma(s.userLocal[u], feat, frame, day)
		})
	}
	pub.closedThrough = cut
	s.closedThrough = cut

	// 7. Verify each shard's audit chain over everything that survived,
	// rebuild the proof index, and attach the appenders.
	for k, sh := range s.shards {
		pos := walPos{}
		if info.SnapshotLoaded {
			pos = basePos[k]
		}
		var aud *walAudit
		if s.auditOn() {
			var walked uint64
			var err error
			aud, walked, err = s.restoreAudit(walDir, walShardPrefix(k), k, pos, baseHead[k], info.SnapshotLoaded, scans[k])
			if err != nil {
				return nil, err
			}
			if walked > maxBatch {
				maxBatch = walked
				s.nextBatch.Store(maxBatch)
			}
		}
		var err error
		sh.wal, err = s.attachWAL(walDir, walShardPrefix(k), scans[k], pos, sh.stats, aud)
		if err != nil {
			return nil, err
		}
	}
	if s.auditOn() {
		// A dropped partial batch was never acknowledged; it must not be
		// provable either.
		for id := range dropped {
			delete(s.auditIdx, id)
		}
	}

	// 8. Snapshot cadence resumes from what is already covered.
	s.daysSinceSnap = int(cut - base)

	info.ClosedThrough = cut
	info.BufferedEvents = make(map[cert.Day]int)
	for _, sh := range s.shards {
		for d, evs := range sh.buffered {
			info.BufferedEvents[d] += len(evs)
		}
	}
	return info, nil
}

// frameBoundary reports whether off is a frame start or the end of the
// valid prefix. hdrLen is the segment's header length (format-version
// dependent).
func frameBoundary(frames []walFrame, goodLen int, off int64, hdrLen int) bool {
	if off == int64(hdrLen) || off == int64(goodLen) {
		return true
	}
	for _, fr := range frames {
		if int64(fr.off) == off {
			return true
		}
	}
	return false
}

// shardApplyEvents buffers replayed events into one shard through the
// same filters the live path uses.
func (s *Server) shardApplyEvents(sh *shard, events []Event, info *RecoverInfo) {
	for _, e := range events {
		if s.checkEvent(e) != nil {
			// The ingestor cannot consume this payload type (logged
			// before payload vetting existed, or a foreign log). Drop
			// it exactly as the live path now rejects it pre-WAL —
			// failing recovery would make the directory permanently
			// unrecoverable over one bad batch.
			info.RejectedEvents++
			continue
		}
		d := e.Day()
		if d <= sh.closedThrough {
			// Cannot happen for a log the server wrote (events are
			// filtered before logging); tolerate it the same way.
			sh.late.Add(1)
			continue
		}
		sh.buffered[d] = append(sh.buffered[d], e)
		sh.ingested.Add(1)
		info.ReplayedEvents++
	}
}

// applyRecord re-applies one WAL record through the same code paths the
// live drain loop uses — minus the re-append (unsharded replay). Replay
// is deterministic: events were logged post-late-filter, and close
// barriers advance closedThrough in the same order, so the rebuilt state
// matches the pre-crash state bit for bit.
func (s *Server) applyRecord(rec walRecord, info *RecoverInfo) error {
	switch rec.typ {
	case recEvents:
		s.shardApplyEvents(s.shards[0], rec.events, info)
		return nil
	case recEventsPart:
		// An audited unsharded stream logs every batch as a one-part part
		// record so the batch ID keys the proof index. A multi-part record
		// here is a sharded directory misread as unsharded.
		if rec.parts != 1 {
			return errors.New("serve: WAL holds a sharded batch part in an unsharded log — layout mismatch")
		}
		s.shardApplyEvents(s.shards[0], rec.events, info)
		return nil
	case recClose:
		return s.closeDays(rec.day)
	default:
		return fmt.Errorf("serve: unknown WAL record type %d", rec.typ)
	}
}

// LastRecovery returns what Open reconstructed, or nil when the server
// was built without persistence.
func (s *Server) LastRecovery() *RecoverInfo { return s.recovery }
