package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"time"

	"acobe/internal/cert"
	"acobe/internal/obs"
)

// Write-ahead log format. A WAL is a directory of segment files
// wal-<seq>.log (wal-shard<k>-<seq>.log when the server runs more than
// one shard — each shard appends to its own segment stream), each:
//
//	header  "ACWL" | version u32 LE | seq u64 LE          (16 bytes)
//	frame*  len u32 LE | crc32(payload) u32 LE | payload
//
// where payload[0] is the record type (events or day-close) and the rest
// is the record body. Records are applied to memory only after the frame
// hit the log (WAL-before-apply), so on restart "replay every valid frame"
// reconstructs exactly the applied state. A torn tail — a frame cut short
// or bit-flipped by a crash — fails its length or CRC check; the reader
// stops at the last valid frame and recovery truncates the file there.
// Segments rotate at a size threshold so snapshots can prune whole files.

const (
	walMagic      = "ACWL"
	walVersion    = 1
	walHeaderSize = 16
	// maxWALRecord caps a frame's payload length. Nothing legitimate comes
	// close; a larger length prefix is corruption and must not turn into a
	// giant allocation.
	maxWALRecord = 1 << 26

	recEvents byte = 1 // payload: type byte + JSON array of Event
	recClose  byte = 2 // payload: type byte + day i64 LE
	// recEventsPart is one shard's slice of a cross-shard ingest batch:
	// type byte + batch ID u64 LE + part count u32 LE + JSON array of
	// Event. A batch split across N shard logs is durable only when all
	// `parts` frames exist; recovery drops batches with missing parts
	// (they were never acknowledged), which restores the all-or-nothing
	// Submit contract across shards. A part is logged even when the
	// shard's slice was entirely late-filtered, so the count is always
	// reachable for a batch that completed.
	recEventsPart byte = 3

	// partHeaderSize is recEventsPart's fixed prefix: type + batch ID +
	// part count.
	partHeaderSize = 1 + 8 + 4
)

// walRecord is one decoded WAL record.
type walRecord struct {
	typ     byte
	events  []Event  // recEvents, recEventsPart
	day     cert.Day // recClose
	batchID uint64   // recEventsPart
	parts   uint32   // recEventsPart
}

// walFrame is one framing-valid frame located inside a segment image.
type walFrame struct {
	off     int // byte offset of the frame start within the segment
	payload []byte
}

// encodeFrame frames a payload: length, CRC32-IEEE of the payload, payload.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf
}

// parseSegment scans a whole segment image and returns the header's
// sequence number, every framing-valid frame in order, the byte length of
// the valid prefix (header + whole valid frames), and whether the header
// itself was valid. It never panics and never reads past data: scanning
// stops at the first short, oversized, or CRC-mismatched frame, which is
// how a torn tail is found. Frame payloads alias data.
func parseSegment(data []byte) (seq uint64, frames []walFrame, goodLen int, hdrOK bool) {
	if len(data) < walHeaderSize ||
		string(data[:4]) != walMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != walVersion {
		return 0, nil, 0, false
	}
	seq = binary.LittleEndian.Uint64(data[8:16])
	goodLen = walHeaderSize
	for {
		rest := data[goodLen:]
		if len(rest) < 8 {
			return seq, frames, goodLen, true
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n == 0 || n > maxWALRecord || uint64(n) > uint64(len(rest)-8) {
			return seq, frames, goodLen, true
		}
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			return seq, frames, goodLen, true
		}
		frames = append(frames, walFrame{off: goodLen, payload: payload})
		goodLen += 8 + int(n)
	}
}

// decodeRecord decodes a framing-valid payload. A CRC-valid frame whose
// body does not decode is corruption (or a foreign format), reported as an
// error — never a panic.
func decodeRecord(payload []byte) (walRecord, error) {
	if len(payload) == 0 {
		return walRecord{}, fmt.Errorf("serve: empty WAL record")
	}
	switch payload[0] {
	case recEvents:
		var evs []Event
		if err := json.Unmarshal(payload[1:], &evs); err != nil {
			return walRecord{}, fmt.Errorf("serve: WAL event record: %w", err)
		}
		for _, e := range evs {
			if !e.Valid() {
				return walRecord{}, fmt.Errorf("serve: WAL event record holds invalid event")
			}
		}
		return walRecord{typ: recEvents, events: evs}, nil
	case recEventsPart:
		if len(payload) < partHeaderSize {
			return walRecord{}, fmt.Errorf("serve: WAL part record has %d bytes, want ≥ %d", len(payload), partHeaderSize)
		}
		rec := walRecord{
			typ:     recEventsPart,
			batchID: binary.LittleEndian.Uint64(payload[1:9]),
			parts:   binary.LittleEndian.Uint32(payload[9:13]),
		}
		if rec.parts == 0 {
			return walRecord{}, fmt.Errorf("serve: WAL part record declares zero parts")
		}
		if err := json.Unmarshal(payload[partHeaderSize:], &rec.events); err != nil {
			return walRecord{}, fmt.Errorf("serve: WAL part record: %w", err)
		}
		for _, e := range rec.events {
			if !e.Valid() {
				return walRecord{}, fmt.Errorf("serve: WAL part record holds invalid event")
			}
		}
		return rec, nil
	case recClose:
		if len(payload) != 9 {
			return walRecord{}, fmt.Errorf("serve: WAL close record has %d body bytes, want 8", len(payload)-1)
		}
		return walRecord{typ: recClose, day: cert.Day(int64(binary.LittleEndian.Uint64(payload[1:])))}, nil
	default:
		return walRecord{}, fmt.Errorf("serve: unknown WAL record type %d", payload[0])
	}
}

// walPos addresses a frame boundary in the log: byte offset off within
// segment seg. Snapshots record the position their state corresponds to;
// replay resumes there.
type walPos struct {
	seg uint64
	off int64
}

// wal is the appender over the current segment. It is owned by one
// goroutine (the drain loop; the recovery path before the loop starts).
type wal struct {
	dir string
	// prefix is the segment-name prefix: walPrefix for an unsharded
	// server (and shard 0 of a Shards=1 server — identical on-disk
	// artifacts), or "wal-shard<k>-" for shard k of a sharded one.
	prefix   string
	fs       persistFS
	segBytes int64
	policy   FsyncPolicy
	// stats, when non-nil, is the owning shard's recording cell: append
	// traffic and fsync latency land there.
	stats *obs.ShardStats

	seq uint64
	f   WritableFile
	off int64
}

// walPrefix is the unsharded (legacy, Shards=1) segment-name prefix.
const walPrefix = "wal-"

// walShardPrefix names shard k's segment stream.
func walShardPrefix(k int) string { return fmt.Sprintf("wal-shard%d-", k) }

func walSegPath(dir, prefix string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d.log", prefix, seq))
}

// openSegment starts a fresh segment with the given sequence number.
func (w *wal) openSegment(seq uint64) error {
	f, err := w.fs.create(walSegPath(w.dir, w.prefix, seq))
	if err != nil {
		return err
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	// Make the segment's directory entry durable: fsyncing frame data into
	// a file whose entry a power loss can drop would void acknowledged
	// barriers.
	if err := w.fs.syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.seq, w.off = f, seq, walHeaderSize
	return nil
}

// resumeSegment attaches the appender to an existing segment known to end
// at a frame boundary at size bytes.
func (w *wal) resumeSegment(seq uint64, size int64) error {
	f, err := w.fs.appendTo(walSegPath(w.dir, w.prefix, seq))
	if err != nil {
		return err
	}
	w.f, w.seq, w.off = f, seq, size
	return nil
}

// append frames one payload into the log, rotating to a new segment first
// when the current one is full. Returns only after the frame is written
// (and synced, under FsyncAlways).
func (w *wal) append(payload []byte) error {
	if len(payload) > maxWALRecord {
		return fmt.Errorf("serve: WAL record of %d bytes exceeds cap %d", len(payload), maxWALRecord)
	}
	frame := encodeFrame(payload)
	if w.off > walHeaderSize && w.off+int64(len(frame)) > w.segBytes {
		if err := w.syncFile(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f = nil
		if err := w.openSegment(w.seq + 1); err != nil {
			return err
		}
	}
	n, err := w.f.Write(frame)
	w.off += int64(n)
	if err != nil {
		return err
	}
	w.stats.AddWALAppend(len(frame))
	if w.policy == FsyncAlways {
		return w.syncFile()
	}
	return nil
}

// encodeEventsPayload encodes one ingest batch as a single recEvents
// payload: the batch is durable all-or-nothing, which is what lets a
// client treat a Submit ack as "this batch survives a crash". The caller
// checks the encoded size against maxWALRecord before appending, so an
// oversized batch is a plain rejection rather than a latched persistence
// failure.
func encodeEventsPayload(events []Event) ([]byte, error) {
	body, err := json.Marshal(events)
	if err != nil {
		return nil, fmt.Errorf("serve: encode WAL events: %w", err)
	}
	payload := make([]byte, 1+len(body))
	payload[0] = recEvents
	copy(payload[1:], body)
	return payload, nil
}

// encodePartPayload encodes one shard's slice of a cross-shard batch as a
// recEventsPart payload. events may be empty (a slice the late filter
// consumed entirely): the frame still ships so the batch's part count
// stays reachable on replay.
func encodePartPayload(batchID uint64, parts uint32, events []Event) ([]byte, error) {
	body, err := json.Marshal(events)
	if err != nil {
		return nil, fmt.Errorf("serve: encode WAL events: %w", err)
	}
	payload := make([]byte, partHeaderSize+len(body))
	payload[0] = recEventsPart
	binary.LittleEndian.PutUint64(payload[1:9], batchID)
	binary.LittleEndian.PutUint32(payload[9:13], parts)
	copy(payload[partHeaderSize:], body)
	return payload, nil
}

// appendClose logs a close-through-day barrier.
func (w *wal) appendClose(d cert.Day) error {
	var payload [9]byte
	payload[0] = recClose
	binary.LittleEndian.PutUint64(payload[1:], uint64(int64(d)))
	return w.append(payload[:])
}

// pos returns the current append position (a frame boundary).
func (w *wal) pos() walPos { return walPos{seg: w.seq, off: w.off} }

// sync flushes the current segment.
func (w *wal) sync() error {
	if w.f == nil {
		return nil
	}
	return w.syncFile()
}

// syncFile fsyncs the open segment, timing the call when a recording
// cell is attached. The clock is read only on the instrumented path.
func (w *wal) syncFile() error {
	if w.stats == nil {
		return w.f.Sync()
	}
	start := time.Now()
	err := w.f.Sync()
	if err == nil {
		w.stats.ObserveFsync(start)
	}
	return err
}

// close syncs and closes the current segment.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.syncFile()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
