package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"time"

	"acobe/internal/audit"
	"acobe/internal/cert"
	"acobe/internal/obs"
)

// Write-ahead log format. A WAL is a directory of segment files
// wal-<seq>.log (wal-shard<k>-<seq>.log when the server runs more than
// one shard — each shard appends to its own segment stream), each:
//
//	header  "ACWL" | version u32 LE | seq u64 LE          (16 bytes)
//	frame*  len u32 LE | crc32(payload) u32 LE | payload
//
// where payload[0] is the record type (events or day-close) and the rest
// is the record body. Records are applied to memory only after the frame
// hit the log (WAL-before-apply), so on restart "replay every valid frame"
// reconstructs exactly the applied state. A torn tail — a frame cut short
// or bit-flipped by a crash — fails its length or CRC check; the reader
// stops at the last valid frame and recovery truncates the file there.
// Segments rotate at a size threshold so snapshots can prune whole files.

const (
	walMagic      = "ACWL"
	walVersion    = 1
	walHeaderSize = 16
	// walAuditVersion marks an audit-enabled segment stream. Its header
	// grows a 32-byte chain-link field: the sealed SHA-256 chain head of
	// the previous segment (zero for the first segment of a stream), so
	// the hash chain spans segment boundaries. Audit off keeps writing
	// version-1 segments byte-identically; the two versions never mix in
	// one stream.
	walAuditVersion    = 2
	walAuditHeaderSize = walHeaderSize + audit.HeadSize
	// maxWALRecord caps a frame's payload length. Nothing legitimate comes
	// close; a larger length prefix is corruption and must not turn into a
	// giant allocation.
	maxWALRecord = 1 << 26

	recEvents byte = 1 // payload: type byte + JSON array of Event
	recClose  byte = 2 // payload: type byte + day i64 LE
	// recEventsPart is one shard's slice of a cross-shard ingest batch:
	// type byte + batch ID u64 LE + part count u32 LE + JSON array of
	// Event. A batch split across N shard logs is durable only when all
	// `parts` frames exist; recovery drops batches with missing parts
	// (they were never acknowledged), which restores the all-or-nothing
	// Submit contract across shards. A part is logged even when the
	// shard's slice was entirely late-filtered, so the count is always
	// reachable for a batch that completed.
	recEventsPart byte = 3
	// recSeal is a segment seal (audit streams only): type byte + an
	// audit.Seal — the chain head over every prior frame of the segment.
	// Written as the final frame before rotation and at clean shutdown,
	// and folded into the chain itself so the next segment's header link
	// covers it. Replay treats it as a no-op.
	recSeal byte = 4
	// recReceipt is a signed rank receipt (audit streams only): type byte
	// + an audit.Receipt. Replay treats it as a no-op; the offline
	// verifier checks its signature and chain anchoring.
	recReceipt byte = 5

	// partHeaderSize is recEventsPart's fixed prefix: type + batch ID +
	// part count.
	partHeaderSize = 1 + 8 + 4
)

// walRecord is one decoded WAL record.
type walRecord struct {
	typ     byte
	events  []Event       // recEvents, recEventsPart
	day     cert.Day      // recClose
	batchID uint64        // recEventsPart
	parts   uint32        // recEventsPart
	seal    audit.Seal    // recSeal
	receipt audit.Receipt // recReceipt
}

// walFrame is one framing-valid frame located inside a segment image.
type walFrame struct {
	off     int // byte offset of the frame start within the segment
	payload []byte
}

// encodeFrame frames a payload: length, CRC32-IEEE of the payload, payload.
func encodeFrame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf
}

// parseSegment scans a whole segment image and returns the header's
// sequence number, every framing-valid frame in order, the byte length of
// the valid prefix (header + whole valid frames), and whether the header
// itself was valid. It never panics and never reads past data: scanning
// stops at the first short, oversized, or CRC-mismatched frame, which is
// how a torn tail is found. Frame payloads alias data.
func parseSegment(data []byte) (seq uint64, frames []walFrame, goodLen int, hdrOK bool) {
	seq, _, _, hdrLen, ok := parseSegHeader(data)
	if !ok {
		return 0, nil, 0, false
	}
	goodLen = hdrLen
	for {
		rest := data[goodLen:]
		if len(rest) < 8 {
			return seq, frames, goodLen, true
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		if n == 0 || n > maxWALRecord || uint64(n) > uint64(len(rest)-8) {
			return seq, frames, goodLen, true
		}
		payload := rest[8 : 8+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			return seq, frames, goodLen, true
		}
		frames = append(frames, walFrame{off: goodLen, payload: payload})
		goodLen += 8 + int(n)
	}
}

// parseSegHeader validates a segment header, returning the sequence
// number, format version, previous-segment chain link (version 2 only;
// zero for version 1), and header length. ok is false for a header of
// the wrong magic, an unknown version, or one cut short.
func parseSegHeader(data []byte) (seq uint64, version uint32, prevHead audit.Head, hdrLen int, ok bool) {
	if len(data) < walHeaderSize || string(data[:4]) != walMagic {
		return 0, 0, audit.Head{}, 0, false
	}
	version = binary.LittleEndian.Uint32(data[4:8])
	switch version {
	case walVersion:
		hdrLen = walHeaderSize
	case walAuditVersion:
		if len(data) < walAuditHeaderSize {
			return 0, 0, audit.Head{}, 0, false
		}
		hdrLen = walAuditHeaderSize
		copy(prevHead[:], data[walHeaderSize:walAuditHeaderSize])
	default:
		return 0, 0, audit.Head{}, 0, false
	}
	seq = binary.LittleEndian.Uint64(data[8:16])
	return seq, version, prevHead, hdrLen, true
}

// decodeRecord decodes a framing-valid payload. A CRC-valid frame whose
// body does not decode is corruption (or a foreign format), reported as an
// error — never a panic.
func decodeRecord(payload []byte) (walRecord, error) {
	if len(payload) == 0 {
		return walRecord{}, fmt.Errorf("serve: empty WAL record")
	}
	switch payload[0] {
	case recEvents:
		var evs []Event
		if err := json.Unmarshal(payload[1:], &evs); err != nil {
			return walRecord{}, fmt.Errorf("serve: WAL event record: %w", err)
		}
		for _, e := range evs {
			if !e.Valid() {
				return walRecord{}, fmt.Errorf("serve: WAL event record holds invalid event")
			}
		}
		return walRecord{typ: recEvents, events: evs}, nil
	case recEventsPart:
		if len(payload) < partHeaderSize {
			return walRecord{}, fmt.Errorf("serve: WAL part record has %d bytes, want ≥ %d", len(payload), partHeaderSize)
		}
		rec := walRecord{
			typ:     recEventsPart,
			batchID: binary.LittleEndian.Uint64(payload[1:9]),
			parts:   binary.LittleEndian.Uint32(payload[9:13]),
		}
		if rec.parts == 0 {
			return walRecord{}, fmt.Errorf("serve: WAL part record declares zero parts")
		}
		if err := json.Unmarshal(payload[partHeaderSize:], &rec.events); err != nil {
			return walRecord{}, fmt.Errorf("serve: WAL part record: %w", err)
		}
		for _, e := range rec.events {
			if !e.Valid() {
				return walRecord{}, fmt.Errorf("serve: WAL part record holds invalid event")
			}
		}
		return rec, nil
	case recClose:
		if len(payload) != 9 {
			return walRecord{}, fmt.Errorf("serve: WAL close record has %d body bytes, want 8", len(payload)-1)
		}
		return walRecord{typ: recClose, day: cert.Day(int64(binary.LittleEndian.Uint64(payload[1:])))}, nil
	case recSeal:
		s, err := audit.DecodeSeal(payload[1:])
		if err != nil {
			return walRecord{}, fmt.Errorf("serve: WAL seal record: %w", err)
		}
		return walRecord{typ: recSeal, seal: s}, nil
	case recReceipt:
		rc, err := audit.DecodeReceipt(payload[1:])
		if err != nil {
			return walRecord{}, fmt.Errorf("serve: WAL receipt record: %w", err)
		}
		return walRecord{typ: recReceipt, receipt: rc}, nil
	default:
		return walRecord{}, fmt.Errorf("serve: unknown WAL record type %d", payload[0])
	}
}

// walPos addresses a frame boundary in the log: byte offset off within
// segment seg. Snapshots record the position their state corresponds to;
// replay resumes there.
type walPos struct {
	seg uint64
	off int64
}

// wal is the appender over the current segment. It is owned by one
// goroutine (the drain loop; the recovery path before the loop starts).
type wal struct {
	dir string
	// prefix is the segment-name prefix: walPrefix for an unsharded
	// server (and shard 0 of a Shards=1 server — identical on-disk
	// artifacts), or "wal-shard<k>-" for shard k of a sharded one.
	prefix   string
	fs       persistFS
	segBytes int64
	policy   FsyncPolicy
	// stats, when non-nil, is the owning shard's recording cell: append
	// traffic and fsync latency land there.
	stats *obs.ShardStats
	// aud, when non-nil, makes this an audit stream: version-2 segment
	// headers, every frame folded into the chain, seals at rotation and
	// clean close. Nil keeps the on-disk format byte-identical to the
	// pre-audit layout.
	aud *walAudit

	seq uint64
	f   WritableFile
	off int64
	// lastPos is the start position of the most recently appended frame
	// (valid after a successful append; the proof index records it).
	lastPos walPos
}

// walAudit is the per-stream audit state: the running chain, the Merkle
// scratch tree for event batches, and the frame count of the open
// segment (what the next seal will claim).
type walAudit struct {
	chain  *audit.Chain
	tree   *audit.Tree
	frames uint32
	// root/haveRoot carry the batch root between appendEvents and the
	// fold inside appendWith.
	root     audit.Head
	haveRoot bool
}

// newWALAudit starts audit state at prev (zero for a fresh stream).
func newWALAudit(prev audit.Head) *walAudit {
	return &walAudit{chain: audit.NewChain(prev), tree: audit.NewTree()}
}

// head returns the wal's current chain head (zero when audit is off).
func (w *wal) head() audit.Head {
	if w.aud == nil {
		return audit.Head{}
	}
	return w.aud.chain.Head()
}

// hdrSize returns the segment header length this stream writes.
func (w *wal) hdrSize() int64 {
	if w.aud != nil {
		return walAuditHeaderSize
	}
	return walHeaderSize
}

// walPrefix is the unsharded (legacy, Shards=1) segment-name prefix.
const walPrefix = "wal-"

// walShardPrefix names shard k's segment stream.
func walShardPrefix(k int) string { return fmt.Sprintf("wal-shard%d-", k) }

func walSegPath(dir, prefix string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d.log", prefix, seq))
}

// openSegment starts a fresh segment with the given sequence number.
func (w *wal) openSegment(seq uint64) error {
	f, err := w.fs.create(walSegPath(w.dir, w.prefix, seq))
	if err != nil {
		return err
	}
	var hdr [walAuditHeaderSize]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	hdrLen := walHeaderSize
	if w.aud != nil {
		// Chain the previous segment's sealed head into the new header.
		binary.LittleEndian.PutUint32(hdr[4:8], walAuditVersion)
		head := w.aud.chain.Head()
		copy(hdr[walHeaderSize:], head[:])
		hdrLen = walAuditHeaderSize
	} else {
		binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	}
	if _, err := f.Write(hdr[:hdrLen]); err != nil {
		f.Close()
		return err
	}
	// Make the segment's directory entry durable: fsyncing frame data into
	// a file whose entry a power loss can drop would void acknowledged
	// barriers.
	if err := w.fs.syncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.f, w.seq, w.off = f, seq, w.hdrSize()
	if w.aud != nil {
		w.aud.frames = 0
	}
	return nil
}

// resumeSegment attaches the appender to an existing segment known to end
// at a frame boundary at size bytes.
func (w *wal) resumeSegment(seq uint64, size int64) error {
	f, err := w.fs.appendTo(walSegPath(w.dir, w.prefix, seq))
	if err != nil {
		return err
	}
	w.f, w.seq, w.off = f, seq, size
	return nil
}

// append frames one payload into the log, rotating to a new segment first
// when the current one is full. Returns only after the frame is written
// (and synced, under FsyncAlways). On an audit stream the frame folds
// into the chain, and rotation seals the outgoing segment first.
func (w *wal) append(payload []byte) error {
	if len(payload) > maxWALRecord {
		return fmt.Errorf("serve: WAL record of %d bytes exceeds cap %d", len(payload), maxWALRecord)
	}
	frame := encodeFrame(payload)
	if err := w.rotateIfNeeded(len(frame)); err != nil {
		return err
	}
	if w.aud != nil {
		var start time.Time
		if w.stats != nil {
			start = time.Now()
		}
		if w.aud.haveRoot {
			w.aud.chain.FoldWithRoot(frame, w.aud.root)
			w.aud.haveRoot = false
		} else {
			w.aud.chain.Fold(frame)
		}
		w.aud.frames++
		w.stats.ObserveWALHash(start)
	}
	w.lastPos = walPos{seg: w.seq, off: w.off}
	n, err := w.f.Write(frame)
	w.off += int64(n)
	if err != nil {
		return err
	}
	w.stats.AddWALAppend(len(frame))
	if w.policy == FsyncAlways {
		return w.syncFile()
	}
	return nil
}

// rotateIfNeeded closes the current segment and opens the next when an
// incoming frame of frameLen bytes would overflow it, sealing the
// outgoing segment first on an audit stream.
func (w *wal) rotateIfNeeded(frameLen int) error {
	if w.off <= w.hdrSize() || w.off+int64(frameLen) <= w.segBytes {
		return nil
	}
	if w.aud != nil {
		if err := w.writeSeal(); err != nil {
			return err
		}
	}
	if err := w.syncFile(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	return w.openSegment(w.seq + 1)
}

// appendEvents appends an event-batch payload. On an audit stream,
// bodies (each event's JSON encoding, slicing payload) are hashed into
// the batch's Merkle leaves and the root is committed into the chain
// alongside the frame; the caller can then read leaves/root/lastPos for
// the proof index. Audit off ignores bodies entirely.
func (w *wal) appendEvents(payload []byte, bodies [][]byte) error {
	if w.aud == nil {
		return w.append(payload)
	}
	var start time.Time
	if w.stats != nil {
		start = time.Now()
	}
	a := w.aud
	a.tree.Reset()
	for _, b := range bodies {
		a.tree.AddLeaf(b)
	}
	a.root = a.tree.Root()
	a.haveRoot = true
	w.stats.ObserveWALHash(start)
	err := w.append(payload)
	a.haveRoot = false
	return err
}

// writeSeal appends the segment seal: the chain head over every prior
// frame of the open segment, itself folded into the chain so the next
// header's link covers it. Called before rotation and at clean close;
// a crash can legitimately leave the final segment unsealed.
func (w *wal) writeSeal() error {
	a := w.aud
	s := audit.Seal{Head: a.chain.Head(), Seq: w.seq, Frames: a.frames}
	enc := s.Encode()
	payload := make([]byte, 1+len(enc))
	payload[0] = recSeal
	copy(payload[1:], enc)
	frame := encodeFrame(payload)
	a.chain.Fold(frame)
	a.frames++
	n, err := w.f.Write(frame)
	w.off += int64(n)
	if err != nil {
		return err
	}
	w.stats.AddWALAppend(len(frame))
	return nil
}

// encodeEventsPayload encodes one ingest batch as a single recEvents
// payload: the batch is durable all-or-nothing, which is what lets a
// client treat a Submit ack as "this batch survives a crash". The caller
// checks the encoded size against maxWALRecord before appending, so an
// oversized batch is a plain rejection rather than a latched persistence
// failure.
func encodeEventsPayload(events []Event) ([]byte, error) {
	body, err := json.Marshal(events)
	if err != nil {
		return nil, fmt.Errorf("serve: encode WAL events: %w", err)
	}
	payload := make([]byte, 1+len(body))
	payload[0] = recEvents
	copy(payload[1:], body)
	return payload, nil
}

// encodeEventsPayloadAudit is encodeEventsPayload plus leaf boundaries:
// it builds the JSON array from per-event encodings and returns each
// event's bytes (aliasing payload) so the audit layer can hash Merkle
// leaves without re-marshaling. The payload is byte-identical to
// encodeEventsPayload's for non-empty batches — an encoding/json array
// is exactly the comma-joined element encodings in brackets.
func encodeEventsPayloadAudit(events []Event) ([]byte, [][]byte, error) {
	payload, spans, err := encodeEventArray(events, []byte{recEvents})
	if err != nil {
		return nil, nil, err
	}
	return payload, spans, nil
}

// encodePartPayloadAudit is encodePartPayload with leaf boundaries, per
// encodeEventsPayloadAudit.
func encodePartPayloadAudit(batchID uint64, parts uint32, events []Event) ([]byte, [][]byte, error) {
	hdr := make([]byte, partHeaderSize)
	hdr[0] = recEventsPart
	binary.LittleEndian.PutUint64(hdr[1:9], batchID)
	binary.LittleEndian.PutUint32(hdr[9:13], parts)
	return encodeEventArray(events, hdr)
}

// encodeEventArray appends a JSON array of events to prefix, recording
// each element's byte span. The returned spans alias the payload.
func encodeEventArray(events []Event, prefix []byte) ([]byte, [][]byte, error) {
	buf := append([]byte(nil), prefix...)
	buf = append(buf, '[')
	offs := make([][2]int, len(events))
	for i := range events {
		if i > 0 {
			buf = append(buf, ',')
		}
		enc, err := json.Marshal(&events[i])
		if err != nil {
			return nil, nil, fmt.Errorf("serve: encode WAL events: %w", err)
		}
		start := len(buf)
		buf = append(buf, enc...)
		offs[i] = [2]int{start, len(buf)}
	}
	buf = append(buf, ']')
	spans := make([][]byte, len(events))
	for i, o := range offs {
		spans[i] = buf[o[0]:o[1]]
	}
	return buf, spans, nil
}

// batchLeafBodies re-derives the Merkle leaf inputs of a replayed event
// record: each event re-marshaled individually. Event encoding is
// deterministic and round-trip stable, so these equal the bytes hashed
// at append time.
func batchLeafBodies(events []Event) ([][]byte, error) {
	bodies := make([][]byte, len(events))
	for i := range events {
		enc, err := json.Marshal(&events[i])
		if err != nil {
			return nil, fmt.Errorf("serve: re-encode WAL events: %w", err)
		}
		bodies[i] = enc
	}
	return bodies, nil
}

// batchRoot recomputes the Merkle root a replayed event record committed.
func batchRoot(t *audit.Tree, events []Event) (audit.Head, []audit.Head, error) {
	bodies, err := batchLeafBodies(events)
	if err != nil {
		return audit.Head{}, nil, err
	}
	t.Reset()
	for _, b := range bodies {
		t.AddLeaf(b)
	}
	leaves := append([]audit.Head(nil), t.Leaves()...)
	return t.Root(), leaves, nil
}

// encodePartPayload encodes one shard's slice of a cross-shard batch as a
// recEventsPart payload. events may be empty (a slice the late filter
// consumed entirely): the frame still ships so the batch's part count
// stays reachable on replay.
func encodePartPayload(batchID uint64, parts uint32, events []Event) ([]byte, error) {
	body, err := json.Marshal(events)
	if err != nil {
		return nil, fmt.Errorf("serve: encode WAL events: %w", err)
	}
	payload := make([]byte, partHeaderSize+len(body))
	payload[0] = recEventsPart
	binary.LittleEndian.PutUint64(payload[1:9], batchID)
	binary.LittleEndian.PutUint32(payload[9:13], parts)
	copy(payload[partHeaderSize:], body)
	return payload, nil
}

// appendReceipt logs a signed rank receipt. The receipt's chain anchor
// must be the head immediately before its own frame, so rotation (which
// folds a seal) happens first, then the caller-supplied sign callback
// stamps Head and Sig against the settled chain state.
func (w *wal) appendReceipt(rc *audit.Receipt, sign func(*audit.Receipt)) error {
	probe := *rc
	sign(&probe) // receipts are fixed-size; any signed encoding sizes the frame
	frameLen := 8 + 1 + len(probe.Encode())
	if err := w.rotateIfNeeded(frameLen); err != nil {
		return err
	}
	rc.Head = w.head()
	sign(rc)
	enc := rc.Encode()
	payload := make([]byte, 1+len(enc))
	payload[0] = recReceipt
	copy(payload[1:], enc)
	return w.append(payload)
}

// appendClose logs a close-through-day barrier.
func (w *wal) appendClose(d cert.Day) error {
	var payload [9]byte
	payload[0] = recClose
	binary.LittleEndian.PutUint64(payload[1:], uint64(int64(d)))
	return w.append(payload[:])
}

// pos returns the current append position (a frame boundary).
func (w *wal) pos() walPos { return walPos{seg: w.seq, off: w.off} }

// sync flushes the current segment.
func (w *wal) sync() error {
	if w.f == nil {
		return nil
	}
	return w.syncFile()
}

// syncFile fsyncs the open segment, timing the call when a recording
// cell is attached. The clock is read only on the instrumented path.
func (w *wal) syncFile() error {
	if w.stats == nil {
		return w.f.Sync()
	}
	start := time.Now()
	err := w.f.Sync()
	if err == nil {
		w.stats.ObserveFsync(start)
	}
	return err
}

// close syncs and closes the current segment, sealing it first on an
// audit stream: after a clean shutdown every segment (including the
// last) carries its seal, so the offline verifier can attest the whole
// log. A crash skips this and leaves an honest unsealed tail.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	var err error
	if w.aud != nil {
		err = w.writeSeal()
	}
	if serr := w.syncFile(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
