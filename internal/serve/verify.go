package serve

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"acobe/internal/audit"
)

// ErrAuditChainBroken reports a verified audit failure: some sealed byte
// of the log (a WAL frame, a seal, a segment header link, a snapshot, or
// a manifest) no longer matches the hash chain or a signature over it.
// Distinct from ErrPersistenceFailed (an I/O failure writing new state):
// a broken chain means the *history* cannot be trusted, and the server
// fail-stops at recovery rather than serve state the log contradicts.
var ErrAuditChainBroken = errors.New("serve: audit chain broken")

// segEnd summarizes one walked audit segment.
type segEnd struct {
	seq     uint64
	head    audit.Head // chain head after the last valid frame
	frames  uint32     // frames folded, seals included
	goodLen int64      // header + whole valid frames
	sealed  bool       // the last frame was a seal (clean rotation/close)
}

// auditVisit observes one verified frame during a walk: the decoded
// record, its position, the chain head immediately before it, and (for
// event records) the batch's Merkle root and copied leaf hashes.
type auditVisit func(rec walRecord, pos walPos, pre audit.Head, root audit.Head, leaves []audit.Head) error

// walkAuditSegment verifies one audit-stream segment image: header
// version and chain link against prev, every frame's CRC and chain fold,
// recomputed batch Merkle roots, seal head/seq/frame-count consistency,
// and receipt chain anchoring. strict additionally rejects any trailing
// bytes after the valid prefix (an offline verifier accounts for every
// byte; recovery tolerates a crash's torn tail on the final segment).
func walkAuditSegment(name string, data []byte, seq uint64, prev audit.Head, strict bool, visit auditVisit) (segEnd, error) {
	se := segEnd{seq: seq}
	gotSeq, ver, prevHead, _, ok := parseSegHeader(data)
	if !ok {
		return se, fmt.Errorf("%w: %s: segment header invalid", ErrAuditChainBroken, name)
	}
	if ver != walAuditVersion {
		return se, fmt.Errorf("%w: %s: segment format version %d is not an audit stream", ErrAuditChainBroken, name, ver)
	}
	if gotSeq != seq {
		return se, fmt.Errorf("%w: %s: header sequence %d, want %d", ErrAuditChainBroken, name, gotSeq, seq)
	}
	if prevHead != prev {
		return se, fmt.Errorf("%w: %s: header chain link does not match the previous segment's sealed head", ErrAuditChainBroken, name)
	}
	chain := audit.NewChain(prev)
	tree := audit.NewTree()
	_, frames, goodLen, _ := parseSegment(data)
	for _, fr := range frames {
		rec, err := decodeRecord(fr.payload)
		if err != nil {
			if strict {
				return se, fmt.Errorf("%w: %s offset %d: %v", ErrAuditChainBroken, name, fr.off, err)
			}
			// Tolerant: a CRC-valid frame that does not decode ends the
			// log here, exactly as recovery treats it.
			goodLen = fr.off
			break
		}
		pre := chain.Head()
		frame := data[fr.off : fr.off+8+len(fr.payload)]
		var root audit.Head
		var leaves []audit.Head
		switch rec.typ {
		case recEvents, recEventsPart:
			root, leaves, err = batchRoot(tree, rec.events)
			if err != nil {
				return se, fmt.Errorf("%w: %s offset %d: %v", ErrAuditChainBroken, name, fr.off, err)
			}
			chain.FoldWithRoot(frame, root)
		case recSeal:
			if rec.seal.Seq != seq || rec.seal.Frames != se.frames || rec.seal.Head != pre {
				return se, fmt.Errorf("%w: %s offset %d: seal does not match the chain walk (head/seq/frame-count diverge)", ErrAuditChainBroken, name, fr.off)
			}
			chain.Fold(frame)
		case recReceipt:
			if rec.receipt.Head != pre {
				return se, fmt.Errorf("%w: %s offset %d: receipt anchored to a different chain head", ErrAuditChainBroken, name, fr.off)
			}
			chain.Fold(frame)
		default:
			chain.Fold(frame)
		}
		se.frames++
		se.sealed = rec.typ == recSeal
		if visit != nil {
			if err := visit(rec, walPos{seg: seq, off: int64(fr.off)}, pre, root, leaves); err != nil {
				return se, err
			}
		}
	}
	se.goodLen = int64(goodLen)
	se.head = chain.Head()
	if strict && int64(len(data)) != se.goodLen {
		return se, fmt.Errorf("%w: %s: %d unverifiable trailing bytes after offset %d (torn or tampered frame)", ErrAuditChainBroken, name, int64(len(data))-se.goodLen, se.goodLen)
	}
	return se, nil
}

// headCheck pins an externally attested chain head to a frame boundary:
// a snapshot (or manifest) claims the chain stood at head when the log
// was at pos. what names the attesting artifact for diagnostics.
type headCheck struct {
	pos  walPos
	head audit.Head
	what string
}

// walkAuditStream verifies one shard's whole surviving segment stream in
// ascending sequence order: every segment via walkAuditSegment, seals at
// every rotation, cross-segment header links, and every headCheck
// against the walked chain. A pruned prefix is handled by anchoring at
// the first surviving segment's header link (which the checks then tie
// to a signed snapshot); a stream starting at segment 1 must anchor at
// the zero head. Returns the stream's end state.
func walkAuditStream(walDir, prefix string, strict bool, checks []headCheck, visit auditVisit) (segEnd, error) {
	segs, err := listSegments(walDir, prefix)
	if err != nil {
		return segEnd{}, err
	}
	var prev audit.Head
	var end segEnd
	done := make([]bool, len(checks))
	for i, seq := range segs {
		path := walSegPath(walDir, prefix, seq)
		name := filepath.Base(path)
		data, err := os.ReadFile(path)
		if err != nil {
			return end, err
		}
		if i > 0 && seq != end.seq+1 {
			return end, fmt.Errorf("%w: %s: segment follows %d — history gap", ErrAuditChainBroken, name, end.seq)
		}
		if i == 0 && seq != 1 {
			// Pruned prefix: the header's claimed link is the anchor; the
			// caller's checks tie it to a signed snapshot's attested head.
			if _, _, ph, _, ok := parseSegHeader(data); ok {
				prev = ph
			}
		}
		last := i == len(segs)-1
		// The final segment alone may carry a tolerated torn tail; any
		// earlier segment must verify byte for byte.
		se, werr := walkAuditSegment(name, data, seq, prev, strict || !last, func(rec walRecord, pos walPos, pre audit.Head, root audit.Head, leaves []audit.Head) error {
			for ci, c := range checks {
				if !done[ci] && c.pos == pos {
					if c.head != pre {
						return fmt.Errorf("%w: %s attests chain head at %s offset %d, but the walked chain differs there", ErrAuditChainBroken, c.what, name, pos.off)
					}
					done[ci] = true
				}
			}
			if visit == nil {
				return nil
			}
			return visit(rec, pos, pre, root, leaves)
		})
		if werr != nil {
			return se, werr
		}
		// Boundary checks not covered by a frame start: the segment's
		// header boundary and its end-of-log boundary.
		for ci, c := range checks {
			if done[ci] || c.pos.seg != seq {
				continue
			}
			var at audit.Head
			switch c.pos.off {
			case int64(walAuditHeaderSize):
				at = prev
			case se.goodLen:
				at = se.head
			default:
				continue
			}
			if c.head != at {
				return se, fmt.Errorf("%w: %s attests chain head at %s offset %d, but the walked chain differs there", ErrAuditChainBroken, c.what, name, c.pos.off)
			}
			done[ci] = true
		}
		if !last && !se.sealed {
			return se, fmt.Errorf("%w: %s: segment rotated without a seal", ErrAuditChainBroken, name)
		}
		prev = se.head
		end = se
	}
	for ci, c := range checks {
		if !done[ci] {
			return end, fmt.Errorf("%w: %s attests a chain head at segment %d offset %d, which is not a frame boundary of the walked log", ErrAuditChainBroken, c.what, c.pos.seg, c.pos.off)
		}
	}
	return end, nil
}

// VerifyReport summarizes one offline VerifyAudit walk.
type VerifyReport struct {
	Fingerprint string
	Shards      int
	Segments    int
	Frames      int
	Batches     int
	Events      int
	Seals       int
	Receipts    int
	Snapshots   int
	Manifests   int
}

// VerifyAudit walks an audited data directory offline and verifies the
// full tamper-evidence chain: every shard's WAL stream (frame CRCs,
// chain folds, recomputed batch Merkle roots, seals, header links,
// receipt signatures and anchoring), every published snapshot's CRC,
// ed25519 signature, and attested chain head, and (sharded layouts) every
// manifest's signature and per-shard heads. The layout is autodetected
// from the files present. It stops at the first divergence with a
// segment/offset diagnostic wrapping ErrAuditChainBroken.
//
// Run it against a cleanly shut-down (or freshly recovered) directory:
// a crash's torn tail is unverifiable trailing garbage to the strict
// walk, and recovery is what truncates it.
func VerifyAudit(dir string, pub ed25519.PublicKey) (*VerifyReport, error) {
	rep := &VerifyReport{Fingerprint: audit.Fingerprint(pub)}
	walDir := filepath.Join(dir, "wal")

	// Layout autodetection: a manifest pins the shard count; before the
	// first snapshot round a sharded directory has no manifest yet, so
	// fall back to the per-shard WAL filenames themselves. Trusting the
	// names is fine — every stream found is fully verified, and the
	// unclaimed-file sweep below refuses anything the walk didn't cover.
	mans, err := listManifests(dir)
	if err != nil {
		return nil, err
	}
	type stream struct {
		shard      int
		walPrefix  string
		snapPrefix string
	}
	var streams []stream
	if len(mans) > 0 {
		m, err := loadManifestInfo(mans[0].path)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrAuditChainBroken, filepath.Base(mans[0].path), err)
		}
		for k := 0; k < m.shards; k++ {
			streams = append(streams, stream{shard: k, walPrefix: walShardPrefix(k), snapPrefix: snapShardPrefix(k)})
		}
	} else if n, err := scanShardCount(walDir); err != nil {
		return nil, err
	} else if n > 0 {
		for k := 0; k < n; k++ {
			streams = append(streams, stream{shard: k, walPrefix: walShardPrefix(k), snapPrefix: snapShardPrefix(k)})
		}
	} else {
		streams = []stream{{walPrefix: walPrefix, snapPrefix: snapPrefix}}
	}
	rep.Shards = len(streams)
	claimed := map[string]bool{}

	// Snapshot attested heads become chain checks on their shard's walk.
	checks := make([][]headCheck, len(streams))
	for si, st := range streams {
		snaps, err := listSnapshots(dir, st.snapPrefix)
		if err != nil {
			return nil, err
		}
		for _, e := range snaps {
			name := filepath.Base(e.path)
			hdr, err := verifySnapshotFile(e.path, pub)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrAuditChainBroken, name, err)
			}
			checks[si] = append(checks[si], headCheck{pos: hdr.pos, head: hdr.head, what: name})
			claimed[name] = true
			rep.Snapshots++
		}
	}

	// Manifests: signature, per-shard heads equal to the same-day shard
	// snapshots' attested heads.
	for _, me := range mans {
		name := filepath.Base(me.path)
		m, err := loadManifestInfo(me.path)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrAuditChainBroken, name, err)
		}
		if m.version != manifestAuditVersion {
			return nil, fmt.Errorf("%w: %s: manifest version %d carries no audit attestation", ErrAuditChainBroken, name, m.version)
		}
		if !m.verifySig(pub) {
			return nil, fmt.Errorf("%w: %s: manifest signature invalid (key %s)", ErrAuditChainBroken, name, audit.Fingerprint(pub))
		}
		for k, h := range m.heads {
			hdr, err := verifySnapshotFile(snapPath(dir, snapShardPrefix(k), m.day), pub)
			if err != nil {
				return nil, fmt.Errorf("%w: %s: shard %d snapshot: %v", ErrAuditChainBroken, name, k, err)
			}
			if hdr.head != h {
				return nil, fmt.Errorf("%w: %s: shard %d head does not match its snapshot's attested head", ErrAuditChainBroken, name, k)
			}
		}
		claimed[name] = true
		rep.Manifests++
	}

	// The WAL streams themselves.
	for si, st := range streams {
		end, err := walkAuditStream(walDir, st.walPrefix, true, checks[si], func(rec walRecord, pos walPos, pre audit.Head, root audit.Head, leaves []audit.Head) error {
			rep.Frames++
			switch rec.typ {
			case recEvents, recEventsPart:
				rep.Batches++
				rep.Events += len(rec.events)
			case recSeal:
				rep.Seals++
			case recReceipt:
				if !rec.receipt.VerifySig(pub) {
					return fmt.Errorf("%w: segment %d offset %d: receipt signature invalid", ErrAuditChainBroken, pos.seg, pos.off)
				}
				rep.Receipts++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		segs, err := listSegments(walDir, st.walPrefix)
		if err != nil {
			return nil, err
		}
		for _, seq := range segs {
			claimed[filepath.Base(walSegPath(walDir, st.walPrefix, seq))] = true
		}
		rep.Segments += len(segs)
		_ = end
	}

	// Unclaimed-file sweep: every artifact on disk that looks like part
	// of the log must have been covered by the walk above. A WAL segment,
	// snapshot, or manifest the streams didn't claim (wrong shard index,
	// unparseable sequence, a layout the autodetect didn't pick) is
	// unverifiable history, not something to silently skip.
	if err := sweepUnclaimed(walDir, claimed, "", ".log"); err != nil {
		return nil, err
	}
	if err := sweepUnclaimed(dir, claimed, snapPrefix, snapSuffix); err != nil {
		return nil, err
	}
	if err := sweepUnclaimed(dir, claimed, manifestPrefix, manifestSuffix); err != nil {
		return nil, err
	}
	return rep, nil
}

// scanShardCount infers the shard count of a manifest-less directory from
// the per-shard WAL segment names: wal-shard<k>-<seq>.log present for any
// k means a sharded layout of max(k)+1 streams. Returns 0 when no shard
// segments exist (unsharded layout, or an empty directory).
func scanShardCount(walDir string) (int, error) {
	des, err := os.ReadDir(walDir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	n := 0
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, "wal-shard") || !strings.HasSuffix(name, ".log") {
			continue
		}
		rest := strings.TrimPrefix(name, "wal-shard")
		dash := strings.IndexByte(rest, '-')
		if dash <= 0 {
			continue
		}
		k, err := strconv.Atoi(rest[:dash])
		if err != nil || k < 0 {
			continue
		}
		if k+1 > n {
			n = k + 1
		}
	}
	return n, nil
}

// sweepUnclaimed errors on any file in dir matching prefix/suffix that the
// verification walk did not claim.
func sweepUnclaimed(dir string, claimed map[string]bool, prefix, suffix string) error {
	des, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		if !claimed[name] {
			return fmt.Errorf("%w: %s: file not covered by the verified layout", ErrAuditChainBroken, name)
		}
	}
	return nil
}

// snapHeader is a snapshot file's audit-relevant header fields.
type snapHeader struct {
	day  int64
	pos  walPos
	head audit.Head
}

// verifySnapshotFile checks one audit-mode snapshot standalone: format
// version, body CRC, trailing ed25519 signature over SHA-256(body‖CRC),
// and returns its attested (position, chain head) header. It needs no
// server configuration — the offline verifier's snapshot check.
func verifySnapshotFile(path string, pub ed25519.PublicKey) (snapHeader, error) {
	var hdr snapHeader
	data, err := os.ReadFile(path)
	if err != nil {
		return hdr, err
	}
	if len(data) < 4+audit.SigSize {
		return hdr, fmt.Errorf("snapshot too short for checksum and signature")
	}
	body := data[:len(data)-audit.SigSize]
	var sig [audit.SigSize]byte
	copy(sig[:], data[len(data)-audit.SigSize:])
	d := sha256.Sum256(body)
	if !audit.VerifyContext(pub, sig, audit.ContextSnapshot, d[:]) {
		return hdr, fmt.Errorf("snapshot signature invalid (key %s)", audit.Fingerprint(pub))
	}
	crcBody := body[:len(body)-4]
	if got, want := binary.LittleEndian.Uint32(body[len(body)-4:]), crc32.ChecksumIEEE(crcBody); got != want {
		return hdr, fmt.Errorf("snapshot checksum mismatch (stored %08x, computed %08x)", got, want)
	}
	// Header: magic(4) ver(4) day(8) seg(8) off(8) headLen(8) head(32).
	const fixed = 4 + 4 + 8 + 8 + 8
	if len(crcBody) < fixed+8+audit.HeadSize || string(crcBody[:4]) != snapMagic {
		return hdr, fmt.Errorf("snapshot header invalid")
	}
	if v := binary.LittleEndian.Uint32(crcBody[4:8]); v != snapAuditVersion {
		return hdr, fmt.Errorf("snapshot version %d carries no audit attestation", v)
	}
	hdr.day = int64(binary.LittleEndian.Uint64(crcBody[8:16]))
	hdr.pos.seg = binary.LittleEndian.Uint64(crcBody[16:24])
	hdr.pos.off = int64(binary.LittleEndian.Uint64(crcBody[24:32]))
	if n := binary.LittleEndian.Uint64(crcBody[32:40]); n != audit.HeadSize {
		return hdr, fmt.Errorf("snapshot chain head is %d bytes, want %d", n, audit.HeadSize)
	}
	copy(hdr.head[:], crcBody[40:40+audit.HeadSize])
	return hdr, nil
}
