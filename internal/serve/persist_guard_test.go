package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/logstore"
)

// These tests pin the persistence layer's guard rails: input problems
// (wrong payload type, oversized batch) must be plain per-batch
// rejections that never reach the WAL, while apply failures behind a
// logged barrier must fail-stop — and recovery must refuse to replay
// around missing history rather than silently rebuild wrong state.

// recordEvent is an enterprise-payload event, which the CERT ingestor of
// persistCfg can never consume.
func recordEvent(d cert.Day) Event {
	return Event{Record: &logstore.Record{Time: d.Date(), User: testUsers[0], Action: "Logon"}}
}

func TestSubmitRejectsMismatchedPayload(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	a, _, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	err = a.Submit(ctx, []Event{recordEvent(0)})
	if err == nil {
		t.Fatal("submit of an unconsumable payload succeeded")
	}
	if errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("payload rejection latched the server: %v", err)
	}
	// The bad batch never reached the WAL; the server keeps working and a
	// restart recovers exactly the good prefix.
	feedDays(t, a, 0, 5)
	want := serverStateBytes(t, a)
	shutdown(t, a)

	b, info, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if info.ClosedThrough != 5 || info.RejectedEvents != 0 {
		t.Fatalf("recovered ClosedThrough=%v RejectedEvents=%d, want 5 and 0", info.ClosedThrough, info.RejectedEvents)
	}
	if got := serverStateBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from pre-shutdown state")
	}
}

func TestRecoverDropsUnconsumablePayload(t *testing.T) {
	dir := t.TempDir()
	a, _, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, 5)
	want := serverStateBytes(t, a)
	shutdown(t, a)

	// Forge a WAL written without payload vetting: append a frame holding
	// an enterprise record to the CERT server's log.
	walDir := filepath.Join(dir, "wal")
	segs, err := listSegments(walDir, walPrefix)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments (%v)", err)
	}
	payload, err := encodeEventsPayload([]Event{recordEvent(6)})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walSegPath(walDir, walPrefix, segs[len(segs)-1]), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(encodeFrame(payload)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, info, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatalf("recovery over an unconsumable batch failed: %v", err)
	}
	defer shutdown(t, b)
	if info.RejectedEvents != 1 {
		t.Fatalf("RejectedEvents = %d, want 1", info.RejectedEvents)
	}
	if len(info.BufferedEvents) != 0 {
		t.Fatalf("rejected event was buffered: %v", info.BufferedEvents)
	}
	if got := serverStateBytes(t, b); !bytes.Equal(got, want) {
		t.Fatal("recovered state differs from pre-shutdown state")
	}
}

func TestSubmitRejectsOversizedBatch(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	a, _, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, a)
	huge := Event{Cert: &cert.Event{
		Type: cert.EventHTTP, Time: cert.Day(0).Date(), User: testUsers[0],
		Activity: cert.ActUpload, Domain: strings.Repeat("a", maxWALRecord),
	}}
	err = a.Submit(ctx, []Event{huge})
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized submit = %v, want ErrBatchTooLarge", err)
	}
	if errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("oversized batch latched the server: %v", err)
	}
	// The rejection is per-batch: normal ingest continues.
	feedDays(t, a, 0, 2)
	if st := a.Status(); st.PersistError != "" {
		t.Fatalf("persist error after oversized batch: %s", st.PersistError)
	}
}

// failingConsume wraps the CERT ingestor and fails day-close apply on one
// day, modelling an apply error after the close barrier was WAL-logged.
type failingConsume struct {
	*CERTIngestor
	failOn cert.Day
}

func (f *failingConsume) ConsumeDay(d cert.Day, events []Event) error {
	if d == f.failOn {
		return errors.New("synthetic apply failure")
	}
	return f.CERTIngestor.ConsumeDay(d, events)
}

func TestDayCloseFailureLatchesAndLogRecovers(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	const failOn = cert.Day(4)
	cfg := persistCfg()
	ing, err := NewCERTIngestor(cfg.Users, cfg.Start)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ingestor = &failingConsume{CERTIngestor: ing, failOn: failOn}
	a, _, err := Open(cfg, PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for d := cert.Day(0); d < failOn; d++ {
		if err := a.Submit(ctx, persistDayEvents(d)); err != nil {
			t.Fatal(err)
		}
		if err := a.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Submit(ctx, persistDayEvents(failOn)); err != nil {
		t.Fatal(err)
	}
	// The barrier is durably logged before the apply fails: the server
	// must latch instead of serving state its log no longer describes.
	if err := a.CloseDay(ctx, failOn); !errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("close after apply failure = %v, want ErrPersistenceFailed", err)
	}
	if err := a.Submit(ctx, persistDayEvents(failOn+1)); !errors.Is(err, ErrPersistenceFailed) {
		t.Fatalf("submit after latch = %v, want ErrPersistenceFailed", err)
	}
	shutdown(t, a)

	// The log is the truth: a healthy ingestor replays it in full,
	// including the barrier whose apply failed in the crashed process.
	b, info, err := Open(persistCfg(), PersistConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if info.ClosedThrough != failOn {
		t.Fatalf("recovered ClosedThrough = %v, want %v", info.ClosedThrough, failOn)
	}
	if got, want := serverStateBytes(t, b), referenceStateBytes(t, failOn); !bytes.Equal(got, want) {
		t.Fatal("replayed state differs from uninterrupted run")
	}
}

func TestRecoverRejectsSegmentGap(t *testing.T) {
	dir := t.TempDir()
	a, _, err := Open(persistCfg(), PersistConfig{Dir: dir, SnapshotEvery: 1000, SegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, 10)
	shutdown(t, a)

	walDir := filepath.Join(dir, "wal")
	segs, err := listSegments(walDir, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments to punch a hole, got %d", len(segs))
	}
	if err := os.Remove(walSegPath(walDir, walPrefix, segs[len(segs)/2])); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(persistCfg(), PersistConfig{Dir: dir, SnapshotEvery: 1000, SegmentBytes: 2048}); err == nil {
		t.Fatal("recovery over a missing middle segment succeeded")
	} else if !strings.Contains(err.Error(), "history gap") {
		t.Fatalf("gap error = %v, want a history-gap failure", err)
	}
}

func TestRecoverRejectsMissingSnapshotSegment(t *testing.T) {
	dir := t.TempDir()
	pc := PersistConfig{Dir: dir, SnapshotEvery: 5, SegmentBytes: 2048}
	a, _, err := Open(persistCfg(), pc)
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, 22) // snapshots at 4, 9, 14, 19; retained: 19, 14
	shutdown(t, a)

	// Corrupt the newest snapshot so recovery falls back to day 14, then
	// delete the segment day 14's position points into: replay must fail
	// loudly instead of skipping the hole.
	_, pos14, err := readSnapshotPos(snapPath(dir, snapPrefix, 14))
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snapPath(dir, snapPrefix, 19))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(snapPath(dir, snapPrefix, 19), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(walSegPath(filepath.Join(dir, "wal"), walPrefix, pos14.seg)); err != nil {
		t.Fatal(err)
	}

	if _, _, err := Open(persistCfg(), pc); err == nil {
		t.Fatal("recovery with the fallback snapshot's WAL segment missing succeeded")
	} else if !strings.Contains(err.Error(), "history gap") {
		t.Fatalf("missing-segment error = %v, want a history-gap failure", err)
	}
}

func TestPruneKeepsSegmentsWhenRetainedSnapshotUnreadable(t *testing.T) {
	dir := t.TempDir()
	pc := PersistConfig{Dir: dir, SnapshotEvery: 5, SegmentBytes: 2048}
	a, _, err := Open(persistCfg(), pc)
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, 13) // snapshots at 4 and 9
	walDir := filepath.Join(dir, "wal")
	before, err := listSegments(walDir, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	// Make the retained snapshot's header unreadable: the next prune can
	// no longer tell which segments it needs and must keep all of them.
	f, err := os.OpenFile(snapPath(dir, snapPrefix, 9), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("XXXX"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	feedDays(t, a, 14, 14) // publishes the day-14 snapshot and prunes
	defer shutdown(t, a)
	if st := a.Status(); st.PersistError != "" {
		t.Fatalf("persist error after prune with unreadable snapshot: %s", st.PersistError)
	}
	after, err := listSegments(walDir, walPrefix)
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range before {
		found := false
		for _, got := range after {
			if got == seq {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("segment %d was pruned although a retained snapshot is unreadable (before %v, after %v)", seq, before, after)
		}
	}
}

func TestSyncDirAfterPublishAndSegmentCreate(t *testing.T) {
	dir := t.TempDir()
	var (
		mu  sync.Mutex
		ops []string
	)
	pc := PersistConfig{
		Dir: dir, SnapshotEvery: 2, SegmentBytes: 2048,
		Hooks: Hooks{BeforeOp: func(op, name string) error {
			mu.Lock()
			ops = append(ops, fmt.Sprintf("%s %s", op, name))
			mu.Unlock()
			return nil
		}},
	}
	a, _, err := Open(persistCfg(), pc)
	if err != nil {
		t.Fatal(err)
	}
	feedDays(t, a, 0, 3)
	shutdown(t, a)

	mu.Lock()
	defer mu.Unlock()
	wantWal, wantData := fmt.Sprintf("syncdir %s", filepath.Base(filepath.Join(dir, "wal"))), fmt.Sprintf("syncdir %s", filepath.Base(dir))
	var gotWal, gotData bool
	for _, op := range ops {
		gotWal = gotWal || op == wantWal
		gotData = gotData || op == wantData
	}
	if !gotWal {
		t.Errorf("no WAL directory fsync after segment create (ops: %v)", ops)
	}
	if !gotData {
		t.Errorf("no data directory fsync after snapshot publish (ops: %v)", ops)
	}
}
