package serve

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"acobe/internal/audit"
	"acobe/internal/cert"
)

// Property tests over the inclusion-proof pipeline: randomized CERT
// ingest at several shard widths, then for every acknowledged batch the
// proof must verify, every mutation of it must not, and proofs must
// survive a restart's recovery (modulo snapshot pruning, which may
// legitimately forget a prefix — never punch holes).

// randDayEvents builds a randomized batch of valid CERT events inside day
// d: random users, random activity mix, one to eight events.
func randDayEvents(rng *rand.Rand, d cert.Day) []Event {
	n := 1 + rng.Intn(8)
	evs := make([]Event, 0, n)
	at := func() time.Time { return d.Date().Add(time.Duration(1+rng.Intn(22)) * time.Hour) }
	for len(evs) < n {
		u := testUsers[rng.Intn(len(testUsers))]
		switch rng.Intn(4) {
		case 0:
			evs = append(evs, Event{Cert: &cert.Event{Type: cert.EventLogon, Time: at(), User: u, Activity: cert.ActLogon}})
		case 1:
			evs = append(evs, Event{Cert: &cert.Event{Type: cert.EventDevice, Time: at(), User: u, PC: fmt.Sprintf("PC-%d", rng.Intn(6)), Activity: cert.ActConnect}})
		case 2:
			evs = append(evs, Event{Cert: &cert.Event{Type: cert.EventFile, Time: at(), User: u, Activity: cert.ActFileOpen, Direction: cert.DirLocal, FileID: fmt.Sprintf("F%d", rng.Intn(9))}})
		default:
			evs = append(evs, Event{Cert: &cert.Event{Type: cert.EventHTTP, Time: at(), User: u, Activity: cert.ActUpload, FileType: "doc", Domain: fmt.Sprintf("d%d.com", rng.Intn(3))}})
		}
	}
	return evs
}

func TestAuditProofPropertyRandomized(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xACB0 + int64(shards)))
			ctx := context.Background()
			dir := t.TempDir()
			s, _ := openAudit(t, dir, shards)

			var ids []uint64
			var otherRoots []ProofResult
			for d := cert.Day(0); d <= 11; d++ {
				for b := 0; b < 1+rng.Intn(3); b++ {
					id, err := s.SubmitProvable(ctx, randDayEvents(rng, d))
					if err != nil {
						t.Fatalf("day %d batch %d: %v", d, b, err)
					}
					ids = append(ids, id)
				}
				if err := s.CloseDay(ctx, d); err != nil {
					t.Fatalf("close day %d: %v", d, err)
				}
			}

			// Every acked batch proves, at random event indices; every
			// mutation of a verifying proof fails.
			for _, id := range ids {
				n, err := s.BatchEvents(id)
				if err != nil {
					t.Fatalf("batch %d: %v", id, err)
				}
				probes := []int{0, n - 1}
				if n > 2 {
					probes = append(probes, 1+rng.Intn(n-2))
				}
				for _, ev := range probes {
					res, err := s.Proof(id, ev)
					if err != nil {
						t.Fatalf("proof(%d, %d): %v", id, ev, err)
					}
					verifyProof(t, res)
					assertProofMutationsFail(t, rng, res)
					if len(otherRoots) > 0 {
						// Cross-batch confusion: a proof must not verify
						// against another batch's root.
						or := otherRoots[rng.Intn(len(otherRoots))]
						if or.Root != res.Root && res.Proof.Verify(or.Root) {
							t.Fatalf("proof for batch %d verified against batch %d's root", id, or.BatchID)
						}
					}
				}
				res0, err := s.Proof(id, 0)
				if err == nil {
					otherRoots = append(otherRoots, res0)
				}
			}

			pub := s.auditPub()
			shutdown(t, s)
			if _, err := VerifyAudit(dir, pub); err != nil {
				t.Fatalf("offline verify: %v", err)
			}

			// Proofs survive restart + recovery, tolerating a pruned prefix.
			s2, _ := openAudit(t, dir, shards)
			assertProvableSuffix(t, s2, ids)
			shutdown(t, s2)
		})
	}
}

// assertProofMutationsFail applies every adversarial proof edit — wrong
// leaf, wrong root, truncated path, extended path, sibling hash flip,
// sibling order swap, side-bit flip — and requires each to fail
// verification.
func assertProofMutationsFail(t *testing.T, rng *rand.Rand, res ProofResult) {
	t.Helper()
	fail := func(what string, p audit.Proof, root audit.Head) {
		t.Helper()
		if p.Verify(root) {
			t.Fatalf("batch %d event %d: %s still verifies", res.BatchID, res.Event, what)
		}
	}
	clone := func() audit.Proof {
		p := res.Proof
		p.Path = append([]audit.ProofStep(nil), res.Proof.Path...)
		return p
	}

	p := clone()
	p.Leaf[rng.Intn(audit.HeadSize)] ^= 1 << rng.Intn(8)
	fail("wrong leaf", p, res.Root)

	root := res.Root
	root[rng.Intn(audit.HeadSize)] ^= 1 << rng.Intn(8)
	fail("wrong root", clone(), root)

	if len(res.Proof.Path) > 0 {
		p = clone()
		p.Path = p.Path[:len(p.Path)-1]
		fail("truncated path", p, res.Root)

		i := rng.Intn(len(res.Proof.Path))
		p = clone()
		p.Path[i].Hash[rng.Intn(audit.HeadSize)] ^= 1 << rng.Intn(8)
		fail("flipped sibling hash", p, res.Root)

		p = clone()
		p.Path[i].Left = !p.Path[i].Left
		fail("flipped sibling side", p, res.Root)
	}
	if len(res.Proof.Path) > 1 {
		p = clone()
		p.Path[0], p.Path[1] = p.Path[1], p.Path[0]
		fail("swapped siblings", p, res.Root)
	}
	p = clone()
	p.Path = append(p.Path, audit.ProofStep{Left: rng.Intn(2) == 0, Hash: res.Root})
	fail("extended path", p, res.Root)
}
