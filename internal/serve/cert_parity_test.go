package serve

import (
	"bytes"
	"context"
	"testing"

	"acobe/internal/cert"
	"acobe/internal/deviation"
)

func certProbeSetup(t *testing.T) (Config, cert.Config) {
	gcfg := cert.SmallConfig(10)
	gcfg.Seed = 42
	gen, err := cert.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	deptIdx := map[string]int{}
	for i, d := range gcfg.Departments {
		deptIdx[d] = i
	}
	var users []string
	var member []int
	for _, u := range gen.Users() {
		users = append(users, u.ID)
		member = append(member, deptIdx[u.Department])
	}
	start, _ := gen.Span()
	return Config{
		Users: users, Groups: gcfg.Departments, Membership: member,
		Start:     start,
		Deviation: deviation.Config{Window: 30, MatrixDays: 14, Delta: 3, Epsilon: 1, Weighted: true},
	}, gcfg
}

// feedCert replays days [from, to] of a FRESH generator built from gcfg:
// generation is a single RNG sequence, so each pass must start from a new
// generator to reproduce the same events.
func feedCert(t *testing.T, s *Server, gcfg cert.Config, from, to cert.Day) {
	t.Helper()
	gen, err := cert.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	err = gen.Stream(func(d cert.Day, events []cert.Event) error {
		if d < from || d > to {
			return nil
		}
		batch := make([]Event, len(events))
		for i := range events {
			batch[i] = Event{Cert: &events[i]}
		}
		if err := s.Submit(ctx, batch); err != nil {
			t.Fatalf("submit %v: %v", d, err)
		}
		return s.CloseDay(ctx, d)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCERTRecoveryStateParity drives the realistic CERT generator (the
// golden corpus shape: 40 users, four departments, window 30) through a
// persisted server with a mid-stream restart, and demands bit-identical
// ingest state against an uninterrupted in-memory run — the same parity the
// crash-matrix test asserts end-to-end at the ranking layer.
func TestCERTRecoveryStateParity(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a quarter of the CERT corpus")
	}
	cfg, gcfg := certProbeSetup(t)
	start := cfg.Start
	mid, last := start+60, start+120

	dir := t.TempDir()
	a, _, err := Open(cfg, PersistConfig{Dir: dir, SnapshotEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	feedCert(t, a, gcfg, start, mid)
	var pre bytes.Buffer
	_ = a.shards[0].ing.(StatefulIngestor).SaveState(&pre)
	shutdown(t, a)

	b, info, err := Open(cfg, PersistConfig{Dir: dir, SnapshotEvery: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, b)
	if !info.SnapshotLoaded {
		t.Fatalf("no snapshot recovered: %+v", info)
	}
	var post bytes.Buffer
	_ = b.shards[0].ing.(StatefulIngestor).SaveState(&post)
	if !bytes.Equal(pre.Bytes(), post.Bytes()) {
		t.Error("ingest state after recovery differs from pre-shutdown state")
	}
	feedCert(t, b, gcfg, mid+1, last)

	ref, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, ref)
	feedCert(t, ref, gcfg, start, last)

	got, want := serverStateBytes(t, b), serverStateBytes(t, ref)
	if !bytes.Equal(got, want) {
		t.Error("recovered+resumed state differs from uninterrupted in-memory run")
	}
}
