package serve

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/obs"
)

// closeShardsDirect drives one close barrier into every shard queue
// directly, bypassing the coordinator: the shards extract their days but
// no merge (and no generation publish) ever runs.
func closeShardsDirect(t *testing.T, srv *Server, to cert.Day) {
	t.Helper()
	acks := make([]chan error, len(srv.shards))
	for i, sh := range srv.shards {
		acks[i] = make(chan error, 1)
		sh.queue <- envelope{closeThrough: to, isClose: true, done: acks[i]}
	}
	for _, ack := range acks {
		if err := <-ack; err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardTrainBeforeMerge proves a sharded Retrain never reads the
// merged view: the training days are closed by barriers sent directly to
// the shard queues — the coordinator never runs, so no day is ever
// merged and the published view stays empty — yet the retrain must
// succeed, because its training matrix is stitched straight from the
// shard tables. Closing the days through the public API afterwards must
// then serve rankings bit-identical to an unsharded server that trained
// at the same point in its feed.
func TestShardTrainBeforeMerge(t *testing.T) {
	const trainTo, lastDay = cert.Day(55), cert.Day(69)
	ctx := context.Background()

	type result struct {
		list   []rankRow
		scores [][]float64
	}
	run := func(t *testing.T, shards int, bypass bool) result {
		srv, err := New(Config{
			Users:           testUsers,
			Groups:          testGroups,
			Membership:      testMember,
			Start:           0,
			Deviation:       testDevCfg(),
			IngestorFactory: stubShardFactory(testUsers),
			Shards:          shards,
			DetectorOptions: testDetOpts(),
			QueueSize:       16,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
		if bypass {
			closeShardsDirect(t, srv, trainTo)
			if got := srv.ClosedThrough(); got != srv.cfg.Start-1 {
				t.Fatalf("closed through %v after direct shard closes, want %v (no merge must have run)", got, srv.cfg.Start-1)
			}
		} else {
			for d := cert.Day(0); d <= trainTo; d++ {
				if err := srv.CloseDay(ctx, d); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := srv.Retrain(ctx, 0, trainTo, true); err != nil {
			t.Fatalf("retrain before any merge: %v", err)
		}
		if bypass {
			if got := srv.ClosedThrough(); got != srv.cfg.Start-1 {
				t.Fatalf("retrain advanced the merged view to %v; it must not touch the merge", got)
			}
		}
		if err := srv.CloseDay(ctx, lastDay); err != nil {
			t.Fatal(err)
		}
		list, err := srv.Rank(ctx, 60, lastDay)
		if err != nil {
			t.Fatal(err)
		}
		series, err := srv.Detector().Score(ctx, 60, lastDay)
		if err != nil {
			t.Fatal(err)
		}
		res := result{}
		for _, r := range list {
			res.list = append(res.list, rankRow{user: r.User, priority: r.Priority, ranks: append([]int(nil), r.Ranks...)})
		}
		for _, a := range series {
			for _, us := range a.Scores {
				res.scores = append(res.scores, append([]float64(nil), us...))
			}
		}
		return res
	}

	want := run(t, 1, false)
	for _, n := range shardCounts[1:] {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			got := run(t, n, true)
			if len(got.list) != len(want.list) {
				t.Fatalf("%d ranked rows, want %d", len(got.list), len(want.list))
			}
			for i := range want.list {
				g, w := got.list[i], want.list[i]
				if g.user != w.user || g.priority != w.priority {
					t.Errorf("list[%d]: %s/%d, want %s/%d", i, g.user, g.priority, w.user, w.priority)
				}
				for a := range w.ranks {
					if g.ranks[a] != w.ranks[a] {
						t.Errorf("list[%d] ranks %v, want %v", i, g.ranks, w.ranks)
					}
				}
			}
			for u := range want.scores {
				for i := range want.scores[u] {
					if math.Float64bits(got.scores[u][i]) != math.Float64bits(want.scores[u][i]) {
						t.Fatalf("score[%d][%d] = %v, want bit-identical %v", u, i, got.scores[u][i], want.scores[u][i])
					}
				}
			}
		})
	}
}

// TestRankDuringMergeSwapRace hammers the read paths — Rank, Status,
// and metrics scrapes — while day closes force merge builds, generation
// publishes, and detector rebinds, with background retrains swapping
// models in at the same time. Its job is to give the race detector every
// interleaving of the off-lock shadow build, the pointer-swap publish,
// and the under-lock detector load; it also proves a rank can never
// observe a half-published generation (every Rank must succeed once a
// model is installed).
func TestRankDuringMergeSwapRace(t *testing.T) {
	const warmTo, lastDay = cert.Day(19), cert.Day(45)
	srv, _ := newObsServer(t, 3)
	ctx := context.Background()
	for d := cert.Day(0); d <= warmTo; d++ {
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Retrain(ctx, 0, 15, true); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	rankErr := make(chan error, 1)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, err := srv.Rank(ctx, 10, 15); err != nil {
					select {
					case rankErr <- err:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = srv.Status()
			_ = obs.WritePrometheus(io.Discard, srv.MetricsSnapshot(), obs.Gauges{})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := srv.Retrain(ctx, 0, 15, true); err != nil && err != ErrRetrainInProgress {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	for d := warmTo + 1; d <= lastDay; d++ {
		if err := srv.CloseDay(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-rankErr:
		t.Fatalf("rank failed during merge/swap/retrain churn: %v", err)
	default:
	}

	// The churn must settle into a consistent final state: the published
	// generation covers every closed day and still serves.
	if got := srv.ClosedThrough(); got != lastDay {
		t.Fatalf("closed through %v, want %v", got, lastDay)
	}
	if _, err := srv.Rank(ctx, 40, lastDay); err != nil {
		t.Fatal(err)
	}
}
