package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WritableFile is the write surface the persistence layer needs from a
// file: sequential writes, durability barriers, close. *os.File satisfies
// it; tests substitute failpoint wrappers through Hooks.
type WritableFile interface {
	io.Writer
	io.Closer
	// Sync flushes written bytes to stable storage.
	Sync() error
}

// Hooks intercept the persistence layer's filesystem operations. They
// exist for fault injection: a test can wrap every file the server opens
// in a failpoint writer that errors or truncates after N bytes, or veto a
// metadata operation (create/append/rename/remove/truncate) outright —
// simulating a crash at any persistence step without killing the process.
// Zero value = no interception.
type Hooks struct {
	// WrapWriter wraps a freshly opened file. name is the file's base name
	// (e.g. "wal-00000001.log", "snapshot-00000072.snap.tmp").
	WrapWriter func(name string, f WritableFile) WritableFile
	// BeforeOp runs before a metadata operation; returning an error aborts
	// it. op is one of "create", "append", "rename", "remove", "truncate",
	// "syncdir".
	BeforeOp func(op, name string) error
}

// persistFS funnels every filesystem touch of the persistence layer
// through the hooks.
type persistFS struct {
	hooks Hooks
}

func (fs persistFS) before(op, path string) error {
	if fs.hooks.BeforeOp == nil {
		return nil
	}
	if err := fs.hooks.BeforeOp(op, filepath.Base(path)); err != nil {
		return fmt.Errorf("%s %s: %w", op, filepath.Base(path), err)
	}
	return nil
}

func (fs persistFS) wrap(path string, f WritableFile) WritableFile {
	if fs.hooks.WrapWriter == nil {
		return f
	}
	return fs.hooks.WrapWriter(filepath.Base(path), f)
}

// create opens path fresh (truncating any leftover).
func (fs persistFS) create(path string) (WritableFile, error) {
	if err := fs.before("create", path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return fs.wrap(path, f), nil
}

// appendTo opens an existing file for appending.
func (fs persistFS) appendTo(path string) (WritableFile, error) {
	if err := fs.before("append", path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return fs.wrap(path, f), nil
}

func (fs persistFS) rename(oldPath, newPath string) error {
	if err := fs.before("rename", newPath); err != nil {
		return err
	}
	return os.Rename(oldPath, newPath)
}

func (fs persistFS) remove(path string) error {
	if err := fs.before("remove", path); err != nil {
		return err
	}
	return os.Remove(path)
}

// syncDir fsyncs a directory, making the creations, removals, and renames
// inside it durable. File-data fsyncs alone do not cover directory
// entries: without this, a power loss can keep a WAL prune while dropping
// the snapshot rename (or a synced segment's entry) that justified it.
func (fs persistFS) syncDir(dir string) error {
	if err := fs.before("syncdir", dir); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (fs persistFS) truncate(path string, size int64) error {
	if err := fs.before("truncate", path); err != nil {
		return err
	}
	return os.Truncate(path, size)
}

// FsyncPolicy says when the WAL fsyncs.
type FsyncPolicy int

const (
	// FsyncClose (default) syncs at day-close barriers and before
	// snapshots: a crash can lose buffered events of the open day, never a
	// closed one. This matches the recovery contract — ranked output only
	// depends on closed days.
	FsyncClose FsyncPolicy = iota
	// FsyncAlways syncs after every appended record.
	FsyncAlways
	// FsyncNever leaves flushing to the OS (sync only on shutdown).
	FsyncNever
)

// ParseFsyncPolicy parses "close", "always", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "close":
		return FsyncClose, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("serve: unknown fsync policy %q (want close, always, or never)", s)
	}
}

// String implements fmt.Stringer.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncClose:
		return "close"
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}
