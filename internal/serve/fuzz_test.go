package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
	"time"

	"acobe/internal/audit"
	"acobe/internal/cert"
)

// fuzzSegmentSeed builds a small valid segment image for the fuzz corpus.
func fuzzSegmentSeed() []byte {
	var buf bytes.Buffer
	var hdr [walHeaderSize]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], 1)
	buf.Write(hdr[:])
	evs := []Event{{Cert: &cert.Event{
		Type: cert.EventLogon, Time: time.Date(2010, 1, 4, 9, 0, 0, 0, time.UTC),
		User: "u1", Activity: cert.ActLogon,
	}}}
	body, _ := json.Marshal(evs)
	buf.Write(encodeFrame(append([]byte{recEvents}, body...)))
	var cp [9]byte
	cp[0] = recClose
	binary.LittleEndian.PutUint64(cp[1:], 2)
	buf.Write(encodeFrame(cp[:]))
	return buf.Bytes()
}

// fuzzShardSegmentSeed builds a segment image holding a cross-shard batch
// part (the sharded server's WAL shape) for the fuzz corpus.
func fuzzShardSegmentSeed() []byte {
	var buf bytes.Buffer
	var hdr [walHeaderSize]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], 1)
	buf.Write(hdr[:])
	evs := []Event{{Cert: &cert.Event{
		Type: cert.EventLogon, Time: time.Date(2010, 1, 4, 9, 0, 0, 0, time.UTC),
		User: "u1", Activity: cert.ActLogon,
	}}}
	payload, _ := encodePartPayload(7, 3, evs)
	buf.Write(encodeFrame(payload))
	empty, _ := encodePartPayload(8, 2, nil) // fully late-filtered slice
	buf.Write(encodeFrame(empty))
	return buf.Bytes()
}

// fuzzAuditSegmentSeed builds an audited (version-2) segment image: the
// wider header carrying a previous chain head, an events frame, and a
// seal frame — the stream shape PersistConfig.Audit writes.
func fuzzAuditSegmentSeed() []byte {
	var buf bytes.Buffer
	var hdr [walAuditHeaderSize]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], walAuditVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], 2)
	for i := walHeaderSize; i < walAuditHeaderSize; i++ {
		hdr[i] = byte(i)
	}
	buf.Write(hdr[:])
	evs := []Event{{Cert: &cert.Event{
		Type: cert.EventLogon, Time: time.Date(2010, 1, 4, 9, 0, 0, 0, time.UTC),
		User: "u1", Activity: cert.ActLogon,
	}}}
	body, _ := json.Marshal(evs)
	buf.Write(encodeFrame(append([]byte{recEvents}, body...)))
	seal := audit.Seal{Seq: 2, Frames: 1}
	seal.Head[0] = 0xA5
	buf.Write(encodeFrame(append([]byte{recSeal}, seal.Encode()...)))
	return buf.Bytes()
}

// FuzzWALDecode throws arbitrary bytes at the WAL segment parser and record
// decoder — the exact code path recovery runs over whatever a crash left on
// disk. Nothing may panic or over-allocate, and the parse must be
// self-consistent: frames contiguous from the header, the valid prefix a
// fixpoint (re-parsing it yields the same frames), and every framing-valid
// payload either decodes or errors cleanly.
func FuzzWALDecode(f *testing.F) {
	seed := fuzzSegmentSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)-5])          // torn tail
	f.Add(seed[:walHeaderSize])        // header only
	f.Add(seed[:walHeaderSize/2])      // torn header
	f.Add([]byte{})                    // empty file
	f.Add([]byte("ACWL garbage here")) // magic then junk
	flipped := bytes.Clone(seed)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped) // bit rot mid-frame
	huge := bytes.Clone(seed[:walHeaderSize+8])
	binary.LittleEndian.PutUint32(huge[walHeaderSize:], 1<<30)
	f.Add(huge) // oversized length prefix
	shardSeed := fuzzShardSegmentSeed()
	f.Add(shardSeed)                    // multi-shard batch parts
	f.Add(shardSeed[:len(shardSeed)-7]) // torn part frame
	// A CRC-valid frame declaring zero parts: framing passes, decode must
	// report corruption.
	badPart, _ := encodePartPayload(7, 3, nil)
	binary.LittleEndian.PutUint32(badPart[9:13], 0)
	zeroParts := append(bytes.Clone(shardSeed[:walHeaderSize]), encodeFrame(badPart)...)
	f.Add(zeroParts)
	auditSeed := fuzzAuditSegmentSeed()
	f.Add(auditSeed)                        // audited (v2) stream shape
	f.Add(auditSeed[:walAuditHeaderSize])   // audited header only
	f.Add(auditSeed[:walAuditHeaderSize-3]) // torn audited header
	f.Fuzz(func(t *testing.T, data []byte) {
		seq, frames, goodLen, hdrOK := parseSegment(data)
		if !hdrOK {
			if len(frames) != 0 || goodLen != 0 {
				t.Fatalf("invalid header but frames=%d goodLen=%d", len(frames), goodLen)
			}
			return
		}
		// The header length depends on the parsed version: 16 bytes for
		// version 1, 48 (with the previous chain head) for audited
		// version-2 streams.
		_, _, _, hdrLen, ok := parseSegHeader(data)
		if !ok || (hdrLen != walHeaderSize && hdrLen != walAuditHeaderSize) {
			t.Fatalf("parseSegment accepted a header parseSegHeader rejects (ok=%v hdrLen=%d)", ok, hdrLen)
		}
		if goodLen < hdrLen || goodLen > len(data) {
			t.Fatalf("goodLen %d outside [header=%d, len(data)=%d]", goodLen, hdrLen, len(data))
		}
		end := hdrLen
		for _, fr := range frames {
			if fr.off != end {
				t.Fatalf("frame at offset %d, expected contiguous at %d", fr.off, end)
			}
			if len(fr.payload) == 0 || len(fr.payload) > maxWALRecord {
				t.Fatalf("frame payload of %d bytes escaped the caps", len(fr.payload))
			}
			end += 8 + len(fr.payload)
			if rec, err := decodeRecord(fr.payload); err == nil {
				switch rec.typ {
				case recEvents, recClose, recSeal, recReceipt:
				case recEventsPart:
					if rec.parts == 0 {
						t.Fatal("decoded a part record declaring zero parts")
					}
				default:
					t.Fatalf("decoded record of unknown type %d", rec.typ)
				}
			}
		}
		if end != goodLen {
			t.Fatalf("frames span to %d but goodLen is %d", end, goodLen)
		}
		seq2, frames2, goodLen2, hdrOK2 := parseSegment(data[:goodLen])
		if !hdrOK2 || seq2 != seq || goodLen2 != goodLen || len(frames2) != len(frames) {
			t.Fatalf("valid prefix is not a parse fixpoint: (%d,%d,%v) vs (%d,%d,%v)",
				len(frames), goodLen, hdrOK, len(frames2), goodLen2, hdrOK2)
		}
		for i := range frames {
			if !bytes.Equal(frames[i].payload, frames2[i].payload) {
				t.Fatalf("re-parse changed frame %d payload", i)
			}
		}
	})
}
