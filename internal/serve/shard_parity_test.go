package serve

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"acobe/internal/cert"
	"acobe/internal/features"
)

// shardCounts is the shard-count matrix the parity and crash tests run
// over: the unsharded baseline, a count that does not divide the user set
// evenly, and one larger than some test user sets (empty shards).
var shardCounts = []int{1, 3, 8}

// shardStubIngestor is the per-shard analogue of stubIngestor: it writes
// gen() measurements for its shard's users at their *global* indices, so
// every shard count reproduces the exact measurement matrix the unsharded
// stub produces.
type shardStubIngestor struct {
	tbl   *features.Table
	users []string
	idx   map[string]int // user name -> global index
}

func (s *shardStubIngestor) Table() *features.Table { return s.tbl }

func (s *shardStubIngestor) ConsumeDay(d cert.Day, events []Event) error {
	for lu, name := range s.users {
		g := s.idx[name]
		for f := range testFeats {
			for frame := 0; frame < 2; frame++ {
				s.tbl.Add(lu, f, frame, d, gen(g, f, frame, d))
			}
		}
	}
	return nil
}

// stubShardFactory builds gen()-backed per-shard ingestors for any
// partition of allUsers.
func stubShardFactory(allUsers []string) func([]string, cert.Day) (Ingestor, error) {
	idx := make(map[string]int, len(allUsers))
	for i, u := range allUsers {
		idx[u] = i
	}
	return func(users []string, start cert.Day) (Ingestor, error) {
		tbl, err := features.NewTable(users, testFeats, 2, start, start)
		if err != nil {
			return nil, err
		}
		return &shardStubIngestor{tbl: tbl, users: users, idx: idx}, nil
	}
}

// probeState serializes every observable float of the server's merged
// state — raw measurements, individual deviations, group measurements,
// group deviations — as raw bits. Two servers with equal probes hold
// bit-identical state regardless of how it is partitioned internally.
func probeState(t *testing.T, s *Server, from, to cert.Day) []uint64 {
	t.Helper()
	var out []uint64
	add := func(v float64) { out = append(out, math.Float64bits(v)) }
	ind := s.indField()
	nu := len(s.cfg.Users)
	for d := from; d <= to; d++ {
		for u := 0; u < nu; u++ {
			for f := range s.feats {
				for fr := 0; fr < s.frames; fr++ {
					add(s.measure(u, f, fr, d))
					add(ind.Sigma(u, f, fr, d))
				}
			}
		}
	}
	if gs := s.groupStream(); gs != nil {
		gf := gs.Field()
		gt := s.groupTable()
		for d := from; d <= to; d++ {
			for g := range s.cfg.Groups {
				for f := range s.feats {
					for fr := 0; fr < s.frames; fr++ {
						add(gt.At(g, f, fr, d))
						add(gf.Sigma(g, f, fr, d))
					}
				}
			}
		}
	}
	return out
}

// TestShardParityTrainedRanks is the end-to-end shard-parity acceptance
// test: the full serve flow (close 70 days, retrain, rank, score) must
// produce byte-identical output at every shard count — ranks, priorities,
// and raw per-day scores all bit-equal to the Shards=1 baseline.
func TestShardParityTrainedRanks(t *testing.T) {
	const lastDay = cert.Day(69)
	ctx := context.Background()

	type result struct {
		list   []rankRow
		scores [][]float64
	}
	run := func(t *testing.T, shards int) result {
		srv, err := New(Config{
			Users:           testUsers,
			Groups:          testGroups,
			Membership:      testMember,
			Start:           0,
			Deviation:       testDevCfg(),
			IngestorFactory: stubShardFactory(testUsers),
			Shards:          shards,
			DetectorOptions: testDetOpts(),
			QueueSize:       16,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
		for d := cert.Day(0); d <= lastDay; d++ {
			if err := srv.CloseDay(ctx, d); err != nil {
				t.Fatal(err)
			}
		}
		if err := srv.Retrain(ctx, 0, 55, true); err != nil {
			t.Fatal(err)
		}
		list, err := srv.Rank(ctx, 60, lastDay)
		if err != nil {
			t.Fatal(err)
		}
		series, err := srv.Detector().Score(ctx, 60, lastDay)
		if err != nil {
			t.Fatal(err)
		}
		res := result{}
		for _, r := range list {
			res.list = append(res.list, rankRow{user: r.User, priority: r.Priority, ranks: append([]int(nil), r.Ranks...)})
		}
		for _, a := range series {
			for _, us := range a.Scores {
				res.scores = append(res.scores, append([]float64(nil), us...))
			}
		}
		return res
	}

	want := run(t, 1)
	for _, n := range shardCounts[1:] {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			got := run(t, n)
			if len(got.list) != len(want.list) {
				t.Fatalf("%d ranked rows, want %d", len(got.list), len(want.list))
			}
			for i := range want.list {
				g, w := got.list[i], want.list[i]
				if g.user != w.user || g.priority != w.priority {
					t.Errorf("list[%d]: %s/%d, want %s/%d", i, g.user, g.priority, w.user, w.priority)
				}
				for a := range w.ranks {
					if g.ranks[a] != w.ranks[a] {
						t.Errorf("list[%d] ranks %v, want %v", i, g.ranks, w.ranks)
					}
				}
			}
			for u := range want.scores {
				for i := range want.scores[u] {
					if math.Float64bits(got.scores[u][i]) != math.Float64bits(want.scores[u][i]) {
						t.Fatalf("score[%d][%d] = %v, want bit-identical %v", u, i, got.scores[u][i], want.scores[u][i])
					}
				}
			}
		})
	}
}

type rankRow struct {
	user     string
	priority int
	ranks    []int
}

// parityEvents builds one user's synthetic CERT events for a day.
func parityEvents(u string, i int, d cert.Day) []Event {
	at := func(h int) time.Time { return d.Date().Add(time.Duration(h) * time.Hour) }
	evs := []Event{
		{Cert: &cert.Event{Type: cert.EventLogon, Time: at(7 + i%5), User: u, Activity: cert.ActLogon}},
		{Cert: &cert.Event{Type: cert.EventDevice, Time: at(10), User: u, PC: fmt.Sprintf("PC-%d", (int(d)+i)%5), Activity: cert.ActConnect}},
	}
	if (int(d)+i)%2 == 0 {
		evs = append(evs, Event{Cert: &cert.Event{Type: cert.EventFile, Time: at(12), User: u,
			Activity: cert.ActFileOpen, Direction: cert.DirLocal, FileID: fmt.Sprintf("F%d", (int(d)+3*i)%7)}})
	}
	if (int(d)+i)%3 == 0 {
		evs = append(evs, Event{Cert: &cert.Event{Type: cert.EventHTTP, Time: at(15), User: u,
			Activity: cert.ActUpload, FileType: "doc", Domain: fmt.Sprintf("d%d.com", i%3)}})
	}
	return evs
}

// TestShardParityProperty is the randomized parity property: for random
// user sets, random group memberships, and random ingest interleavings
// (user order shuffled per day, days split into random Submit batches),
// the real CERT ingest path must leave bit-identical merged state at every
// shard count. Each user's own events stay in order — the split/merge may
// reorder *between* users, which per-user feature extraction must not see.
func TestShardParityProperty(t *testing.T) {
	const days = 25
	for trial := 0; trial < 3; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			nUsers := 5 + rng.Intn(8)
			users := make([]string, nUsers)
			for i := range users {
				users[i] = fmt.Sprintf("user-%02d-%04x", i, rng.Intn(1<<16))
			}
			groups := []string{"ga", "gb"}
			member := make([]int, nUsers)
			for i := range member {
				member[i] = rng.Intn(len(groups))
			}

			run := func(t *testing.T, shards int, seed int64) []uint64 {
				srv, err := New(Config{
					Users:      users,
					Groups:     groups,
					Membership: member,
					Start:      0,
					Deviation:  testDevCfg(),
					Shards:     shards, // default factory: real CERT ingestor per shard
					QueueSize:  16,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer func() {
					sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					_ = srv.Shutdown(sctx)
				}()
				ctx := context.Background()
				order := rand.New(rand.NewSource(seed))
				for d := cert.Day(0); d < days; d++ {
					perm := order.Perm(nUsers)
					var dayEvs []Event
					for _, i := range perm {
						dayEvs = append(dayEvs, parityEvents(users[i], i, d)...)
					}
					// Random batch splits: 1..4 Submit calls for the day.
					for len(dayEvs) > 0 {
						n := 1 + order.Intn(len(dayEvs))
						if err := srv.Submit(ctx, dayEvs[:n]); err != nil {
							t.Fatal(err)
						}
						dayEvs = dayEvs[n:]
					}
					if err := srv.CloseDay(ctx, d); err != nil {
						t.Fatal(err)
					}
				}
				return probeState(t, srv, 0, days-1)
			}

			want := run(t, 1, int64(7*trial+1))
			for _, n := range shardCounts[1:] {
				got := run(t, n, int64(100*trial+n)) // different interleaving on purpose
				if len(got) != len(want) {
					t.Fatalf("shards=%d probe has %d values, want %d", n, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shards=%d state diverges at probe index %d: %016x != %016x",
							n, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestShardConfigValidation: the sharded constructor rejects ambiguous or
// unpartitionable ingest configurations loudly.
func TestShardConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Users:      testUsers,
			Groups:     testGroups,
			Membership: testMember,
			Start:      0,
			Deviation:  testDevCfg(),
			QueueSize:  4,
		}
	}
	cfg := base()
	cfg.Shards = 3
	cfg.Ingestor = newStubIngestor(t, 0)
	if _, err := New(cfg); err == nil {
		t.Error("Shards>1 with a prebuilt Ingestor must be rejected")
	}
	cfg = base()
	cfg.Ingestor = newStubIngestor(t, 0)
	cfg.IngestorFactory = stubShardFactory(testUsers)
	if _, err := New(cfg); err == nil {
		t.Error("Ingestor and IngestorFactory together must be rejected")
	}
}

// TestShardRouterDeterminism: the consistent-hash router is deterministic,
// total, and stable under shard-count-preserving rebuilds; at n=1 every
// user routes to shard 0.
func TestShardRouterDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 2, 3, 8, 16} {
		a, b := newRouter(n), newRouter(n)
		counts := make([]int, n)
		for i := 0; i < 500; i++ {
			u := fmt.Sprintf("user-%d-%x", i, rng.Int63())
			k := a.shardOf(u)
			if k < 0 || k >= n {
				t.Fatalf("n=%d: shardOf(%q) = %d out of range", n, u, k)
			}
			if bk := b.shardOf(u); bk != k {
				t.Fatalf("n=%d: rebuilt router disagrees on %q: %d vs %d", n, u, k, bk)
			}
			counts[k]++
		}
		if n == 1 && counts[0] != 500 {
			t.Fatalf("n=1 must route everything to shard 0")
		}
		if n > 1 {
			// 64 vnodes/shard keeps the spread sane; just guard against a
			// degenerate all-on-one-shard hash.
			for k, c := range counts {
				if c == 500 {
					t.Fatalf("n=%d: all users landed on shard %d", n, k)
				}
			}
		}
	}
}
