package serve

import (
	"fmt"
	"sort"
)

// router maps user IDs to shards with a consistent-hash ring: every shard
// contributes vnodesPerShard points hashed from a stable label, the points
// are sorted, and a user lands on the first point clockwise of the user's
// hash. The placement depends only on (user ID, shard count), never on the
// user list or its order, so two servers configured alike route alike —
// which is what lets recovery re-derive a shard's user subset from the
// config and check it against the shard's snapshot.
type router struct {
	shards int
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int
}

const vnodesPerShard = 64

// fnv64a is FNV-1a over a string, inlined so the router and its fuzz
// target share one definition with no allocation.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// newRouter builds the ring for n shards. n ≤ 1 degenerates to a direct
// map to shard 0.
func newRouter(n int) *router {
	r := &router{shards: n}
	if n <= 1 {
		return r
	}
	r.points = make([]ringPoint, 0, n*vnodesPerShard)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			h := fnv64a(fmt.Sprintf("shard-%d-vnode-%d", s, v))
			r.points = append(r.points, ringPoint{hash: h, shard: s})
		}
	}
	// Ties on hash (astronomically unlikely but cheap to pin down) break by
	// shard index so the ring order is fully deterministic.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// shardOf returns the shard owning a user ID.
func (r *router) shardOf(user string) int {
	if r.shards <= 1 {
		return 0
	}
	h := fnv64a(user)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
